package detshmem

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"testing"

	"detshmem/internal/affine"
	"detshmem/internal/analysis"
	"detshmem/internal/audit"
	"detshmem/internal/baseline"
	"detshmem/internal/core"
	"detshmem/internal/experiments"
	"detshmem/internal/frontend"
	"detshmem/internal/mpc"
	"detshmem/internal/netmpc"
	"detshmem/internal/network"
	"detshmem/internal/pram"
	"detshmem/internal/protocol"
	"detshmem/internal/shard"
	"detshmem/internal/workload"
)

// The benchmarks below regenerate the measured side of every experiment in
// DESIGN.md's per-experiment index (E1–E15), plus the ablations. Each bench
// reports domain metrics (MPC rounds, Φ) alongside ns/op.

func mustScheme(b *testing.B, m, n int) (*core.Scheme, core.Indexer) {
	b.Helper()
	s, err := core.New(m, n)
	if err != nil {
		b.Fatal(err)
	}
	idx, err := s.NewIndexer()
	if err != nil {
		b.Fatal(err)
	}
	return s, idx
}

func mustSystem(b *testing.B, m, n int, cfg protocol.Config) *protocol.System {
	b.Helper()
	s, idx := mustScheme(b, m, n)
	sys, err := protocol.NewSystem(s, idx, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// BenchmarkE1GraphParameters measures instance construction (field tables,
// group setup, Theorem 8 indexer) per extension degree.
func BenchmarkE1GraphParameters(b *testing.B) {
	for _, n := range []int{3, 5, 7, 9} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := core.New(1, n)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.NewIndexer(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE2PairwiseIntersection measures the Theorem 2 check: computing
// |Γ(v1)∩Γ(v2)| for random variable pairs.
func BenchmarkE2PairwiseIntersection(b *testing.B) {
	s, idx := mustScheme(b, 1, 7)
	rng := rand.New(rand.NewSource(1))
	var bufA, bufB []uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := uint64(rng.Int63n(int64(idx.M())))
		c := uint64(rng.Int63n(int64(idx.M())))
		bufA = s.VarModules(bufA[:0], idx.Mat(a))
		bufB = s.VarModules(bufB[:0], idx.Mat(c))
		inter := 0
		for _, x := range bufA {
			for _, y := range bufB {
				if x == y {
					inter++
				}
			}
		}
		if a != c && inter > 1 {
			b.Fatal("Theorem 2 violated")
		}
	}
}

// BenchmarkE3GammaSquared measures computing Γ²(u) for random modules.
func BenchmarkE3GammaSquared(b *testing.B) {
	s, _ := mustScheme(b, 1, 5)
	rng := rand.New(rand.NewSource(2))
	var buf []uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := uint64(rng.Int63n(int64(s.NumModules)))
		out := make(map[uint64]struct{}, s.F.Order)
		for k := uint32(0); k < s.ModuleSize; k++ {
			buf = s.VarModules(buf[:0], s.ModuleVarMat(j, k))
			for _, j2 := range buf {
				if j2 != j {
					out[j2] = struct{}{}
				}
			}
		}
		if uint32(len(out)) != s.F.Order {
			b.Fatal("Lemma 3 violated")
		}
	}
}

// BenchmarkE4Expansion measures |Γ(S)| computation for random sets of 1024
// variables (the Theorem 4 witness measurement).
func BenchmarkE4Expansion(b *testing.B) {
	s, idx := mustScheme(b, 1, 7)
	rng := rand.New(rand.NewSource(3))
	vars := workload.DistinctRandom(rng, idx.M(), 1024)
	floor := analysis.Theorem4Lower(len(vars), s.Q)
	var buf []uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mods := make(map[uint64]struct{})
		for _, v := range vars {
			buf = s.VarModules(buf[:0], idx.Mat(v))
			for _, j := range buf {
				mods[j] = struct{}{}
			}
		}
		if float64(len(mods)) < floor {
			b.Fatal("Theorem 4 violated")
		}
	}
}

// BenchmarkE5Recurrence measures a traced full-N batch (the Recurrence (2)
// measurement) and reports Φ.
func BenchmarkE5Recurrence(b *testing.B) {
	sys := mustSystem(b, 1, 5, protocol.Config{TraceLive: true})
	N := int(sys.Scheme.NumModules)
	rng := rand.New(rand.NewSource(4))
	vals := make([]uint64, N)
	var phi int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vars := workload.DistinctRandom(rng, sys.Index.M(), N)
		met, err := sys.WriteBatch(vars, vals)
		if err != nil {
			b.Fatal(err)
		}
		phi = met.MaxIterations
	}
	b.ReportMetric(float64(phi), "phi")
}

// hotPathVariants enumerates the PR's hot-path ablation: live CopyAddr
// resolution on the sequential engine (the old default), the compiled
// resolver on the sequential engine, and the compiled resolver on the
// persistent-worker-pool engine.
func hotPathVariants(b *testing.B, m, n int) []struct {
	name string
	cfg  protocol.Config
} {
	b.Helper()
	s, idx := mustScheme(b, m, n)
	res, err := protocol.CompileMapper(protocol.NewCoreMapper(s, idx), protocol.CompileOptions{})
	if err != nil {
		b.Fatal(err)
	}
	return []struct {
		name string
		cfg  protocol.Config
	}{
		{"live+seq", protocol.Config{}},
		{"compiled+seq", protocol.Config{Resolver: res}},
		{"compiled+par", protocol.Config{Resolver: res, Parallel: true}},
	}
}

// BenchmarkE6ProtocolScaling measures full-batch access per degree; the
// reported phi column is the Theorem 6 quantity. Variants cover the
// resolver/engine ablation (see E16).
func BenchmarkE6ProtocolScaling(b *testing.B) {
	for _, n := range []int{3, 5, 7} {
		for _, variant := range hotPathVariants(b, 1, n) {
			b.Run(fmt.Sprintf("n=%d/%s", n, variant.name), func(b *testing.B) {
				sys := mustSystem(b, 1, n, variant.cfg)
				defer sys.Close()
				N := int(sys.Scheme.NumModules)
				rng := rand.New(rand.NewSource(5))
				vars := workload.DistinctRandom(rng, sys.Index.M(), N)
				vals := make([]uint64, N)
				var phi, rounds int
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					met, err := sys.WriteBatch(vars, vals)
					if err != nil {
						b.Fatal(err)
					}
					phi, rounds = met.MaxIterations, met.TotalRounds
				}
				b.ReportMetric(float64(phi), "phi")
				b.ReportMetric(float64(rounds), "rounds")
			})
		}
	}
}

// BenchmarkE7Baselines measures a 1024-variable random write batch under
// each organization (the E7 comparison's random row).
func BenchmarkE7Baselines(b *testing.B) {
	s, idx := mustScheme(b, 1, 7)
	N, M := s.NumModules, s.NumVariables
	mappers := map[string]protocol.Mapper{
		"pp93": protocol.NewCoreMapper(s, idx),
	}
	if mv, err := baseline.NewMV(N, M, 2); err == nil {
		mappers["mv-c2"] = mv
	}
	if sc, err := baseline.NewSingleCopy(N, M, baseline.PlaceHashed, 7); err == nil {
		mappers["single"] = sc
	}
	if uw, err := baseline.NewUW(N, M, 7, 7); err == nil {
		mappers["uw-c7"] = uw
	}
	rng := rand.New(rand.NewSource(6))
	vars := workload.DistinctRandom(rng, M, 1024)
	vals := make([]uint64, len(vars))
	for name, m := range mappers {
		m := m
		b.Run(name, func(b *testing.B) {
			sys, err := protocol.NewGenericSystem(m, protocol.Config{})
			if err != nil {
				b.Fatal(err)
			}
			var rounds int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				met, err := sys.WriteBatch(vars, vals)
				if err != nil {
					b.Fatal(err)
				}
				rounds = met.TotalRounds
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// BenchmarkE8LowerBound measures the greedy-adversary batch against the PP
// scheme and reports achieved rounds vs the Theorem 7 floor.
func BenchmarkE8LowerBound(b *testing.B) {
	s, idx := mustScheme(b, 1, 5)
	m := protocol.NewCoreMapper(s, idx)
	rng := rand.New(rand.NewSource(7))
	batch := analysis.GreedyAdversary(m, 512, 4000, rng)
	sys, err := protocol.NewGenericSystem(m, protocol.Config{})
	if err != nil {
		b.Fatal(err)
	}
	var rounds int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, met, err := sys.ReadBatch(batch)
		if err != nil {
			b.Fatal(err)
		}
		rounds = met.TotalRounds
	}
	b.ReportMetric(float64(rounds), "rounds")
	b.ReportMetric(analysis.Theorem7Lower(m.NumVars(), m.NumModules(), m.Copies()), "floor")
}

// BenchmarkE9Addressing measures the Section 4 address computations.
func BenchmarkE9Addressing(b *testing.B) {
	for _, n := range []int{5, 7, 9, 11} {
		s, err := core.New(1, n)
		if err != nil {
			b.Fatal(err)
		}
		ex, err := core.NewExplicitIndexer(s)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(8))
		ids := make([]uint64, 4096)
		for i := range ids {
			ids[i] = uint64(rng.Int63n(int64(ex.M())))
		}
		b.Run(fmt.Sprintf("Mat/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = ex.Mat(ids[i&4095])
			}
		})
		b.Run(fmt.Sprintf("CopyLocation/n=%d", n), func(b *testing.B) {
			a := ex.Mat(ids[0])
			var sink uint64
			for i := 0; i < b.N; i++ {
				mod, off := s.CopyLocation(a, i%s.Copies)
				sink += mod + uint64(off)
			}
			_ = sink
		})
		b.Run(fmt.Sprintf("Index/n=%d", n), func(b *testing.B) {
			a := ex.Mat(ids[1])
			for i := 0; i < b.N; i++ {
				if _, ok := ex.Index(a); !ok {
					b.Fatal("inverse failed")
				}
			}
		})
	}
}

// BenchmarkE10PRAM measures a full parallel prefix sum (512 cells) through
// the PP organization.
func BenchmarkE10PRAM(b *testing.B) {
	sys := mustSystem(b, 1, 5, protocol.Config{})
	p := pram.New(sys)
	const n = 512
	addrs := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range addrs {
		addrs[i] = uint64(i)
		vals[i] = 1
	}
	var rounds int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Write(addrs, vals); err != nil {
			b.Fatal(err)
		}
		p.Rounds = 0
		if _, err := p.PrefixSum(0, n); err != nil {
			b.Fatal(err)
		}
		rounds = p.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkAblationArbitration compares module arbitration policies
// (DESIGN.md §5: Φ should be insensitive).
func BenchmarkAblationArbitration(b *testing.B) {
	for name, arb := range map[string]mpc.Arbiter{
		"lowest":      mpc.ArbLowest,
		"round-robin": mpc.ArbRoundRobin,
		"random":      mpc.ArbRandom,
	} {
		arb := arb
		b.Run(name, func(b *testing.B) {
			sys := mustSystem(b, 1, 5, protocol.Config{Arb: arb, Seed: 11})
			N := int(sys.Scheme.NumModules)
			rng := rand.New(rand.NewSource(9))
			vars := workload.DistinctRandom(rng, sys.Index.M(), N)
			vals := make([]uint64, N)
			var phi int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				met, err := sys.WriteBatch(vars, vals)
				if err != nil {
					b.Fatal(err)
				}
				phi = met.MaxIterations
			}
			b.ReportMetric(float64(phi), "phi")
		})
	}
}

// BenchmarkAblationCopyChoice compares the paper's all-copies-with-
// cancellation rule against fixed-quorum targeting.
func BenchmarkAblationCopyChoice(b *testing.B) {
	for name, pol := range map[string]protocol.CopyPolicy{
		"all-cancel":     protocol.PolicyAllCancel,
		"fixed-majority": protocol.PolicyFixedMajority,
	} {
		pol := pol
		b.Run(name, func(b *testing.B) {
			sys := mustSystem(b, 1, 5, protocol.Config{Policy: pol})
			N := int(sys.Scheme.NumModules)
			rng := rand.New(rand.NewSource(10))
			vars := workload.DistinctRandom(rng, sys.Index.M(), N)
			vals := make([]uint64, N)
			var phi, rounds int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				met, err := sys.WriteBatch(vars, vals)
				if err != nil {
					b.Fatal(err)
				}
				phi, rounds = met.MaxIterations, met.TotalRounds
			}
			b.ReportMetric(float64(phi), "phi")
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// BenchmarkAblationEngine compares the sequential and goroutine MPC engines
// (identical Φ by construction; wall-clock differs).
func BenchmarkAblationEngine(b *testing.B) {
	for name, par := range map[string]bool{"sequential": false, "parallel": true} {
		par := par
		b.Run(name, func(b *testing.B) {
			sys := mustSystem(b, 1, 7, protocol.Config{Parallel: par})
			N := int(sys.Scheme.NumModules)
			rng := rand.New(rand.NewSource(11))
			vars := workload.DistinctRandom(rng, sys.Index.M(), N)
			vals := make([]uint64, N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.WriteBatch(vars, vals); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationClusterSize shows the effect of decoupling cluster size
// from the copy count (larger clusters = fewer concurrent variables,
// more phases).
func BenchmarkAblationClusterSize(b *testing.B) {
	for _, cs := range []int{3, 6, 12} {
		cs := cs
		b.Run(fmt.Sprintf("cluster=%d", cs), func(b *testing.B) {
			sys := mustSystem(b, 1, 5, protocol.Config{ClusterSize: cs})
			N := int(sys.Scheme.NumModules)
			rng := rand.New(rand.NewSource(12))
			vars := workload.DistinctRandom(rng, sys.Index.M(), N)
			vals := make([]uint64, N)
			var rounds int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				met, err := sys.WriteBatch(vars, vals)
				if err != nil {
					b.Fatal(err)
				}
				rounds = met.TotalRounds
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// BenchmarkExperimentTables regenerates every E-table in quick mode (the
// bench-driven path to the same outputs cmd/smembench prints).
func BenchmarkExperimentTables(b *testing.B) {
	for _, r := range experiments.All() {
		r := r
		b.Run(r.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := r.Run(io.Discard, experiments.Options{Quick: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE12Routing measures one full protocol batch over each
// bounded-degree topology and reports the routed interconnect cost.
func BenchmarkE12Routing(b *testing.B) {
	for _, topo := range []network.Topology{network.TopoButterfly, network.TopoHypercube} {
		topo := topo
		b.Run(topo.String(), func(b *testing.B) {
			sys := mustSystem(b, 1, 5, protocol.Config{
				NewMachine: func(cfg mpc.Config) (protocol.Machine, error) {
					return network.NewMachineTopology(cfg, topo)
				},
			})
			N := int(sys.Scheme.NumModules)
			rng := rand.New(rand.NewSource(13))
			vars := workload.DistinctRandom(rng, sys.Index.M(), N)
			vals := make([]uint64, N)
			var cost uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				met, err := sys.WriteBatch(vars, vals)
				if err != nil {
					b.Fatal(err)
				}
				cost = met.InterconnectCost
			}
			b.ReportMetric(float64(cost), "linksteps")
		})
	}
}

// BenchmarkRouteMakespan measures raw permutation routing on both topologies.
func BenchmarkRouteMakespan(b *testing.B) {
	const size = 1024
	rng := rand.New(rand.NewSource(14))
	perm := rng.Perm(size)
	src := make([]int64, size)
	dst := make([]int64, size)
	for i := range perm {
		src[i] = int64(i)
		dst[i] = int64(perm[i])
	}
	b.Run("butterfly", func(b *testing.B) {
		bf, err := network.NewButterfly(size)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			bf.RouteMakespan(src, dst)
		}
	})
	b.Run("hypercube", func(b *testing.B) {
		hc, err := network.NewHypercube(size)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			hc.RouteMakespan(src, dst)
		}
	})
}

// BenchmarkE13Affine measures the companion Θ(N²)-regime scheme on its
// adversarial grid batch (the √N'-tight set family).
func BenchmarkE13Affine(b *testing.B) {
	plane, err := affine.New(337, 3)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := protocol.NewGenericSystem(plane, protocol.Config{})
	if err != nil {
		b.Fatal(err)
	}
	batch := plane.WorstBatch(900)
	vals := make([]uint64, len(batch))
	var rounds int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		met, err := sys.WriteBatch(batch, vals)
		if err != nil {
			b.Fatal(err)
		}
		rounds = met.TotalRounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkE14Audit measures a full structural audit of the PP scheme.
func BenchmarkE14Audit(b *testing.B) {
	s, idx := mustScheme(b, 1, 5)
	m := protocol.NewCoreMapper(s, idx)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := audit.Run(m, audit.Options{PairSamples: 5000, SetSamples: 8})
		if err != nil {
			b.Fatal(err)
		}
		if r.PlacementErrors != 0 || r.MaxPairIntersection > 1 {
			b.Fatal("audit failed")
		}
	}
}

// BenchmarkE15Frontend measures combining-frontend throughput: 8 concurrent
// clients submitting asynchronous hot-spot traffic over the PP93 system,
// reporting the fraction of ops that never became protocol requests.
// Variants cover the resolver/engine ablation (see E16).
func BenchmarkE15Frontend(b *testing.B) {
	workloads := []struct {
		name string
		p    float64
	}{
		{"hot-spot", 0.85},
		{"uniform", 0},
	}
	for _, variant := range hotPathVariants(b, 1, 5) {
		for _, wl := range workloads {
			wl := wl
			b.Run(variant.name+"/"+wl.name, func(b *testing.B) {
				sys := mustSystem(b, 1, 5, variant.cfg)
				defer sys.Close()
				fe, err := frontend.New(sys, frontend.Config{})
				if err != nil {
					b.Fatal(err)
				}
				defer fe.Close()
				const clients, window = 8, 64
				m := sys.Mapper.NumVars()
				b.ResetTimer()
				var wg sync.WaitGroup
				for c := 0; c < clients; c++ {
					wg.Add(1)
					go func(c int) {
						defer wg.Done()
						rng := rand.New(rand.NewSource(int64(c) + 42))
						stream := workload.HotSpot(rng, m, (b.N+clients-1)/clients, 16, wl.p)
						pending := make([]*frontend.Future, 0, window)
						drain := func() {
							for _, fut := range pending {
								if _, err := fut.Wait(); err != nil {
									b.Error(err)
									return
								}
							}
							pending = pending[:0]
						}
						for i, v := range stream {
							var fut *frontend.Future
							var err error
							if i%3 == 0 {
								fut, err = fe.WriteAsync(v, uint64(i))
							} else {
								fut, err = fe.ReadAsync(v)
							}
							if err != nil {
								b.Error(err)
								return
							}
							pending = append(pending, fut)
							if len(pending) == window {
								drain()
							}
						}
						drain()
					}(c)
				}
				wg.Wait()
				b.ReportMetric(fe.Stats().CombiningRate(), "combined/op")
			})
		}
	}
}

// BenchmarkE18ShardedFrontend measures the sharded execution layer at CI
// scale (n=5): concurrent clients drive async windows against the service
// and every sub-benchmark name carries "sharded" so the bench-regression
// gate can track the family. S=1/classic is the single-dispatcher baseline;
// the pipelined variants are the PR's direct-admission path. E18 is the
// full-scale (n=7) sweep behind BENCH_PR4.json.
func BenchmarkE18ShardedFrontend(b *testing.B) {
	s, idx := mustScheme(b, 1, 5)
	mapper := protocol.NewCoreMapper(s, idx)
	res, err := protocol.CompileMapper(mapper, protocol.CompileOptions{})
	if err != nil {
		b.Fatal(err)
	}
	configs := []struct {
		name     string
		shards   int
		pipeline bool
	}{
		{"S=1/classic", 1, false},
		{"S=1/pipelined", 1, true},
		{"S=4/pipelined", 4, true},
	}
	workloads := []struct {
		name string
		p    float64
	}{
		{"uniform", 0},
		{"hot-spot", 0.85},
	}
	for _, cfg := range configs {
		for _, wl := range workloads {
			cfg, wl := cfg, wl
			b.Run(fmt.Sprintf("sharded/%s/%s", cfg.name, wl.name), func(b *testing.B) {
				svc, err := shard.New(mapper, shard.Config{
					Shards:   cfg.shards,
					Pipeline: cfg.pipeline,
					Protocol: protocol.Config{Resolver: res, Parallel: true},
				})
				if err != nil {
					b.Fatal(err)
				}
				defer svc.Close()
				const clients, window = 8, 64
				m := mapper.NumVars()
				b.ResetTimer()
				var wg sync.WaitGroup
				for c := 0; c < clients; c++ {
					wg.Add(1)
					go func(c int) {
						defer wg.Done()
						rng := rand.New(rand.NewSource(int64(c) + 18))
						stream := workload.HotSpot(rng, m, (b.N+clients-1)/clients, 16, wl.p)
						pending := make([]*frontend.Future, 0, window)
						drain := func() {
							for _, fut := range pending {
								if _, err := fut.Wait(); err != nil {
									b.Error(err)
									return
								}
							}
							pending = pending[:0]
						}
						for i, v := range stream {
							var fut *frontend.Future
							var err error
							if i%3 == 0 {
								fut, err = svc.WriteAsync(v, uint64(i))
							} else {
								fut, err = svc.ReadAsync(v)
							}
							if err != nil {
								b.Error(err)
								return
							}
							pending = append(pending, fut)
							if len(pending) == window {
								drain()
							}
						}
						drain()
					}(c)
				}
				wg.Wait()
				st := svc.Stats()
				b.ReportMetric(st.Total.CombiningRate(), "combined/op")
				b.ReportMetric(st.Imbalance(), "imbalance")
			})
		}
	}
}

// BenchmarkE21MulticoreScaling measures the lock-free execution layer under
// an explicit GOMAXPROCS sweep at CI scale (n=5): the pipelined per-op path
// and the cross-shard AccessBatch path, each at 1 and 4 procs. Sub-benchmark
// names carry both "sharded" and "procs=" so the bench-regression gate's
// family regex and the parallel-variant requirement match them. E21 is the
// full-scale (n=7) sweep behind BENCH_PR7.json.
func BenchmarkE21MulticoreScaling(b *testing.B) {
	s, idx := mustScheme(b, 1, 5)
	mapper := protocol.NewCoreMapper(s, idx)
	res, err := protocol.CompileMapper(mapper, protocol.CompileOptions{})
	if err != nil {
		b.Fatal(err)
	}
	configs := []struct {
		name    string
		shards  int
		batched bool
	}{
		{"S=4/pipelined", 4, false},
		{"S=4/batched", 4, true},
	}
	for _, procs := range []int{1, 4} {
		for _, cfg := range configs {
			cfg := cfg
			b.Run(fmt.Sprintf("sharded/%s/procs=%d", cfg.name, procs), func(b *testing.B) {
				prev := runtime.GOMAXPROCS(procs)
				defer runtime.GOMAXPROCS(prev)
				svc, err := shard.New(mapper, shard.Config{
					Shards:   cfg.shards,
					Pipeline: true,
					Protocol: protocol.Config{Resolver: res, Parallel: true},
				})
				if err != nil {
					b.Fatal(err)
				}
				defer svc.Close()
				const clients, window = 8, 64
				m := mapper.NumVars()
				b.ResetTimer()
				var wg sync.WaitGroup
				for c := 0; c < clients; c++ {
					wg.Add(1)
					go func(c int) {
						defer wg.Done()
						rng := rand.New(rand.NewSource(int64(c) + 21))
						stream := workload.HotSpot(rng, m, (b.N+clients-1)/clients, 16, 0)
						if cfg.batched {
							ops := make([]shard.BatchOp, 0, window)
							flush := func() bool {
								if len(ops) == 0 {
									return true
								}
								batch, err := svc.AccessBatch(ops)
								if err == nil {
									err = batch.Wait()
								}
								if err != nil {
									b.Error(err)
									return false
								}
								ops = ops[:0]
								return true
							}
							for i, v := range stream {
								if i%3 == 0 {
									ops = append(ops, shard.BatchOp{Write: true, Var: v, Val: uint64(i)})
								} else {
									ops = append(ops, shard.BatchOp{Var: v})
								}
								if len(ops) == window && !flush() {
									return
								}
							}
							flush()
							return
						}
						pending := make([]*frontend.Future, 0, window)
						drain := func() bool {
							for _, fut := range pending {
								if _, err := fut.Wait(); err != nil {
									b.Error(err)
									return false
								}
							}
							pending = pending[:0]
							return true
						}
						for i, v := range stream {
							var fut *frontend.Future
							var err error
							if i%3 == 0 {
								fut, err = svc.WriteAsync(v, uint64(i))
							} else {
								fut, err = svc.ReadAsync(v)
							}
							if err != nil {
								b.Error(err)
								return
							}
							pending = append(pending, fut)
							if len(pending) == window && !drain() {
								return
							}
						}
						drain()
					}(c)
				}
				wg.Wait()
				st := svc.Stats()
				b.ReportMetric(st.Total.CombiningRate(), "combined/op")
				b.ReportMetric(float64(st.Total.MaxQueueDepth), "maxdepth")
			})
		}
	}
}

// BenchmarkE11FailureMasking measures a full batch with one failed module
// (the masked-failure fast path).
func BenchmarkE11FailureMasking(b *testing.B) {
	s, idx := mustScheme(b, 1, 5)
	sys, err := protocol.NewSystem(s, idx, protocol.Config{
		NewMachine: func(cfg mpc.Config) (protocol.Machine, error) {
			return mpc.NewFailing(cfg, []uint64{0})
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	N := int(s.NumModules)
	vars := make([]uint64, N)
	vals := make([]uint64, N)
	for i := range vars {
		vars[i] = uint64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.WriteBatch(vars, vals); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPRAMBitonicSort measures the full Batcher network over the PP
// shared memory.
func BenchmarkPRAMBitonicSort(b *testing.B) {
	sys := mustSystem(b, 1, 5, protocol.Config{})
	p := pram.New(sys)
	const n = 256
	rng := rand.New(rand.NewSource(15))
	addrs := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range addrs {
		addrs[i] = uint64(i)
		vals[i] = rng.Uint64() % 100000
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Write(addrs, vals); err != nil {
			b.Fatal(err)
		}
		if err := p.BitonicSort(0, n); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE22NetTransport measures the MPC transport boundary at CI scale
// (n=5): the same windowed 8-client workload over the in-process machine
// and over a 4-server loopback TCP cluster (internal/netmpc). Sub-benchmark
// names carry "transport=" so the bench-regression gate can require both
// variants; the tcp/inproc ratio is the round-trip cost of networking the
// module servers. E22 is the full-scale (n=7) run behind BENCH_PR8.json.
func BenchmarkE22NetTransport(b *testing.B) {
	s, idx := mustScheme(b, 1, 5)
	mapper := protocol.NewCoreMapper(s, idx)
	res, err := protocol.CompileMapper(mapper, protocol.CompileOptions{})
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, tr protocol.Transport) {
		cfg := shard.Config{
			Shards:   1,
			Pipeline: true,
			Protocol: protocol.Config{Resolver: res, Parallel: true},
		}
		if tr != nil {
			cfg.Transport = func(int) protocol.Transport { return tr }
		}
		svc, err := shard.New(mapper, cfg)
		if err != nil {
			b.Fatal(err)
		}
		defer svc.Close()
		const clients, window = 8, 64
		m := mapper.NumVars()
		b.ResetTimer()
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(c) + 22))
				stream := workload.HotSpot(rng, m, (b.N+clients-1)/clients, 16, 0)
				pending := make([]*frontend.Future, 0, window)
				drain := func() bool {
					for _, fut := range pending {
						if _, err := fut.Wait(); err != nil {
							b.Error(err)
							return false
						}
					}
					pending = pending[:0]
					return true
				}
				for i, v := range stream {
					var fut *frontend.Future
					var err error
					if i%3 == 0 {
						fut, err = svc.WriteAsync(v, uint64(i))
					} else {
						fut, err = svc.ReadAsync(v)
					}
					if err != nil {
						b.Error(err)
						return
					}
					pending = append(pending, fut)
					if len(pending) == window && !drain() {
						return
					}
				}
				drain()
			}(c)
		}
		wg.Wait()
	}
	b.Run("transport=inproc", func(b *testing.B) { run(b, nil) })
	b.Run("transport=tcp", func(b *testing.B) {
		const nServers = 4
		addrs := make([]string, nServers)
		for i := 0; i < nServers; i++ {
			lo, hi := netmpc.Range(i, nServers, int64(s.NumModules))
			sv := netmpc.NewServer(netmpc.ServerConfig{
				Q: s.Q, N: uint32(s.Deg), Modules: s.NumModules,
				AddrSpace: s.NumModules * uint64(s.ModuleSize),
				RangeLo:   uint64(lo), RangeHi: uint64(hi),
			})
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go sv.Serve(ln)
			defer sv.Close()
			addrs[i] = ln.Addr().String()
		}
		tr, err := netmpc.Dial(netmpc.Config{
			Servers: addrs, Q: s.Q, N: uint32(s.Deg),
			Modules:   int64(s.NumModules),
			AddrSpace: s.NumModules * uint64(s.ModuleSize),
			StoreID:   7,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer tr.Close()
		run(b, tr)
	})
}

// BenchmarkE23Resolver measures the address-resolution strategies behind E23
// at CI scale (q=2, n=5): one 256-variable Zipf block resolved into full copy
// rows per iteration, through the live per-op path, the batched computed
// kernels, the compiled table and the hot-coset hybrid cache. Sub-benchmark
// names carry "resolver=" so the bench-regression gate can require the
// computed and hybrid variants; allocation counts pin the batched paths'
// zero-steady-state-alloc property. E23 is the full-scale large-(q, n) sweep
// behind BENCH_PR9.json.
func BenchmarkE23Resolver(b *testing.B) {
	s, idx := mustScheme(b, 1, 5)
	mp := protocol.NewCoreMapper(s, idx)
	copies := mp.Copies()
	const block = 256
	stream := workload.Zipf(rand.New(rand.NewSource(23)), s.NumVariables, block, 1.1)
	bm := make([]uint64, 0, block*copies)
	ba := make([]uint64, 0, block*copies)
	var sink uint64
	b.Run("resolver=per-op", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, v := range stream {
				for c := 0; c < copies; c++ {
					mod, addr := mp.CopyAddr(v, c)
					sink += mod + addr
				}
			}
		}
	})
	b.Run("resolver=computed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bm, ba = protocol.AppendCopyAddrs(mp, bm[:0], ba[:0], stream, copies)
			sink += bm[0] + ba[len(ba)-1]
		}
	})
	b.Run("resolver=compiled", func(b *testing.B) {
		res, err := protocol.CompileMapper(mp, protocol.CompileOptions{Eager: true})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bm, ba = protocol.AppendCopyAddrs(res, bm[:0], ba[:0], stream, copies)
			sink += bm[0] + ba[len(ba)-1]
		}
	})
	b.Run("resolver=hybrid", func(b *testing.B) {
		hc := protocol.NewHotCache(mp, 0)
		// Warm pass: steady state is what the strategy is for; the cold fill
		// is E23's cold column.
		bm, ba = hc.AppendCopyAddrs(mp, bm[:0], ba[:0], stream)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bm, ba = hc.AppendCopyAddrs(mp, bm[:0], ba[:0], stream)
			sink += bm[0] + ba[len(ba)-1]
		}
	})
	_ = sink
}

// BenchmarkE24Repair measures the self-healing repair cycle behind E24 at CI
// scale (q=2, n=5): each iteration wipes one module, re-admits it, and runs
// a fixed read/write block to completion. With repair=on the module comes
// back through RecoverPending — barred from read quorums until the
// background sweep has rebuilt and certified its copies, which the
// iteration drains to empty — so ns/op carries the full rebuild cost. With
// repair=off the module is legacy-Recovered straight to live and the same
// block runs with no repair work: the delta is the price of never serving a
// stale copy. Sub-benchmark names carry "repair=" for the bench-regression
// gate.
func BenchmarkE24Repair(b *testing.B) {
	run := func(b *testing.B, repair bool) {
		s, idx := mustScheme(b, 1, 5)
		fs := mpc.NewFaultSet()
		sys, err := protocol.NewSystem(s, idx, protocol.Config{
			MaxIterationsPerPhase: 2048,
			NewMachine: func(cfg mpc.Config) (protocol.Machine, error) {
				return mpc.NewFailingShared(cfg, fs)
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		const block = 64
		vars := make([]uint64, block)
		vals := make([]uint64, block)
		for i := range vars {
			vars[i] = uint64(i*7+3) % s.NumVariables
			vals[i] = uint64(i + 1)
		}
		if _, err := sys.WriteBatch(vars, vals); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m := uint64(i) % s.NumModules
			fs.Fail(m)
			if repair {
				fs.RecoverPending(m)
			} else {
				fs.Recover(m)
			}
			if _, err := sys.WriteBatch(vars, vals); err != nil {
				b.Fatal(err)
			}
			if _, _, err := sys.ReadBatch(vars); err != nil {
				b.Fatal(err)
			}
			for fs.RepairCount() > 0 {
				if !sys.RepairStep() {
					b.Fatalf("repair stalled with backlog %d", fs.RepairCount())
				}
			}
		}
	}
	b.Run("repair=on", func(b *testing.B) { run(b, true) })
	b.Run("repair=off", func(b *testing.B) { run(b, false) })
}
