package main

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
)

const oldRun = `
goos: linux
goarch: amd64
pkg: detshmem
BenchmarkE6ProtocolScaling/live+seq/n=5-8         	     100	   1000000 ns/op	       0 B/op	       0 allocs/op
BenchmarkE6ProtocolScaling/compiled+seq/n=5-8     	     200	    500000 ns/op
BenchmarkE6ProtocolScaling/compiled+seq/n=5-8     	     200	    520000 ns/op
BenchmarkE6ProtocolScaling/compiled+seq/n=5-8     	     200	    480000 ns/op
BenchmarkE6ProtocolScaling/compiled+par/n=5-8     	     300	    400000 ns/op
BenchmarkE15Frontend/compiled+par-8               	     150	    900000 ns/op
BenchmarkE18ShardedFrontend/sharded/S=4/pipelined/uniform-8 	     150	    700000 ns/op	         0.01500 combined/op	         1.140 imbalance
BenchmarkGone-8                                   	     100	    100000 ns/op
PASS
`

const newRun = `
BenchmarkE6ProtocolScaling/live+seq/n=5-16        	     100	   2000000 ns/op
BenchmarkE6ProtocolScaling/compiled+seq/n=5-16    	     200	    510000 ns/op
BenchmarkE6ProtocolScaling/compiled+par/n=5-16    	     300	    800000 ns/op
BenchmarkE15Frontend/compiled+par-16              	     150	    910000 ns/op
BenchmarkE18ShardedFrontend/sharded/S=4/pipelined/uniform-16 	     150	   1500000 ns/op	         0.01500 combined/op	         1.140 imbalance
BenchmarkNew-16                                   	     100	    100000 ns/op
PASS
`

func parse(t *testing.T, s string) map[string][]float64 {
	t.Helper()
	m, err := parseBench(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParseBench(t *testing.T) {
	m := parse(t, oldRun)
	// GOMAXPROCS suffix stripped, repeated counts collected as samples.
	if got := m["BenchmarkE6ProtocolScaling/compiled+seq/n=5"]; len(got) != 3 {
		t.Fatalf("want 3 samples for repeated benchmark, got %v", got)
	}
	if got := m["BenchmarkE6ProtocolScaling/live+seq/n=5"]; len(got) != 1 || got[0] != 1000000 {
		t.Fatalf("ns/op not extracted from line with extra -benchmem pairs: %v", got)
	}
	if got := m["BenchmarkE18ShardedFrontend/sharded/S=4/pipelined/uniform"]; len(got) != 1 || got[0] != 700000 {
		t.Fatalf("ns/op not extracted from sharded line with custom metric pairs: %v", got)
	}
	if len(m) != 6 {
		t.Fatalf("parsed %d benchmarks, want 6: %v", len(m), m)
	}
}

func TestMedian(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("odd median = %v", got)
	}
	if got := median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("even median = %v", got)
	}
}

func TestGateFailsMatchedRegression(t *testing.T) {
	var buf bytes.Buffer
	// compiled+par doubled (ratio 2.0); live+seq also doubled but is not
	// gated by the match filter; compiled+seq moved 2% (within threshold).
	failed := gate(parse(t, oldRun), parse(t, newRun), 1.20,
		regexp.MustCompile(`compiled\+`), &buf)
	if len(failed) != 1 || failed[0] != "BenchmarkE6ProtocolScaling/compiled+par/n=5" {
		t.Fatalf("failed = %v, want exactly the compiled+par regression\n%s", failed, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "only in old run") || !strings.Contains(out, "only in new run") {
		t.Fatalf("added/removed benchmarks must be reported, not gated:\n%s", out)
	}
	if !strings.Contains(out, "ok (not gated)") {
		t.Fatalf("unmatched regressions must be reported as not gated:\n%s", out)
	}
}

func TestGateNoFilterGatesEverything(t *testing.T) {
	var buf bytes.Buffer
	failed := gate(parse(t, oldRun), parse(t, newRun), 1.20, nil, &buf)
	if len(failed) != 3 {
		t.Fatalf("nil filter must gate every benchmark; failed = %v", failed)
	}
}

func TestGateAlternationMatchesShardedFamily(t *testing.T) {
	var buf bytes.Buffer
	// The CI gate's alternation: compiled-resolver variants and the sharded
	// frontend family are both gated; the live+seq regression stays reported
	// but ungated.
	failed := gate(parse(t, oldRun), parse(t, newRun), 1.20,
		regexp.MustCompile(`compiled\+|sharded`), &buf)
	want := map[string]bool{
		"BenchmarkE6ProtocolScaling/compiled+par/n=5":               true,
		"BenchmarkE18ShardedFrontend/sharded/S=4/pipelined/uniform": true,
	}
	if len(failed) != 2 || !want[failed[0]] || !want[failed[1]] {
		t.Fatalf("failed = %v, want the compiled+par and sharded regressions\n%s", failed, buf.String())
	}
}

func TestRequireMatch(t *testing.T) {
	// A run carrying the GOMAXPROCS-swept E21 family satisfies the CI
	// requirement; the plain oldRun/newRun fixtures (no "procs=" names) do
	// not — that is the silent-pass case -require exists to catch.
	const proced = `
BenchmarkE21MulticoreScaling/sharded/S=4/pipelined/procs=4-4 	     150	    650000 ns/op	         0.01000 combined/op	        12.00 maxdepth
PASS
`
	req := regexp.MustCompile(`procs=`)
	if !requireMatch(parse(t, proced), req) {
		t.Fatal("requireMatch must accept a run containing a procs= benchmark")
	}
	if requireMatch(parse(t, newRun), req) {
		t.Fatal("requireMatch must reject a run with no procs= benchmark")
	}
}

func TestRequireListRepeatableAndCommaSeparated(t *testing.T) {
	// CI passes -require 'procs=' -require 'transport=tcp,transport=inproc';
	// each occurrence may carry a comma list and every pattern is enforced
	// independently.
	var l requireList
	if err := l.Set("procs="); err != nil {
		t.Fatal(err)
	}
	if err := l.Set("transport=tcp, transport=inproc"); err != nil {
		t.Fatal(err)
	}
	if len(l) != 3 {
		t.Fatalf("got %d patterns, want 3", len(l))
	}
	const run = `
BenchmarkE21MulticoreScaling/sharded/S=4/pipelined/procs=4-4 	     150	    650000 ns/op
BenchmarkE22NetTransport/transport=inproc-4 	  658869	       473.0 ns/op
BenchmarkE22NetTransport/transport=tcp-4 	  180411	      1807 ns/op
PASS
`
	samples := parse(t, run)
	for _, re := range l {
		if !requireMatch(samples, re) {
			t.Fatalf("pattern %q must match the full run", re)
		}
	}
	// Drop the tcp variant: the transport=tcp pattern must now fail.
	partial := parse(t, `
BenchmarkE21MulticoreScaling/sharded/S=4/pipelined/procs=4-4 	     150	    650000 ns/op
BenchmarkE22NetTransport/transport=inproc-4 	  658869	       473.0 ns/op
PASS
`)
	if requireMatch(partial, l[1]) {
		t.Fatal("transport=tcp must not match a run missing the tcp variant")
	}
	if err := l.Set("(["); err == nil {
		t.Fatal("bad regexp must be rejected")
	}
}

func TestGatePassesWithinThreshold(t *testing.T) {
	var buf bytes.Buffer
	failed := gate(parse(t, oldRun), parse(t, oldRun), 1.20, nil, &buf)
	if len(failed) != 0 {
		t.Fatalf("identical runs must pass: %v", failed)
	}
}
