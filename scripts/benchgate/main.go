// Command benchgate compares two `go test -bench` output files and fails
// when a benchmark regresses beyond a threshold. It is the CI performance
// gate: the workflow benches the PR head and the merge base, then runs
//
//	benchgate -old base.txt -new head.txt -threshold 1.20 -match 'compiled\+|sharded'
//
// which exits nonzero if any matching benchmark's median ns/op grew by more
// than 20%. The match is a regexp over full benchmark names, so one
// alternation gates both the compiled-resolver ablation variants and the
// sharded-frontend family (whose sub-benchmarks all carry "sharded").
// Benchmarks present in only one file are reported but never fail the gate
// (renames and additions are not regressions).
//
// -require '<regexp>' additionally fails the run when NO benchmark in the
// new file matches the regexp. It guards against the silent-pass failure
// mode where a -bench filter typo (or a renamed family) makes the candidate
// run measure nothing: the gate would compare zero benchmarks and report
// success. The flag is repeatable and each occurrence may hold a
// comma-separated list; every listed pattern must match some benchmark
// independently. CI requires 'procs=' (the GOMAXPROCS-swept E21 variants)
// and both 'transport=tcp' and 'transport=inproc' (the E22 transport
// family), so all gated families are provably present in every run.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// gomaxprocsSuffix strips the trailing "-8" CPU count go test appends to
// benchmark names, so runs on machines with different core counts compare.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBench reads standard `go test -bench` output and returns ns/op
// samples per benchmark name. Repeated runs (-count=N) yield multiple
// samples; everything that is not a benchmark result line is ignored.
func parseBench(r io.Reader) (map[string][]float64, error) {
	samples := make(map[string][]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// Benchmark<Name>-P  <iters>  <value> ns/op  [more pairs...]
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] != "ns/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad ns/op value in %q: %v", sc.Text(), err)
			}
			samples[name] = append(samples[name], v)
			break
		}
	}
	return samples, sc.Err()
}

func median(vs []float64) float64 {
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// gate compares medians and writes a report to w. It returns the names of
// benchmarks matching the filter whose new/old ratio exceeds threshold.
func gate(old, cur map[string][]float64, threshold float64, match *regexp.Regexp, w io.Writer) []string {
	names := make([]string, 0, len(old))
	for name := range old {
		names = append(names, name)
	}
	sort.Strings(names)

	var failed []string
	for _, name := range names {
		newSamples, ok := cur[name]
		if !ok {
			fmt.Fprintf(w, "%-60s only in old run (skipped)\n", name)
			continue
		}
		o, n := median(old[name]), median(newSamples)
		ratio := n / o
		verdict := "ok"
		gated := match == nil || match.MatchString(name)
		if gated && ratio > threshold {
			verdict = "REGRESSION"
			failed = append(failed, name)
		} else if !gated {
			verdict = "ok (not gated)"
		}
		fmt.Fprintf(w, "%-60s old %12.0f ns/op  new %12.0f ns/op  ratio %.3f  %s\n",
			name, o, n, ratio, verdict)
	}
	newOnly := make([]string, 0)
	for name := range cur {
		if _, ok := old[name]; !ok {
			newOnly = append(newOnly, name)
		}
	}
	sort.Strings(newOnly)
	for _, name := range newOnly {
		fmt.Fprintf(w, "%-60s only in new run (skipped)\n", name)
	}
	return failed
}

// requireMatch reports whether any benchmark name matches require. It backs
// the -require flag: a candidate run where the required family is absent
// (filter typo, renamed benchmark) must fail loudly instead of gating an
// empty set.
func requireMatch(samples map[string][]float64, require *regexp.Regexp) bool {
	for name := range samples {
		if require.MatchString(name) {
			return true
		}
	}
	return false
}

// requireList collects -require occurrences; each may be a comma-separated
// list of regexps, and every collected pattern must match independently.
type requireList []*regexp.Regexp

func (l *requireList) String() string { return fmt.Sprint(len(*l)) }

func (l *requireList) Set(v string) error {
	for _, expr := range strings.Split(v, ",") {
		if expr = strings.TrimSpace(expr); expr == "" {
			continue
		}
		re, err := regexp.Compile(expr)
		if err != nil {
			return err
		}
		*l = append(*l, re)
	}
	return nil
}

func main() {
	var (
		oldPath   = flag.String("old", "", "bench output of the base revision")
		newPath   = flag.String("new", "", "bench output of the candidate revision")
		threshold = flag.Float64("threshold", 1.20, "fail when new/old median ns/op exceeds this ratio")
		matchExpr = flag.String("match", "", "only gate benchmarks whose name matches this regexp (all when empty)")
		requires  requireList
	)
	flag.Var(&requires, "require", "fail unless some benchmark in -new matches this regexp (repeatable; comma-separated lists accepted; every pattern must match)")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -old and -new are required")
		os.Exit(2)
	}
	var match *regexp.Regexp
	if *matchExpr != "" {
		var err error
		if match, err = regexp.Compile(*matchExpr); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: bad -match: %v\n", err)
			os.Exit(2)
		}
	}
	oldSamples, err := readFile(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	newSamples, err := readFile(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	for _, require := range requires {
		if !requireMatch(newSamples, require) {
			fmt.Fprintf(os.Stderr, "benchgate: no benchmark in %s matches required pattern %q\n",
				*newPath, require)
			os.Exit(1)
		}
	}
	failed := gate(oldSamples, newSamples, *threshold, match, os.Stdout)
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d benchmark(s) regressed beyond %.0f%%: %s\n",
			len(failed), (*threshold-1)*100, strings.Join(failed, ", "))
		os.Exit(1)
	}
	fmt.Printf("benchgate: no regressions beyond %.0f%%\n", (*threshold-1)*100)
}

func readFile(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parseBench(f)
}
