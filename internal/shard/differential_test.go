package shard

import (
	"sort"
	"sync"
	"testing"

	"detshmem/internal/frontend"
	"detshmem/internal/workload"
)

// The sharded differential oracle. The service promises per-variable
// linearizability with a per-shard commit order: every operation's
// Future.Seq orders it within its variable's shard, and there is no
// cross-shard order. So the oracle groups committed operations by
// Route(v), sorts each shard's group by sequence number, replays each
// group independently against a plain map, and demands identical read
// values. Any lost write, reordering within a shard, or cross-shard
// routing leak (two shards serving one variable) fails the replay.

type record struct {
	v     uint64
	val   uint64
	write bool
	seq   uint64
	got   uint64
}

// runShardClients hammers the service from `clients` goroutines with
// windowed async hot-spot traffic (40% writes over a small hot set so
// combining, coalescing, conflicts, and cross-shard interleaving all
// trigger), then collects each op's committed sequence number and value.
func runShardClients(t *testing.T, svc *Service, clients, opsPer int, seed int64) []record {
	t.Helper()
	const window = 32
	var mu sync.Mutex
	var all []record
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := workload.ClientRNG(seed, c)
			stream := workload.HotSpot(rng, 64, opsPer, 8, 0.7)
			recs := make([]record, 0, opsPer)
			futs := make([]*frontend.Future, 0, window)
			drain := func() bool {
				for i, fut := range futs {
					k := len(recs) - len(futs) + i
					got, err := fut.Wait()
					if err != nil {
						errs <- err
						return false
					}
					recs[k].seq = fut.Seq()
					recs[k].got = got
				}
				futs = futs[:0]
				return true
			}
			for i, v := range stream {
				var fut *frontend.Future
				var err error
				if rng.Intn(100) < 40 {
					val := uint64(c+1)<<32 | uint64(i)
					recs = append(recs, record{v: v, val: val, write: true})
					fut, err = svc.WriteAsync(v, val)
				} else {
					recs = append(recs, record{v: v})
					fut, err = svc.ReadAsync(v)
				}
				if err != nil {
					errs <- err
					return
				}
				futs = append(futs, fut)
				if len(futs) == window && !drain() {
					return
				}
			}
			if !drain() {
				return
			}
			mu.Lock()
			all = append(all, recs...)
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	return all
}

// checkShardOracle replays each shard's commit sequence independently.
func checkShardOracle(t *testing.T, svc *Service, recs []record) {
	t.Helper()
	groups := make([][]record, svc.Shards())
	for _, r := range recs {
		s := svc.Route(r.v)
		groups[s] = append(groups[s], r)
	}
	for s, g := range groups {
		sort.Slice(g, func(i, j int) bool { return g[i].seq < g[j].seq })
		store := map[uint64]uint64{}
		for i, r := range g {
			if i > 0 && g[i-1].seq == r.seq {
				t.Fatalf("shard %d: duplicate sequence %d", s, r.seq)
			}
			if r.write {
				store[r.v] = r.val
				continue
			}
			if want := store[r.v]; r.got != want {
				t.Fatalf("shard %d seq %d: read var %d = %d, replay says %d",
					s, r.seq, r.v, r.got, want)
			}
		}
	}
}

// TestDifferentialOracle is the matrix: both dispatchers × shard counts ×
// client counts, ≥1e5 ops at full scale (-short shrinks it for the race
// detector, which runs this very test in CI).
func TestDifferentialOracle(t *testing.T) {
	opsPer := 2000
	clientCounts := []int{1, 8, 64}
	if testing.Short() {
		opsPer = 300
		clientCounts = []int{1, 8}
	}
	for _, cfg := range []Config{
		{Shards: 1, Pipeline: true},
		{Shards: 4, Pipeline: true},
		{Shards: 4, Pipeline: true, MaxBatch: 3, MaxPending: 1},
		{Shards: 4, Pipeline: false},
		{Shards: 7, Pipeline: true, Observe: true},
	} {
		cfg := cfg
		for _, clients := range clientCounts {
			clients := clients
			t.Run(cfg.name()+"/c"+string(rune('0'+clients/10))+string(rune('0'+clients%10)), func(t *testing.T) {
				t.Parallel()
				svc := newService(t, 5, cfg)
				recs := runShardClients(t, svc, clients, opsPer, int64(42+clients))
				if err := svc.Flush(); err != nil {
					t.Fatal(err)
				}
				checkShardOracle(t, svc, recs)
				st := svc.Stats()
				if st.Total.OpsIn != int64(clients*opsPer) {
					t.Fatalf("ops in = %d, want %d", st.Total.OpsIn, clients*opsPer)
				}
				if st.Total.FailedBatches != 0 || st.Total.Unfinished != 0 {
					t.Fatalf("failures during hammer: %+v", st.Total)
				}
			})
		}
	}
}
