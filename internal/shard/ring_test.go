package shard

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"detshmem/internal/frontend"
	"detshmem/internal/mpc"
	"detshmem/internal/protocol"
)

// TestRingFIFO drives the ring with concurrent producers and one consumer
// and checks the two properties the dispatcher's correctness rests on:
// nothing is lost or duplicated, and each producer's operations arrive in
// the order it enqueued them (claim order is pop order).
func TestRingFIFO(t *testing.T) {
	const producers, perProducer = 8, 5000
	r := newRing(64, nil) // small: exercises wrap-around and the full path
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				v := uint64(p)<<32 | uint64(i)
				if err := r.enqueue(ringWrite, v, v, nil, nil); err != nil {
					t.Errorf("enqueue: %v", err)
					return
				}
			}
		}(p)
	}
	seen := make([]int, producers)
	total := 0
	var op ringOp
	for total < producers*perProducer {
		if !r.tryPop(&op) {
			r.park()
			continue
		}
		p := int(op.v >> 32)
		i := int(op.v & 0xffffffff)
		if i != seen[p] {
			t.Fatalf("producer %d: popped index %d, want %d (FIFO violated)", p, i, seen[p])
		}
		seen[p]++
		total++
	}
	wg.Wait()
	if r.tryPop(&op) {
		t.Fatalf("ring not empty after draining everything: %+v", op)
	}
}

// TestRingCloseCompleteness races producers against close: every enqueue
// must either succeed — and then be popped before the close sentinel — or
// fail with ErrClosed. Nothing may be admitted behind the sentinel and
// nothing may vanish.
func TestRingCloseCompleteness(t *testing.T) {
	for round := 0; round < 20; round++ {
		r := newRing(32, nil)
		const producers = 6
		var accepted atomic.Int64
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if err := r.enqueue(ringRead, 1, 0, nil, nil); err != nil {
						if !errors.Is(err, frontend.ErrClosed) {
							t.Errorf("enqueue: %v", err)
						}
						return
					}
					accepted.Add(1)
				}
			}()
		}
		popped := int64(0)
		closed := false
		var op ringOp
		deadline := time.After(10 * time.Second)
		for {
			if !r.tryPop(&op) {
				if !closed {
					closed = true
					// Close from the consumer goroutine mid-stream: the
					// sentinel lands behind every in-flight admission.
					go func() { r.close(); close(stop) }()
				}
				select {
				case <-deadline:
					t.Fatal("consumer starved: close sentinel never arrived")
				default:
				}
				r.park()
				continue
			}
			if op.kind == ringClose {
				break
			}
			popped++
		}
		wg.Wait()
		// Stragglers that were mid-enqueue when close() started still land
		// before the sentinel — so by now accepted is final.
		if popped != accepted.Load() {
			t.Fatalf("round %d: accepted %d ops but popped %d before the close sentinel",
				round, accepted.Load(), popped)
		}
		if r.tryPop(&op) {
			t.Fatalf("op admitted behind the close sentinel: %+v", op)
		}
	}
}

// TestRingEnqueueBatchSpansCapacity admits batches larger than the ring
// through the multi-slot claim while the consumer drains concurrently —
// the claim is one fetch-add even when the batch must stream through the
// ring in windows.
func TestRingEnqueueBatchSpansCapacity(t *testing.T) {
	r := newRing(16, nil)
	const n = 1000
	ops := make([]BatchOp, n)
	futs := make([]*frontend.Future, n)
	slab := make([]frontend.Future, n)
	for i := range ops {
		ops[i] = BatchOp{Write: true, Var: uint64(i), Val: uint64(i)}
		futs[i] = &slab[i]
	}
	done := make(chan error, 1)
	go func() { done <- r.enqueueBatch(ops, nil, futs) }()
	var op ringOp
	for i := 0; i < n; {
		if !r.tryPop(&op) {
			r.park()
			continue
		}
		if op.v != uint64(i) {
			t.Errorf("batch op %d popped out of order (got var %d)", i, op.v)
			break
		}
		i++
	}
	if err := <-done; err != nil {
		t.Fatalf("enqueueBatch: %v", err)
	}
}

// TestRingAdmissionFaultChurn is the satellite -race hammer at the service
// level: concurrent clients stream through tiny lock-free rings while a
// background goroutine fails and recovers modules and another hammers
// Flush; at the end the service closes under load. Every operation must
// complete or fail loudly (quorum verdict / ErrClosed) — no hangs, no
// silent drops.
func TestRingAdmissionFaultChurn(t *testing.T) {
	fs := mpc.NewFaultSet()
	svc, s, _ := faultService(t, 2, fs, protocol.Config{FaultAttempts: 4})
	N := s.NumModules

	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		m := uint64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			fs.Fail(m)
			time.Sleep(100 * time.Microsecond)
			fs.Recover(m)
			m = (m + 7) % N
		}
	}()

	const clients, opsPer = 4, 400
	var completed, failed atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				v := uint64((c*opsPer + i) % 80) // the n=3 scheme has 84 variables
				fut, err := svc.WriteAsync(v, v)
				if err != nil {
					if !errors.Is(err, frontend.ErrClosed) {
						t.Errorf("client %d: admit: %v", c, err)
					}
					return
				}
				if _, err := fut.Wait(); err != nil {
					if !errors.Is(err, protocol.ErrIncomplete) && !errors.Is(err, protocol.ErrQuorumUnreachable) {
						t.Errorf("client %d: unexpected completion error: %v", c, err)
					}
					failed.Add(1)
				} else {
					completed.Add(1)
				}
				if i%64 == 0 {
					if err := svc.Flush(); err != nil && !errors.Is(err, frontend.ErrClosed) {
						t.Errorf("client %d: flush: %v", c, err)
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	churn.Wait()
	if err := svc.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got := completed.Load() + failed.Load(); got != clients*opsPer {
		t.Fatalf("attributed %d of %d operations (completed %d, failed %d)",
			got, clients*opsPer, completed.Load(), failed.Load())
	}
	if completed.Load() == 0 {
		t.Fatal("no operation ever completed under churn")
	}
}

// TestRingEnqueueAllocs pins the admission path's allocation budget: an
// enqueue/pop cycle through the ring itself is allocation-free (the future
// is the caller's single allocation, minted outside the measured region).
func TestRingEnqueueAllocs(t *testing.T) {
	r := newRing(64, nil)
	fut := frontend.NewFuture()
	var op ringOp
	avg := testing.AllocsPerRun(1000, func() {
		if err := r.enqueue(ringWrite, 7, 7, fut, nil); err != nil {
			t.Fatal(err)
		}
		if !r.tryPop(&op) {
			t.Fatal("pop failed after enqueue")
		}
	})
	if avg != 0 {
		t.Fatalf("ring enqueue/pop allocates %.1f per op, want 0", avg)
	}
}

// FuzzRing model-checks the slot claim/seal arithmetic single-threaded: a
// byte script drives enqueues (single and batch) and pops against a plain
// slice model, across fuzzer-chosen capacities, long enough to wrap the
// generation stamps many times. Any divergence — wrong value, wrong order,
// pop succeeding on an empty ring or failing on a non-empty one — fails.
func FuzzRing(f *testing.F) {
	f.Add(uint8(2), []byte{0, 1, 2, 0, 0, 1})
	f.Add(uint8(4), []byte{3, 5, 1, 1, 1, 1, 1, 1, 0, 2})
	f.Add(uint8(3), []byte{0, 0, 0, 1, 1, 1, 3, 7, 1, 1, 1, 1, 1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, capBits uint8, script []byte) {
		capacity := 1 << (capBits%4 + 1) // 2..16 slots
		r := newRing(capacity, nil)
		ringCap := len(r.slots)
		var model []uint64
		next := uint64(0)
		var op ringOp
		for pc := 0; pc < len(script); pc++ {
			switch script[pc] % 4 {
			case 0: // enqueue one (skip when full: single-threaded, publish would spin forever)
				if len(model) >= ringCap {
					continue
				}
				if err := r.enqueue(ringWrite, next, next, nil, nil); err != nil {
					t.Fatalf("enqueue: %v", err)
				}
				model = append(model, next)
				next++
			case 1: // pop one
				got := r.tryPop(&op)
				if got != (len(model) > 0) {
					t.Fatalf("tryPop=%v with %d modeled entries", got, len(model))
				}
				if got {
					if op.v != model[0] {
						t.Fatalf("popped %d, model head %d", op.v, model[0])
					}
					model = model[1:]
				}
			case 2: // drain fully
				for r.tryPop(&op) {
					if len(model) == 0 {
						t.Fatal("popped from an empty model")
					}
					if op.v != model[0] {
						t.Fatalf("popped %d, model head %d", op.v, model[0])
					}
					model = model[1:]
				}
				if len(model) != 0 {
					t.Fatalf("ring empty but model holds %d", len(model))
				}
			case 3: // batch enqueue of what fits
				pc++
				if pc >= len(script) {
					break
				}
				m := int(script[pc]) % (ringCap - len(model) + 1)
				if m == 0 {
					continue
				}
				ops := make([]BatchOp, m)
				futs := make([]*frontend.Future, m)
				for i := range ops {
					ops[i] = BatchOp{Write: true, Var: next, Val: next}
					model = append(model, next)
					next++
				}
				if err := r.enqueueBatch(ops, nil, futs); err != nil {
					t.Fatalf("enqueueBatch: %v", err)
				}
			}
		}
		// Final drain: the ring and the model must agree to the last op.
		for r.tryPop(&op) {
			if len(model) == 0 || op.v != model[0] {
				t.Fatalf("final drain diverged (model %d left)", len(model))
			}
			model = model[1:]
		}
		if len(model) != 0 {
			t.Fatalf("%d modeled entries never popped", len(model))
		}
	})
}

// TestRingDepthObservability checks the ring's high-water mark reaches
// Stats().MaxQueueDepth and the collector's park/wake counters move.
func TestRingDepthObservability(t *testing.T) {
	svc := newService(t, 3, Config{Shards: 1, Pipeline: true, MaxBatch: 8, Observe: true})
	for i := 0; i < 64; i++ {
		if err := svc.Write(uint64(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if st := svc.Stats(); st.Total.MaxQueueDepth < 1 {
		t.Fatalf("MaxQueueDepth %d, want >= 1", st.Total.MaxQueueDepth)
	}
	snap := svc.Snapshot()
	if snap["shard0_flusher_parks_total"] == 0 {
		t.Fatalf("flusher never parked across 64 synchronous writes: %v", snap)
	}
	if snap["shard0_flusher_wakes_total"] == 0 {
		t.Fatalf("no producer wake recorded: %v", snap)
	}
	if snap["shard0_max_ring_depth"] < 1 {
		t.Fatalf("max_ring_depth %d, want >= 1", snap["shard0_max_ring_depth"])
	}
}
