package shard

import (
	"errors"
	"sync"
	"testing"

	"detshmem/internal/core"
	"detshmem/internal/frontend"
	"detshmem/internal/protocol"
)

// testMapper builds the q=2 core mapper for degree n.
func testMapper(t testing.TB, n int) protocol.Mapper {
	t.Helper()
	s, err := core.New(1, n)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := s.NewIndexer()
	if err != nil {
		t.Fatal(err)
	}
	return protocol.NewCoreMapper(s, idx)
}

func newService(t testing.TB, n int, cfg Config) *Service {
	t.Helper()
	svc, err := New(testMapper(t, n), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = svc.Close() })
	return svc
}

// configs is the dispatcher × shard-count matrix every semantic test runs
// over.
func configs() []Config {
	return []Config{
		{Shards: 1, Pipeline: false},
		{Shards: 1, Pipeline: true},
		{Shards: 4, Pipeline: false},
		{Shards: 4, Pipeline: true},
		{Shards: 3, Pipeline: true, MaxBatch: 2, MaxPending: 1},
	}
}

func (c Config) name() string {
	pipe := "classic"
	if c.Pipeline {
		pipe = "pipelined"
	}
	return pipe + "/" + string(rune('0'+c.Shards))
}

// TestRoundTrip: writes then reads through every dispatcher/shard
// combination, including cross-batch visibility and unwritten reads.
func TestRoundTrip(t *testing.T) {
	for _, cfg := range configs() {
		cfg := cfg
		t.Run(cfg.name(), func(t *testing.T) {
			svc := newService(t, 3, cfg)
			for v := uint64(0); v < 30; v++ {
				if err := svc.Write(v, v*7+1); err != nil {
					t.Fatal(err)
				}
			}
			for v := uint64(0); v < 30; v++ {
				got, err := svc.Read(v)
				if err != nil {
					t.Fatal(err)
				}
				if got != v*7+1 {
					t.Fatalf("read %d = %d, want %d", v, got, v*7+1)
				}
			}
			if got, err := svc.Read(40); err != nil || got != 0 {
				t.Fatalf("unwritten read = %d, %v", got, err)
			}
			st := svc.Stats()
			if st.Total.OpsIn != 61 {
				t.Fatalf("total ops in = %d, want 61", st.Total.OpsIn)
			}
			if len(st.PerShard) != cfg.Shards && !(cfg.Shards == 0 && len(st.PerShard) == 1) {
				t.Fatalf("per-shard stats = %d entries", len(st.PerShard))
			}
		})
	}
}

// TestAsyncPipelining drives windowed async traffic so pipelined shards
// genuinely overlap admission with flushing, then checks every future.
func TestAsyncPipelining(t *testing.T) {
	for _, cfg := range configs() {
		cfg := cfg
		t.Run(cfg.name(), func(t *testing.T) {
			svc := newService(t, 3, cfg)
			const ops = 400
			futs := make([]*frontend.Future, 0, ops)
			last := map[uint64]uint64{}
			for i := 0; i < ops; i++ {
				v := uint64(i % 17)
				if i%3 == 0 {
					fut, err := svc.WriteAsync(v, uint64(i)+1)
					if err != nil {
						t.Fatal(err)
					}
					last[v] = uint64(i) + 1
					futs = append(futs, fut)
				} else {
					fut, err := svc.ReadAsync(v)
					if err != nil {
						t.Fatal(err)
					}
					futs = append(futs, fut)
				}
			}
			if err := svc.Flush(); err != nil {
				t.Fatal(err)
			}
			for i, fut := range futs {
				if _, err := fut.Wait(); err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
			}
			// Single submitter: the final read of every variable must see
			// the last write (per-variable linearizability).
			for v, want := range last {
				got, err := svc.Read(v)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("var %d = %d, want %d", v, got, want)
				}
			}
		})
	}
}

// TestCloseSemantics: Close flushes pending work; later submissions and a
// second Close return frontend.ErrClosed.
func TestCloseSemantics(t *testing.T) {
	for _, cfg := range configs() {
		cfg := cfg
		t.Run(cfg.name(), func(t *testing.T) {
			svc, err := New(testMapper(t, 3), cfg)
			if err != nil {
				t.Fatal(err)
			}
			fut, err := svc.WriteAsync(3, 33)
			if err != nil {
				t.Fatal(err)
			}
			if err := svc.Close(); err != nil {
				t.Fatal(err)
			}
			if _, err := fut.Wait(); err != nil {
				t.Fatalf("pending write not flushed by Close: %v", err)
			}
			if _, err := svc.Read(3); !errors.Is(err, frontend.ErrClosed) {
				t.Fatalf("read after close = %v, want ErrClosed", err)
			}
			if err := svc.Close(); !errors.Is(err, frontend.ErrClosed) {
				t.Fatalf("second close = %v, want ErrClosed", err)
			}
		})
	}
}

// TestTypedErrorsSurface: protocol admission errors keep their identity
// through the sharded path, and a failed batch does not wedge the shard.
func TestTypedErrorsSurface(t *testing.T) {
	for _, pipe := range []bool{false, true} {
		pipe := pipe
		name := "classic"
		if pipe {
			name = "pipelined"
		}
		t.Run(name, func(t *testing.T) {
			svc := newService(t, 3, Config{Shards: 2, Pipeline: pipe})
			m := testMapper(t, 3)
			if _, err := svc.Read(m.NumVars() + 5); !errors.Is(err, protocol.ErrVarOutOfRange) {
				t.Fatalf("error = %v, want ErrVarOutOfRange", err)
			}
			// The shard stays usable after the failed batch.
			if err := svc.Write(1, 11); err != nil {
				t.Fatal(err)
			}
			if got, err := svc.Read(1); err != nil || got != 11 {
				t.Fatalf("post-failure read = %d, %v", got, err)
			}
		})
	}
}

// TestRouteStability pins the router contract directly: deterministic,
// stable across calls and across Service instances, in range, and
// partition-complete (with enough variables every shard serves some).
func TestRouteStability(t *testing.T) {
	a := newService(t, 3, Config{Shards: 4})
	b := newService(t, 3, Config{Shards: 4})
	seen := make([]int, 4)
	for v := uint64(0); v < 5000; v++ {
		r := a.Route(v)
		if r < 0 || r >= 4 {
			t.Fatalf("route(%d) = %d out of range", v, r)
		}
		if r != a.Route(v) || r != b.Route(v) {
			t.Fatalf("route(%d) unstable", v)
		}
		seen[r]++
	}
	for i, n := range seen {
		if n == 0 {
			t.Fatalf("shard %d serves no variable in [0, 5000)", i)
		}
		// The splitmix mix should spread a contiguous range roughly evenly:
		// each shard within 2× of the fair share.
		if n < 5000/8 || n > 5000/2 {
			t.Fatalf("shard %d load %d badly skewed", i, n)
		}
	}
}

// FuzzRoute fuzzes routing stability and partition membership over
// arbitrary variables and shard counts.
func FuzzRoute(f *testing.F) {
	f.Add(uint64(0), uint8(1))
	f.Add(uint64(12345), uint8(4))
	f.Add(^uint64(0), uint8(7))
	m := testMapper(f, 3)
	services := map[uint8]*Service{}
	f.Fuzz(func(t *testing.T, v uint64, shards uint8) {
		s := int(shards%16) + 1
		svc, ok := services[uint8(s)]
		if !ok {
			var err error
			svc, err = New(m, Config{Shards: s})
			if err != nil {
				t.Fatal(err)
			}
			services[uint8(s)] = svc
		}
		r := svc.Route(v)
		if r < 0 || r >= s {
			t.Fatalf("route(%d) = %d with %d shards", v, r, s)
		}
		if r2 := svc.Route(v); r2 != r {
			t.Fatalf("route(%d) unstable: %d then %d", v, r, r2)
		}
	})
}

// TestSnapshotAndImbalance: per-shard labeled metrics and the imbalance
// ratio behave (Observe on, 2 shards, skewed traffic onto one variable).
func TestSnapshotAndImbalance(t *testing.T) {
	svc := newService(t, 3, Config{Shards: 2, Pipeline: true, Observe: true})
	hot := uint64(0)
	hotShard := svc.Route(hot)
	for i := 0; i < 50; i++ {
		if err := svc.Write(hot, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Write(1, 1); err != nil { // may or may not share the shard
		t.Fatal(err)
	}
	snap := svc.Snapshot()
	// The histogram drops empty shards (zero observations), so count is the
	// number of shards that served traffic.
	if c := snap["shard_ops_count"]; c < 1 || c > 2 {
		t.Fatalf("shard_ops_count = %d, want 1 or 2", c)
	}
	if snap["shard_ops_sum"] != 51 {
		t.Fatalf("shard_ops_sum = %d, want 51", snap["shard_ops_sum"])
	}
	if svc.Collector(hotShard) == nil {
		t.Fatal("Observe did not attach a collector")
	}
	key := "shard0_batches_total"
	if hotShard == 1 {
		key = "shard1_batches_total"
	}
	if snap[key] == 0 {
		t.Fatalf("hot shard recorded no batches: %v", snap)
	}
	st := svc.Stats()
	if imb := st.Imbalance(); imb < 1 || imb > 2 {
		t.Fatalf("imbalance = %v outside (1, 2]", imb)
	}
	// Without Observe the snapshot still carries the service-level view.
	svc2 := newService(t, 3, Config{Shards: 2})
	if err := svc2.Write(0, 1); err != nil {
		t.Fatal(err)
	}
	if snap2 := svc2.Snapshot(); snap2["shard_ops_sum"] != 1 {
		t.Fatalf("unobserved snapshot = %v", snap2)
	}
}

// TestSharedResolver: all shards must share one compiled resolver (the
// point of Config.Resolver); spot-check by writing through one shard and
// confirming the others see independent stores (partitioned, not shared).
func TestSharedResolver(t *testing.T) {
	m := testMapper(t, 3)
	r, err := protocol.CompileMapper(m, protocol.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(r, Config{Shards: 2, Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	// Each shard owns a full System over the same mapper; stores are
	// disjoint because the router never sends one variable to two shards.
	v := uint64(5)
	if err := svc.Write(v, 99); err != nil {
		t.Fatal(err)
	}
	other := 1 - svc.Route(v)
	vals, _, err := svc.System(other).ReadBatch([]uint64{v})
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 0 {
		t.Fatalf("other shard's store holds %d for var %d; partition leaked", vals[0], v)
	}
}

// TestResolverStrategies runs the sharded service table-free (computed) and
// cache-backed (hybrid): round-trips must match the compiled default, no
// shard may compile a table, and hybrid shards must share one hot cache.
func TestResolverStrategies(t *testing.T) {
	for _, strat := range []protocol.ResolverStrategy{protocol.ResolverComputed, protocol.ResolverHybrid} {
		t.Run(strat.String(), func(t *testing.T) {
			svc := newService(t, 3, Config{
				Shards:   3,
				Pipeline: true,
				Protocol: protocol.Config{Strategy: strat, HotCacheSlots: 512},
			})
			for v := uint64(0); v < 40; v++ {
				if err := svc.Write(v, v*13+3); err != nil {
					t.Fatal(err)
				}
			}
			for v := uint64(0); v < 40; v++ {
				got, err := svc.Read(v)
				if err != nil {
					t.Fatal(err)
				}
				if got != v*13+3 {
					t.Fatalf("read %d = %d, want %d", v, got, v*13+3)
				}
			}
		})
	}
	// A caller-shared hybrid cache is accepted and actually used.
	m := testMapper(t, 3)
	hc := protocol.NewHotCache(m, 256)
	svc, err := New(m, Config{Shards: 2, Protocol: protocol.Config{Strategy: protocol.ResolverHybrid, HotCache: hc}})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if err := svc.Write(7, 77); err != nil {
		t.Fatal(err)
	}
	if got, err := svc.Read(7); err != nil || got != 77 {
		t.Fatalf("read = %d, %v", got, err)
	}
	if hits, misses := hc.Stats(); hits+misses == 0 {
		t.Fatal("shared hot cache saw no traffic")
	}
}

// TestExplicitFlushWaits: Flush on the pipelined dispatcher must not return
// until every batch sealed so far committed. Stats are accounted before
// futures complete (read-your-ops), so after Flush every submitted op must
// already be visible in the snapshot.
func TestExplicitFlushWaits(t *testing.T) {
	svc := newService(t, 3, Config{Shards: 2, Pipeline: true})
	var futs []*frontend.Future
	for i := 0; i < 200; i++ {
		fut, err := svc.WriteAsync(uint64(i%9), uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, fut)
	}
	if err := svc.Flush(); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.Total.OpsIn != 200 {
		t.Fatalf("after Flush, %d ops accounted, want 200", st.Total.OpsIn)
	}
	if st.Total.ExplicitFlushes == 0 {
		t.Fatal("no explicit flush recorded")
	}
	for i, fut := range futs {
		if _, err := fut.Wait(); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
}

// TestBackpressure: MaxPending 1 with a tiny MaxBatch still completes a
// hammering workload (submitters block rather than fail or deadlock).
func TestBackpressure(t *testing.T) {
	svc := newService(t, 3, Config{Shards: 2, Pipeline: true, MaxBatch: 2, MaxPending: 1})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c uint64) {
			defer wg.Done()
			for i := uint64(0); i < 60; i++ {
				if err := svc.Write(c, c<<8|i); err != nil {
					errs <- err
					return
				}
				if _, err := svc.Read(c); err != nil {
					errs <- err
					return
				}
			}
		}(uint64(c))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
