package shard

import (
	"errors"
	"sync"
	"testing"
	"time"

	"detshmem/internal/core"
	"detshmem/internal/frontend"
	"detshmem/internal/mpc"
	"detshmem/internal/protocol"
)

// faultService builds a pipelined sharded service whose every shard's
// interconnect consults one shared runtime fault set.
func faultService(t testing.TB, shards int, fs *mpc.FaultSet, pcfg protocol.Config) (*Service, *core.Scheme, core.Indexer) {
	t.Helper()
	s, err := core.New(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := s.NewIndexer()
	if err != nil {
		t.Fatal(err)
	}
	pcfg.NewMachine = func(mcfg mpc.Config) (protocol.Machine, error) { return mpc.NewFailingShared(mcfg, fs) }
	if pcfg.MaxIterationsPerPhase == 0 {
		pcfg.MaxIterationsPerPhase = 2048
	}
	svc, err := New(protocol.NewCoreMapper(s, idx), Config{
		Shards:   shards,
		Pipeline: true,
		MaxBatch: 16,
		Protocol: pcfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return svc, s, idx
}

// TestShardDegradedBatch pins degraded-mode serving on the pipelined
// dispatcher: with the victim variable's modules failed, the victim's
// future fails with the quorum verdict while healthy operations admitted
// into the same shard's stream commit normally, and the aggregated stats
// count the stranding.
func TestShardDegradedBatch(t *testing.T) {
	fs := mpc.NewFaultSet()
	svc, s, idx := faultService(t, 2, fs, protocol.Config{})
	defer svc.Close()

	victim := uint64(10)
	vmods := s.VarModules(nil, idx.Mat(victim))
	failed := map[uint64]bool{}
	for _, m := range vmods {
		failed[m] = true
	}
	var healthy []uint64
	var scratch []uint64
	for v := uint64(0); len(healthy) < 8; v++ {
		if v == victim {
			continue
		}
		live := 0
		scratch = s.VarModules(scratch[:0], idx.Mat(v))
		for _, m := range scratch {
			if !failed[m] {
				live++
			}
		}
		if live >= s.Majority {
			healthy = append(healthy, v)
		}
	}

	for _, v := range append([]uint64{victim}, healthy...) {
		if err := svc.Write(v, v+900); err != nil {
			t.Fatalf("healthy write of %d: %v", v, err)
		}
	}
	for _, m := range vmods {
		fs.Fail(m)
	}

	vf, err := svc.ReadAsync(victim)
	if err != nil {
		t.Fatal(err)
	}
	hf := make([]*frontend.Future, len(healthy))
	for i, v := range healthy {
		if hf[i], err = svc.ReadAsync(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Flush(); err != nil {
		t.Fatal(err)
	}

	if _, err := vf.Wait(); !errors.Is(err, protocol.ErrQuorumUnreachable) {
		t.Fatalf("victim verdict on pipelined dispatcher: %v", err)
	}
	for i, f := range hf {
		v, err := f.Wait()
		if err != nil {
			t.Fatalf("healthy read of %d in degraded shard stream: %v", healthy[i], err)
		}
		if v != healthy[i]+900 {
			t.Fatalf("healthy read of %d = %d, want %d", healthy[i], v, healthy[i]+900)
		}
	}
	if st := svc.Stats(); st.Total.Stranded < 1 {
		t.Fatalf("aggregated stranded = %d, want >= 1", st.Total.Stranded)
	}

	for _, m := range vmods {
		fs.Recover(m)
	}
	if v, err := svc.Read(victim); err != nil || v != victim+900 {
		t.Fatalf("victim after recovery: %d, %v", v, err)
	}
}

// TestFaultHammer churns Fail/Recover in the background — never more than
// one module failed at any instant, so every variable keeps a live majority
// at all times — while client goroutines stream operations through the
// pipelined sharded service. Every request must succeed: the retry passes
// re-select quorums over survivors until one lands. Run under -race this is
// the concurrency lane for the whole fault path.
func TestFaultHammer(t *testing.T) {
	fs := mpc.NewFaultSet()
	svc, s, _ := faultService(t, 2, fs, protocol.Config{FaultAttempts: 64})
	defer svc.Close()

	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		m := uint64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			fs.Fail(m)
			time.Sleep(100 * time.Microsecond)
			fs.Recover(m)
			m = (m + 7) % s.NumModules
		}
	}()

	clients := 4
	ops := 300
	if testing.Short() {
		ops = 100
	}
	vars := uint64(50)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			const window = 16
			pending := make([]*frontend.Future, 0, window)
			drain := func() {
				for _, f := range pending {
					if _, err := f.Wait(); err != nil {
						t.Errorf("client %d: request failed under single-failure churn: %v", c, err)
					}
				}
				pending = pending[:0]
			}
			for i := 0; i < ops; i++ {
				v := uint64((c*131 + i*17)) % vars
				var f *frontend.Future
				var err error
				if i%3 == 0 {
					f, err = svc.WriteAsync(v, uint64(c)<<32|uint64(i))
				} else {
					f, err = svc.ReadAsync(v)
				}
				if err != nil {
					t.Errorf("client %d: submit: %v", c, err)
					return
				}
				pending = append(pending, f)
				if len(pending) == window {
					drain()
				}
			}
			drain()
		}(c)
	}
	wg.Wait()
	close(stop)
	churn.Wait()
}
