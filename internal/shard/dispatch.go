package shard

import (
	"errors"
	"runtime"
	"sync"

	"detshmem/internal/frontend"
	"detshmem/internal/obs"
	"detshmem/internal/protocol"
)

// pipeDispatcher is the pipelined per-shard dispatcher, built on the
// lock-free MPSC admission ring (ring.go). Earlier revisions had clients
// coalesce into the accumulating batch under a shard admission mutex; that
// mutex was the multi-core ceiling BENCH_PR4 measured (S=8 pipelined
// regressed to 0.86× at GOMAXPROCS=1, and every producer serialized on one
// lock above it). Now admission is one atomic fetch-add plus one publishing
// store: clients claim ring slots and return immediately with a future,
// while the flusher goroutine — the ring's single consumer — drains whole
// published windows per sweep, assigns commit sequence numbers in pop
// order, folds the ops into the accumulating frontend.Pending, and drives
// sealed batches through the backend's allocation-free AccessInto path.
//
// Linearizability per variable is preserved by construction: ring order is
// admission order (positions are claimed by one fetch-add and popped in
// position order), the flusher assigns sequence numbers in ring order, and
// batches flush FIFO — so admission order remains commit order shard-wide,
// exactly the guarantee the mutex gave.
//
// Handoff: no per-flush wakeup. The flusher spins through published ops
// and only parks (park-flag + one channel token) when the ring is truly
// empty; producers kick it only on the empty→non-empty transition. The
// obs collector counts parks and wakes, so a workload that thrashes the
// handoff is visible.
//
// Backpressure: the ring is bounded. A producer whose claimed slot has not
// been freed yet spins briefly and then sleeps until the consumer frees
// it, bounding admitted-but-uncommitted memory the way the old maxPending
// rule did.
type pipeDispatcher struct {
	sys *protocol.System
	col *obs.Collector   // nil when not observing
	aud frontend.Auditor // nil when not auditing; flusher-goroutine only

	maxBatch int
	ring     *ring
	done     chan struct{} // flusher exited

	// Flusher-owned coalescing and flush scratch (single consumer, no
	// lock): the accumulating batch, the commit sequence counter, and the
	// zero-alloc AccessInto buffers.
	cur  *frontend.Pending
	seq  uint64
	reqs []protocol.Request
	res  protocol.Result

	// statsMu guards stats for Stats() readers. Padded away from the
	// flusher's scratch above: a Stats poller must not bounce the cache
	// line the flusher writes on every batch (satellite bugfix, audited by
	// pad_test.go).
	_       cpad
	statsMu sync.Mutex
	stats   frontend.Stats
}

// newPipeDispatcher builds the dispatcher and starts its flusher. ringCap
// is the admission-ring capacity in operations (rounded up to a power of
// two by newRing).
func newPipeDispatcher(sys *protocol.System, maxBatch, ringCap int, col *obs.Collector, aud frontend.Auditor) *pipeDispatcher {
	d := &pipeDispatcher{
		sys:      sys,
		col:      col,
		aud:      aud,
		maxBatch: maxBatch,
		ring:     newRing(ringCap, col),
		cur:      frontend.NewPending(maxBatch),
		done:     make(chan struct{}),
	}
	go d.run()
	return d
}

// ReadAsync admits a read into the shard's ring.
func (d *pipeDispatcher) ReadAsync(v uint64) (*frontend.Future, error) {
	fut := frontend.NewFuture()
	if err := d.ring.enqueue(ringRead, v, 0, fut, nil); err != nil {
		return nil, err
	}
	return fut, nil
}

// WriteAsync admits a write into the shard's ring.
func (d *pipeDispatcher) WriteAsync(v, val uint64) (*frontend.Future, error) {
	fut := frontend.NewFuture()
	if err := d.ring.enqueue(ringWrite, v, val, fut, nil); err != nil {
		return nil, err
	}
	return fut, nil
}

// run is the flusher: pop published ops in ring order, coalesce into the
// accumulating batch, flush on size/conflict, idle-flush when the ring
// runs dry, park when there is nothing at all.
func (d *pipeDispatcher) run() {
	defer close(d.done)
	var op ringOp
	// yielded is the idle flush's one-shot backoff, carried over from the
	// mutex dispatcher: when the ring runs dry with a partial batch, one
	// scheduler yield lets every currently runnable submitter publish its
	// window before the batch goes out — on a loaded host this turns
	// per-client-window batches into all-runnable-clients batches —
	// while costing nothing when no submitter is runnable.
	yielded := false
	for {
		if !d.ring.tryPop(&op) {
			if d.cur.Ops() > 0 {
				if !yielded {
					yielded = true
					runtime.Gosched()
					continue
				}
				d.flushCur(obs.FlushIdle)
				yielded = false
				continue
			}
			yielded = false
			// Idle repair pump: with no client work queued, spend the slack
			// rebuilding recovered modules instead of parking. Batch traffic
			// already pumps repair inside AccessInto; this path keeps the
			// backlog draining on an otherwise quiet shard. Park only when
			// repair is drained or stalled (RepairStep false ⇒ paused until
			// the fault set changes, so spinning on it would burn a core).
			if d.sys.RepairBacklog() > 0 && d.sys.RepairStep() {
				continue
			}
			d.ring.park()
			continue
		}
		yielded = false
		switch op.kind {
		case ringRead, ringWrite:
			d.seq++
			if op.kind == ringWrite {
				if d.cur.WriteConflicts(op.v) {
					// The variable carries an issued read: the batch goes
					// out first, the write opens the next one.
					d.flushCur(obs.FlushConflict)
				}
				d.cur.Write(d.seq, op.v, op.val, op.fut)
			} else {
				d.cur.Read(d.seq, op.v, op.fut)
			}
			if d.cur.Distinct() >= d.maxBatch {
				d.flushCur(obs.FlushSize)
			}
		case ringFlush:
			if d.cur.Ops() > 0 {
				d.flushCur(obs.FlushExplicit)
			} else {
				// Nothing accumulated (the idle flusher already drained
				// everything ahead of the sentinel): the explicit flush is
				// still honored — and counted, so Flush-heavy callers see
				// their cause in the stats deterministically.
				d.statsMu.Lock()
				d.stats.ExplicitFlushes++
				d.statsMu.Unlock()
			}
			close(op.ack)
		case ringClose:
			if d.cur.Ops() > 0 {
				d.flushCur(obs.FlushExplicit)
			}
			return
		}
	}
}

// flushCur flushes the accumulating batch and resets it for reuse.
func (d *pipeDispatcher) flushCur(cause obs.FlushCause) {
	d.flushOne(d.cur, cause)
	d.cur.Reset()
}

// flushOne drives one batch through the backend's allocation-free path,
// accounts it (before any future completes — see frontend.Stats.Account),
// and fans the results out. An ErrIncomplete-class error keeps res, so the
// committed requests complete normally and only the unfinished ones fail
// with their per-request verdict (frontend.Pending.Complete). Runs on the
// flusher goroutine only, so the reqs/res scratch needs no lock.
func (d *pipeDispatcher) flushOne(p *frontend.Pending, cause obs.FlushCause) {
	d.reqs = p.Requests(d.reqs)
	var res *protocol.Result
	err := d.sys.AccessInto(d.reqs, &d.res)
	if err == nil || errors.Is(err, protocol.ErrIncomplete) {
		res = &d.res
	}
	d.statsMu.Lock()
	d.stats.Account(p, len(d.reqs), res, err, cause)
	d.statsMu.Unlock()
	if d.col != nil {
		d.col.ObserveFlush(cause)
	}
	if d.aud != nil {
		p.Audit(d.aud, res, err)
	}
	p.Complete(res, err)
}

// Flush enqueues a flush sentinel and blocks until the flusher has passed
// it — at which point every operation admitted before the Flush call has
// committed (ring FIFO order).
func (d *pipeDispatcher) Flush() error {
	ack := make(chan struct{})
	if err := d.ring.enqueue(ringFlush, 0, 0, nil, ack); err != nil {
		return err
	}
	<-ack
	return nil
}

// Close flushes pending work, stops the flusher, and fails later
// submissions with frontend.ErrClosed. The ring's close protocol
// guarantees no operation is admitted behind the close sentinel, so
// nothing is ever silently dropped.
func (d *pipeDispatcher) Close() error {
	if !d.ring.close() {
		return frontend.ErrClosed
	}
	<-d.done
	return nil
}

// Stats snapshots the dispatcher's cumulative combining metrics.
func (d *pipeDispatcher) Stats() frontend.Stats {
	d.statsMu.Lock()
	s := d.stats
	d.statsMu.Unlock()
	if md := int(d.ring.maxDepth.Load()); md > s.MaxQueueDepth {
		s.MaxQueueDepth = md
	}
	return s
}
