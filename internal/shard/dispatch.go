package shard

import (
	"errors"
	"runtime"
	"sync"

	"detshmem/internal/frontend"
	"detshmem/internal/obs"
	"detshmem/internal/protocol"
)

// pipeDispatcher is the pipelined per-shard dispatcher. Where the classic
// frontend funnels every operation through a channel into one dispatcher
// goroutine that both coalesces and flushes, here the submitting goroutines
// do the coalescing themselves: each op takes the shard's admission mutex,
// receives its commit sequence number, and folds straight into the
// accumulating frontend.Pending. A dedicated flusher goroutine drains
// sealed batches FIFO and — when the backend is free and nothing is
// sealed — grabs the accumulating batch directly (the channel dispatcher's
// "queue ran dry" rule, without timers). Admission of batch k+1 therefore
// proceeds under the mutex while the flusher holds batch k inside
// AccessInto: double buffering with the batch seal as the only
// synchronization point.
//
// Linearizability per variable is preserved by construction: sequence
// numbers are assigned under the same mutex that admits the op into the
// current batch, batches are sealed in sequence order, and the flusher
// commits them FIFO — so ops in an earlier batch all carry smaller
// sequence numbers than ops in a later one, and admission order remains
// commit order shard-wide (a stronger guarantee than the per-variable
// contract requires).
//
// Backpressure: admission blocks while maxPending batches are sealed and
// unflushed, bounding memory the way the classic dispatcher's bounded
// channel does.
type pipeDispatcher struct {
	sys *protocol.System
	col *obs.Collector   // nil when not observing
	aud frontend.Auditor // nil when not auditing; flusher-goroutine only

	maxBatch   int
	maxPending int

	mu       sync.Mutex
	cond     *sync.Cond // admission backpressure + Flush/Close waiters
	cur      *frontend.Pending
	seq      uint64
	ready    []sealedBatch // FIFO, length ≤ maxPending
	sealed   int64         // batches sealed so far (monotonic)
	flushed  int64         // batches flushed so far (monotonic)
	inflight int           // ops admitted but not yet committed
	maxDepth int           // high-water inflight, for Stats.MaxQueueDepth
	closed   bool

	idle bool          // flusher is parked on kick
	kick chan struct{} // cap 1, wakes the parked flusher

	free []*frontend.Pending // recycled batches

	// Flusher-owned flush scratch, reused across batches: the zero-alloc
	// AccessInto path.
	reqs []protocol.Request
	res  protocol.Result

	statsMu sync.Mutex
	stats   frontend.Stats

	done chan struct{} // flusher exited
}

type sealedBatch struct {
	p     *frontend.Pending
	cause obs.FlushCause
}

func newPipeDispatcher(sys *protocol.System, maxBatch, maxPending int, col *obs.Collector, aud frontend.Auditor) *pipeDispatcher {
	d := &pipeDispatcher{
		sys:        sys,
		col:        col,
		aud:        aud,
		maxBatch:   maxBatch,
		maxPending: maxPending,
		cur:        frontend.NewPending(maxBatch),
		ready:      make([]sealedBatch, 0, maxPending+1),
		kick:       make(chan struct{}, 1),
		done:       make(chan struct{}),
	}
	d.cond = sync.NewCond(&d.mu)
	go d.run()
	return d
}

// ReadAsync admits a read into the accumulating batch.
func (d *pipeDispatcher) ReadAsync(v uint64) (*frontend.Future, error) {
	return d.submit(false, v, 0)
}

// WriteAsync admits a write into the accumulating batch.
func (d *pipeDispatcher) WriteAsync(v, val uint64) (*frontend.Future, error) {
	return d.submit(true, v, val)
}

func (d *pipeDispatcher) submit(write bool, v, val uint64) (*frontend.Future, error) {
	fut := frontend.NewFuture()
	d.mu.Lock()
	for !d.closed && len(d.ready) >= d.maxPending {
		d.cond.Wait()
	}
	if d.closed {
		d.mu.Unlock()
		return nil, frontend.ErrClosed
	}
	if write && d.cur.WriteConflicts(v) {
		// The variable carries an issued read: seal the batch; the write
		// opens the next one. Sealing may momentarily exceed maxPending;
		// the next submitter blocks, this op was already ordered behind
		// the seal.
		d.seal(obs.FlushConflict)
	}
	d.seq++
	if write {
		d.cur.Write(d.seq, v, val, fut)
	} else {
		d.cur.Read(d.seq, v, fut)
	}
	d.inflight++
	depth := d.inflight
	if depth > d.maxDepth {
		d.maxDepth = depth
	}
	if d.cur.Distinct() >= d.maxBatch {
		d.seal(obs.FlushSize)
	}
	d.wake()
	d.mu.Unlock()
	if d.col != nil {
		d.col.ObserveQueueDepth(depth)
	}
	return fut, nil
}

// seal moves the accumulating batch onto the ready queue (no-op when
// empty). Caller holds mu.
func (d *pipeDispatcher) seal(cause obs.FlushCause) {
	if d.cur.Ops() == 0 {
		return
	}
	d.ready = append(d.ready, sealedBatch{d.cur, cause})
	d.sealed++
	d.cur = d.take()
}

// take returns a recycled (or fresh) empty batch. Caller holds mu.
func (d *pipeDispatcher) take() *frontend.Pending {
	if n := len(d.free); n > 0 {
		p := d.free[n-1]
		d.free[n-1] = nil
		d.free = d.free[:n-1]
		return p
	}
	return frontend.NewPending(d.maxBatch)
}

// wake kicks the flusher if it is parked. Caller holds mu.
func (d *pipeDispatcher) wake() {
	if d.idle {
		d.idle = false
		select {
		case d.kick <- struct{}{}:
		default:
		}
	}
}

// run is the flusher: pop sealed batches FIFO; with none sealed and the
// backend free, grab the accumulating batch (idle flush); with nothing at
// all, park until an admission kicks.
func (d *pipeDispatcher) run() {
	defer close(d.done)
	// yielded implements the idle grab's one-shot backoff: the flusher is
	// kicked by the first admission into an empty batch, so grabbing
	// immediately would flush a batch of whatever one submitter managed to
	// admit before its first block. One scheduler yield lets every currently
	// runnable submitter fold its window into the batch first — on a loaded
	// single-core host this turns per-client-window batches into
	// all-runnable-clients batches, amortizing the per-batch protocol cost
	// over several times more ops — while costing an idle submitter nothing
	// (Gosched returns immediately when nothing else is runnable).
	yielded := false
	for {
		d.mu.Lock()
		var p *frontend.Pending
		var cause obs.FlushCause
		switch {
		case len(d.ready) > 0:
			p, cause = d.ready[0].p, d.ready[0].cause
			// Copy down instead of re-slicing so the backing array (sized
			// maxPending+1 once) never creeps or reallocates.
			copy(d.ready, d.ready[1:])
			d.ready[len(d.ready)-1] = sealedBatch{}
			d.ready = d.ready[:len(d.ready)-1]
			d.cond.Broadcast() // an admission slot freed up
		case d.cur.Ops() > 0:
			if !yielded {
				yielded = true
				d.mu.Unlock()
				runtime.Gosched()
				continue
			}
			p, cause = d.cur, obs.FlushIdle
			d.sealed++
			d.cur = d.take()
		case d.closed:
			d.mu.Unlock()
			return
		default:
			d.idle = true
			d.mu.Unlock()
			<-d.kick
			continue
		}
		yielded = false
		d.mu.Unlock()

		d.flushOne(p, cause)

		ops := p.Ops()
		p.Reset()
		d.mu.Lock()
		d.flushed++
		d.inflight -= ops
		d.free = append(d.free, p)
		d.cond.Broadcast() // Flush waiters + admission backpressure
		d.mu.Unlock()
	}
}

// flushOne drives one batch through the backend's allocation-free path,
// accounts it (before any future completes — see frontend.Stats.Account),
// and fans the results out. An ErrIncomplete-class error keeps res, so the
// committed requests complete normally and only the unfinished ones fail
// with their per-request verdict (frontend.Pending.Complete). Runs on the
// flusher goroutine only, so the reqs/res scratch needs no lock.
func (d *pipeDispatcher) flushOne(p *frontend.Pending, cause obs.FlushCause) {
	d.reqs = p.Requests(d.reqs)
	var res *protocol.Result
	err := d.sys.AccessInto(d.reqs, &d.res)
	if err == nil || errors.Is(err, protocol.ErrIncomplete) {
		res = &d.res
	}
	d.statsMu.Lock()
	d.stats.Account(p, len(d.reqs), res, err, cause)
	d.statsMu.Unlock()
	if d.col != nil {
		d.col.ObserveFlush(cause)
	}
	if d.aud != nil {
		p.Audit(d.aud, res, err)
	}
	p.Complete(res, err)
}

// Flush seals the accumulating batch and blocks until every batch sealed so
// far has committed.
func (d *pipeDispatcher) Flush() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return frontend.ErrClosed
	}
	d.seal(obs.FlushExplicit)
	target := d.sealed
	d.wake()
	// Batches sealed before a concurrent Close still flush (the flusher
	// drains the ready queue before exiting), so waiting on the count alone
	// is safe even if closed flips while we wait.
	for d.flushed < target {
		d.cond.Wait()
	}
	d.mu.Unlock()
	return nil
}

// Close flushes pending work, stops the flusher, and fails later
// submissions with frontend.ErrClosed.
func (d *pipeDispatcher) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return frontend.ErrClosed
	}
	d.seal(obs.FlushExplicit)
	d.closed = true
	d.wake()
	d.cond.Broadcast() // release blocked admitters into ErrClosed
	d.mu.Unlock()
	<-d.done
	return nil
}

// Stats snapshots the dispatcher's cumulative combining metrics.
func (d *pipeDispatcher) Stats() frontend.Stats {
	d.statsMu.Lock()
	s := d.stats
	d.statsMu.Unlock()
	d.mu.Lock()
	if d.maxDepth > s.MaxQueueDepth {
		s.MaxQueueDepth = d.maxDepth
	}
	d.mu.Unlock()
	return s
}
