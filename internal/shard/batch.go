package shard

import (
	"sync"

	"detshmem/internal/frontend"
)

// BatchOp is one operation in a cross-shard batch.
type BatchOp struct {
	Write bool   // false = read
	Var   uint64 // variable id
	Val   uint64 // written value (writes only)
}

// Batch is the handle for one AccessBatch call: a future per operation,
// all backed by one slab allocation. Results are read per op with Value,
// or the whole batch awaited with Wait.
type Batch struct {
	futs []*frontend.Future
	slab []frontend.Future
}

// Len returns the number of operations in the batch.
func (b *Batch) Len() int { return len(b.futs) }

// Wait blocks until every operation has committed and returns the first
// per-op error, if any (later errors are still retrievable per op with
// Value, so one stranded request does not hide another's verdict).
func (b *Batch) Wait() error {
	var first error
	for _, f := range b.futs {
		if _, err := f.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Value blocks until operation i has committed and returns its result: the
// value read (reads), or the per-request error attribution from the fault
// layer. For writes the value is 0 on success.
func (b *Batch) Value(i int) (uint64, error) { return b.futs[i].Wait() }

// Seq returns operation i's commit sequence number within its shard, valid
// after the op completes. Sequence numbers order operations within one
// shard only — there is no cross-shard commit order.
func (b *Batch) Seq(i int) uint64 { return b.futs[i].Seq() }

// partition is the pooled scratch for AccessBatch's counting sort: the
// per-op shard route, the op indices grouped by shard, and the per-shard
// group boundaries. Pooled so a steady-state caller partitions without
// allocating.
type partition struct {
	shardOf []int32
	idx     []int32
	off     []int32
	fill    []int32
}

var partitionPool = sync.Pool{New: func() any { return new(partition) }}

// grow resizes the scratch for nOps operations over nShards shards.
func (p *partition) grow(nOps, nShards int) {
	if cap(p.shardOf) < nOps {
		p.shardOf = make([]int32, nOps)
		p.idx = make([]int32, nOps)
	}
	p.shardOf = p.shardOf[:nOps]
	p.idx = p.idx[:nOps]
	if cap(p.off) < nShards+1 {
		p.off = make([]int32, nShards+1)
		p.fill = make([]int32, nShards)
	}
	p.off = p.off[:nShards+1]
	p.fill = p.fill[:nShards]
	for i := range p.off {
		p.off[i] = 0
	}
}

// AccessBatch submits ops — which may touch any mix of variables across
// all shards — with one synchronization per touched shard: the ops are
// partitioned by Route in one counting-sort pass, each shard's sub-batch
// is admitted into its ring with a single atomic claim (pipelined
// dispatcher) or per-op submission (classic dispatcher, the measured
// baseline), and the returned Batch completes every op through its own
// future. Per-shard admission order follows ops order, so the per-variable
// linearizability contract and Future.Seq semantics are exactly those of
// the per-op API.
//
// On error (e.g. a closing service), ops already admitted to earlier
// shards still execute; the caller should discard the Batch without
// waiting on it.
func (s *Service) AccessBatch(ops []BatchOp) (*Batch, error) {
	b := &Batch{}
	if len(ops) == 0 {
		return b, nil
	}
	// One slab for all futures: AccessBatch's allocation cost is two
	// slices + one slab, independent of the number of shards touched.
	b.slab = make([]frontend.Future, len(ops))
	b.futs = make([]*frontend.Future, len(ops))
	for i := range b.slab {
		b.futs[i] = &b.slab[i]
	}
	if len(s.shards) == 1 {
		return b, s.shards[0].admitBatch(ops, nil, b.futs)
	}
	p := partitionPool.Get().(*partition)
	p.grow(len(ops), len(s.shards))
	for i := range ops {
		sh := int32(s.Route(ops[i].Var))
		p.shardOf[i] = sh
		p.off[sh+1]++
	}
	for sh := 1; sh <= len(s.shards); sh++ {
		p.off[sh] += p.off[sh-1]
	}
	// Scatter op indices into per-shard groups (stable: within a shard,
	// idx preserves ops order, so per-shard admission order is ops order).
	copy(p.fill, p.off[:len(s.shards)])
	for i := range ops {
		sh := p.shardOf[i]
		p.idx[p.fill[sh]] = int32(i)
		p.fill[sh]++
	}
	var err error
	for sh := range s.shards {
		lo, hi := p.off[sh], p.off[sh+1]
		if lo == hi {
			continue
		}
		if aerr := s.shards[sh].admitBatch(ops, p.idx[lo:hi], b.futs); aerr != nil {
			err = aerr
			break
		}
	}
	partitionPool.Put(p)
	if err != nil {
		return nil, err
	}
	return b, nil
}

// admitBatch admits the selected ops (idx nil = all) into this shard.
func (st *shardState) admitBatch(ops []BatchOp, idx []int32, futs []*frontend.Future) error {
	if pd, ok := st.d.(*pipeDispatcher); ok {
		return pd.ring.enqueueBatch(ops, idx, futs)
	}
	// Classic channel dispatcher: per-op admission — k synchronizations,
	// the baseline AccessBatch exists to beat. The dispatcher mints its
	// own futures, so the slab entries are replaced.
	admit := func(i int32) error {
		op := &ops[i]
		var f *frontend.Future
		var err error
		if op.Write {
			f, err = st.d.WriteAsync(op.Var, op.Val)
		} else {
			f, err = st.d.ReadAsync(op.Var)
		}
		if err != nil {
			return err
		}
		futs[i] = f
		return nil
	}
	if idx == nil {
		for i := range ops {
			if err := admit(int32(i)); err != nil {
				return err
			}
		}
		return nil
	}
	for _, i := range idx {
		if err := admit(i); err != nil {
			return err
		}
	}
	return nil
}
