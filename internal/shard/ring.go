package shard

import (
	"runtime"
	"sync"
	"sync/atomic"

	"detshmem/internal/frontend"
	"detshmem/internal/obs"
)

// cacheLine is the assumed coherence-granule size. Hot fields written by
// different goroutines are kept at least this far apart so one side's
// stores do not invalidate the other side's line (pad_test.go audits the
// layout with unsafe.Offsetof).
const cacheLine = 64

// cpad is one cache line of padding between hot field groups.
type cpad [cacheLine]byte

// ringKind tags one admission-ring entry.
type ringKind uint8

const (
	ringRead  ringKind = iota
	ringWrite          // val carries the written value
	ringFlush          // ack is closed once every prior op has committed
	ringClose          // the flusher commits what it holds and exits
)

// ringOp is the payload of one ring slot.
type ringOp struct {
	kind ringKind
	v    uint64
	val  uint64
	fut  *frontend.Future
	ack  chan struct{}
}

// ringSlot is one cell of the ring. seq is the Vyukov-style generation
// stamp: seq == pos means the slot is free for the producer that claimed
// position pos; seq == pos+1 means the slot is published and waiting for
// the consumer; the consumer frees it by storing pos+len(slots), which is
// the claim value of the next lap. The trailing pad rounds the slot to a
// whole cache line so adjacent slots — owned by different producers for
// the publish window — never share one.
type ringSlot struct {
	seq atomic.Uint64
	op  ringOp
	_   [cacheLine - (8+unsafe_ringOpSize)%cacheLine]byte
}

// unsafe_ringOpSize is ringOp's size on 64-bit targets (1 byte of kind
// padded to 8, three uint64-sized words, one pointer, one channel). The
// padding-audit test asserts unsafe.Sizeof(ringSlot{}) is a multiple of
// cacheLine, which catches this constant going stale.
const unsafe_ringOpSize = 40

// ring is a bounded lock-free MPSC queue: any number of producers admit
// operations by claiming positions from an atomic sequence counter; the
// shard's flusher goroutine is the only consumer. It replaces the shard
// admission mutex: an uncontended admit is one fetch-add plus one
// publishing store, and the consumer drains a whole published window per
// sweep without ever taking a lock.
//
// FIFO: positions are claimed in fetch-add order and the consumer pops
// them in position order, so ring order is admission order — the property
// the per-variable linearizability contract needs (commit sequence numbers
// are assigned by the consumer in pop order).
//
// Blocking happens only at the edges:
//
//   - Full ring (backpressure): the producer that claimed a not-yet-freed
//     slot spins briefly, then sleeps on fullCond until the consumer frees
//     its slot. Bounded memory, like the old maxPending rule.
//   - Empty ring: the consumer sets parked and sleeps on the kick channel;
//     the producer that publishes into an empty ring CASes parked down and
//     sends one token. The parked store and the slot re-check in park(),
//     against the publish store and the parked load in wake(), form the
//     Dekker handshake that makes a lost wakeup impossible under Go's
//     sequentially-consistent atomics.
type ring struct {
	slots []ringSlot
	mask  uint64
	col   *obs.Collector // nil when not observing

	_    cpad
	tail atomic.Uint64 // next position to claim; producers fetch-add
	_    cpad
	head atomic.Uint64 // next position to pop; consumer-owned, producers read for depth
	_    cpad

	closed   atomic.Bool
	inflight atomic.Int64 // producers between their closed check and publish
	maxDepth atomic.Int64 // high-water occupancy, for Stats.MaxQueueDepth

	parked atomic.Bool
	kick   chan struct{} // cap 1; wakes the parked consumer
	parks  atomic.Int64  // times the consumer actually blocked
	wakes  atomic.Int64  // producer kicks that un-parked the consumer

	fullWaiters atomic.Int32 // producers asleep on a full ring
	fullMu      sync.Mutex
	fullCond    *sync.Cond
}

// newRing builds a ring with at least the given capacity (rounded up to a
// power of two, minimum 2).
func newRing(capacity int, col *obs.Collector) *ring {
	n := 2
	for n < capacity {
		n <<= 1
	}
	r := &ring{
		slots: make([]ringSlot, n),
		mask:  uint64(n) - 1,
		col:   col,
		kick:  make(chan struct{}, 1),
	}
	r.fullCond = sync.NewCond(&r.fullMu)
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// enqueue admits one operation: claim a position, publish the slot, wake
// the consumer if it parked. Returns frontend.ErrClosed after close — the
// inflight counter brackets the closed check and the publish, so close()
// can wait out every producer that passed the check before it claims the
// close sentinel, guaranteeing no operation lands behind the sentinel.
func (r *ring) enqueue(kind ringKind, v, val uint64, fut *frontend.Future, ack chan struct{}) error {
	r.inflight.Add(1)
	if r.closed.Load() {
		r.inflight.Add(-1)
		return frontend.ErrClosed
	}
	pos := r.tail.Add(1) - 1
	r.publish(pos, kind, v, val, fut, ack)
	r.inflight.Add(-1)
	r.noteDepth(pos)
	r.wake()
	return nil
}

// enqueueBatch admits a whole sub-batch with one synchronization: a single
// fetch-add claims len(idx) consecutive positions, which are then published
// in order. idx selects ops' entries routed to this shard (nil means all of
// ops). futs[i] receives op i's future. This is what makes AccessBatch one
// atomic RMW per touched shard instead of one per op.
func (r *ring) enqueueBatch(ops []BatchOp, idx []int32, futs []*frontend.Future) error {
	m := uint64(len(ops))
	if idx != nil {
		m = uint64(len(idx))
	}
	if m == 0 {
		return nil
	}
	r.inflight.Add(1)
	if r.closed.Load() {
		r.inflight.Add(-1)
		return frontend.ErrClosed
	}
	start := r.tail.Add(m) - m
	for j := uint64(0); j < m; j++ {
		i := int32(j)
		if idx != nil {
			i = idx[j]
		}
		op := &ops[i]
		kind := ringRead
		if op.Write {
			kind = ringWrite
		}
		// publish wakes the consumer from its full-slot wait path, so a
		// batch larger than the ring drains in ring-sized windows rather
		// than deadlocking against a parked consumer.
		r.publish(start+j, kind, op.Var, op.Val, futs[i], nil)
		if j == 0 {
			r.wake()
		}
	}
	r.inflight.Add(-1)
	r.noteDepth(start + m - 1)
	r.wake()
	return nil
}

// publish waits for the claimed slot to be free (previous-lap occupant
// popped), writes the payload, and hands the slot to the consumer with the
// seq store. Only the owner of pos calls this, so the wait is bounded by
// the consumer's progress, not by other producers.
func (r *ring) publish(pos uint64, kind ringKind, v, val uint64, fut *frontend.Future, ack chan struct{}) {
	s := &r.slots[pos&r.mask]
	if s.seq.Load() != pos {
		r.waitFree(s, pos)
	}
	s.op = ringOp{kind: kind, v: v, val: val, fut: fut, ack: ack}
	s.seq.Store(pos + 1)
}

// waitFree is publish's full-ring slow path: spin briefly (the consumer
// frees slots in batches, so the wait is usually a few sweeps), then sleep
// on fullCond. The consumer cannot be parked while slots are owed — except
// mid-batch-publish, so every pass kicks it awake before yielding.
func (r *ring) waitFree(s *ringSlot, want uint64) {
	for spins := 0; spins < 64; spins++ {
		r.wake()
		runtime.Gosched()
		if s.seq.Load() == want {
			return
		}
	}
	r.fullWaiters.Add(1)
	r.fullMu.Lock()
	for s.seq.Load() != want {
		r.wake()
		r.fullCond.Wait()
	}
	r.fullMu.Unlock()
	r.fullWaiters.Add(-1)
}

// tryPop pops the next published operation into out. Consumer-only. The
// freeing seq store is what un-blocks a producer waiting on this slot, and
// the fullWaiters check pairs with waitFree's Add-then-check so a sleeping
// producer is never missed.
func (r *ring) tryPop(out *ringOp) bool {
	pos := r.head.Load()
	s := &r.slots[pos&r.mask]
	if s.seq.Load() != pos+1 {
		return false
	}
	*out = s.op
	s.op = ringOp{} // drop future/ack references: completed ops stay collectable
	s.seq.Store(pos + uint64(len(r.slots)))
	r.head.Store(pos + 1)
	if r.fullWaiters.Load() != 0 {
		r.fullMu.Lock()
		r.fullCond.Broadcast()
		r.fullMu.Unlock()
	}
	return true
}

// park blocks the consumer until a producer publishes. The parked store
// happens before the slot re-check; wake's publish store happens before its
// parked load — so either the re-check sees the new op, or the producer
// sees parked and sends the kick. A stale kick token (consumer un-parked
// itself on the re-check) costs one spurious wakeup, never a hang.
func (r *ring) park() {
	r.parked.Store(true)
	pos := r.head.Load()
	if r.slots[pos&r.mask].seq.Load() == pos+1 {
		r.parked.Store(false)
		return
	}
	r.parks.Add(1)
	if r.col != nil {
		r.col.ObserveFlusherPark()
	}
	<-r.kick
	r.parked.Store(false)
}

// wake un-parks the consumer. The CAS ensures exactly one token per park,
// so the kick channel (cap 1) never blocks a producer.
func (r *ring) wake() {
	if r.parked.Load() && r.parked.CompareAndSwap(true, false) {
		r.wakes.Add(1)
		if r.col != nil {
			r.col.ObserveFlusherWake()
		}
		select {
		case r.kick <- struct{}{}:
		default:
		}
	}
}

// close marks the ring closed, waits out producers already past their
// closed check, then claims the close sentinel. Ring order past the
// sentinel is empty by construction. Returns false if already closed.
func (r *ring) close() bool {
	if r.closed.Swap(true) {
		return false
	}
	for r.inflight.Load() != 0 {
		runtime.Gosched()
	}
	pos := r.tail.Add(1) - 1
	r.publish(pos, ringClose, 0, 0, nil, nil)
	r.wake()
	return true
}

// noteDepth tracks the high-water ring occupancy and samples it into the
// collector every 64th admission (sampling keeps the shared histogram
// lines off the admission hot path; the max is exact).
func (r *ring) noteDepth(pos uint64) {
	d := int64(pos+1) - int64(r.head.Load())
	if d <= 0 {
		return
	}
	for {
		cur := r.maxDepth.Load()
		if d <= cur || r.maxDepth.CompareAndSwap(cur, d) {
			break
		}
	}
	if r.col != nil && pos&63 == 0 {
		r.col.ObserveRingDepth(d)
	}
}
