package shard

import (
	"testing"

	"detshmem/internal/frontend"
	"detshmem/internal/obs"
	"detshmem/internal/protocol"
)

// TestShardFlushSteadyStateAllocs pins the pipelined dispatcher's flush
// path — Requests into the reused buffer, AccessInto on the shard's reused
// Result, stats accounting, the obs flush/batch/round hooks, fan-out, and
// batch Reset/recycling — at zero allocations per batch in steady state,
// on both MPC engines. The only allocations on the sharded hot path are
// the clients' futures, which are minted outside the measured region here
// exactly as they are minted in client goroutines in production.
func TestShardFlushSteadyStateAllocs(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  protocol.Config
	}{
		{"sequential", protocol.Config{}},
		{"parallel", protocol.Config{Parallel: true, Workers: 2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			svc := newService(t, 3, Config{
				Shards:   2,
				Pipeline: true,
				Observe:  true, // obs hooks installed: the guard covers the enabled path
				Protocol: tc.cfg,
			})
			d, ok := svc.shards[0].d.(*pipeDispatcher)
			if !ok {
				t.Fatal("pipelined shard did not build a pipeDispatcher")
			}
			// Stop the flusher so the measured code owns the dispatcher's
			// scratch; the flush path below is byte-for-byte the one the
			// flusher runs.
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}

			const opsPer = 6
			p := frontend.NewPending(opsPer)
			admit := func(futs []*frontend.Future) {
				for k := 0; k < opsPer; k++ {
					// Same keys every round: entry and bucket churn must
					// recycle, not grow.
					if k%2 == 0 {
						p.Write(uint64(k+1), uint64(k), uint64(k), futs[k])
					} else {
						p.Read(uint64(k+1), uint64(k+10), futs[k])
					}
				}
			}
			mint := func() []*frontend.Future {
				futs := make([]*frontend.Future, opsPer)
				for i := range futs {
					futs[i] = frontend.NewFuture()
				}
				return futs
			}
			// Warm-up sizes every reused buffer (requests, Result, protocol
			// scratch, entry freelist).
			for i := 0; i < 3; i++ {
				admit(mint())
				d.flushOne(p, obs.FlushSize)
				p.Reset()
			}

			const runs = 100
			pool := make([][]*frontend.Future, runs+2) // +1 for AllocsPerRun's warm-up call
			for i := range pool {
				pool[i] = mint()
			}
			next := 0
			if avg := testing.AllocsPerRun(runs, func() {
				admit(pool[next])
				next++
				d.flushOne(p, obs.FlushSize)
				p.Reset()
			}); avg != 0 {
				t.Fatalf("sharded flush path allocates %.2f per batch in steady state, want 0", avg)
			}
		})
	}
}
