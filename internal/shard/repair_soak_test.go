package shard

import (
	"errors"
	"sync"
	"testing"
	"time"

	"detshmem/internal/consistency"
	"detshmem/internal/core"
	"detshmem/internal/frontend"
	"detshmem/internal/mpc"
	"detshmem/internal/protocol"
)

// TestChurnSoakRepair is the PR 10 compressed churn soak: continuous
// Fail → RecoverPending at 100µs cadence with self-healing repair enabled,
// at least 1e5 client operations streamed through the pipelined sharded
// service, under the full Rate-1 consistency audit. The invariants pinned:
//
//   - Stranding stays at zero. In-process faults never destroy store cells,
//     and a read blocked on a repairing (uncertified) module is reported as
//     plain incomplete, never stranded — there is provably nothing lost.
//   - Every committed value certifies: zero audit violations during the
//     storm, and each shard's commit-order ring replays clean afterwards.
//   - The repair backlog fully drains once the churn stops — the idle pump
//     and the per-batch pump between them leave no module uncertified.
//
// Run under -race this is the concurrency lane for the repair scheduler
// interleaved with live traffic; it is skipped under -short.
func TestChurnSoakRepair(t *testing.T) {
	if testing.Short() {
		t.Skip("churn soak skipped under -short")
	}

	fs := mpc.NewFaultSet()
	s, err := core.New(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := s.NewIndexer()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(protocol.NewCoreMapper(s, idx), Config{
		Shards:   2,
		Pipeline: true,
		MaxBatch: 32,
		Audit:    consistency.AuditConfig{Rate: 1},
		Protocol: protocol.Config{
			FaultAttempts: 64,
			NewMachine: func(mcfg mpc.Config) (protocol.Machine, error) {
				return mpc.NewFailingShared(mcfg, fs)
			},
			MaxIterationsPerPhase: 2048,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// Churn: fail one module, hold it down for 100µs, then re-admit it
	// through the repair path. Stepping by 13 (coprime to 63) walks the
	// whole module space; at any instant at most one module is failed while
	// earlier victims may still be repairing (barred from read quorums
	// until a sweep certifies them).
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		m := uint64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			fs.Fail(m)
			time.Sleep(100 * time.Microsecond)
			fs.RecoverPending(m)
			m = (m + 13) % s.NumModules
		}
	}()

	const (
		clients = 4
		ops     = 25000 // 4 × 25000 = 1e5 operations
		vars    = 64
		window  = 32
	)
	var wg sync.WaitGroup
	var incomplete int64
	var incMu sync.Mutex
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			pending := make([]*frontend.Future, 0, window)
			failed := int64(0)
			drain := func() {
				for _, f := range pending {
					if _, err := f.Wait(); err != nil {
						// Quorum outages are legitimate while modules sit in
						// repair; anything else is a bug.
						if !errors.Is(err, protocol.ErrIncomplete) {
							t.Errorf("client %d: non-quorum failure under churn: %v", c, err)
						}
						failed++
					}
				}
				pending = pending[:0]
			}
			for i := 0; i < ops; i++ {
				v := uint64(c*131+i*17) % vars
				var f *frontend.Future
				var err error
				if i%3 == 0 {
					f, err = svc.WriteAsync(v, uint64(c)<<32|uint64(i))
				} else {
					f, err = svc.ReadAsync(v)
				}
				if err != nil {
					t.Errorf("client %d: submit: %v", c, err)
					return
				}
				pending = append(pending, f)
				if len(pending) == window {
					drain()
				}
			}
			drain()
			incMu.Lock()
			incomplete += failed
			incMu.Unlock()
		}(c)
	}
	wg.Wait()
	close(stop)
	churn.Wait()

	// Storm over: re-admit anything still failed, then drive traffic until
	// the repair backlog fully drains (batches pump repair; Flush wakes any
	// parked flusher).
	for _, m := range fs.Modules() {
		fs.RecoverPending(m)
	}
	deadline := time.Now().Add(30 * time.Second)
	for fs.RepairCount() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("repair backlog stuck at %d after churn stopped", fs.RepairCount())
		}
		if _, err := svc.Read(0); err != nil && !errors.Is(err, protocol.ErrIncomplete) {
			t.Fatal(err)
		}
		if err := svc.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if fs.Count() != 0 {
		t.Fatalf("%d modules still failed after recovery", fs.Count())
	}

	// Everything must read cleanly on the healed system.
	for v := uint64(0); v < vars; v++ {
		if _, err := svc.Read(v); err != nil {
			t.Fatalf("read %d on healed system: %v", v, err)
		}
	}
	if err := svc.Flush(); err != nil {
		t.Fatal(err)
	}

	st := svc.Stats()
	if st.Total.OpsIn < clients*ops {
		t.Fatalf("only %d of %d operations admitted", st.Total.OpsIn, clients*ops)
	}
	// The tentpole invariant: repair means nothing is ever provably lost —
	// requests may wait out an outage, but none may strand.
	if st.Total.Stranded != 0 {
		t.Fatalf("%d requests stranded under churn with repair enabled", st.Total.Stranded)
	}
	if ast := svc.AuditStats(); ast.Violations != 0 {
		for i := 0; i < svc.Shards(); i++ {
			t.Logf("shard %d samples: %+v", i, svc.Auditor(i).ViolationSamples())
		}
		t.Fatalf("churn traffic tripped the consistency audit: %+v", ast)
	}
	for i := 0; i < svc.Shards(); i++ {
		if rep := svc.Auditor(i).CheckNow(); !rep.OK {
			t.Fatalf("shard %d commit trace rejected: %+v", i, rep.First())
		}
	}
	t.Logf("soak: %d ops, %d incomplete (%.2f%%), backlog drained, 0 stranded, 0 violations",
		st.Total.OpsIn, incomplete, 100*float64(incomplete)/float64(st.Total.OpsIn))
}
