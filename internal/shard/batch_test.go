package shard

import (
	"errors"
	"sync"
	"testing"

	"detshmem/internal/frontend"
	"detshmem/internal/mpc"
	"detshmem/internal/protocol"
)

// TestAccessBatchRoundTrip runs the batch API through every dispatcher ×
// shard-count combination: a write batch followed by a read batch of the
// same variables must return the written values, and intra-batch
// write→read on one variable must forward the pending write's value.
func TestAccessBatchRoundTrip(t *testing.T) {
	for _, cfg := range configs() {
		t.Run(cfg.name(), func(t *testing.T) {
			svc := newService(t, 3, cfg)
			const n = 40
			writes := make([]BatchOp, n)
			for i := range writes {
				writes[i] = BatchOp{Write: true, Var: uint64(i), Val: uint64(i) + 1000}
			}
			wb, err := svc.AccessBatch(writes)
			if err != nil {
				t.Fatalf("write batch: %v", err)
			}
			if err := wb.Wait(); err != nil {
				t.Fatalf("write batch wait: %v", err)
			}
			if wb.Len() != n {
				t.Fatalf("batch len %d, want %d", wb.Len(), n)
			}
			reads := make([]BatchOp, n)
			for i := range reads {
				reads[i] = BatchOp{Var: uint64(i)}
			}
			rb, err := svc.AccessBatch(reads)
			if err != nil {
				t.Fatalf("read batch: %v", err)
			}
			for i := 0; i < n; i++ {
				got, err := rb.Value(i)
				if err != nil {
					t.Fatalf("read %d: %v", i, err)
				}
				if got != uint64(i)+1000 {
					t.Fatalf("read %d: got %d, want %d", i, got, uint64(i)+1000)
				}
			}

			// Intra-batch write→read: the read rides the pending write.
			mixed, err := svc.AccessBatch([]BatchOp{
				{Write: true, Var: 7, Val: 4242},
				{Var: 7},
			})
			if err != nil {
				t.Fatal(err)
			}
			if got, err := mixed.Value(1); err != nil || got != 4242 {
				t.Fatalf("intra-batch read-after-write: got %d, %v; want 4242", got, err)
			}
		})
	}
}

// TestAccessBatchMatchesPerOp is the differential check: the same operation
// sequence through AccessBatch and through the per-op API must leave the
// store in the same state and return the same read values (per-variable
// linearizability is dispatcher-path independent).
func TestAccessBatchMatchesPerOp(t *testing.T) {
	mkops := func() []BatchOp {
		ops := make([]BatchOp, 0, 300)
		for i := 0; i < 100; i++ {
			v := uint64(i % 17)
			ops = append(ops,
				BatchOp{Write: true, Var: v, Val: uint64(i)},
				BatchOp{Var: v},
				BatchOp{Var: uint64((i + 5) % 17)},
			)
		}
		return ops
	}

	run := func(t *testing.T, batched bool) []uint64 {
		svc := newService(t, 3, Config{Shards: 4, Pipeline: true, MaxBatch: 8})
		ops := mkops()
		vals := make([]uint64, len(ops))
		if batched {
			// Windows of 30 keep several shards touched per call.
			for lo := 0; lo < len(ops); lo += 30 {
				hi := lo + 30
				b, err := svc.AccessBatch(ops[lo:hi])
				if err != nil {
					t.Fatal(err)
				}
				for i := lo; i < hi; i++ {
					v, err := b.Value(i - lo)
					if err != nil {
						t.Fatal(err)
					}
					vals[i] = v
				}
			}
			return vals
		}
		futs := make([]*frontend.Future, len(ops))
		for i, op := range ops {
			var err error
			if op.Write {
				futs[i], err = svc.WriteAsync(op.Var, op.Val)
			} else {
				futs[i], err = svc.ReadAsync(op.Var)
			}
			if err != nil {
				t.Fatal(err)
			}
			// Window of 30, mirroring the batched run's commit boundaries.
			if (i+1)%30 == 0 {
				for j := i - 29; j <= i; j++ {
					v, err := futs[j].Wait()
					if err != nil {
						t.Fatal(err)
					}
					vals[j] = v
				}
			}
		}
		return vals
	}

	batched := run(t, true)
	perOp := run(t, false)
	for i := range batched {
		if batched[i] != perOp[i] {
			t.Fatalf("op %d: batched returned %d, per-op returned %d", i, batched[i], perOp[i])
		}
	}
}

// TestAccessBatchConcurrent hammers AccessBatch from many clients with
// overlapping variable sets under -race: per-variable writes are tagged by
// client, and every read must observe some committed tag (zero included:
// unwritten), never a torn or stale-uncommitted value.
func TestAccessBatchConcurrent(t *testing.T) {
	svc := newService(t, 3, Config{Shards: 4, Pipeline: true, MaxBatch: 16})
	const clients, rounds, span = 8, 50, 24
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				ops := make([]BatchOp, 0, span*2)
				for v := 0; v < span; v++ {
					ops = append(ops,
						BatchOp{Write: true, Var: uint64(v), Val: uint64(c)<<32 | uint64(r)},
						BatchOp{Var: uint64(v)})
				}
				b, err := svc.AccessBatch(ops)
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				for i := 0; i < b.Len(); i++ {
					if _, err := b.Value(i); err != nil {
						t.Errorf("client %d: op %d: %v", c, i, err)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
}

// TestAccessBatchEmptyAndClosed covers the edges: an empty batch succeeds
// immediately; a batch against a closed service fails with ErrClosed on
// both dispatcher paths.
func TestAccessBatchEmptyAndClosed(t *testing.T) {
	for _, cfg := range []Config{{Shards: 2, Pipeline: true}, {Shards: 2, Pipeline: false}} {
		svc, err := New(testMapper(t, 3), cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := svc.AccessBatch(nil)
		if err != nil || b.Len() != 0 {
			t.Fatalf("empty batch: %v, len %d", err, b.Len())
		}
		if err := svc.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := svc.AccessBatch([]BatchOp{{Var: 1}}); !errors.Is(err, frontend.ErrClosed) {
			t.Fatalf("batch after close: %v, want ErrClosed", err)
		}
	}
}

// TestAccessBatchErrorAttribution: a batch touching a stranded variable
// gets the quorum verdict on exactly that op while the batch's healthy ops
// commit — the fault layer's per-request attribution threads through the
// batch path unchanged.
func TestAccessBatchErrorAttribution(t *testing.T) {
	fs := mpc.NewFaultSet()
	svc, s, idx := faultService(t, 2, fs, protocol.Config{})
	defer svc.Close()

	victim := uint64(10)
	for _, m := range s.VarModules(nil, idx.Mat(victim)) {
		fs.Fail(m)
	}
	ops := []BatchOp{
		{Write: true, Var: victim, Val: 1},
		{Write: true, Var: 2, Val: 22},
		{Var: 2},
	}
	b, err := svc.AccessBatch(ops)
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	if _, err := b.Value(0); !errors.Is(err, protocol.ErrQuorumUnreachable) {
		t.Fatalf("victim op: %v, want ErrQuorumUnreachable", err)
	}
	if _, err := b.Value(1); err != nil {
		t.Fatalf("healthy write: %v", err)
	}
	if got, err := b.Value(2); err != nil || got != 22 {
		t.Fatalf("healthy read: %d, %v; want 22", got, err)
	}
	if werr := b.Wait(); !errors.Is(werr, protocol.ErrQuorumUnreachable) {
		t.Fatalf("batch Wait: %v, want the victim's verdict", werr)
	}
}

// TestAccessBatchAllocs pins the batch admission cost on the pipelined
// path: beyond the three documented allocations (futs slice, future slab,
// and the Batch header), admitting through the rings allocates nothing —
// the partition scratch is pooled.
func TestAccessBatchAllocs(t *testing.T) {
	svc := newService(t, 3, Config{Shards: 4, Pipeline: true, MaxBatch: 64, RingCap: 4096})
	ops := make([]BatchOp, 64)
	for i := range ops {
		ops[i] = BatchOp{Write: true, Var: uint64(i), Val: 1}
	}
	// Warm the pool and the rings.
	if b, err := svc.AccessBatch(ops); err != nil {
		t.Fatal(err)
	} else if err := b.Wait(); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(50, func() {
		b, err := svc.AccessBatch(ops)
		if err != nil {
			t.Fatal(err)
		}
		// Flush completes every admitted future (sentinel semantics), so
		// the Wait sweep below never mints a lazy done channel per op.
		if err := svc.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := b.Wait(); err != nil {
			t.Fatal(err)
		}
	})
	// futs + slab + Batch header = 3, plus one Flush ack channel per shard
	// (4): the budget is O(1) per call — 64 pending Waits would blow far
	// past it.
	if avg > 10 {
		t.Fatalf("AccessBatch allocates %.1f per call, want <= 10 (must stay O(1) per call, not O(ops))", avg)
	}
}
