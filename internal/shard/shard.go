// Package shard scales the combining frontend past the single-dispatcher
// ceiling. PP93's scheme is embarrassingly parallel across disjoint
// variable sets — any partition of the M variables can be served by
// independent MPC instances — so the Service partitions the variable space
// over S independent protocol.System instances (each with its own
// persistent-worker engine, all sharing one compiled resolver) behind a
// stateless router: every operation on variable v goes to shard Route(v).
//
// # Consistency contract
//
// The Service is linearizable per variable, not across variables. All
// operations on one variable land on the same shard, whose dispatcher
// serializes them — admission order is commit order, exactly as in
// internal/frontend — so a read always observes the latest committed write
// of the same variable, and Future.Seq orders operations within a shard.
// Operations on different variables that route to different shards have no
// mutual order: there is no cross-shard commit sequence, which is the price
// of scaling. Programs needing a cross-variable happens-before must either
// keep the variables on one shard (S=1) or synchronize externally. The
// differential oracle test replays each shard's commit sequence
// independently.
//
// # Pipelined dispatch
//
// With Config.Pipeline, each shard runs the lock-free dispatcher
// (dispatch.go): clients admit operations into a bounded MPSC ring
// (ring.go) with one atomic fetch-add plus one publishing store — no
// admission mutex — while the shard's flusher goroutine, the ring's single
// consumer, drains whole published windows per sweep, coalesces them into
// the accumulating batch, and drives sealed batches through the backend's
// allocation-free AccessInto path. Batch k+1 admits while batch k is still
// in the backend, and the per-op channel hop through a dispatcher
// goroutine is gone. Without Pipeline, each shard wraps a classic
// channel-dispatcher frontend.Frontend, kept as the measured baseline.
//
// # Cross-shard batches
//
// AccessBatch (batch.go) submits one client batch spanning any number of
// shards with one synchronization per touched shard: the ops are
// partitioned by Route once, each shard's sub-batch claims its ring slots
// with a single fetch-add, and the caller waits on one Batch handle.
package shard

import (
	"fmt"

	"detshmem/internal/consistency"
	"detshmem/internal/frontend"
	"detshmem/internal/obs"
	"detshmem/internal/protocol"
)

// Config tunes the sharded service.
type Config struct {
	// Shards is S, the number of independent protocol systems. 0 defaults
	// to 1.
	Shards int
	// Pipeline selects the direct-admission double-buffered dispatcher per
	// shard; false wraps a classic frontend.Frontend per shard.
	Pipeline bool
	// MaxBatch is the per-shard flush threshold in distinct variables.
	// 0 defaults to the mapper's module count N (the largest batch the
	// protocol accepts).
	MaxBatch int
	// QueueCap bounds each shard's submission queue (channel dispatcher
	// only). 0 defaults to frontend's 4×MaxBatch.
	QueueCap int
	// MaxPending bounds admitted-but-unflushed work per shard (pipelined
	// dispatcher only): it sizes the default admission-ring capacity at
	// MaxBatch×(MaxPending+1) operations, clamped to [64, 4096] slots.
	// Admission blocks (briefly spins, then sleeps) once the ring is full.
	// 0 defaults to 2 — roughly one batch flushing, one sealed, one
	// accumulating, as in the mutex-based dispatcher this replaced.
	MaxPending int
	// RingCap, when > 0, sets the pipelined admission-ring capacity in
	// operations directly (rounded up to a power of two), overriding the
	// MaxPending-derived default. Small rings sharpen backpressure; large
	// rings absorb burstier admission.
	RingCap int
	// Protocol is the template for every shard's system. If its Resolver is
	// nil one compiled resolver is built from the mapper and shared by all
	// shards; Observer/Recorder hooks are preserved (per-shard collectors
	// are chained after them when Observe is set).
	Protocol protocol.Config
	// Observe attaches a per-shard obs.Collector to each shard's dispatcher
	// and system, exposed via Collector and Snapshot.
	Observe bool
	// Audit, when Audit.Rate > 0, attaches a sampling consistency auditor
	// to each shard's dispatcher (see consistency.AuditConfig): every
	// committed operation on a deterministic ~Rate sample of the variable
	// space is checked against the shard's per-variable-linearizability
	// contract, in commit order, on the flush path. Because all operations
	// on a variable land on one shard, each shard's auditor sees the
	// complete history of its sampled variables. With Observe set the
	// audit counters also flow into the shard's collector. Audit.Collector
	// is ignored (the per-shard collector is used).
	Audit consistency.AuditConfig
	// Transport, when non-nil, supplies each shard's MPC transport: shard
	// i's system is built over Transport(i), overriding Protocol.Transport.
	// Every shard needs its own transport namespace (for netmpc, a distinct
	// StoreID per shard) because shards are independent systems with
	// independent timestamp streams sharing one server cluster's address
	// space. The caller owns the returned transports' lifetimes — close
	// them after the service.
	Transport func(shard int) protocol.Transport
}

// Service is the sharded frontend. All methods are safe for concurrent use.
type Service struct {
	shards []*shardState
}

// dispatcher is the per-shard admission surface; *frontend.Frontend and
// *pipeDispatcher both implement it.
type dispatcher interface {
	ReadAsync(v uint64) (*frontend.Future, error)
	WriteAsync(v, val uint64) (*frontend.Future, error)
	Flush() error
	Close() error
	Stats() frontend.Stats
}

type shardState struct {
	sys *protocol.System
	col *obs.Collector       // nil unless Config.Observe
	aud *consistency.Auditor // nil unless Config.Audit.Rate > 0
	d   dispatcher
}

// New builds a sharded service over one memory organization. Every shard
// gets its own protocol.System (own store, own MPC engine) over the same
// mapper; with cfg.Protocol.Resolver nil, one resolver is compiled here and
// shared by all shards, so the address table is built (and held) once.
// Under Strategy ResolverComputed or ResolverHybrid no table is compiled at
// all; hybrid shards share one hot-coset cache the same way.
func New(m protocol.Mapper, cfg Config) (*Service, error) {
	if m == nil {
		return nil, fmt.Errorf("shard: nil mapper")
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.Shards < 1 || cfg.Shards > 4096 {
		return nil, fmt.Errorf("shard: Shards %d out of range [1, 4096]", cfg.Shards)
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = int(m.NumModules())
	}
	if cfg.MaxBatch < 1 {
		return nil, fmt.Errorf("shard: MaxBatch %d must be positive", cfg.MaxBatch)
	}
	if cfg.MaxPending < 0 {
		return nil, fmt.Errorf("shard: MaxPending %d must be positive", cfg.MaxPending)
	}
	if cfg.MaxPending == 0 {
		cfg.MaxPending = 2
	}
	if cfg.RingCap < 0 || cfg.RingCap > 1<<20 {
		return nil, fmt.Errorf("shard: RingCap %d out of range [0, %d]", cfg.RingCap, 1<<20)
	}
	ringCap := cfg.RingCap
	if ringCap == 0 {
		ringCap = cfg.MaxBatch * (cfg.MaxPending + 1)
		if ringCap < 64 {
			ringCap = 64
		}
		if ringCap > 4096 {
			ringCap = 4096
		}
	}
	pcfg := cfg.Protocol
	switch pcfg.Strategy {
	case protocol.ResolverComputed, protocol.ResolverHybrid:
		// Table-free strategies: never auto-compile. Under hybrid, one
		// shared hot-coset cache serves every shard (unless the caller
		// supplied their own), mirroring the single shared table below —
		// resident cache memory stays bounded by the slot count rather than
		// growing per shard.
		if pcfg.Strategy == protocol.ResolverHybrid && pcfg.HotCache == nil {
			pcfg.HotCache = protocol.NewHotCache(m, pcfg.HotCacheSlots)
		}
	default:
		if pcfg.Resolver == nil {
			if r, ok := m.(*protocol.CompiledResolver); ok {
				pcfg.Resolver = r
			} else {
				r, err := protocol.CompileMapper(m, protocol.CompileOptions{})
				if err != nil {
					return nil, fmt.Errorf("shard: compiling resolver: %w", err)
				}
				pcfg.Resolver = r
			}
		}
	}
	s := &Service{shards: make([]*shardState, cfg.Shards)}
	fail := func(i int, err error) (*Service, error) {
		for j := 0; j < i; j++ {
			_ = s.shards[j].d.Close()
			s.shards[j].sys.Close()
		}
		return nil, err
	}
	for i := range s.shards {
		scfg := pcfg
		st := &shardState{}
		if cfg.Observe {
			st.col = obs.NewCollector()
			scfg.Observer = obs.MultiBatch(pcfg.Observer, st.col)
			scfg.Recorder = obs.Multi(pcfg.Recorder, st.col)
		}
		if cfg.Transport != nil {
			scfg.Transport = cfg.Transport(i)
		}
		sys, err := protocol.NewGenericSystem(m, scfg)
		if err != nil {
			return fail(i, fmt.Errorf("shard %d: %w", i, err))
		}
		st.sys = sys
		// One auditor per shard: the audited per-variable histories stay
		// complete because routing pins every operation on a variable to
		// one shard. The interface value is only set when auditing is on —
		// a typed nil would defeat the dispatchers' nil checks.
		var aud frontend.Auditor
		if cfg.Audit.Rate > 0 {
			acfg := cfg.Audit
			acfg.Collector = st.col
			st.aud = consistency.NewAuditor(acfg)
			aud = st.aud
		}
		if cfg.Pipeline {
			st.d = newPipeDispatcher(sys, cfg.MaxBatch, ringCap, st.col, aud)
		} else {
			fe, err := frontend.New(sys, frontend.Config{
				MaxBatch:  cfg.MaxBatch,
				QueueCap:  cfg.QueueCap,
				Collector: st.col,
				Auditor:   aud,
			})
			if err != nil {
				sys.Close()
				return fail(i, fmt.Errorf("shard %d: %w", i, err))
			}
			st.d = fe
		}
		s.shards[i] = st
	}
	return s, nil
}

// Shards returns S.
func (s *Service) Shards() int { return len(s.shards) }

// Route maps a variable to its shard. The mix is the splitmix64 finalizer —
// a fixed bijective mixer, so routing is deterministic, identical across
// processes and runs, and trivially stable (same v, same shard) — reduced
// mod S. Hashing rather than taking v mod S directly keeps structured
// variable patterns (strides, hot prefixes) from piling onto one shard.
func (s *Service) Route(v uint64) int {
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	return int(v % uint64(len(s.shards)))
}

// ReadAsync submits a read to the variable's shard.
func (s *Service) ReadAsync(v uint64) (*frontend.Future, error) {
	return s.shards[s.Route(v)].d.ReadAsync(v)
}

// WriteAsync submits a write to the variable's shard.
func (s *Service) WriteAsync(v, val uint64) (*frontend.Future, error) {
	return s.shards[s.Route(v)].d.WriteAsync(v, val)
}

// Read submits a read and blocks until its batch commits.
func (s *Service) Read(v uint64) (uint64, error) {
	fut, err := s.ReadAsync(v)
	if err != nil {
		return 0, err
	}
	return fut.Wait()
}

// Write submits a write and blocks until its batch commits.
func (s *Service) Write(v, val uint64) error {
	fut, err := s.WriteAsync(v, val)
	if err != nil {
		return err
	}
	_, err = fut.Wait()
	return err
}

// Flush forces every shard's pending batch out and blocks until all have
// committed.
func (s *Service) Flush() error {
	var first error
	for _, st := range s.shards {
		if err := st.d.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close flushes pending work on every shard, stops the dispatchers, and
// releases the shards' MPC engines. Later submissions fail with
// frontend.ErrClosed.
func (s *Service) Close() error {
	var first error
	for _, st := range s.shards {
		if err := st.d.Close(); err != nil && first == nil {
			first = err
		}
		st.sys.Close()
	}
	return first
}

// Stats is the sharded service's combining view: each shard's dispatcher
// stats plus their merge.
type Stats struct {
	PerShard []frontend.Stats
	Total    frontend.Stats
}

// Imbalance is max/mean of per-shard committed operations — 1.0 is a
// perfectly even partition; S means everything landed on one shard. Zero
// when nothing committed.
func (st Stats) Imbalance() float64 {
	var sum, max int64
	for _, s := range st.PerShard {
		sum += s.OpsIn
		if s.OpsIn > max {
			max = s.OpsIn
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(st.PerShard))
	return float64(max) / mean
}

// Stats snapshots every shard's dispatcher.
func (s *Service) Stats() Stats {
	out := Stats{PerShard: make([]frontend.Stats, len(s.shards))}
	for i, st := range s.shards {
		out.PerShard[i] = st.d.Stats()
		out.Total.Merge(out.PerShard[i])
	}
	return out
}

// System returns shard i's protocol system (for tests and tools).
func (s *Service) System(i int) *protocol.System { return s.shards[i].sys }

// Collector returns shard i's collector, nil unless Config.Observe.
func (s *Service) Collector(i int) *obs.Collector { return s.shards[i].col }

// Auditor returns shard i's sampling consistency auditor, nil unless
// Config.Audit.Rate > 0.
func (s *Service) Auditor(i int) *consistency.Auditor { return s.shards[i].aud }

// AuditStats merges every shard's audit counters. Zero when auditing is
// off.
func (s *Service) AuditStats() consistency.AuditStats {
	var out consistency.AuditStats
	for _, st := range s.shards {
		a := st.aud.Stats()
		out.Sampled += a.Sampled
		out.Violations += a.Violations
		out.Evictions += a.Evictions
	}
	return out
}

// Snapshot merges every shard's collector into one labeled map
// ("shard0_batches_total", …) plus service-level aggregates: per-shard
// committed ops ("shardN_ops_committed"), the max/mean imbalance ratio
// ×1000 ("shard_imbalance_milli"), and a histogram of the per-shard op
// counts ("shard_ops_count"/"shard_ops_sum") so skew is visible without
// Prometheus. Empty without Config.Observe.
func (s *Service) Snapshot() map[string]int64 {
	out := make(map[string]int64)
	st := s.Stats()
	var hist obs.Histogram
	for i, sh := range s.shards {
		if sh.col != nil {
			sh.col.SnapshotInto(fmt.Sprintf("shard%d_", i), out)
		}
		out[fmt.Sprintf("shard%d_ops_committed", i)] = st.PerShard[i].OpsIn
		hist.Observe(st.PerShard[i].OpsIn)
	}
	if len(out) == 0 {
		return out
	}
	out["shard_imbalance_milli"] = int64(st.Imbalance() * 1000)
	out["shard_ops_count"] = hist.Count()
	out["shard_ops_sum"] = hist.Sum()
	return out
}
