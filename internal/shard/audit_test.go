package shard

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"detshmem/internal/consistency"
	"detshmem/internal/core"
	"detshmem/internal/frontend"
	"detshmem/internal/mpc"
	"detshmem/internal/obs"
	"detshmem/internal/protocol"
)

// driveAudited hammers the service with windowed hot-spot traffic from
// concurrent clients (unique write values, the recorder discipline) and
// waits every future. Returns the number of submitted operations.
func driveAudited(t *testing.T, svc *Service, clients, opsPerClient int, vars uint64, seed int64) int {
	t.Helper()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(c)*104729))
			const window = 16
			pending := make([]*frontend.Future, 0, window)
			drain := func() {
				for _, f := range pending {
					if _, err := f.Wait(); err != nil {
						t.Errorf("client %d: %v", c, err)
					}
				}
				pending = pending[:0]
			}
			seq := uint64(0)
			for i := 0; i < opsPerClient; i++ {
				v := uint64(rng.Int63n(8))
				if rng.Intn(100) >= 60 {
					v = uint64(rng.Int63n(int64(vars)))
				}
				var f *frontend.Future
				var err error
				if rng.Intn(100) < 40 {
					seq++
					f, err = svc.WriteAsync(v, uint64(c+1)<<40|seq)
				} else {
					f, err = svc.ReadAsync(v)
				}
				if err != nil {
					t.Errorf("client %d: submit: %v", c, err)
					return
				}
				pending = append(pending, f)
				if len(pending) == window {
					drain()
				}
			}
			drain()
		}(c)
	}
	wg.Wait()
	return clients * opsPerClient
}

// TestAuditedServiceCleanTraffic runs the always-on sampling audit at Rate 1
// over the dispatcher × shard matrix: legitimate traffic must never trip the
// auditor, every shard's ring must replay to a certified per-variable trace,
// and the counters must surface through the per-shard collectors.
func TestAuditedServiceCleanTraffic(t *testing.T) {
	for _, cfg := range configs() {
		cfg := cfg
		cfg.Observe = true
		cfg.Audit = consistency.AuditConfig{Rate: 1}
		t.Run(cfg.name(), func(t *testing.T) {
			svc := newService(t, 3, cfg)
			ops := driveAudited(t, svc, 4, 150, 48, 11)
			if t.Failed() {
				t.FailNow()
			}
			if err := svc.Flush(); err != nil {
				t.Fatal(err)
			}
			st := svc.AuditStats()
			if st.Violations != 0 {
				for i := 0; i < svc.Shards(); i++ {
					t.Logf("shard %d samples: %+v", i, svc.Auditor(i).ViolationSamples())
				}
				t.Fatalf("clean traffic tripped the audit: %+v", st)
			}
			// The audit stream is the coalesced commit-order entry stream:
			// ops on one variable combined into a batch audit as one entry,
			// so Rate 1 samples every entry — positive, at most ops.
			if st.Sampled == 0 || st.Sampled > int64(ops) {
				t.Fatalf("Rate 1 sampled %d entries over %d ops", st.Sampled, ops)
			}
			// The dispatchers are quiescent after Flush + Wait: each shard's
			// commit-order ring must certify under the shard contract.
			var fromCols int64
			for i := 0; i < svc.Shards(); i++ {
				if rep := svc.Auditor(i).CheckNow(); !rep.OK {
					t.Fatalf("shard %d ring rejected: %+v", i, rep.First())
				}
				fromCols += svc.Collector(i).Snapshot()["audit_sampled_total"]
			}
			if fromCols != st.Sampled {
				t.Fatalf("collector counters say %d sampled, auditors say %d", fromCols, st.Sampled)
			}
			snap := svc.Snapshot()
			if snap["shard0_audit_sampled_total"] == 0 && snap["shard1_audit_sampled_total"] == 0 {
				t.Fatalf("audit counters missing from service snapshot: %v", snap)
			}
		})
	}
}

// TestAuditedServicePartialRate checks that fractional sampling composes
// with routing: at Rate 0.25 over 4 shards a strict subset of the variable
// space is audited, spread over the shards, still with zero violations.
func TestAuditedServicePartialRate(t *testing.T) {
	svc := newService(t, 3, Config{
		Shards:   4,
		Pipeline: true,
		Audit:    consistency.AuditConfig{Rate: 0.25},
	})
	ops := driveAudited(t, svc, 4, 200, 80, 23)
	if t.Failed() {
		t.FailNow()
	}
	if err := svc.Flush(); err != nil {
		t.Fatal(err)
	}
	st := svc.AuditStats()
	if st.Violations != 0 {
		t.Fatalf("clean traffic tripped the audit: %+v", st)
	}
	if st.Sampled == 0 || st.Sampled >= int64(ops) {
		t.Fatalf("0.25 sampling audited %d of %d ops, want a strict nonzero subset", st.Sampled, ops)
	}
	audited := 0
	for i := 0; i < svc.Shards(); i++ {
		if svc.Auditor(i).Stats().Sampled > 0 {
			audited++
		}
	}
	if audited < 2 {
		t.Fatalf("sampled variables landed on only %d/4 shards", audited)
	}
}

// TestAuditedFlushSteadyStateAllocs is the alloc_test.go guard with the
// sampling audit enabled at Rate 1: the flush path — now including
// Pending.Audit and the auditor's slot probe, counters, and ring append —
// must still run at zero allocations per batch in steady state.
func TestAuditedFlushSteadyStateAllocs(t *testing.T) {
	svc := newService(t, 3, Config{
		Shards:   2,
		Pipeline: true,
		Observe:  true,
		Audit:    consistency.AuditConfig{Rate: 1},
	})
	d, ok := svc.shards[0].d.(*pipeDispatcher)
	if !ok {
		t.Fatal("pipelined shard did not build a pipeDispatcher")
	}
	if d.aud == nil {
		t.Fatal("audit config did not reach the pipelined dispatcher")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	const opsPer = 6
	p := frontend.NewPending(opsPer)
	admit := func(futs []*frontend.Future) {
		for k := 0; k < opsPer; k++ {
			if k%2 == 0 {
				p.Write(uint64(k+1), uint64(k), uint64(k), futs[k])
			} else {
				p.Read(uint64(k+1), uint64(k+10), futs[k])
			}
		}
	}
	mint := func() []*frontend.Future {
		futs := make([]*frontend.Future, opsPer)
		for i := range futs {
			futs[i] = frontend.NewFuture()
		}
		return futs
	}
	for i := 0; i < 3; i++ {
		admit(mint())
		d.flushOne(p, obs.FlushSize)
		p.Reset()
	}

	const runs = 100
	pool := make([][]*frontend.Future, runs+2)
	for i := range pool {
		pool[i] = mint()
	}
	next := 0
	if avg := testing.AllocsPerRun(runs, func() {
		admit(pool[next])
		next++
		d.flushOne(p, obs.FlushSize)
		p.Reset()
	}); avg != 0 {
		t.Fatalf("audited flush path allocates %.2f per batch in steady state, want 0", avg)
	}
	if st := svc.shards[0].aud.Stats(); st.Sampled == 0 {
		t.Fatal("auditor saw no operations through the measured flush path")
	}
}

// auditFaultService is faultService with the sampling audit enabled.
func auditFaultService(t testing.TB, shards int, fs *mpc.FaultSet, pcfg protocol.Config) (*Service, *core.Scheme, core.Indexer) {
	t.Helper()
	s, err := core.New(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := s.NewIndexer()
	if err != nil {
		t.Fatal(err)
	}
	pcfg.NewMachine = func(mcfg mpc.Config) (protocol.Machine, error) { return mpc.NewFailingShared(mcfg, fs) }
	if pcfg.MaxIterationsPerPhase == 0 {
		pcfg.MaxIterationsPerPhase = 2048
	}
	svc, err := New(protocol.NewCoreMapper(s, idx), Config{
		Shards:   shards,
		Pipeline: true,
		MaxBatch: 16,
		Protocol: pcfg,
		Audit:    consistency.AuditConfig{Rate: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return svc, s, idx
}

// TestAuditDegradedBatchNoFalseAlarm pins the auditor's failed-op policy on
// the real fault path: a degraded batch strands the victim's read and a
// fresh write with ErrQuorumUnreachable while healthy operations commit.
// The stranded ops must be fed to the auditor as failures (slot degraded to
// unknown, never a mismatch), and after recovery the ring must still replay
// to a certified trace — no false alarms from partial failure.
func TestAuditDegradedBatchNoFalseAlarm(t *testing.T) {
	fs := mpc.NewFaultSet()
	svc, s, idx := auditFaultService(t, 2, fs, protocol.Config{})
	defer svc.Close()

	victim := uint64(10)
	vmods := s.VarModules(nil, idx.Mat(victim))
	failed := map[uint64]bool{}
	for _, m := range vmods {
		failed[m] = true
	}
	var healthy []uint64
	var scratch []uint64
	for v := uint64(0); len(healthy) < 6; v++ {
		if v == victim {
			continue
		}
		live := 0
		scratch = s.VarModules(scratch[:0], idx.Mat(v))
		for _, m := range scratch {
			if !failed[m] {
				live++
			}
		}
		if live >= s.Majority {
			healthy = append(healthy, v)
		}
	}

	for _, v := range append([]uint64{victim}, healthy...) {
		if err := svc.Write(v, v+900); err != nil {
			t.Fatalf("write of %d: %v", v, err)
		}
	}
	for _, m := range vmods {
		fs.Fail(m)
	}

	// Strand both kinds: a read and a write of a fresh value.
	vr, err := svc.ReadAsync(victim)
	if err != nil {
		t.Fatal(err)
	}
	vw, err := svc.WriteAsync(victim, 7777)
	if err != nil {
		t.Fatal(err)
	}
	hf := make([]*frontend.Future, len(healthy))
	for i, v := range healthy {
		if hf[i], err = svc.ReadAsync(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := vr.Wait(); !errors.Is(err, protocol.ErrQuorumUnreachable) {
		t.Fatalf("victim read verdict: %v", err)
	}
	if _, err := vw.Wait(); !errors.Is(err, protocol.ErrQuorumUnreachable) {
		t.Fatalf("victim write verdict: %v", err)
	}
	for i, f := range hf {
		got, err := f.Wait()
		if err != nil || got != healthy[i]+900 {
			t.Fatalf("healthy read of %d = %d, %v", healthy[i], got, err)
		}
	}

	for _, m := range vmods {
		fs.Recover(m)
	}
	if v, err := svc.Read(victim); err != nil || v != victim+900 {
		t.Fatalf("victim after recovery: %d, %v", v, err)
	}

	if st := svc.AuditStats(); st.Violations != 0 {
		for i := 0; i < svc.Shards(); i++ {
			t.Logf("shard %d samples: %+v", i, svc.Auditor(i).ViolationSamples())
		}
		t.Fatalf("degraded batch produced audit false alarms: %+v", st)
	}
	for i := 0; i < svc.Shards(); i++ {
		if rep := svc.Auditor(i).CheckNow(); !rep.OK {
			t.Fatalf("shard %d ring rejected after fault cycle: %+v", i, rep.First())
		}
	}
}

// TestAuditFaultHammer is the -race concurrency lane for the audit path:
// background Fail/Recover churn (never more than one module down, so every
// request eventually succeeds via retry) under concurrent audited traffic.
// The auditor must stay silent and its ring consistent throughout.
func TestAuditFaultHammer(t *testing.T) {
	fs := mpc.NewFaultSet()
	svc, s, _ := auditFaultService(t, 2, fs, protocol.Config{FaultAttempts: 64})
	defer svc.Close()

	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		m := uint64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			fs.Fail(m)
			time.Sleep(100 * time.Microsecond)
			fs.Recover(m)
			m = (m + 7) % s.NumModules
		}
	}()

	ops := 200
	if testing.Short() {
		ops = 80
	}
	driveAudited(t, svc, 4, ops, 50, 31)
	close(stop)
	churn.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if err := svc.Flush(); err != nil {
		t.Fatal(err)
	}
	st := svc.AuditStats()
	if st.Violations != 0 {
		t.Fatalf("audit tripped under single-failure churn: %+v", st)
	}
	if st.Sampled == 0 {
		t.Fatal("auditor saw no traffic")
	}
	for i := 0; i < svc.Shards(); i++ {
		if rep := svc.Auditor(i).CheckNow(); !rep.OK {
			t.Fatalf("shard %d ring rejected after churn: %+v", i, rep.First())
		}
	}
}
