package shard

import (
	"testing"
	"unsafe"
)

// TestRingFieldPadding audits the admission ring's hot-field layout: the
// producer-side claim counter (tail), the consumer-side cursor (head), and
// the coordination flags must not share cache lines, or every claim
// invalidates the consumer's line and vice versa — exactly the false
// sharing this layout exists to kill. unsafe.Offsetof makes the audit a
// compile-coupled test: reorder the struct and this fails, not a benchmark
// three PRs later.
func TestRingFieldPadding(t *testing.T) {
	var r ring
	tail := unsafe.Offsetof(r.tail)
	head := unsafe.Offsetof(r.head)
	closed := unsafe.Offsetof(r.closed)
	if head-tail < cacheLine {
		t.Errorf("tail (offset %d) and head (offset %d) share a cache line", tail, head)
	}
	if closed-head < cacheLine {
		t.Errorf("head (offset %d) and the flag group (offset %d) share a cache line", head, closed)
	}
	// The slot array: each slot must occupy whole cache lines, or two
	// producers publishing adjacent positions ping-pong one line.
	if sz := unsafe.Sizeof(ringSlot{}); sz%cacheLine != 0 {
		t.Errorf("ringSlot size %d is not a multiple of the %d-byte cache line", sz, cacheLine)
	}
}

// TestDispatcherStatsPadding is the satellite bugfix audit: statsMu (taken
// by Stats() pollers on arbitrary goroutines) must not share a cache line
// with the flusher's per-batch scratch — previously a Stats poll bounced
// the line the flusher writes on every flush.
func TestDispatcherStatsPadding(t *testing.T) {
	var d pipeDispatcher
	scratchEnd := unsafe.Offsetof(d.res) + unsafe.Sizeof(d.res)
	statsMu := unsafe.Offsetof(d.statsMu)
	if statsMu-scratchEnd < cacheLine {
		t.Errorf("statsMu (offset %d) within a cache line of flusher scratch (ends %d)",
			statsMu, scratchEnd)
	}
}
