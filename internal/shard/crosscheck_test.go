package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"detshmem/internal/consistency"
	"detshmem/internal/frontend"
	"detshmem/internal/mpc"
	"detshmem/internal/protocol"
)

// This file cross-checks the repo's two independent consistency verifiers
// against each other on the same runs:
//
//   - the differential oracle (internal/frontend/differential_test.go):
//     white-box — replays the dispatcher-assigned commit sequence numbers
//     against a plain map, one replay per shard;
//   - the black-box trace checker (internal/consistency): sees only what
//     clients saw — per-client streams of (op, value) — and decides by
//     constraint-graph closure under the run's declared contract.
//
// Both must certify every legitimate run (frontend total-order, sharded
// per-variable, and the fault matrix with stranded requests excluded), and
// both must reject the same corrupted record stream. Failed operations
// (ErrQuorumUnreachable) are dropped from the oracle replay and marked
// Failed in the trace, where the checker's failed-op policy handles them.

// xrec is one operation as a client observed it: oracle fields (seq) plus
// trace fields (program order is the slice order per client).
type xrec struct {
	seq    uint64
	write  bool
	v, val uint64
	failed bool
}

// driveRecorded drives the service with windowed hot-spot traffic and
// returns each client's operations in program order. Write values are
// minted uniquely per client (the recorder discipline). With allowFail,
// ErrQuorumUnreachable verdicts are recorded as failed ops instead of
// failing the test.
func driveRecorded(t *testing.T, svc *Service, clients, opsPerClient int, vars uint64, seed int64, allowFail bool) [][]xrec {
	t.Helper()
	out := make([][]xrec, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(c)*7919))
			recs := make([]xrec, 0, opsPerClient)
			type slot struct {
				fut   *frontend.Future
				write bool
				v     uint64
				val   uint64
			}
			const window = 16
			pending := make([]slot, 0, window)
			drain := func() {
				for _, s := range pending {
					got, err := s.fut.Wait()
					if err != nil {
						if !allowFail || !errors.Is(err, protocol.ErrQuorumUnreachable) {
							t.Errorf("client %d: %v", c, err)
							return
						}
						recs = append(recs, xrec{write: s.write, v: s.v, val: s.val, failed: true})
						continue
					}
					r := xrec{seq: s.fut.Seq(), write: s.write, v: s.v, val: got}
					if s.write {
						r.val = s.val
					}
					recs = append(recs, r)
				}
				pending = pending[:0]
			}
			mint := uint64(0)
			for i := 0; i < opsPerClient; i++ {
				v := uint64(rng.Int63n(8))
				if rng.Intn(100) >= 60 {
					v = uint64(rng.Int63n(int64(vars)))
				}
				if rng.Intn(100) < 40 {
					mint++
					val := uint64(c+1)<<40 | mint
					fut, err := svc.WriteAsync(v, val)
					if err != nil {
						t.Errorf("client %d: %v", c, err)
						return
					}
					pending = append(pending, slot{fut, true, v, val})
				} else {
					fut, err := svc.ReadAsync(v)
					if err != nil {
						t.Errorf("client %d: %v", c, err)
						return
					}
					pending = append(pending, slot{fut, false, v, 0})
				}
				if len(pending) == window {
					drain()
				}
			}
			drain()
			out[c] = recs
		}(c)
	}
	wg.Wait()
	return out
}

// traceOf converts the recorded streams into the checker's trace model.
func traceOf(recs [][]xrec) consistency.Trace {
	tr := make(consistency.Trace, len(recs))
	for c, stream := range recs {
		for _, r := range stream {
			tr[c] = append(tr[c], consistency.Op{Write: r.write, Var: r.v, Val: r.val, Failed: r.failed})
		}
	}
	return tr
}

// oracleReplay is the differential oracle generalized to S shards: failed
// ops are dropped, the rest are grouped by route and each shard's commit
// sequence is replayed against a plain map. Returns a description of the
// first divergence, or "" when the replay matches.
func oracleReplay(svc *Service, recs [][]xrec) string {
	byShard := make([][]xrec, svc.Shards())
	for _, stream := range recs {
		for _, r := range stream {
			if r.failed {
				continue
			}
			sh := svc.Route(r.v)
			byShard[sh] = append(byShard[sh], r)
		}
	}
	for sh, rs := range byShard {
		sort.Slice(rs, func(i, j int) bool { return rs[i].seq < rs[j].seq })
		oracle := make(map[uint64]uint64)
		for i, r := range rs {
			if i > 0 && rs[i-1].seq == r.seq {
				return fmt.Sprintf("shard %d: duplicate commit sequence %d", sh, r.seq)
			}
			if r.write {
				oracle[r.v] = r.val
				continue
			}
			if want := oracle[r.v]; r.val != want {
				return fmt.Sprintf("shard %d seq %d: read of var %d returned %d, oracle says %d", sh, r.seq, r.v, r.val, want)
			}
		}
	}
	return ""
}

// TestCrossCheckTotalOrder: on a single shard both dispatchers honor the
// total-order contract — the white-box oracle and the black-box checker
// (under BOTH modes, per ModesFor) must certify the same concurrent runs.
func TestCrossCheckTotalOrder(t *testing.T) {
	for _, pipe := range []bool{false, true} {
		for _, parallel := range []bool{false, true} {
			pcfg := protocol.Config{Parallel: parallel}
			if parallel {
				pcfg.Workers = 2
			}
			name := fmt.Sprintf("%s/parallel=%v", map[bool]string{false: "classic", true: "pipelined"}[pipe], parallel)
			t.Run(name, func(t *testing.T) {
				svc := newService(t, 3, Config{Shards: 1, Pipeline: pipe, Protocol: pcfg})
				ops := 120
				if testing.Short() {
					ops = 50
				}
				recs := driveRecorded(t, svc, 4, ops, 32, int64(len(name)), false)
				if t.Failed() {
					t.FailNow()
				}
				if err := svc.Flush(); err != nil {
					t.Fatal(err)
				}
				if msg := oracleReplay(svc, recs); msg != "" {
					t.Fatalf("oracle diverged: %s", msg)
				}
				tr := traceOf(recs)
				for _, mode := range consistency.ModesFor(consistency.ContractTotalOrder) {
					rep := consistency.Check(tr, mode)
					if !rep.OK {
						t.Fatalf("checker rejected a run the oracle certified (%s): %+v", mode, rep.First())
					}
					if rep.OpsChecked != 4*ops {
						t.Fatalf("%s checked %d ops, drove %d", mode, rep.OpsChecked, 4*ops)
					}
				}
			})
		}
	}
}

// TestCrossCheckShardedPerVariable: with S > 1 there is no cross-shard
// order; the service's contract is per-variable. Both verifiers must
// certify under that contract on both dispatchers.
func TestCrossCheckShardedPerVariable(t *testing.T) {
	for _, pipe := range []bool{false, true} {
		name := map[bool]string{false: "classic", true: "pipelined"}[pipe]
		t.Run(name, func(t *testing.T) {
			svc := newService(t, 3, Config{Shards: 4, Pipeline: pipe})
			ops := 150
			if testing.Short() {
				ops = 60
			}
			recs := driveRecorded(t, svc, 4, ops, 80, 41, false)
			if t.Failed() {
				t.FailNow()
			}
			if err := svc.Flush(); err != nil {
				t.Fatal(err)
			}
			if msg := oracleReplay(svc, recs); msg != "" {
				t.Fatalf("oracle diverged: %s", msg)
			}
			tr := traceOf(recs)
			for _, mode := range consistency.ModesFor(consistency.ContractPerVariable) {
				if rep := consistency.Check(tr, mode); !rep.OK {
					t.Fatalf("checker rejected a run the oracle certified (%s): %+v", mode, rep.First())
				}
			}
		})
	}
}

// TestCrossCheckAgreeOnCorruption: the two verifiers must also agree on the
// negative side. Corrupt one committed read in a recorded run to a value no
// write ever minted: the oracle replay diverges AND the checker reports a
// phantom read on the same trace.
func TestCrossCheckAgreeOnCorruption(t *testing.T) {
	svc := newService(t, 3, Config{Shards: 1, Pipeline: true})
	recs := driveRecorded(t, svc, 3, 80, 24, 17, false)
	if t.Failed() {
		t.FailNow()
	}
	if err := svc.Flush(); err != nil {
		t.Fatal(err)
	}
	if msg := oracleReplay(svc, recs); msg != "" {
		t.Fatalf("clean run diverged: %s", msg)
	}

	corrupted := false
	for c := range recs {
		for i := range recs[c] {
			r := &recs[c][i]
			if !r.write && !r.failed && r.val != 0 {
				r.val = 0xF<<60 | 0xBAD // outside the minted value space
				corrupted = true
				break
			}
		}
		if corrupted {
			break
		}
	}
	if !corrupted {
		t.Fatal("run offered no committed nonzero read to corrupt")
	}
	if msg := oracleReplay(svc, recs); msg == "" {
		t.Fatal("oracle certified the corrupted records")
	}
	rep := consistency.Check(traceOf(recs), consistency.ModePerVariable)
	if rep.OK {
		t.Fatal("checker certified the corrupted trace")
	}
	if v := rep.First(); v.Kind != consistency.KindPhantomRead {
		t.Fatalf("violation kind = %s, want phantom read", v.Kind)
	}
}

// TestCrossCheckFaultHammer runs the cross-check over the PR5 fault matrix:
// background single-module churn with retry enabled, so every request
// eventually commits. Both verifiers must certify the per-variable contract.
func TestCrossCheckFaultHammer(t *testing.T) {
	fs := mpc.NewFaultSet()
	svc, s, _ := faultService(t, 2, fs, protocol.Config{FaultAttempts: 64})
	defer svc.Close()

	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		m := uint64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			fs.Fail(m)
			time.Sleep(100 * time.Microsecond)
			fs.Recover(m)
			m = (m + 7) % s.NumModules
		}
	}()

	ops := 200
	if testing.Short() {
		ops = 80
	}
	recs := driveRecorded(t, svc, 4, ops, 50, 53, false)
	close(stop)
	churn.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if err := svc.Flush(); err != nil {
		t.Fatal(err)
	}
	if msg := oracleReplay(svc, recs); msg != "" {
		t.Fatalf("oracle diverged under churn: %s", msg)
	}
	if rep := consistency.Check(traceOf(recs), consistency.ModePerVariable); !rep.OK {
		t.Fatalf("checker rejected a churn run the oracle certified: %+v", rep.First())
	}
}

// TestCrossCheckDegradedStranding pins the failed-op seam between the two
// verifiers: a degraded batch strands a victim read and write with
// ErrQuorumUnreachable. The stranded ops are marked Failed in the trace —
// the checker must drop them (DroppedFailed accounting) and still certify,
// and the oracle replay over the committed remainder must match.
func TestCrossCheckDegradedStranding(t *testing.T) {
	fs := mpc.NewFaultSet()
	svc, s, idx := faultService(t, 2, fs, protocol.Config{})
	defer svc.Close()

	victim := uint64(10)
	vmods := s.VarModules(nil, idx.Mat(victim))

	// Client 0's stream, recorded by hand around the fault window.
	var stream []xrec
	rec := func(f *frontend.Future, write bool, v, val uint64) {
		got, err := f.Wait()
		if err != nil {
			if !errors.Is(err, protocol.ErrQuorumUnreachable) {
				t.Fatalf("unexpected verdict: %v", err)
			}
			stream = append(stream, xrec{write: write, v: v, val: val, failed: true})
			return
		}
		r := xrec{seq: f.Seq(), write: write, v: v, val: got}
		if write {
			r.val = val
		}
		stream = append(stream, r)
	}
	do := func(write bool, v, val uint64) {
		var f *frontend.Future
		var err error
		if write {
			f, err = svc.WriteAsync(v, val)
		} else {
			f, err = svc.ReadAsync(v)
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.Flush(); err != nil {
			t.Fatal(err)
		}
		rec(f, write, v, val)
	}

	do(true, victim, 1<<40|1)
	do(false, victim, 0)
	for _, m := range vmods {
		fs.Fail(m)
	}
	do(false, victim, 0)      // stranded read
	do(true, victim, 1<<40|2) // stranded write
	for _, m := range vmods {
		fs.Recover(m)
	}
	do(false, victim, 0) // post-recovery read

	failed := 0
	for _, r := range stream {
		if r.failed {
			failed++
		}
	}
	if failed != 2 {
		t.Fatalf("expected 2 stranded ops, got %d: %+v", failed, stream)
	}

	if msg := oracleReplay(svc, [][]xrec{stream}); msg != "" {
		t.Fatalf("oracle diverged around the fault window: %s", msg)
	}
	rep := consistency.Check(traceOf([][]xrec{stream}), consistency.ModePerVariable)
	if !rep.OK {
		t.Fatalf("checker rejected the degraded run: %+v", rep.First())
	}
	if rep.DroppedFailed+rep.Resurrected != 2 {
		t.Fatalf("failed-op accounting: dropped %d resurrected %d, want 2 total", rep.DroppedFailed, rep.Resurrected)
	}
}
