package workload

import (
	"math/rand"
	"testing"

	"detshmem/internal/core"
)

func TestDistinctRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range []int{0, 1, 10, 100} {
		out := DistinctRandom(rng, 1000, k)
		if len(out) != k {
			t.Fatalf("got %d, want %d", len(out), k)
		}
		seen := make(map[uint64]bool)
		for _, v := range out {
			if v >= 1000 || seen[v] {
				t.Fatalf("bad sample %d", v)
			}
			seen[v] = true
		}
	}
	// Dense regime (k close to m) and clamping.
	out := DistinctRandom(rng, 50, 50)
	if len(out) != 50 {
		t.Fatalf("dense sample size %d", len(out))
	}
	if got := DistinctRandom(rng, 10, 99); len(got) != 10 {
		t.Fatalf("clamp failed: %d", len(got))
	}
}

func TestHotSpot(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const m, k, hot = 10000, 20000, 16
	out := HotSpot(rng, m, k, hot, 0.9)
	if len(out) != k {
		t.Fatalf("size %d", len(out))
	}
	inHot := 0
	for _, v := range out {
		if v >= m {
			t.Fatalf("sample %d out of range", v)
		}
		if v < hot {
			inHot++
		}
	}
	// 90% targeted at the hot set (plus ~hot/m spillover from the uniform
	// arm); 20k draws concentrate tightly around that.
	if frac := float64(inHot) / k; frac < 0.85 || frac > 0.95 {
		t.Fatalf("hot fraction %.3f outside [0.85, 0.95]", frac)
	}
	// Degenerate parameters fall back to uniform over [0, m).
	for _, v := range HotSpot(rng, 10, 100, 0, 0.5) {
		if v >= 10 {
			t.Fatalf("fallback sample %d out of range", v)
		}
	}
}

func TestZipf(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const m, k = 10000, 20000
	out := Zipf(rng, m, k, 1.5)
	if len(out) != k {
		t.Fatalf("size %d", len(out))
	}
	counts := make(map[uint64]int)
	for _, v := range out {
		if v >= m {
			t.Fatalf("sample %d out of range", v)
		}
		counts[v]++
	}
	// Skew sanity: rank 0 dominates, and the stream repeats heavily (far
	// fewer distinct values than draws).
	if counts[0] < k/10 {
		t.Fatalf("rank-0 count %d too small for s=1.5", counts[0])
	}
	if len(counts) > k/4 {
		t.Fatalf("%d distinct values in %d draws: not skewed", len(counts), k)
	}
}

// TestClientStreams pins the per-client seeding contract: same (base,
// client) replays the identical stream, different clients diverge, and both
// stream helpers respect the draw bounds.
func TestClientStreams(t *testing.T) {
	const m, k = 5000, 4000
	a := HotSpotStream(7, 3, m, k, 16, 0.8)
	b := HotSpotStream(7, 3, m, k, 16, 0.8)
	c := HotSpotStream(7, 4, m, k, 16, 0.8)
	d := HotSpotStream(8, 3, m, k, 16, 0.8)
	same := func(x, y []uint64) bool {
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if !same(a, b) {
		t.Fatal("same (base, client) did not replay the same stream")
	}
	if same(a, c) {
		t.Fatal("clients 3 and 4 drew identical streams")
	}
	if same(a, d) {
		t.Fatal("bases 7 and 8 drew identical streams")
	}
	if ClientSeed(7, 3) == ClientSeed(7, 4) || ClientSeed(7, 3) == ClientSeed(8, 3) {
		t.Fatal("ClientSeed collides on adjacent inputs")
	}
	for _, v := range ZipfStream(7, 3, m, k, 1.2) {
		if v >= m {
			t.Fatalf("zipf stream draw %d out of range", v)
		}
	}
}

// TestDistributionBounds sweeps Zipf and HotSpot parameters and checks every
// draw stays below m and the hot fraction lands within tolerance of its
// target (p plus the uniform arm's hot/m spillover).
func TestDistributionBounds(t *testing.T) {
	const k = 30000
	for _, m := range []uint64{16, 1000, 1 << 20} {
		for client, s := range []float64{1.01, 1.5, 3} {
			for _, v := range ZipfStream(11, client, m, k, s) {
				if v >= m {
					t.Fatalf("zipf(m=%d, s=%v) drew %d", m, s, v)
				}
			}
		}
		for client, p := range []float64{0, 0.5, 0.9, 1} {
			hot := uint64(16)
			if hot > m {
				hot = m
			}
			inHot := 0
			for _, v := range HotSpotStream(11, client, m, k, hot, p) {
				if v >= m {
					t.Fatalf("hotspot(m=%d, p=%v) drew %d", m, p, v)
				}
				if v < hot {
					inHot++
				}
			}
			want := p + (1-p)*float64(hot)/float64(m)
			if got := float64(inHot) / k; got < want-0.02 || got > want+0.02 {
				t.Fatalf("hotspot(m=%d, p=%v) hot fraction %.3f, want %.3f±0.02", m, p, got, want)
			}
		}
	}
}

func TestStride(t *testing.T) {
	out := Stride(100, 10, 7)
	if len(out) != 10 {
		t.Fatalf("size %d", len(out))
	}
	seen := make(map[uint64]bool)
	for i, v := range out {
		if v != uint64(i*7%100) {
			t.Fatalf("stride value %d at %d", v, i)
		}
		if seen[v] {
			t.Fatal("duplicate")
		}
		seen[v] = true
	}
}

func TestGammaConcentrated(t *testing.T) {
	s, err := core.New(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := s.NewIndexer()
	if err != nil {
		t.Fatal(err)
	}
	k := int(s.ModuleSize) * 3
	vars, err := GammaConcentrated(s, idx, 0, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(vars) != k {
		t.Fatalf("got %d vars, want %d", len(vars), k)
	}
	seen := make(map[uint64]bool)
	for _, v := range vars {
		if seen[v] {
			t.Fatal("duplicate variable")
		}
		seen[v] = true
	}
	// Locality property: the variables' copies only span modules
	// {0,1,2,...} ∪ their Γ² neighborhoods; in particular every variable
	// has a copy in modules {0..3} (it was drawn from one of them; 3 full
	// modules plus dedup spill can reach a 4th).
	for _, v := range vars {
		a := idx.Mat(v)
		found := false
		for _, j := range s.VarModules(nil, a) {
			if j <= 3 {
				found = true
			}
		}
		if !found {
			t.Fatalf("variable %d has no copy in the concentration window", v)
		}
	}
}

func TestSubfieldSet(t *testing.T) {
	s, err := core.New(1, 9)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := s.NewIndexer()
	if err != nil {
		t.Fatal(err)
	}
	vars, err := SubfieldSet(s, idx, 3)
	if err != nil {
		t.Fatal(err)
	}
	// PGL₂(2³) has 504 elements and H₀ = PGL₂(2) has 6: the embedded coset
	// space has 84 variables.
	if len(vars) != 84 {
		t.Fatalf("|subfield set| = %d, want 84", len(vars))
	}
	seen := make(map[uint64]bool)
	for _, v := range vars {
		if seen[v] {
			t.Fatal("duplicate")
		}
		seen[v] = true
	}
	// Expansion witness: the subfield set's Γ(S) should sit near the
	// Theorem 4 floor, far below the q+1-regular upper bound.
	mods := make(map[uint64]bool)
	for _, v := range vars {
		for _, j := range s.VarModules(nil, idx.Mat(v)) {
			mods[j] = true
		}
	}
	if len(mods) >= len(vars)*3/2 {
		t.Fatalf("subfield set expands too much to be a tightness witness: %d modules for %d vars",
			len(mods), len(vars))
	}
}

func TestSubfieldSetValidation(t *testing.T) {
	s, err := core.New(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := s.NewIndexer()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SubfieldSet(s, idx, 3); err == nil {
		t.Error("3 does not divide 5; expected error")
	}
}
