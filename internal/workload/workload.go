// Package workload generates request batches for the experiments: uniform
// random distinct sets, structured strides, graph-aware adversarial sets
// (variables concentrated on few modules, and the subfield-structured sets
// that make the Theorem 4 expansion bound tight for composite n), plus
// skewed operation streams with repeats (hot-spot, Zipf) for the combining
// frontend's concurrent traffic.
package workload

import (
	"fmt"
	"math/rand"

	"detshmem/internal/core"
)

// ClientSeed derives a decorrelated RNG seed for one client stream from a
// base seed: the splitmix64 finalizer over (base, client), so every client
// gets an independent-looking stream, the same (base, client) pair always
// yields the same stream (deterministic sharded runs replay exactly), and
// nearby client ids do not produce correlated low bits the way the old
// base+client*prime recipe could.
func ClientSeed(base int64, client int) int64 {
	x := uint64(base)*0x9e3779b97f4a7c15 + uint64(client) + 1
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

// ClientRNG returns the deterministic per-client RNG for a base seed.
func ClientRNG(base int64, client int) *rand.Rand {
	return rand.New(rand.NewSource(ClientSeed(base, client)))
}

// HotSpotStream is HotSpot drawn from the client's own seeded RNG: client
// streams are mutually independent and individually reproducible.
func HotSpotStream(base int64, client int, m uint64, k int, hot uint64, p float64) []uint64 {
	return HotSpot(ClientRNG(base, client), m, k, hot, p)
}

// ZipfStream is Zipf drawn from the client's own seeded RNG.
func ZipfStream(base int64, client int, m uint64, k int, s float64) []uint64 {
	return Zipf(ClientRNG(base, client), m, k, s)
}

// HotSpot draws k variable indices (repeats allowed, unlike the distinct
// batch generators above) where each draw falls into a small hot set
// {0, …, hot−1} with probability p and is uniform over [0, m) otherwise.
// This is the concurrent-traffic shape where the combining frontend wins:
// many clients repeatedly touching the same few variables.
func HotSpot(rng *rand.Rand, m uint64, k int, hot uint64, p float64) []uint64 {
	if hot == 0 || hot > m {
		hot = m
	}
	out := make([]uint64, k)
	for i := range out {
		if rng.Float64() < p {
			out[i] = uint64(rng.Int63n(int64(hot)))
		} else {
			out[i] = uint64(rng.Int63n(int64(m)))
		}
	}
	return out
}

// Zipf draws k variable indices (repeats allowed) from a Zipf distribution
// with exponent s > 1 over [0, m) — the classic skewed-popularity stream.
func Zipf(rng *rand.Rand, m uint64, k int, s float64) []uint64 {
	z := rand.NewZipf(rng, s, 1, m-1)
	out := make([]uint64, k)
	for i := range out {
		out[i] = z.Uint64()
	}
	return out
}

// DistinctRandom draws k distinct variables uniformly from [0, m).
func DistinctRandom(rng *rand.Rand, m uint64, k int) []uint64 {
	if uint64(k) > m {
		k = int(m)
	}
	// For small k relative to m, rejection sampling; otherwise a partial
	// Fisher–Yates over a materialized range.
	if uint64(k)*4 < m {
		seen := make(map[uint64]bool, k)
		out := make([]uint64, 0, k)
		for len(out) < k {
			v := uint64(rng.Int63n(int64(m)))
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
		return out
	}
	all := make([]uint64, m)
	for i := range all {
		all[i] = uint64(i)
	}
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	return all[:k]
}

// RandomFaults draws k distinct module ids uniformly from [0, n): the
// random crash-fault sets the fault experiments (E19) and the fault-matrix
// tests inject. It is DistinctRandom over the module space rather than the
// variable space.
func RandomFaults(rng *rand.Rand, n uint64, k int) []uint64 {
	return DistinctRandom(rng, n, k)
}

// Stride returns k distinct variables spaced by stride (mod m), a structured
// deterministic pattern. When the stride's cycle mod m is shorter than k
// (gcd(stride, m) > m/k), the walk hops to the next unvisited offset and
// continues, so the result is always k distinct values for k <= m.
func Stride(m uint64, k int, stride uint64) []uint64 {
	if uint64(k) > m {
		k = int(m)
	}
	out := make([]uint64, 0, k)
	seen := make(map[uint64]bool, k)
	for o := uint64(0); len(out) < k && o < m; o++ {
		for v := o; !seen[v] && len(out) < k; v = (v + stride) % m {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// GammaConcentrated returns up to k distinct variables drawn from
// Γ(u_start), Γ(u_start+1), … — the locality adversary for the PP scheme:
// all returned variables keep one copy inside a small window of modules.
// The indexer must support inversion.
func GammaConcentrated(s *core.Scheme, idx core.Indexer, startModule uint64, k int) ([]uint64, error) {
	inv, ok := idx.(core.Inverter)
	if !ok {
		return nil, fmt.Errorf("workload: indexer %T cannot invert cosets", idx)
	}
	out := make([]uint64, 0, k)
	seen := make(map[uint64]bool, k)
	for j := startModule; len(out) < k; j++ {
		if j >= s.NumModules {
			return out, nil
		}
		for off := uint32(0); off < s.ModuleSize && len(out) < k; off++ {
			i, found := inv.Index(s.ModuleVarMat(j, off))
			if !found {
				return nil, fmt.Errorf("workload: module %d offset %d has unindexed variable", j, off)
			}
			if !seen[i] {
				seen[i] = true
				out = append(out, i)
			}
		}
	}
	return out, nil
}

// SubfieldSet returns the variables whose cosets contain a matrix with all
// entries in the subfield F_{q^d} (d must divide n, d >= 3 so PGL₂(q^d)
// properly contains H₀). These sets inherit the structure of the embedded
// copy of PGL₂(q^d) and are the natural candidates for the tight expansion
// sets the paper mentions exist for composite n.
func SubfieldSet(s *core.Scheme, idx core.Indexer, d int) ([]uint64, error) {
	if d < 3 || s.Deg%d != 0 {
		return nil, fmt.Errorf("workload: subfield degree %d must divide n=%d and be >= 3", d, s.Deg)
	}
	inv, ok := idx.(core.Inverter)
	if !ok {
		return nil, fmt.Errorf("workload: indexer %T cannot invert cosets", idx)
	}
	f := s.F
	// Enumerate F_{q^d} ⊂ F_{q^n}: zero plus the cyclic subgroup of order
	// q^d − 1 generated by γ^{(q^n−1)/(q^d−1)}.
	sub := []uint32{0}
	step := (int(f.Order) - 1) / ((1 << uint(d*logQ(s.Q))) - 1)
	for i := 0; i < (1<<uint(d*logQ(s.Q)))-1; i++ {
		sub = append(sub, f.Exp(i*step))
	}
	seen := make(map[uint64]bool)
	var out []uint64
	for _, a := range sub {
		for _, b := range sub {
			for _, c := range sub {
				for _, dd := range sub {
					m, err := s.G.Make(a, b, c, dd)
					if err != nil {
						continue
					}
					i, found := inv.Index(m)
					if !found {
						return nil, fmt.Errorf("workload: subfield matrix not indexed")
					}
					if !seen[i] {
						seen[i] = true
						out = append(out, i)
					}
				}
			}
		}
	}
	return out, nil
}

func logQ(q uint32) int {
	l := 0
	for q > 1 {
		q >>= 1
		l++
	}
	return l
}
