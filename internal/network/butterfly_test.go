package network

import (
	"math/rand"
	"testing"

	"detshmem/internal/mpc"
)

func TestNewButterflySizes(t *testing.T) {
	cases := []struct{ min, d, rows int }{
		{1, 1, 2}, {2, 1, 2}, {3, 2, 4}, {4, 2, 4}, {5, 3, 8}, {1000, 10, 1024},
	}
	for _, c := range cases {
		b, err := NewButterfly(c.min)
		if err != nil {
			t.Fatal(err)
		}
		if b.D != c.d || b.Rows != c.rows {
			t.Errorf("NewButterfly(%d) = d=%d rows=%d, want d=%d rows=%d",
				c.min, b.D, b.Rows, c.d, c.rows)
		}
	}
	if _, err := NewButterfly(0); err == nil {
		t.Error("zero rows accepted")
	}
}

// TestSinglePacketLatency: an uncontended packet takes exactly D steps
// (one hop per level).
func TestSinglePacketLatency(t *testing.T) {
	b, err := NewButterfly(64)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		s := int64(rng.Intn(64))
		d := int64(rng.Intn(64))
		if got := b.RouteMakespan([]int64{s}, []int64{d}); got != b.D {
			t.Fatalf("single packet %d->%d took %d steps, want %d", s, d, got, b.D)
		}
	}
}

// TestPermutationMakespan: a random permutation routes in O(D + overflow);
// for modest sizes it should finish well under 4·D.
func TestPermutationMakespan(t *testing.T) {
	b, err := NewButterfly(256)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	perm := rng.Perm(256)
	src := make([]int64, 256)
	dst := make([]int64, 256)
	for i := range perm {
		src[i] = int64(i)
		dst[i] = int64(perm[i])
	}
	got := b.RouteMakespan(src, dst)
	if got < b.D {
		t.Fatalf("makespan %d below diameter %d", got, b.D)
	}
	if got > 4*b.D {
		t.Fatalf("random permutation makespan %d too large (D=%d)", got, b.D)
	}
}

// TestHotspotMakespan: all packets to one destination serialize on the last
// link: makespan >= packets.
func TestHotspotMakespan(t *testing.T) {
	b, err := NewButterfly(64)
	if err != nil {
		t.Fatal(err)
	}
	k := 32
	src := make([]int64, k)
	dst := make([]int64, k)
	for i := range src {
		src[i] = int64(i)
		dst[i] = 7
	}
	got := b.RouteMakespan(src, dst)
	if got < k {
		t.Fatalf("hotspot makespan %d < %d packets", got, k)
	}
	if got > k+b.D {
		t.Fatalf("hotspot makespan %d exceeds packets+diameter %d", got, k+b.D)
	}
}

// TestReuseAcrossCalls: the butterfly's queue state resets properly between
// routing calls.
func TestReuseAcrossCalls(t *testing.T) {
	b, err := NewButterfly(32)
	if err != nil {
		t.Fatal(err)
	}
	first := b.RouteMakespan([]int64{0, 1, 2}, []int64{5, 5, 5})
	for i := 0; i < 10; i++ {
		if got := b.RouteMakespan([]int64{0, 1, 2}, []int64{5, 5, 5}); got != first {
			t.Fatalf("call %d returned %d, first returned %d (stale state?)", i, got, first)
		}
	}
	if b.RouteMakespan(nil, nil) != 0 {
		t.Fatal("empty routing should cost 0")
	}
}

// TestMachineGrantsMatchMPC: the network machine must arbitrate identically
// to the raw MPC; only the cost differs.
func TestMachineGrantsMatchMPC(t *testing.T) {
	cfg := mpc.Config{Procs: 100, Modules: 64}
	raw, err := mpc.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nm, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	reqs := make([]int64, 100)
	g1 := make([]bool, 100)
	g2 := make([]bool, 100)
	for round := 0; round < 30; round++ {
		for p := range reqs {
			if rng.Intn(4) == 0 {
				reqs[p] = mpc.Idle
			} else {
				reqs[p] = int64(rng.Intn(64))
			}
		}
		if raw.Round(reqs, g1) != nm.Round(reqs, g2) {
			t.Fatal("served counts differ")
		}
		for p := range g1 {
			if g1[p] != g2[p] {
				t.Fatalf("grant[%d] differs", p)
			}
		}
	}
	// Cost accounting: the network charges at least the diameter per
	// non-empty round, strictly more than the MPC's unit cost.
	if nm.Cost() <= raw.Cost() {
		t.Fatalf("network cost %d should exceed MPC cost %d", nm.Cost(), raw.Cost())
	}
	if nm.Dimension() != 7 { // 100 procs -> 128 rows
		t.Fatalf("dimension = %d, want 7", nm.Dimension())
	}
}
