package network

import (
	"math/rand"
	"testing"

	"detshmem/internal/mpc"
)

func TestNewHypercubeSizes(t *testing.T) {
	cases := []struct{ min, d, nodes int }{
		{1, 1, 2}, {2, 1, 2}, {3, 2, 4}, {100, 7, 128},
	}
	for _, c := range cases {
		h, err := NewHypercube(c.min)
		if err != nil {
			t.Fatal(err)
		}
		if h.D != c.d || h.Nodes != c.nodes {
			t.Errorf("NewHypercube(%d) = d=%d nodes=%d, want %d/%d",
				c.min, h.D, h.Nodes, c.d, c.nodes)
		}
	}
	if _, err := NewHypercube(0); err == nil {
		t.Error("zero nodes accepted")
	}
}

// TestHypercubeLatency: an uncontended packet takes exactly Hamming(s, t)
// steps under e-cube routing.
func TestHypercubeLatency(t *testing.T) {
	h, err := NewHypercube(64)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		s := int64(rng.Intn(64))
		d := int64(rng.Intn(64))
		want := popcount(uint64(s ^ d))
		if got := h.RouteMakespan([]int64{s}, []int64{d}); got != want {
			t.Fatalf("packet %d->%d took %d steps, want Hamming distance %d", s, d, got, want)
		}
	}
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// TestHypercubePermutation: a random permutation routes in O(D + overflow).
func TestHypercubePermutation(t *testing.T) {
	h, err := NewHypercube(256)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	perm := rng.Perm(256)
	src := make([]int64, 256)
	dst := make([]int64, 256)
	for i := range perm {
		src[i] = int64(i)
		dst[i] = int64(perm[i])
	}
	got := h.RouteMakespan(src, dst)
	if got > 6*h.D {
		t.Fatalf("random permutation makespan %d too large (D=%d)", got, h.D)
	}
}

// TestHypercubeHotspot: all-to-one serializes on the destination's last
// in-link set: makespan >= packets/D.
func TestHypercubeHotspot(t *testing.T) {
	h, err := NewHypercube(64)
	if err != nil {
		t.Fatal(err)
	}
	k := 48
	src := make([]int64, k)
	dst := make([]int64, k)
	for i := range src {
		src[i] = int64(i)
		dst[i] = 63
	}
	got := h.RouteMakespan(src, dst)
	if got < k/h.D {
		t.Fatalf("hotspot makespan %d below %d", got, k/h.D)
	}
}

// TestHypercubeReuse: state resets across calls.
func TestHypercubeReuse(t *testing.T) {
	h, err := NewHypercube(32)
	if err != nil {
		t.Fatal(err)
	}
	first := h.RouteMakespan([]int64{1, 2, 3}, []int64{30, 30, 30})
	for i := 0; i < 10; i++ {
		if got := h.RouteMakespan([]int64{1, 2, 3}, []int64{30, 30, 30}); got != first {
			t.Fatalf("call %d returned %d, first %d", i, got, first)
		}
	}
	if h.RouteMakespan(nil, nil) != 0 {
		t.Fatal("empty routing should cost 0")
	}
	// Self-addressed packets arrive instantly.
	if got := h.RouteMakespan([]int64{5}, []int64{5}); got != 0 {
		t.Fatalf("self packet took %d steps", got)
	}
}

// TestTopologyMachinesAgreeOnGrants: butterfly and hypercube machines must
// arbitrate identically (grants come from the inner MPC); only costs differ.
func TestTopologyMachinesAgreeOnGrants(t *testing.T) {
	cfg := mpc.Config{Procs: 80, Modules: 40}
	bm, err := NewMachineTopology(cfg, TopoButterfly)
	if err != nil {
		t.Fatal(err)
	}
	hm, err := NewMachineTopology(cfg, TopoHypercube)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMachineTopology(cfg, Topology(99)); err == nil {
		t.Error("unknown topology accepted")
	}
	rng := rand.New(rand.NewSource(3))
	reqs := make([]int64, 80)
	g1 := make([]bool, 80)
	g2 := make([]bool, 80)
	for round := 0; round < 25; round++ {
		for p := range reqs {
			if rng.Intn(3) == 0 {
				reqs[p] = mpc.Idle
			} else {
				reqs[p] = int64(rng.Intn(40))
			}
		}
		if bm.Round(reqs, g1) != hm.Round(reqs, g2) {
			t.Fatal("served counts differ")
		}
		for p := range g1 {
			if g1[p] != g2[p] {
				t.Fatalf("grant[%d] differs across topologies", p)
			}
		}
	}
	if bm.Cost() == 0 || hm.Cost() == 0 {
		t.Fatal("costs not accumulated")
	}
}
