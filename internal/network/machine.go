package network

import (
	"fmt"

	"detshmem/internal/mpc"
)

// Router is a topology that can deliver one packet per (src, dst) pair and
// report the synchronous makespan. Butterfly and Hypercube implement it.
type Router interface {
	RouteMakespan(src, dst []int64) int
}

// Topology selects the interconnect for a Machine.
type Topology int

const (
	// TopoButterfly routes through a d-dimensional butterfly.
	TopoButterfly Topology = iota
	// TopoHypercube routes through a d-dimensional hypercube (e-cube).
	TopoHypercube
)

func (t Topology) String() string {
	switch t {
	case TopoButterfly:
		return "butterfly"
	case TopoHypercube:
		return "hypercube"
	}
	return fmt.Sprintf("topology(%d)", int(t))
}

// Machine runs MPC round semantics over a bounded-degree interconnect:
// grants are arbitrated exactly as on the MPC (so the protocol behaves
// identically), but Cost() accumulates the routed time — for every protocol
// iteration, the makespan of the request sweep (processor rows → module
// rows) plus the makespan of the reply sweep (granted modules back to their
// processors). This realizes the O(q(Φ·log q + log N)) network-time shape
// the paper states for bounded-degree realizations of the MPC.
type Machine struct {
	inner *mpc.Machine
	rt    Router
	dim   int
	cost  uint64

	src, dst []int64 // packet scratch
}

// NewMachine builds a butterfly-backed machine for the given MPC
// configuration (the default topology).
func NewMachine(cfg mpc.Config) (*Machine, error) {
	return NewMachineTopology(cfg, TopoButterfly)
}

// NewMachineTopology builds a machine over the chosen topology. The network
// has 2^ceil(log2(max(procs, modules))) endpoints; processor p injects at
// endpoint p, module j lives at endpoint j.
func NewMachineTopology(cfg mpc.Config, topo Topology) (*Machine, error) {
	inner, err := mpc.New(cfg)
	if err != nil {
		return nil, err
	}
	size := cfg.Procs
	if cfg.Modules > size {
		size = cfg.Modules
	}
	m := &Machine{inner: inner}
	switch topo {
	case TopoButterfly:
		bf, err := NewButterfly(size)
		if err != nil {
			return nil, err
		}
		m.rt, m.dim = bf, bf.D
	case TopoHypercube:
		hc, err := NewHypercube(size)
		if err != nil {
			return nil, err
		}
		m.rt, m.dim = hc, hc.D
	default:
		return nil, fmt.Errorf("network: unknown topology %v", topo)
	}
	return m, nil
}

// Dimension returns the network dimension d ≈ log₂ N (its diameter scale).
func (m *Machine) Dimension() int { return m.dim }

// Round arbitrates exactly like the MPC and charges the routed cost.
func (m *Machine) Round(reqs []int64, grant []bool) int {
	served := m.inner.Round(reqs, grant)
	// Request sweep: every bidding processor sends one packet to its module.
	m.src, m.dst = m.src[:0], m.dst[:0]
	for p, mod := range reqs {
		if mod != mpc.Idle {
			m.src = append(m.src, int64(p))
			m.dst = append(m.dst, mod)
		}
	}
	m.cost += uint64(m.rt.RouteMakespan(m.src, m.dst))
	// Reply sweep: each serving module answers its granted processor (at
	// most one packet per source row, by the MPC's one-grant rule).
	m.src, m.dst = m.src[:0], m.dst[:0]
	for p, g := range grant {
		if g {
			m.src = append(m.src, reqs[p])
			m.dst = append(m.dst, int64(p))
		}
	}
	m.cost += uint64(m.rt.RouteMakespan(m.src, m.dst))
	return served
}

// Cost returns the cumulative routed link steps.
func (m *Machine) Cost() uint64 { return m.cost }

// Close stops the inner MPC's worker pool, if any.
func (m *Machine) Close() { m.inner.Close() }
