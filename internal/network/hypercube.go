package network

import "fmt"

// Hypercube is a d-dimensional hypercube with e-cube (dimension-ordered)
// routing: a packet from s to t corrects differing address bits in
// increasing dimension order. Each directed link (node, dim) forwards one
// packet per synchronous step with FIFO queueing — the classic store-and-
// forward model. It provides the same RouteMakespan contract as Butterfly,
// so Machine can run over either topology.
type Hypercube struct {
	D     int // dimension
	Nodes int // 2^D

	qbuf  [][]int32 // per-(node, dim) FIFO queues
	qhead []int

	activeDim [][]int32 // per dimension: keys with pending packets
	listed    []bool

	arrived int
}

// NewHypercube builds the smallest hypercube with at least minNodes nodes.
func NewHypercube(minNodes int) (*Hypercube, error) {
	if minNodes < 1 {
		return nil, fmt.Errorf("network: need at least one node")
	}
	d := 1
	for 1<<uint(d) < minNodes {
		d++
	}
	nodes := 1 << uint(d)
	nq := nodes * d
	return &Hypercube{
		D:         d,
		Nodes:     nodes,
		qbuf:      make([][]int32, nq),
		qhead:     make([]int, nq),
		activeDim: make([][]int32, d),
		listed:    make([]bool, nq),
	}, nil
}

// nextDim returns the lowest dimension >= from in which node differs from
// dst, or D if none (arrived).
func (h *Hypercube) nextDim(node int, dst int32, from int) int {
	diff := node ^ int(dst)
	diff &^= (1 << uint(from)) - 1
	for d := from; d < h.D; d++ {
		if diff&(1<<uint(d)) != 0 {
			return d
		}
	}
	return h.D
}

func (h *Hypercube) push(node int, dst int32, fromDim int) {
	d := h.nextDim(node, dst, fromDim)
	if d == h.D {
		h.arrived++
		return
	}
	k := int32(node*h.D + d)
	if h.qhead[k] == len(h.qbuf[k]) {
		h.qbuf[k] = h.qbuf[k][:0]
		h.qhead[k] = 0
	}
	h.qbuf[k] = append(h.qbuf[k], dst)
	if !h.listed[k] {
		h.listed[k] = true
		h.activeDim[d] = append(h.activeDim[d], k)
	}
}

// RouteMakespan routes one packet per (src[i] → dst[i]) pair and returns the
// number of synchronous steps until all are delivered.
func (h *Hypercube) RouteMakespan(src, dst []int64) int {
	if len(src) != len(dst) {
		panic("network: src/dst length mismatch")
	}
	if len(src) == 0 {
		return 0
	}
	h.arrived = 0
	total := len(src)
	for i := range src {
		s, t := int(src[i]), int(dst[i])
		if s < 0 || s >= h.Nodes || t < 0 || t >= h.Nodes {
			panic(fmt.Sprintf("network: endpoint (%d,%d) out of range [0,%d)", s, t, h.Nodes))
		}
		h.push(s, int32(t), 0)
	}
	steps := 0
	for h.arrived < total {
		steps++
		// Sweep dimensions top-down: a hop along dim d enqueues at a dim
		// strictly greater than d (e-cube order), which was already swept
		// this step — one hop per packet per step.
		for d := h.D - 1; d >= 0; d-- {
			cur := h.activeDim[d]
			h.activeDim[d] = cur[:0]
			for _, k := range cur {
				h.listed[k] = false
				head := h.qhead[k]
				t := h.qbuf[k][head]
				h.qhead[k] = head + 1
				node := int(k) / h.D
				h.push(node^(1<<uint(d)), t, d+1)
				if h.qhead[k] < len(h.qbuf[k]) && !h.listed[k] {
					h.listed[k] = true
					h.activeDim[d] = append(h.activeDim[d], k)
				}
			}
		}
	}
	return steps
}
