// Package network simulates a bounded-degree interconnect under the MPC's
// synchronous round semantics. The paper deliberately separates the request
// routing problem from the memory-organization problem (§1): the MPC's
// complete processor–module graph is the model of record, and "the request
// routing problem [is] to be dealt with when the bipartite graph is
// simulated by a bounded-degree network". This package provides that
// simulation: a d-dimensional butterfly with destination-bit routing and
// FIFO link queues, plus a protocol.Machine that charges every protocol
// iteration its actual routed cost (request sweep + reply sweep), so the
// O(q(Φ log q + log N)) shape of the paper's network-time claim can be
// measured.
package network

import "fmt"

// Butterfly is a d-dimensional butterfly network: 2^d rows × (d+1) levels.
// A packet entering at (level 0, row s) with destination row t crosses one
// level per hop; at level l it fixes bit l of its current row to bit l of t.
// Every directed edge forwards at most one packet per synchronous step;
// packets queue FIFO per (node, out-edge).
type Butterfly struct {
	D    int // dimension
	Rows int // 2^D

	// Per-(level,row,edge) FIFO queues, flattened; head indices avoid O(n)
	// pops. A queue key is listed in exactly one activeLvl list iff listed
	// is set, preserving one-forwarding-per-edge-per-step semantics.
	qbuf  [][]int32
	qhead []int

	activeLvl [][]int32 // per level: keys with pending packets
	listed    []bool
}

// NewButterfly builds the smallest butterfly with at least minRows rows.
func NewButterfly(minRows int) (*Butterfly, error) {
	if minRows < 1 {
		return nil, fmt.Errorf("network: need at least one row")
	}
	d := 1
	for 1<<uint(d) < minRows {
		d++
	}
	rows := 1 << uint(d)
	nq := d * rows * 2
	return &Butterfly{
		D:         d,
		Rows:      rows,
		qbuf:      make([][]int32, nq),
		qhead:     make([]int, nq),
		activeLvl: make([][]int32, d),
		listed:    make([]bool, nq),
	}, nil
}

// key packs (level, row, edge) into a queue index. The edge bit is the
// packet's routing decision at this level (0 = keep bit l, 1 = flip), kept
// separate so the two out-links of a node are independent unit-capacity
// channels.
func (b *Butterfly) key(level, row, edge int) int32 {
	return int32((level*b.Rows+row)<<1 | edge)
}

func (b *Butterfly) push(level, row int, dst int32) {
	k := b.key(level, row, b.edgeAt(level, row, dst))
	if b.qhead[k] == len(b.qbuf[k]) {
		// Fully drained queue: rewind to reuse capacity.
		b.qbuf[k] = b.qbuf[k][:0]
		b.qhead[k] = 0
	}
	b.qbuf[k] = append(b.qbuf[k], dst)
	if !b.listed[k] {
		b.listed[k] = true
		b.activeLvl[level] = append(b.activeLvl[level], k)
	}
}

// RouteMakespan injects one packet per (src[i] → dst[i]) pair at level 0 and
// simulates synchronous steps until all packets reach level D. It returns
// the number of steps (the makespan). Endpoints must lie in [0, Rows).
func (b *Butterfly) RouteMakespan(src, dst []int64) int {
	if len(src) != len(dst) {
		panic("network: src/dst length mismatch")
	}
	if len(src) == 0 {
		return 0
	}
	for i := range src {
		s, t := int(src[i]), int(dst[i])
		if s < 0 || s >= b.Rows || t < 0 || t >= b.Rows {
			panic(fmt.Sprintf("network: endpoint (%d,%d) out of range [0,%d)", s, t, b.Rows))
		}
		b.push(0, s, int32(t))
	}
	remaining := len(src)
	steps := 0
	for remaining > 0 {
		steps++
		// Process levels top-down: pushes from level l land at level l+1,
		// which has already been swept this step, so every packet advances
		// at most one level per step (synchronous link semantics).
		for level := b.D - 1; level >= 0; level-- {
			cur := b.activeLvl[level]
			b.activeLvl[level] = cur[:0]
			for _, k := range cur {
				b.listed[k] = false
				head := b.qhead[k]
				t := b.qbuf[k][head]
				b.qhead[k] = head + 1
				row := int(k>>1) % b.Rows
				if int(k)&1 == 1 {
					row ^= 1 << uint(level)
				}
				if level+1 == b.D {
					remaining--
					if row != int(t) {
						panic("network: packet delivered to wrong row")
					}
				} else {
					b.push(level+1, row, t)
				}
				if b.qhead[k] < len(b.qbuf[k]) && !b.listed[k] {
					b.listed[k] = true
					b.activeLvl[level] = append(b.activeLvl[level], k)
				}
			}
		}
	}
	return steps
}

// edgeAt returns the out-edge (0 straight, 1 cross) a packet at (level, row)
// heading for dst must take: fix bit `level` of row to match dst.
func (b *Butterfly) edgeAt(level, row int, dst int32) int {
	if (row>>uint(level))&1 == int(dst>>uint(level))&1 {
		return 0
	}
	return 1
}
