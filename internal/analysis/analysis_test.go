package analysis

import (
	"math"
	"math/rand"
	"testing"

	"detshmem/internal/baseline"
	"detshmem/internal/protocol"
)

func TestLogStar(t *testing.T) {
	cases := []struct {
		x    float64
		want int
	}{
		{1, 0}, {2, 1}, {4, 2}, {16, 3}, {65536, 4}, {1e6, 5}, {1e19, 5},
	}
	for _, c := range cases {
		if got := LogStar(c.x); got != c.want {
			t.Errorf("LogStar(%g) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestBoundsMonotone(t *testing.T) {
	if Theorem4Lower(8, 2) <= Theorem4Lower(1, 2) {
		t.Error("Theorem4Lower not increasing in |S|")
	}
	if Theorem4Lower(10, 4) <= Theorem4Lower(10, 2) {
		t.Error("Theorem4Lower not increasing in q")
	}
	if Theorem5Lower(10, 2) >= Theorem4Lower(10, 2) {
		t.Error("Theorem 5 (live copies) bound should be weaker than Theorem 4")
	}
	if Theorem7Lower(1000, 10, 3) <= 1 {
		t.Error("Theorem7Lower degenerate")
	}
	// (M/N)^{1/r} exact check.
	if got := Theorem7Lower(8000, 8, 3); math.Abs(got-10) > 1e-9 {
		t.Errorf("Theorem7Lower = %g, want 10", got)
	}
}

func TestRecurrenceEnvelope(t *testing.T) {
	env := RecurrenceEnvelope(1000, 2, 100000)
	if env[0] != 1000 {
		t.Fatalf("R_0 = %g", env[0])
	}
	for i := 1; i < len(env); i++ {
		if env[i] > env[i-1] {
			t.Fatalf("envelope increased at %d", i)
		}
	}
	if env[len(env)-1] >= 1 {
		t.Fatalf("envelope did not converge: %g", env[len(env)-1])
	}
	// Iterations should scale like N^{1/3}·log*: ratio between N and 8N
	// should be about 2 (cube root), well below 8.
	i1 := RecurrenceIterations(1000, 2, 1<<20)
	i8 := RecurrenceIterations(8000, 2, 1<<20)
	ratio := float64(i8) / float64(i1)
	if ratio < 1.5 || ratio > 3.5 {
		t.Errorf("iteration scaling ratio %.2f outside the cube-root regime", ratio)
	}
}

func TestTheorem6BoundShape(t *testing.T) {
	if Theorem6Bound(64) <= 0 {
		t.Error("bound not positive")
	}
	r := Theorem6Bound(512) / Theorem6Bound(64)
	if r < 1.9 || r > 2.7 { // cube root of 8 = 2 modulo the log* factor
		t.Errorf("Theorem6Bound scaling %g", r)
	}
}

// TestGreedyAdversaryTrapsSingleCopy: against the single-copy scheme the
// greedy adversary must find a heavily colliding batch (free = 0, so every
// variable whose module enters T is trapped immediately).
func TestGreedyAdversaryTrapsSingleCopy(t *testing.T) {
	s, err := baseline.NewSingleCopy(63, 20000, baseline.PlaceHashed, 21)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	batch := GreedyAdversary(s, 60, 5000, rng)
	if len(batch) != 60 {
		t.Fatalf("batch size %d", len(batch))
	}
	seen := make(map[uint64]bool)
	counts := make(map[uint64]int)
	for _, v := range batch {
		if seen[v] {
			t.Fatal("duplicate in adversarial batch")
		}
		seen[v] = true
		mod, _ := s.CopyAddr(v, 0)
		counts[mod]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// A uniform batch of 60 over 63 modules has max congestion ~3; the
	// adversary should concentrate far beyond that.
	if max < 20 {
		t.Fatalf("greedy adversary achieved max congestion %d; want >= 20", max)
	}
	// And the protocol must actually pay for it.
	sys, err := protocol.NewGenericSystem(s, protocol.Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, met, err := sys.ReadBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if met.TotalRounds < max {
		t.Fatalf("congestion %d but only %d rounds", max, met.TotalRounds)
	}
}

func TestGreedyAdversaryPoolClamp(t *testing.T) {
	s, err := baseline.NewSingleCopy(10, 50, baseline.PlaceInterleaved, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	batch := GreedyAdversary(s, 10, 1000, rng) // pool larger than M
	if len(batch) != 10 {
		t.Fatalf("batch size %d", len(batch))
	}
}
