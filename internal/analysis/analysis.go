// Package analysis provides the paper's analytical bound curves so the
// benchmark harness can print them next to measured values: the Theorem 4
// expansion floor, the Recurrence (2) live-variable envelope, the Theorem 6
// iteration bound N^{1/3} log* N, and the Theorem 7 lower bound (M/N)^{1/r}.
// It also hosts the greedy congestion adversary used by experiment E8.
package analysis

import (
	"math"
	"math/rand"

	"detshmem/internal/protocol"
)

// LogStar returns log₂* x: the number of times log₂ must be applied before
// the value drops to at most 1.
func LogStar(x float64) int {
	n := 0
	for x > 1 {
		x = math.Log2(x)
		n++
	}
	return n
}

// Theorem4Lower is the expansion floor |Γ(S)| ≥ |S|^{2/3}·q / 2^{1/3}.
func Theorem4Lower(setSize int, q uint32) float64 {
	return math.Pow(float64(setSize), 2.0/3.0) * float64(q) / math.Cbrt(2)
}

// Theorem5Lower is the live-copy variant: |Γ'(S)| ≥ |S|^{2/3}·q / 4.
func Theorem5Lower(setSize int, q uint32) float64 {
	return math.Pow(float64(setSize), 2.0/3.0) * float64(q) / 4
}

// RecurrenceC is the contraction constant of Recurrence (2).
const RecurrenceC = 0.397

// RecurrenceEnvelope iterates R_{k+1} = R_k·(1 − c(q/R_k)^{1/3}) from R_0
// until the value drops below 1 or maxIters is hit, returning the full
// trajectory (R_0 first). It is the analytical ceiling the measured
// live-variable traces are compared against.
func RecurrenceEnvelope(r0 float64, q uint32, maxIters int) []float64 {
	out := []float64{r0}
	r := r0
	for k := 0; k < maxIters && r >= 1; k++ {
		factor := 1 - RecurrenceC*math.Cbrt(float64(q)/r)
		if factor < 0 {
			factor = 0
		}
		r *= factor
		out = append(out, r)
	}
	return out
}

// RecurrenceIterations counts iterations until the envelope from r0 drops
// below 1 (capped at maxIters).
func RecurrenceIterations(r0 float64, q uint32, maxIters int) int {
	env := RecurrenceEnvelope(r0, q, maxIters)
	return len(env) - 1
}

// Theorem6Bound is the iteration bound shape N^{1/3}·log* N (constant
// factors are not specified by the paper).
func Theorem6Bound(n uint64) float64 {
	return math.Cbrt(float64(n)) * float64(LogStar(float64(n)))
}

// Theorem7Lower is the universal lower bound (M/N)^{1/r} on worst-case
// access time for any organization with exactly r copies per variable.
func Theorem7Lower(m, n uint64, r int) float64 {
	return math.Pow(float64(m)/float64(n), 1/float64(r))
}

// MPCTimeModel evaluates the paper's total-time expression for the access
// protocol, O(q(Φ·log q + log N)) (§3): each of the q+1 phases spends Φ
// iterations whose in-cluster coordination costs ~log q steps, plus the
// O(log N) address computation. Constants are not specified by the paper;
// this returns the raw q·(Φ·max(log₂q,1) + log₂N) shape for normalization.
func MPCTimeModel(q uint32, phi int, n uint64) float64 {
	lq := math.Log2(float64(q))
	if lq < 1 {
		lq = 1
	}
	return float64(q) * (float64(phi)*lq + math.Log2(float64(n)))
}

// GreedyAdversary heuristically searches for a batch of up to size distinct
// variables that maximizes forced congestion under the given scheme, in the
// spirit of Theorem 7's counting argument: it samples a variable pool,
// greedily grows a target module set T favoring modules that "trap"
// variables (a variable is trapped when so many of its copies lie in T that
// every read quorum must touch T), and returns the trapped variables,
// padding with the most-T-covered pool variables if needed.
func GreedyAdversary(m protocol.Mapper, size, pool int, rng *rand.Rand) []uint64 {
	if uint64(pool) > m.NumVars() {
		pool = int(m.NumVars())
	}
	// Sample the pool and materialize copy locations.
	vars := samplePool(m.NumVars(), pool, rng)
	r := m.Copies()
	free := r - m.ReadQuorum() // copies a read may skip
	mods := make([][]uint64, len(vars))
	coverage := make(map[uint64][]int) // module -> pool indices with a copy there
	for i, v := range vars {
		mods[i] = make([]uint64, r)
		for c := 0; c < r; c++ {
			mod, _ := m.CopyAddr(v, c)
			mods[i][c] = mod
			coverage[mod] = append(coverage[mod], i)
		}
	}
	inT := make(map[uint64]bool)
	tCount := make([]int, len(vars)) // copies of var i inside T
	trapped := make([]bool, len(vars))
	nTrapped := 0
	// Grow T greedily until enough variables are trapped or no progress.
	for nTrapped < size {
		best, bestGain := uint64(0), -1
		for mod, idxs := range coverage {
			if inT[mod] {
				continue
			}
			gain := 0
			for _, i := range idxs {
				if !trapped[i] && tCount[i]+1 > free {
					gain++
				}
			}
			// Prefer immediate traps; break ties by raw coverage.
			score := gain*len(vars) + len(idxs)
			if score > bestGain {
				bestGain, best = score, mod
			}
		}
		if bestGain < 0 {
			break
		}
		inT[best] = true
		for _, i := range coverage[best] {
			tCount[i]++
			if !trapped[i] && tCount[i] > free {
				trapped[i] = true
				nTrapped++
			}
		}
		delete(coverage, best)
		if len(inT) > len(vars) { // safety: T cannot usefully exceed the pool
			break
		}
	}
	// Collect trapped variables first, then top coverage.
	type scored struct {
		i     int
		score int
	}
	var rest []scored
	out := make([]uint64, 0, size)
	for i := range vars {
		if trapped[i] && len(out) < size {
			out = append(out, vars[i])
		} else if !trapped[i] {
			rest = append(rest, scored{i, tCount[i]})
		}
	}
	for len(out) < size && len(rest) > 0 {
		bi := 0
		for j := range rest {
			if rest[j].score > rest[bi].score {
				bi = j
			}
		}
		out = append(out, vars[rest[bi].i])
		rest[bi] = rest[len(rest)-1]
		rest = rest[:len(rest)-1]
	}
	return out
}

func samplePool(m uint64, k int, rng *rand.Rand) []uint64 {
	seen := make(map[uint64]bool, k)
	out := make([]uint64, 0, k)
	for len(out) < k {
		v := uint64(rng.Int63n(int64(m)))
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
