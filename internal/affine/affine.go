// Package affine implements a constructive memory organization for the
// companion regime M ∈ Θ(N²) that PP93 cite as their own earlier work
// ([PP93] in the paper's references: "An O(√n)-worst-case-time solution to
// the granularity problem", STACS 1993): constant redundancy, pairwise
// module-intersection ≤ 1, and O(√N') worst-case batch time.
//
// The construction here is the affine-plane parallel-class realization of
// that regime (the original STACS construction is not reproduced verbatim;
// see DESIGN.md §6): fix a prime p and r parallel classes of lines of the
// affine plane AG(2, p). Variables are the p² points (x, y); modules are the
// r·p chosen lines; copy i of point (x, y) is the line of class i through
// it:
//
//	class 0:  x = c            (vertical lines)
//	class i:  y = s_i·x + c    (slope s_i = i−1, for 1 ≤ i < r)
//
// Two distinct points lie on at most one common line, so — exactly as in the
// paper's Corollary 1 — any set S of variables with a module receiving t of
// its copies expands to ≥ (r−1)·t other modules, giving
// |Γ(S)| ≳ sqrt(|S|·(r−1)) and an O(√N') protocol bound via the same
// argument as Theorem 6's first stage. With N = r·p modules this stores
// M = p² = N²/r² ∈ Θ(N²) variables with r copies each.
//
// It implements protocol.Mapper, so the Section 3 quorum protocol runs on it
// unchanged (read/write quorums of ⌈(r+1)/2⌉ with timestamps).
package affine

import "fmt"

// Plane is the affine parallel-class organization over AG(2, p).
type Plane struct {
	P uint64 // plane order (prime)
	R int    // parallel classes = copies per variable
}

// New builds the organization. p must be prime (verified) and the class
// count r must satisfy 3 <= r <= p+1 (class 0 plus up to p slopes; r ≥ 3
// keeps a nontrivial majority).
func New(p uint64, r int) (*Plane, error) {
	if !isPrime(p) {
		return nil, fmt.Errorf("affine: order %d is not prime", p)
	}
	if r < 3 || uint64(r) > p+1 {
		return nil, fmt.Errorf("affine: class count %d out of range [3, p+1]", r)
	}
	return &Plane{P: p, R: r}, nil
}

// Name identifies the scheme.
func (a *Plane) Name() string { return fmt.Sprintf("affine-p%d-r%d", a.P, a.R) }

// NumVars returns M = p².
func (a *Plane) NumVars() uint64 { return a.P * a.P }

// NumModules returns N = r·p.
func (a *Plane) NumModules() uint64 { return uint64(a.R) * a.P }

// Copies returns r.
func (a *Plane) Copies() int { return a.R }

// ReadQuorum returns the majority ⌈(r+1)/2⌉ (= ⌊r/2⌋+1).
func (a *Plane) ReadQuorum() int { return a.R/2 + 1 }

// WriteQuorum returns the majority.
func (a *Plane) WriteQuorum() int { return a.R/2 + 1 }

// Point returns the coordinates of variable v.
func (a *Plane) Point(v uint64) (x, y uint64) { return v % a.P, v / a.P }

// CopyAddr places copy c of variable v = (x, y): class 0 is the vertical
// line x = const; class i ≥ 1 is the line with slope i−1 through (x, y),
// identified by its intercept y − (i−1)x mod p. Lines of class c occupy the
// module block [c·p, (c+1)·p).
func (a *Plane) CopyAddr(v uint64, c int) (uint64, uint64) {
	x, y := a.Point(v)
	var line uint64
	if c == 0 {
		line = x
	} else {
		// Intercept (y − slope·x) mod p, avoiding unsigned underflow.
		slope := uint64(c - 1)
		line = (y + a.P - slope*x%a.P) % a.P
	}
	module := uint64(c)*a.P + line
	return module, v*uint64(a.R) + uint64(c)
}

// AddrSpace returns M·r.
func (a *Plane) AddrSpace() uint64 { return a.NumVars() * uint64(a.R) }

// AppendCopyAddrs implements the batched contract of protocol.BulkMapper
// (builtin slice types keep this package free of a protocol import): the
// point decomposition and address base are computed once per variable
// instead of once per copy. Results equal per-op CopyAddr in vars-major,
// copy-minor order.
func (a *Plane) AppendCopyAddrs(mods, addrs []uint64, vars []uint64, copies int) ([]uint64, []uint64) {
	p, r := a.P, uint64(a.R)
	for _, v := range vars {
		x, y := v%p, v/p
		base := v * r
		for c := 0; c < copies; c++ {
			var line uint64
			if c == 0 {
				line = x
			} else {
				slope := uint64(c - 1)
				line = (y + p - slope*x%p) % p
			}
			mods = append(mods, uint64(c)*p+line)
			addrs = append(addrs, base+uint64(c))
		}
	}
	return mods, addrs
}

// LineOf reports which variable offsets share copy c's module with v —
// exposed for tests of the ≤1-intersection property.
func (a *Plane) LineOf(v uint64, c int) []uint64 {
	x, y := a.Point(v)
	out := make([]uint64, 0, a.P)
	for t := uint64(0); t < a.P; t++ {
		var px, py uint64
		if c == 0 {
			px, py = x, t
		} else {
			slope := uint64(c - 1)
			px = t
			// y' = slope·(x'−x) + y (mod p)
			py = (slope*((t+a.P-x)%a.P) + y) % a.P
		}
		out = append(out, py*a.P+px)
	}
	return out
}

// WorstBatch returns up to size distinct variables forming an s×s
// coordinate grid with s = ⌈√size⌉: every parallel class sees the grid
// through only O(s) lines carrying ~s points each, so every 2-of-r quorum
// choice is congested and batch time is Ω(√size) — the set family that
// makes the Θ(N²)-regime's O(√N') bound tight.
func (a *Plane) WorstBatch(size int) []uint64 {
	s := uint64(1)
	for s*s < uint64(size) {
		s++
	}
	if s > a.P {
		s = a.P
	}
	out := make([]uint64, 0, size)
	for y := uint64(0); y < s && len(out) < size; y++ {
		for x := uint64(0); x < s && len(out) < size; x++ {
			out = append(out, y*a.P+x)
		}
	}
	return out
}

func isPrime(p uint64) bool {
	if p < 2 {
		return false
	}
	for d := uint64(2); d*d <= p; d++ {
		if p%d == 0 {
			return false
		}
	}
	return true
}
