package affine

import (
	"math"
	"math/rand"
	"testing"

	"detshmem/internal/protocol"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(10, 3); err == nil {
		t.Error("composite order accepted")
	}
	if _, err := New(7, 2); err == nil {
		t.Error("r=2 accepted")
	}
	if _, err := New(7, 9); err == nil {
		t.Error("r > p+1 accepted")
	}
	if _, err := New(7, 3); err != nil {
		t.Errorf("valid plane rejected: %v", err)
	}
}

func TestParameters(t *testing.T) {
	a, err := New(31, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumVars() != 961 || a.NumModules() != 93 {
		t.Fatalf("M=%d N=%d", a.NumVars(), a.NumModules())
	}
	if a.ReadQuorum() != 2 || a.WriteQuorum() != 2 {
		t.Fatalf("quorums %d/%d", a.ReadQuorum(), a.WriteQuorum())
	}
	// M ∈ Θ(N²): M = N²/r².
	if a.NumVars()*9 != a.NumModules()*a.NumModules() {
		t.Fatal("M != N²/r²")
	}
}

// TestCopiesDistinctModules: each variable's r copies land in r distinct
// modules, one per class block.
func TestCopiesDistinctModules(t *testing.T) {
	a, err := New(13, 5)
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(0); v < a.NumVars(); v++ {
		seen := make(map[uint64]bool)
		for c := 0; c < a.R; c++ {
			mod, addr := a.CopyAddr(v, c)
			if mod >= a.NumModules() {
				t.Fatalf("module %d out of range", mod)
			}
			if mod/a.P != uint64(c) {
				t.Fatalf("copy %d of %d in wrong class block (module %d)", c, v, mod)
			}
			if seen[mod] {
				t.Fatalf("variable %d has two copies in module %d", v, mod)
			}
			seen[mod] = true
			if addr != v*uint64(a.R)+uint64(c) {
				t.Fatalf("address %d wrong", addr)
			}
		}
	}
}

// TestPairwiseIntersection: the defining linear-hypergraph property — any
// two distinct variables share at most one module (two points, one line).
func TestPairwiseIntersection(t *testing.T) {
	a, err := New(11, 4)
	if err != nil {
		t.Fatal(err)
	}
	mods := make([][]uint64, a.NumVars())
	for v := uint64(0); v < a.NumVars(); v++ {
		for c := 0; c < a.R; c++ {
			m, _ := a.CopyAddr(v, c)
			mods[v] = append(mods[v], m)
		}
	}
	for u := range mods {
		for v := u + 1; v < len(mods); v++ {
			inter := 0
			for _, x := range mods[u] {
				for _, y := range mods[v] {
					if x == y {
						inter++
					}
				}
			}
			if inter > 1 {
				t.Fatalf("variables %d,%d share %d modules", u, v, inter)
			}
		}
	}
}

// TestLineOfConsistency: LineOf(v, c) lists exactly the p variables whose
// copy c lands in v's copy-c module, including v itself.
func TestLineOfConsistency(t *testing.T) {
	a, err := New(7, 4)
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(0); v < a.NumVars(); v += 3 {
		for c := 0; c < a.R; c++ {
			mod, _ := a.CopyAddr(v, c)
			line := a.LineOf(v, c)
			if uint64(len(line)) != a.P {
				t.Fatalf("line size %d", len(line))
			}
			found := false
			for _, u := range line {
				um, _ := a.CopyAddr(u, c)
				if um != mod {
					t.Fatalf("LineOf(%d,%d) contains %d from another line", v, c, u)
				}
				if u == v {
					found = true
				}
			}
			if !found {
				t.Fatalf("LineOf(%d,%d) misses the point itself", v, c)
			}
		}
	}
}

// TestModuleLoadBalance: every module stores exactly p copies (each line has
// p points) — the affine analogue of Fact 1's deg_U = q^{n-1}.
func TestModuleLoadBalance(t *testing.T) {
	a, err := New(13, 3)
	if err != nil {
		t.Fatal(err)
	}
	load := make(map[uint64]int)
	for v := uint64(0); v < a.NumVars(); v++ {
		for c := 0; c < a.R; c++ {
			m, _ := a.CopyAddr(v, c)
			load[m]++
		}
	}
	if uint64(len(load)) != a.NumModules() {
		t.Fatalf("%d modules used, want %d", len(load), a.NumModules())
	}
	for m, l := range load {
		if uint64(l) != a.P {
			t.Fatalf("module %d stores %d copies, want p=%d", m, l, a.P)
		}
	}
}

// TestThroughProtocol: the plane runs under the generic quorum executor
// against a reference model, like every other Mapper.
func TestThroughProtocol(t *testing.T) {
	a, err := New(31, 3)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := protocol.NewGenericSystem(a, protocol.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ref := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(17))
	for batch := 0; batch < 25; batch++ {
		k := 1 + rng.Intn(60)
		chosen := make(map[uint64]bool)
		var reqs []protocol.Request
		for len(chosen) < k {
			v := uint64(rng.Intn(int(a.NumVars())))
			if chosen[v] {
				continue
			}
			chosen[v] = true
			if rng.Intn(2) == 0 {
				reqs = append(reqs, protocol.Request{Var: v, Op: protocol.Write, Value: rng.Uint64()})
			} else {
				reqs = append(reqs, protocol.Request{Var: v, Op: protocol.Read})
			}
		}
		res, err := sys.Access(reqs)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range reqs {
			if r.Op == protocol.Read && res.Values[i] != ref[r.Var] {
				t.Fatalf("batch %d: read %d = %d want %d", batch, r.Var, res.Values[i], ref[r.Var])
			}
		}
		for _, r := range reqs {
			if r.Op == protocol.Write {
				ref[r.Var] = r.Value
			}
		}
	}
}

// TestSqrtScaling: full batches of size N' should complete in
// O(sqrt(N'))-ish iterations — crucially sub-linear. The check is a loose
// envelope: Φ ≤ 6·sqrt(N') and Φ grows with N'.
func TestSqrtScaling(t *testing.T) {
	a, err := New(101, 3) // N = 303, M = 10201
	if err != nil {
		t.Fatal(err)
	}
	sys, err := protocol.NewGenericSystem(a, protocol.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(19))
	for _, np := range []int{30, 100, 300} {
		chosen := make(map[uint64]bool)
		var vars, vals []uint64
		for len(chosen) < np {
			v := uint64(rng.Intn(int(a.NumVars())))
			if !chosen[v] {
				chosen[v] = true
				vars = append(vars, v)
				vals = append(vals, v)
			}
		}
		met, err := sys.WriteBatch(vars, vals)
		if err != nil {
			t.Fatal(err)
		}
		if float64(met.MaxIterations) > 6*math.Sqrt(float64(np)) {
			t.Fatalf("N'=%d: Φ=%d exceeds the √N' envelope", np, met.MaxIterations)
		}
	}
}
