package pgl

// Batched PGL₂ kernels for the address-resolution hot path. Copy-location
// resolution evaluates the same short sequence of group operations over a
// vector of variable representatives; the kernels below gather matrix columns
// into contiguous scratch, run the gf vector kernels over them (hoisting the
// per-copy-invariant operands), and normalize per element. Both kernels
// process their input in fixed-size internal blocks, so arbitrarily long
// vectors run with constant stack scratch and zero heap allocation.

// vecBlock is the internal gather-block width of the batched kernels: large
// enough to amortize the per-block loop machinery, small enough that the
// column scratch stays comfortably in L1 and on the stack.
const vecBlock = 64

// Canon returns the canonical projective representative of (a b; c d). The
// input must be nonsingular — Canon is the normalization step for callers
// (batch kernels, specialized products) that construct matrices whose
// nonsingularity is already guaranteed algebraically; use Make when it is not.
func (g *Group) Canon(a, b, c, d uint32) Mat { return g.canon(a, b, c, d) }

// MulInvolutionVec computes dst[i] = xs[i]·(α 1; 1 0) in canonical form: the
// batched form of Mul(x, Involution(alpha)) that the per-copy step of batch
// resolution runs. Right-multiplying (A B; C D) by the involution gives
//
//	(A·α+B  A; C·α+D  C)
//
// so the general product's eight field multiplies collapse to two per
// element, both by the fixed α (one log lookup for the whole vector).
// dst and xs may be the same slice.
func (g *Group) MulInvolutionVec(dst, xs []Mat, alpha uint32) {
	f := g.F
	var as, bs, cs, ds, na, nc [vecBlock]uint32
	for len(xs) > 0 {
		n := len(xs)
		if n > vecBlock {
			n = vecBlock
		}
		for i := 0; i < n; i++ {
			m := xs[i]
			as[i], bs[i], cs[i], ds[i] = m.A, m.B, m.C, m.D
		}
		f.MulScalarVec(na[:n], as[:n], alpha)
		f.AddVec(na[:n], na[:n], bs[:n])
		f.MulScalarVec(nc[:n], cs[:n], alpha)
		f.AddVec(nc[:n], nc[:n], ds[:n])
		for i := 0; i < n; i++ {
			dst[i] = g.canon(na[i], as[i], nc[i], cs[i])
		}
		xs, dst = xs[n:], dst[n:]
	}
}

// CosetKeyHn1Vec computes the module-coset keys of xs: ss[i], ts[i] =
// CosetKeyHn1(xs[i]). The scalar path's two divisions plus BaseUnitLog
// (each an exp/log table round-trip) fuse into one log-domain reduction per
// element, with the group order and subgroup index hoisted out of the loop.
func (g *Group) CosetKeyHn1Vec(ss []uint32, ts []int32, xs []Mat) {
	f := g.F
	ugi := uint32(f.UnitGroupIndex())
	ord := int32(f.Order) - 1
	for i, m := range xs {
		if m.C == 0 {
			ss[i] = uint32(f.Log(m.A)) % ugi
			ts[i] = -1
			continue
		}
		det := f.Add(f.Mul(m.A, m.D), f.Mul(m.B, m.C))
		lc := int32(f.Log(m.C))
		ldet := int32(f.Log(det))
		// log(det/c²) mod ord, then mod ugi (ugi divides ord, so reducing
		// mod ord first preserves the residue).
		ss[i] = uint32((ldet-2*lc+2*ord)%ord) % ugi
		if m.A == 0 {
			ts[i] = 0 // beta = a/c = 0
		} else {
			ts[i] = int32(f.Exp(int(int32(f.Log(m.A)) - lc + ord)))
		}
	}
}
