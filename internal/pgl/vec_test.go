package pgl

import (
	"math/rand"
	"testing"

	"detshmem/internal/gf"
)

func vecGroups(t *testing.T) []*Group {
	t.Helper()
	var out []*Group
	for _, p := range []struct{ m, n int }{{1, 5}, {2, 3}, {3, 3}} {
		f, err := gf.NewExt(p.m, p.n)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, New(f))
	}
	return out
}

func randMats(g *Group, rng *rand.Rand, n int) []Mat {
	mats := make([]Mat, n)
	for i := range mats {
		mats[i] = randMatB(g, rng)
	}
	return mats
}

// TestMulInvolutionVecMatchesMul pins the specialized two-multiply involution
// product to the general Mul across q ∈ {2, 4, 8} and every α ∈ F_q.
func TestMulInvolutionVecMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, g := range vecGroups(t) {
		mats := randMats(g, rng, 157) // odd length: exercises the partial tail block
		dst := make([]Mat, len(mats))
		for alpha := uint32(0); alpha < g.F.Q; alpha++ {
			g.MulInvolutionVec(dst, mats, alpha)
			for i, m := range mats {
				if want := g.Mul(m, g.Involution(alpha)); dst[i] != want {
					t.Fatalf("q=%d α=%d [%d]: got %v want %v", g.F.Q, alpha, i, dst[i], want)
				}
			}
		}
		// In-place form.
		inPlace := append([]Mat(nil), mats...)
		g.MulInvolutionVec(inPlace, inPlace, 1)
		for i, m := range mats {
			if want := g.Mul(m, g.Involution(1)); inPlace[i] != want {
				t.Fatalf("q=%d in-place [%d]: got %v want %v", g.F.Q, i, inPlace[i], want)
			}
		}
	}
}

// TestCosetKeyHn1VecMatchesScalar pins the fused log-domain key kernel to
// CosetKeyHn1, including the C == 0 (t = −1) branch.
func TestCosetKeyHn1VecMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, g := range vecGroups(t) {
		mats := randMats(g, rng, 153)
		// Force some C == 0 canonical forms into the vector.
		mats[0] = g.MustMake(g.F.Gamma(), 3, 0, 1)
		mats[75] = g.Identity()
		ss := make([]uint32, len(mats))
		ts := make([]int32, len(mats))
		g.CosetKeyHn1Vec(ss, ts, mats)
		for i, m := range mats {
			ws, wt := g.CosetKeyHn1(m)
			if ss[i] != ws || ts[i] != wt {
				t.Fatalf("q=%d [%d] %v: got (%d, %d) want (%d, %d)", g.F.Q, i, m, ss[i], ts[i], ws, wt)
			}
		}
	}
}

func TestVecKernelsZeroAlloc(t *testing.T) {
	g := vecGroups(t)[1]
	rng := rand.New(rand.NewSource(23))
	mats := randMats(g, rng, 300)
	dst := make([]Mat, len(mats))
	ss := make([]uint32, len(mats))
	ts := make([]int32, len(mats))
	if n := testing.AllocsPerRun(20, func() {
		g.MulInvolutionVec(dst, mats, 2)
		g.CosetKeyHn1Vec(ss, ts, dst)
	}); n != 0 {
		t.Errorf("pgl vector kernels allocate %v times per pass, want 0", n)
	}
}
