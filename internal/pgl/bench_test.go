package pgl

import (
	"math/rand"
	"testing"

	"detshmem/internal/gf"
)

func benchGroup(b *testing.B) (*Group, []Mat) {
	b.Helper()
	f, err := gf.NewExt(1, 9)
	if err != nil {
		b.Fatal(err)
	}
	g := New(f)
	rng := rand.New(rand.NewSource(2))
	mats := make([]Mat, 256)
	for i := range mats {
		mats[i] = randMatB(g, rng)
	}
	return g, mats
}

func randMatB(g *Group, rng *rand.Rand) Mat {
	for {
		m, err := g.Make(
			uint32(rng.Intn(int(g.F.Order))), uint32(rng.Intn(int(g.F.Order))),
			uint32(rng.Intn(int(g.F.Order))), uint32(rng.Intn(int(g.F.Order))))
		if err == nil {
			return m
		}
	}
}

func BenchmarkGroupMul(b *testing.B) {
	g, mats := benchGroup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Mul(mats[i&255], mats[(i+1)&255])
	}
}

func BenchmarkGroupInv(b *testing.B) {
	g, mats := benchGroup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Inv(mats[i&255])
	}
}

func BenchmarkCosetKeyH0(b *testing.B) {
	g, mats := benchGroup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.CosetKeyH0(mats[i&255])
	}
}

func BenchmarkCosetKeyHn1(b *testing.B) {
	g, mats := benchGroup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = g.CosetKeyHn1(mats[i&255])
	}
}

// Batch-kernel micro-benchmarks: the vectorized involution product and coset
// key against their scalar equivalents (per-element cost reported), so the
// resolution kernels are gated by benchstat independently of the end-to-end
// resolver benchmarks.

func BenchmarkMulInvolutionVec(b *testing.B) {
	g, mats := benchGroup(b)
	dst := make([]Mat, len(mats))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.MulInvolutionVec(dst, mats, 1)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(mats)), "ns/elem")
}

func BenchmarkMulInvolutionLoop(b *testing.B) {
	g, mats := benchGroup(b)
	dst := make([]Mat, len(mats))
	inv := g.Involution(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, m := range mats {
			dst[j] = g.Mul(m, inv)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(mats)), "ns/elem")
}

func BenchmarkCosetKeyHn1Vec(b *testing.B) {
	g, mats := benchGroup(b)
	ss := make([]uint32, len(mats))
	ts := make([]int32, len(mats))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.CosetKeyHn1Vec(ss, ts, mats)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(mats)), "ns/elem")
}

func BenchmarkCosetKeyHn1Loop(b *testing.B) {
	g, mats := benchGroup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range mats {
			_, _ = g.CosetKeyHn1(m)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(mats)), "ns/elem")
}
