package pgl

import (
	"math/rand"
	"testing"

	"detshmem/internal/gf"
)

func newGroup(t *testing.T, m, n int) *Group {
	t.Helper()
	f, err := gf.NewExt(m, n)
	if err != nil {
		t.Fatal(err)
	}
	return New(f)
}

// randMat draws a uniformly random canonical element by rejection sampling
// matrix entries.
func randMat(g *Group, rng *rand.Rand) Mat {
	for {
		a := uint32(rng.Intn(int(g.F.Order)))
		b := uint32(rng.Intn(int(g.F.Order)))
		c := uint32(rng.Intn(int(g.F.Order)))
		d := uint32(rng.Intn(int(g.F.Order)))
		if m, err := g.Make(a, b, c, d); err == nil {
			return m
		}
	}
}

func TestGroupOrderAndEnumerate(t *testing.T) {
	for _, c := range []struct{ m, n int }{{1, 3}, {1, 4}, {2, 3}} {
		g := newGroup(t, c.m, c.n)
		k := uint64(g.F.Order)
		want := k*k*k - k
		if g.Order() != want {
			t.Fatalf("Order() = %d, want %d", g.Order(), want)
		}
		seen := make(map[Mat]bool)
		g.Enumerate(func(m Mat) bool {
			if g.Det(m) == 0 {
				t.Fatalf("enumerated singular matrix %v", m)
			}
			if seen[m] {
				t.Fatalf("enumerated %v twice", m)
			}
			seen[m] = true
			return true
		})
		if uint64(len(seen)) != want {
			t.Fatalf("enumerated %d elements, want %d", len(seen), want)
		}
	}
}

func TestCanonicalFormScalarInvariance(t *testing.T) {
	g := newGroup(t, 1, 5)
	rng := rand.New(rand.NewSource(42))
	f := g.F
	for i := 0; i < 2000; i++ {
		m := randMat(g, rng)
		s := uint32(1 + rng.Intn(int(f.Order)-1))
		scaled, err := g.Make(f.Mul(s, m.A), f.Mul(s, m.B), f.Mul(s, m.C), f.Mul(s, m.D))
		if err != nil {
			t.Fatal(err)
		}
		if scaled != m {
			t.Fatalf("canonical form not scalar-invariant: %v vs %v (s=%#x)", m, scaled, s)
		}
	}
}

func TestGroupAxioms(t *testing.T) {
	g := newGroup(t, 1, 4)
	rng := rand.New(rand.NewSource(7))
	id := g.Identity()
	for i := 0; i < 2000; i++ {
		x, y, z := randMat(g, rng), randMat(g, rng), randMat(g, rng)
		if g.Mul(g.Mul(x, y), z) != g.Mul(x, g.Mul(y, z)) {
			t.Fatalf("associativity failed")
		}
		if g.Mul(x, id) != x || g.Mul(id, x) != x {
			t.Fatalf("identity failed for %v", x)
		}
		if g.Mul(x, g.Inv(x)) != id || g.Mul(g.Inv(x), x) != id {
			t.Fatalf("inverse failed for %v", x)
		}
	}
}

func TestMakeRejectsSingular(t *testing.T) {
	g := newGroup(t, 1, 3)
	if _, err := g.Make(0, 0, 0, 0); err == nil {
		t.Error("zero matrix accepted")
	}
	if _, err := g.Make(1, 1, 1, 1); err == nil {
		t.Error("rank-1 matrix accepted")
	}
	if _, err := g.Make(2, 3, 4, 6); err == nil {
		// det = 2·6 + 3·4; in GF(8) with γ=x: 2=x, 6=x²+x, 3=x+1, 4=x².
		// x·(x²+x) = x³+x² = (x+1)+x² ; (x+1)·x² = x³+x² = same → det 0.
		t.Error("singular product matrix accepted")
	}
}

func TestH0Subgroup(t *testing.T) {
	for _, c := range []struct{ m, n int }{{1, 3}, {2, 3}} {
		g := newGroup(t, c.m, c.n)
		q := uint32(g.F.Q)
		h0 := g.H0Elements()
		if uint32(len(h0)) != q*q*q-q {
			t.Fatalf("|H_0| = %d, want %d", len(h0), q*q*q-q)
		}
		set := make(map[Mat]bool, len(h0))
		for _, h := range h0 {
			if !g.InH0(h) {
				t.Fatalf("H0 element %v fails InH0", h)
			}
			set[h] = true
		}
		if len(set) != len(h0) {
			t.Fatalf("H0 enumeration has duplicates")
		}
		// Closure under multiplication and inverse (subgroup property).
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 500; i++ {
			a := h0[rng.Intn(len(h0))]
			b := h0[rng.Intn(len(h0))]
			if !set[g.Mul(a, b)] {
				t.Fatalf("H0 not closed: %v * %v", a, b)
			}
			if !set[g.Inv(a)] {
				t.Fatalf("H0 not closed under inverse: %v", a)
			}
		}
	}
}

func TestHn1Membership(t *testing.T) {
	g := newGroup(t, 2, 3) // q=4, n=3
	f := g.F
	// Count canonical elements in H_{n-1}; expect (q−1)·q^n.
	var count uint32
	g.Enumerate(func(m Mat) bool {
		if g.InHn1(m) {
			count++
		}
		return true
	})
	want := (f.Q - 1) * f.Order
	if count != want {
		t.Fatalf("|H_{n-1}| = %d, want %d", count, want)
	}
	// Closure under multiplication and inverse.
	rng := rand.New(rand.NewSource(9))
	randHn1 := func() Mat {
		a := uint32(1 + rng.Intn(int(f.Q)-1))
		al := uint32(rng.Intn(int(f.Order)))
		return g.MustMake(a, al, 0, 1)
	}
	for i := 0; i < 500; i++ {
		x, y := randHn1(), randHn1()
		if !g.InHn1(g.Mul(x, y)) {
			t.Fatalf("H_{n-1} not closed under mult: %v %v", x, y)
		}
		if !g.InHn1(g.Inv(x)) {
			t.Fatalf("H_{n-1} not closed under inverse: %v", x)
		}
	}
	if !g.InHn1(g.Translate(f.PElem(3))) {
		t.Error("Translate(p) should lie in H_{n-1}")
	}
	if g.InHn1(g.Involution(1)) {
		t.Error("Involution(1) should not lie in H_{n-1}")
	}
}

func TestCosetCountsH0(t *testing.T) {
	// q=2, n=3: M = |PGL₂(8)|/|PGL₂(2)| = 504/6 = 84 distinct H0-cosets.
	g := newGroup(t, 1, 3)
	keys := make(map[Mat]bool)
	g.Enumerate(func(m Mat) bool {
		keys[g.CosetKeyH0(m)] = true
		return true
	})
	if len(keys) != 84 {
		t.Fatalf("distinct H0 cosets = %d, want 84", len(keys))
	}
}

func TestCosetKeyH0ConsistentWithSameCoset(t *testing.T) {
	g := newGroup(t, 1, 3)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 1500; i++ {
		x, y := randMat(g, rng), randMat(g, rng)
		same := g.SameCosetH0(x, y)
		keyEq := g.CosetKeyH0(x) == g.CosetKeyH0(y)
		if same != keyEq {
			t.Fatalf("coset key / SameCosetH0 disagree for %v, %v (same=%v keyEq=%v)",
				x, y, same, keyEq)
		}
		// Key stability: multiplying by an H0 element must not change the key.
		h := g.H0Elements()[rng.Intn(len(g.H0Elements()))]
		if g.CosetKeyH0(g.Mul(x, h)) != g.CosetKeyH0(x) {
			t.Fatalf("coset key changed under right H0 action")
		}
	}
}

func TestCosetKeyHn1(t *testing.T) {
	g := newGroup(t, 1, 5)
	f := g.F
	rng := rand.New(rand.NewSource(13))
	type key struct {
		s uint32
		t int32
	}
	for i := 0; i < 1500; i++ {
		x, y := randMat(g, rng), randMat(g, rng)
		xs, xt := g.CosetKeyHn1(x)
		ys, yt := g.CosetKeyHn1(y)
		same := g.SameCosetHn1(x, y)
		if same != (key{xs, xt} == key{ys, yt}) {
			t.Fatalf("Hn1 coset key / SameCosetHn1 disagree for %v, %v", x, y)
		}
		// Stability under right H_{n-1} action.
		a := uint32(1 + rng.Intn(int(f.Q)-1))
		al := uint32(rng.Intn(int(f.Order)))
		xh := g.Mul(x, g.MustMake(a, al, 0, 1))
		hs, ht := g.CosetKeyHn1(xh)
		if hs != xs || ht != xt {
			t.Fatalf("Hn1 coset key changed under right action")
		}
	}
	// Key ranges: s < (q^n−1)/(q−1), t ∈ [−1, q^n).
	ugi := f.UnitGroupIndex()
	count := make(map[key]bool)
	g.Enumerate(func(m Mat) bool {
		s, tt := g.CosetKeyHn1(m)
		if s >= ugi || tt < -1 || tt >= int32(f.Order) {
			t.Fatalf("key out of range: s=%d t=%d", s, tt)
		}
		count[key{s, tt}] = true
		return true
	})
	wantN := int((uint64(f.Order) + 1) * uint64(ugi))
	if len(count) != wantN {
		t.Fatalf("distinct Hn1 cosets = %d, want N = %d", len(count), wantN)
	}
}

func TestInvolutionAndTranslateForms(t *testing.T) {
	g := newGroup(t, 1, 3)
	if m := g.Translate(4); (m != Mat{1, 4, 0, 1}) {
		t.Errorf("Translate(4) = %v", m)
	}
	if m := g.Involution(5); (m != Mat{5, 1, 1, 0}) {
		t.Errorf("Involution(5) = %v", m)
	}
	// Involution is an involution in PGL₂ (char 2): (a 1;1 0)² = (a²+1, a; a, 1) …
	// projectively equals identity only for a = 0; but (0 1; 1 0)² = I.
	sq := g.Mul(g.Involution(0), g.Involution(0))
	if sq != g.Identity() {
		t.Errorf("(0 1;1 0)² = %v, want identity", sq)
	}
}
