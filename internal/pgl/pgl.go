// Package pgl implements the projective linear group PGL₂(q^n) — the group
// of nonsingular 2×2 matrices over F_{q^n} modulo scalar matrices — together
// with the two subgroups the Pietracaprina–Preparata scheme quotients by:
//
//	H_{n-1} = { (a α; 0 1) : a ∈ F_q^*, α ∈ F_{q^n} }
//	H_0     = PGL₂(q)   (matrices with entries in the base field, mod scalars)
//
// Matrices are kept in the paper's canonical projective form: either
// (α β; γ 1) (bottom-right normalized to 1) or (α β; 1 0) (bottom row (1,0)).
// Every projective class has exactly one such representative, so Mat values
// are directly comparable and usable as map keys.
package pgl

import (
	"fmt"

	"detshmem/internal/gf"
)

// Mat is a 2×2 matrix over F_{q^n} in canonical projective form. The zero
// value is NOT a valid group element; construct via Group methods.
type Mat struct {
	A, B, C, D uint32
}

// String renders the matrix in the paper's row notation.
func (m Mat) String() string {
	return fmt.Sprintf("(%#x %#x; %#x %#x)", m.A, m.B, m.C, m.D)
}

// Group provides PGL₂ arithmetic over a particular extension field.
type Group struct {
	F *gf.Ext // the field F_{q^n}

	h0 []Mat // all elements of H_0 = PGL₂(q), canonical form
}

// New constructs the group over the given extension field and enumerates
// H_0 = PGL₂(q) (q³−q canonical matrices) for coset computations.
func New(f *gf.Ext) *Group {
	g := &Group{F: f}
	g.h0 = g.enumerateH0()
	return g
}

// Identity returns the identity element.
func (g *Group) Identity() Mat { return Mat{A: 1, B: 0, C: 0, D: 1} }

// Make builds the canonical representative of the projective class of
// (a b; c d). It returns an error if the matrix is singular.
func (g *Group) Make(a, b, c, d uint32) (Mat, error) {
	f := g.F
	if f.Add(f.Mul(a, d), f.Mul(b, c)) == 0 { // det = ad − bc = ad + bc (char 2)
		return Mat{}, fmt.Errorf("pgl: singular matrix (%#x %#x; %#x %#x)", a, b, c, d)
	}
	return g.canon(a, b, c, d), nil
}

// MustMake is Make for inputs known to be nonsingular; it panics otherwise.
func (g *Group) MustMake(a, b, c, d uint32) Mat {
	m, err := g.Make(a, b, c, d)
	if err != nil {
		panic(err)
	}
	return m
}

// canon normalizes a nonsingular matrix to canonical projective form.
func (g *Group) canon(a, b, c, d uint32) Mat {
	f := g.F
	if d != 0 {
		if d != 1 {
			inv := f.Inv(d)
			a, b, c, d = f.Mul(a, inv), f.Mul(b, inv), f.Mul(c, inv), 1
		}
		return Mat{a, b, c, d}
	}
	// d == 0 forces c ≠ 0 for nonsingular matrices.
	if c != 1 {
		inv := f.Inv(c)
		a, b, c = f.Mul(a, inv), f.Mul(b, inv), 1
	}
	return Mat{a, b, c, 0}
}

// Det returns the determinant of the canonical representative. It is nonzero
// for every valid Mat; its value is only meaningful up to squares of scalars,
// which is all the scheme's coset computations need (they use det modulo
// the subgroup F_q^*·squares pattern explicitly).
func (g *Group) Det(m Mat) uint32 {
	f := g.F
	return f.Add(f.Mul(m.A, m.D), f.Mul(m.B, m.C))
}

// Mul returns the canonical form of x·y.
func (g *Group) Mul(x, y Mat) Mat {
	f := g.F
	a := f.Add(f.Mul(x.A, y.A), f.Mul(x.B, y.C))
	b := f.Add(f.Mul(x.A, y.B), f.Mul(x.B, y.D))
	c := f.Add(f.Mul(x.C, y.A), f.Mul(x.D, y.C))
	d := f.Add(f.Mul(x.C, y.B), f.Mul(x.D, y.D))
	return g.canon(a, b, c, d)
}

// Inv returns the canonical form of x^{-1}. In characteristic 2 the adjugate
// of (a b; c d) is (d b; c a), and the determinant scalar cancels
// projectively.
func (g *Group) Inv(x Mat) Mat {
	return g.canon(x.D, x.B, x.C, x.A)
}

// InHn1 reports membership in H_{n-1} = {(a α; 0 1): a ∈ F_q^*}.
func (g *Group) InHn1(m Mat) bool {
	return m.C == 0 && m.D == 1 && m.A != 0 && g.F.InBase(m.A)
}

// InH0 reports membership in H_0 = PGL₂(q): the projective class contains a
// matrix over F_q iff the canonical representative has all entries in F_q.
func (g *Group) InH0(m Mat) bool {
	f := g.F
	return f.InBase(m.A) && f.InBase(m.B) && f.InBase(m.C) && f.InBase(m.D)
}

// SameCosetHn1 reports x·H_{n-1} == y·H_{n-1}.
func (g *Group) SameCosetHn1(x, y Mat) bool {
	return g.InHn1(g.Mul(g.Inv(y), x))
}

// SameCosetH0 reports x·H_0 == y·H_0.
func (g *Group) SameCosetH0(x, y Mat) bool {
	return g.InH0(g.Mul(g.Inv(y), x))
}

// H0Elements returns the canonical representatives of all elements of
// H_0 = PGL₂(q). The returned slice is shared; callers must not mutate it.
func (g *Group) H0Elements() []Mat { return g.h0 }

// enumerateH0 lists PGL₂(q) in canonical form: matrices (a b; c 1) with
// a,b,c ∈ F_q and det = a + bc ≠ 0, plus (a b; 1 0) with a,b ∈ F_q, b ≠ 0.
func (g *Group) enumerateH0() []Mat {
	f := g.F
	q := f.Q
	out := make([]Mat, 0, int(q*q*q-q))
	for a := uint32(0); a < q; a++ {
		for b := uint32(0); b < q; b++ {
			for c := uint32(0); c < q; c++ {
				if f.Add(a, f.Mul(b, c)) != 0 {
					out = append(out, Mat{a, b, c, 1})
				}
			}
			if b != 0 {
				out = append(out, Mat{a, b, 1, 0})
			}
		}
	}
	return out
}

// CosetKeyH0 returns a canonical key for the coset m·H_0: the
// lexicographically least canonical representative among {m·h : h ∈ H_0}.
// Cost is O(|H_0|) = O(q³) group multiplications.
func (g *Group) CosetKeyH0(m Mat) Mat {
	best := m
	for _, h := range g.h0 {
		if p := g.Mul(m, h); matLess(p, best) {
			best = p
		}
	}
	return best
}

// CosetKeyHn1 returns a canonical key for the coset m·H_{n-1} as the pair
// (s, t) of Section 4's module parameterization:
//
//	t = -1, s = log_γ(a) mod (q^n−1)/(q−1)       if m ~ (a b; 0 1)
//	t = packed(a/c), s = log_γ(det/c²) mod …      otherwise
//
// Distinct cosets yield distinct keys (see core's module indexing, which is
// f(s,t) on exactly these values).
func (g *Group) CosetKeyHn1(m Mat) (s uint32, t int32) {
	f := g.F
	if m.C == 0 {
		// Canonical form (a b; 0 1); the coset is {(a·e, a·f+b; 0 1)} so it is
		// determined by a·F_q^*.
		return f.BaseUnitLog(m.A), -1
	}
	// Right-multiplying by (e f; 0 1) with f = d/c zeroes the bottom-right
	// entry; after rescaling the coset representative is
	// (a/c, det/(c²e); 1 0) with e ranging over F_q^*.
	beta := f.Div(m.A, m.C)
	delta := f.Div(g.Det(m), f.Mul(m.C, m.C))
	return f.BaseUnitLog(delta), int32(beta)
}

// matLess orders canonical matrices lexicographically by (A, B, C, D).
func matLess(x, y Mat) bool {
	if x.A != y.A {
		return x.A < y.A
	}
	if x.B != y.B {
		return x.B < y.B
	}
	if x.C != y.C {
		return x.C < y.C
	}
	return x.D < y.D
}

// Enumerate calls fn for every element of PGL₂(q^n) in canonical form,
// stopping early if fn returns false. Intended for exhaustive tests on small
// fields (|PGL₂(k)| = k³−k).
func (g *Group) Enumerate(fn func(Mat) bool) {
	k := g.F.Order
	for a := uint32(0); a < k; a++ {
		for b := uint32(0); b < k; b++ {
			for c := uint32(0); c < k; c++ {
				if g.F.Add(a, g.F.Mul(b, c)) != 0 {
					if !fn(Mat{a, b, c, 1}) {
						return
					}
				}
			}
			if b != 0 {
				if !fn(Mat{a, b, 1, 0}) {
					return
				}
			}
		}
	}
}

// Order returns |PGL₂(q^n)| = k³−k with k = q^n.
func (g *Group) Order() uint64 {
	k := uint64(g.F.Order)
	return k*k*k - k
}

// Translate returns the matrix (1 p; 0 1) (a "translation" by p); these are
// the H_{n-1} elements that parameterize Γ(module) in Lemma 2.
func (g *Group) Translate(p uint32) Mat { return Mat{1, p, 0, 1} }

// Involution returns the matrix (a 1; 1 0); these parameterize the non-unit
// part of Γ(variable) in Lemma 1.
func (g *Group) Involution(a uint32) Mat { return Mat{a, 1, 1, 0} }
