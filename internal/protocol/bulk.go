package protocol

import "detshmem/internal/pgl"

// BulkMapper is the optional batched extension of Mapper: resolving a whole
// vector of variables at once lets an implementation amortize per-variable
// setup (index decode, module-set sampling) and run the vectorized GF/PGL
// kernels instead of per-copy scalar algebra. The contract uses builtin
// slice types only, so schemes outside this package implement it without
// importing protocol.
type BulkMapper interface {
	Mapper
	// AppendCopyAddrs appends the (module, addr) of copies [0, copies) of
	// each v in vars — vars-major, copy-minor, so entry i·copies+c is copy c
	// of vars[i] — to mods and addrs, returning the extended slices. The
	// results must equal per-op CopyAddr calls in the same order. copies
	// must be in [0, Copies()].
	AppendCopyAddrs(mods, addrs []uint64, vars []uint64, copies int) ([]uint64, []uint64)
}

// AppendCopyAddrs resolves vars through m's bulk path when m implements
// BulkMapper, falling back to per-op CopyAddr otherwise. Both output slices
// grow append-style from whatever the caller passes (typically buf[:0] of a
// reused buffer, which makes steady-state resolution allocation-free).
func AppendCopyAddrs(m Mapper, mods, addrs []uint64, vars []uint64, copies int) ([]uint64, []uint64) {
	if bm, ok := m.(BulkMapper); ok {
		return bm.AppendCopyAddrs(mods, addrs, vars, copies)
	}
	for _, v := range vars {
		for c := 0; c < copies; c++ {
			mod, addr := m.CopyAddr(v, c)
			mods = append(mods, mod)
			addrs = append(addrs, addr)
		}
	}
	return mods, addrs
}

// Stack scratch bounds for the constructive scheme's bulk path: blocks of up
// to bulkMaxVars variables, shrunk so a block's copies fit the bulkMaxOps
// output scratch when the replication factor is large.
const (
	bulkMaxVars = 64
	bulkMaxOps  = 1024
)

// AppendCopyAddrs resolves a variable vector through the batched Section 4
// kernels: each block decodes the representatives once (per-op CopyAddr
// re-decodes per copy) and hands them to core's vectorized resolution. All
// scratch is stack arrays, so the call allocates only what append itself
// grows.
func (m *coreMapper) AppendCopyAddrs(mods, addrs []uint64, vars []uint64, copies int) ([]uint64, []uint64) {
	if copies < 1 {
		return mods, addrs
	}
	if copies > bulkMaxOps {
		// Replication beyond the scratch budget (no practical scheme: q+1 >
		// 1024 needs q ≥ 1024, far past the table-bit budget). Decode once,
		// resolve scalar per copy.
		for _, v := range vars {
			a := m.idx.Mat(v)
			for c := 0; c < copies; c++ {
				mod, off := m.s.CopyLocation(a, c)
				mods = append(mods, mod)
				addrs = append(addrs, mod*uint64(m.s.ModuleSize)+uint64(off))
			}
		}
		return mods, addrs
	}
	blockVars := bulkMaxVars
	if blockVars*copies > bulkMaxOps {
		blockVars = bulkMaxOps / copies
	}
	var mats [bulkMaxVars]pgl.Mat
	var bm [bulkMaxOps]uint64
	var bo [bulkMaxOps]uint32
	var ba [bulkMaxOps]uint64
	msz := uint64(m.s.ModuleSize)
	idx := m.idx
	for base := 0; base < len(vars); base += blockVars {
		n := len(vars) - base
		if n > blockVars {
			n = blockVars
		}
		for i := 0; i < n; i++ {
			mats[i] = idx.Mat(vars[base+i])
		}
		t := n * copies
		m.s.ResolveCopies(mats[:n], copies, bm[:t], bo[:t])
		// Assemble addresses in scratch and bulk-append both outputs: two
		// memmoves per block instead of per-element appends, whose bounds
		// bookkeeping would otherwise rival the resolution kernel itself.
		for k := 0; k < t; k++ {
			ba[k] = bm[k]*msz + uint64(bo[k])
		}
		mods = append(mods, bm[:t]...)
		addrs = append(addrs, ba[:t]...)
	}
	return mods, addrs
}

// AppendCopyAddrs serves the bulk contract from the compiled table (row
// copies), so callers that batch against an arbitrary Mapper get table reads
// when the mapper happens to be compiled.
func (r *CompiledResolver) AppendCopyAddrs(mods, addrs []uint64, vars []uint64, copies int) ([]uint64, []uint64) {
	for _, v := range vars {
		row := r.row(v)
		for c := 0; c < copies; c++ {
			mods = append(mods, uint64(row[c].module))
			addrs = append(addrs, row[c].addr)
		}
	}
	return mods, addrs
}

var _ BulkMapper = (*coreMapper)(nil)
var _ BulkMapper = (*CompiledResolver)(nil)
