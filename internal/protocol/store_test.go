package protocol

import (
	"testing"
	"testing/quick"
)

// TestStoreSelection: newStore picks dense below the threshold, sparse above.
func TestStoreSelection(t *testing.T) {
	if _, ok := newStore(1024).(denseStore); !ok {
		t.Error("small store not dense")
	}
	if _, ok := newStore(denseThreshold + 1).(sparseStore); !ok {
		t.Error("huge store not sparse")
	}
}

// TestStoreEquivalenceQuick: dense and sparse stores behave identically
// under random operation sequences.
func TestStoreEquivalenceQuick(t *testing.T) {
	const space = 512
	prop := func(ops []struct {
		Addr uint64
		Val  uint64
		Put  bool
	}) bool {
		d := denseStore(make([]cell, space))
		s := sparseStore(make(map[uint64]cell))
		for i, op := range ops {
			addr := op.Addr % space
			if op.Put {
				c := cell{val: op.Val, ts: uint64(i)}
				d.put(addr, c)
				s.put(addr, c)
			} else if d.get(addr) != s.get(addr) {
				return false
			}
		}
		for a := uint64(0); a < space; a++ {
			if d.get(a) != s.get(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// sparseMapper wraps a Mapper reporting an address space beyond the dense
// threshold, forcing the sparse store while keeping actual addresses small.
type sparseMapper struct{ Mapper }

func (s sparseMapper) AddrSpace() uint64 { return denseThreshold + 1 }

// TestProtocolSparseStoreEquivalence: the same batch sequence produces the
// same values and metrics under dense and sparse storage.
func TestProtocolSparseStoreEquivalence(t *testing.T) {
	mk := func(sparse bool) *System {
		base := newSystem(t, 1, 5, Config{})
		m := base.Mapper
		if sparse {
			m = sparseMapper{m}
		}
		sys, err := NewGenericSystem(m, Config{})
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	a, b := mk(false), mk(true)
	if _, ok := b.store.(sparseStore); !ok {
		t.Fatal("sparse system did not get a sparse store")
	}
	vars := []uint64{0, 5, 10, 100, 1000}
	vals := []uint64{9, 8, 7, 6, 5}
	m1, err := a.WriteBatch(vars, vals)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := b.WriteBatch(vars, vals)
	if err != nil {
		t.Fatal(err)
	}
	if m1.TotalRounds != m2.TotalRounds {
		t.Fatalf("rounds differ: %d vs %d", m1.TotalRounds, m2.TotalRounds)
	}
	g1, _, err := a.ReadBatch(vars)
	if err != nil {
		t.Fatal(err)
	}
	g2, _, err := b.ReadBatch(vars)
	if err != nil {
		t.Fatal(err)
	}
	for i := range g1 {
		if g1[i] != g2[i] || g1[i] != vals[i] {
			t.Fatalf("value mismatch at %d: %d / %d / %d", i, g1[i], g2[i], vals[i])
		}
	}
}

// TestReadIdempotence: reading the same batch twice returns identical values
// and identical metrics (reads do not mutate protocol-relevant state).
func TestReadIdempotence(t *testing.T) {
	sys := newSystem(t, 1, 5, Config{})
	vars := []uint64{1, 2, 3, 400, 500}
	if _, err := sys.WriteBatch(vars, []uint64{10, 20, 30, 40, 50}); err != nil {
		t.Fatal(err)
	}
	v1raw, m1raw, err := sys.ReadBatch(vars)
	if err != nil {
		t.Fatal(err)
	}
	// ReadBatch reuses its buffers across calls on the same system; snapshot
	// the first result before issuing the second read.
	v1 := append([]uint64(nil), v1raw...)
	m1 := *m1raw
	v2, m2, err := sys.ReadBatch(vars)
	if err != nil {
		t.Fatal(err)
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("read not idempotent at %d", i)
		}
	}
	if m1.TotalRounds != m2.TotalRounds {
		t.Fatalf("metrics differ across identical reads: %d vs %d", m1.TotalRounds, m2.TotalRounds)
	}
}
