package protocol

import (
	"errors"
	"fmt"
)

// Batch admission errors. Access wraps each of these in a detailed message
// (via errorf), so callers — in particular the combining front-end in
// internal/frontend — branch on them with errors.Is while the human-readable
// text stays unchanged.
var (
	// ErrBatchTooLarge is returned when a batch holds more requests than the
	// machine has modules (the protocol serves at most N requests per batch).
	ErrBatchTooLarge = errors.New("protocol: batch too large")
	// ErrDuplicateVar is returned when two requests in one batch name the
	// same variable (the paper's EREW-style distinctness assumption).
	ErrDuplicateVar = errors.New("protocol: duplicate variable in batch")
	// ErrVarOutOfRange is returned when a request names a variable index
	// at or beyond the Mapper's NumVars.
	ErrVarOutOfRange = errors.New("protocol: variable out of range")
)

// ErrIncomplete is wrapped by Access when some requests could not reach
// their quorum within the iteration bound (failure injection). The returned
// Result is still valid for the completed requests.
var ErrIncomplete = errIncomplete{}

type errIncomplete struct{}

func (errIncomplete) Error() string { return "protocol: quorum unreachable" }

// wrappedError pairs a sentinel with a fully formatted message: Error()
// reports only the message (keeping historical text intact), while Unwrap
// exposes the sentinel to errors.Is.
type wrappedError struct {
	sentinel error
	msg      string
}

func (e wrappedError) Error() string { return e.msg }
func (e wrappedError) Unwrap() error { return e.sentinel }

// errorf builds a wrappedError with a printf-style message.
func errorf(sentinel error, format string, args ...interface{}) error {
	return wrappedError{sentinel: sentinel, msg: fmt.Sprintf(format, args...)}
}
