package protocol

import (
	"errors"
	"fmt"
)

// Batch admission errors. Access wraps each of these in a detailed message
// (via errorf), so callers — in particular the combining front-end in
// internal/frontend — branch on them with errors.Is while the human-readable
// text stays unchanged.
var (
	// ErrBatchTooLarge is returned when a batch holds more requests than the
	// machine has modules (the protocol serves at most N requests per batch).
	ErrBatchTooLarge = errors.New("protocol: batch too large")
	// ErrDuplicateVar is returned when two requests in one batch name the
	// same variable (the paper's EREW-style distinctness assumption).
	ErrDuplicateVar = errors.New("protocol: duplicate variable in batch")
	// ErrVarOutOfRange is returned when a request names a variable index
	// at or beyond the Mapper's NumVars.
	ErrVarOutOfRange = errors.New("protocol: variable out of range")
)

// ErrIncomplete is wrapped by Access when some requests could not reach
// their quorum within the iteration bound (failure injection). The returned
// Result is still valid for the completed requests.
var ErrIncomplete = errIncomplete{}

type errIncomplete struct{}

func (errIncomplete) Error() string { return "protocol: quorum unreachable" }

// ErrQuorumUnreachable is the stronger per-request verdict under the runtime
// fault layer: the request's variable has fewer live copies than its quorum,
// so no amount of retrying can serve it until a module recovers. It unwraps
// to ErrIncomplete, so existing errors.Is(err, ErrIncomplete) handling keeps
// working; callers that care about the distinction (the frontend hands it to
// exactly the stranded futures) test for this sentinel first.
//
// Requests that merely exhausted the iteration bound while their variable
// still had a live quorum keep plain ErrIncomplete. Batch-level: Access
// wraps ErrQuorumUnreachable when at least one request is provably stranded
// (Metrics.Stranded non-empty), ErrIncomplete otherwise.
var ErrQuorumUnreachable = errQuorumUnreachable{}

type errQuorumUnreachable struct{}

func (errQuorumUnreachable) Error() string {
	return "protocol: live copies below quorum"
}

func (errQuorumUnreachable) Unwrap() error { return ErrIncomplete }

// wrappedError pairs a sentinel with a fully formatted message: Error()
// reports only the message (keeping historical text intact), while Unwrap
// exposes the sentinel to errors.Is.
type wrappedError struct {
	sentinel error
	msg      string
}

func (e wrappedError) Error() string { return e.msg }
func (e wrappedError) Unwrap() error { return e.sentinel }

// errorf builds a wrappedError with a printf-style message.
func errorf(sentinel error, format string, args ...interface{}) error {
	return wrappedError{sentinel: sentinel, msg: fmt.Sprintf(format, args...)}
}
