package protocol

import (
	"math/rand"
	"testing"

	"detshmem/internal/core"
	"detshmem/internal/mpc"
)

func newSystem(t testing.TB, m, n int, cfg Config) *System {
	t.Helper()
	s, err := core.New(m, n)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := s.NewIndexer()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(s, idx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestWriteThenRead(t *testing.T) {
	for _, c := range []struct{ m, n int }{{1, 3}, {1, 5}, {2, 3}} {
		sys := newSystem(t, c.m, c.n, Config{})
		vars := []uint64{0, 1, 5, 17, 33}
		vals := []uint64{100, 200, 300, 400, 500}
		if _, err := sys.WriteBatch(vars, vals); err != nil {
			t.Fatal(err)
		}
		got, _, err := sys.ReadBatch(vars)
		if err != nil {
			t.Fatal(err)
		}
		for i := range vars {
			if got[i] != vals[i] {
				t.Fatalf("q=%d n=%d: read var %d = %d, want %d", sys.Scheme.Q, c.n, vars[i], got[i], vals[i])
			}
		}
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	sys := newSystem(t, 1, 3, Config{})
	got, _, err := sys.ReadBatch([]uint64{3, 7, 80})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 0 {
			t.Fatalf("unwritten variable read %d at %d", v, i)
		}
	}
}

// TestMajorityInvariant: the paper's central consistency property. A write
// touches exactly q/2+1 copies; q/2 copies stay stale; yet every subsequent
// read (which also touches only a majority) returns the new value.
func TestMajorityInvariant(t *testing.T) {
	for _, c := range []struct{ m, n int }{{1, 5}, {2, 3}} {
		sys := newSystem(t, c.m, c.n, Config{})
		v := uint64(42)
		if _, err := sys.WriteBatch([]uint64{v}, []uint64{777}); err != nil {
			t.Fatal(err)
		}
		ts := sys.CopyState(v)
		fresh := 0
		for _, x := range ts {
			if x != 0 {
				fresh++
			}
		}
		if fresh != sys.Scheme.Majority {
			t.Fatalf("q=%d: write touched %d copies, want exactly majority %d", sys.Scheme.Q, fresh, sys.Scheme.Majority)
		}
		// Repeat reads: every majority choice must return 777.
		for trial := 0; trial < 5; trial++ {
			got, _, err := sys.ReadBatch([]uint64{v})
			if err != nil {
				t.Fatal(err)
			}
			if got[0] != 777 {
				t.Fatalf("stale read: got %d", got[0])
			}
		}
	}
}

// TestReferenceModel runs a long random sequence of mixed batches against a
// plain map and checks every read.
func TestReferenceModel(t *testing.T) {
	for _, cfg := range []Config{
		{},
		{Policy: PolicyFixedMajority},
		{Arb: mpc.ArbRandom, Seed: 5},
		{Arb: mpc.ArbRoundRobin},
	} {
		sys := newSystem(t, 1, 5, cfg)
		ref := make(map[uint64]uint64)
		rng := rand.New(rand.NewSource(77))
		M := sys.Index.M()
		for batch := 0; batch < 40; batch++ {
			k := 1 + rng.Intn(200)
			chosen := make(map[uint64]bool, k)
			var reqs []Request
			for len(chosen) < k {
				v := uint64(rng.Intn(int(M)))
				if chosen[v] {
					continue
				}
				chosen[v] = true
				if rng.Intn(2) == 0 {
					reqs = append(reqs, Request{Var: v, Op: Write, Value: rng.Uint64()})
				} else {
					reqs = append(reqs, Request{Var: v, Op: Read})
				}
			}
			res, err := sys.Access(reqs)
			if err != nil {
				t.Fatal(err)
			}
			for i, r := range reqs {
				if r.Op == Read {
					if res.Values[i] != ref[r.Var] {
						t.Fatalf("cfg=%+v batch %d: read %d = %d, want %d",
							cfg, batch, r.Var, res.Values[i], ref[r.Var])
					}
				}
			}
			for _, r := range reqs {
				if r.Op == Write {
					ref[r.Var] = r.Value
				}
			}
		}
	}
}

// TestFullBatch drives a complete N-request batch (the Theorem 1 workload)
// and sanity-checks the metrics.
func TestFullBatch(t *testing.T) {
	sys := newSystem(t, 1, 5, Config{TraceLive: true})
	N := int(sys.Scheme.NumModules)
	vars := make([]uint64, N)
	vals := make([]uint64, N)
	for i := range vars {
		vars[i] = uint64(i)
		vals[i] = uint64(i) * 3
	}
	met, err := sys.WriteBatch(vars, vals)
	if err != nil {
		t.Fatal(err)
	}
	if met.Phases != sys.Scheme.Copies {
		t.Fatalf("phases = %d, want q+1 = %d", met.Phases, sys.Scheme.Copies)
	}
	if len(met.PhaseIterations) != met.Phases {
		t.Fatalf("PhaseIterations length %d", len(met.PhaseIterations))
	}
	sum := 0
	for _, it := range met.PhaseIterations {
		sum += it
		if it <= 0 {
			t.Fatalf("phase with %d iterations", it)
		}
	}
	if sum != met.TotalRounds {
		t.Fatalf("TotalRounds %d != Σ %d", met.TotalRounds, sum)
	}
	if met.MaxIterations > met.TotalRounds || met.MaxIterations == 0 {
		t.Fatalf("Φ = %d out of range", met.MaxIterations)
	}
	// Each request accesses exactly a majority of copies.
	if met.CopyAccesses != N*sys.Scheme.Majority {
		t.Fatalf("copy accesses = %d, want %d", met.CopyAccesses, N*sys.Scheme.Majority)
	}
	// Live trace must be non-increasing and end at zero in every phase.
	for p, trace := range met.LiveTrace {
		for i := 1; i < len(trace); i++ {
			if trace[i] > trace[i-1] {
				t.Fatalf("phase %d: live count increased at iteration %d", p, i)
			}
		}
		if len(trace) > 0 && trace[len(trace)-1] != 0 {
			t.Fatalf("phase %d: live count ends at %d", p, trace[len(trace)-1])
		}
	}
	got, _, err := sys.ReadBatch(vars)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != vals[i] {
			t.Fatalf("full-batch readback mismatch at %d", i)
		}
	}
}

// TestEngineEquivalence: the goroutine MPC engine yields identical values
// and iteration counts to the sequential one.
func TestEngineEquivalence(t *testing.T) {
	seqSys := newSystem(t, 1, 5, Config{})
	parSys := newSystem(t, 1, 5, Config{Parallel: true, Workers: 5})
	rng := rand.New(rand.NewSource(3))
	M := seqSys.Index.M()
	for batch := 0; batch < 10; batch++ {
		k := 50 + rng.Intn(300)
		chosen := make(map[uint64]bool)
		var reqs []Request
		for len(chosen) < k {
			v := uint64(rng.Intn(int(M)))
			if chosen[v] {
				continue
			}
			chosen[v] = true
			op := Read
			if rng.Intn(2) == 0 {
				op = Write
			}
			reqs = append(reqs, Request{Var: v, Op: op, Value: rng.Uint64()})
		}
		r1, err := seqSys.Access(reqs)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := parSys.Access(reqs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range r1.Values {
			if r1.Values[i] != r2.Values[i] {
				t.Fatalf("batch %d: engines disagree on value %d", batch, i)
			}
		}
		if r1.Metrics.TotalRounds != r2.Metrics.TotalRounds ||
			r1.Metrics.MaxIterations != r2.Metrics.MaxIterations {
			t.Fatalf("batch %d: engines disagree on metrics: %+v vs %+v",
				batch, r1.Metrics, r2.Metrics)
		}
	}
}

func TestValidation(t *testing.T) {
	sys := newSystem(t, 1, 3, Config{})
	if _, err := sys.Access([]Request{{Var: 2}, {Var: 2}}); err == nil {
		t.Error("duplicate variable accepted")
	}
	if _, err := sys.Access([]Request{{Var: sys.Index.M()}}); err == nil {
		t.Error("out-of-range variable accepted")
	}
	big := make([]Request, sys.Scheme.NumModules+1)
	for i := range big {
		big[i] = Request{Var: uint64(i)}
	}
	if _, err := sys.Access(big); err == nil {
		t.Error("oversized batch accepted")
	}
	if _, err := sys.WriteBatch([]uint64{1}, []uint64{1, 2}); err == nil {
		t.Error("mismatched WriteBatch accepted")
	}
}

func TestEmptyBatch(t *testing.T) {
	sys := newSystem(t, 1, 3, Config{})
	res, err := sys.Access(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 0 {
		t.Fatal("non-empty result for empty batch")
	}
}

func TestClusterSizeValidation(t *testing.T) {
	s, err := core.New(2, 3) // q=4: majority 3
	if err != nil {
		t.Fatal(err)
	}
	idx, err := s.NewIndexer()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSystem(s, idx, Config{ClusterSize: 2}); err == nil {
		t.Error("cluster size below majority accepted")
	}
	if _, err := NewSystem(s, idx, Config{ClusterSize: -1}); err == nil {
		t.Error("negative cluster size accepted")
	}
	// Majority-sized and oversized clusters are both legal.
	for _, cs := range []int{3, 5, 8} {
		sys, err := NewSystem(s, idx, Config{ClusterSize: cs})
		if err != nil {
			t.Fatalf("cluster size %d rejected: %v", cs, err)
		}
		if _, err := sys.WriteBatch([]uint64{1, 2, 3, 4, 5, 6, 7}, []uint64{1, 2, 3, 4, 5, 6, 7}); err != nil {
			t.Fatalf("cluster size %d: %v", cs, err)
		}
		got, _, err := sys.ReadBatch([]uint64{1, 2, 3, 4, 5, 6, 7})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != uint64(i+1) {
				t.Fatalf("cluster size %d: read %d = %d", cs, i+1, v)
			}
		}
	}
}

// TestOverwriteSequence: repeated writes to the same variable across batches
// always surface the latest value, exercising timestamp ordering.
func TestOverwriteSequence(t *testing.T) {
	sys := newSystem(t, 1, 5, Config{})
	v := uint64(123)
	for round := 1; round <= 20; round++ {
		if _, err := sys.WriteBatch([]uint64{v}, []uint64{uint64(round * 11)}); err != nil {
			t.Fatal(err)
		}
		got, _, err := sys.ReadBatch([]uint64{v})
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != uint64(round*11) {
			t.Fatalf("round %d: read %d", round, got[0])
		}
	}
}
