// Package protocol implements the Section 3 access protocol of
// Pietracaprina–Preparata on top of the core memory organization and the MPC
// simulator: processors are grouped into clusters of q+1, a batch of distinct
// read/write requests is served in q+1 phases, and within a phase the cluster
// members repeatedly bid for the q+1 copies of their cluster's current
// variable until a quorum (q/2+1, the majority) of copies has been touched.
// Copies carry timestamps (the Upfal–Wigderson adaptation of Thomas'
// majority-consensus rule), so a read that reaches any read quorum is
// guaranteed to see the most recently written value.
//
// The executor is generic over the Mapper interface, so the comparison
// baselines (Mehlhorn–Vishkin write-all/read-one, single-copy hashing,
// Upfal–Wigderson random graphs) run under the exact same MPC accounting.
//
// Two hot-path layers keep the executor fast: CompileMapper precomputes any
// Mapper's address map into a dense shared table (the paper's O(log N),
// O(1)-space Section 4 computation, compiled down to an O(1) array read),
// and AccessInto reuses all per-batch buffers so steady-state batches
// allocate nothing.
//
// The number of iterations a phase needs is the quantity Φ bounded by
// Theorem 6: Φ ∈ O(N^{1/3} log* N) for constant q. Metrics expose the
// per-iteration live-variable counts so the Recurrence (2) envelope can be
// checked empirically.
package protocol

import (
	"errors"
	"fmt"

	"detshmem/internal/core"
	"detshmem/internal/mpc"
	"detshmem/internal/obs"
)

// Op is the kind of memory access.
type Op uint8

const (
	// Read fetches the variable's current value.
	Read Op = iota
	// Write replaces the variable's value.
	Write
	// opRepair is the internal repair-write operation: the module installs
	// the carried (value, timestamp) pair only if the timestamp is newer
	// than the cell's, so a rebuild can never clobber a concurrent normal
	// write. It never appears in user Requests; the repair scheduler stages
	// it directly (see repair.go).
	opRepair
)

// Request is one processor's access request for a batch. Variables within a
// batch must be pairwise distinct (the paper's EREW-style assumption).
type Request struct {
	Var   uint64 // variable index under the system's Mapper
	Op    Op
	Value uint64 // payload for Write; ignored for Read
}

// Metrics reports how the protocol performed on one batch.
type Metrics struct {
	Phases          int     // number of phases executed (cluster size)
	PhaseIterations []int   // MPC iterations used by each phase
	MaxIterations   int     // Φ: max over phases
	TotalRounds     int     // Σ PhaseIterations — total MPC time for the batch
	LiveTrace       [][]int // per phase: live (incomplete) variables after each iteration
	CopyAccesses    int     // total copies touched (grants consumed by quorums)
	// GrantedBids counts every module grant the batch's bids won, including
	// grants to bids already cancelled by a completed quorum (those exceed
	// CopyAccesses). It equals the MPC's summed served counts over the
	// batch's rounds, which is what lets a round-level trace (internal/obs)
	// be cross-checked exactly against these metrics.
	GrantedBids int
	// InterconnectCost is the machine's cumulative cost for the batch: equal
	// to TotalRounds on the plain MPC, the routed link-step total on a
	// network machine.
	InterconnectCost uint64
	// IssuedBids counts every bid the batch handed to the interconnect,
	// summed over rounds (live requests plus bids a failing machine dropped
	// at crashed modules). A round-level trace balances exactly:
	// Σ RoundEvent.Requests + Σ RoundEvent.Dropped == Σ IssuedBids.
	IssuedBids int
	// Unfinished lists request indices whose quorum could not be met within
	// the iteration bound (only possible under failure injection).
	Unfinished []int
	// Stranded lists the subset of Unfinished whose variable provably had
	// fewer live copies than its quorum when the batch gave up — the
	// requests no retry can serve until a module recovers. Aligned with the
	// ErrQuorumUnreachable verdict.
	Stranded []int
	// RetriedBids counts bids re-selected onto surviving copies after the
	// fault layer dropped or rerouted their original target.
	RetriedBids int
	// RetryRounds counts the MPC rounds spent in post-phase retry passes
	// (already included in TotalRounds).
	RetryRounds int
	// Repair metrics cover the background-repair step this batch pumped
	// (AccessInto runs one budget-bounded repair chunk after the batch's own
	// work when modules are under repair). RepairRounds are NOT included in
	// TotalRounds or IssuedBids — repair work is accounted through
	// obs.RepairEvent so the round-trace crosscheck balances on both the
	// per-batch and the idle-loop pump paths.
	RepairedCopies int // target copies rebuilt by this batch's repair step
	RepairSalvaged int // variables rebuilt without a sound source majority
	RepairRounds   int // MPC rounds the repair step drove
	RepairCertified int // modules certified fully live by this batch's step
}

// Result carries read values (aligned with the request slice; zero for
// writes) and the batch metrics.
type Result struct {
	Values  []uint64
	Metrics Metrics
}

// CopyPolicy selects how many copies a variable keeps in flight.
type CopyPolicy int

const (
	// PolicyAllCancel is the paper's rule: all r copies bid, and the
	// variable's outstanding bids are cancelled once its quorum succeeded.
	PolicyAllCancel CopyPolicy = iota
	// PolicyFixedMajority is an ablation: only the first quorum-many copies
	// ever bid, with no slack copies to route around congestion.
	PolicyFixedMajority
)

// ResolverStrategy selects how a System turns variable indices into copy
// addresses — the table-memory vs recompute-cost vs cache-hit-rate frontier:
//
//   - compiled: O(1) table reads, but the table is dense in M (lazy-sharded
//     above DefaultLazyThreshold) — fastest when the table fits and stays
//     warm;
//   - computed: no table at all — every batch runs the vectorized Section 4
//     kernels (BulkMapper), paying algebra per op but constant memory, the
//     fit for thin netmpc clients and for large-(q, n) schemes whose table
//     would not fit;
//   - hybrid: computed resolution behind a bounded hot-coset cache — Zipf
//     traffic resolves at table speed from a few-MiB cache regardless of M.
type ResolverStrategy uint8

const (
	// ResolverAuto (the zero value) keeps the historical behavior: use the
	// configured resolver (or the mapper itself when already compiled, or a
	// lazy private resolver under the deprecated CacheAddresses flag), and
	// resolve live through the mapper's batched path otherwise.
	ResolverAuto ResolverStrategy = iota
	// ResolverCompiled requires a compiled table: the configured resolver if
	// any, else CompileMapper with default options (eager below the lazy
	// threshold, sharded-lazy above).
	ResolverCompiled
	// ResolverComputed forbids the table: every batch resolves live through
	// the bulk mapper contract. A System whose Mapper is a CompiledResolver
	// resolves through the underlying organization instead of the table.
	ResolverComputed
	// ResolverHybrid is computed resolution behind a HotCache (the
	// configured shared one, or a private cache of HotCacheSlots slots).
	ResolverHybrid
)

// String names the strategy as the benchmarks label it.
func (s ResolverStrategy) String() string {
	switch s {
	case ResolverAuto:
		return "auto"
	case ResolverCompiled:
		return "compiled"
	case ResolverComputed:
		return "computed"
	case ResolverHybrid:
		return "hybrid"
	}
	return fmt.Sprintf("ResolverStrategy(%d)", uint8(s))
}

// ParseResolverStrategy maps the -resolver flag spellings to strategies.
func ParseResolverStrategy(s string) (ResolverStrategy, error) {
	switch s {
	case "", "auto":
		return ResolverAuto, nil
	case "compiled":
		return ResolverCompiled, nil
	case "computed":
		return ResolverComputed, nil
	case "hybrid":
		return ResolverHybrid, nil
	}
	return 0, fmt.Errorf("protocol: unknown resolver strategy %q (want auto, compiled, computed or hybrid)", s)
}

// Machine abstracts the interconnect executing one synchronous request
// round: reqs[p] is the module processor p addresses (or mpc.Idle), grant[p]
// reports whether p's request was the one its module served. Cost() is the
// cumulative interconnect time in whatever unit the machine charges (rounds
// for the plain MPC, link steps for a routed network).
type Machine interface {
	Round(reqs []int64, grant []bool) int
	Cost() uint64
}

// Config tunes the protocol run.
type Config struct {
	Arb      mpc.Arbiter // module arbitration policy
	Seed     uint64      // seed for mpc.ArbRandom
	Parallel bool        // use the persistent-worker-pool MPC engine
	Workers  int         // pool size for the parallel engine
	Policy   CopyPolicy
	// ClusterSize overrides the default cluster size (= the copy count);
	// 0 means default. It must be at least the larger quorum.
	ClusterSize int
	// TraceLive records LiveTrace (costs one counter sweep per iteration
	// and allocates for the trace itself).
	TraceLive bool
	// NewMachine overrides interconnect construction (failure injection,
	// routed networks); nil uses the Transport (or the plain MPC). It takes
	// precedence over Transport when both are set.
	NewMachine func(cfg mpc.Config) (Machine, error)
	// Transport selects how bid rounds reach the memory modules: nil (or
	// Inproc) is the in-process MPC simulator, netmpc's TCP transport fans
	// rounds out to remote memserver processes. The System builds machines
	// through the transport but never closes it — the caller owns the
	// transport's lifetime.
	Transport Transport
	// MaxIterationsPerPhase bounds a phase's iteration count; 0 means the
	// generous default 8N+64. The bound can only trigger when requests are
	// genuinely unservable (e.g. a variable lost a quorum of its copies to
	// failed modules); such requests are reported in Metrics.Unfinished and
	// Access returns ErrIncomplete.
	MaxIterationsPerPhase int
	// FaultAttempts bounds the post-phase retry passes the system runs for
	// requests stranded by module failures, when the interconnect exposes a
	// FaultView (mpc.Failing does). Each attempt re-selects a quorum over
	// the currently live, not-yet-touched copies, so a module recovering
	// between attempts rescues the request. 0 means the default (2);
	// negative disables retries.
	FaultAttempts int
	// RepairBudget bounds the variables one background-repair step scans
	// (see RepairStep and the per-batch pump in AccessInto); 0 means
	// DefaultRepairBudget, negative disables the per-batch pump (repair then
	// runs only through explicit RepairStep calls).
	RepairBudget int
	// Recorder, when non-nil, is installed on every interconnect machine
	// the system builds, capturing one obs.RoundEvent per MPC round (ring-
	// buffer tracing, contention histograms). The default no-op recorder
	// keeps the batch loop allocation-free; see internal/obs.
	Recorder obs.Recorder
	// Observer, when non-nil, receives one obs.BatchEvent per completed
	// Access/AccessInto (including incomplete batches under failure
	// injection) with the batch's cumulative metrics. obs.Collector
	// implements it.
	Observer obs.BatchObserver
	// Resolver supplies a compiled address map (see CompileMapper) for the
	// system's Mapper. One resolver may be shared by any number of Systems
	// and frontends; it must have been compiled from a mapper with the
	// same geometry as this system's.
	Resolver *CompiledResolver
	// Strategy selects the resolution path (see ResolverStrategy). The zero
	// value keeps the historical resolver selection. ResolverComputed and
	// ResolverHybrid reject a non-nil Resolver.
	Strategy ResolverStrategy
	// HotCache shares a bounded hot-coset cache across Systems under
	// ResolverHybrid (geometry-checked); nil builds a private cache. Setting
	// it with any other strategy is a configuration error.
	HotCache *HotCache
	// HotCacheSlots sizes the private hybrid cache (rounded up to a power of
	// two); 0 means DefaultHotCacheSlots. Ignored when HotCache is set.
	HotCacheSlots int
	//
	// Deprecated: CacheAddresses memoized each variable's copy addresses in
	// a per-System unbounded map that was neither shared across Systems nor
	// safe to share. It is superseded by the compiled resolver: set
	// Resolver (or build the System directly over a CompiledResolver) to
	// control compilation explicitly. The flag still works — it is now
	// routed through a lazily compiled resolver private to the System, so
	// memory grows shard-wise with the touched working set.
	CacheAddresses bool
}

// System binds a memory organization (as a Mapper), copy storage and an MPC
// configuration into a runnable shared-memory abstraction.
type System struct {
	Mapper Mapper
	// Scheme and Index are set when the system wraps the core organization
	// (NewSystem); nil for generic baseline systems.
	Scheme *core.Scheme
	Index  core.Indexer

	cfg   Config
	store store
	ts    uint64 // batch timestamp, incremented per Access

	// resolver serves compiled copy addresses; nil means live batched
	// resolution through bulkSrc (behind hot when the strategy is hybrid).
	resolver *CompiledResolver
	// bulkSrc is the mapper live resolution runs against: the Mapper itself,
	// or the underlying organization when the Mapper is a compiled table the
	// strategy refuses to use.
	bulkSrc Mapper
	// hot is the hybrid strategy's bounded row cache; nil otherwise.
	hot *HotCache

	// Machine reuse: rebuilding interconnect state per batch is wasteful
	// when consecutive batches have the same processor count.
	machine      Machine
	machineProcs int
	machineCost  uint64 // machine.Cost() at the start of the current batch
	// fv is the machine's fault view when it exposes one (mpc.Failing
	// does); nil on healthy interconnects, which keeps every fault hook off
	// the hot path.
	fv FaultView
	// rs is the machine's remote store when the transport keeps memory
	// cells on the far side (netmpc.Client); nil for in-process machines,
	// which keeps the staging hooks off the local hot path.
	rs RemoteStore
	// rv is the machine's repair view when its fault model has a repair
	// lifecycle (mpc.Failing, netmpc.Client); nil otherwise. With rv set,
	// repairing modules are barred from read quorums and the background
	// repair scheduler (repair.go) can run.
	rv RepairView
	// ro receives repair-step events when the configured Observer also
	// implements obs.RepairObserver (obs.Collector does).
	ro obs.RepairObserver
	// rep is the background repair scheduler's sweep state.
	rep repairSweep

	// Per-batch scratch, reused across Access calls so the iteration loop
	// is allocation-free once the buffers reach their high-water sizes.
	seen      map[uint64]struct{}
	copies    []assignment
	remaining []int32
	bestTS    []uint64
	bestVal   []uint64
	mreqs     []int64
	grant     []bool
	tasks     []taskRef
	varsBuf   []uint64 // bulk path: the batch's variable vector
	bulkMods  []uint64 // bulk path: resolved modules, vars-major
	bulkAddrs []uint64 // bulk path: resolved addresses, vars-major

	// Fault-layer scratch, touched only when fv is non-nil (see fault.go).
	liveBids []int32  // ungranted in-flight bids per request in the current phase
	usedMask []uint64 // copies already selected this phase (bitmask)
	touchedC []uint64 // copies granted so far for the request (bitmask)
	stalled  []bool   // request already queued for retry
	retry    []int32  // requests awaiting a post-phase retry pass
	wave     []int32  // requests issued in the current retry wave

	// Convenience-wrapper scratch (ReadBatch/WriteBatch), reused across
	// calls so the wrappers stay allocation-free too.
	convReqs []Request
	convRes  Result
}

// NewSystem builds a protocol system for the Pietracaprina–Preparata scheme.
func NewSystem(s *core.Scheme, idx core.Indexer, cfg Config) (*System, error) {
	sys, err := NewGenericSystem(NewCoreMapper(s, idx), cfg)
	if err != nil {
		return nil, err
	}
	sys.Scheme = s
	sys.Index = idx
	return sys, nil
}

// NewGenericSystem builds a protocol system over any Mapper. It validates
// the quorum-intersection requirement ReadQuorum + WriteQuorum > Copies.
func NewGenericSystem(m Mapper, cfg Config) (*System, error) {
	r, w, c := m.ReadQuorum(), m.WriteQuorum(), m.Copies()
	if r < 1 || w < 1 || r > c || w > c {
		return nil, fmt.Errorf("protocol: quorums (%d,%d) out of range for %d copies", r, w, c)
	}
	if r+w <= c {
		return nil, fmt.Errorf("protocol: quorums (%d,%d) do not intersect over %d copies", r, w, c)
	}
	if cfg.ClusterSize < 0 {
		return nil, fmt.Errorf("protocol: negative cluster size")
	}
	if cfg.ClusterSize == 0 {
		cfg.ClusterSize = c
	}
	maxQ := r
	if w > maxQ {
		maxQ = w
	}
	if cfg.ClusterSize < maxQ {
		// With one copy per cluster member, fewer members than the quorum
		// can never complete an access.
		return nil, fmt.Errorf("protocol: cluster size %d below quorum %d", cfg.ClusterSize, maxQ)
	}
	resolver := cfg.Resolver
	switch {
	case resolver != nil:
		if err := resolver.compatibleWith(m); err != nil {
			return nil, err
		}
	case isCompiled(m):
		resolver = m.(*CompiledResolver)
	case cfg.CacheAddresses:
		// Deprecated flag, kept working: route it through a lazily compiled
		// private resolver instead of the old unbounded per-System map.
		var err error
		resolver, err = CompileMapper(m, CompileOptions{Lazy: true})
		if err != nil {
			return nil, err
		}
	}
	bulkSrc := m
	var hot *HotCache
	switch cfg.Strategy {
	case ResolverAuto:
		// Historical selection, already made above.
	case ResolverCompiled:
		if resolver == nil {
			var err error
			if resolver, err = CompileMapper(m, CompileOptions{}); err != nil {
				return nil, err
			}
		}
	case ResolverComputed, ResolverHybrid:
		if cfg.Resolver != nil {
			return nil, fmt.Errorf("protocol: strategy %v conflicts with an attached compiled resolver", cfg.Strategy)
		}
		resolver = nil
		if r, ok := m.(*CompiledResolver); ok {
			// The Mapper happens to be a compiled table: resolve through the
			// organization it was compiled from instead of the table.
			bulkSrc = r.Mapper()
		}
		if cfg.Strategy == ResolverHybrid {
			hot = cfg.HotCache
			if hot == nil {
				hot = NewHotCache(bulkSrc, cfg.HotCacheSlots)
			} else if err := hot.compatibleWith(m); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("protocol: unknown resolver strategy %d", cfg.Strategy)
	}
	if cfg.HotCache != nil && cfg.Strategy != ResolverHybrid {
		return nil, fmt.Errorf("protocol: HotCache requires Strategy ResolverHybrid, got %v", cfg.Strategy)
	}
	sys := &System{
		Mapper:   m,
		cfg:      cfg,
		store:    newStore(m.AddrSpace()),
		resolver: resolver,
		bulkSrc:  bulkSrc,
		hot:      hot,
		seen:     make(map[uint64]struct{}),
	}
	sys.ro, _ = cfg.Observer.(obs.RepairObserver)
	sys.observeResolver()
	return sys, nil
}

// observeResolver wires the configured batch observer into the resolver's
// residency gauges when both sides support it (obs.Collector implements
// obs.ResolverObserver), so compiled-table growth is visible on
// expvar/Prometheus alongside the batch metrics.
func (sys *System) observeResolver() {
	if sys.resolver == nil {
		return
	}
	if o, ok := sys.cfg.Observer.(obs.ResolverObserver); ok {
		sys.resolver.Observe(o)
	}
}

func isCompiled(m Mapper) bool {
	_, ok := m.(*CompiledResolver)
	return ok
}

// Close releases the system's interconnect (the parallel MPC engine's
// worker pool, when one is live). The system remains usable: the next
// Access rebuilds the machine. Closing is optional — leaked machines are
// finalized by the GC — but deterministic release keeps goroutine counts
// flat in long-running services.
func (sys *System) Close() {
	if c, ok := sys.machine.(interface{ Close() }); ok {
		c.Close()
	}
	sys.machine = nil
	sys.machineProcs = 0
	sys.fv = nil
	sys.rs = nil
	sys.rv = nil
	sys.resetRepair()
}

// assignment is one processor's job within a phase: one copy of one request.
type assignment struct {
	req    int32
	cpy    int16 // copy index within the request's replica set
	module int64
	addr   uint64
}

// quorum returns the number of copies the request's operation must touch.
func (sys *System) quorum(op Op) int32 {
	if op == Write {
		return int32(sys.Mapper.WriteQuorum())
	}
	return int32(sys.Mapper.ReadQuorum())
}

// grow returns s resized to n elements, reusing its backing array when the
// capacity allows. Contents are unspecified; callers overwrite.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// Access executes one batch of at most N distinct-variable requests and
// returns read values plus metrics. The batch is one synchronous
// shared-memory step: all writes in it carry the same timestamp, and a read
// in a later batch is guaranteed to observe the latest earlier write.
//
// Access allocates a fresh Result per call; use AccessInto on latency- or
// allocation-sensitive paths.
func (sys *System) Access(reqs []Request) (*Result, error) {
	res := &Result{}
	err := sys.AccessInto(reqs, res)
	if err != nil && !errors.Is(err, ErrIncomplete) {
		return nil, err
	}
	return res, err
}

// AccessInto is the allocation-free variant of Access: it executes the
// batch and writes read values and metrics into res, reusing res's slices
// and the System's internal buffers. After a warm-up batch of each size,
// steady-state calls perform no allocation (TraceLive and failure paths
// excepted). res must not alias the request slice and is valid until the
// next AccessInto on the same Result.
func (sys *System) AccessInto(reqs []Request, res *Result) error {
	m := sys.Mapper
	if uint64(len(reqs)) > m.NumModules() {
		return errorf(ErrBatchTooLarge, "protocol: batch of %d exceeds N = %d", len(reqs), m.NumModules())
	}
	clear(sys.seen)
	for _, r := range reqs {
		if r.Var >= m.NumVars() {
			return errorf(ErrVarOutOfRange, "protocol: variable %d out of range [0,%d)", r.Var, m.NumVars())
		}
		if _, dup := sys.seen[r.Var]; dup {
			return errorf(ErrDuplicateVar, "protocol: variable %d requested twice in one batch", r.Var)
		}
		sys.seen[r.Var] = struct{}{}
	}
	sys.ts++

	res.Values = grow(res.Values, len(reqs))
	for i := range res.Values {
		res.Values[i] = 0
	}
	res.Metrics = Metrics{
		PhaseIterations: res.Metrics.PhaseIterations[:0],
		LiveTrace:       res.Metrics.LiveTrace[:0],
		Unfinished:      res.Metrics.Unfinished[:0],
		Stranded:        res.Metrics.Stranded[:0],
	}

	clusterSize := sys.cfg.ClusterSize
	numClusters := (len(reqs) + clusterSize - 1) / clusterSize
	if numClusters == 0 {
		sys.observeBatch(reqs, res)
		return nil
	}
	procs := numClusters * clusterSize

	machine, geo, err := sys.obtainMachine(procs)
	if err != nil {
		return err
	}
	maxIters := sys.cfg.MaxIterationsPerPhase
	if maxIters == 0 {
		maxIters = 8*int(m.NumModules()) + 64
	}

	// Resolve every copy address up front (the per-processor O(log N)
	// address computation of Section 4 — an O(1) table read per copy when a
	// compiled resolver is attached).
	copies := sys.resolveCopies(reqs)
	nCopies := m.Copies()

	remaining := grow(sys.remaining, len(reqs)) // copies still needed per request
	bestTS := grow(sys.bestTS, len(reqs))
	bestVal := grow(sys.bestVal, len(reqs))
	sys.remaining, sys.bestTS, sys.bestVal = remaining, bestTS, bestVal

	mreqs := grow(sys.mreqs, geo)
	grant := grow(sys.grant, geo)
	sys.mreqs, sys.grant = mreqs, grant
	for p := range mreqs {
		mreqs[p] = mpc.Idle
	}

	// Fault layer: fv is non-nil only when the interconnect exposes a fault
	// view (mpc.Failing) and the copy bitmasks fit a word; every fault hook
	// below is gated on it, so healthy systems pay nothing.
	fv := sys.fv
	if fv != nil && nCopies > 64 {
		fv = nil
	}
	faultEpoch := uint64(0)
	if fv != nil {
		sys.liveBids = grow(sys.liveBids, len(reqs))
		sys.usedMask = grow(sys.usedMask, len(reqs))
		sys.touchedC = grow(sys.touchedC, len(reqs))
		sys.stalled = grow(sys.stalled, len(reqs))
		sys.retry = sys.retry[:0]
		faultEpoch = fv.FaultEpoch()
	}

	res.Metrics.Phases = clusterSize
	tasks := sys.tasks
	for phase := 0; phase < clusterSize; phase++ {
		// Build the task list: cluster i serves request i*clusterSize+phase;
		// member j bids for copy j (members beyond the in-flight copy count
		// idle). Under a fault view, selection routes around failed modules
		// (PolicyAllCancel) or detects unreachable quorums up front.
		tasks = tasks[:0]
		for i := 0; i < numClusters; i++ {
			r := i*clusterSize + phase
			if r >= len(reqs) {
				continue
			}
			remaining[r] = sys.quorum(reqs[r].Op)
			bestTS[r] = 0
			bestVal[r] = 0
			inFlight := nCopies
			if sys.cfg.Policy == PolicyFixedMajority {
				inFlight = int(remaining[r])
			}
			if inFlight > clusterSize {
				inFlight = clusterSize
			}
			if fv != nil {
				tasks = sys.selectLive(fv, tasks, reqs, copies, nCopies, r, i*clusterSize, inFlight)
				continue
			}
			for j := 0; j < inFlight; j++ {
				tasks = append(tasks, taskRef{proc: int32(i*clusterSize + j), a: copies[r*nCopies+j]})
			}
		}
		iters := 0
		var live []int
		for len(tasks) > 0 && iters < maxIters {
			if fv != nil {
				if e := fv.FaultEpoch(); e != faultEpoch {
					// The fault set changed mid-phase: drop bids at newly
					// failed modules, re-select spare live copies, and shed
					// requests that can no longer reach a quorum.
					faultEpoch = e
					tasks = sys.refilterTasks(fv, tasks, reqs, copies, nCopies, res)
					if len(tasks) == 0 {
						break
					}
				}
			}
			for _, t := range tasks {
				mreqs[t.proc] = t.a.module
			}
			if sys.rs != nil {
				sys.stageTasks(reqs, tasks)
			}
			machine.Round(mreqs, grant)
			iters++
			res.Metrics.IssuedBids += len(tasks)
			next := tasks[:0]
			for _, t := range tasks {
				mreqs[t.proc] = mpc.Idle
				r := t.a.req
				if !grant[t.proc] {
					if remaining[r] > 0 {
						next = append(next, t)
					}
					continue
				}
				res.Metrics.GrantedBids++
				if remaining[r] <= 0 {
					// Granted after the quorum already completed; a
					// cancelled bid whose result is unused.
					continue
				}
				sys.touch(reqs[r], t, r, bestTS, bestVal)
				res.Metrics.CopyAccesses++
				remaining[r]--
				if fv != nil {
					sys.touchedC[r] |= 1 << uint(t.a.cpy)
					// The granted bid left the task list: keep liveBids an
					// exact in-flight count so refilterTasks' shed check
					// (liveBids < remaining) stays tight for partially
					// granted requests.
					sys.liveBids[r]--
				}
			}
			tasks = next
			if sys.cfg.TraceLive {
				cnt := 0
				for i := 0; i < numClusters; i++ {
					r := i*clusterSize + phase
					if r < len(reqs) && remaining[r] > 0 {
						cnt++
					}
				}
				live = append(live, cnt)
			}
		}
		if len(tasks) > 0 {
			// The iteration bound tripped: some variables could not reach
			// their quorum (only possible when modules are failing). Clear
			// the leftover request slots and record the casualties — queued
			// for a retry pass when a fault view is available, reported as
			// unfinished otherwise.
			for _, t := range tasks {
				mreqs[t.proc] = mpc.Idle
			}
			if fv != nil {
				for _, t := range tasks {
					sys.queueRetry(t.a.req)
				}
			} else {
				seenReq := make(map[int32]bool)
				for _, t := range tasks {
					if remaining[t.a.req] > 0 && !seenReq[t.a.req] {
						seenReq[t.a.req] = true
						res.Metrics.Unfinished = append(res.Metrics.Unfinished, int(t.a.req))
					}
				}
			}
		}
		// Commit read results for this phase.
		for i := 0; i < numClusters; i++ {
			r := i*clusterSize + phase
			if r < len(reqs) && reqs[r].Op == Read && remaining[r] <= 0 {
				res.Values[r] = bestVal[r]
			}
		}
		res.Metrics.PhaseIterations = append(res.Metrics.PhaseIterations, iters)
		if iters > res.Metrics.MaxIterations {
			res.Metrics.MaxIterations = iters
		}
		res.Metrics.TotalRounds += iters
		if sys.cfg.TraceLive {
			res.Metrics.LiveTrace = append(res.Metrics.LiveTrace, live)
		}
	}
	sys.tasks = tasks[:0]
	if fv != nil && len(sys.retry) > 0 {
		sys.retryStranded(fv, machine, geo, reqs, res, maxIters)
	}
	res.Metrics.InterconnectCost = machine.Cost() - sys.machineCost
	sys.observeBatch(reqs, res)
	if sys.rv != nil && sys.cfg.RepairBudget >= 0 && sys.rv.RepairCount() > 0 {
		// Per-flush repair budget: one bounded background-repair step rides
		// on every batch, so sustained traffic still drains the backlog.
		// Runs after InterconnectCost is taken — repair rounds are accounted
		// through obs.RepairEvent, not the batch's books.
		sys.pumpRepair(machine, geo, res)
	}
	if len(res.Metrics.Stranded) > 0 {
		return fmt.Errorf("%w: %d of %d requests could not reach a quorum (%d below their live majority)",
			ErrQuorumUnreachable, len(res.Metrics.Unfinished), len(reqs), len(res.Metrics.Stranded))
	}
	if len(res.Metrics.Unfinished) > 0 {
		return fmt.Errorf("%w: %d of %d requests could not reach a quorum",
			ErrIncomplete, len(res.Metrics.Unfinished), len(reqs))
	}
	return nil
}

type taskRef struct {
	proc int32
	a    assignment
}

// observeBatch reports the finished batch to the configured observer, if
// any. The event is assembled by value, so the happy path stays
// allocation-free.
func (sys *System) observeBatch(reqs []Request, res *Result) {
	if sys.cfg.Observer == nil {
		return
	}
	failed := 0
	if sys.fv != nil {
		failed = sys.fv.FaultCount()
	}
	sys.cfg.Observer.ObserveBatch(obs.BatchEvent{
		Requests:      len(reqs),
		Phases:        res.Metrics.Phases,
		Rounds:        res.Metrics.TotalRounds,
		MaxPhi:        res.Metrics.MaxIterations,
		CopyAccesses:  res.Metrics.CopyAccesses,
		GrantedBids:   res.Metrics.GrantedBids,
		IssuedBids:    res.Metrics.IssuedBids,
		Unfinished:    len(res.Metrics.Unfinished),
		RetriedBids:   res.Metrics.RetriedBids,
		Stranded:      len(res.Metrics.Stranded),
		FailedModules: failed,
	})
}

// obtainMachine returns a machine with room for at least procs bidders,
// reusing the previous batch's machine whenever its geometry is large
// enough: a batch smaller than the machine simply leaves the tail
// processors idle. Variable-size batch streams — the frontend flushes a
// different distinct-variable count every time — would otherwise rebuild
// the machine (an O(N) winner table plus, for the parallel engine, a worker
// pool) on every flush, which dominates the per-batch cost for small
// batches. When the machine must grow, the geometry is rounded up to the
// next power of two (capped at the full-batch maximum) so a stream of
// creeping batch sizes settles after O(log N) rebuilds. Interconnect state —
// round counters, network queues — carries over across reuse; per-batch
// cost is taken as a delta against machineCost. A replaced machine is
// closed so its worker pool, if any, is released deterministically.
func (sys *System) obtainMachine(procs int) (Machine, int, error) {
	if sys.machine != nil && sys.machineProcs >= procs {
		sys.machineCost = sys.machine.Cost()
		return sys.machine, sys.machineProcs, nil
	}
	cluster := sys.cfg.ClusterSize
	maxProcs := (int(sys.Mapper.NumModules()) + cluster - 1) / cluster * cluster
	geo := 1
	for geo < procs {
		geo <<= 1
	}
	if geo > maxProcs {
		geo = maxProcs
	}
	if geo < procs {
		geo = procs
	}
	mcfg := mpc.Config{
		Procs:    geo,
		Modules:  int(sys.Mapper.NumModules()),
		Arb:      sys.cfg.Arb,
		Seed:     sys.cfg.Seed,
		Parallel: sys.cfg.Parallel,
		Workers:  sys.cfg.Workers,
		Recorder: sys.cfg.Recorder,
	}
	var machine Machine
	var err error
	switch {
	case sys.cfg.NewMachine != nil:
		machine, err = sys.cfg.NewMachine(mcfg)
	case sys.cfg.Transport != nil:
		machine, err = sys.cfg.Transport.NewMachine(mcfg)
	default:
		machine, err = mpc.New(mcfg)
	}
	if err != nil {
		return nil, 0, err
	}
	if c, ok := sys.machine.(interface{ Close() }); ok {
		c.Close()
	}
	sys.machine = machine
	sys.machineProcs = geo
	sys.machineCost = machine.Cost()
	sys.fv, _ = machine.(FaultView)
	sys.rs, _ = machine.(RemoteStore)
	sys.rv, _ = machine.(RepairView)
	sys.resetRepair()
	return machine, geo, nil
}

// resolveCopies computes the (module, address) of every copy of every
// requested variable into the reused scratch buffer — from the compiled
// table when a resolver is attached, through the hot-coset cache under the
// hybrid strategy, and through the mapper's batched bulk contract otherwise.
func (sys *System) resolveCopies(reqs []Request) []assignment {
	nCopies := sys.Mapper.Copies()
	out := grow(sys.copies, len(reqs)*nCopies)
	sys.copies = out
	switch {
	case sys.resolver != nil:
		for r := range reqs {
			row := sys.resolver.row(reqs[r].Var)
			base := r * nCopies
			for c := 0; c < nCopies; c++ {
				out[base+c] = assignment{req: int32(r), cpy: int16(c), module: row[c].module, addr: row[c].addr}
			}
		}
	case sys.hot != nil:
		for r := range reqs {
			v := reqs[r].Var
			row := sys.hot.lookup(v)
			if row == nil {
				row = sys.hot.fill(sys.bulkSrc, v)
			}
			base := r * nCopies
			for c := 0; c < nCopies; c++ {
				out[base+c] = assignment{req: int32(r), cpy: int16(c), module: row[c].module, addr: row[c].addr}
			}
		}
	default:
		// Live batched resolution: gather the variable vector, resolve it in
		// one bulk call (vectorized kernels for BulkMappers), expand into
		// assignments. All buffers are reused, so the steady state is
		// allocation-free.
		vars := grow(sys.varsBuf, len(reqs))
		sys.varsBuf = vars
		for i := range reqs {
			vars[i] = reqs[i].Var
		}
		mods, addrs := AppendCopyAddrs(sys.bulkSrc, sys.bulkMods[:0], sys.bulkAddrs[:0], vars, nCopies)
		sys.bulkMods, sys.bulkAddrs = mods, addrs
		for r := range reqs {
			base := r * nCopies
			for c := 0; c < nCopies; c++ {
				out[base+c] = assignment{req: int32(r), cpy: int16(c), module: int64(mods[base+c]), addr: addrs[base+c]}
			}
		}
	}
	return out
}

// stageTasks hands each task's access payload to the remote store before a
// round: the remote module applies the winning bid's operation itself, so
// the payload must travel with the bid.
func (sys *System) stageTasks(reqs []Request, tasks []taskRef) {
	for _, t := range tasks {
		req := reqs[t.a.req]
		sys.rs.StageBid(t.proc, t.a.addr, req.Op, req.Value, sys.ts)
	}
}

// touch performs the physical copy access for a granted bid — against the
// local store, or by consuming the remote module's reply when the transport
// keeps the cells on the far side (the remote already applied writes).
func (sys *System) touch(req Request, t taskRef, r int32, bestTS, bestVal []uint64) {
	if sys.rs != nil {
		if req.Op == Read {
			val, ts := sys.rs.GrantData(t.proc)
			if ts >= bestTS[r] {
				bestTS[r] = ts
				bestVal[r] = val
			}
		}
		return
	}
	switch req.Op {
	case Write:
		sys.store.put(t.a.addr, cell{val: req.Value, ts: sys.ts})
	case Read:
		c := sys.store.get(t.a.addr)
		// Quorum rule: among the copies read, the one with the newest
		// timestamp holds the variable's current value. ts is compared with
		// >= so the zero-initialized state is well-defined too.
		if c.ts >= bestTS[r] {
			bestTS[r] = c.ts
			bestVal[r] = c.val
		}
	}
}

// convert builds the wrapper scratch request slice for vars. vals is nil
// for reads.
func (sys *System) convert(vars []uint64, vals []uint64, op Op) []Request {
	reqs := grow(sys.convReqs, len(vars))
	sys.convReqs = reqs
	for i, v := range vars {
		r := Request{Var: v, Op: op}
		if vals != nil {
			r.Value = vals[i]
		}
		reqs[i] = r
	}
	return reqs
}

// ReadBatch is a convenience wrapper issuing a read-only batch through the
// allocation-free AccessInto path. On ErrIncomplete the partial values and
// metrics are still returned.
//
// The returned values and metrics alias buffers the system reuses: they are
// valid until the next batch call (Access, AccessInto, ReadBatch,
// WriteBatch) on this system. Copy them to hold them longer.
func (sys *System) ReadBatch(vars []uint64) ([]uint64, *Metrics, error) {
	reqs := sys.convert(vars, nil, Read)
	err := sys.AccessInto(reqs, &sys.convRes)
	if err != nil && !errors.Is(err, ErrIncomplete) {
		return nil, nil, err
	}
	return sys.convRes.Values, &sys.convRes.Metrics, err
}

// WriteBatch is a convenience wrapper issuing a write-only batch through
// the allocation-free AccessInto path. The returned metrics alias a reused
// buffer: valid until the next batch call on this system.
func (sys *System) WriteBatch(vars []uint64, vals []uint64) (*Metrics, error) {
	if len(vars) != len(vals) {
		return nil, fmt.Errorf("protocol: %d vars but %d values", len(vars), len(vals))
	}
	reqs := sys.convert(vars, vals, Write)
	err := sys.AccessInto(reqs, &sys.convRes)
	if err != nil && !errors.Is(err, ErrIncomplete) {
		return nil, err
	}
	return &sys.convRes.Metrics, err
}

// CopyState reports, for invariant tests, the timestamps of all copies of a
// variable.
func (sys *System) CopyState(v uint64) []uint64 {
	out := make([]uint64, sys.Mapper.Copies())
	for c := range out {
		_, addr := sys.Mapper.CopyAddr(v, c)
		out[c] = sys.store.get(addr).ts
	}
	return out
}
