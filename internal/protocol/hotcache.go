package protocol

import (
	"fmt"
	"sync/atomic"
)

// DefaultHotCacheSlots is the slot count NewHotCache uses when the caller
// passes 0: 4096 rows ≈ 64 KiB of cached assignments at q+1 = 3 — small
// enough to live in L2, large enough that Zipf-like traffic resolves almost
// entirely from cache.
const DefaultHotCacheSlots = 1 << 12

// HotCache is the bounded hot-coset cache behind ResolverHybrid: a fixed
// power-of-two array of slots, each holding an atomically published
// immutable row (the resolved copies of one variable). Lookups are
// lock-free and a miss resolves through the mapper's bulk path and publishes
// the row, overwriting whatever previously hashed to the slot (direct-mapped
// eviction). Zipf-like traffic concentrates on a tiny working set, so a
// small cache converges to all-hits — with resident memory bounded by the
// slot count, independent of M, unlike the compiled table.
//
// A HotCache is safe for concurrent use and is meant to be shared, exactly
// like a CompiledResolver: any number of Systems (all shards of a sharded
// service, say) over mappers with identical geometry may reference one cache
// via Config.HotCache.
type HotCache struct {
	mask      uint64
	copies    int
	vars      uint64
	modules   uint64
	addrSpace uint64
	slots     []atomic.Pointer[hotRow]

	hits   atomic.Uint64
	misses atomic.Uint64
}

// hotRow is one published cache entry: the variable it resolves and its
// dense copy row. Rows are immutable after publication.
type hotRow struct {
	v   uint64
	row []packedAssignment
}

// NewHotCache builds a cache for mappers with m's geometry. slots is rounded
// up to a power of two; 0 means DefaultHotCacheSlots.
func NewHotCache(m Mapper, slots int) *HotCache {
	if slots <= 0 {
		slots = DefaultHotCacheSlots
	}
	n := 1
	for n < slots {
		n <<= 1
	}
	return &HotCache{
		mask:      uint64(n - 1),
		copies:    m.Copies(),
		vars:      m.NumVars(),
		modules:   m.NumModules(),
		addrSpace: m.AddrSpace(),
		slots:     make([]atomic.Pointer[hotRow], n),
	}
}

// compatibleWith checks that m has the geometry the cache was built for
// (used when Config.HotCache pairs a shared cache with a System's Mapper).
func (h *HotCache) compatibleWith(m Mapper) error {
	if m.NumVars() != h.vars || m.Copies() != h.copies ||
		m.NumModules() != h.modules || m.AddrSpace() != h.addrSpace {
		return fmt.Errorf("protocol: hot cache built for M=%d copies=%d does not match mapper %s (M=%d, copies=%d)",
			h.vars, h.copies, m.Name(), m.NumVars(), m.Copies())
	}
	return nil
}

// mix is splitmix64's finalizer: slot selection must scatter adjacent
// variable indices (range-partitioned shards hand each System a contiguous
// stripe) across the whole slot array.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// lookup returns v's cached row, or nil on miss (wrong resident or empty
// slot).
func (h *HotCache) lookup(v uint64) []packedAssignment {
	if r := h.slots[mix(v)&h.mask].Load(); r != nil && r.v == v {
		h.hits.Add(1)
		return r.row
	}
	return nil
}

// fill resolves v through m's bulk path and publishes the row. The miss path
// allocates the published row (misses are the amortized-out cold tail;
// steady-state traffic resolves in lookup without allocating). Callers with a
// vector of variables should use AppendCopyAddrs instead, which batches a
// whole block's misses into one bulk resolution.
func (h *HotCache) fill(m Mapper, v uint64) []packedAssignment {
	h.misses.Add(1)
	var vb [1]uint64
	var mb, ab [64]uint64
	vb[0] = v
	var mods, addrs []uint64
	if h.copies <= len(mb) {
		mods, addrs = AppendCopyAddrs(m, mb[:0], ab[:0], vb[:], h.copies)
	} else {
		mods, addrs = AppendCopyAddrs(m, nil, nil, vb[:], h.copies)
	}
	row := make([]packedAssignment, h.copies)
	for c := range row {
		row[c] = packedAssignment{module: int64(mods[c]), addr: addrs[c]}
	}
	h.slots[mix(v)&h.mask].Store(&hotRow{v: v, row: row})
	return row
}

// AppendCopyAddrs resolves vars through the cache — published row on a hit,
// m's bulk path plus publication on a miss — appending every variable's full
// copy row in vars-major, copy-minor order. This is the cache-fronted
// counterpart of the package-level AppendCopyAddrs, shared by the hybrid
// strategy's benchmark cells; m must have the geometry the cache was built
// for.
//
// Misses are batched: within each block, missing variables are collected and
// resolved through one bulk call, so the bulk kernel's fixed scratch is paid
// once per block rather than once per miss (the difference between a hybrid
// that beats per-op resolution and one that loses to it at realistic hit
// rates). Only the published rows of missed variables allocate; an all-hit
// pass appends without allocating.
func (h *HotCache) AppendCopyAddrs(m Mapper, mods, addrs []uint64, vars []uint64) ([]uint64, []uint64) {
	cp := h.copies
	blockVars := bulkMaxVars
	if blockVars*cp > bulkMaxOps {
		blockVars = bulkMaxOps / cp
	}
	if blockVars < 1 {
		blockVars = 1 // cp > bulkMaxOps: degenerate, bulk scratch reallocs
	}
	var missV [bulkMaxVars]uint64
	var missAt [bulkMaxVars]int
	var mb, ab [bulkMaxOps]uint64
	for base := 0; base < len(vars); base += blockVars {
		blk := vars[base:]
		if len(blk) > blockVars {
			blk = blk[:blockVars]
		}
		// Extend the outputs to the block's full row span up front so hit and
		// miss rows can land at their final (vars-major) positions directly.
		out := len(mods)
		for range blk {
			for c := 0; c < cp; c++ {
				mods = append(mods, 0)
				addrs = append(addrs, 0)
			}
		}
		nm := 0
		for i, v := range blk {
			if row := h.lookup(v); row != nil {
				o := out + i*cp
				for c := range row {
					mods[o+c] = uint64(row[c].module)
					addrs[o+c] = row[c].addr
				}
			} else {
				missV[nm] = v
				missAt[nm] = out + i*cp
				nm++
			}
		}
		if nm == 0 {
			continue
		}
		h.misses.Add(uint64(nm))
		bmods, baddrs := AppendCopyAddrs(m, mb[:0], ab[:0], missV[:nm], cp)
		// Slab-allocate the block's published rows and headers: two
		// allocations per block instead of two per miss keeps the allocator
		// (and GC assists against a large live heap) off the miss path even
		// when a huge variable space holds the hit rate down. A resident row
		// pins its block's slab until every sibling row is evicted, so true
		// retention can exceed ResidentBytes by up to the block size; the
		// cache stays bounded, just with a coarser constant.
		slab := make([]packedAssignment, nm*cp)
		hdrs := make([]hotRow, nm)
		for k := 0; k < nm; k++ {
			row := slab[k*cp : (k+1)*cp : (k+1)*cp]
			o := missAt[k]
			for c := 0; c < cp; c++ {
				mod, ad := bmods[k*cp+c], baddrs[k*cp+c]
				row[c] = packedAssignment{module: int64(mod), addr: ad}
				mods[o+c] = mod
				addrs[o+c] = ad
			}
			hdrs[k] = hotRow{v: missV[k], row: row}
			h.slots[mix(missV[k])&h.mask].Store(&hdrs[k])
		}
	}
	return mods, addrs
}

// Stats reports cumulative lookup hits and misses across all sharing
// Systems.
func (h *HotCache) Stats() (hits, misses uint64) {
	return h.hits.Load(), h.misses.Load()
}

// Slots returns the (power-of-two) slot count.
func (h *HotCache) Slots() int { return len(h.slots) }

// ResidentBytes reports the cache's current memory footprint: the slot
// array plus every published row (entry header, slice header, assignments).
func (h *HotCache) ResidentBytes() uint64 {
	total := uint64(len(h.slots)) * 8
	for i := range h.slots {
		if h.slots[i].Load() != nil {
			total += 8 + 24 + uint64(h.copies)*16
		}
	}
	return total
}
