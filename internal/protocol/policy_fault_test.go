package protocol

import (
	"errors"
	"testing"

	"detshmem/internal/core"
	"detshmem/internal/mpc"
)

// TestPolicyFaultToleranceContrast documents a consequence of the paper's
// all-copies-in-flight rule that the fixed-quorum ablation loses: under
// PolicyAllCancel, a read can assemble its majority from ANY q/2+1 live
// copies, so one failed module is always masked; under PolicyFixedMajority
// the quorum choice is pinned to the first q/2+1 copies, and any variable
// whose pinned set touches the failed module is stranded — redundancy
// without routing freedom is not fault tolerance.
func TestPolicyFaultToleranceContrast(t *testing.T) {
	s, err := core.New(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := s.NewIndexer()
	if err != nil {
		t.Fatal(err)
	}
	// Find a variable whose copy 0 (in the pinned majority {0,1}) lives in
	// some module f; fail exactly that module.
	victim := uint64(7)
	f, _ := s.CopyLocation(idx.Mat(victim), 0)

	mk := func(policy CopyPolicy) *System {
		sys, err := NewSystem(s, idx, Config{
			Policy:                policy,
			MaxIterationsPerPhase: 512,
			NewMachine: func(cfg mpc.Config) (Machine, error) {
				return mpc.NewFailing(cfg, []uint64{f})
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}

	// The paper's policy completes: write and read back through the two
	// surviving copies.
	all := mk(PolicyAllCancel)
	if _, err := all.WriteBatch([]uint64{victim}, []uint64{55}); err != nil {
		t.Fatalf("all-cancel write under failure: %v", err)
	}
	got, _, err := all.ReadBatch([]uint64{victim})
	if err != nil || got[0] != 55 {
		t.Fatalf("all-cancel read under failure: %v %v", got, err)
	}

	// The pinned-quorum ablation strands the victim (its fixed majority
	// includes the failed module and it has no slack bid to shift to).
	fixed := mk(PolicyFixedMajority)
	met, err := fixed.WriteBatch([]uint64{victim}, []uint64{66})
	if !errors.Is(err, ErrIncomplete) {
		t.Fatalf("fixed-majority should strand the victim, got err=%v", err)
	}
	if len(met.Unfinished) != 1 || met.Unfinished[0] != 0 {
		t.Fatalf("unexpected unfinished set: %v", met.Unfinished)
	}
}
