package protocol

import (
	"detshmem/internal/mpc"
	"detshmem/internal/obs"
)

// RepairView is the repair side of a dynamic fault model. An interconnect
// whose fault set distinguishes "recovered but not yet rebuilt" from "live"
// (mpc.Failing over a FaultSet with RecoverPending, netmpc.Client after a
// generation-mismatch reconnect) exposes it so the protocol can (a) bar
// repairing modules from read quorums — their stores may be stale or reborn
// empty — while still counting them toward write quorums, and (b) drive the
// background sweep that rebuilds their copies from surviving majorities and
// certifies them back to fully live.
//
// obtainMachine type-asserts the machine against this interface, exactly
// like FaultView; machines without a repair lifecycle don't implement it and
// pay nothing. All methods must be safe to call concurrently with mutation.
type RepairView interface {
	// ModuleRepairing reports whether module m is under repair right now.
	ModuleRepairing(m int64) bool
	// RepairGeneration returns m's current repair generation (0 when m is
	// not repairing). A sweep captures the generation at its start;
	// certification with a stale generation fails, which fences a sweep
	// against a module wiped again while the sweep ran.
	RepairGeneration(m uint64) uint64
	// RepairCount returns the number of modules under repair.
	RepairCount() int
	// AppendRepairing appends the repairing module ids to buf.
	AppendRepairing(buf []uint64) []uint64
	// CertifyRepair completes m's repair if gen is still current, making the
	// module readable again. Returns whether the certification took effect.
	CertifyRepair(m, gen uint64) bool
}

// DefaultRepairBudget is the number of variables one repair step scans when
// Config.RepairBudget is zero: large enough that a sweep over a typical test
// address space finishes in a few steps, small enough that a step stays a
// bounded slice of a flush.
const DefaultRepairBudget = 512

// repairMetrics accumulates one step's repair work. The caller folds it
// into batch metrics (the per-flush pump) or reports it straight to the
// observer (the idle-loop pump); rounds/issued/granted flow to the books
// through obs.RepairEvent only, never through Metrics.TotalRounds, so the
// trace-vs-metrics crosscheck stays exact on both paths.
type repairMetrics struct {
	rounds    int // MPC rounds driven by repair waves
	issued    int // repair bids handed to the interconnect
	granted   int // repair bids granted
	repaired  int // target copies rebuilt (put-if-newer writes granted)
	salvaged  int // variables rebuilt without a sound source majority
	certified int // modules certified back to fully live
}

// repairVar is one variable being rebuilt in the current wave.
type repairVar struct {
	v       uint64
	bestTS  uint64
	bestVal uint64
	reads   int32 // granted reads so far
	need    int32 // grants required for a sound rebuild (the read quorum)
	salvage bool  // fewer than need live non-repairing sources exist
	dirty   bool  // rebuild unsound or incomplete; blocks certification
}

// repairSweep is the scheduler state for the background rebuild: one pass of
// the cursor over the variable space, rebuilding every variable with a copy
// on a module of the sweep set (the repairing modules and their generations,
// snapshotted when the sweep starts). Modules certified at sweep end are the
// ones whose every variable was rebuilt soundly and whose generation never
// moved; everything else waits for the next sweep.
type repairSweep struct {
	active bool
	gens   map[int64]uint64 // sweep set: module -> captured generation
	dirty  map[int64]bool   // modules with an unsoundly rebuilt variable
	cursor uint64           // next variable the sweep will scan
	// certified records whether the current sweep certified anything; a
	// completed sweep that certified nothing while modules remain repairing
	// pauses the scheduler until the fault epoch moves, so an unrepairable
	// state (sources failed) cannot spin the idle pump. The pause latches
	// only when the fault epoch never moved during the sweep (startEpoch):
	// a sweep that raced a churning fault set may have gone dirty on purely
	// transient failures or re-wipes, and the state it observed says nothing
	// about whether a fresh sweep over the settled fault set would succeed —
	// pausing on it would strand the backlog forever once the churn stops.
	certified  bool
	paused     bool
	pauseEpoch uint64
	startEpoch uint64

	modBuf []uint64
	vars   []repairVar
	tasks  []taskRef
}

// RepairBacklog returns the number of modules awaiting repair certification
// on this system's interconnect (0 when the machine has no repair
// lifecycle). Shard dispatchers poll it to decide whether idle cycles
// should pump RepairStep.
func (sys *System) RepairBacklog() int {
	if sys.rv == nil {
		return 0
	}
	return sys.rv.RepairCount()
}

// RepairStep performs one budget-bounded chunk of background repair outside
// any batch: scanning up to Config.RepairBudget variables, rebuilding those
// with copies on repairing modules, and certifying modules when their sweep
// completes. It reports whether it made progress; callers loop while true
// and back off when false (the scheduler pauses itself when the remaining
// backlog is unrepairable until the fault set changes). Must be called from
// the goroutine that owns the system (the same discipline as AccessInto).
func (sys *System) RepairStep() bool {
	if sys.rv == nil && sys.machine == nil {
		// No machine yet (no batch has run): build one so a freshly started
		// replica can repair before serving.
		if _, _, err := sys.obtainMachine(sys.cfg.ClusterSize); err != nil {
			return false
		}
	}
	machine, geo := sys.machine, sys.machineProcs
	if machine == nil {
		return false
	}
	var rm repairMetrics
	did := sys.repairStep(machine, geo, &rm)
	sys.reportRepair(&rm)
	return did
}

// pumpRepair is the per-batch repair budget: AccessInto calls it after the
// batch's own work (and after InterconnectCost is taken), so every flush
// moves the backlog by one bounded step even under sustained traffic. The
// step's work is folded into the batch's Repair* metrics.
func (sys *System) pumpRepair(machine Machine, geo int, res *Result) {
	var rm repairMetrics
	sys.repairStep(machine, geo, &rm)
	res.Metrics.RepairedCopies += rm.repaired
	res.Metrics.RepairSalvaged += rm.salvaged
	res.Metrics.RepairRounds += rm.rounds
	res.Metrics.RepairCertified += rm.certified
	sys.reportRepair(&rm)
}

// reportRepair publishes one step's work to the configured repair observer.
func (sys *System) reportRepair(rm *repairMetrics) {
	if sys.ro == nil || (rm.rounds == 0 && rm.certified == 0) {
		return
	}
	sys.ro.ObserveRepair(obs.RepairEvent{
		Copies:    rm.repaired,
		Salvaged:  rm.salvaged,
		Rounds:    rm.rounds,
		Issued:    rm.issued,
		Granted:   rm.granted,
		Certified: rm.certified,
		Backlog:   sys.rv.RepairCount(),
	})
}

// resetRepair drops all sweep state; called when the machine is replaced
// (the captured views would be stale).
func (sys *System) resetRepair() {
	sys.rep.active = false
	sys.rep.paused = false
}

// repairStep runs one chunk of the sweep on the given machine. Returns
// whether any work was attempted.
func (sys *System) repairStep(machine Machine, geo int, rm *repairMetrics) bool {
	rv, fv := sys.rv, sys.fv
	if rv == nil || fv == nil {
		return false
	}
	rep := &sys.rep
	if rv.RepairCount() == 0 {
		rep.active = false
		rep.paused = false
		return false
	}
	if rep.paused {
		if fv.FaultEpoch() == rep.pauseEpoch {
			return false
		}
		rep.paused = false
	}
	if !rep.active {
		rep.modBuf = rv.AppendRepairing(rep.modBuf[:0])
		if len(rep.modBuf) == 0 {
			return false
		}
		if rep.gens == nil {
			rep.gens = make(map[int64]uint64)
			rep.dirty = make(map[int64]bool)
		}
		clear(rep.gens)
		clear(rep.dirty)
		for _, m := range rep.modBuf {
			if g := rv.RepairGeneration(m); g != 0 {
				rep.gens[int64(m)] = g
			}
		}
		rep.cursor = 0
		rep.certified = false
		rep.startEpoch = fv.FaultEpoch()
		rep.active = true
	}
	budget := uint64(sys.cfg.RepairBudget)
	if budget == 0 {
		budget = DefaultRepairBudget
	}
	nv := sys.Mapper.NumVars()
	end := rep.cursor + budget
	if end > nv || end < rep.cursor {
		end = nv
	}
	sys.scanRepairRange(machine, geo, rep.cursor, end, rm)
	rep.cursor = end
	if rep.cursor >= nv {
		for m, gen := range rep.gens {
			if rep.dirty[m] {
				continue
			}
			if rv.CertifyRepair(uint64(m), gen) {
				rm.certified++
				rep.certified = true
			}
		}
		rep.active = false
		if !rep.certified && rv.RepairCount() > 0 {
			if e := fv.FaultEpoch(); e == rep.startEpoch {
				rep.paused = true
				rep.pauseEpoch = e
			}
		}
	}
	return true
}

// scanRepairRange scans variables [lo, hi), grouping those with a copy on a
// sweep-set module into bounded waves.
func (sys *System) scanRepairRange(machine Machine, geo int, lo, hi uint64, rm *repairMetrics) {
	rep := &sys.rep
	m := sys.Mapper
	nCopies := m.Copies()
	group := geo / nCopies
	if group < 1 {
		group = 1
	}
	vars := rep.vars[:0]
	for v := lo; v < hi; v++ {
		hasTarget := false
		for c := 0; c < nCopies; c++ {
			mod, _ := m.CopyAddr(v, c)
			if _, ok := rep.gens[int64(mod)]; ok {
				hasTarget = true
				break
			}
		}
		if !hasTarget {
			continue
		}
		vars = append(vars, repairVar{v: v})
		if len(vars) == group {
			sys.repairWave(machine, geo, vars, rm)
			vars = vars[:0]
		}
	}
	if len(vars) > 0 {
		sys.repairWave(machine, geo, vars, rm)
	}
	rep.vars = vars[:0]
}

// repairWave rebuilds one group of variables: a read wave collecting the
// freshest surviving (value, timestamp) per variable, then a write wave
// installing it onto the repairing copies with put-if-newer semantics (a
// concurrent normal write with a newer timestamp always wins).
//
// Soundness rule: a rebuild is sound when it read a full read quorum of live
// non-repairing copies — any read quorum of the c copies intersects every
// write quorum, and a non-repairing copy's timestamp is trustworthy, so the
// max-timestamp value is the variable's latest committed write. When fewer
// sources exist the wave salvages: it reads every live copy including the
// repairing targets themselves and installs the best surviving value. A
// salvage is still certifiable when no copy was unreadable (a wiped copy
// contributes nothing, but nothing readable was ignored); if a failed module
// held a copy we could not read, the variable's freshest value may be
// sitting in that crashed store, so the targets are marked dirty and their
// modules stay uncertified until the fault set changes.
func (sys *System) repairWave(machine Machine, geo int, vars []repairVar, rm *repairMetrics) {
	rep := &sys.rep
	fv, rvw := sys.fv, sys.rv
	m := sys.Mapper
	nCopies := m.Copies()
	rq := int32(m.ReadQuorum())

	mreqs := grow(sys.mreqs, geo)
	grant := grow(sys.grant, geo)
	sys.mreqs, sys.grant = mreqs, grant
	for i := range mreqs {
		mreqs[i] = mpc.Idle
	}
	maxIters := sys.cfg.MaxIterationsPerPhase
	if maxIters == 0 {
		maxIters = 8*int(m.NumModules()) + 64
	}

	// Classify copies and build the read task list.
	tasks := rep.tasks[:0]
	p := int32(0)
	for i := range vars {
		w := &vars[i]
		w.need = rq
		sources, failed := int32(0), 0
		for c := 0; c < nCopies; c++ {
			mod, _ := m.CopyAddr(w.v, c)
			switch {
			case fv.ModuleFailed(int64(mod)):
				failed++
			case !rvw.ModuleRepairing(int64(mod)):
				sources++
			}
		}
		w.salvage = sources < rq
		if w.salvage && failed > 0 {
			w.dirty = true
		}
		for c := 0; c < nCopies; c++ {
			mod, addr := m.CopyAddr(w.v, c)
			if fv.ModuleFailed(int64(mod)) {
				continue
			}
			if !w.salvage && rvw.ModuleRepairing(int64(mod)) {
				continue
			}
			tasks = append(tasks, taskRef{proc: p, a: assignment{req: int32(i), cpy: int16(c), module: int64(mod), addr: addr}})
			p++
		}
	}

	// Read wave.
	tasks = sys.driveRepairRound(machine, tasks, vars, rm, maxIters, true)
	for _, t := range tasks {
		vars[t.a.req].dirty = true
	}
	for i := range vars {
		w := &vars[i]
		if !w.salvage && w.reads < w.need {
			w.dirty = true
		}
		if w.salvage && w.reads == 0 {
			w.dirty = true
		}
	}

	// Write wave: install the best value onto the repairing copies. A zero
	// best timestamp means no surviving write — the logically zeroed state is
	// already correct, nothing to install.
	tasks = rep.tasks[:0]
	p = 0
	for i := range vars {
		w := &vars[i]
		if w.bestTS == 0 {
			continue
		}
		for c := 0; c < nCopies; c++ {
			mod, addr := m.CopyAddr(w.v, c)
			if _, target := rep.gens[int64(mod)]; !target {
				continue
			}
			if fv.ModuleFailed(int64(mod)) {
				continue
			}
			if sys.rs == nil && sys.store.get(addr).ts >= w.bestTS {
				continue // local store already fresh (in-process recovery)
			}
			tasks = append(tasks, taskRef{proc: p, a: assignment{req: int32(i), cpy: int16(c), module: int64(mod), addr: addr}})
			p++
		}
	}
	tasks = sys.driveRepairRound(machine, tasks, vars, rm, maxIters, false)
	for _, t := range tasks {
		vars[t.a.req].dirty = true
	}

	// Account salvages and propagate dirt to the sweep set.
	for i := range vars {
		w := &vars[i]
		if w.salvage && !w.dirty {
			rm.salvaged++
		}
		if !w.dirty {
			continue
		}
		for c := 0; c < nCopies; c++ {
			mod, _ := m.CopyAddr(w.v, c)
			if _, ok := rep.gens[int64(mod)]; ok {
				rep.dirty[int64(mod)] = true
			}
		}
	}
	rep.tasks = tasks[:0]
}

// driveRepairRound drives one repair task list until every bid is granted,
// the iteration cap trips, or the tasks' modules fail. Undelivered tasks are
// returned for the caller to mark dirty. reads selects read semantics
// (collect max-timestamp into the task's variable) vs repair-write semantics
// (install the variable's best value if newer).
func (sys *System) driveRepairRound(machine Machine, tasks []taskRef, vars []repairVar, rm *repairMetrics, maxIters int, reads bool) []taskRef {
	if len(tasks) == 0 {
		return tasks
	}
	fv := sys.fv
	mreqs, grant := sys.mreqs, sys.grant
	epoch := fv.FaultEpoch()
	iters := 0
	for len(tasks) > 0 && iters < maxIters {
		if e := fv.FaultEpoch(); e != epoch {
			epoch = e
			n := 0
			for _, t := range tasks {
				if fv.ModuleFailed(t.a.module) {
					vars[t.a.req].dirty = true
					continue
				}
				tasks[n] = t
				n++
			}
			tasks = tasks[:n]
			if len(tasks) == 0 {
				break
			}
		}
		for _, t := range tasks {
			mreqs[t.proc] = t.a.module
		}
		if sys.rs != nil {
			for _, t := range tasks {
				if reads {
					sys.rs.StageBid(t.proc, t.a.addr, Read, 0, 0)
				} else {
					w := &vars[t.a.req]
					sys.rs.StageBid(t.proc, t.a.addr, opRepair, w.bestVal, w.bestTS)
				}
			}
		}
		machine.Round(mreqs, grant)
		iters++
		rm.issued += len(tasks)
		next := tasks[:0]
		for _, t := range tasks {
			mreqs[t.proc] = mpc.Idle
			if !grant[t.proc] {
				next = append(next, t)
				continue
			}
			rm.granted++
			w := &vars[t.a.req]
			if reads {
				var val, ts uint64
				if sys.rs != nil {
					val, ts = sys.rs.GrantData(t.proc)
				} else {
					c := sys.store.get(t.a.addr)
					val, ts = c.val, c.ts
				}
				if ts >= w.bestTS {
					w.bestTS, w.bestVal = ts, val
				}
				w.reads++
			} else {
				if sys.rs == nil {
					putIfNewer(sys.store, t.a.addr, cell{val: w.bestVal, ts: w.bestTS})
				}
				rm.repaired++
			}
		}
		tasks = next
	}
	for _, t := range tasks {
		mreqs[t.proc] = mpc.Idle
	}
	rm.rounds += iters
	return tasks
}
