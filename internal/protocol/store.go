package protocol

// cell is one physical copy: a value and the timestamp of its last write
// (the paper's time-stamped copies, after Thomas' majority-consensus rule).
type cell struct {
	val uint64
	ts  uint64
}

// store addresses cells by the flat copy address module·q^{n-1} + offset.
type store interface {
	get(addr uint64) cell
	put(addr uint64, c cell)
}

// denseThreshold caps the flat-array store at 2^26 cells (1 GiB of cells
// would be wasteful for sparse access patterns on big instances).
const denseThreshold = 1 << 26

// newStore picks a dense array for small copy spaces and a map for large
// ones; both start logically zeroed (value 0 at timestamp 0).
func newStore(cells uint64) store {
	if cells <= denseThreshold {
		return denseStore(make([]cell, cells))
	}
	return sparseStore(make(map[uint64]cell))
}

// putIfNewer installs c only when its timestamp beats the resident cell's —
// the repair-write rule: a rebuild carries the timestamp of the majority it
// read, so it can race a concurrent normal write (which carries a newer
// batch timestamp) without ever rolling the copy back.
func putIfNewer(s store, addr uint64, c cell) {
	if cur := s.get(addr); c.ts > cur.ts {
		s.put(addr, c)
	}
}

type denseStore []cell

func (d denseStore) get(addr uint64) cell    { return d[addr] }
func (d denseStore) put(addr uint64, c cell) { d[addr] = c }

type sparseStore map[uint64]cell

func (s sparseStore) get(addr uint64) cell    { return s[addr] }
func (s sparseStore) put(addr uint64, c cell) { s[addr] = c }
