package protocol

import (
	"sync"
	"testing"

	"detshmem/internal/affine"
	"detshmem/internal/baseline"
	"detshmem/internal/core"
)

// The Mapper contract every scheme must satisfy for the quorum executor to
// be correct (NewGenericSystem checks the quorum inequality; placement
// validity is per-variable and is what the fuzzer probes):
//
//   - quorums are in [1, Copies] and ReadQuorum + WriteQuorum > Copies;
//   - every CopyAddr(v, c) with v < NumVars and c < Copies returns
//     module < NumModules and addr < AddrSpace;
//   - the Copies addresses of one variable are pairwise distinct (a quorum
//     of c copies must mean c physical cells, or timestamps lie);
//   - CopyAddr is deterministic.
//
// Until now only the PP93 core had fuzz coverage (internal/core); this
// target exercises the contract uniformly across all four schemes.

var (
	mapperFuzzOnce sync.Once
	mapperFuzzSet  []Mapper
)

func mapperFuzzSetup(t testing.TB) []Mapper {
	mapperFuzzOnce.Do(func() {
		add := func(m Mapper, err error) {
			if err != nil {
				t.Fatal(err)
			}
			mapperFuzzSet = append(mapperFuzzSet, m)
		}
		for _, mn := range [][2]int{{1, 3}, {2, 3}} { // q=2 and q=4
			s, err := core.New(mn[0], mn[1])
			if err != nil {
				t.Fatal(err)
			}
			idx, err := s.NewIndexer()
			if err != nil {
				t.Fatal(err)
			}
			add(NewCoreMapper(s, idx), nil)
		}
		mv, err := baseline.NewMV(64, 4096, 2)
		add(mv, err)
		si, err := baseline.NewSingleCopy(64, 4096, baseline.PlaceInterleaved, 0)
		add(si, err)
		sh, err := baseline.NewSingleCopy(64, 4096, baseline.PlaceHashed, 12345)
		add(sh, err)
		uw, err := baseline.NewUW(64, 4096, 3, 999)
		add(uw, err)
		// Appended after the originals so positional uses ([0] = core q=2,
		// [2] = MV) stay valid: the q=8 core scheme (compact indexer) and
		// the affine Θ(N²) companion organization.
		s8, err := core.New(3, 3)
		if err != nil {
			t.Fatal(err)
		}
		idx8, err := s8.NewIndexer()
		if err != nil {
			t.Fatal(err)
		}
		add(NewCoreMapper(s8, idx8), nil)
		af, err := affine.New(61, 3)
		add(af, err)
	})
	return mapperFuzzSet
}

// FuzzMapperContract checks the per-variable placement contract for a
// fuzzed variable index on every scheme.
func FuzzMapperContract(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(1))
	f.Add(uint64(63))
	f.Add(uint64(4095))
	f.Add(uint64(349503))
	f.Fuzz(func(t *testing.T, raw uint64) {
		for _, m := range mapperFuzzSetup(t) {
			r, w, c := m.ReadQuorum(), m.WriteQuorum(), m.Copies()
			if r < 1 || w < 1 || r > c || w > c || r+w <= c {
				t.Fatalf("%s: quorums (%d,%d) invalid for %d copies", m.Name(), r, w, c)
			}
			v := raw % m.NumVars()
			addrs := make(map[uint64]int, c)
			for i := 0; i < c; i++ {
				mod, addr := m.CopyAddr(v, i)
				if mod >= m.NumModules() {
					t.Fatalf("%s: copy %d of %d in module %d >= N=%d", m.Name(), i, v, mod, m.NumModules())
				}
				if addr >= m.AddrSpace() {
					t.Fatalf("%s: copy %d of %d at addr %d >= %d", m.Name(), i, v, addr, m.AddrSpace())
				}
				if prev, dup := addrs[addr]; dup {
					t.Fatalf("%s: copies %d and %d of %d share addr %d", m.Name(), prev, i, v, addr)
				}
				addrs[addr] = i
				if mod2, addr2 := m.CopyAddr(v, i); mod2 != mod || addr2 != addr {
					t.Fatalf("%s: CopyAddr(%d,%d) not deterministic", m.Name(), v, i)
				}
			}
			// Bulk contract: AppendCopyAddrs must equal the per-op sweep in
			// vars-major copy-minor order, for full and partial copy counts.
			vars := [3]uint64{v, (v * 2654435761) % m.NumVars(), (v + 1) % m.NumVars()}
			for _, copies := range []int{c, r} {
				mods, addrs := AppendCopyAddrs(m, nil, nil, vars[:], copies)
				if len(mods) != len(vars)*copies || len(addrs) != len(vars)*copies {
					t.Fatalf("%s: bulk returned %d/%d entries, want %d", m.Name(), len(mods), len(addrs), len(vars)*copies)
				}
				for i, vv := range vars {
					for k := 0; k < copies; k++ {
						wm, wa := m.CopyAddr(vv, k)
						if mods[i*copies+k] != wm || addrs[i*copies+k] != wa {
							t.Fatalf("%s: bulk copy %d of %d = (%d,%d), per-op (%d,%d)",
								m.Name(), k, vv, mods[i*copies+k], addrs[i*copies+k], wm, wa)
						}
					}
				}
			}
		}
	})
}
