package protocol

import (
	"testing"

	"detshmem/internal/obs"
)

// TestTraceReplayMatchesMetrics is the trace-replay cross-check: several
// batches run through both MPC engines with a tracer, a collector, and a
// batch observer attached, and the tracer's replayed totals must equal the
// sums of the per-batch protocol.Metrics the caller already gets. This pins
// the contract that the instrumentation layer is a view of the protocol,
// not a second bookkeeping system that can drift.
func TestTraceReplayMatchesMetrics(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"sequential", Config{}},
		{"parallel", Config{Parallel: true, Workers: 4}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tracer := obs.NewTracer(0)
			col := obs.NewCollector()
			cfg := tc.cfg
			cfg.Recorder = obs.Multi(tracer, col)
			cfg.Observer = col
			sys, reqs := allocSystem(t, cfg)

			var sumRounds, sumGranted, sumCopies, sumReqs int
			var res Result
			const batches = 5
			for b := 0; b < batches; b++ {
				// Rotate ops and values so each batch takes its own path
				// through the phase loop.
				for i := range reqs {
					if (i+b)%2 == 0 {
						reqs[i].Op = Write
						reqs[i].Value = uint64(b*1000 + i)
					} else {
						reqs[i].Op = Read
					}
				}
				if err := sys.AccessInto(reqs, &res); err != nil {
					t.Fatal(err)
				}
				sumRounds += res.Metrics.TotalRounds
				sumGranted += res.Metrics.GrantedBids
				sumCopies += res.Metrics.CopyAccesses
				sumReqs += len(reqs)
			}

			totals := tracer.Totals()
			if totals.Rounds != uint64(sumRounds) {
				t.Errorf("tracer replayed %d rounds, metrics sum to %d", totals.Rounds, sumRounds)
			}
			if totals.Granted != uint64(sumGranted) {
				t.Errorf("tracer replayed %d grants, GrantedBids sum to %d", totals.Granted, sumGranted)
			}
			if sumGranted < sumCopies {
				t.Errorf("GrantedBids %d < CopyAccesses %d: cancelled-bid slack must be non-negative", sumGranted, sumCopies)
			}

			// Per-event invariants: one grant per touched module, and a
			// round never grants more than it was asked.
			var evGranted uint64
			for _, ev := range tracer.Events() {
				if ev.Granted != ev.Contention.Modules() {
					t.Fatalf("round %d: %d grants but contention histogram holds %d modules",
						ev.Round, ev.Granted, ev.Contention.Modules())
				}
				if ev.Granted > ev.Requests {
					t.Fatalf("round %d: granted %d > requested %d", ev.Round, ev.Granted, ev.Requests)
				}
				evGranted += uint64(ev.Granted)
			}
			if tracer.Dropped() == 0 && evGranted != totals.Granted {
				t.Errorf("event-level grants %d disagree with totals %d", evGranted, totals.Granted)
			}

			// Collector view: round counters match the tracer, batch
			// counters match the summed metrics.
			if got := col.MPCRounds.Load(); uint64(got) != totals.Rounds {
				t.Errorf("collector rounds %d != tracer rounds %d", got, totals.Rounds)
			}
			if got := col.Rounds.Load(); got != int64(sumRounds) {
				t.Errorf("collector batch rounds %d != metrics sum %d", got, sumRounds)
			}
			if got := col.GrantedBids.Load(); got != int64(sumGranted) {
				t.Errorf("collector granted bids %d != metrics sum %d", got, sumGranted)
			}
			if got := col.CopyAccesses.Load(); got != int64(sumCopies) {
				t.Errorf("collector copy accesses %d != metrics sum %d", got, sumCopies)
			}
			if got := col.Batches.Load(); got != batches {
				t.Errorf("collector saw %d batches, want %d", got, batches)
			}
			if got := col.Requests.Load(); got != int64(sumReqs) {
				t.Errorf("collector saw %d requests, want %d", got, sumReqs)
			}
		})
	}
}

// TestObserverEmptyBatch pins the degenerate path: an empty request batch
// still produces exactly one BatchEvent with all-zero counts.
func TestObserverEmptyBatch(t *testing.T) {
	col := obs.NewCollector()
	sys, _ := allocSystem(t, Config{Observer: col})
	var res Result
	if err := sys.AccessInto(nil, &res); err != nil {
		t.Fatal(err)
	}
	if col.Batches.Load() != 1 || col.Requests.Load() != 0 || col.Rounds.Load() != 0 {
		t.Fatalf("empty batch observed as %+v", col.Snapshot())
	}
}
