package protocol

import (
	"errors"
	"testing"

	"detshmem/internal/core"
	"detshmem/internal/mpc"
	"detshmem/internal/network"
)

// failingSystem builds a PP system whose machine drops requests to the given
// modules.
func failingSystem(t testing.TB, m, n int, failed []uint64) *System {
	t.Helper()
	s, err := core.New(m, n)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := s.NewIndexer()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(s, idx, Config{
		MaxIterationsPerPhase: 2048,
		NewMachine: func(cfg mpc.Config) (Machine, error) {
			return mpc.NewFailing(cfg, failed)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestSingleModuleFailureTolerated: with q = 2 every variable has 3 copies
// in 3 distinct modules and needs a quorum of 2, so one failed module leaves
// every variable a full quorum — all batches must still complete and return
// correct values.
func TestSingleModuleFailureTolerated(t *testing.T) {
	sys := failingSystem(t, 1, 5, []uint64{0})
	n := int(sys.Scheme.NumModules)
	vars := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range vars {
		vars[i] = uint64(i)
		vals[i] = uint64(i + 7)
	}
	if _, err := sys.WriteBatch(vars, vals); err != nil {
		t.Fatalf("write under one failed module: %v", err)
	}
	got, _, err := sys.ReadBatch(vars)
	if err != nil {
		t.Fatalf("read under one failed module: %v", err)
	}
	for i := range got {
		if got[i] != vals[i] {
			t.Fatalf("readback mismatch at %d", i)
		}
	}
}

// TestTwoModuleFailuresBlockAtMostOneVariable: a direct consequence of
// Theorem 2 — two distinct modules share at most one variable, so failing
// any two modules leaves at most one variable without a quorum (q = 2).
func TestTwoModuleFailuresBlockAtMostOneVariable(t *testing.T) {
	s, err := core.New(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := s.NewIndexer()
	if err != nil {
		t.Fatal(err)
	}
	inv := idx.(core.Inverter)
	for _, pair := range [][2]uint64{{0, 1}, {2, 40}, {5, 62}, {17, 18}} {
		sys := failingSystem(t, 1, 3, pair[:])
		// Batch: every variable with at least one copy in a failed module.
		seen := make(map[uint64]bool)
		var vars []uint64
		for _, j := range pair {
			for k := uint32(0); k < s.ModuleSize; k++ {
				i, ok := inv.Index(s.ModuleVarMat(j, k))
				if !ok {
					t.Fatal("uninvertible variable")
				}
				if !seen[i] {
					seen[i] = true
					vars = append(vars, i)
				}
			}
		}
		vals := make([]uint64, len(vars))
		met, err := sys.WriteBatch(vars, vals)
		if err == nil {
			continue // no variable had two copies in the failed pair
		}
		if !errors.Is(err, ErrIncomplete) {
			t.Fatalf("unexpected error type: %v", err)
		}
		if len(met.Unfinished) > 1 {
			t.Fatalf("failing modules %v blocked %d variables; Theorem 2 allows at most 1",
				pair, len(met.Unfinished))
		}
	}
}

// TestQuorumLossReported: failing all three modules of one variable makes it
// unservable; the protocol must report exactly that variable and still
// complete the others.
func TestQuorumLossReported(t *testing.T) {
	s, err := core.New(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := s.NewIndexer()
	if err != nil {
		t.Fatal(err)
	}
	victim := uint64(10)
	mods := s.VarModules(nil, idx.Mat(victim))
	failed := make([]uint64, len(mods))
	copy(failed, mods)
	sys := failingSystem(t, 1, 3, failed)

	vars := []uint64{victim, 3, 4, 5}
	vals := []uint64{1, 2, 3, 4}
	met, err := sys.WriteBatch(vars, vals)
	if !errors.Is(err, ErrIncomplete) {
		t.Fatalf("expected ErrIncomplete, got %v", err)
	}
	found := false
	for _, u := range met.Unfinished {
		if vars[u] == victim {
			found = true
		}
	}
	if !found {
		t.Fatalf("victim not reported in Unfinished: %v", met.Unfinished)
	}
	// Other variables must have completed (3 modules can block more than
	// the victim in principle, but these three are the victim's own).
	got, _, err := sys.ReadBatch([]uint64{3, 4, 5})
	if err != nil {
		t.Fatalf("reading survivors: %v", err)
	}
	for i, want := range []uint64{2, 3, 4} {
		if got[i] != want {
			t.Fatalf("survivor %d read %d, want %d", i, got[i], want)
		}
	}
}

// TestNetworkMachineIntegration: the protocol over a butterfly-backed
// machine produces identical values and iteration metrics to the plain MPC,
// with a strictly larger interconnect cost that is at least diameter ×
// rounds.
func TestNetworkMachineIntegration(t *testing.T) {
	s, err := core.New(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := s.NewIndexer()
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewSystem(s, idx, Config{})
	if err != nil {
		t.Fatal(err)
	}
	routed, err := NewSystem(s, idx, Config{
		NewMachine: func(cfg mpc.Config) (Machine, error) { return network.NewMachine(cfg) },
	})
	if err != nil {
		t.Fatal(err)
	}
	n := 512
	vars := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range vars {
		vars[i] = uint64(i * 3)
		vals[i] = uint64(i)
	}
	m1, err := plain.WriteBatch(vars, vals)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := routed.WriteBatch(vars, vals)
	if err != nil {
		t.Fatal(err)
	}
	if m1.TotalRounds != m2.TotalRounds || m1.MaxIterations != m2.MaxIterations {
		t.Fatalf("iteration metrics differ: %+v vs %+v", m1, m2)
	}
	if m1.InterconnectCost != uint64(m1.TotalRounds) {
		t.Fatalf("plain MPC cost %d != rounds %d", m1.InterconnectCost, m1.TotalRounds)
	}
	// The butterfly has 1024 rows (diameter 10); each round costs at least
	// one request sweep of >= diameter steps.
	if m2.InterconnectCost < uint64(10*m2.TotalRounds) {
		t.Fatalf("routed cost %d below diameter×rounds", m2.InterconnectCost)
	}
	got, _, err := routed.ReadBatch(vars)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != vals[i] {
			t.Fatalf("routed readback mismatch at %d", i)
		}
	}
}
