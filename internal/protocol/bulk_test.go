package protocol

import (
	"testing"

	"detshmem/internal/affine"
	"detshmem/internal/baseline"
	"detshmem/internal/core"
	"detshmem/internal/obs"
)

// TestAppendCopyAddrsMatchesCopyAddr is the mapper-matrix equivalence pin
// for the bulk contract: for every scheme in the fuzz matrix (core q ∈
// {2, 4, 8}, MV, single-copy, UW, affine) and a spread of batch shapes —
// including lengths that straddle the internal block boundaries — the
// batched resolution must equal the per-op sweep, grow append-style from a
// non-empty prefix, and handle partial copy counts.
func TestAppendCopyAddrsMatchesCopyAddr(t *testing.T) {
	for _, m := range mapperFuzzSetup(t) {
		t.Run(m.Name(), func(t *testing.T) {
			M, c := m.NumVars(), m.Copies()
			for _, nVars := range []int{0, 1, 63, 64, 65, 200} {
				vars := make([]uint64, nVars)
				for i := range vars {
					vars[i] = (uint64(i)*2654435761 + 17) % M
				}
				for _, copies := range []int{c, m.ReadQuorum(), 1} {
					mods := []uint64{^uint64(0)} // sentinel prefix
					addrs := []uint64{42}
					mods, addrs = AppendCopyAddrs(m, mods, addrs, vars, copies)
					if mods[0] != ^uint64(0) || addrs[0] != 42 {
						t.Fatal("bulk path clobbered the dst prefix")
					}
					if len(mods) != 1+nVars*copies || len(addrs) != 1+nVars*copies {
						t.Fatalf("bulk appended %d/%d entries, want %d", len(mods)-1, len(addrs)-1, nVars*copies)
					}
					for i, v := range vars {
						for k := 0; k < copies; k++ {
							wm, wa := m.CopyAddr(v, k)
							at := 1 + i*copies + k
							if mods[at] != wm || addrs[at] != wa {
								t.Fatalf("vars=%d copies=%d: copy %d of %d = (%d,%d), per-op (%d,%d)",
									nVars, copies, k, v, mods[at], addrs[at], wm, wa)
							}
						}
					}
				}
			}
		})
	}
}

// TestAppendCopyAddrsZeroAlloc pins every native bulk implementation (core,
// compiled table, affine, UW with its in-cap replication) at zero heap
// allocations once the destination slices have capacity.
func TestAppendCopyAddrsZeroAlloc(t *testing.T) {
	for _, m := range mapperFuzzSetup(t) {
		if _, ok := m.(BulkMapper); !ok {
			continue
		}
		t.Run(m.Name(), func(t *testing.T) {
			vars := make([]uint64, 200)
			for i := range vars {
				vars[i] = (uint64(i) * 2654435761) % m.NumVars()
			}
			c := m.Copies()
			mods := make([]uint64, 0, len(vars)*c)
			addrs := make([]uint64, 0, len(vars)*c)
			if n := testing.AllocsPerRun(20, func() {
				mods, addrs = AppendCopyAddrs(m, mods[:0], addrs[:0], vars, c)
			}); n != 0 {
				t.Errorf("bulk path allocates %v per call, want 0", n)
			}
		})
	}
}

// strategySystem builds a q=2 core system under the given strategy.
func strategySystem(t *testing.T, cfg Config) *System {
	t.Helper()
	s, err := core.New(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := s.NewIndexer()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(s, idx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	return sys
}

// TestResolverStrategyEquivalence runs the same workload through all four
// strategies — auto, compiled, computed, hybrid (private and shared cache) —
// and checks they observe identical values: the resolution path must be
// invisible to the memory semantics.
func TestResolverStrategyEquivalence(t *testing.T) {
	auto := strategySystem(t, Config{})
	compiled := strategySystem(t, Config{Strategy: ResolverCompiled})
	computed := strategySystem(t, Config{Strategy: ResolverComputed})
	hybrid := strategySystem(t, Config{Strategy: ResolverHybrid, HotCacheSlots: 256})
	shared := NewHotCache(auto.Mapper, 0)
	hybridShared := strategySystem(t, Config{Strategy: ResolverHybrid, HotCache: shared})
	systems := []*System{auto, compiled, computed, hybrid, hybridShared}

	if compiled.resolver == nil {
		t.Fatal("compiled strategy did not attach a resolver")
	}
	if computed.resolver != nil || computed.hot != nil {
		t.Fatal("computed strategy attached a resolver or cache")
	}
	if hybrid.hot == nil || hybridShared.hot != shared {
		t.Fatal("hybrid strategy cache wiring wrong")
	}

	M := auto.Mapper.NumVars()
	n := int(auto.Mapper.NumModules())
	vars := make([]uint64, 0, n)
	vals := make([]uint64, 0, n)
	for b := 0; b < 8; b++ {
		vars, vals = vars[:0], vals[:0]
		seen := map[uint64]bool{}
		for i := 0; i < n; i++ {
			v := (uint64(i)*2654435761 + uint64(b)*12289) % M
			if !seen[v] {
				seen[v] = true
				vars = append(vars, v)
				vals = append(vals, uint64(b)<<32|uint64(i))
			}
		}
		for _, sys := range systems {
			if _, err := sys.WriteBatch(vars, vals); err != nil {
				t.Fatal(err)
			}
		}
		for si, sys := range systems {
			got, _, err := sys.ReadBatch(vars)
			if err != nil {
				t.Fatal(err)
			}
			for i := range vars {
				if got[i] != vals[i] {
					t.Fatalf("batch %d system %d var %d: read %d, wrote %d", b, si, vars[i], got[i], vals[i])
				}
			}
		}
	}
	hits, misses := shared.Stats()
	if hits == 0 || misses == 0 {
		t.Fatalf("shared hot cache never exercised: hits=%d misses=%d", hits, misses)
	}
	if shared.ResidentBytes() <= uint64(shared.Slots())*8 {
		t.Fatal("shared hot cache reports no resident rows")
	}
}

// TestComputedStrategyUnwrapsCompiledMapper checks a System whose Mapper is
// a compiled table but whose strategy forbids it resolves through the
// underlying organization: the table must see no reads.
func TestComputedStrategyUnwrapsCompiledMapper(t *testing.T) {
	mv, err := baseline.NewMV(64, 4096, 2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := CompileMapper(mv, CompileOptions{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewGenericSystem(r, Config{Strategy: ResolverComputed})
	if err != nil {
		t.Fatal(err)
	}
	if sys.bulkSrc != Mapper(mv) {
		t.Fatal("computed strategy did not unwrap the compiled mapper")
	}
	if _, err := sys.WriteBatch([]uint64{1, 2, 3}, []uint64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if r.Compiled() != 0 {
		t.Fatalf("computed strategy materialized %d table vars", r.Compiled())
	}
}

// TestResolverStrategyValidation pins the configuration error surface.
func TestResolverStrategyValidation(t *testing.T) {
	s, err := core.New(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := s.NewIndexer()
	if err != nil {
		t.Fatal(err)
	}
	m := NewCoreMapper(s, idx)
	r, err := CompileMapper(m, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []ResolverStrategy{ResolverComputed, ResolverHybrid} {
		if _, err := NewGenericSystem(m, Config{Strategy: strat, Resolver: r}); err == nil {
			t.Errorf("%v accepted an attached resolver", strat)
		}
	}
	if _, err := NewGenericSystem(m, Config{Strategy: ResolverCompiled, HotCache: NewHotCache(m, 0)}); err == nil {
		t.Error("HotCache accepted outside the hybrid strategy")
	}
	if _, err := NewGenericSystem(m, Config{Strategy: ResolverStrategy(99)}); err == nil {
		t.Error("unknown strategy accepted")
	}
	af, err := affine.New(61, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewGenericSystem(m, Config{Strategy: ResolverHybrid, HotCache: NewHotCache(af, 0)}); err == nil {
		t.Error("geometry-mismatched shared HotCache accepted")
	}
}

// TestResolverStrategyStrings pins the flag spellings both ways.
func TestResolverStrategyStrings(t *testing.T) {
	for _, strat := range []ResolverStrategy{ResolverAuto, ResolverCompiled, ResolverComputed, ResolverHybrid} {
		got, err := ParseResolverStrategy(strat.String())
		if err != nil || got != strat {
			t.Errorf("round-trip %v: got %v, err %v", strat, got, err)
		}
	}
	if got, err := ParseResolverStrategy(""); err != nil || got != ResolverAuto {
		t.Errorf("empty spelling: got %v, err %v", got, err)
	}
	if _, err := ParseResolverStrategy("tables"); err == nil {
		t.Error("bad spelling accepted")
	}
}

// TestStrategySteadyStateAllocs pins the computed and hybrid resolution
// paths at zero allocations per batch in steady state: computed runs the
// stack-scratch bulk kernels, hybrid must serve every lookup from published
// rows once the working set is cached (the request set is chosen
// slot-collision-free so direct-mapped eviction cannot thrash).
func TestStrategySteadyStateAllocs(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"computed", Config{Strategy: ResolverComputed, Recorder: obs.Nop, Observer: obs.NewCollector()}},
		{"hybrid", Config{Strategy: ResolverHybrid, Recorder: obs.Nop, Observer: obs.NewCollector()}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sys := strategySystem(t, tc.cfg)
			m := sys.Mapper
			n := int(m.NumModules())
			reqs := make([]Request, 0, n)
			seenVar := map[uint64]bool{}
			seenSlot := map[uint64]bool{}
			for i := 0; len(reqs) < n && i < 10*n; i++ {
				v := (uint64(i) * 2654435761) % m.NumVars()
				slot := mix(v) & (uint64(DefaultHotCacheSlots) - 1)
				if seenVar[v] || seenSlot[slot] {
					continue
				}
				seenVar[v], seenSlot[slot] = true, true
				op := Read
				if len(reqs)%2 == 0 {
					op = Write
				}
				reqs = append(reqs, Request{Var: v, Op: op, Value: uint64(i)})
			}
			var res Result
			if err := sys.AccessInto(reqs, &res); err != nil { // warm-up
				t.Fatal(err)
			}
			if avg := testing.AllocsPerRun(50, func() {
				if err := sys.AccessInto(reqs, &res); err != nil {
					t.Fatal(err)
				}
			}); avg != 0 {
				t.Fatalf("%s strategy allocates %.2f per batch in steady state, want 0", tc.name, avg)
			}
		})
	}
}

// TestHotCacheFillAndEvict exercises the direct-mapped overwrite: two
// variables hashing to the same slot evict each other, and both resolve
// correctly every time.
func TestHotCacheFillAndEvict(t *testing.T) {
	s, err := core.New(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := s.NewIndexer()
	if err != nil {
		t.Fatal(err)
	}
	m := NewCoreMapper(s, idx)
	h := NewHotCache(m, 1) // every variable shares the single slot
	if h.Slots() != 1 {
		t.Fatalf("slots = %d, want 1", h.Slots())
	}
	for round := 0; round < 3; round++ {
		for v := uint64(0); v < 8; v++ {
			row := h.lookup(v)
			if row == nil {
				row = h.fill(m, v)
			}
			for c := 0; c < m.Copies(); c++ {
				wm, wa := m.CopyAddr(v, c)
				if uint64(row[c].module) != wm || row[c].addr != wa {
					t.Fatalf("round %d var %d copy %d: cached (%d,%d), want (%d,%d)",
						round, v, c, row[c].module, row[c].addr, wm, wa)
				}
			}
		}
	}
	hits, misses := h.Stats()
	if hits != 0 || misses != 24 {
		t.Fatalf("single-slot thrash: hits=%d misses=%d, want 0/24", hits, misses)
	}
	if got, want := h.ResidentBytes(), uint64(8)+8+24+uint64(m.Copies())*16; got != want {
		t.Fatalf("ResidentBytes = %d, want %d", got, want)
	}
	if err := h.compatibleWith(m); err != nil {
		t.Fatal(err)
	}
	af, _ := affine.New(61, 3)
	if err := h.compatibleWith(af); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
}
