package protocol

import (
	"errors"
	"testing"

	"detshmem/internal/core"
	"detshmem/internal/mpc"
	"detshmem/internal/obs"
)

// repairSystem builds a PP system over a shared fault set so tests can
// drive the full fail -> wipe -> RecoverPending -> repair lifecycle.
// The q=2, n=3 scheme: 84 variables, 63 modules, 3 copies, quorum 2.
// Writes stop at their quorum, so a fresh write lands on the first two
// live copies and the third stays at timestamp 0 — which is exactly why a
// wiped module plus one crashed module can leave a read quorum with no
// surviving timestamp.
func repairSystem(t testing.TB, policy CopyPolicy, hook func(round int)) (*System, *mpc.FaultSet) {
	t.Helper()
	s, err := core.New(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := s.NewIndexer()
	if err != nil {
		t.Fatal(err)
	}
	fs := mpc.NewFaultSet()
	sys, err := NewSystem(s, idx, Config{
		Policy:                policy,
		MaxIterationsPerPhase: 2048,
		NewMachine: func(cfg mpc.Config) (Machine, error) {
			f, err := mpc.NewFailingShared(cfg, fs)
			if err != nil {
				return nil, err
			}
			if hook == nil {
				return f, nil
			}
			return &hookedMachine{Failing: f, hook: hook}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys, fs
}

// hookedMachine invokes a callback after every round, letting tests inject
// fault-set mutations at a deterministic mid-phase point.
type hookedMachine struct {
	*mpc.Failing
	round int
	hook  func(round int)
}

func (h *hookedMachine) Round(reqs []int64, grant []bool) int {
	n := h.Failing.Round(reqs, grant)
	h.round++
	h.hook(h.round)
	return n
}

// victimModules returns the modules hosting each copy of v.
func victimModules(sys *System, v uint64) []uint64 {
	out := make([]uint64, sys.Mapper.Copies())
	for c := range out {
		out[c], _ = sys.Mapper.CopyAddr(v, c)
	}
	return out
}

// wipeCopies zeroes the stored cells of the given copies of v, simulating a
// module whose store was lost across a restart.
func wipeCopies(sys *System, v uint64, copies ...int) {
	for _, c := range copies {
		_, addr := sys.Mapper.CopyAddr(v, c)
		sys.store.put(addr, cell{})
	}
}

// drainRepair pumps RepairStep until the backlog is empty.
func drainRepair(t *testing.T, sys *System) {
	t.Helper()
	for i := 0; sys.RepairBacklog() > 0; i++ {
		if !sys.RepairStep() {
			t.Fatalf("repair stalled with backlog %d after %d steps", sys.RepairBacklog(), i)
		}
		if i > 1_000_000 {
			t.Fatalf("repair did not drain after %d steps", i)
		}
	}
}

// TestWipedRecoverReAdmissionBug is the regression at the heart of PR 10.
// The scenario: a write lands on copies 0 and 1 (the quorum), copy 2 stays
// at timestamp 0. Copy 0's module crashes and restarts with a wiped store;
// copy 1's module crashes and stays down. Pre-fix, plain Recover re-admits
// the wiped module immediately, and the read quorum {copy0, copy2} — both
// at timestamp 0 — silently returns the zero value while the crashed module
// still holds the freshest write. The first subtest documents that failure
// mode; the second pins the fix: RecoverPending bars the wiped module from
// read quorums, the repair sweep refuses to certify while the fresh copy is
// unreadable, and once the crashed module returns the sweep rebuilds the
// wiped copy from a sound majority.
func TestWipedRecoverReAdmissionBug(t *testing.T) {
	const v, val = 7, uint64(42)

	t.Run("pre-fix path serves the lost write as zero", func(t *testing.T) {
		sys, fs := repairSystem(t, PolicyAllCancel, nil)
		defer sys.Close()
		if _, err := sys.WriteBatch([]uint64{v}, []uint64{val}); err != nil {
			t.Fatal(err)
		}
		mods := victimModules(sys, v)
		fs.Fail(mods[0])
		fs.Fail(mods[1])
		wipeCopies(sys, v, 0)
		fs.Recover(mods[0]) // straight to live: the pre-fix re-admission
		got, _, err := sys.ReadBatch([]uint64{v})
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if got[0] == val {
			t.Fatalf("pre-fix read returned the correct value %d; the regression this PR fixes no longer reproduces, so the fixed path below is not actually exercising the bug", val)
		}
	})

	t.Run("RecoverPending repairs before serving reads", func(t *testing.T) {
		sys, fs := repairSystem(t, PolicyAllCancel, nil)
		defer sys.Close()
		if _, err := sys.WriteBatch([]uint64{v}, []uint64{val}); err != nil {
			t.Fatal(err)
		}
		mods := victimModules(sys, v)
		fs.Fail(mods[0])
		fs.Fail(mods[1])
		wipeCopies(sys, v, 0)
		fs.RecoverPending(mods[0])

		// The wiped copy is barred from read quorums: with copy 1's module
		// down, only copy 2 is trustworthy — the read must come back
		// incomplete, never a zero-timestamp value.
		got, _, err := sys.ReadBatch([]uint64{v})
		if err == nil {
			t.Fatalf("uncertified read completed with value %d, want ErrIncomplete", got[0])
		}
		if !errors.Is(err, ErrIncomplete) {
			t.Fatalf("read during repair: %v, want ErrIncomplete", err)
		}

		// The sweep must NOT certify while the freshest copy sits in the
		// crashed store: the backlog parks until the fault set changes.
		for i := 0; i < 4 && sys.RepairStep(); i++ {
		}
		if sys.RepairBacklog() == 0 {
			t.Fatalf("sweep certified the wiped module while the fresh copy was unreadable")
		}

		// The crashed module returns (its store intact); now a sound source
		// majority exists and the sweep rebuilds the wiped copy.
		fs.Recover(mods[1])
		drainRepair(t, sys)
		if fs.RepairCount() != 0 {
			t.Fatalf("repair count %d after drain", fs.RepairCount())
		}
		got, _, err = sys.ReadBatch([]uint64{v})
		if err != nil {
			t.Fatalf("read after repair: %v", err)
		}
		if got[0] != val {
			t.Fatalf("read after repair = %d, want %d", got[0], val)
		}
		// The rebuild installed the value, not just its visibility: the wiped
		// copy carries the write's timestamp again.
		if ts := sys.CopyState(v)[0]; ts == 0 {
			t.Fatalf("wiped copy still at timestamp 0 after repair")
		}
	})
}

// TestRecoverMidWave pins the majority-intersection invariant against the
// second PR 10 hazard: a module recovering mid-phase used to be re-selected
// by the same batch's retry wave before any repair ran, so a retry quorum
// could include its wiped, zero-timestamp copy. On both copy policies the
// read must never complete against the uncertified wiped copy — it either
// returns the true value or comes back incomplete until repair certifies.
func TestRecoverMidWave(t *testing.T) {
	for _, policy := range []struct {
		name string
		p    CopyPolicy
	}{
		{"all-cancel", PolicyAllCancel},
		{"pinned-majority", PolicyFixedMajority},
	} {
		t.Run(policy.name, func(t *testing.T) {
			const val = uint64(99)
			var sys *System
			var fs *mpc.FaultSet
			var victim uint64
			armed := false
			hook := func(round int) {
				if !armed {
					return
				}
				armed = false
				// Mid-phase: copy 0's module restarts with a wiped store.
				// Pre-fix this was a plain Recover and the victim's retry
				// wave would count the wiped copy toward its read quorum.
				wipeCopies(sys, victim, 0)
				fs.RecoverPending(victimModules(sys, victim)[0])
			}
			sys, fs = repairSystem(t, policy.p, hook)
			defer sys.Close()

			victim = 3
			// Filler variables keep rounds running after the victim is
			// queued for retry, so the hook fires genuinely mid-wave.
			vars := []uint64{victim}
			vals := []uint64{val}
			for v := uint64(20); len(vars) < 24; v++ {
				vars = append(vars, v)
				vals = append(vals, v)
			}
			if _, err := sys.WriteBatch(vars, vals); err != nil {
				t.Fatal(err)
			}
			mods := victimModules(sys, victim)
			fs.Fail(mods[0])
			fs.Fail(mods[1]) // holds the other fresh copy; stays down
			armed = true

			got, _, err := sys.ReadBatch(vars)
			if armed {
				t.Fatalf("hook never fired: the batch ran no rounds mid-wave")
			}
			if err == nil {
				// The whole batch completed; the victim's value must be the
				// true one — the wiped copy never won a quorum.
				if got[0] != val {
					t.Fatalf("mid-wave read = %d, want %d", got[0], val)
				}
			} else if !errors.Is(err, ErrIncomplete) {
				t.Fatalf("mid-wave read: %v", err)
			}

			// The crashed module returns; repair rebuilds the wiped copy from
			// the sound majority and certifies.
			fs.Recover(mods[1])
			drainRepair(t, sys)
			got, _, err = sys.ReadBatch(vars)
			if err != nil {
				t.Fatalf("read after repair: %v", err)
			}
			for i := range vars {
				if got[i] != vals[i] {
					t.Fatalf("var %d = %d, want %d", vars[i], got[i], vals[i])
				}
			}
			if ts := sys.CopyState(victim)[0]; ts == 0 {
				t.Fatalf("wiped copy still at timestamp 0 after repair")
			}
		})
	}
}

// TestRepairingCountsTowardWriteQuorum: the asymmetric gate. A module under
// repair serves bids and counts toward write quorums immediately (the
// written copy receives fresh data), while reads stay barred until
// certification.
func TestRepairingCountsTowardWriteQuorum(t *testing.T) {
	const v, val = 11, uint64(5)
	sys, fs := repairSystem(t, PolicyAllCancel, nil)
	defer sys.Close()
	mods := victimModules(sys, v)

	// Two of three modules down: no write quorum, the request strands.
	fs.Fail(mods[0])
	fs.Fail(mods[1])
	if _, err := sys.WriteBatch([]uint64{v}, []uint64{val}); !errors.Is(err, ErrQuorumUnreachable) {
		t.Fatalf("write with 1 live copy: %v, want ErrQuorumUnreachable", err)
	}

	// One module comes back pending repair: writes recover immediately.
	fs.RecoverPending(mods[0])
	if _, err := sys.WriteBatch([]uint64{v}, []uint64{val}); err != nil {
		t.Fatalf("write with repairing module: %v", err)
	}

	// Reads stay gated: one trustworthy copy is below the read quorum, and
	// crucially this is reported as incomplete (transient), not stranded.
	_, _, err := sys.ReadBatch([]uint64{v})
	if !errors.Is(err, ErrIncomplete) || errors.Is(err, ErrQuorumUnreachable) {
		t.Fatalf("read with repairing module: %v, want plain ErrIncomplete", err)
	}

	// Once the second module returns, the sweep certifies and reads see the
	// write that went through while the module was still repairing.
	fs.Recover(mods[1])
	drainRepair(t, sys)
	got, _, err := sys.ReadBatch([]uint64{v})
	if err != nil {
		t.Fatalf("read after repair: %v", err)
	}
	if got[0] != val {
		t.Fatalf("read after repair = %d, want %d", got[0], val)
	}
}

// TestRepairPumpRidesBatches: with no idle pump in sight, sustained batch
// traffic alone must drain the repair backlog (AccessInto pumps one
// budget-bounded step per batch) and the repair books must flow through the
// observer.
func TestRepairPumpRidesBatches(t *testing.T) {
	s, err := core.New(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := s.NewIndexer()
	if err != nil {
		t.Fatal(err)
	}
	fs := mpc.NewFaultSet()
	col := obs.NewCollector()
	sys, err := NewSystem(s, idx, Config{
		MaxIterationsPerPhase: 2048,
		Observer:              col,
		NewMachine: func(cfg mpc.Config) (Machine, error) {
			return mpc.NewFailingShared(cfg, fs)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	vars := []uint64{2, 3, 5, 8, 13}
	vals := []uint64{1, 2, 3, 4, 5}
	if _, err := sys.WriteBatch(vars, vals); err != nil {
		t.Fatal(err)
	}
	mod := victimModules(sys, vars[0])[0]
	fs.Fail(mod)
	fs.RecoverPending(mod)

	for i := 0; i < 64 && sys.RepairBacklog() > 0; i++ {
		v := 20 + uint64(i)%60 // stay inside M=84 and clear of the checked vars
		if _, err := sys.WriteBatch([]uint64{v}, []uint64{uint64(i)}); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	if sys.RepairBacklog() != 0 {
		t.Fatalf("batch traffic did not drain the repair backlog: %d left", sys.RepairBacklog())
	}
	if col.RepairCertified.Load() == 0 {
		t.Fatalf("no certification reached the observer")
	}
	if col.RepairBacklog.Load() != 0 {
		t.Fatalf("observer backlog gauge = %d, want 0", col.RepairBacklog.Load())
	}
	got, _, err := sys.ReadBatch(vars)
	if err != nil {
		t.Fatalf("read after repair: %v", err)
	}
	for i := range got {
		if got[i] != vals[i] {
			t.Fatalf("var %d = %d, want %d", vars[i], got[i], vals[i])
		}
	}
}

// TestRepairSalvage: when no sound source majority will ever exist — the
// third copy was never written — the sweep salvages: it reads every live
// copy including the suspects themselves, installs the freshest survivor,
// and certifies only because no crashed module could be hiding a fresher
// value.
func TestRepairSalvage(t *testing.T) {
	const v, val = 19, uint64(77)
	sys, fs := repairSystem(t, PolicyAllCancel, nil)
	defer sys.Close()
	if _, err := sys.WriteBatch([]uint64{v}, []uint64{val}); err != nil {
		t.Fatal(err)
	}
	mods := victimModules(sys, v)
	fs.Fail(mods[0])
	fs.Fail(mods[1])
	fs.Fail(mods[2])
	wipeCopies(sys, v, 0) // copy 1's store survives its crash, copy 0's does not
	fs.RecoverPending(mods[0])
	fs.RecoverPending(mods[1])
	// mods[2] stays failed: with both other modules under repair there is no
	// trustworthy source at all, and the crashed module might hold a fresher
	// copy — the sweep must refuse to certify and park.
	for i := 0; i < 4 && sys.RepairStep(); i++ {
	}
	if sys.RepairBacklog() == 0 {
		t.Fatalf("sweep certified suspect copies while a crashed module could hold a fresher value")
	}
	if sys.RepairStep() {
		t.Fatalf("scheduler did not pause on an unrepairable backlog")
	}

	// The crashed module returns. Its copy was never written (timestamp 0),
	// so there is still no sound majority — but now nothing unread remains:
	// salvage reads all three copies, finds the survivor on the repairing
	// module itself, rebuilds the wiped copy from it, and certifies.
	fs.Recover(mods[2])
	drainRepair(t, sys)
	got, _, err := sys.ReadBatch([]uint64{v})
	if err != nil {
		t.Fatalf("read after repair: %v", err)
	}
	if got[0] != val {
		t.Fatalf("read after salvage = %d, want %d", got[0], val)
	}
	if ts := sys.CopyState(v)[0]; ts == 0 {
		t.Fatalf("wiped copy still at timestamp 0 after salvage")
	}
}

// TestRepairPauseIgnoresStaleSweep pins the drain-liveness rule the churn
// soak tripped at scale: a sweep that raced fault-set churn can certify
// nothing for reasons that evaporated with the churn — a module wiped again
// mid-sweep fences the sweep's captured generation, transiently failed
// sources mark variables dirty. Such a sweep proves nothing about whether a
// fresh sweep over the settled fault set would succeed, so the scheduler
// must not latch its no-progress pause on it (the churn being over, no
// fault-epoch mutation would ever unlatch it and the backlog would stick
// forever). Only a certify-nothing sweep whose fault epoch never moved —
// genuinely unrepairable state — may pause.
func TestRepairPauseIgnoresStaleSweep(t *testing.T) {
	s, err := core.New(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := s.NewIndexer()
	if err != nil {
		t.Fatal(err)
	}
	fs := mpc.NewFaultSet()
	sys, err := NewSystem(s, idx, Config{
		MaxIterationsPerPhase: 2048,
		// Small budget so one sweep spans several steps and the fault set
		// can move while it is in flight.
		RepairBudget: 8,
		NewMachine: func(cfg mpc.Config) (Machine, error) {
			return mpc.NewFailingShared(cfg, fs)
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	const victim = 5
	fs.Fail(victim)
	fs.RecoverPending(victim)
	if !sys.RepairStep() {
		t.Fatal("first repair step made no progress")
	}
	if !sys.rep.active {
		t.Fatal("sweep completed in one step; shrink RepairBudget so the churn lands mid-sweep")
	}

	// Mid-sweep churn: the module is wiped and re-admitted again. Its repair
	// generation moves, so the in-flight sweep's certification must fail —
	// the classic certify-nothing ending.
	fs.Fail(victim)
	fs.RecoverPending(victim)

	// Churn over, fault set settled. The scheduler must keep sweeping and
	// drain the backlog; before the fix it paused on the stale sweep's
	// verdict and no step ever made progress again.
	for i := 0; fs.RepairCount() > 0; i++ {
		if i > 1000 {
			t.Fatalf("repair backlog stuck at %d after the churn stopped", fs.RepairCount())
		}
		sys.RepairStep()
	}
}
