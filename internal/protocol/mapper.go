package protocol

import (
	"detshmem/internal/core"
)

// Mapper abstracts a memory-organization scheme for the quorum access
// protocol: how many copies each variable has, where each copy lives, and
// how many copies a read or a write must touch. Quorum correctness requires
// ReadQuorum + WriteQuorum > Copies (any read quorum intersects any write
// quorum), which NewGenericSystem validates.
//
// Implementations in this repository:
//   - the Pietracaprina–Preparata scheme (this package, via NewSystem):
//     q+1 copies, both quorums q/2+1;
//   - Mehlhorn–Vishkin (internal/baseline): c copies, read quorum 1,
//     write quorum c;
//   - single-copy hashed/blocked (internal/baseline): 1 copy, quorums 1;
//   - Upfal–Wigderson random graphs (internal/baseline): 2c−1 copies,
//     quorums c.
type Mapper interface {
	// Name identifies the scheme in reports.
	Name() string
	// NumVars is the number of addressable variables M.
	NumVars() uint64
	// NumModules is the number of memory modules N.
	NumModules() uint64
	// Copies is the replication factor r.
	Copies() int
	// ReadQuorum is the number of copies a read must access.
	ReadQuorum() int
	// WriteQuorum is the number of copies a write must access.
	WriteQuorum() int
	// CopyAddr locates copy c of variable v: the module that serves it and
	// a globally unique copy address used as the storage key.
	CopyAddr(v uint64, c int) (module uint64, addr uint64)
	// AddrSpace is an exclusive upper bound on copy addresses; the store
	// sizes itself from it.
	AddrSpace() uint64
}

// coreMapper adapts core.Scheme + core.Indexer to the Mapper interface.
type coreMapper struct {
	s   *core.Scheme
	idx core.Indexer
}

// NewCoreMapper wraps the Pietracaprina–Preparata organization as a Mapper.
func NewCoreMapper(s *core.Scheme, idx core.Indexer) Mapper {
	return &coreMapper{s: s, idx: idx}
}

func (m *coreMapper) Name() string       { return "pp93" }
func (m *coreMapper) NumVars() uint64    { return m.idx.M() }
func (m *coreMapper) NumModules() uint64 { return m.s.NumModules }
func (m *coreMapper) Copies() int        { return m.s.Copies }
func (m *coreMapper) ReadQuorum() int    { return m.s.Majority }
func (m *coreMapper) WriteQuorum() int   { return m.s.Majority }

func (m *coreMapper) CopyAddr(v uint64, c int) (uint64, uint64) {
	mod, off := m.s.CopyLocation(m.idx.Mat(v), c)
	return mod, mod*uint64(m.s.ModuleSize) + uint64(off)
}

func (m *coreMapper) AddrSpace() uint64 {
	return m.s.NumModules * uint64(m.s.ModuleSize)
}
