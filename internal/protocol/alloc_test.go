package protocol

import (
	"testing"

	"detshmem/internal/core"
	"detshmem/internal/obs"
)

// allocSystem builds a compiled-resolver system over the q=2 core scheme for
// the steady-state allocation guards.
func allocSystem(t *testing.T, cfg Config) (*System, []Request) {
	t.Helper()
	s, err := core.New(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := s.NewIndexer()
	if err != nil {
		t.Fatal(err)
	}
	r, err := CompileMapper(NewCoreMapper(s, idx), CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewGenericSystem(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	n := int(r.NumModules())
	reqs := make([]Request, n)
	for i := range reqs {
		op := Read
		if i%2 == 0 {
			op = Write
		}
		reqs[i] = Request{Var: uint64(i * 37 % int(r.NumVars())), Op: op, Value: uint64(i)}
	}
	seen := map[uint64]bool{}
	w := 0
	for _, rq := range reqs {
		if !seen[rq.Var] {
			seen[rq.Var] = true
			reqs[w] = rq
			w++
		}
	}
	return sys, reqs[:w]
}

// TestAccessIntoSteadyStateAllocs pins the whole protocol iteration loop —
// validation, address resolution, the phase loop, metrics — at zero
// allocations per batch once the scratch buffers are warm, on both MPC
// engines. The instrumentation hooks are installed explicitly: the no-op
// recorder on the round path and a live collector on the batch path (whose
// ObserveBatch is atomics-only) must not cost an allocation.
func TestAccessIntoSteadyStateAllocs(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"sequential", Config{Recorder: obs.Nop, Observer: obs.NewCollector()}},
		{"parallel", Config{Parallel: true, Workers: 4, Recorder: obs.Nop, Observer: obs.NewCollector()}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sys, reqs := allocSystem(t, tc.cfg)
			var res Result
			if err := sys.AccessInto(reqs, &res); err != nil { // warm-up
				t.Fatal(err)
			}
			if avg := testing.AllocsPerRun(50, func() {
				if err := sys.AccessInto(reqs, &res); err != nil {
					t.Fatal(err)
				}
			}); avg != 0 {
				t.Fatalf("AccessInto allocates %.2f per batch in steady state, want 0", avg)
			}
		})
	}
}

// TestBatchWrappersSteadyStateAllocs pins the ReadBatch/WriteBatch
// convenience wrappers at zero allocations per call once their scratch
// (request conversion buffer plus the shared Result) is warm: the wrappers
// route through AccessInto with reused buffers instead of allocating a
// request slice and Result per call.
func TestBatchWrappersSteadyStateAllocs(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"sequential", Config{Recorder: obs.Nop, Observer: obs.NewCollector()}},
		{"parallel", Config{Parallel: true, Workers: 4, Recorder: obs.Nop, Observer: obs.NewCollector()}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sys, reqs := allocSystem(t, tc.cfg)
			vars := make([]uint64, len(reqs))
			vals := make([]uint64, len(reqs))
			for i, rq := range reqs {
				vars[i] = rq.Var
				vals[i] = uint64(100 + i)
			}
			if _, err := sys.WriteBatch(vars, vals); err != nil { // warm-up
				t.Fatal(err)
			}
			if _, _, err := sys.ReadBatch(vars); err != nil {
				t.Fatal(err)
			}
			if avg := testing.AllocsPerRun(50, func() {
				if _, err := sys.WriteBatch(vars, vals); err != nil {
					t.Fatal(err)
				}
				if got, _, err := sys.ReadBatch(vars); err != nil {
					t.Fatal(err)
				} else if got[0] != vals[0] {
					t.Fatalf("readback %d, want %d", got[0], vals[0])
				}
			}); avg != 0 {
				t.Fatalf("batch wrappers allocate %.2f per write+read in steady state, want 0", avg)
			}
		})
	}
}

// TestAccessMatchesAccessInto checks the allocating wrapper and the reuse
// path return identical values and metrics.
func TestAccessMatchesAccessInto(t *testing.T) {
	sysA, reqs := allocSystem(t, Config{})
	sysB, _ := allocSystem(t, Config{})

	vals := make([]uint64, len(reqs))
	for i := range vals {
		vals[i] = uint64(1000 + i)
	}
	for i := range reqs {
		reqs[i].Op = Write
		reqs[i].Value = vals[i]
	}
	resA, err := sysA.Access(reqs)
	if err != nil {
		t.Fatal(err)
	}
	var resB Result
	if err := sysB.AccessInto(reqs, &resB); err != nil {
		t.Fatal(err)
	}
	if resA.Metrics.TotalRounds != resB.Metrics.TotalRounds ||
		resA.Metrics.CopyAccesses != resB.Metrics.CopyAccesses ||
		resA.Metrics.Phases != resB.Metrics.Phases {
		t.Fatalf("metrics diverge: Access=%+v AccessInto=%+v", resA.Metrics, resB.Metrics)
	}

	for i := range reqs {
		reqs[i].Op = Read
	}
	resA, err = sysA.Access(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if err := sysB.AccessInto(reqs, &resB); err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		if resA.Values[i] != vals[i] || resB.Values[i] != vals[i] {
			t.Fatalf("read %d: Access=%d AccessInto=%d want %d", i, resA.Values[i], resB.Values[i], vals[i])
		}
	}
}
