package protocol

import (
	"fmt"
	"math/rand"
	"testing"

	"detshmem/internal/core"
	"detshmem/internal/mpc"
	"detshmem/internal/network"
	"detshmem/internal/workload"
)

// TestDifferentialStress cross-checks every protocol configuration axis
// (policy × arbiter × engine × cluster size × interconnect) against a plain
// reference model over long mixed batch sequences. All configurations must
// produce identical *values* (metrics legitimately differ).
func TestDifferentialStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	s, err := core.New(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := s.NewIndexer()
	if err != nil {
		t.Fatal(err)
	}
	configs := []Config{
		{},
		{Policy: PolicyFixedMajority},
		{Arb: mpc.ArbRoundRobin},
		{Arb: mpc.ArbRandom, Seed: 17},
		{Parallel: true, Workers: 3},
		{ClusterSize: 5},
		{CacheAddresses: true},
		{NewMachine: func(cfg mpc.Config) (Machine, error) {
			return network.NewMachineTopology(cfg, network.TopoHypercube)
		}},
	}
	for ci, cfg := range configs {
		cfg := cfg
		t.Run(fmt.Sprintf("cfg%d", ci), func(t *testing.T) {
			t.Parallel()
			sys, err := NewSystem(s, idx, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ref := make(map[uint64]uint64)
			rng := rand.New(rand.NewSource(int64(1000 + ci)))
			for batch := 0; batch < 60; batch++ {
				k := 1 + rng.Intn(int(s.NumModules))
				vars := workload.DistinctRandom(rng, idx.M(), k)
				var reqs []Request
				for _, v := range vars {
					if rng.Intn(3) == 0 {
						reqs = append(reqs, Request{Var: v, Op: Read})
					} else {
						reqs = append(reqs, Request{Var: v, Op: Write, Value: rng.Uint64()})
					}
				}
				res, err := sys.Access(reqs)
				if err != nil {
					t.Fatalf("batch %d: %v", batch, err)
				}
				for i, r := range reqs {
					if r.Op == Read && res.Values[i] != ref[r.Var] {
						t.Fatalf("batch %d: read %d = %d, want %d",
							batch, r.Var, res.Values[i], ref[r.Var])
					}
				}
				for _, r := range reqs {
					if r.Op == Write {
						ref[r.Var] = r.Value
					}
				}
				// Universal metric invariants.
				m := res.Metrics
				if m.TotalRounds <= 0 || m.MaxIterations <= 0 {
					t.Fatalf("batch %d: degenerate metrics %+v", batch, m)
				}
				if m.CopyAccesses < len(reqs)*s.Majority {
					t.Fatalf("batch %d: %d copy accesses below quorum minimum", batch, m.CopyAccesses)
				}
				if m.InterconnectCost < uint64(m.TotalRounds) {
					t.Fatalf("batch %d: interconnect cost %d below round count %d",
						batch, m.InterconnectCost, m.TotalRounds)
				}
			}
		})
	}
}
