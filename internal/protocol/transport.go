package protocol

import (
	"detshmem/internal/mpc"
)

// Transport abstracts how the access protocol's synchronous bid rounds reach
// the memory modules — the boundary between the protocol layer (quorum
// selection, phases, retries) and the Module Parallel Computer that executes
// them. A transport builds Machine instances on demand; the protocol may
// build several machines over one transport as batch geometry grows
// (obtainMachine), so transports must treat NewMachine as cheap and let the
// machines share whatever persistent state (connections, stores) the
// transport owns.
//
// The transport boundary deliberately sits at the MPC bid level, not the
// protocol level: the paper's constructive map means a client can compute
// every copy's module address with O(1) registers, so the only thing that
// must cross the wire is a round of (module, claim, payload) bids — no
// directory, no remote quorum logic, no coordination between servers.
// DESIGN.md row 26 records the full argument.
//
// Two implementations exist: Inproc (the in-process MPC simulator, the
// default and the zero-regression path) and internal/netmpc's TCP transport,
// where contiguous module ranges live on remote memserver processes.
type Transport interface {
	// Name identifies the transport in reports ("inproc", "tcp").
	Name() string
	// NewMachine builds an interconnect machine with the given geometry.
	// The protocol closes a machine (when it implements io.Closer-style
	// Close) before replacing it, but never closes the transport itself —
	// the caller that built the transport owns its lifetime.
	NewMachine(cfg mpc.Config) (Machine, error)
}

// inprocTransport is the default transport: the in-process MPC simulator.
type inprocTransport struct{}

func (inprocTransport) Name() string { return "inproc" }

func (inprocTransport) NewMachine(cfg mpc.Config) (Machine, error) { return mpc.New(cfg) }

// Inproc is the in-process transport — today's direct-call path. A nil
// Config.Transport means Inproc; the value exists so configuration plumbing
// (shard, smembench) can name the default explicitly.
var Inproc Transport = inprocTransport{}

// RemoteStore is implemented by interconnect machines whose memory cells
// live on the far side of the transport (netmpc.Client): the protocol
// stages each bid's access payload before the round, the remote module
// applies the winning bid's operation to its own store, and granted reads
// carry the (value, timestamp) pair back in the round reply.
//
// obtainMachine type-asserts the machine against this interface, exactly
// like FaultView: in-process machines don't implement it, the System keeps
// using its local store, and the hot path pays one nil check per round.
//
// One behavioural difference from the local store is deliberate: a granted
// bid whose request already completed its quorum ("cancelled" in the
// paper's protocol) still applies its write remotely, because the remote
// module cannot know the quorum state. Extra copies written at the same
// timestamp are harmless under the majority rule — reads take the newest
// timestamp over any quorum — so the observable values are identical.
type RemoteStore interface {
	// StageBid records the access payload processor proc will bid with in
	// the next Round call: the flat copy address, the operation, the value
	// (writes), and the batch timestamp.
	StageBid(proc int32, addr uint64, op Op, value, ts uint64)
	// GrantData returns the (value, timestamp) the remote module attached
	// to proc's granted bid in the last Round. Valid only for procs whose
	// grant flag was set, until the next Round.
	GrantData(proc int32) (value, ts uint64)
}
