package protocol

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"detshmem/internal/obs"
)

// packedAssignment is one compiled copy location: the module serving the
// copy and the copy's flat storage address, packed for cache-friendly
// sequential scans by the protocol's per-batch resolution sweep.
type packedAssignment struct {
	module int64
	addr   uint64
}

// CompileOptions tunes CompileMapper.
type CompileOptions struct {
	// Workers bounds the goroutines used to build the eager table;
	// 0 means GOMAXPROCS.
	Workers int
	// Lazy forces sharded lazy materialization: nothing is computed up
	// front, and each shard of shardVars variables is compiled on first
	// touch. Memory then grows with the touched working set, not with M.
	Lazy bool
	// Eager forces the full upfront table even above LazyThreshold.
	Eager bool
	// LazyThreshold is the table-entry count (NumVars·Copies) above which
	// compilation defaults to lazy sharding; 0 means DefaultLazyThreshold.
	LazyThreshold uint64
}

// DefaultLazyThreshold is the default eager/lazy cutover: 2^24 entries
// (256 MiB of packed assignments) compiled up front at most.
const DefaultLazyThreshold = 1 << 24

const (
	shardBits = 10 // variables per lazy shard: 1024
	shardVars = 1 << shardBits
)

// resolverShard is one lazily compiled block of shardVars variables. The
// table pointer is published atomically after a mutex-serialized build, so
// readers never lock on the hot path.
type resolverShard struct {
	table atomic.Pointer[[]packedAssignment]
	mu    sync.Mutex
}

// CompiledResolver is a compiled address map for a Mapper: the (module,
// address) of every copy of every variable, precomputed into a dense
// immutable table (or compiled shard-by-shard on demand in lazy mode) so
// the per-batch resolution sweep is an O(1) array read per copy instead of
// the live O(log N) algebra of Mapper.CopyAddr.
//
// A resolver is safe for concurrent use and is meant to be shared: any
// number of Systems and frontends over the same memory organization can
// reference one resolver (via Config.Resolver, or by using the resolver
// itself as the System's Mapper — CompiledResolver implements Mapper and
// reports the underlying scheme's name and parameters).
type CompiledResolver struct {
	inner  Mapper
	vars   uint64
	copies int

	table  []packedAssignment // eager: len = vars·copies, immutable
	shards []resolverShard    // lazy: one entry per shardVars variables

	// observer, when set (Observe), receives a residency update at
	// attachment and after every lazy shard materialization.
	observer atomic.Pointer[obs.ResolverObserver]
}

// CompileMapper compiles m's address map. The eager table is built in
// parallel across opts.Workers goroutines; lazy mode returns immediately
// and compiles shards on first touch. Compiling an already compiled
// resolver returns it unchanged.
func CompileMapper(m Mapper, opts CompileOptions) (*CompiledResolver, error) {
	if m == nil {
		return nil, fmt.Errorf("protocol: cannot compile nil mapper")
	}
	if r, ok := m.(*CompiledResolver); ok {
		return r, nil
	}
	vars, copies := m.NumVars(), m.Copies()
	if vars == 0 || copies < 1 {
		return nil, fmt.Errorf("protocol: cannot compile %s with %d vars, %d copies", m.Name(), vars, copies)
	}
	entries := vars * uint64(copies)
	threshold := opts.LazyThreshold
	if threshold == 0 {
		threshold = DefaultLazyThreshold
	}
	r := &CompiledResolver{inner: m, vars: vars, copies: copies}
	if opts.Lazy || (!opts.Eager && entries > threshold) {
		r.shards = make([]resolverShard, (vars+shardVars-1)/shardVars)
		return r, nil
	}
	r.table = make([]packedAssignment, entries)
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if uint64(workers) > vars {
		workers = int(vars)
	}
	chunk := (vars + uint64(workers) - 1) / uint64(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := uint64(w) * chunk
		hi := lo + chunk
		if hi > vars {
			hi = vars
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi uint64) {
			defer wg.Done()
			compileRange(m, r.table, lo, hi, copies)
		}(lo, hi)
	}
	wg.Wait()
	return r, nil
}

// compileRange fills table with the copies of variables [lo, hi).
func compileRange(m Mapper, table []packedAssignment, lo, hi uint64, copies int) {
	for v := lo; v < hi; v++ {
		base := v * uint64(copies)
		for c := 0; c < copies; c++ {
			mod, addr := m.CopyAddr(v, c)
			table[base+uint64(c)] = packedAssignment{module: int64(mod), addr: addr}
		}
	}
}

// row returns the compiled copies of v as one dense slice, materializing
// v's shard on first touch in lazy mode. v must be below NumVars.
func (r *CompiledResolver) row(v uint64) []packedAssignment {
	c := uint64(r.copies)
	if r.table != nil {
		return r.table[v*c : v*c+c]
	}
	sh := &r.shards[v>>shardBits]
	t := sh.table.Load()
	if t == nil {
		t = r.materialize(sh, v>>shardBits)
	}
	off := (v & (shardVars - 1)) * c
	return (*t)[off : off+c]
}

// materialize compiles one lazy shard, serializing concurrent first
// touches; later readers take the atomic fast path in row.
func (r *CompiledResolver) materialize(sh *resolverShard, shard uint64) *[]packedAssignment {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if t := sh.table.Load(); t != nil {
		return t
	}
	lo := shard << shardBits
	hi := lo + shardVars
	if hi > r.vars {
		hi = r.vars
	}
	t := make([]packedAssignment, (hi-lo)*uint64(r.copies))
	for v := lo; v < hi; v++ {
		base := (v - lo) * uint64(r.copies)
		for c := 0; c < r.copies; c++ {
			mod, addr := r.inner.CopyAddr(v, c)
			t[base+uint64(c)] = packedAssignment{module: int64(mod), addr: addr}
		}
	}
	sh.table.Store(&t)
	r.publishResidency()
	return &t
}

// Mapper returns the memory organization the resolver was compiled from.
func (r *CompiledResolver) Mapper() Mapper { return r.inner }

// Compiled reports how many variables have been compiled so far (all of
// them for an eager resolver; the touched shards for a lazy one).
func (r *CompiledResolver) Compiled() uint64 {
	if r.table != nil {
		return r.vars
	}
	var n uint64
	for i := range r.shards {
		if t := r.shards[i].table.Load(); t != nil {
			n += uint64(len(*t)) / uint64(r.copies)
		}
	}
	return n
}

// CompiledShards reports how many compiled blocks are resident: always 1
// for an eager table, the materialized shard count in lazy mode.
func (r *CompiledResolver) CompiledShards() int {
	if r.table != nil {
		return 1
	}
	n := 0
	for i := range r.shards {
		if r.shards[i].table.Load() != nil {
			n++
		}
	}
	return n
}

// ResidentBytes reports the resolver's resident table memory: 16 bytes per
// compiled copy entry (grows shard-wise with the touched working set in
// lazy mode).
func (r *CompiledResolver) ResidentBytes() uint64 {
	return r.Compiled() * uint64(r.copies) * 16
}

// Observe attaches a residency observer (obs.Collector implements the
// interface): the current residency is published immediately and again after
// every lazy shard materialization, so lazy table growth is visible on
// expvar/Prometheus without polling. Later calls replace the observer.
func (r *CompiledResolver) Observe(o obs.ResolverObserver) {
	r.observer.Store(&o)
	r.publishResidency()
}

// publishResidency pushes the current shard count and byte footprint to the
// attached observer, if any. Called off the read hot path (attachment and
// shard materialization only); the residency scan is O(shards).
func (r *CompiledResolver) publishResidency() {
	if p := r.observer.Load(); p != nil {
		(*p).ObserveResolverResidency(r.CompiledShards(), r.ResidentBytes())
	}
}

// compatibleWith checks that m has the geometry the resolver was compiled
// for (used when Config.Resolver pairs a resolver with a System's Mapper).
func (r *CompiledResolver) compatibleWith(m Mapper) error {
	if m.NumVars() != r.vars || m.Copies() != r.copies ||
		m.NumModules() != r.inner.NumModules() || m.AddrSpace() != r.inner.AddrSpace() {
		return fmt.Errorf("protocol: resolver compiled for %s (M=%d, copies=%d) does not match mapper %s (M=%d, copies=%d)",
			r.inner.Name(), r.vars, r.copies, m.Name(), m.NumVars(), m.Copies())
	}
	return nil
}

// The Mapper view of a resolver: identical metadata to the underlying
// organization, with CopyAddr served from the compiled table.

// Name identifies the underlying scheme (reports stay comparable).
func (r *CompiledResolver) Name() string { return r.inner.Name() }

// NumVars returns M.
func (r *CompiledResolver) NumVars() uint64 { return r.vars }

// NumModules returns N.
func (r *CompiledResolver) NumModules() uint64 { return r.inner.NumModules() }

// Copies returns the replication factor.
func (r *CompiledResolver) Copies() int { return r.copies }

// ReadQuorum returns the underlying read quorum.
func (r *CompiledResolver) ReadQuorum() int { return r.inner.ReadQuorum() }

// WriteQuorum returns the underlying write quorum.
func (r *CompiledResolver) WriteQuorum() int { return r.inner.WriteQuorum() }

// CopyAddr serves copy c of v from the compiled table.
func (r *CompiledResolver) CopyAddr(v uint64, c int) (uint64, uint64) {
	pa := r.row(v)[c]
	return uint64(pa.module), pa.addr
}

// AddrSpace returns the underlying address-space bound.
func (r *CompiledResolver) AddrSpace() uint64 { return r.inner.AddrSpace() }

var _ Mapper = (*CompiledResolver)(nil)
