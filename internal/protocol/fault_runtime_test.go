package protocol

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"detshmem/internal/baseline"
	"detshmem/internal/core"
	"detshmem/internal/mpc"
	"detshmem/internal/workload"
)

// sharedFaultSystem builds a PP93 system whose interconnect consults the
// given runtime fault set.
func sharedFaultSystem(t testing.TB, s *core.Scheme, idx core.Indexer, fs *mpc.FaultSet, cfg Config) *System {
	t.Helper()
	cfg.NewMachine = func(mcfg mpc.Config) (Machine, error) { return mpc.NewFailingShared(mcfg, fs) }
	if cfg.MaxIterationsPerPhase == 0 {
		cfg.MaxIterationsPerPhase = 2048
	}
	sys, err := NewSystem(s, idx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestDynamicFaultLifecycle drives one System through the full runtime
// fault story: healthy writes, reads that mask a single live failure by
// re-selecting their quorum over survivors, a quorum loss that strands
// exactly the victim while the rest of the batch commits (per-request
// attribution at the protocol layer), and recovery that makes the next
// batch whole again — all without rebuilding the system.
func TestDynamicFaultLifecycle(t *testing.T) {
	s, err := core.New(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := s.NewIndexer()
	if err != nil {
		t.Fatal(err)
	}
	fs := mpc.NewFaultSet()
	sys := sharedFaultSystem(t, s, idx, fs, Config{})

	n := int(s.NumModules)
	vars := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range vars {
		vars[i] = uint64(i)
		vals[i] = uint64(i + 100)
	}
	if _, err := sys.WriteBatch(vars, vals); err != nil {
		t.Fatalf("healthy write: %v", err)
	}

	// One failed module: every variable keeps a live majority (q = 2, three
	// copies in three distinct modules), so reads re-select and succeed.
	victim := uint64(10)
	vmods := s.VarModules(nil, idx.Mat(victim))
	fs.Fail(vmods[0])
	got, met, err := sys.ReadBatch(vars)
	if err != nil {
		t.Fatalf("read under one failure: %v (unfinished %v)", err, met.Unfinished)
	}
	for i := range got {
		if got[i] != vals[i] {
			t.Fatalf("read under one failure: var %d = %d, want %d", vars[i], got[i], vals[i])
		}
	}

	// Fail all of the victim's modules: its live copies drop below the
	// majority, so its request must fail with the quorum verdict — and only
	// its request. Companions are chosen with at most one copy in the failed
	// set so they provably keep a live majority.
	for _, m := range vmods[1:] {
		fs.Fail(m)
	}
	failed := map[uint64]bool{}
	for _, m := range vmods {
		failed[m] = true
	}
	batch := []uint64{victim}
	var scratch []uint64
	for v := uint64(0); v < uint64(n) && len(batch) < 8; v++ {
		if v == victim {
			continue
		}
		live := 0
		scratch = s.VarModules(scratch[:0], idx.Mat(v))
		for _, m := range scratch {
			if !failed[m] {
				live++
			}
		}
		if live >= s.Majority {
			batch = append(batch, v)
		}
	}
	got, met, err = sys.ReadBatch(batch)
	if !errors.Is(err, ErrQuorumUnreachable) {
		t.Fatalf("quorum loss not reported: %v", err)
	}
	if !errors.Is(err, ErrIncomplete) {
		t.Fatalf("ErrQuorumUnreachable must unwrap to ErrIncomplete: %v", err)
	}
	if len(met.Stranded) != 1 || met.Stranded[0] != 0 {
		t.Fatalf("stranded set %v, want [0] (the victim)", met.Stranded)
	}
	for i := 1; i < len(batch); i++ {
		if got[i] != batch[i]+100 {
			t.Fatalf("healthy companion %d read %d, want %d under partial failure", batch[i], got[i], batch[i]+100)
		}
	}

	// Recovery heals the next batch on the same System.
	for _, m := range vmods {
		fs.Recover(m)
	}
	got, _, err = sys.ReadBatch(batch)
	if err != nil {
		t.Fatalf("read after recovery: %v", err)
	}
	if got[0] != vals[victim] {
		t.Fatalf("victim after recovery = %d, want %d", got[0], vals[victim])
	}
}

// TestFaultMatrix is the fault-tolerance matrix: random fault sets of size
// 0..⌊r/2⌋ × every Mapper in the repository × both MPC engines × live and
// compiled resolvers. The contract under test is the tentpole's: every
// variable that retains a full live quorum round-trips, and every variable
// that does not is reported per-request as stranded while the rest of its
// batch commits.
func TestFaultMatrix(t *testing.T) {
	type mcase struct {
		name  string
		build func() (Mapper, error)
	}
	s2, err := core.New(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	idx2, err := s2.NewIndexer()
	if err != nil {
		t.Fatal(err)
	}
	s4, err := core.New(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	idx4, err := s4.NewIndexer()
	if err != nil {
		t.Fatal(err)
	}
	mappers := []mcase{
		{"pp93-q2", func() (Mapper, error) { return NewCoreMapper(s2, idx2), nil }},
		{"pp93-q4", func() (Mapper, error) { return NewCoreMapper(s4, idx4), nil }},
		{"mv-c2", func() (Mapper, error) { return baseline.NewMV(64, 4096, 2) }},
		{"single", func() (Mapper, error) { return baseline.NewSingleCopy(64, 4096, baseline.PlaceInterleaved, 0) }},
		{"uw-c2", func() (Mapper, error) { return baseline.NewUW(64, 4096, 2, 7) }},
	}
	const batchSize = 48
	seed := int64(1)
	for _, mc := range mappers {
		for _, parallel := range []bool{false, true} {
			for _, compiled := range []bool{false, true} {
				m, err := mc.build()
				if err != nil {
					t.Fatal(err)
				}
				maxFaults := m.Copies() / 2
				for k := 0; k <= maxFaults; k++ {
					seed++
					name := fmt.Sprintf("%s/par=%v/compiled=%v/faults=%d", mc.name, parallel, compiled, k)
					t.Run(name, func(t *testing.T) {
						rng := rand.New(rand.NewSource(seed))
						faults := workload.RandomFaults(rng, m.NumModules(), k)
						fs := mpc.NewFaultSet(faults...)
						cfg := Config{
							Parallel:              parallel,
							MaxIterationsPerPhase: 2048,
							NewMachine: func(mcfg mpc.Config) (Machine, error) {
								return mpc.NewFailingShared(mcfg, fs)
							},
						}
						if compiled {
							r, err := CompileMapper(m, CompileOptions{})
							if err != nil {
								t.Fatal(err)
							}
							cfg.Resolver = r
						}
						sys, err := NewGenericSystem(m, cfg)
						if err != nil {
							t.Fatal(err)
						}
						defer sys.Close()

						vars := workload.DistinctRandom(rng, m.NumVars(), batchSize)
						vals := make([]uint64, len(vars))
						liveOf := make([]int, len(vars))
						for i, v := range vars {
							vals[i] = uint64(1000 + i)
							live := 0
							for c := 0; c < m.Copies(); c++ {
								mod, _ := m.CopyAddr(v, c)
								if !fs.Failed(mod) {
									live++
								}
							}
							liveOf[i] = live
						}
						writable := func(i int) bool { return liveOf[i] >= m.WriteQuorum() }
						readable := func(i int) bool { return liveOf[i] >= m.ReadQuorum() }

						met, err := sys.WriteBatch(vars, vals)
						checkVerdicts(t, "write", met, err, len(vars), writable)

						got, rmet, rerr := sys.ReadBatch(vars)
						checkVerdicts(t, "read", rmet, rerr, len(vars), readable)
						for i := range vars {
							if writable(i) && readable(i) && got[i] != vals[i] {
								t.Fatalf("var %d (live %d/%d) round-trip read %d, want %d",
									vars[i], liveOf[i], m.Copies(), got[i], vals[i])
							}
						}
					})
				}
			}
		}
	}
}

// epochFailMachine wraps the shared-fault interconnect and fails the
// scheduled modules immediately before executing round `at` (1-based), so
// the fault lands mid-phase: the batch loop selected its bids under the old
// fault epoch and only discovers the change on its next iteration.
type epochFailMachine struct {
	*mpc.Failing
	mods  []uint64
	at    int
	round int
}

func (m *epochFailMachine) Round(reqs []int64, grant []bool) int {
	m.round++
	if m.round == m.at {
		for _, mod := range m.mods {
			m.Faults().Fail(mod)
		}
	}
	return m.Failing.Round(reqs, grant)
}

// TestMidPhaseTotalBidLoss pins the refilter shed hole: when every in-flight
// bid of a request is dropped mid-phase (all its selected modules fail at
// once, with no live spare copy to reroute to), the request has no surviving
// task for a shed pass to key off — it must still reach the retry pass and
// surface in Unfinished/Stranded with ErrQuorumUnreachable instead of
// completing silently with a zero value, while the rest of the batch
// commits.
func TestMidPhaseTotalBidLoss(t *testing.T) {
	cases := []struct {
		name   string
		policy CopyPolicy
	}{
		{"all-cancel", PolicyAllCancel},
		{"fixed-majority", PolicyFixedMajority},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := core.New(1, 3)
			if err != nil {
				t.Fatal(err)
			}
			idx, err := s.NewIndexer()
			if err != nil {
				t.Fatal(err)
			}
			m := NewCoreMapper(s, idx)

			// The victim's in-flight bids: all copies under PolicyAllCancel,
			// only the pinned first quorum under PolicyFixedMajority. Failing
			// exactly those modules mid-phase drops its every bid with no
			// live spare.
			victim := uint64(10)
			limit := m.Copies()
			if tc.policy == PolicyFixedMajority {
				limit = m.ReadQuorum()
			}
			mods := make([]uint64, 0, limit)
			failed := map[uint64]bool{}
			for c := 0; c < limit; c++ {
				mod, _ := m.CopyAddr(victim, c)
				mods = append(mods, mod)
				failed[mod] = true
			}

			fs := mpc.NewFaultSet()
			var wrap *epochFailMachine
			sys, err := NewSystem(s, idx, Config{
				Policy:                tc.policy,
				MaxIterationsPerPhase: 256,
				NewMachine: func(mcfg mpc.Config) (Machine, error) {
					f, err := mpc.NewFailingShared(mcfg, fs)
					if err != nil {
						return nil, err
					}
					wrap = &epochFailMachine{Failing: f, mods: mods}
					return wrap, nil
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer sys.Close()

			// Companions provably keep their quorum after the injected
			// failure: under the pinned ablation every pinned copy must
			// survive, under all-cancel a live majority suffices.
			batch := []uint64{victim}
			for v := uint64(0); v < m.NumVars() && len(batch) < 7; v++ {
				if v == victim {
					continue
				}
				livePinned, live := 0, 0
				for c := 0; c < m.Copies(); c++ {
					mod, _ := m.CopyAddr(v, c)
					if failed[mod] {
						continue
					}
					live++
					if c < m.ReadQuorum() {
						livePinned++
					}
				}
				ok := live >= m.ReadQuorum()
				if tc.policy == PolicyFixedMajority {
					ok = livePinned == m.ReadQuorum()
				}
				if ok {
					batch = append(batch, v)
				}
			}
			vals := make([]uint64, len(batch))
			for i := range batch {
				vals[i] = batch[i] + 500
			}
			if _, err := sys.WriteBatch(batch, vals); err != nil {
				t.Fatalf("healthy seed write: %v", err)
			}

			// Arm the wrapper: the next MPC round is the first round of the
			// read batch's phase 0, after the victim's bids were selected
			// under the healthy epoch — a genuinely mid-phase failure.
			wrap.at = wrap.round + 1

			got, met, err := sys.ReadBatch(batch)
			if !errors.Is(err, ErrQuorumUnreachable) {
				t.Fatalf("mid-phase total bid loss not reported: err=%v unfinished=%v stranded=%v",
					err, met.Unfinished, met.Stranded)
			}
			if len(met.Unfinished) != 1 || met.Unfinished[0] != 0 {
				t.Fatalf("unfinished set %v, want [0] (the victim)", met.Unfinished)
			}
			if len(met.Stranded) != 1 || met.Stranded[0] != 0 {
				t.Fatalf("stranded set %v, want [0] (the victim)", met.Stranded)
			}
			for i := 1; i < len(batch); i++ {
				if got[i] != vals[i] {
					t.Fatalf("healthy companion %d read %d, want %d under mid-phase failure", batch[i], got[i], vals[i])
				}
			}
		})
	}
}

// checkVerdicts asserts the per-request fault attribution for one batch:
// requests whose variable keeps a full live quorum finish, the rest appear
// in both Unfinished and Stranded, and the batch error matches.
func checkVerdicts(t *testing.T, op string, met *Metrics, err error, n int, ok func(int) bool) {
	t.Helper()
	unfinished := map[int]bool{}
	for _, r := range met.Unfinished {
		unfinished[r] = true
	}
	stranded := map[int]bool{}
	for _, r := range met.Stranded {
		stranded[r] = true
		if !unfinished[r] {
			t.Fatalf("%s: stranded request %d missing from Unfinished", op, r)
		}
	}
	wantFail := 0
	for i := 0; i < n; i++ {
		if ok(i) {
			if unfinished[i] {
				t.Fatalf("%s: request %d has a full live quorum but did not finish", op, i)
			}
			continue
		}
		wantFail++
		if !unfinished[i] || !stranded[i] {
			t.Fatalf("%s: request %d lost its quorum but was not attributed (unfinished=%v stranded=%v)",
				op, i, unfinished[i], stranded[i])
		}
	}
	if wantFail == 0 {
		if err != nil {
			t.Fatalf("%s: unexpected batch error with all quorums live: %v", op, err)
		}
		return
	}
	if !errors.Is(err, ErrQuorumUnreachable) {
		t.Fatalf("%s: %d stranded requests but error is %v", op, wantFail, err)
	}
}
