package protocol

import (
	"fmt"
	"sync"
	"testing"

	"detshmem/internal/baseline"
	"detshmem/internal/core"
	"detshmem/internal/obs"
)

// TestCompiledResolverEquivalence proves the compiled table is byte-identical
// to live CopyAddr resolution: for every mapper in the fuzz matrix, every
// variable, every copy, eager and lazy compilation both return exactly the
// (module, addr) the live algebra computes.
func TestCompiledResolverEquivalence(t *testing.T) {
	for _, m := range mapperFuzzSetup(t) {
		for _, mode := range []struct {
			name string
			opts CompileOptions
		}{
			{"eager", CompileOptions{Eager: true}},
			{"eager-1worker", CompileOptions{Eager: true, Workers: 1}},
			{"lazy", CompileOptions{Lazy: true}},
		} {
			t.Run(fmt.Sprintf("%s/%s", m.Name(), mode.name), func(t *testing.T) {
				r, err := CompileMapper(m, mode.opts)
				if err != nil {
					t.Fatal(err)
				}
				// Sweep every variable on small mappers; stride large ones
				// (the q=8 core scheme has 266k variables) so ~32k spread
				// over every lazy shard are still checked.
				step := uint64(1)
				if m.NumVars() > 1<<15 {
					step = m.NumVars() >> 15
				}
				for v := uint64(0); v < m.NumVars(); v += step {
					for c := 0; c < m.Copies(); c++ {
						wantMod, wantAddr := m.CopyAddr(v, c)
						gotMod, gotAddr := r.CopyAddr(v, c)
						if gotMod != wantMod || gotAddr != wantAddr {
							t.Fatalf("%s: compiled CopyAddr(%d,%d) = (%d,%d), live = (%d,%d)",
								m.Name(), v, c, gotMod, gotAddr, wantMod, wantAddr)
						}
					}
				}
				if got := r.Compiled(); got != m.NumVars() {
					t.Fatalf("%s: Compiled() = %d after full sweep, want %d", m.Name(), got, m.NumVars())
				}
			})
		}
	}
}

// TestCompiledResolverMetadata checks the Mapper view of a resolver matches
// the underlying organization exactly, so a resolver can stand in for its
// mapper anywhere (reports, systems, frontends).
func TestCompiledResolverMetadata(t *testing.T) {
	for _, m := range mapperFuzzSetup(t) {
		r, err := CompileMapper(m, CompileOptions{Lazy: true})
		if err != nil {
			t.Fatal(err)
		}
		if r.Name() != m.Name() || r.NumVars() != m.NumVars() || r.NumModules() != m.NumModules() ||
			r.Copies() != m.Copies() || r.ReadQuorum() != m.ReadQuorum() ||
			r.WriteQuorum() != m.WriteQuorum() || r.AddrSpace() != m.AddrSpace() {
			t.Fatalf("%s: resolver metadata diverges from mapper", m.Name())
		}
		if r.Mapper() != m {
			t.Fatalf("%s: Mapper() does not return the compiled organization", m.Name())
		}
	}
}

// TestCompileMapperIdempotent checks compiling a resolver returns it
// unchanged.
func TestCompileMapperIdempotent(t *testing.T) {
	m := mapperFuzzSetup(t)[0]
	r1, err := CompileMapper(m, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := CompileMapper(r1, CompileOptions{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("recompiling a CompiledResolver built a new one")
	}
	if _, err := CompileMapper(nil, CompileOptions{}); err == nil {
		t.Fatal("CompileMapper(nil) did not error")
	}
}

// TestCompiledResolverLazyThreshold checks the eager/lazy cutover: small
// mappers compile eagerly by default, and a threshold below the entry count
// switches the default to lazy.
func TestCompiledResolverLazyThreshold(t *testing.T) {
	m := mapperFuzzSetup(t)[0]
	eager, err := CompileMapper(m, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if eager.Compiled() != m.NumVars() {
		t.Fatalf("default compile of %d-var mapper not eager", m.NumVars())
	}
	lazy, err := CompileMapper(m, CompileOptions{LazyThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	if lazy.Compiled() != 0 {
		t.Fatalf("compile above threshold started with %d vars materialized, want 0", lazy.Compiled())
	}
	forced, err := CompileMapper(m, CompileOptions{Eager: true, LazyThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	if forced.Compiled() != m.NumVars() {
		t.Fatal("Eager did not override LazyThreshold")
	}
}

// TestCompiledResolverConcurrentLazy hammers one shared lazy resolver from
// many goroutines touching overlapping shards; run under -race this checks
// the publish-once materialization is sound.
func TestCompiledResolverConcurrentLazy(t *testing.T) {
	m := mapperFuzzSetup(t)[2] // MV baseline: 4096 vars = several shards
	r, err := CompileMapper(m, CompileOptions{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for v := uint64(0); v < m.NumVars(); v += uint64(1 + g%3) {
				for c := 0; c < m.Copies(); c++ {
					wantMod, wantAddr := m.CopyAddr(v, c)
					gotMod, gotAddr := r.CopyAddr(v, c)
					if gotMod != wantMod || gotAddr != wantAddr {
						t.Errorf("goroutine %d: CopyAddr(%d,%d) mismatch", g, v, c)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestResolverSharedAcrossSystems runs two systems over one shared eager
// resolver (one via Config.Resolver, one using the resolver as its Mapper)
// and checks they behave identically to an uncompiled system.
func TestResolverSharedAcrossSystems(t *testing.T) {
	s, err := core.New(1, 3) // q=2
	if err != nil {
		t.Fatal(err)
	}
	idx, err := s.NewIndexer()
	if err != nil {
		t.Fatal(err)
	}
	m := NewCoreMapper(s, idx)
	r, err := CompileMapper(m, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}

	plain, err := NewGenericSystem(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	viaCfg, err := NewGenericSystem(m, Config{Resolver: r})
	if err != nil {
		t.Fatal(err)
	}
	viaMapper, err := NewGenericSystem(r, Config{})
	if err != nil {
		t.Fatal(err)
	}

	n := m.NumModules()
	vars := make([]uint64, n)
	vals := make([]uint64, n)
	for b := 0; b < 10; b++ {
		for i := range vars {
			vars[i] = (uint64(i)*2654435761 + uint64(b)*97) % m.NumVars()
			vals[i] = uint64(b)<<32 | uint64(i)
		}
		dedup := map[uint64]bool{}
		w := 0
		for _, v := range vars {
			if !dedup[v] {
				dedup[v] = true
				vars[w] = v
				w++
			}
		}
		vars := vars[:w]
		vals := vals[:w]
		for _, sys := range []*System{plain, viaCfg, viaMapper} {
			if _, err := sys.WriteBatch(vars, vals); err != nil {
				t.Fatal(err)
			}
		}
		got := make([][]uint64, 3)
		for i, sys := range []*System{plain, viaCfg, viaMapper} {
			vs, _, err := sys.ReadBatch(vars)
			if err != nil {
				t.Fatal(err)
			}
			got[i] = vs
		}
		for i := range vars {
			if got[0][i] != got[1][i] || got[0][i] != got[2][i] {
				t.Fatalf("batch %d var %d: plain=%d viaCfg=%d viaMapper=%d",
					b, vars[i], got[0][i], got[1][i], got[2][i])
			}
			if got[0][i] != vals[i] {
				t.Fatalf("batch %d var %d: read %d, wrote %d", b, vars[i], got[0][i], vals[i])
			}
		}
	}
}

// TestResolverGeometryMismatch checks Config.Resolver rejects a resolver
// compiled for a different organization.
func TestResolverGeometryMismatch(t *testing.T) {
	mv, err := baseline.NewMV(64, 4096, 2)
	if err != nil {
		t.Fatal(err)
	}
	other, err := baseline.NewMV(64, 2048, 2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := CompileMapper(other, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewGenericSystem(mv, Config{Resolver: r}); err == nil {
		t.Fatal("mismatched resolver accepted")
	}
}

// TestResolverResidencyGauges checks CompiledShards/ResidentBytes and the
// obs wiring: an attached collector sees the residency at attachment, every
// lazy materialization pushes an update, and an eager table reports one
// resident block of vars·copies·16 bytes.
func TestResolverResidencyGauges(t *testing.T) {
	m := mapperFuzzSetup(t)[2] // MV baseline: 4096 vars = several lazy shards

	eager, err := CompileMapper(m, CompileOptions{Eager: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := eager.CompiledShards(); got != 1 {
		t.Fatalf("eager CompiledShards() = %d, want 1", got)
	}
	wantBytes := m.NumVars() * uint64(m.Copies()) * 16
	if got := eager.ResidentBytes(); got != wantBytes {
		t.Fatalf("eager ResidentBytes() = %d, want %d", got, wantBytes)
	}

	lazy, err := CompileMapper(m, CompileOptions{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	c := obs.NewCollector()
	lazy.Observe(c)
	if c.ResolverShards.Load() != 0 || c.ResolverBytes.Load() != 0 {
		t.Fatalf("fresh lazy resolver published shards=%d bytes=%d, want 0/0",
			c.ResolverShards.Load(), c.ResolverBytes.Load())
	}
	lazy.CopyAddr(0, 0) // touch shard 0
	if got := c.ResolverShards.Load(); got != 1 {
		t.Fatalf("after one touch ResolverShards = %d, want 1", got)
	}
	if got, want := c.ResolverBytes.Load(), int64(shardVars*m.Copies()*16); got != want {
		t.Fatalf("after one touch ResolverBytes = %d, want %d", got, want)
	}
	lazy.CopyAddr(shardVars, 0) // touch shard 1
	if got := c.ResolverShards.Load(); got != 2 {
		t.Fatalf("after second shard ResolverShards = %d, want 2", got)
	}
	if got := lazy.CompiledShards(); got != 2 {
		t.Fatalf("CompiledShards() = %d, want 2", got)
	}
}

// TestSystemWiresResolverObserver checks NewGenericSystem attaches a
// collector Observer to its resolver, so lazy growth during real batches
// lands on the gauges without any explicit Observe call.
func TestSystemWiresResolverObserver(t *testing.T) {
	mv, err := baseline.NewMV(64, 4096, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := obs.NewCollector()
	sys, err := NewGenericSystem(mv, Config{CacheAddresses: true, Observer: c})
	if err != nil {
		t.Fatal(err)
	}
	if c.ResolverShards.Load() != 0 {
		t.Fatalf("gauge non-zero before any access: %d", c.ResolverShards.Load())
	}
	if _, err := sys.WriteBatch([]uint64{1, 2, 3}, []uint64{10, 20, 30}); err != nil {
		t.Fatal(err)
	}
	if c.ResolverShards.Load() == 0 || c.ResolverBytes.Load() == 0 {
		t.Fatalf("gauges not updated by lazy materialization: shards=%d bytes=%d",
			c.ResolverShards.Load(), c.ResolverBytes.Load())
	}
}

// TestCacheAddressesRoutesThroughResolver checks the deprecated flag now
// attaches a lazy private resolver rather than the removed address map.
func TestCacheAddressesRoutesThroughResolver(t *testing.T) {
	mv, err := baseline.NewMV(64, 4096, 2)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewGenericSystem(mv, Config{CacheAddresses: true})
	if err != nil {
		t.Fatal(err)
	}
	if sys.resolver == nil {
		t.Fatal("CacheAddresses did not attach a resolver")
	}
	if sys.resolver.Compiled() != 0 {
		t.Fatal("CacheAddresses resolver not lazy")
	}
	if _, err := sys.WriteBatch([]uint64{1, 2, 3}, []uint64{10, 20, 30}); err != nil {
		t.Fatal(err)
	}
	if sys.resolver.Compiled() == 0 {
		t.Fatal("lazy resolver did not materialize after an access")
	}
}
