package protocol_test

import (
	"fmt"

	"detshmem/internal/core"
	"detshmem/internal/protocol"
)

// Example shows the three-line path from scheme to shared memory: build the
// organization, wrap it in the access protocol, and issue synchronous
// batches of distinct-variable requests.
func Example() {
	scheme, err := core.New(1, 5)
	if err != nil {
		panic(err)
	}
	idx, err := scheme.NewIndexer()
	if err != nil {
		panic(err)
	}
	sys, err := protocol.NewSystem(scheme, idx, protocol.Config{})
	if err != nil {
		panic(err)
	}
	vars := []uint64{10, 20, 30}
	if _, err := sys.WriteBatch(vars, []uint64{100, 200, 300}); err != nil {
		panic(err)
	}
	vals, met, err := sys.ReadBatch(vars)
	if err != nil {
		panic(err)
	}
	fmt.Println(vals, "in", met.Phases, "phases")
	// Output:
	// [100 200 300] in 3 phases
}
