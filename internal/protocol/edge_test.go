package protocol

import (
	"errors"
	"strings"
	"testing"

	"detshmem/internal/baseline"
	"detshmem/internal/core"
)

// Edge cases the combining frontend leans on: batch-boundary behaviour,
// typed admission errors, iteration-bound exhaustion, and the
// CacheAddresses × PolicyFixedMajority interaction.

func edgeSystem(t *testing.T, cfg Config) (*System, *core.Scheme) {
	t.Helper()
	s, err := core.New(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := s.NewIndexer()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(s, idx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys, s
}

// TestEmptyBatchNoWork: an empty batch (nil or zero-length) is a no-op
// that still returns a valid result and consumes no protocol work.
func TestEmptyBatchNoWork(t *testing.T) {
	sys, _ := edgeSystem(t, Config{})
	for _, reqs := range [][]Request{nil, {}} {
		res, err := sys.Access(reqs)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Values) != 0 {
			t.Fatalf("empty batch returned %d values", len(res.Values))
		}
		if res.Metrics.TotalRounds != 0 || res.Metrics.CopyAccesses != 0 {
			t.Fatalf("empty batch consumed work: %+v", res.Metrics)
		}
	}
}

// TestBatchOfExactlyN: the largest admissible batch (N requests) is served;
// one more is rejected with ErrBatchTooLarge.
func TestBatchOfExactlyN(t *testing.T) {
	sys, s := edgeSystem(t, Config{})
	n := int(s.NumModules)
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{Var: uint64(i), Op: Write, Value: uint64(i) + 7}
	}
	if _, err := sys.Access(reqs); err != nil {
		t.Fatalf("batch of exactly N=%d: %v", n, err)
	}
	for i := range reqs {
		reqs[i].Op = Read
	}
	res, err := sys.Access(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Values {
		if v != uint64(i)+7 {
			t.Fatalf("read %d = %d, want %d", i, v, uint64(i)+7)
		}
	}
	over := append(reqs, Request{Var: uint64(n), Op: Read})
	if _, err := sys.Access(over); !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("batch of N+1: err = %v, want ErrBatchTooLarge", err)
	}
}

// TestTypedAdmissionErrors: the sentinels match via errors.Is and the
// messages keep their historical text.
func TestTypedAdmissionErrors(t *testing.T) {
	sys, s := edgeSystem(t, Config{})
	n := int(s.NumModules)

	over := make([]Request, n+1)
	for i := range over {
		over[i] = Request{Var: uint64(i), Op: Read}
	}
	_, err := sys.Access(over)
	if !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("err = %v, want ErrBatchTooLarge", err)
	}
	if want := "protocol: batch of 64 exceeds N = 63"; err.Error() != want {
		t.Fatalf("message %q, want %q", err.Error(), want)
	}

	_, err = sys.Access([]Request{{Var: s.NumVariables, Op: Read}})
	if !errors.Is(err, ErrVarOutOfRange) {
		t.Fatalf("err = %v, want ErrVarOutOfRange", err)
	}
	if want := "protocol: variable 84 out of range [0,84)"; err.Error() != want {
		t.Fatalf("message %q, want %q", err.Error(), want)
	}

	_, err = sys.Access([]Request{{Var: 3, Op: Read}, {Var: 3, Op: Write}})
	if !errors.Is(err, ErrDuplicateVar) {
		t.Fatalf("err = %v, want ErrDuplicateVar", err)
	}
	if want := "protocol: variable 3 requested twice in one batch"; err.Error() != want {
		t.Fatalf("message %q, want %q", err.Error(), want)
	}

	// The sentinels are mutually exclusive.
	if errors.Is(err, ErrBatchTooLarge) || errors.Is(err, ErrVarOutOfRange) || errors.Is(err, ErrIncomplete) {
		t.Fatal("duplicate-var error matches unrelated sentinels")
	}
}

// TestMaxIterationsExhaustion: a deliberately starved iteration bound on a
// fully colliding batch returns the quorum-unreachable error with the
// stragglers listed, while the served request still completes.
func TestMaxIterationsExhaustion(t *testing.T) {
	m, err := baseline.NewSingleCopy(64, 4096, baseline.PlaceInterleaved, 0)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewGenericSystem(m, Config{MaxIterationsPerPhase: 1})
	if err != nil {
		t.Fatal(err)
	}
	batch := m.WorstBatch(16) // 16 variables, all in module 0
	reqs := make([]Request, len(batch))
	for i, v := range batch {
		reqs[i] = Request{Var: v, Op: Read}
	}
	res, err := sys.Access(reqs)
	if !errors.Is(err, ErrIncomplete) {
		t.Fatalf("err = %v, want ErrIncomplete", err)
	}
	if !strings.Contains(err.Error(), "quorum") {
		t.Fatalf("message %q does not mention the quorum", err.Error())
	}
	if res == nil {
		t.Fatal("ErrIncomplete must still return the partial result")
	}
	// One grant per module per round: exactly one request finished.
	if got := len(res.Metrics.Unfinished); got != len(reqs)-1 {
		t.Fatalf("%d unfinished, want %d", got, len(reqs)-1)
	}
	// A generous bound on the same batch completes it.
	sys2, err := NewGenericSystem(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys2.Access(reqs); err != nil {
		t.Fatalf("unbounded run failed: %v", err)
	}
}

// TestCacheWithFixedMajority: CacheAddresses and PolicyFixedMajority
// compose — repeated batches through the cached fixed-quorum system return
// exactly what a fresh default system returns.
func TestCacheWithFixedMajority(t *testing.T) {
	cached, s := edgeSystem(t, Config{CacheAddresses: true, Policy: PolicyFixedMajority})
	plain, _ := edgeSystem(t, Config{})
	vars := make([]uint64, 0, 32)
	for v := uint64(0); v < 32; v++ {
		vars = append(vars, v%s.NumVariables)
	}
	vars = vars[:20]
	vals := make([]uint64, len(vars))
	for i := range vals {
		vals[i] = uint64(i)*13 + 1
	}
	for round := 0; round < 3; round++ { // repeats hit the address cache
		for i := range vals {
			vals[i] += uint64(round) << 16
		}
		if _, err := cached.WriteBatch(vars, vals); err != nil {
			t.Fatal(err)
		}
		if _, err := plain.WriteBatch(vars, vals); err != nil {
			t.Fatal(err)
		}
		got, _, err := cached.ReadBatch(vars)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := plain.ReadBatch(vars)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != want[i] || got[i] != vals[i] {
				t.Fatalf("round %d var %d: cached=%d plain=%d want=%d",
					round, vars[i], got[i], want[i], vals[i])
			}
		}
	}
	// The cached fixed-quorum run must touch exactly quorum-many copies per
	// request: the remaining copies keep timestamp 0.
	for _, v := range vars {
		ts := cached.CopyState(v)
		touched := 0
		for _, x := range ts {
			if x != 0 {
				touched++
			}
		}
		if touched != cached.Mapper.WriteQuorum() {
			t.Fatalf("var %d: %d copies touched under fixed majority, want %d", v, touched, cached.Mapper.WriteQuorum())
		}
	}
}
