package protocol

import (
	"detshmem/internal/mpc"
)

// FaultView is the read side of a dynamic fault model: an interconnect that
// can lose modules at runtime (mpc.Failing) exposes which modules are
// currently failed so the access protocol can re-select quorums over the
// survivors instead of bidding blindly at crashed banks. obtainMachine
// type-asserts the machine against this interface; healthy interconnects
// don't implement it and pay nothing.
//
// All three methods must be safe to call concurrently with mutation
// (mpc.FaultSet publishes epoch-stamped atomic snapshots).
type FaultView interface {
	// ModuleFailed reports whether module m is failed right now.
	ModuleFailed(m int64) bool
	// FaultEpoch increases on every effective fail/recover, letting the
	// batch loop detect mid-phase changes with one load per iteration.
	FaultEpoch() uint64
	// FaultCount returns the number of currently failed modules.
	FaultCount() int
}

// defaultFaultAttempts is the post-phase retry budget when Config.
// FaultAttempts is zero: one pass to mop up requests disturbed mid-phase,
// one more in case a recovery lands between them.
const defaultFaultAttempts = 2

// barred reports whether module m may not count toward a quorum for op.
// Failed modules serve nothing. Repairing modules (recovered but not yet
// rebuilt — see RepairView) serve writes — the written copy receives fresh
// data, so counting it is sound and lets a degraded write quorum recover
// immediately — but are barred from read quorums until certification: their
// store may be stale or reborn empty, and a read quorum containing one
// could return a value older than the last committed write. Correctness is
// preserved because a read quorum drawn from the non-repairing copies is
// still a read quorum of the full copy set, so it intersects every write
// quorum, and the intersecting copy is trustworthy.
func (sys *System) barred(fv FaultView, op Op, m int64) bool {
	if fv.ModuleFailed(m) {
		return true
	}
	return op == Read && sys.rv != nil && sys.rv.ModuleRepairing(m)
}

// selectLive builds the phase task list for request r with the fault set in
// view. Under PolicyAllCancel, failed copies are skipped and later live
// copies slide up into the cluster's processor slots (quorum re-selection
// over survivors); under PolicyFixedMajority the pinned first-quorum copies
// are kept verbatim — redundancy without routing freedom — so a failed
// pinned module is detected as unreachable up front rather than discovered
// by burning the whole iteration budget. Requests that cannot reach their
// quorum are queued for the post-phase retry pass and bid nothing now.
func (sys *System) selectLive(fv FaultView, tasks []taskRef, reqs []Request, copies []assignment, nCopies, r, procBase, inFlight int) []taskRef {
	sys.stalled[r] = false
	sys.usedMask[r] = 0
	sys.touchedC[r] = 0
	sys.liveBids[r] = 0
	base := r * nCopies
	op := reqs[r].Op
	if sys.cfg.Policy == PolicyFixedMajority {
		liveCnt := int32(0)
		for j := 0; j < inFlight; j++ {
			if !sys.barred(fv, op, copies[base+j].module) {
				liveCnt++
			}
		}
		if liveCnt < sys.remaining[r] {
			sys.queueRetry(int32(r))
			return tasks
		}
		for j := 0; j < inFlight; j++ {
			tasks = append(tasks, taskRef{proc: int32(procBase + j), a: copies[base+j]})
			sys.usedMask[r] |= 1 << uint(j)
		}
		sys.liveBids[r] = int32(inFlight)
		return tasks
	}
	start := len(tasks)
	assigned := 0
	for c := 0; c < nCopies && assigned < inFlight; c++ {
		a := copies[base+c]
		if sys.barred(fv, op, a.module) {
			continue
		}
		tasks = append(tasks, taskRef{proc: int32(procBase + assigned), a: a})
		sys.usedMask[r] |= 1 << uint(c)
		assigned++
	}
	if int32(assigned) < sys.remaining[r] {
		sys.usedMask[r] = 0
		sys.queueRetry(int32(r))
		return tasks[:start]
	}
	sys.liveBids[r] = int32(assigned)
	return tasks
}

// queueRetry records request r for the post-phase retry pass, once.
func (sys *System) queueRetry(r int32) {
	if sys.remaining[r] > 0 && !sys.stalled[r] {
		sys.stalled[r] = true
		sys.retry = append(sys.retry, r)
	}
}

// refilterTasks runs when the fault epoch moved mid-phase: bids addressed
// at newly failed modules (or, for reads, modules freshly entering repair)
// are dropped and, under PolicyAllCancel, replaced by a spare live copy
// never selected this phase (reusing the freed processor slot). Requests
// whose in-flight bids fell below their remaining quorum are shed to the
// retry pass — their surviving bids would otherwise spin against the
// iteration cap without ever completing.
func (sys *System) refilterTasks(fv FaultView, tasks []taskRef, reqs []Request, copies []assignment, nCopies int, res *Result) []taskRef {
	out := tasks[:0]
	for _, t := range tasks {
		r := t.a.req
		if sys.remaining[r] <= 0 || !sys.barred(fv, reqs[r].Op, t.a.module) {
			out = append(out, t)
			continue
		}
		sys.liveBids[r]--
		if sys.cfg.Policy != PolicyFixedMajority {
			base := int(r) * nCopies
			for c := 0; c < nCopies; c++ {
				if sys.usedMask[r]&(1<<uint(c)) != 0 {
					continue
				}
				a := copies[base+c]
				if sys.barred(fv, reqs[r].Op, a.module) {
					continue
				}
				sys.usedMask[r] |= 1 << uint(c)
				sys.liveBids[r]++
				res.Metrics.RetriedBids++
				out = append(out, taskRef{proc: t.proc, a: a})
				break
			}
		}
		if sys.liveBids[r] < sys.remaining[r] {
			// Shed here, not only in the surviving-task pass below: when
			// every one of r's bids was just dropped, r has no task left in
			// out, and a shed keyed off surviving tasks would never see it —
			// the request would leave the phase unserved and unreported.
			sys.queueRetry(r)
		}
	}
	n := 0
	for _, t := range out {
		r := t.a.req
		if sys.remaining[r] > 0 && sys.liveBids[r] < sys.remaining[r] {
			sys.queueRetry(r)
			continue
		}
		out[n] = t
		n++
	}
	return out[:n]
}

// retryStranded is the post-phase bounded retry pass: every request the
// phase loop could not finish gets up to Config.FaultAttempts fresh quorum
// selections over the currently live, not-yet-touched copies. Copies already
// granted stay counted (touchedC masks them out of re-selection, so a
// quorum is always quorum-many distinct copies), and a module recovering
// between attempts rescues requests that were stranded when the phase ran.
// Requests still short after the budget are reported in Unfinished, with
// the provably quorum-less subset in Stranded. This path runs only under
// faults and may allocate.
func (sys *System) retryStranded(fv FaultView, machine Machine, geo int, reqs []Request, res *Result, maxIters int) {
	attempts := sys.cfg.FaultAttempts
	if attempts == 0 {
		attempts = defaultFaultAttempts
	}
	nCopies := sys.Mapper.Copies()
	copies := sys.copies
	pinned := sys.cfg.Policy == PolicyFixedMajority

	pending := sys.retry
	wave := sys.wave
	for att := 0; att < attempts && len(pending) > 0; att++ {
		var next []int32
		idx := 0
		for idx < len(pending) {
			// Pack one wave of re-selected bids into the machine's processor
			// space; oversized retry sets run in several waves.
			var tasks []taskRef
			wave = wave[:0]
			p := 0
			for ; idx < len(pending); idx++ {
				r := pending[idx]
				if sys.remaining[r] <= 0 {
					continue
				}
				limit := nCopies
				if pinned {
					limit = int(sys.quorum(reqs[r].Op))
				}
				base := int(r) * nCopies
				cnt := 0
				for c := 0; c < limit && cnt < geo; c++ {
					if sys.touchedC[r]&(1<<uint(c)) != 0 {
						continue
					}
					if !sys.barred(fv, reqs[r].Op, copies[base+c].module) {
						cnt++
					}
				}
				if int32(cnt) < sys.remaining[r] {
					// Short of a quorum right now; a recovery before the
					// next attempt may still rescue it.
					next = append(next, r)
					continue
				}
				if p+cnt > geo && len(wave) > 0 {
					break
				}
				sel := 0
				for c := 0; c < limit && sel < cnt; c++ {
					if sys.touchedC[r]&(1<<uint(c)) != 0 {
						continue
					}
					a := copies[base+c]
					if sys.barred(fv, reqs[r].Op, a.module) {
						continue
					}
					tasks = append(tasks, taskRef{proc: int32(p), a: a})
					p++
					sel++
				}
				wave = append(wave, r)
			}
			if len(tasks) == 0 {
				continue
			}
			res.Metrics.RetriedBids += len(tasks)
			sys.driveRetryWave(fv, machine, tasks, reqs, res, maxIters)
			for _, r := range wave {
				if sys.remaining[r] > 0 {
					next = append(next, r)
				} else if reqs[r].Op == Read {
					res.Values[r] = sys.bestVal[r]
				}
			}
		}
		pending = next
	}
	sys.wave = wave[:0]
	for _, r := range pending {
		if sys.remaining[r] <= 0 {
			continue
		}
		res.Metrics.Unfinished = append(res.Metrics.Unfinished, int(r))
		if sys.liveQuorumLost(fv, reqs, int(r), nCopies) {
			res.Metrics.Stranded = append(res.Metrics.Stranded, int(r))
		}
	}
	sys.retry = sys.retry[:0]
}

// driveRetryWave runs one wave's task list to completion (or the iteration
// cap), with the same grant processing as the phase loop plus the mid-wave
// epoch check.
func (sys *System) driveRetryWave(fv FaultView, machine Machine, tasks []taskRef, reqs []Request, res *Result, maxIters int) {
	mreqs, grant := sys.mreqs, sys.grant
	epoch := fv.FaultEpoch()
	iters := 0
	for len(tasks) > 0 && iters < maxIters {
		if e := fv.FaultEpoch(); e != epoch {
			epoch = e
			n := 0
			for _, t := range tasks {
				if sys.remaining[t.a.req] > 0 && sys.barred(fv, reqs[t.a.req].Op, t.a.module) {
					continue // dropped; the next attempt re-selects
				}
				tasks[n] = t
				n++
			}
			tasks = tasks[:n]
			if len(tasks) == 0 {
				break
			}
		}
		for _, t := range tasks {
			mreqs[t.proc] = t.a.module
		}
		if sys.rs != nil {
			sys.stageTasks(reqs, tasks)
		}
		machine.Round(mreqs, grant)
		iters++
		res.Metrics.IssuedBids += len(tasks)
		next := tasks[:0]
		for _, t := range tasks {
			mreqs[t.proc] = mpc.Idle
			r := t.a.req
			if !grant[t.proc] {
				if sys.remaining[r] > 0 {
					next = append(next, t)
				}
				continue
			}
			res.Metrics.GrantedBids++
			if sys.remaining[r] <= 0 {
				continue
			}
			sys.touch(reqs[r], t, r, sys.bestTS, sys.bestVal)
			res.Metrics.CopyAccesses++
			sys.remaining[r]--
			sys.touchedC[r] |= 1 << uint(t.a.cpy)
		}
		tasks = next
	}
	for _, t := range tasks {
		mreqs[t.proc] = mpc.Idle
	}
	res.Metrics.RetryRounds += iters
	res.Metrics.TotalRounds += iters
}

// liveQuorumLost reports whether request r's variable currently has fewer
// live copies than its quorum — the ErrQuorumUnreachable verdict. Under the
// pinned-majority ablation only the pinned copies count (redundancy without
// routing freedom is not fault tolerance). Repairing modules deliberately
// count as live here: a read blocked only by in-flight repair is transient
// (the sweep will certify the copies), so it reports ErrIncomplete — retry
// later — not the stranded verdict.
func (sys *System) liveQuorumLost(fv FaultView, reqs []Request, r, nCopies int) bool {
	limit := nCopies
	if sys.cfg.Policy == PolicyFixedMajority {
		limit = int(sys.quorum(reqs[r].Op))
	}
	live := int32(0)
	base := r * nCopies
	for c := 0; c < limit; c++ {
		if !fv.ModuleFailed(sys.copies[base+c].module) {
			live++
		}
	}
	return live < sys.quorum(reqs[r].Op)
}
