package protocol

import (
	"math/rand"
	"testing"

	"detshmem/internal/workload"
)

// TestAddressCacheEquivalence: with and without the address cache, a long
// mixed batch sequence produces identical values and identical metrics.
func TestAddressCacheEquivalence(t *testing.T) {
	plain := newSystem(t, 1, 5, Config{})
	cached := newSystem(t, 1, 5, Config{CacheAddresses: true})
	rng := rand.New(rand.NewSource(33))
	M := plain.Mapper.NumVars()
	for batch := 0; batch < 15; batch++ {
		vars := workload.DistinctRandom(rng, M, 100+batch)
		var reqs []Request
		for i, v := range vars {
			op := Read
			if i%2 == 0 {
				op = Write
			}
			reqs = append(reqs, Request{Var: v, Op: op, Value: uint64(i * batch)})
		}
		r1, err := plain.Access(reqs)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := cached.Access(reqs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range r1.Values {
			if r1.Values[i] != r2.Values[i] {
				t.Fatalf("batch %d: values differ at %d", batch, i)
			}
		}
		if r1.Metrics.TotalRounds != r2.Metrics.TotalRounds ||
			r1.Metrics.MaxIterations != r2.Metrics.MaxIterations ||
			r1.Metrics.CopyAccesses != r2.Metrics.CopyAccesses {
			t.Fatalf("batch %d: metrics differ: %+v vs %+v", batch, r1.Metrics, r2.Metrics)
		}
	}
}

// TestMachineReuseCostDelta: InterconnectCost must be the per-batch delta,
// not cumulative, when the machine is reused across batches.
func TestMachineReuseCostDelta(t *testing.T) {
	sys := newSystem(t, 1, 3, Config{})
	vars := []uint64{1, 2, 3, 4, 5, 6}
	vals := make([]uint64, len(vars))
	m1p, err := sys.WriteBatch(vars, vals)
	if err != nil {
		t.Fatal(err)
	}
	// WriteBatch reuses its Metrics across calls on the same system; snapshot
	// each batch's metrics before issuing the next.
	m1 := *m1p
	m2p, err := sys.WriteBatch(vars, vals)
	if err != nil {
		t.Fatal(err)
	}
	m2 := *m2p
	if m1.InterconnectCost != uint64(m1.TotalRounds) {
		t.Fatalf("first batch cost %d != rounds %d", m1.InterconnectCost, m1.TotalRounds)
	}
	if m2.InterconnectCost != uint64(m2.TotalRounds) {
		t.Fatalf("second batch cost %d != rounds %d (cumulative leak?)", m2.InterconnectCost, m2.TotalRounds)
	}
	// A smaller batch reuses the machine with idle tail processors; the
	// delta must survive the geometry mismatch.
	m3, err := sys.WriteBatch(vars[:3], vals[:3])
	if err != nil {
		t.Fatal(err)
	}
	if m3.InterconnectCost != uint64(m3.TotalRounds) {
		t.Fatalf("resized batch cost %d != rounds %d", m3.InterconnectCost, m3.TotalRounds)
	}
}
