// Package baseline implements the comparison memory-organization schemes the
// paper positions itself against, as protocol.Mapper implementations so they
// run under the same MPC-accounted quorum executor as the
// Pietracaprina–Preparata organization:
//
//   - SingleCopy: no redundancy, module chosen by interleaving or by a seeded
//     hash. Fast on random batches, Θ(N') on adversarial ones.
//   - MV: Mehlhorn–Vishkin multi-copy (c copies = the base-N digits of the
//     variable index; read-one/write-all). Reads are O(cN^{1-1/c}) worst
//     case, but writes degrade to Θ(N') under digit collisions.
//   - UW: Upfal–Wigderson random bipartite graph with 2c−1 copies and
//     majority quorums — the existential scheme whose randomness PP93
//     replaces with algebra.
//
// Each scheme also exposes the adversarial batch construction that realizes
// its worst case, used by experiment E7/E8.
package baseline

import "fmt"

// splitmix is SplitMix64, used for all seeded placement decisions.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	return x ^ x>>31
}

// SinglePlacement selects how the single-copy scheme places variables.
type SinglePlacement int

const (
	// PlaceInterleaved stores variable v in module v mod N.
	PlaceInterleaved SinglePlacement = iota
	// PlaceHashed stores variable v in module splitmix(seed^v) mod N.
	PlaceHashed
)

// SingleCopy is the no-redundancy organization: one copy per variable.
type SingleCopy struct {
	N, M  uint64
	Place SinglePlacement
	Seed  uint64
}

// NewSingleCopy builds a single-copy scheme over N modules and M variables.
func NewSingleCopy(modules, vars uint64, place SinglePlacement, seed uint64) (*SingleCopy, error) {
	if modules == 0 || vars == 0 {
		return nil, fmt.Errorf("baseline: need positive module and variable counts")
	}
	return &SingleCopy{N: modules, M: vars, Place: place, Seed: seed}, nil
}

// Name identifies the scheme.
func (s *SingleCopy) Name() string {
	if s.Place == PlaceHashed {
		return "single-hashed"
	}
	return "single-interleaved"
}

// NumVars returns M.
func (s *SingleCopy) NumVars() uint64 { return s.M }

// NumModules returns N.
func (s *SingleCopy) NumModules() uint64 { return s.N }

// Copies returns 1.
func (s *SingleCopy) Copies() int { return 1 }

// ReadQuorum returns 1.
func (s *SingleCopy) ReadQuorum() int { return 1 }

// WriteQuorum returns 1.
func (s *SingleCopy) WriteQuorum() int { return 1 }

// CopyAddr places the unique copy of v.
func (s *SingleCopy) CopyAddr(v uint64, c int) (uint64, uint64) {
	return s.module(v), v
}

// AddrSpace returns M (one cell per variable).
func (s *SingleCopy) AddrSpace() uint64 { return s.M }

func (s *SingleCopy) module(v uint64) uint64 {
	if s.Place == PlaceHashed {
		return splitmix(s.Seed^v) % s.N
	}
	return v % s.N
}

// WorstBatch returns up to size distinct variables that all collide on one
// module — the Θ(N') adversarial batch. For the hashed placement the
// adversary simply inverts the (public) hash by enumeration, which is the
// paper's point: a fixed deterministic map without redundancy always has
// such a set as soon as M ≥ N·size.
func (s *SingleCopy) WorstBatch(size int) []uint64 {
	out := make([]uint64, 0, size)
	if s.Place == PlaceInterleaved {
		for v := uint64(0); v < s.M && len(out) < size; v += s.N {
			out = append(out, v)
		}
		return out
	}
	target := s.module(0)
	for v := uint64(0); v < s.M && len(out) < size; v++ {
		if s.module(v) == target {
			out = append(out, v)
		}
	}
	return out
}
