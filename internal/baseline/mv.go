package baseline

import "fmt"

// MV is the Mehlhorn–Vishkin multi-copy organization for M ≤ N^c variables:
// variable v is written in base N as (d_0, …, d_{c-1}) and copy i is stored
// in module d_i(v). A read needs any one copy ("the most convenient"), which
// yields O(cN^{1-1/c}) worst-case read batches; a write must refresh all c
// copies, which costs Θ(N') when a digit is shared by the whole batch —
// the asymmetry PP93's majority scheme removes.
type MV struct {
	N, M uint64
	C    int // number of copies (base-N digits)
}

// NewMV builds the scheme; M must fit in c base-N digits.
func NewMV(modules, vars uint64, c int) (*MV, error) {
	if c < 1 {
		return nil, fmt.Errorf("baseline: MV needs at least 1 copy, got %d", c)
	}
	if modules == 0 || vars == 0 {
		return nil, fmt.Errorf("baseline: need positive module and variable counts")
	}
	cap := uint64(1)
	for i := 0; i < c; i++ {
		next := cap * modules
		if next/modules != cap { // overflow means plenty of room
			cap = ^uint64(0)
			break
		}
		cap = next
	}
	if vars > cap {
		return nil, fmt.Errorf("baseline: MV with %d copies addresses at most N^c = %d variables, got %d",
			c, cap, vars)
	}
	return &MV{N: modules, M: vars, C: c}, nil
}

// Name identifies the scheme.
func (s *MV) Name() string { return fmt.Sprintf("mv-c%d", s.C) }

// NumVars returns M.
func (s *MV) NumVars() uint64 { return s.M }

// NumModules returns N.
func (s *MV) NumModules() uint64 { return s.N }

// Copies returns c.
func (s *MV) Copies() int { return s.C }

// ReadQuorum returns 1: a read accesses only the most convenient copy.
func (s *MV) ReadQuorum() int { return 1 }

// WriteQuorum returns c: a write must refresh every copy.
func (s *MV) WriteQuorum() int { return s.C }

// Digit returns d_i(v), the i-th base-N digit.
func (s *MV) Digit(v uint64, i int) uint64 {
	for ; i > 0; i-- {
		v /= s.N
	}
	return v % s.N
}

// CopyAddr places copy c of v in module d_c(v).
func (s *MV) CopyAddr(v uint64, c int) (uint64, uint64) {
	return s.Digit(v, c), v*uint64(s.C) + uint64(c)
}

// AddrSpace returns M·c.
func (s *MV) AddrSpace() uint64 { return s.M * uint64(s.C) }

// WorstWriteBatch returns up to size distinct variables sharing digit 0, so
// every write's copy 0 lands in the same module: write time Θ(size).
func (s *MV) WorstWriteBatch(size int) []uint64 {
	out := make([]uint64, 0, size)
	for v := uint64(0); v < s.M && len(out) < size; v += s.N {
		out = append(out, v) // d_0(v) = 0
	}
	return out
}

// WorstReadBatch returns up to size distinct variables forming a base-N
// sub-grid of side length ceil(size^{1/c}): their copies occupy only c·side
// modules, forcing read time ≥ size/(c·side) ≈ size^{1-1/c}/c.
func (s *MV) WorstReadBatch(size int) []uint64 {
	side := uint64(1)
	for pow(side, s.C) < uint64(size) {
		side++
	}
	out := make([]uint64, 0, size)
	var rec func(v uint64, digit int)
	rec = func(v uint64, digit int) {
		if len(out) >= size {
			return
		}
		if digit == s.C {
			if v < s.M {
				out = append(out, v)
			}
			return
		}
		base := pow(s.N, digit)
		for d := uint64(0); d < side; d++ {
			rec(v+d*base, digit+1)
		}
	}
	rec(0, 0)
	return out
}

func pow(b uint64, e int) uint64 {
	out := uint64(1)
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}
