package baseline

import (
	"math/rand"
	"testing"

	"detshmem/internal/protocol"
)

// distinctOK verifies a batch has pairwise-distinct in-range variables.
func distinctOK(t *testing.T, batch []uint64, m uint64) {
	t.Helper()
	seen := make(map[uint64]bool, len(batch))
	for _, v := range batch {
		if v >= m {
			t.Fatalf("batch variable %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("batch repeats variable %d", v)
		}
		seen[v] = true
	}
}

func TestSingleCopyPlacement(t *testing.T) {
	for _, place := range []SinglePlacement{PlaceInterleaved, PlaceHashed} {
		s, err := NewSingleCopy(63, 1000, place, 42)
		if err != nil {
			t.Fatal(err)
		}
		for v := uint64(0); v < s.M; v++ {
			mod, addr := s.CopyAddr(v, 0)
			if mod >= s.N {
				t.Fatalf("module %d out of range", mod)
			}
			if addr != v {
				t.Fatalf("addr %d for var %d", addr, v)
			}
		}
		batch := s.WorstBatch(10)
		distinctOK(t, batch, s.M)
		if len(batch) != 10 {
			t.Fatalf("worst batch size %d", len(batch))
		}
		mod0, _ := s.CopyAddr(batch[0], 0)
		for _, v := range batch {
			if m, _ := s.CopyAddr(v, 0); m != mod0 {
				t.Fatalf("%s worst batch not collinear: %d vs %d", s.Name(), m, mod0)
			}
		}
	}
}

func TestMVDigits(t *testing.T) {
	s, err := NewMV(10, 1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Digit(345, 0) != 5 || s.Digit(345, 1) != 4 || s.Digit(345, 2) != 3 {
		t.Fatalf("digits of 345 wrong: %d %d %d", s.Digit(345, 0), s.Digit(345, 1), s.Digit(345, 2))
	}
	// Copy addresses are distinct cells.
	seen := make(map[uint64]bool)
	for v := uint64(0); v < 100; v++ {
		for c := 0; c < s.C; c++ {
			_, addr := s.CopyAddr(v, c)
			if seen[addr] {
				t.Fatalf("duplicate cell address %d", addr)
			}
			seen[addr] = true
		}
	}
}

func TestMVValidation(t *testing.T) {
	if _, err := NewMV(10, 11, 1); err == nil {
		t.Error("M > N^1 accepted for c=1")
	}
	if _, err := NewMV(10, 100, 0); err == nil {
		t.Error("c=0 accepted")
	}
	if _, err := NewMV(10, 10, 1); err != nil {
		t.Errorf("M = N^1 rejected: %v", err)
	}
	if _, err := NewMV(10, 100, 2); err != nil {
		t.Errorf("M = N^2 rejected: %v", err)
	}
}

func TestMVWorstBatches(t *testing.T) {
	s, err := NewMV(63, 3969, 2)
	if err != nil {
		t.Fatal(err)
	}
	wb := s.WorstWriteBatch(50)
	distinctOK(t, wb, s.M)
	for _, v := range wb {
		if s.Digit(v, 0) != 0 {
			t.Fatalf("worst write batch var %d has digit0 = %d", v, s.Digit(v, 0))
		}
	}
	rb := s.WorstReadBatch(49)
	distinctOK(t, rb, s.M)
	if len(rb) != 49 {
		t.Fatalf("worst read batch size %d", len(rb))
	}
	// All copies of the read batch live in at most c·side modules.
	mods := make(map[uint64]bool)
	for _, v := range rb {
		for c := 0; c < s.C; c++ {
			m, _ := s.CopyAddr(v, c)
			mods[m] = true
		}
	}
	if len(mods) > 2*7 {
		t.Fatalf("worst read batch spreads over %d modules", len(mods))
	}
}

func TestUWPlacement(t *testing.T) {
	s, err := NewUW(63, 5456, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if s.Copies() != 5 {
		t.Fatalf("copies = %d", s.Copies())
	}
	for v := uint64(0); v < 200; v++ {
		mods := s.Modules(v)
		seen := make(map[uint64]bool)
		for _, m := range mods {
			if m >= s.N {
				t.Fatalf("module %d out of range", m)
			}
			if seen[m] {
				t.Fatalf("variable %d has two copies in module %d", v, m)
			}
			seen[m] = true
		}
		// Determinism.
		again := s.Modules(v)
		for i := range mods {
			if mods[i] != again[i] {
				t.Fatalf("module placement not deterministic for %d", v)
			}
		}
	}
}

// TestUWLargeReplication pins CopyAddr past the 32-entry stack buffer:
// c = 17 gives 33 copies, which must fall back to the heap scratch and
// still return the full, distinct, deterministic module set (the old code
// relied on append's implicit growth; this guards the explicit fallback).
func TestUWLargeReplication(t *testing.T) {
	s, err := NewUW(64, 500, 17, 11)
	if err != nil {
		t.Fatal(err)
	}
	if s.Copies() != 33 {
		t.Fatalf("copies = %d, want 33", s.Copies())
	}
	for v := uint64(0); v < 50; v++ {
		want := s.Modules(v)
		seen := make(map[uint64]bool)
		for c := 0; c < s.Copies(); c++ {
			m, addr := s.CopyAddr(v, c)
			if m != want[c] {
				t.Fatalf("var %d copy %d: CopyAddr module %d, Modules %d", v, c, m, want[c])
			}
			if seen[m] {
				t.Fatalf("var %d: duplicate module %d past the stack-buffer cap", v, m)
			}
			seen[m] = true
			if wantAddr := v*uint64(s.Copies()) + uint64(c); addr != wantAddr {
				t.Fatalf("var %d copy %d: addr %d, want %d", v, c, addr, wantAddr)
			}
		}
	}
	// The bulk path must agree with per-op resolution above the cap too.
	vars := []uint64{0, 7, 499}
	mods, addrs := s.AppendCopyAddrs(nil, nil, vars, s.Copies())
	for i, v := range vars {
		for c := 0; c < s.Copies(); c++ {
			wm, wa := s.CopyAddr(v, c)
			k := i*s.Copies() + c
			if mods[k] != wm || addrs[k] != wa {
				t.Fatalf("bulk var %d copy %d: (%d,%d), want (%d,%d)", v, c, mods[k], addrs[k], wm, wa)
			}
		}
	}
}

func TestUWValidation(t *testing.T) {
	if _, err := NewUW(3, 100, 3, 0); err == nil {
		t.Error("2c-1 > N accepted")
	}
	if _, err := NewUW(10, 100, 0, 0); err == nil {
		t.Error("c=0 accepted")
	}
}

// TestBaselinesThroughProtocol runs each baseline under the generic quorum
// executor against a reference model — the same harness the PP93 scheme
// passes, demonstrating interchangeability.
func TestBaselinesThroughProtocol(t *testing.T) {
	single, err := NewSingleCopy(63, 2000, PlaceHashed, 9)
	if err != nil {
		t.Fatal(err)
	}
	mv, err := NewMV(63, 3900, 2)
	if err != nil {
		t.Fatal(err)
	}
	uw, err := NewUW(63, 2000, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []protocol.Mapper{single, mv, uw} {
		sys, err := protocol.NewGenericSystem(m, protocol.Config{})
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		ref := make(map[uint64]uint64)
		rng := rand.New(rand.NewSource(13))
		for batch := 0; batch < 25; batch++ {
			k := 1 + rng.Intn(60)
			chosen := make(map[uint64]bool)
			var reqs []protocol.Request
			for len(chosen) < k {
				v := uint64(rng.Intn(int(m.NumVars())))
				if chosen[v] {
					continue
				}
				chosen[v] = true
				if rng.Intn(2) == 0 {
					reqs = append(reqs, protocol.Request{Var: v, Op: protocol.Write, Value: rng.Uint64()})
				} else {
					reqs = append(reqs, protocol.Request{Var: v, Op: protocol.Read})
				}
			}
			res, err := sys.Access(reqs)
			if err != nil {
				t.Fatalf("%s: %v", m.Name(), err)
			}
			for i, r := range reqs {
				if r.Op == protocol.Read && res.Values[i] != ref[r.Var] {
					t.Fatalf("%s batch %d: read %d = %d want %d",
						m.Name(), batch, r.Var, res.Values[i], ref[r.Var])
				}
			}
			for _, r := range reqs {
				if r.Op == protocol.Write {
					ref[r.Var] = r.Value
				}
			}
		}
	}
}

// TestAdversarialCongestion checks the headline asymmetry: the single-copy
// scheme's worst batch takes Θ(size) rounds, and MV's worst write batch also
// takes Θ(size) rounds, while MV reads on the same shape stay cheap.
func TestAdversarialCongestion(t *testing.T) {
	single, err := NewSingleCopy(63, 5000, PlaceHashed, 3)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := protocol.NewGenericSystem(single, protocol.Config{})
	if err != nil {
		t.Fatal(err)
	}
	batch := single.WorstBatch(40)
	if len(batch) < 40 {
		t.Fatalf("could not build a 40-variable collision batch (got %d)", len(batch))
	}
	_, met, err := sys.ReadBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if met.TotalRounds < 40 {
		t.Fatalf("single-copy adversarial batch finished in %d rounds; expected >= 40", met.TotalRounds)
	}

	mv, err := NewMV(63, 3900, 2)
	if err != nil {
		t.Fatal(err)
	}
	msys, err := protocol.NewGenericSystem(mv, protocol.Config{})
	if err != nil {
		t.Fatal(err)
	}
	wb := mv.WorstWriteBatch(40)
	vals := make([]uint64, len(wb))
	wmetp, err := msys.WriteBatch(wb, vals)
	if err != nil {
		t.Fatal(err)
	}
	// WriteBatch reuses its Metrics across calls on the same system; snapshot
	// before issuing the read batch below.
	wmet := *wmetp
	if wmet.TotalRounds < 40 {
		t.Fatalf("MV adversarial write batch finished in %d rounds; expected >= 40", wmet.TotalRounds)
	}
	_, rmet, err := msys.ReadBatch(wb)
	if err != nil {
		t.Fatal(err)
	}
	if rmet.TotalRounds >= wmet.TotalRounds {
		t.Fatalf("MV read (%d rounds) should beat write-all (%d rounds) on the digit-collision batch",
			rmet.TotalRounds, wmet.TotalRounds)
	}
}
