package baseline

import "fmt"

// UW is the Upfal–Wigderson organization: each variable carries 2c−1 copies
// placed in distinct modules by a random bipartite graph, and both reads and
// writes touch a majority of c copies with timestamps. UW prove that a
// random graph has the expansion needed for O(log N (log log N)²) batch time
// with c = Θ(log N) — but only existentially: no efficient test certifies a
// sampled graph, and storing it needs a full memory map. This implementation
// samples the graph from a seed on the fly (deterministically per variable),
// standing in for "a random graph that was never verified", exactly the
// practical gap PP93's constructive scheme closes.
type UW struct {
	N, M uint64
	C    int // majority size; copies = 2c−1
	Seed uint64
}

// NewUW builds the scheme. c >= 1; 2c−1 copies must fit in N modules.
func NewUW(modules, vars uint64, c int, seed uint64) (*UW, error) {
	if c < 1 {
		return nil, fmt.Errorf("baseline: UW needs c >= 1, got %d", c)
	}
	if uint64(2*c-1) > modules {
		return nil, fmt.Errorf("baseline: UW needs 2c-1 = %d distinct modules, have %d", 2*c-1, modules)
	}
	if modules == 0 || vars == 0 {
		return nil, fmt.Errorf("baseline: need positive module and variable counts")
	}
	return &UW{N: modules, M: vars, C: c, Seed: seed}, nil
}

// Name identifies the scheme.
func (s *UW) Name() string { return fmt.Sprintf("uw-c%d", s.C) }

// NumVars returns M.
func (s *UW) NumVars() uint64 { return s.M }

// NumModules returns N.
func (s *UW) NumModules() uint64 { return s.N }

// Copies returns 2c−1.
func (s *UW) Copies() int { return 2*s.C - 1 }

// ReadQuorum returns the majority c.
func (s *UW) ReadQuorum() int { return s.C }

// WriteQuorum returns the majority c.
func (s *UW) WriteQuorum() int { return s.C }

// Modules returns the 2c−1 distinct modules holding v's copies. The set is
// a deterministic function of (Seed, v): a pseudorandom sample without
// replacement.
func (s *UW) Modules(v uint64) []uint64 {
	return s.appendModules(make([]uint64, 0, s.Copies()), v)
}

// appendModules appends v's module set to dst, so callers with a buffer on
// the stack resolve addresses without heap traffic.
func (s *UW) appendModules(dst []uint64, v uint64) []uint64 {
	r := s.Copies()
	base := len(dst)
	ctr := uint64(0)
	for len(dst)-base < r {
		m := splitmix(s.Seed^v*0x9e3779b97f4a7c15^ctr) % s.N
		ctr++
		dup := false
		for _, x := range dst[base:] {
			if x == m {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, m)
		}
	}
	return dst
}

// CopyAddr places copy c of v. The module set is rebuilt into a stack buffer
// for practical majority sizes (2c−1 ≤ 32); larger replication factors fall
// back to an explicit heap buffer sized for the full set, so no Copies()
// value can silently truncate the sample.
func (s *UW) CopyAddr(v uint64, c int) (uint64, uint64) {
	r := s.Copies()
	var buf [32]uint64
	scratch := buf[:0]
	if r > len(buf) {
		scratch = make([]uint64, 0, r)
	}
	mods := s.appendModules(scratch, v)
	return mods[c], v*uint64(r) + uint64(c)
}

// AppendCopyAddrs implements the batched contract of protocol.BulkMapper
// (builtin slice types keep this package free of a protocol import): the
// rejection-sampled module set is built once per variable and shared by all
// its copies, where per-op CopyAddr resamples the whole set for every copy —
// a (2c−1)× saving on the sampling work. Results equal per-op CopyAddr in
// vars-major, copy-minor order.
func (s *UW) AppendCopyAddrs(mods, addrs []uint64, vars []uint64, copies int) ([]uint64, []uint64) {
	if copies < 1 {
		return mods, addrs
	}
	r := s.Copies()
	var buf [32]uint64
	scratch := buf[:0]
	if r > len(buf) {
		scratch = make([]uint64, 0, r)
	}
	for _, v := range vars {
		set := s.appendModules(scratch, v)
		base := v * uint64(r)
		for c := 0; c < copies; c++ {
			mods = append(mods, set[c])
			addrs = append(addrs, base+uint64(c))
		}
	}
	return mods, addrs
}

// AddrSpace returns M·(2c−1).
func (s *UW) AddrSpace() uint64 { return s.M * uint64(s.Copies()) }
