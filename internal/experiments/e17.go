package experiments

import (
	"fmt"
	"io"
	"math"

	"detshmem/internal/analysis"
	"detshmem/internal/obs"
	"detshmem/internal/protocol"
	"detshmem/internal/workload"
)

// E17 exercises the observability layer end to end: it runs one full-N
// write batch with a ring-buffer tracer attached to the MPC, prints the
// per-round trajectory (live requests, granted copies, worst per-module
// contention) whose decay is the measurable content of Theorem 6, and
// cross-checks the tracer's running totals against the batch's own
// protocol.Metrics — the trace-replay consistency the instrumentation
// guarantees (rounds recorded == TotalRounds, grants == GrantedBids).
// `smembench -exp e17 -trace trace.json` dumps the same trajectory as JSON
// for plotting against the Theorem 6 bound.
func E17(w io.Writer, o Options) error {
	n := 7
	if o.Quick {
		n = 5
	}
	for _, eng := range []struct {
		name     string
		parallel bool
	}{
		{"sequential", false},
		{"parallel", true},
	} {
		tracer := obs.NewTracer(0)
		col := obs.NewCollector()
		cfg := protocol.Config{
			Parallel: eng.parallel,
			Recorder: obs.Multi(tracer, col, o.Recorder),
			Observer: obs.MultiBatch(col, o.Observer),
		}
		sys, err := newSystem(o, 1, n, cfg)
		if err != nil {
			return err
		}
		N := int(sys.Scheme.NumModules)
		vars := workload.DistinctRandom(o.Rng(), sys.Index.M(), N)
		vals := make([]uint64, N)
		met, err := sys.WriteBatch(vars, vals)
		sys.Close()
		if err != nil {
			return err
		}

		events := tracer.Events()
		totals := tracer.Totals()
		fprintf(w, "E17 %s engine: one full-N write batch (q=2, n=%d, N=%d), Φ=%d, rounds=%d\n",
			eng.name, n, N, met.MaxIterations, met.TotalRounds)
		fprintf(w, "%7s %9s %9s %8s %11s\n", "round", "requests", "granted", "maxload", "barrier_µs")
		step := 1 + len(events)/12
		for i := 0; i < len(events); i += step {
			ev := events[i]
			fprintf(w, "%7d %9d %9d %8d %11.1f\n",
				i, ev.Requests, ev.Granted, ev.MaxLoad, float64(ev.BarrierNs)/1e3)
		}
		fprintf(w, "  Theorem 6 Φ bound shape: %.1f (measured Φ %d, Φ/N^{1/3} = %.3f)\n",
			analysis.Theorem6Bound(uint64(N)), met.MaxIterations,
			float64(met.MaxIterations)/math.Cbrt(float64(N)))

		// Trace-replay cross-check: the trace must account for exactly the
		// rounds and grants the protocol metrics report.
		ok := totals.Rounds == uint64(met.TotalRounds) &&
			totals.Granted == uint64(met.GrantedBids) &&
			col.Rounds.Load() == int64(met.TotalRounds) &&
			col.GrantedBids.Load() == int64(met.GrantedBids)
		mark := "consistent"
		if !ok {
			mark = "!! INCONSISTENT"
		}
		fprintf(w, "  trace totals: rounds=%d granted=%d requests=%d maxload=%d dropped=%d — %s\n",
			totals.Rounds, totals.Granted, totals.Requests, totals.MaxLoad, tracer.Dropped(), mark)
		fprintf(w, "  copy accesses %d ≤ granted bids %d (cancelled slack %d)\n\n",
			met.CopyAccesses, met.GrantedBids, met.GrantedBids-met.CopyAccesses)
		if !ok {
			return fmt.Errorf("e17: trace totals (rounds=%d granted=%d) diverge from protocol metrics (rounds=%d granted=%d)",
				totals.Rounds, totals.Granted, met.TotalRounds, met.GrantedBids)
		}
	}
	return nil
}
