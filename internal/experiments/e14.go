package experiments

import (
	"io"

	"detshmem/internal/audit"
)

// E14 audits the structural properties of every organization side by side —
// the certification angle of the paper's introduction: the PP93 scheme's
// properties (pairwise intersection ≤ 1, perfectly uniform module load) are
// algebraic facts that an auditor confirms exhaustively, while the random
// UW graph only exhibits them approximately and without any certificate.
func E14(w io.Writer, o Options) error {
	n := 7
	if o.Quick {
		n = 5
	}
	inst, err := newE7Instance(n)
	if err != nil {
		return err
	}
	opts := audit.Options{Seed: o.Seed}
	if o.Quick {
		opts.PairSamples = 5000
		opts.SetSamples = 8
		opts.MaxVars = 20000
	}
	fprintf(w, "E14 Structural audit of each organization (q=2, n=%d)\n", n)
	fprintf(w, "%-18s %9s %7s %8s %8s %10s %12s %10s %12s\n",
		"scheme", "vars", "copies", "errors", "dupmod", "max|Γ∩Γ|", "load[min,max]", "imbalance", "minΓ(S)/|S|")
	for _, m := range inst.all {
		r, err := audit.Run(m, opts)
		if err != nil {
			return err
		}
		fprintf(w, "%-18s %9d %7d %8d %8d %10d %6d,%-6d %10.2f %12.2f\n",
			r.Scheme, r.Vars, r.Copies, r.PlacementErrors, r.DuplicateModuleVars,
			r.MaxPairIntersection, r.MinModuleLoad, r.MaxModuleLoad,
			r.LoadImbalance, r.MinExpansionRatio)
		if r.PlacementErrors > 0 {
			fprintf(w, "  !! placement errors detected\n")
		}
	}
	fprintf(w, "  (pp93: intersection ≤ 1 and uniform load are certified by Theorem 2 /\n")
	fprintf(w, "   Fact 1; load uniformity is exact when the audit covers all M variables —\n")
	fprintf(w, "   runs capped below M show the cap, not skew. The uw random graph shows\n")
	fprintf(w, "   similar averages but with outliers and no certificate — §1 point (1))\n\n")
	return nil
}
