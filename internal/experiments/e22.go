package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"os"
	"runtime"
	"sync"
	"time"

	"detshmem/internal/consistency"
	"detshmem/internal/frontend"
	"detshmem/internal/netmpc"
	"detshmem/internal/protocol"
	"detshmem/internal/shard"
)

// e22KillMarker is the stdout line E22 prints when its degraded cell is
// ready for an external harness (cmd/netcluster) to kill one memserver.
// The harness matches it verbatim; keep the two in sync.
const e22KillMarker = "e22: degraded phase armed -- kill one memserver now"

// E22 measures the networked MPC transport (internal/netmpc): the same
// windowed multi-client workload is driven through three cells —
//
//	inproc     the in-process machine, today's default (the baseline);
//	tcp        a loopback cluster of 4 memservers, full constructive-map
//	           clients fanning bid rounds out over TCP;
//	tcp-kill1  the same cluster with one server killed mid-run, measuring
//	           the degraded regime where a quarter of the modules fail at
//	           once and the PR 5 quorum re-selection takes over.
//
// Every cell's client traces are recorded and certified with the black-box
// consistency checker (total order, S=1): the transport must not merely be
// fast, it must be indistinguishable from local memory up to stranding.
//
// The kill cell self-gates: the observed op-stranding rate must stay below
// a bound computed from the actual post-kill fault set — the exact fraction
// of workload variables whose live copies fell below their majority, plus
// 6σ sampling noise and slack. The binomial reference rate from E19
// (P(Bin(copies, f) ≥ copies−majority+1) for f the failed-module fraction)
// is reported next to it; the exact bound is the one enforced, because a
// contiguous dead range need not match the independent-fault binomial.
//
// With -servers the TCP cells run against external memservers and the kill
// cell prints a marker line for the harness to kill one (cmd/netcluster
// does; it then re-verifies the recorded trace with cmd/consistencycheck).
// JSON output goes to BENCH_PR8.json.
func E22(w io.Writer, o Options) error {
	n, clients, opsPer := 7, 8, 600
	if o.Quick {
		n, clients, opsPer = 5, 4, 250
	}
	const nServers = 4
	inst, err := newE7Instance(n)
	if err != nil {
		return err
	}
	resolver, err := protocol.CompileMapper(inst.pp, protocol.CompileOptions{})
	if err != nil {
		return err
	}
	nVars := 48
	if !o.Quick {
		nVars = 64
	}
	vars := make([]uint64, nVars)
	for i := range vars {
		vars[i] = uint64(i*7+3) % inst.s.NumVariables
	}
	rec := o.Consistency
	if rec == nil {
		rec = consistency.NewRecorder()
	}
	rep := e22Report{
		Experiment: "e22-net-transport",
		Quick:      o.Quick,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Host:       Host(),
		Degree:     n,
		Servers:    nServers,
		Clients:    clients,
		External:   len(o.Servers) > 0,
	}

	fprintf(w, "E22 Networked MPC: q=2 n=%d (%d modules), %d clients, window %d\n",
		n, inst.s.NumModules, clients, e22Window)
	fprintf(w, "%-12s %10s %10s %12s %10s %10s %s\n",
		"cell", "ops", "failed", "ns/op", "ops/sec", "strandrate", "verdict")

	runInproc := o.Transport == "" || o.Transport == "inproc"
	runTCP := o.Transport == "" || o.Transport == "tcp"

	if runInproc {
		svc, err := shard.New(inst.pp, shard.Config{
			Shards:   1,
			Pipeline: true,
			Protocol: o.instrument(protocol.Config{Resolver: resolver}),
		})
		if err != nil {
			return err
		}
		row, err := e22Cell(w, o, rec, "inproc", svc, clients, opsPer, vars)
		if err != nil {
			return err
		}
		rep.Rows = append(rep.Rows, row)
	}

	if runTCP {
		addrs := o.Servers
		var local []*netmpc.Server
		if len(addrs) == 0 {
			local, addrs, err = e22Cluster(inst, nServers)
			if err != nil {
				return err
			}
			defer func() {
				for _, sv := range local {
					sv.Close()
				}
			}()
		}
		dial := func(storeID uint32) (*netmpc.Transport, error) {
			return netmpc.Dial(netmpc.Config{
				Servers:      addrs,
				Q:            inst.s.Q,
				N:            uint32(inst.s.Deg),
				Modules:      int64(inst.s.NumModules),
				AddrSpace:    inst.s.NumModules * uint64(inst.s.ModuleSize),
				StoreID:      storeID,
				RoundTimeout: 3 * time.Second,
			})
		}

		// Healthy TCP cell.
		tr, err := dial(1)
		if err != nil {
			return err
		}
		svc, err := shard.New(inst.pp, shard.Config{
			Shards:    1,
			Pipeline:  true,
			Protocol:  o.instrument(protocol.Config{Resolver: resolver}),
			Transport: func(int) protocol.Transport { return tr },
		})
		if err != nil {
			tr.Close()
			return err
		}
		row, err := e22Cell(w, o, rec, "tcp", svc, clients, opsPer, vars)
		tr.Close()
		if err != nil {
			return err
		}
		row.ServerStats = tr.Stats()
		rep.Rows = append(rep.Rows, row)

		// Kill cell: healthy first half, one server killed, degraded second
		// half gated against the exact stranding bound.
		row, err = e22KillCell(w, o, rec, inst, resolver, dial, local, clients, opsPer, vars)
		if err != nil {
			return err
		}
		rep.Rows = append(rep.Rows, row)
	}
	fprintf(w, "\n")

	if path := o.jsonPath("BENCH_PR8.json"); path != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			return fmt.Errorf("e22: writing %s: %w", path, err)
		}
		fprintf(w, "  (wrote %s)\n\n", path)
	}
	return nil
}

const e22Window = 16

type e22Report struct {
	Experiment string   `json:"experiment"`
	Quick      bool     `json:"quick"`
	GoMaxProcs int      `json:"gomaxprocs"`
	Host       HostInfo `json:"host"`
	Degree     int      `json:"degree"`
	Servers    int      `json:"servers"`
	Clients    int      `json:"clients"`
	External   bool     `json:"external_servers"`
	Rows       []e22Row `json:"rows"`
}

type e22Row struct {
	Cell        string  `json:"cell"`
	Ops         int64   `json:"ops"`
	Failed      int64   `json:"failed"`
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	Certified   bool    `json:"certified"`
	DegradedOps int64   `json:"degraded_ops,omitempty"`
	Stranded    int64   `json:"stranded,omitempty"`
	StrandRate  float64 `json:"strand_rate"`
	// ExactRate is the measured post-kill fraction of workload variables
	// with a live majority lost (the enforced expectation); BinomRate is
	// E19's independent-fault binomial reference at the same failed-module
	// fraction.
	ExactRate   float64              `json:"exact_rate,omitempty"`
	BinomRate   float64              `json:"binom_rate,omitempty"`
	Bound       float64              `json:"bound,omitempty"`
	WithinBound bool                 `json:"within_bound"`
	FailedMods  int                  `json:"failed_modules,omitempty"`
	ServerStats []netmpc.ServerStats `json:"server_stats,omitempty"`
}

// e22Cluster launches an in-process loopback memserver cluster.
func e22Cluster(inst *e7Instance, k int) ([]*netmpc.Server, []string, error) {
	servers := make([]*netmpc.Server, 0, k)
	addrs := make([]string, 0, k)
	for i := 0; i < k; i++ {
		lo, hi := netmpc.Range(i, k, int64(inst.s.NumModules))
		sv := netmpc.NewServer(netmpc.ServerConfig{
			Q:         inst.s.Q,
			N:         uint32(inst.s.Deg),
			Modules:   inst.s.NumModules,
			AddrSpace: inst.s.NumModules * uint64(inst.s.ModuleSize),
			RangeLo:   uint64(lo),
			RangeHi:   uint64(hi),
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, s := range servers {
				s.Close()
			}
			return nil, nil, err
		}
		go sv.Serve(ln)
		servers = append(servers, sv)
		addrs = append(addrs, ln.Addr().String())
	}
	return servers, addrs, nil
}

// e22Cell drives one service with the windowed multi-client workload,
// certifies the recorded trace, and emits the table row. A non-nil failed
// pointer receives the count of ErrQuorumUnreachable-stranded operations
// (healthy cells must see zero).
func e22Cell(w io.Writer, o Options, rec *consistency.Recorder, label string, svc *shard.Service, clients, opsPer int, vars []uint64) (e22Row, error) {
	rr := rec.Run("e22/"+label, consistency.ContractTotalOrder, clients)
	start := time.Now()
	ops, failed, err := e22Drive(svc, rr, clients, opsPer, vars, o.Seed+801)
	if ferr := svc.Flush(); err == nil {
		err = ferr
	}
	if cerr := svc.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return e22Row{}, err
	}
	elapsed := time.Since(start)
	row := e22Row{
		Cell:        label,
		Ops:         ops,
		Failed:      failed,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(ops),
		OpsPerSec:   float64(ops) / elapsed.Seconds(),
		WithinBound: failed == 0,
	}
	if failed > 0 {
		return row, fmt.Errorf("e22: healthy cell %q stranded %d ops", label, failed)
	}
	certified, err := e22Certify(rec, "e22/"+label)
	if err != nil {
		return row, err
	}
	row.Certified = certified
	fprintf(w, "%-12s %10d %10d %12.0f %10.0f %10.4f %s\n",
		label, row.Ops, row.Failed, row.NsPerOp, row.OpsPerSec, 0.0, "certified")
	return row, nil
}

// e22Certify checks the labelled run's recorded trace under every mode its
// contract requires, returning an error on violation.
func e22Certify(rec *consistency.Recorder, label string) (bool, error) {
	ts := rec.TraceSet()
	for _, run := range ts.Runs {
		if run.Label != label {
			continue
		}
		for _, mode := range consistency.ModesFor(run.Contract) {
			if r := consistency.Check(run.Clients, mode); !r.OK {
				return false, fmt.Errorf("e22: run %q violated %s: %s", run.Label, mode, r.First().Message)
			}
		}
		return true, nil
	}
	return false, fmt.Errorf("e22: run %q not found in trace set", label)
}

// e22Drive is the windowed async client driver (the e20 pattern): each
// client keeps a window of in-flight futures against the service, records
// every committed operation, and records stranded operations
// (ErrQuorumUnreachable) as failed so the checker drops them. Returns total
// and failed op counts.
func e22Drive(svc *shard.Service, rr *consistency.RunRecorder, clients, opsPerClient int, vars []uint64, seed int64) (int64, int64, error) {
	var wg sync.WaitGroup
	var total, failed int64
	var mu sync.Mutex
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cr := rr.Client(c)
			rng := rand.New(rand.NewSource(seed + int64(c)*7919))
			type slot struct {
				fut   *frontend.Future
				write bool
				v     uint64
				val   uint64
			}
			pending := make([]slot, 0, e22Window)
			var done, stranded int64
			drain := func() bool {
				for _, s := range pending {
					got, err := s.fut.Wait()
					done++
					if err != nil {
						if !errors.Is(err, protocol.ErrQuorumUnreachable) {
							errs <- err
							return false
						}
						stranded++
						cr.Record(s.write, s.v, s.val, true)
						continue
					}
					if s.write {
						cr.Record(true, s.v, s.val, false)
					} else {
						cr.Record(false, s.v, got, false)
					}
				}
				pending = pending[:0]
				return true
			}
			flush := func() {
				mu.Lock()
				total += done
				failed += stranded
				mu.Unlock()
			}
			for i := 0; i < opsPerClient; i++ {
				v := vars[rng.Intn(len(vars))]
				var s slot
				var err error
				if rng.Intn(100) < 40 {
					s = slot{write: true, v: v, val: cr.WriteValue()}
					s.fut, err = svc.WriteAsync(v, s.val)
				} else {
					s = slot{v: v}
					s.fut, err = svc.ReadAsync(v)
				}
				if err != nil {
					errs <- err
					flush()
					return
				}
				pending = append(pending, s)
				if len(pending) == e22Window && !drain() {
					flush()
					return
				}
			}
			drain()
			flush()
		}(c)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return total, failed, err
	default:
	}
	return total, failed, nil
}

// e22KillCell runs the degraded cell: half the workload healthy, then one
// server dies — killed directly for the in-process cluster, by the external
// harness on the marker line otherwise — and the second half runs against
// the survivors. The observed stranding rate is gated against the exact
// post-kill bound.
func e22KillCell(w io.Writer, o Options, rec *consistency.Recorder, inst *e7Instance, resolver *protocol.CompiledResolver, dial func(uint32) (*netmpc.Transport, error), local []*netmpc.Server, clients, opsPer int, vars []uint64) (e22Row, error) {
	tr, err := dial(2)
	if err != nil {
		return e22Row{}, err
	}
	defer tr.Close()
	svc, err := shard.New(inst.pp, shard.Config{
		Shards:    1,
		Pipeline:  true,
		Protocol:  o.instrument(protocol.Config{Resolver: resolver}),
		Transport: func(int) protocol.Transport { return tr },
	})
	if err != nil {
		return e22Row{}, err
	}
	closed := false
	defer func() {
		if !closed {
			svc.Close()
		}
	}()

	rr := rec.Run("e22/tcp-kill1", consistency.ContractTotalOrder, clients)
	start := time.Now()
	ops1, failed1, err := e22Drive(svc, rr, clients, opsPer/2, vars, o.Seed+901)
	if err != nil {
		return e22Row{}, err
	}
	if err := svc.Flush(); err != nil {
		return e22Row{}, err
	}
	if failed1 > 0 {
		return e22Row{}, fmt.Errorf("e22: kill cell stranded %d ops before the kill", failed1)
	}

	// Kill one server. In-process clusters kill their own victim; external
	// clusters print the marker and let the harness do it.
	if len(local) > 0 {
		local[1].Close()
	} else {
		fprintf(w, "%s\n", e22KillMarker)
	}
	killDeadline := time.Now().Add(60 * time.Second)
	for tr.FaultSet().Count() == 0 {
		if time.Now().After(killDeadline) {
			return e22Row{}, fmt.Errorf("e22: no server death observed within 60s of the kill marker")
		}
		// Fault detection needs no traffic — the reader goroutine sees the
		// EOF/RST as soon as the peer dies — but poll with a light touch.
		time.Sleep(5 * time.Millisecond)
	}
	failedMods := tr.FaultSet().Count()

	// Exact expectation: the fraction of workload variables whose live
	// copies fell below the majority, computed from the actual fault set
	// through the scheme's Γ map.
	exact := e22ExactStrandRate(inst, tr, vars)
	f := float64(failedMods) / float64(inst.s.NumModules)
	binom := e22BinomRate(inst.s.Copies, inst.s.Majority, f)

	ops2, failed2, err := e22Drive(svc, rr, clients, opsPer-opsPer/2, vars, o.Seed+902)
	if err != nil {
		return e22Row{}, err
	}
	if err := svc.Flush(); err != nil {
		return e22Row{}, err
	}
	if cerr := svc.Close(); cerr != nil {
		return e22Row{}, cerr
	}
	closed = true
	elapsed := time.Since(start)

	rate := float64(failed2) / float64(ops2)
	// Bound: exact expectation + 6σ sampling noise + slack for the var-set
	// dependence between ops (ops on one stranded variable all strand).
	sigma := math.Sqrt(exact * (1 - exact) / float64(ops2))
	bound := exact + 6*sigma + 0.03
	within := rate <= bound

	row := e22Row{
		Cell:        "tcp-kill1",
		Ops:         ops1 + ops2,
		Failed:      failed1 + failed2,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(ops1+ops2),
		OpsPerSec:   float64(ops1+ops2) / elapsed.Seconds(),
		DegradedOps: ops2,
		Stranded:    failed2,
		StrandRate:  rate,
		ExactRate:   exact,
		BinomRate:   binom,
		Bound:       bound,
		WithinBound: within,
		FailedMods:  failedMods,
		ServerStats: tr.Stats(),
	}
	certified, err := e22Certify(rec, "e22/tcp-kill1")
	if err != nil {
		return row, err
	}
	row.Certified = certified
	verdict := fmt.Sprintf("certified, %d/%d stranded <= bound %.4f (exact %.4f, binom %.4f)", failed2, ops2, bound, exact, binom)
	if !within {
		verdict = fmt.Sprintf("STRANDING ABOVE BOUND: %.4f > %.4f", rate, bound)
	}
	fprintf(w, "%-12s %10d %10d %12.0f %10.0f %10.4f %s\n",
		row.Cell, row.Ops, row.Failed, row.NsPerOp, row.OpsPerSec, rate, verdict)
	if !within {
		return row, fmt.Errorf("e22: stranding rate %.4f exceeds bound %.4f", rate, bound)
	}
	return row, nil
}

// e22ExactStrandRate computes the fraction of workload variables whose live
// copy count is below the majority under the transport's current fault set.
func e22ExactStrandRate(inst *e7Instance, tr *netmpc.Transport, vars []uint64) float64 {
	fs := tr.FaultSet()
	strandedVars := 0
	var buf []uint64
	for _, v := range vars {
		buf = inst.s.VarModules(buf[:0], inst.idx.Mat(v))
		live := 0
		for _, m := range buf {
			if !fs.Failed(m) {
				live++
			}
		}
		if live < inst.s.Majority {
			strandedVars++
		}
	}
	return float64(strandedVars) / float64(len(vars))
}

// e22BinomRate is E19's independent-fault reference: the probability that a
// variable with the given copy count loses enough copies for its majority
// when each module fails independently with probability f.
func e22BinomRate(copies, majority int, f float64) float64 {
	need := copies - majority + 1 // dead copies that kill the quorum
	p := 0.0
	for k := need; k <= copies; k++ {
		p += float64(binomCoeff(copies, k)) * math.Pow(f, float64(k)) * math.Pow(1-f, float64(copies-k))
	}
	return p
}

func binomCoeff(n, k int) int64 {
	c := int64(1)
	for i := 0; i < k; i++ {
		c = c * int64(n-i) / int64(i+1)
	}
	return c
}
