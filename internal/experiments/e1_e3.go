package experiments

import (
	"io"
	"math"

	"detshmem/internal/core"
	"detshmem/internal/workload"
)

// E1 reproduces Fact 1: for each instance it prints the counted |V|, |U|,
// vertex degrees (verified by construction) and the memory-size exponent
// log M / log N against the paper's 3/2 − 3/(4n−2).
func E1(w io.Writer, o Options) error {
	fprintf(w, "E1  Fact 1: graph parameters (|V|=M, |U|=N, deg_V=q+1, deg_U=q^{n-1})\n")
	fprintf(w, "%3s %3s %12s %12s %6s %8s %10s %10s\n",
		"q", "n", "N", "M", "deg_V", "deg_U", "logM/logN", "3/2-3/(4n-2)")
	type inst struct{ m, n int }
	insts := []inst{{1, 3}, {1, 5}, {1, 7}, {1, 9}, {2, 3}, {2, 4}, {3, 3}}
	if o.Quick {
		insts = []inst{{1, 3}, {1, 5}, {2, 3}}
	}
	for _, in := range insts {
		s, err := core.New(in.m, in.n)
		if err != nil {
			return err
		}
		// Degree verification by direct construction on sampled vertices.
		idx, err := s.NewIndexer()
		if err != nil {
			return err
		}
		rng := o.Rng()
		for t := 0; t < 50; t++ {
			v := uint64(rng.Int63n(int64(idx.M())))
			mods := s.VarModules(nil, idx.Mat(v))
			set := make(map[uint64]bool)
			for _, j := range mods {
				set[j] = true
			}
			if len(set) != s.Copies {
				fprintf(w, "  !! degree violation at variable %d\n", v)
			}
		}
		got := math.Log(float64(s.NumVariables)) / math.Log(float64(s.NumModules))
		want := 1.5 - 3.0/float64(4*in.n-2)
		fprintf(w, "%3d %3d %12d %12d %6d %8d %10.4f %10.4f\n",
			s.Q, in.n, s.NumModules, s.NumVariables, s.Copies, s.ModuleSize, got, want)
	}
	fprintf(w, "  (degrees verified constructively on 50 sampled variables per instance)\n\n")
	return nil
}

// E2 reproduces Theorem 2: |Γ(v1) ∩ Γ(v2)| <= 1. Exhaustive on small
// instances, sampled on larger ones; prints the observed intersection
// histogram.
func E2(w io.Writer, o Options) error {
	fprintf(w, "E2  Theorem 2: |Γ(v1)∩Γ(v2)| ≤ 1 for distinct variables\n")
	fprintf(w, "%3s %3s %10s %12s %12s %12s %6s\n", "q", "n", "mode", "pairs", "|∩|=0", "|∩|=1", "max")
	type inst struct {
		m, n       int
		exhaustive bool
	}
	insts := []inst{{1, 3, true}, {2, 3, true}, {1, 5, false}, {1, 7, false}}
	if o.Quick {
		insts = []inst{{1, 3, true}, {1, 5, false}}
	}
	for _, in := range insts {
		s, err := core.New(in.m, in.n)
		if err != nil {
			return err
		}
		idx, err := s.NewIndexer()
		if err != nil {
			return err
		}
		var hist [8]int64
		maxI := 0
		count := func(a, b uint64) {
			sa := s.VarModules(nil, idx.Mat(a))
			sb := s.VarModules(nil, idx.Mat(b))
			inter := 0
			for _, x := range sa {
				for _, y := range sb {
					if x == y {
						inter++
					}
				}
			}
			hist[inter]++
			if inter > maxI {
				maxI = inter
			}
		}
		var pairs int64
		if in.exhaustive {
			for a := uint64(0); a < idx.M(); a++ {
				for b := a + 1; b < idx.M(); b++ {
					count(a, b)
					pairs++
				}
			}
		} else {
			rng := o.Rng()
			samples := int64(200000)
			if o.Quick {
				samples = 20000
			}
			for i := int64(0); i < samples; i++ {
				a := uint64(rng.Int63n(int64(idx.M())))
				b := uint64(rng.Int63n(int64(idx.M())))
				if a == b {
					continue
				}
				count(a, b)
				pairs++
			}
		}
		mode := "sampled"
		if in.exhaustive {
			mode = "exhaustive"
		}
		fprintf(w, "%3d %3d %10s %12d %12d %12d %6d\n",
			s.Q, in.n, mode, pairs, hist[0], hist[1], maxI)
		if maxI > 1 {
			fprintf(w, "  !! THEOREM 2 VIOLATED\n")
		}
	}
	fprintf(w, "\n")
	return nil
}

// E3 reproduces Theorem 3: |Γ²(u1) ∩ Γ²(u2)| <= q−1, and reports the
// observed maximum (the bound is attained: CASE 2 of the proof).
func E3(w io.Writer, o Options) error {
	fprintf(w, "E3  Theorem 3: |Γ²(u1)∩Γ²(u2)| ≤ q−1 for distinct modules\n")
	fprintf(w, "%3s %3s %10s %12s %8s %8s\n", "q", "n", "mode", "pairs", "max", "bound")
	type inst struct {
		m, n       int
		exhaustive bool
	}
	insts := []inst{{1, 3, true}, {2, 3, true}, {1, 5, false}}
	if o.Quick {
		insts = []inst{{1, 3, true}}
	}
	for _, in := range insts {
		s, err := core.New(in.m, in.n)
		if err != nil {
			return err
		}
		g2 := func(j uint64) map[uint64]bool {
			out := make(map[uint64]bool)
			var buf []uint64
			for k := uint32(0); k < s.ModuleSize; k++ {
				v := s.ModuleVarMat(j, k)
				buf = s.VarModules(buf[:0], v)
				for _, j2 := range buf {
					if j2 != j {
						out[j2] = true
					}
				}
			}
			return out
		}
		maxI, pairs := 0, int64(0)
		inter := func(a, b map[uint64]bool) int {
			n := 0
			for x := range a {
				if b[x] {
					n++
				}
			}
			return n
		}
		if in.exhaustive {
			sets := make([]map[uint64]bool, s.NumModules)
			for j := uint64(0); j < s.NumModules; j++ {
				sets[j] = g2(j)
			}
			for a := range sets {
				for b := a + 1; b < len(sets); b++ {
					if v := inter(sets[a], sets[b]); v > maxI {
						maxI = v
					}
					pairs++
				}
			}
		} else {
			rng := o.Rng()
			samples := 3000
			if o.Quick {
				samples = 300
			}
			for i := 0; i < samples; i++ {
				a := uint64(rng.Int63n(int64(s.NumModules)))
				b := uint64(rng.Int63n(int64(s.NumModules)))
				if a == b {
					continue
				}
				if v := inter(g2(a), g2(b)); v > maxI {
					maxI = v
				}
				pairs++
			}
		}
		mode := "sampled"
		if in.exhaustive {
			mode = "exhaustive"
		}
		fprintf(w, "%3d %3d %10s %12d %8d %8d\n", s.Q, in.n, mode, pairs, maxI, s.Q-1)
		if maxI > int(s.Q)-1 {
			fprintf(w, "  !! THEOREM 3 VIOLATED\n")
		}
	}
	fprintf(w, "\n")
	return nil
}

// E4 reproduces Theorem 4: measured |Γ(S)| against the floor
// |S|^{2/3}q/2^{1/3} for random sets, module-concentrated sets, and the
// subfield-structured tightness witnesses (composite n).
func E4(w io.Writer, o Options) error {
	fprintf(w, "E4  Theorem 4: |Γ(S)| ≥ |S|^{2/3}·q/2^{1/3} (ratio = measured/floor)\n")
	fprintf(w, "%3s %3s %-14s %8s %10s %10s %8s\n", "q", "n", "set", "|S|", "|Γ(S)|", "floor", "ratio")
	run := func(m, n int, sizes []int) error {
		s, err := core.New(m, n)
		if err != nil {
			return err
		}
		idx, err := s.NewIndexer()
		if err != nil {
			return err
		}
		rng := o.Rng()
		emit := func(label string, vars []uint64) {
			if len(vars) == 0 {
				return
			}
			g := gammaSet(s, idx, vars)
			floor := math.Pow(float64(len(vars)), 2.0/3.0) * float64(s.Q) / math.Cbrt(2)
			fprintf(w, "%3d %3d %-14s %8d %10d %10.1f %8.2f\n",
				s.Q, n, label, len(vars), g, floor, float64(g)/floor)
			if float64(g) < floor {
				fprintf(w, "  !! THEOREM 4 VIOLATED\n")
			}
		}
		for _, size := range sizes {
			if uint64(size) > idx.M() {
				continue
			}
			emit("random", workload.DistinctRandom(rng, idx.M(), size))
			gm, err := workload.GammaConcentrated(s, idx, 0, size)
			if err != nil {
				return err
			}
			emit("Γ-concentrated", gm)
		}
		if s.Deg%3 == 0 && s.Deg > 3 {
			sub, err := workload.SubfieldSet(s, idx, 3)
			if err != nil {
				return err
			}
			emit("subfield(d=3)", sub)
		}
		return nil
	}
	insts := []struct {
		m, n  int
		sizes []int
	}{
		{1, 5, []int{8, 64, 512}},
		{1, 7, []int{64, 512, 4096}},
		{1, 9, []int{512, 4096, 32768}},
		{2, 3, []int{8, 64, 512}},
	}
	if o.Quick {
		insts = insts[:1]
	}
	for _, in := range insts {
		if err := run(in.m, in.n, in.sizes); err != nil {
			return err
		}
	}
	fprintf(w, "  (Γ-concentrated = union of consecutive modules' variable sets;\n")
	fprintf(w, "   subfield = embedded PGL₂(q³) cosets, the composite-n tightness witness)\n\n")
	return nil
}
