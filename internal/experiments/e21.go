package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"detshmem/internal/mpc"
	"detshmem/internal/protocol"
	"detshmem/internal/shard"
	"detshmem/internal/workload"
)

// E21 proves (or honestly disproves, on small hosts) multi-core scaling of
// the lock-free execution layer: the E18 sharded matrix — plus a batched
// AccessBatch variant and an E19-style static-fault rider — re-run at
// GOMAXPROCS ∈ {1, 2, 4, 8, 16}. Every cell drives the same precomputed
// client streams as E18, so differences are attributable to the scheduler
// width and the execution layer alone.
//
// Three comparisons matter:
//
//   - speedup_vs_baseline: against S=1/classic at the same GOMAXPROCS —
//     what sharding + lock-free admission buys at a given core budget;
//   - scale_vs_p1: the same config against itself at GOMAXPROCS=1 — the
//     parallel-scaling curve the ROADMAP asked for;
//   - S=8/batched vs S=8/pipelined: what the cross-shard batch API saves
//     by claiming k rings with k fetch-adds instead of 64 per-op hops.
//
// The committed BENCH_PR7.json records host metadata (NumCPU, CPU model):
// on a 1-CPU container the scale_vs_p1 column is honestly flat — raising
// GOMAXPROCS past NumCPU adds preemption, not cores — which is exactly the
// ambiguity BENCH_PR4 left and this header resolves.
func E21(w io.Writer, o Options) error {
	n := 7
	clients, totalOps := 16, 96000
	procsList := []int{1, 2, 4, 8, 16}
	if o.Quick {
		n = 5
		clients, totalOps = 4, 4000
		procsList = []int{1, 2}
	}
	opsPer := totalOps / clients

	inst, err := newE7Instance(n)
	if err != nil {
		return err
	}
	resolver, err := protocol.CompileMapper(inst.pp, protocol.CompileOptions{})
	if err != nil {
		return err
	}
	N := inst.s.NumModules

	type e21Cfg struct {
		name    string
		shards  int
		pipe    bool
		batched bool // drive through AccessBatch instead of per-op calls
		faults  int  // static failed modules (E19 rider)
	}
	configs := []e21Cfg{
		{"S=1/classic", 1, false, false, 0},
		{"S=1/pipelined", 1, true, false, 0},
		{"S=8/pipelined", 8, true, false, 0},
		{"S=8/batched", 8, true, true, 0},
		{fmt.Sprintf("S=8/pipelined/F=%d", int(N)/16), 8, true, false, int(N) / 16},
	}
	if o.Quick {
		configs = []e21Cfg{
			{"S=1/classic", 1, false, false, 0},
			{"S=2/pipelined", 2, true, false, 0},
			{"S=2/batched", 2, true, true, 0},
		}
	}

	workloads := []struct {
		name   string
		stream func(rng *rand.Rand) []uint64
	}{
		{"uniform", func(rng *rand.Rand) []uint64 {
			return workload.HotSpot(rng, inst.s.NumVariables, opsPer, 16, 0)
		}},
		{"zipf", func(rng *rand.Rand) []uint64 {
			return workload.Zipf(rng, inst.s.NumVariables, opsPer, 1.1)
		}},
		{"hot-spot", func(rng *rand.Rand) []uint64 {
			return workload.HotSpot(rng, inst.s.NumVariables, opsPer, 16, 0.85)
		}},
	}
	if o.Quick {
		workloads = workloads[:2]
	}

	type row struct {
		Config     string  `json:"config"`
		Workload   string  `json:"workload"`
		Procs      int     `json:"gomaxprocs"`
		Shards     int     `json:"shards"`
		Pipeline   bool    `json:"pipeline"`
		Batched    bool    `json:"batched"`
		Faults     int     `json:"faults,omitempty"`
		NsPerOp    float64 `json:"ns_per_op"`
		OpsPerSec  float64 `json:"ops_per_sec"`
		CombinePct float64 `json:"combine_pct"`
		Imbalance  float64 `json:"imbalance"`
		Stranded   int64   `json:"stranded,omitempty"`
		Speedup    float64 `json:"speedup_vs_baseline"`
		ScaleVsP1  float64 `json:"scale_vs_p1"`
	}
	report := struct {
		Experiment string   `json:"experiment"`
		Quick      bool     `json:"quick"`
		Degree     int      `json:"degree_n"`
		Modules    uint64   `json:"modules"`
		Vars       uint64   `json:"vars"`
		Host       HostInfo `json:"host"`
		Clients    int      `json:"clients"`
		OpsPerRun  int      `json:"ops_per_run"`
		ProcsSwept []int    `json:"procs_swept"`
		Rows       []row    `json:"rows"`
	}{
		Experiment: "e21-multicore-scaling",
		Quick:      o.Quick,
		Degree:     n,
		Modules:    N,
		Vars:       inst.s.NumVariables,
		Host:       Host(),
		Clients:    clients,
		OpsPerRun:  totalOps,
		ProcsSwept: procsList,
	}

	fprintf(w, "E21 Multi-core scaling: lock-free rings + batch API (q=2, n=%d, N=%d, M=%d, %d clients, %d ops/run, NumCPU=%d)\n",
		n, N, inst.s.NumVariables, clients, totalOps, report.Host.NumCPU)
	fprintf(w, "%-20s %-9s %6s %10s %12s %9s %9s %9s\n",
		"config", "workload", "procs", "ns/op", "ops/sec", "combine%", "speedup", "scaleP1")

	prevProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prevProcs)

	// p1Ns[config/workload] is the GOMAXPROCS=1 median for the scale_vs_p1
	// column; baseNs is per (procs, workload), reset each sweep.
	p1Ns := map[string]float64{}
	for _, procs := range procsList {
		runtime.GOMAXPROCS(procs)
		for _, wl := range workloads {
			streams := make([][]uint64, clients)
			for c := range streams {
				streams[c] = wl.stream(workload.ClientRNG(o.Seed+21, c))
			}
			var baseNs float64
			for _, cfg := range configs {
				scfg := shard.Config{
					Shards:   cfg.shards,
					Pipeline: cfg.pipe,
					Protocol: o.instrument(protocol.Config{Resolver: resolver}),
				}
				var fs *mpc.FaultSet
				if cfg.faults > 0 {
					fs = mpc.NewFaultSet()
					scfg.Protocol.NewMachine = func(mcfg mpc.Config) (protocol.Machine, error) {
						return mpc.NewFailingShared(mcfg, fs)
					}
				}
				svc, err := shard.New(inst.pp, scfg)
				if err != nil {
					return err
				}
				if fs != nil {
					// Deterministic static fault set, as in E19's ladder.
					frng := rand.New(rand.NewSource(o.Seed + 2100))
					for _, m := range frng.Perm(int(N))[:cfg.faults] {
						fs.Fail(uint64(m))
					}
				}
				drive := func(div int) (int64, error) {
					switch {
					case fs != nil:
						return driveShardsFaulty(svc, streams, div, o.Seed+21)
					case cfg.batched:
						return 0, driveShardsBatched(svc, streams, div, o.Seed+21)
					default:
						return 0, driveShards(svc, streams, div, o.Seed+21)
					}
				}
				if _, err := drive(4); err != nil {
					_ = svc.Close()
					return err
				}
				runtime.GC()
				reps := 3
				if o.Quick {
					reps = 2
				}
				var stranded int64
				elapsedNs := make([]int64, 0, reps)
				for r := 0; r < reps && err == nil; r++ {
					start := time.Now()
					stranded, err = drive(1)
					if ferr := svc.Flush(); err == nil {
						err = ferr
					}
					elapsedNs = append(elapsedNs, time.Since(start).Nanoseconds())
				}
				st := svc.Stats()
				if cerr := svc.Close(); err == nil {
					err = cerr
				}
				if err != nil {
					return err
				}
				if o.ShardStats != nil {
					o.ShardStats(fmt.Sprintf("%s/%s/procs=%d", cfg.name, wl.name, procs), st)
				}
				sort.Slice(elapsedNs, func(i, j int) bool { return elapsedNs[i] < elapsedNs[j] })
				ops := float64(totalOps)
				nsPerOp := float64(elapsedNs[len(elapsedNs)/2]) / ops
				if !cfg.pipe && cfg.shards == 1 {
					baseNs = nsPerOp
				}
				key := cfg.name + "/" + wl.name
				if procs == procsList[0] {
					p1Ns[key] = nsPerOp
				}
				scaleP1 := 0.0
				if p1Ns[key] > 0 {
					scaleP1 = p1Ns[key] / nsPerOp
				}
				speed := baseNs / nsPerOp
				fprintf(w, "%-20s %-9s %6d %10.1f %12.0f %9.1f %8.2fx %8.2fx\n",
					cfg.name, wl.name, procs, nsPerOp, ops*1e9/float64(elapsedNs[len(elapsedNs)/2]),
					100*st.Total.CombiningRate(), speed, scaleP1)
				report.Rows = append(report.Rows, row{
					Config: cfg.name, Workload: wl.name, Procs: procs,
					Shards: cfg.shards, Pipeline: cfg.pipe, Batched: cfg.batched,
					Faults: cfg.faults, NsPerOp: nsPerOp,
					OpsPerSec:  ops * 1e9 / float64(elapsedNs[len(elapsedNs)/2]),
					CombinePct: 100 * st.Total.CombiningRate(),
					Imbalance:  st.Imbalance(), Stranded: stranded,
					Speedup: speed, ScaleVsP1: scaleP1,
				})
			}
		}
	}
	fprintf(w, "  (speedup is against S=1/classic at the same GOMAXPROCS and workload;\n")
	fprintf(w, "   scaleP1 is against the same config at GOMAXPROCS=%d. With GOMAXPROCS\n", procsList[0])
	fprintf(w, "   above the host's NumCPU — see the JSON host header — scaleP1 measures\n")
	fprintf(w, "   scheduler overhead, not parallelism.)\n\n")

	if path := o.jsonPath("BENCH_PR7.json"); path != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			return fmt.Errorf("e21: writing %s: %w", path, err)
		}
		fprintf(w, "  (wrote %s)\n\n", path)
	}
	return nil
}

// driveShardsBatched replays the same client streams as driveShards, but
// through the cross-shard batch API: each client submits its 64-op window
// as one AccessBatch call (one ring claim per touched shard) instead of 64
// per-op submissions. The read/write coin replays identically, so batched
// and per-op cells are comparable op for op.
func driveShardsBatched(svc *shard.Service, streams [][]uint64, div int, seed int64) error {
	const window = 64
	var wg sync.WaitGroup
	errs := make(chan error, len(streams))
	for c := range streams {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := workload.ClientRNG(seed, c)
			stream := streams[c][:len(streams[c])/div]
			ops := make([]shard.BatchOp, 0, window)
			flush := func() bool {
				if len(ops) == 0 {
					return true
				}
				b, err := svc.AccessBatch(ops)
				if err == nil {
					err = b.Wait()
				}
				if err != nil {
					errs <- err
					return false
				}
				ops = ops[:0]
				return true
			}
			for i, v := range stream {
				if rng.Intn(100) < 40 {
					ops = append(ops, shard.BatchOp{Write: true, Var: v, Val: uint64(c)<<32 | uint64(i)})
				} else {
					ops = append(ops, shard.BatchOp{Var: v})
				}
				if len(ops) == window && !flush() {
					return
				}
			}
			flush()
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return fmt.Errorf("batched shard client: %w", err)
		}
	}
	return nil
}
