package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"detshmem/internal/frontend"
	"detshmem/internal/mpc"
	"detshmem/internal/protocol"
	"detshmem/internal/shard"
	"detshmem/internal/workload"
)

// E19 measures live fault tolerance: the frontend keeps serving while
// memory modules crash at runtime. A shared mpc.FaultSet is seeded with F
// random failed modules and the full client harness of E18 (same streams,
// same windowed async drivers) runs against it, for F swept from 0 through
// q/2 (where the paper's quorum argument guarantees every variable keeps a
// live majority) and beyond (where some variables provably lose their
// quorum and their requests must fail with the per-request quorum verdict
// while the rest of the stream commits).
//
// Reported per cell: throughput, the fraction of operations stranded, the
// bids the interconnect dropped at failed modules, the bids the protocol
// re-selected onto survivors, rounds per batch, and the round inflation
// against the same configuration's F=0 cell — the measured price of
// masking F failures. With Options.FaultSched == "churn", extra cells run
// a rolling single-module fail/recover schedule in the background, the
// regime where every quorum always exists but the fault set changes under
// the protocol's feet (mid-phase re-selection and retry passes, rather
// than static avoidance).
//
// When JSON output is requested the table is written to BENCH_PR5.json
// (the committed fault-tolerance curve).
func E19(w io.Writer, o Options) error {
	n := 7
	clients, totalOps := 16, 24000
	if o.Quick {
		n = 5
		clients, totalOps = 4, 3000
	}
	opsPer := totalOps / clients

	inst, err := newE7Instance(n)
	if err != nil {
		return err
	}
	resolver, err := protocol.CompileMapper(inst.pp, protocol.CompileOptions{})
	if err != nil {
		return err
	}

	// The ladder spans both regimes: 0..q/2 (=1) and small constants, where
	// the algebraic spread guarantees masking (Theorem 2: F modules strand
	// at most (F choose 2) variables, so a random stream almost never hits
	// one), then module-count fractions where stranding and retry traffic
	// become measurable.
	N := int(inst.s.NumModules)
	faultCounts := []int{0, 1, 2, 8, N / 16, N / 8, N / 4}
	if o.Quick {
		faultCounts = []int{0, 1, N / 8}
	}
	if o.Faults > 0 {
		faultCounts = []int{0, o.Faults}
	}
	for _, f := range faultCounts {
		if uint64(f) >= inst.s.NumModules {
			return fmt.Errorf("e19: %d faults with only %d modules", f, inst.s.NumModules)
		}
	}
	switch o.FaultSched {
	case "", "churn":
	default:
		return fmt.Errorf("e19: unknown fault schedule %q (want \"churn\")", o.FaultSched)
	}

	type engine struct {
		name     string
		pipeline bool
	}
	engines := []engine{{"classic", false}, {"pipelined", true}}

	workloads := []struct {
		name   string
		stream func(rng *rand.Rand) []uint64
	}{
		{"uniform", func(rng *rand.Rand) []uint64 {
			return workload.HotSpot(rng, inst.s.NumVariables, opsPer, 16, 0)
		}},
		{"zipf", func(rng *rand.Rand) []uint64 {
			return workload.Zipf(rng, inst.s.NumVariables, opsPer, 1.1)
		}},
		{"hot-spot", func(rng *rand.Rand) []uint64 {
			return workload.HotSpot(rng, inst.s.NumVariables, opsPer, 16, 0.85)
		}},
	}

	type row struct {
		Engine        string  `json:"engine"`
		Workload      string  `json:"workload"`
		Faults        string  `json:"faults"`
		FailedModules int     `json:"failed_modules"`
		NsPerOp       float64 `json:"ns_per_op"`
		OpsPerSec     float64 `json:"ops_per_sec"`
		StrandedOps   int64   `json:"stranded_ops"`
		StrandedReqs  int64   `json:"stranded_requests"`
		RetriedBids   int64   `json:"retried_bids"`
		DroppedBids   int64   `json:"dropped_bids"`
		RoundsPerBat  float64 `json:"rounds_per_batch"`
		RoundInflate  float64 `json:"round_inflation_vs_f0"`
	}
	report := struct {
		Experiment string   `json:"experiment"`
		Quick      bool     `json:"quick"`
		Degree     int      `json:"degree_n"`
		Modules    uint64   `json:"modules"`
		Vars       uint64   `json:"vars"`
		Quorum     int      `json:"quorum"`
		GoMaxProcs int      `json:"gomaxprocs"`
		Host       HostInfo `json:"host"`
		Clients    int      `json:"clients"`
		OpsPerRun  int      `json:"ops_per_run"`
		Rows       []row    `json:"rows"`
	}{
		Experiment: "e19-fault-tolerance",
		Quick:      o.Quick,
		Degree:     n,
		Modules:    inst.s.NumModules,
		Vars:       inst.s.NumVariables,
		Quorum:     inst.s.Majority,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Host:       Host(),
		Clients:    clients,
		OpsPerRun:  totalOps,
	}

	fprintf(w, "E19 Fault tolerance: runtime module failures (q=2, n=%d, N=%d, M=%d, quorum=%d, %d clients, %d ops/run)\n",
		n, inst.s.NumModules, inst.s.NumVariables, inst.s.Majority, clients, totalOps)
	fprintf(w, "%-10s %-9s %7s %10s %12s %9s %9s %9s %9s %8s %9s\n",
		"engine", "workload", "faults", "ns/op", "ops/sec", "strandOp", "strandRq", "retried", "dropped", "rnd/bat", "inflate")

	// measure drives one cell: warm-up, then the median of reps timed runs.
	measure := func(eng engine, streams [][]uint64, fs *mpc.FaultSet, churn bool) (row, error) {
		svc, err := shard.New(inst.pp, shard.Config{
			Shards:   1,
			Pipeline: eng.pipeline,
			Observe:  true,
			Protocol: o.instrument(protocol.Config{
				Resolver: resolver,
				NewMachine: func(mcfg mpc.Config) (protocol.Machine, error) {
					return mpc.NewFailingShared(mcfg, fs)
				},
			}),
		})
		if err != nil {
			return row{}, err
		}
		stopChurn := func() {}
		if churn {
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				m := uint64(0)
				for {
					select {
					case <-stop:
						return
					default:
					}
					fs.Fail(m)
					time.Sleep(100 * time.Microsecond)
					fs.Recover(m)
					m = (m + 13) % inst.s.NumModules
				}
			}()
			stopChurn = func() { close(stop); wg.Wait() }
		}
		if _, err := driveShardsFaulty(svc, streams, 4, o.Seed+19); err != nil {
			stopChurn()
			_ = svc.Close()
			return row{}, err
		}
		runtime.GC()
		reps := 3
		if o.Quick {
			reps = 2
		}
		elapsedNs := make([]int64, 0, reps)
		var strandedOps int64
		for r := 0; r < reps; r++ {
			start := time.Now()
			stranded, err := driveShardsFaulty(svc, streams, 1, o.Seed+19)
			if ferr := svc.Flush(); err == nil {
				err = ferr
			}
			if err != nil {
				stopChurn()
				_ = svc.Close()
				return row{}, err
			}
			elapsedNs = append(elapsedNs, time.Since(start).Nanoseconds())
			strandedOps += stranded
		}
		stopChurn()
		st := svc.Stats()
		snap := svc.Snapshot()
		if err := svc.Close(); err != nil {
			return row{}, err
		}
		sort.Slice(elapsedNs, func(i, j int) bool { return elapsedNs[i] < elapsedNs[j] })
		med := time.Duration(elapsedNs[len(elapsedNs)/2])
		ops := float64(totalOps)
		var dropped int64
		for k, v := range snap {
			if strings.HasSuffix(k, "_dropped_bids_total") {
				dropped += v
			}
		}
		r := row{
			Engine:       eng.name,
			NsPerOp:      float64(med.Nanoseconds()) / ops,
			OpsPerSec:    ops / med.Seconds(),
			StrandedOps:  strandedOps / int64(reps),
			StrandedReqs: st.Total.Stranded,
			RetriedBids:  st.Total.RetriedBids,
			DroppedBids:  dropped,
		}
		if st.Total.Batches > 0 {
			r.RoundsPerBat = float64(st.Total.TotalRounds) / float64(st.Total.Batches)
		}
		return r, nil
	}

	emit := func(r row) {
		fprintf(w, "%-10s %-9s %7s %10.1f %12.0f %9d %9d %9d %9d %8.2f %8.2fx\n",
			r.Engine, r.Workload, r.Faults, r.NsPerOp, r.OpsPerSec,
			r.StrandedOps, r.StrandedReqs, r.RetriedBids, r.DroppedBids,
			r.RoundsPerBat, r.RoundInflate)
		report.Rows = append(report.Rows, r)
	}

	for _, wl := range workloads {
		streams := make([][]uint64, clients)
		for c := range streams {
			streams[c] = wl.stream(workload.ClientRNG(o.Seed+19, c))
		}
		for _, eng := range engines {
			var baseRounds float64
			for _, f := range faultCounts {
				// The fault set is drawn deterministically per fault count, so
				// both engines (and reruns) see identical failed modules.
				frng := rand.New(rand.NewSource(o.Seed + 19*int64(f) + 7))
				fs := mpc.NewFaultSet(workload.RandomFaults(frng, inst.s.NumModules, f)...)
				r, err := measure(eng, streams, fs, false)
				if err != nil {
					return err
				}
				r.Workload = wl.name
				r.Faults = fmt.Sprintf("%d", f)
				r.FailedModules = f
				if f == 0 {
					baseRounds = r.RoundsPerBat
				}
				if baseRounds > 0 {
					r.RoundInflate = r.RoundsPerBat / baseRounds
				}
				emit(r)
			}
			if o.FaultSched == "churn" {
				r, err := measure(eng, streams, mpc.NewFaultSet(), true)
				if err != nil {
					return err
				}
				r.Workload = wl.name
				r.Faults = "churn"
				r.FailedModules = -1
				if baseRounds > 0 {
					r.RoundInflate = r.RoundsPerBat / baseRounds
				}
				emit(r)
			}
		}
	}

	fprintf(w, "  (faults = modules seeded failed before the run; every request whose\n")
	fprintf(w, "   variable keeps a live majority commits, the rest fail per-request with\n")
	fprintf(w, "   the quorum verdict and are counted as stranded. q/2 = %d failures are\n", inst.s.Copies/2)
	fprintf(w, "   always maskable; beyond that stranding sets in. \"inflate\" is rounds\n")
	fprintf(w, "   per batch against the same engine+workload at F=0: the round-level\n")
	fprintf(w, "   price of re-selecting quorums around the failed modules.)\n\n")

	if path := o.jsonPath("BENCH_PR5.json"); path != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			return fmt.Errorf("e19: writing %s: %w", path, err)
		}
		fprintf(w, "  (wrote %s)\n\n", path)
	}
	return nil
}

// driveShardsFaulty replays the client streams like driveShards, but
// tolerates the degraded-mode outcome: futures failing with the
// ErrIncomplete class (quorum losses included) are counted and the stream
// continues — exactly how a fault-tolerant client consumes the service.
// Any other error aborts. Returns the number of stranded operations.
func driveShardsFaulty(svc *shard.Service, streams [][]uint64, div int, seed int64) (int64, error) {
	const window = 64
	var wg sync.WaitGroup
	var stranded int64
	var mu sync.Mutex
	errs := make(chan error, len(streams))
	for c := range streams {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := workload.ClientRNG(seed, c)
			stream := streams[c][:len(streams[c])/div]
			futs := make([]*frontend.Future, 0, window)
			bad := int64(0)
			drain := func() bool {
				for _, fut := range futs {
					if _, err := fut.Wait(); err != nil {
						if !errors.Is(err, protocol.ErrIncomplete) {
							errs <- err
							return false
						}
						bad++
					}
				}
				futs = futs[:0]
				return true
			}
			for i, v := range stream {
				var fut *frontend.Future
				var err error
				if rng.Intn(100) < 40 {
					fut, err = svc.WriteAsync(v, uint64(c)<<32|uint64(i))
				} else {
					fut, err = svc.ReadAsync(v)
				}
				if err != nil {
					errs <- err
					return
				}
				futs = append(futs, fut)
				if len(futs) == window && !drain() {
					return
				}
			}
			drain()
			mu.Lock()
			stranded += bad
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return stranded, fmt.Errorf("shard client: %w", err)
		}
	}
	return stranded, nil
}
