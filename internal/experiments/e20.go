package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"detshmem/internal/consistency"
	"detshmem/internal/frontend"
	"detshmem/internal/mpc"
	"detshmem/internal/protocol"
	"detshmem/internal/shard"
	"detshmem/internal/workload"
)

// E20 measures the consistency-auditing layer added with the black-box PRAM
// checker (internal/consistency) in three parts:
//
// Part A prices the offline checker itself: sequentially consistent traces
// of growing length are generated and certified under both modes, so the
// table shows how the constraint-graph closure scales with trace size —
// the cost of auditing a smembench -trace dump offline.
//
// Part B prices the always-on sampling audit: the pipelined sharded service
// is driven with identical precomputed client streams at audit rates
// {off, 1%, 100%} under both MPC engines, and the overhead column reports
// the throughput cost relative to the unaudited baseline of the same
// engine. The run self-checks: any audit violation fails the experiment.
//
// Part C records real client traces — both dispatchers, both MPC engines,
// S=1 (total-order contract) and S=4 (per-variable contract), plus a
// degraded cell where a victim variable's modules fail mid-run and its
// stranded operations are recorded as failed — and certifies every run with
// the trace checker under the contract's required modes. With smembench
// -trace the recorded TraceSet is embedded in the dump for
// cmd/consistencycheck to re-verify offline.
//
// When JSON output is requested the measurements are written to
// BENCH_PR6.json.
func E20(w io.Writer, o Options) error {
	rep := e20Report{
		Experiment: "e20-consistency-auditing",
		Quick:      o.Quick,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Host:       Host(),
	}
	if err := e20CheckerCost(w, o, &rep); err != nil {
		return err
	}
	if err := e20SamplingOverhead(w, o, &rep); err != nil {
		return err
	}
	if err := e20RecordedRuns(w, o, &rep); err != nil {
		return err
	}
	if path := o.jsonPath("BENCH_PR6.json"); path != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			return fmt.Errorf("e20: writing %s: %w", path, err)
		}
		fprintf(w, "  (wrote %s)\n\n", path)
	}
	return nil
}

type e20Report struct {
	Experiment string           `json:"experiment"`
	Quick      bool             `json:"quick"`
	GoMaxProcs int              `json:"gomaxprocs"`
	Host       HostInfo         `json:"host"`
	Checker    []e20CheckerRow  `json:"checker_rows"`
	Sampling   []e20SamplingRow `json:"sampling_rows"`
	Recorded   []e20RecordedRow `json:"recorded_rows"`
}

type e20CheckerRow struct {
	Ops     int     `json:"ops"`
	Clients int     `json:"clients"`
	Vars    int     `json:"vars"`
	Mode    string  `json:"mode"`
	Millis  float64 `json:"millis"`
	OpsPerS float64 `json:"ops_per_sec"`
}

type e20SamplingRow struct {
	Engine    string  `json:"engine"`
	Rate      float64 `json:"rate"`
	NsPerOp   float64 `json:"ns_per_op"`
	Sampled   int64   `json:"sampled"`
	Overhead  float64 `json:"overhead_pct"`
	Violation int64   `json:"violations"`
}

type e20RecordedRow struct {
	Label     string `json:"label"`
	Contract  string `json:"contract"`
	Ops       int    `json:"ops"`
	Dropped   int    `json:"dropped_failed"`
	Certified bool   `json:"certified"`
}

// e20SC generates a sequentially consistent trace the same way the package's
// property tests do: a random global interleaving against one store, with
// per-client unique write values.
func e20SC(rng *rand.Rand, clients, opsPerClient, vars int) consistency.Trace {
	tr := make(consistency.Trace, clients)
	store := make(map[uint64]uint64, vars)
	seq := make([]uint64, clients)
	remaining := make([]int, clients)
	live := 0
	for c := range remaining {
		remaining[c] = opsPerClient
		if opsPerClient > 0 {
			live++
		}
	}
	for live > 0 {
		c := rng.Intn(clients)
		if remaining[c] == 0 {
			continue
		}
		v := uint64(rng.Intn(vars))
		if rng.Intn(100) < 40 {
			seq[c]++
			val := uint64(c+1)<<40 | seq[c]
			store[v] = val
			tr[c] = append(tr[c], consistency.Op{Write: true, Var: v, Val: val})
		} else {
			tr[c] = append(tr[c], consistency.Op{Var: v, Val: store[v]})
		}
		if remaining[c]--; remaining[c] == 0 {
			live--
		}
	}
	return tr
}

// e20CheckerCost is Part A: offline checker cost vs trace length.
func e20CheckerCost(w io.Writer, o Options, rep *e20Report) error {
	const clients, vars = 4, 64
	lengths := []int{500, 2000, 8000}
	if o.Quick {
		lengths = []int{250, 1000}
	}
	rng := o.Rng()
	fprintf(w, "E20a Offline checker cost (SC traces, %d clients, %d vars)\n", clients, vars)
	fprintf(w, "%8s %-14s %10s %12s\n", "ops", "mode", "ms", "ops/sec")
	for _, total := range lengths {
		tr := e20SC(rng, clients, total/clients, vars)
		for _, mode := range []consistency.Mode{consistency.ModePRAM, consistency.ModePerVariable} {
			start := time.Now()
			r := consistency.Check(tr, mode)
			elapsed := time.Since(start)
			if !r.OK {
				return fmt.Errorf("e20: checker rejected an SC trace (%s): %+v", mode, r.First())
			}
			ms := float64(elapsed.Nanoseconds()) / 1e6
			ops := float64(tr.Ops())
			fprintf(w, "%8d %-14s %10.2f %12.0f\n", tr.Ops(), mode, ms, ops/elapsed.Seconds())
			rep.Checker = append(rep.Checker, e20CheckerRow{
				Ops: tr.Ops(), Clients: clients, Vars: vars, Mode: mode.String(),
				Millis: ms, OpsPerS: ops / elapsed.Seconds(),
			})
		}
	}
	fprintf(w, "  (constraint-graph closure with var-grouped bitset reachability;\n")
	fprintf(w, "   the PRAM mode builds one view per reading client, per-variable one\n")
	fprintf(w, "   view per variable, so per-variable is cheaper on wide traces.)\n\n")
	return nil
}

// e20SamplingOverhead is Part B: throughput cost of the always-on sampling
// audit at rates {off, 1%, 100%} on the pipelined sharded service.
func e20SamplingOverhead(w io.Writer, o Options, rep *e20Report) error {
	n := 7
	clients, totalOps := 8, 48000
	shards := 4
	if o.Quick {
		n = 5
		clients, totalOps = 4, 4000
		shards = 2
	}
	opsPer := totalOps / clients
	inst, err := newE7Instance(n)
	if err != nil {
		return err
	}
	resolver, err := protocol.CompileMapper(inst.pp, protocol.CompileOptions{})
	if err != nil {
		return err
	}
	streams := make([][]uint64, clients)
	for c := range streams {
		streams[c] = workload.HotSpot(workload.ClientRNG(o.Seed+20, c), inst.s.NumVariables, opsPer, 16, 0.5)
	}

	engines := []struct {
		name string
		cfg  protocol.Config
	}{
		{"sequential", protocol.Config{Resolver: resolver}},
		{"parallel", protocol.Config{Resolver: resolver, Parallel: true, Workers: 4}},
	}
	rates := []float64{0, 0.01, 1.0}

	fprintf(w, "E20b Sampling-audit overhead (S=%d pipelined, %d clients, %d ops/run)\n", shards, clients, totalOps)
	fprintf(w, "%-12s %8s %10s %10s %10s\n", "engine", "rate", "ns/op", "sampled", "overhead")
	for _, eng := range engines {
		// One service per rate, measured in round-robin repetitions: slow
		// host drift (frequency scaling, container neighbors) hits every
		// rate's sample set equally instead of biasing whichever rate ran
		// last, and the median per rate discards the stragglers.
		svcs := make([]*shard.Service, len(rates))
		elapsedNs := make([][]int64, len(rates))
		err = nil
		for i, rate := range rates {
			var svc *shard.Service
			svc, err = shard.New(inst.pp, shard.Config{
				Shards:   shards,
				Pipeline: true,
				Protocol: o.instrument(eng.cfg),
				Audit:    consistency.AuditConfig{Rate: rate},
			})
			if err != nil {
				break
			}
			svcs[i] = svc
			if err = driveShards(svc, streams, 4, o.Seed+20); err != nil {
				break
			}
		}
		if err != nil {
			for _, svc := range svcs {
				if svc != nil {
					_ = svc.Close()
				}
			}
			return err
		}
		reps := 7
		if o.Quick {
			reps = 3
		}
		for r := 0; r < reps && err == nil; r++ {
			for i := range rates {
				runtime.GC()
				start := time.Now()
				err = driveShards(svcs[i], streams, 1, o.Seed+20)
				if ferr := svcs[i].Flush(); err == nil {
					err = ferr
				}
				if err != nil {
					break
				}
				elapsedNs[i] = append(elapsedNs[i], time.Since(start).Nanoseconds())
			}
		}
		var baseNs float64
		for i, rate := range rates {
			ast := svcs[i].AuditStats()
			if cerr := svcs[i].Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
			// Self-check: the service under measurement must never trip its
			// own auditor.
			if ast.Violations != 0 {
				return fmt.Errorf("e20: sampling audit reported %d violations at rate %g (%s)", ast.Violations, rate, eng.name)
			}
			ns := elapsedNs[i]
			sort.Slice(ns, func(a, b int) bool { return ns[a] < ns[b] })
			nsPerOp := float64(ns[len(ns)/2]) / float64(totalOps)
			if rate == 0 {
				baseNs = nsPerOp
			}
			overhead := 100 * (nsPerOp - baseNs) / baseNs
			fprintf(w, "%-12s %8.2f %10.1f %10d %9.1f%%\n", eng.name, rate, nsPerOp, ast.Sampled, overhead)
			rep.Sampling = append(rep.Sampling, e20SamplingRow{
				Engine: eng.name, Rate: rate, NsPerOp: nsPerOp,
				Sampled: ast.Sampled, Overhead: overhead, Violation: ast.Violations,
			})
		}
	}
	fprintf(w, "  (overhead is vs the rate-0 baseline of the same engine; the audit\n")
	fprintf(w, "   runs on the flush path — a shadow-store probe per committed batch\n")
	fprintf(w, "   entry on sampled variables, allocation-free. Negative overheads are\n")
	fprintf(w, "   run-to-run noise.)\n\n")
	return nil
}

// e20Drive drives the service with windowed traffic from concurrent clients,
// recording every operation in program order on its client's recorder.
// Operations on faulty variables may resolve with ErrQuorumUnreachable;
// those are recorded as failed. Any other error fails the drive.
func e20Drive(svc *shard.Service, rr *consistency.RunRecorder, clients, opsPerClient int, vars []uint64, seed int64) error {
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cr := rr.Client(c)
			rng := rand.New(rand.NewSource(seed + int64(c)*6151))
			type slot struct {
				fut   *frontend.Future
				write bool
				v     uint64
				val   uint64
			}
			const window = 16
			pending := make([]slot, 0, window)
			drain := func() bool {
				for _, s := range pending {
					got, err := s.fut.Wait()
					if err != nil {
						if !errors.Is(err, protocol.ErrQuorumUnreachable) {
							errs <- err
							return false
						}
						cr.Record(s.write, s.v, s.val, true)
						continue
					}
					if s.write {
						cr.Record(true, s.v, s.val, false)
					} else {
						cr.Record(false, s.v, got, false)
					}
				}
				pending = pending[:0]
				return true
			}
			for i := 0; i < opsPerClient; i++ {
				v := vars[rng.Intn(len(vars))]
				var s slot
				var err error
				if rng.Intn(100) < 40 {
					s = slot{write: true, v: v, val: cr.WriteValue()}
					s.fut, err = svc.WriteAsync(v, s.val)
				} else {
					s = slot{v: v}
					s.fut, err = svc.ReadAsync(v)
				}
				if err != nil {
					errs <- err
					return
				}
				pending = append(pending, s)
				if len(pending) == window && !drain() {
					return
				}
			}
			drain()
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// e20RecordedRuns is Part C: record real client traces across the
// dispatcher × engine × contract matrix (plus a degraded cell with stranded
// operations) and certify each with the trace checker.
func e20RecordedRuns(w io.Writer, o Options, rep *e20Report) error {
	rec := o.Consistency
	if rec == nil {
		rec = consistency.NewRecorder()
	}
	clients, opsPer := 4, 300
	if o.Quick {
		opsPer = 100
	}
	inst, err := newE7Instance(5)
	if err != nil {
		return err
	}
	resolver, err := protocol.CompileMapper(inst.pp, protocol.CompileOptions{})
	if err != nil {
		return err
	}
	vars := make([]uint64, 48)
	for i := range vars {
		vars[i] = uint64(i)
	}

	cells := []struct {
		label    string
		cfg      shard.Config
		contract consistency.Contract
	}{
		{"S=1/classic/sequential", shard.Config{Shards: 1, Protocol: protocol.Config{Resolver: resolver}}, consistency.ContractTotalOrder},
		{"S=1/pipelined/parallel", shard.Config{Shards: 1, Pipeline: true, Protocol: protocol.Config{Resolver: resolver, Parallel: true, Workers: 2}}, consistency.ContractTotalOrder},
		{"S=4/classic/parallel", shard.Config{Shards: 4, Protocol: protocol.Config{Resolver: resolver, Parallel: true, Workers: 2}}, consistency.ContractPerVariable},
		{"S=4/pipelined/sequential", shard.Config{Shards: 4, Pipeline: true, Protocol: protocol.Config{Resolver: resolver}}, consistency.ContractPerVariable},
	}

	fprintf(w, "E20c Recorded traces, certified by the black-box checker\n")
	fprintf(w, "%-28s %-14s %8s %8s %10s\n", "run", "contract", "ops", "dropped", "verdict")
	verify := func(run consistency.Run) error {
		for _, mode := range consistency.ModesFor(run.Contract) {
			r := consistency.Check(run.Clients, mode)
			row := e20RecordedRow{
				Label: run.Label, Contract: string(run.Contract),
				Ops: r.OpsChecked, Dropped: r.DroppedFailed, Certified: r.OK,
			}
			rep.Recorded = append(rep.Recorded, row)
			verdict := "certified/" + mode.String()
			if !r.OK {
				verdict = "VIOLATED/" + mode.String()
			}
			fprintf(w, "%-28s %-14s %8d %8d %s\n", run.Label, run.Contract, r.OpsChecked, r.DroppedFailed, verdict)
			if !r.OK {
				return fmt.Errorf("e20: recorded run %q violated %s: %s", run.Label, mode, r.First().Message)
			}
		}
		return nil
	}

	for _, cell := range cells {
		svc, err := shard.New(inst.pp, shard.Config{
			Shards:   cell.cfg.Shards,
			Pipeline: cell.cfg.Pipeline,
			Protocol: o.instrument(cell.cfg.Protocol),
		})
		if err != nil {
			return err
		}
		rr := rec.Run(cell.label, cell.contract, clients)
		err = e20Drive(svc, rr, clients, opsPer, vars, o.Seed+201)
		if ferr := svc.Flush(); err == nil {
			err = ferr
		}
		if cerr := svc.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		ts := rec.TraceSet()
		if err := verify(ts.Runs[len(ts.Runs)-1]); err != nil {
			return err
		}
	}

	// Degraded cell: fail every module of a victim variable mid-run (no
	// retry), so its operations strand with ErrQuorumUnreachable and are
	// recorded as failed; healthy variables (live majority throughout) keep
	// committing. The checker must drop the stranded ops and still certify.
	fs := mpc.NewFaultSet()
	svc, err := shard.New(inst.pp, shard.Config{
		Shards:   2,
		Pipeline: true,
		MaxBatch: 16,
		Protocol: o.instrument(protocol.Config{
			Resolver: resolver,
			NewMachine: func(mcfg mpc.Config) (protocol.Machine, error) {
				return mpc.NewFailingShared(mcfg, fs)
			},
			MaxIterationsPerPhase: 2048,
		}),
	})
	if err != nil {
		return err
	}
	victim := uint64(10)
	vmods := inst.s.VarModules(nil, inst.idx.Mat(victim))
	failed := map[uint64]bool{}
	for _, m := range vmods {
		failed[m] = true
	}
	var healthy []uint64
	var scratch []uint64
	for v := uint64(0); len(healthy) < 12; v++ {
		if v == victim {
			continue
		}
		live := 0
		scratch = inst.s.VarModules(scratch[:0], inst.idx.Mat(v))
		for _, m := range scratch {
			if !failed[m] {
				live++
			}
		}
		if live >= inst.s.Majority {
			healthy = append(healthy, v)
		}
	}
	rr := rec.Run("S=2/pipelined/degraded", consistency.ContractPerVariable, clients)
	err = e20Drive(svc, rr, clients, opsPer/2, append([]uint64{victim}, healthy...), o.Seed+202)
	if err == nil {
		for _, m := range vmods {
			fs.Fail(m)
		}
		err = e20Drive(svc, rr, clients, opsPer/2, append([]uint64{victim}, healthy...), o.Seed+203)
	}
	if ferr := svc.Flush(); err == nil {
		err = ferr
	}
	if cerr := svc.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	ts := rec.TraceSet()
	if err := verify(ts.Runs[len(ts.Runs)-1]); err != nil {
		return err
	}
	fprintf(w, "  (the degraded run strands the victim variable's operations with the\n")
	fprintf(w, "   quorum verdict; the checker drops failed ops — resurrecting any\n")
	fprintf(w, "   failed write whose value a later read returned — and certifies the\n")
	fprintf(w, "   surviving history under the per-variable contract.)\n\n")
	return nil
}
