package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"detshmem/internal/frontend"
	"detshmem/internal/protocol"
	"detshmem/internal/shard"
	"detshmem/internal/workload"
)

// E18 measures the sharded execution layer: the variable space is
// partitioned over S independent protocol systems (one compiled resolver
// shared by all of them) and each shard runs its own dispatcher, so
// admission, coalescing, and backend flushing proceed per shard with no
// shared serialization point. Two knobs are swept:
//
//   - S, the shard count: single-dispatcher (S=1) through S=8;
//   - the dispatcher: the classic channel-fed frontend loop versus the
//     pipelined dispatcher, whose clients coalesce directly into the
//     accumulating batch under the shard mutex while a flusher goroutine
//     drains sealed batches behind them.
//
// Each (config, workload) cell drives the same precomputed client streams,
// so throughput differences are attributable to the execution layer alone.
// The speedup column is against the S=1 classic-dispatcher baseline of the
// same workload. On a single-core host (gomaxprocs 1 in the JSON) the gains
// come from eliminating per-op dispatch overhead — the channel hop and
// dispatcher wakeup the classic loop pays — and from batch pipelining, not
// from parallel protocol execution; multicore hosts add shard parallelism
// on top.
//
// When JSON output is requested the table is written to BENCH_PR4.json (the
// committed scaling curve), so CI and future PRs can diff the numbers
// mechanically.
func E18(w io.Writer, o Options) error {
	n := 7
	clients, totalOps := 16, 96000
	if o.Quick {
		n = 5
		clients, totalOps = 4, 4000
	}
	opsPer := totalOps / clients

	inst, err := newE7Instance(n)
	if err != nil {
		return err
	}
	resolver, err := protocol.CompileMapper(inst.pp, protocol.CompileOptions{})
	if err != nil {
		return err
	}

	type shardCfg struct {
		shards   int
		pipeline bool
	}
	name := func(c shardCfg) string {
		d := "classic"
		if c.pipeline {
			d = "pipelined"
		}
		return fmt.Sprintf("S=%d/%s", c.shards, d)
	}
	configs := []shardCfg{{1, false}, {1, true}, {2, true}, {4, true}, {8, true}}
	if o.Quick {
		configs = configs[:4]
	}
	if o.Shards > 0 {
		configs = []shardCfg{{1, false}}
		if o.Shards != 1 || o.Pipeline {
			configs = append(configs, shardCfg{o.Shards, o.Pipeline})
		}
	}

	workloads := []struct {
		name   string
		stream func(rng *rand.Rand) []uint64
	}{
		{"uniform", func(rng *rand.Rand) []uint64 {
			return workload.HotSpot(rng, inst.s.NumVariables, opsPer, 16, 0)
		}},
		{"zipf", func(rng *rand.Rand) []uint64 {
			return workload.Zipf(rng, inst.s.NumVariables, opsPer, 1.1)
		}},
		{"hot-spot", func(rng *rand.Rand) []uint64 {
			return workload.HotSpot(rng, inst.s.NumVariables, opsPer, 16, 0.85)
		}},
	}

	type row struct {
		Config     string  `json:"config"`
		Workload   string  `json:"workload"`
		Shards     int     `json:"shards"`
		Pipeline   bool    `json:"pipeline"`
		NsPerOp    float64 `json:"ns_per_op"`
		OpsPerSec  float64 `json:"ops_per_sec"`
		CombinePct float64 `json:"combine_pct"`
		Imbalance  float64 `json:"imbalance"`
		Speedup    float64 `json:"speedup_vs_baseline"`
	}
	report := struct {
		Experiment string   `json:"experiment"`
		Quick      bool     `json:"quick"`
		Degree     int      `json:"degree_n"`
		Modules    uint64   `json:"modules"`
		Vars       uint64   `json:"vars"`
		GoMaxProcs int      `json:"gomaxprocs"`
		Host       HostInfo `json:"host"`
		Clients    int      `json:"clients"`
		OpsPerRun  int      `json:"ops_per_run"`
		Rows       []row    `json:"rows"`
	}{
		Experiment: "e18-sharded-frontend",
		Quick:      o.Quick,
		Degree:     n,
		Modules:    inst.s.NumModules,
		Vars:       inst.s.NumVariables,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Host:       Host(),
		Clients:    clients,
		OpsPerRun:  totalOps,
	}

	fprintf(w, "E18 Scaling out: sharded, pipelined frontend (q=2, n=%d, N=%d, M=%d, %d clients, %d ops/run, GOMAXPROCS=%d)\n",
		n, inst.s.NumModules, inst.s.NumVariables, clients, totalOps, report.GoMaxProcs)
	fprintf(w, "%-16s %-9s %10s %12s %10s %10s %9s\n",
		"config", "workload", "ns/op", "ops/sec", "combine%", "imbalance", "speedup")

	for _, wl := range workloads {
		// One stream set per workload, shared by every config: the op
		// sequences (and each client's read/write coin) are identical across
		// configs, so the sweep isolates the execution layer.
		streams := make([][]uint64, clients)
		for c := range streams {
			streams[c] = wl.stream(workload.ClientRNG(o.Seed+18, c))
		}
		var baseNs float64
		for _, cfg := range configs {
			svc, err := shard.New(inst.pp, shard.Config{
				Shards:   cfg.shards,
				Pipeline: cfg.pipeline,
				Protocol: o.instrument(protocol.Config{Resolver: resolver}),
			})
			if err != nil {
				return err
			}
			// Warm-up sizes every shard's scratch (and the pipelined
			// dispatchers' batch pools); the GC fence keeps one config's
			// garbage off another config's clock. Each cell is then measured
			// over several repetitions and reported as the median, since a
			// single ~tens-of-ms run is at the mercy of scheduler noise.
			if err := driveShards(svc, streams, 4, o.Seed+18); err != nil {
				_ = svc.Close()
				return err
			}
			runtime.GC()
			reps := 3
			if o.Quick {
				reps = 2
			}
			elapsedNs := make([]int64, 0, reps)
			for r := 0; r < reps && err == nil; r++ {
				start := time.Now()
				err = driveShards(svc, streams, 1, o.Seed+18)
				if ferr := svc.Flush(); err == nil {
					err = ferr
				}
				elapsedNs = append(elapsedNs, time.Since(start).Nanoseconds())
			}
			st := svc.Stats()
			if cerr := svc.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
			if o.ShardStats != nil {
				o.ShardStats(name(cfg)+"/"+wl.name, st)
			}
			sort.Slice(elapsedNs, func(i, j int) bool { return elapsedNs[i] < elapsedNs[j] })
			ops := float64(totalOps)
			nsPerOp := float64(elapsedNs[len(elapsedNs)/2]) / ops
			elapsed := time.Duration(elapsedNs[len(elapsedNs)/2])
			if !cfg.pipeline && cfg.shards == 1 {
				baseNs = nsPerOp
			}
			speed := baseNs / nsPerOp
			imb := st.Imbalance()
			fprintf(w, "%-16s %-9s %10.1f %12.0f %10.1f %10.2f %8.2fx\n",
				name(cfg), wl.name, nsPerOp, ops/elapsed.Seconds(),
				100*st.Total.CombiningRate(), imb, speed)
			report.Rows = append(report.Rows, row{
				Config: name(cfg), Workload: wl.name,
				Shards: cfg.shards, Pipeline: cfg.pipeline,
				NsPerOp: nsPerOp, OpsPerSec: ops / elapsed.Seconds(),
				CombinePct: 100 * st.Total.CombiningRate(),
				Imbalance:  imb, Speedup: speed,
			})
		}
	}
	fprintf(w, "  (speedup is against S=1/classic on the same workload. Routing is the\n")
	fprintf(w, "   splitmix64 hash of the variable id, so all operations on a variable\n")
	fprintf(w, "   hit the same shard: the service is linearizable per variable, with no\n")
	fprintf(w, "   cross-variable order between shards. ops/sec is wall-clock and\n")
	fprintf(w, "   machine-dependent; on GOMAXPROCS=1 hosts the scaling comes from\n")
	fprintf(w, "   cutting per-op dispatch overhead, not from parallelism.)\n\n")

	if path := o.jsonPath("BENCH_PR4.json"); path != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			return fmt.Errorf("e18: writing %s: %w", path, err)
		}
		fprintf(w, "  (wrote %s)\n\n", path)
	}
	return nil
}

// driveShards replays each client's precomputed stream against the service
// in asynchronous windows (40% writes, decided by the client's own RNG so
// the coin flips replay identically across configs). div shrinks the run
// (div=4 drives a quarter of each stream for warm-up).
func driveShards(svc *shard.Service, streams [][]uint64, div int, seed int64) error {
	const window = 64
	var wg sync.WaitGroup
	errs := make(chan error, len(streams))
	for c := range streams {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := workload.ClientRNG(seed, c)
			stream := streams[c][:len(streams[c])/div]
			futs := make([]*frontend.Future, 0, window)
			drain := func() bool {
				for _, fut := range futs {
					if _, err := fut.Wait(); err != nil {
						errs <- err
						return false
					}
				}
				futs = futs[:0]
				return true
			}
			for i, v := range stream {
				var fut *frontend.Future
				var err error
				if rng.Intn(100) < 40 {
					fut, err = svc.WriteAsync(v, uint64(c)<<32|uint64(i))
				} else {
					fut, err = svc.ReadAsync(v)
				}
				if err != nil {
					errs <- err
					return
				}
				futs = append(futs, fut)
				if len(futs) == window && !drain() {
					return
				}
			}
			drain()
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return fmt.Errorf("shard client: %w", err)
		}
	}
	return nil
}
