package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"time"

	"detshmem/internal/frontend"
	"detshmem/internal/protocol"
	"detshmem/internal/workload"
)

// E16 measures the hot-path engineering of the batch pipeline: compiled
// address resolution (protocol.CompileMapper — the Section 4 O(log N)
// address computation precomputed into an O(1) table read) and the
// persistent-worker-pool MPC engine, against the live-resolution sequential
// baseline. Two views:
//
//   - batch: full-N write batches through System.AccessInto (the protocol
//     hot path in isolation), reporting ns/op, MPC rounds, and heap
//     allocations per batch — the steady state must allocate nothing;
//   - frontend: the E15 concurrent-client workload end to end, reporting
//     throughput.
//
// When Options.JSONPath is set the table is also written as JSON (the
// committed BENCH_PR2.json is generated this way), so CI and future PRs can
// diff the numbers mechanically.
func E16(w io.Writer, o Options) error {
	n := 7
	clients, totalOps := 8, 48000
	minDur := 200 * time.Millisecond
	if o.Quick {
		n = 5
		clients, totalOps = 4, 4000
		minDur = 20 * time.Millisecond
	}

	inst, err := newE7Instance(n)
	if err != nil {
		return err
	}
	compiled, err := protocol.CompileMapper(inst.pp, protocol.CompileOptions{})
	if err != nil {
		return err
	}
	variants := []struct {
		name string
		cfg  protocol.Config
	}{
		{"live+seq", protocol.Config{}},
		{"compiled+seq", protocol.Config{Resolver: compiled}},
		{"compiled+par", protocol.Config{Resolver: compiled, Parallel: true}},
	}

	type row struct {
		Config      string  `json:"config"`
		NsPerOp     float64 `json:"ns_per_op"`
		Rounds      int     `json:"rounds,omitempty"`
		AllocsPerOp float64 `json:"allocs_per_op"`
		OpsPerSec   float64 `json:"ops_per_sec,omitempty"`
		Speedup     float64 `json:"speedup_vs_live_seq"`
	}
	report := struct {
		Experiment string   `json:"experiment"`
		Quick      bool     `json:"quick"`
		Degree     int      `json:"degree_n"`
		Modules    uint64   `json:"modules"`
		Vars       uint64   `json:"vars"`
		Host       HostInfo `json:"host"`
		Batch      []row    `json:"batch"`
		Frontend   []row    `json:"frontend"`
	}{
		Experiment: "e16-hot-path",
		Quick:      o.Quick,
		Degree:     n,
		Modules:    inst.s.NumModules,
		Vars:       inst.s.NumVariables,
		Host:       Host(),
	}

	fprintf(w, "E16 Hot path: compiled resolution + persistent-pool engine (q=2, n=%d, N=%d, M=%d)\n",
		n, inst.s.NumModules, inst.s.NumVariables)
	fprintf(w, "full-batch writes (N distinct vars per batch, AccessInto):\n")
	fprintf(w, "%-14s %12s %8s %11s %9s\n", "config", "ns/batch", "rounds", "allocs/bat", "speedup")

	N := int(inst.s.NumModules)
	rng := rand.New(rand.NewSource(o.Seed + 16))
	vars := workload.DistinctRandom(rng, inst.s.NumVariables, N)
	reqs := make([]protocol.Request, N)
	for i, v := range vars {
		reqs[i] = protocol.Request{Var: v, Op: protocol.Write, Value: uint64(i)}
	}

	var baseNs float64
	for _, variant := range variants {
		sys, err := protocol.NewGenericSystem(inst.pp, variant.cfg)
		if err != nil {
			return err
		}
		nsPerOp, allocs, rounds, err := measureBatch(sys, reqs, minDur)
		sys.Close()
		if err != nil {
			return err
		}
		if variant.name == "live+seq" {
			baseNs = nsPerOp
		}
		speed := baseNs / nsPerOp
		fprintf(w, "%-14s %12.0f %8d %11.1f %8.2fx\n", variant.name, nsPerOp, rounds, allocs, speed)
		report.Batch = append(report.Batch, row{
			Config: variant.name, NsPerOp: nsPerOp, Rounds: rounds, AllocsPerOp: allocs, Speedup: speed,
		})
	}

	// Uniform traffic turns nearly every op into a protocol request, so the
	// resolver's per-request saving shows end to end; hot-spot traffic
	// combines most ops away before they reach the memory, so the frontend
	// is dispatcher-bound there and the resolver can only shave the residue.
	fprintf(w, "combining frontend (E15 workload: %d clients, %d ops):\n", clients, totalOps)
	fprintf(w, "%-14s %-9s %12s %11s %12s %9s\n", "config", "workload", "ns/op", "allocs/op", "ops/sec", "speedup")
	for _, wl := range []struct {
		name string
		p    float64
	}{
		{"uniform", 0},
		{"hot-spot", 0.85},
	} {
		baseNs = 0
		for _, variant := range variants {
			sys, err := protocol.NewGenericSystem(inst.pp, variant.cfg)
			if err != nil {
				return err
			}
			fe, err := frontend.New(sys, frontend.Config{})
			if err != nil {
				sys.Close()
				return err
			}
			// Warm-up pass sizes the dispatcher's scratch and the system's
			// machine; the GC fence keeps one variant's garbage from being
			// collected on another variant's clock.
			if err := driveFrontend(fe, inst.s.NumVariables, clients, totalOps/(4*clients), wl.p, o.Seed); err != nil {
				_ = fe.Close() // the drive error is the one worth surfacing
				sys.Close()
				return err
			}
			runtime.GC()
			ops0 := fe.Stats().OpsIn
			var ms0, ms1 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			start := time.Now()
			err = driveFrontend(fe, inst.s.NumVariables, clients, totalOps/clients, wl.p, o.Seed)
			elapsed := time.Since(start)
			runtime.ReadMemStats(&ms1)
			if cerr := fe.Close(); err == nil {
				err = cerr
			}
			sys.Close()
			if err != nil {
				return err
			}
			ops := float64(fe.Stats().OpsIn - ops0)
			nsPerOp := float64(elapsed.Nanoseconds()) / ops
			allocs := float64(ms1.Mallocs-ms0.Mallocs) / ops
			if variant.name == "live+seq" {
				baseNs = nsPerOp
			}
			speed := baseNs / nsPerOp
			fprintf(w, "%-14s %-9s %12.1f %11.2f %12.0f %8.2fx\n",
				variant.name, wl.name, nsPerOp, allocs, ops/elapsed.Seconds(), speed)
			report.Frontend = append(report.Frontend, row{
				Config: variant.name + "/" + wl.name, NsPerOp: nsPerOp, AllocsPerOp: allocs,
				OpsPerSec: ops / elapsed.Seconds(), Speedup: speed,
			})
		}
	}
	fprintf(w, "  (ns and speedups are wall-clock and machine-dependent; allocs/batch of 0\n")
	fprintf(w, "   for the batch path is the PR's steady-state guarantee, pinned by\n")
	fprintf(w, "   TestAccessIntoSteadyStateAllocs. frontend allocs/op include the client\n")
	fprintf(w, "   goroutines' futures, which dominate once the dispatcher itself is\n")
	fprintf(w, "   allocation-free.)\n\n")

	if path := o.jsonPath("BENCH_PR2.json"); path != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			return fmt.Errorf("e16: writing %s: %w", path, err)
		}
		fprintf(w, "  (wrote %s)\n\n", path)
	}
	return nil
}

// measureBatch times repeated AccessInto calls on one reused Result,
// doubling the iteration count until the run is long enough to trust, and
// returns ns/batch, heap allocations/batch, and the batch's MPC rounds.
func measureBatch(sys *protocol.System, reqs []protocol.Request, minDur time.Duration) (nsPerOp, allocsPerOp float64, rounds int, err error) {
	var res protocol.Result
	if err = sys.AccessInto(reqs, &res); err != nil { // warm-up sizes the scratch
		return
	}
	runtime.GC()
	for iters := 1; ; iters *= 2 {
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err = sys.AccessInto(reqs, &res); err != nil {
				return
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms1)
		if elapsed >= minDur || iters >= 1<<22 {
			nsPerOp = float64(elapsed.Nanoseconds()) / float64(iters)
			allocsPerOp = float64(ms1.Mallocs-ms0.Mallocs) / float64(iters)
			rounds = res.Metrics.TotalRounds
			return
		}
	}
}
