// Package experiments regenerates every analytical claim of the paper as a
// measured table (the paper's "evaluation" is its theorems; it has no
// numeric tables or data figures, so each experiment E1–E10 below pairs a
// theorem with the measurement that reproduces its shape). The per-
// experiment index lives in DESIGN.md; paper-vs-measured results are
// recorded in EXPERIMENTS.md.
//
// Experiments print self-contained tables to an io.Writer so that both
// cmd/smembench and the benchmark harness can drive them.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"path/filepath"
	"strings"

	"detshmem/internal/consistency"
	"detshmem/internal/core"
	"detshmem/internal/obs"
	"detshmem/internal/protocol"
	"detshmem/internal/shard"
)

// Options tunes experiment scale.
type Options struct {
	Quick bool  // shrink sweeps for fast runs
	Seed  int64 // randomness seed (workloads only; schemes are deterministic)
	// JSON makes experiments that support machine-readable output (E16, E18)
	// write their results to their per-experiment default path
	// (BENCH_PR2.json for E16, BENCH_PR4.json for E18).
	JSON bool
	// JSONPath overrides the default JSON path. Setting it implies JSON
	// output for every JSON-capable experiment in the run, so select a
	// single experiment when using an explicit path.
	JSONPath string
	// JSONSuffix is inserted before the JSON path's extension (e.g.
	// ".procs4" turns BENCH_PR7.json into BENCH_PR7.procs4.json); the
	// smembench -maxprocs sweep uses it so each GOMAXPROCS pass keeps its
	// own output.
	JSONSuffix string
	// Shards and Pipeline, when Shards > 0, pin E18 to a single sharded
	// configuration (plus its unsharded baseline) instead of the full sweep
	// (smembench -shards / -pipeline).
	Shards   int
	Pipeline bool
	// ShardStats, when non-nil, receives each measured sharded service's
	// per-shard statistics, labelled "<config>/<workload>" (smembench -trace
	// wires its dump here for queue-depth and flush-cause breakdowns).
	ShardStats func(label string, st shard.Stats)
	// Faults, when > 0, pins E19's failed-module sweep to {0, Faults}
	// instead of the full fault-count ladder (smembench -faults).
	Faults int
	// FaultSched selects E19's dynamic fault schedule: "" runs only the
	// static fault sets; "churn" adds cells where one module at a time
	// fails and recovers in the background while clients stream
	// (smembench -faultsched).
	FaultSched string
	// Consistency, when non-nil, receives E20's recorded client traces —
	// per-client streams of value-carrying operations, one Run per measured
	// cell with the service's declared contract (smembench -trace embeds the
	// resulting TraceSet in its dump for cmd/consistencycheck).
	Consistency *consistency.Recorder
	// Transport selects the MPC transport for transport-aware experiments
	// (E22): "" runs every cell (in-process and loopback TCP), "inproc"
	// restricts to the in-process cells, "tcp" to the networked cells
	// (smembench -transport).
	Transport string
	// Servers lists external memserver addresses for the TCP cells; empty
	// means E22 launches its own in-process loopback cluster. With external
	// servers the kill cell expects the harness (cmd/netcluster) to kill
	// one server when the marker line appears (smembench -servers).
	Servers []string
	// Resolver pins E23 to one resolution strategy ("compiled", "computed"
	// or "hybrid") plus the live per-op baseline; "" sweeps all of them
	// (smembench -resolver).
	Resolver string
	// Recorder, when non-nil, is installed on every protocol system built
	// through the shared constructor, capturing one event per MPC round
	// (smembench -trace wires a ring-buffer tracer here).
	Recorder obs.Recorder
	// Observer, when non-nil, receives per-batch protocol metrics from the
	// same systems (smembench wires its cumulative collector here).
	Observer obs.BatchObserver
}

// instrument applies the Options' observability hooks to a protocol config,
// keeping any hooks the experiment set explicitly.
func (o Options) instrument(cfg protocol.Config) protocol.Config {
	if cfg.Recorder == nil {
		cfg.Recorder = o.Recorder
	}
	if cfg.Observer == nil {
		cfg.Observer = o.Observer
	}
	return cfg
}

// jsonPath resolves where a JSON-capable experiment should write its
// machine-readable results: the explicit override, the experiment's default
// when JSON output was requested, or "" for no JSON.
func (o Options) jsonPath(def string) string {
	path := o.JSONPath
	if path == "" {
		if !o.JSON {
			return ""
		}
		path = def
	}
	if o.JSONSuffix != "" {
		if ext := filepath.Ext(path); ext != "" {
			path = strings.TrimSuffix(path, ext) + o.JSONSuffix + ext
		} else {
			path += o.JSONSuffix
		}
	}
	return path
}

// Rng returns the experiment RNG.
func (o Options) Rng() *rand.Rand {
	seed := o.Seed
	if seed == 0 {
		seed = 1993 // SPAA'93
	}
	return rand.New(rand.NewSource(seed))
}

// Degrees returns the extension-degree sweep for q=2 instances.
func (o Options) Degrees() []int {
	if o.Quick {
		return []int{3, 5}
	}
	return []int{3, 5, 7, 9}
}

// Runner is one experiment.
type Runner struct {
	ID    string
	Title string
	Run   func(w io.Writer, o Options) error
}

// All lists the experiments in order.
func All() []Runner {
	return []Runner{
		{"e1", "Fact 1: graph parameters", E1},
		{"e2", "Theorem 2: pairwise variable intersections", E2},
		{"e3", "Theorem 3: Γ² module intersections", E3},
		{"e4", "Theorem 4: expansion |Γ(S)| vs |S|^{2/3}q/2^{1/3}", E4},
		{"e5", "Recurrence (2): live-variable decay envelope", E5},
		{"e6", "Theorems 1/6: Φ and total time scaling", E6},
		{"e7", "Comparative: PP93 vs MV / single-copy / UW", E7},
		{"e8", "Theorem 7: lower-bound floor vs greedy adversary", E8},
		{"e9", "Theorem 8 / §4: address-computation cost", E9},
		{"e10", "Application: PRAM algorithms on the scheme", E10},
		{"e11", "Extension: fault tolerance of the majority rule", E11},
		{"e12", "Extension: protocol over a butterfly network", E12},
		{"e13", "Extension: Θ(N^{1.5-ε}) vs Θ(N²) regime comparison", E13},
		{"e14", "Extension: structural audit of every organization", E14},
		{"e15", "Extension: combining frontend under concurrent clients", E15},
		{"e16", "Hot path: compiled resolution + persistent-pool engine", E16},
		{"e17", "Observability: round trajectory, contention, Theorem 6 shape", E17},
		{"e18", "Scaling out: sharded, pipelined frontend throughput vs S", E18},
		{"e19", "Fault tolerance: throughput and round inflation vs failed modules", E19},
		{"e20", "Consistency auditing: trace-checker cost and sampling-audit overhead", E20},
		{"e21", "Multi-core scaling: lock-free rings and the batch API vs GOMAXPROCS", E21},
		{"e22", "Networked MPC: in-process vs loopback-TCP vs TCP with a killed server", E22},
		{"e23", "Address resolution at large (q, n): compiled vs computed vs hybrid", E23},
		{"e24", "Self-healing repair: churn with repair on/off, wipe-restart drill over TCP", E24},
	}
}

// newSystem builds a PP93 protocol system for q=2^m, degree n, with the
// Options' observability hooks installed.
func newSystem(o Options, m, n int, cfg protocol.Config) (*protocol.System, error) {
	s, err := core.New(m, n)
	if err != nil {
		return nil, err
	}
	idx, err := s.NewIndexer()
	if err != nil {
		return nil, err
	}
	return protocol.NewSystem(s, idx, o.instrument(cfg))
}

// gammaSet computes |Γ(S)| for variables given by indices.
func gammaSet(s *core.Scheme, idx core.Indexer, vars []uint64) int {
	mods := make(map[uint64]struct{})
	var buf []uint64
	for _, v := range vars {
		buf = s.VarModules(buf[:0], idx.Mat(v))
		for _, j := range buf {
			mods[j] = struct{}{}
		}
	}
	return len(mods)
}

func fprintf(w io.Writer, format string, args ...interface{}) {
	fmt.Fprintf(w, format, args...)
}
