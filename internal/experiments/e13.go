package experiments

import (
	"io"
	"math"

	"detshmem/internal/affine"
	"detshmem/internal/protocol"
	"detshmem/internal/workload"
)

// E13 contrasts the paper's M ∈ Θ(N^{1.5−ε}) / O(N^{1/3}log*N) regime with
// the companion M ∈ Θ(N²) / O(√N) regime it cites as prior work
// (reconstructed in internal/affine via parallel classes of AG(2,p)): for
// comparable N, the affine plane stores ~N²/r² variables but pays √N'-shaped
// batch times, while the PGL₂ scheme stores ~N^{1.4} and stays on its
// N'^{1/3} envelope — the memory-capacity/access-time tradeoff the paper's
// introduction frames.
func E13(w io.Writer, o Options) error {
	type row struct {
		name   string
		m      protocol.Mapper
		sweeps []int
	}
	var rows []row

	ppN := 7
	if o.Quick {
		ppN = 5
	}
	sys, err := newSystem(o, 1, ppN, protocol.Config{})
	if err != nil {
		return err
	}
	rows = append(rows, row{"pgl2 (paper)", sys.Mapper, nil})

	// An affine plane with N in the same ballpark as the PGL₂ instance.
	p := uint64(337) // 3·337 = 1011 ≈ 1023
	if !o.Quick {
		p = 5449 // 3·5449 = 16347 ≈ 16383
	}
	plane, err := affine.New(p, 3)
	if err != nil {
		return err
	}
	rows = append(rows, row{"affine (companion)", plane, nil})

	fprintf(w, "E13 Regime comparison: Θ(N^{1.5-ε})@N'^{1/3} vs Θ(N²)@√N' (3 copies each)\n")
	fprintf(w, "%-20s %10s %12s %8s %8s %14s %12s\n",
		"scheme", "N", "M", "N'", "Φ", "Φ/(N')^{1/3}", "Φ/√N'")
	rng := o.Rng()
	for _, r := range rows {
		gsys, err := protocol.NewGenericSystem(r.m, protocol.Config{})
		if err != nil {
			return err
		}
		N := int(r.m.NumModules())
		for np := 64; np <= N; np *= 4 {
			vars := workload.DistinctRandom(rng, r.m.NumVars(), np)
			vals := make([]uint64, len(vars))
			met, err := gsys.WriteBatch(vars, vals)
			if err != nil {
				return err
			}
			fprintf(w, "%-20s %10d %12d %8d %8d %14.3f %12.3f\n",
				r.name, r.m.NumModules(), r.m.NumVars(), np, met.MaxIterations,
				float64(met.MaxIterations)/math.Cbrt(float64(np)),
				float64(met.MaxIterations)/math.Sqrt(float64(np)))
		}
	}
	// Adversarial batches: the regimes separate here. The affine plane's
	// grid sets congest every parallel class simultaneously (its √N' bound
	// is tight on them); the PGL₂ scheme's densest locality sets
	// (Γ-concentrated) still leave quorums room to dodge, so Φ stays small.
	fprintf(w, "\n    adversarial batches\n")
	fprintf(w, "%-20s %8s %8s %14s %12s\n", "scheme", "N'", "Φ", "Φ/(N')^{1/3}", "Φ/√N'")
	npc := 256
	if !o.Quick {
		npc = 4096
	}
	gamma, err := workload.GammaConcentrated(sys.Scheme, sys.Index, 0, npc)
	if err != nil {
		return err
	}
	for _, r := range []struct {
		name  string
		m     protocol.Mapper
		batch []uint64
	}{
		{"pgl2 (paper, Γ-conc)", sys.Mapper, gamma},
		{"affine (grid)", plane, plane.WorstBatch(npc)},
	} {
		gsys, err := protocol.NewGenericSystem(r.m, protocol.Config{})
		if err != nil {
			return err
		}
		vals := make([]uint64, len(r.batch))
		met, err := gsys.WriteBatch(r.batch, vals)
		if err != nil {
			return err
		}
		np := len(r.batch)
		fprintf(w, "%-20s %8d %8d %14.3f %12.3f\n",
			r.name, np, met.MaxIterations,
			float64(met.MaxIterations)/math.Cbrt(float64(np)),
			float64(met.MaxIterations)/math.Sqrt(float64(np)))
	}
	fprintf(w, "  (both schemes use 3 copies and 2-of-3 majorities; the affine plane buys\n")
	fprintf(w, "   ~N²/9 addressable variables at a √N'-shaped access envelope, the PGL₂\n")
	fprintf(w, "   scheme keeps N'^{1/3}log*N' at the paper's smaller memory size)\n\n")
	return nil
}
