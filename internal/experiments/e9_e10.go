package experiments

import (
	"io"
	"time"

	"detshmem/internal/baseline"
	"detshmem/internal/core"
	"detshmem/internal/pgl"
	"detshmem/internal/pram"
	"detshmem/internal/protocol"
	"detshmem/internal/workload"
)

// E9 reproduces Theorem 8 / Section 4: the address computation — variable
// index → representative matrix → (module, offset) of each copy — runs in
// O(log N) time with O(1) working registers. The table reports measured
// nanoseconds per operation across n (time should grow at most
// logarithmically in N) plus the inverse map's cost.
func E9(w io.Writer, o Options) error {
	fprintf(w, "E9  §4 addressing: ns/op for index→matrix (Mat), matrix→(module,offset)\n")
	fprintf(w, "    (CopyLocation, all q+1 copies) and the inverse Index (q=2)\n")
	fprintf(w, "%3s %12s %12s %14s %12s\n", "n", "N", "Mat ns", "CopyLoc ns", "Index ns")
	degrees := []int{3, 5, 7, 9, 11}
	if o.Quick {
		degrees = []int{3, 5}
	}
	for _, n := range degrees {
		s, err := core.New(1, n)
		if err != nil {
			return err
		}
		ex, err := core.NewExplicitIndexer(s)
		if err != nil {
			return err
		}
		rng := o.Rng()
		const iters = 20000
		ids := make([]uint64, iters)
		for i := range ids {
			ids[i] = uint64(rng.Int63n(int64(ex.M())))
		}
		start := time.Now()
		for _, i := range ids {
			_ = ex.Mat(i)
		}
		matNS := float64(time.Since(start).Nanoseconds()) / iters

		mats := make([]coreMat, iters)
		for i, id := range ids {
			mats[i].m = ex.Mat(id)
		}
		start = time.Now()
		for i := range mats {
			for c := 0; c < s.Copies; c++ {
				mod, off := s.CopyLocation(mats[i].m, c)
				mats[i].sink += mod + uint64(off)
			}
		}
		locNS := float64(time.Since(start).Nanoseconds()) / iters

		start = time.Now()
		for i := range mats {
			id, ok := ex.Index(mats[i].m)
			if !ok || id != ids[i] {
				fprintf(w, "  !! inverse failed at %d\n", ids[i])
			}
		}
		invNS := float64(time.Since(start).Nanoseconds()) / iters

		fprintf(w, "%3d %12d %12.0f %14.0f %12.0f\n", n, s.NumModules, matNS, locNS, invNS)
	}
	fprintf(w, "  (per-processor state is O(1) words — field tables are shared, read-only\n")
	fprintf(w, "   precomputation of the field arithmetic itself; times grow sublinearly in N,\n")
	fprintf(w, "   consistent with the O(log N) operation-count bound)\n\n")
	return nil
}

type coreMat struct {
	m    pgl.Mat
	sink uint64
}

// E10 runs the motivating application: PRAM algorithms (parallel prefix sum
// and list ranking) whose shared memory is served by each organization, and
// reports PRAM steps and total MPC rounds.
func E10(w io.Writer, o Options) error {
	n := 5
	arr := 512
	if o.Quick {
		arr = 128
	}
	s, err := core.New(1, n)
	if err != nil {
		return err
	}
	idx, err := s.NewIndexer()
	if err != nil {
		return err
	}
	N, M := s.NumModules, s.NumVariables
	si, err := baseline.NewSingleCopy(N, M, baseline.PlaceInterleaved, 0)
	if err != nil {
		return err
	}
	mv, err := baseline.NewMV(N, M, 2)
	if err != nil {
		return err
	}
	mappers := []protocol.Mapper{protocol.NewCoreMapper(s, idx), mv, si}

	fprintf(w, "E10 PRAM algorithms over each organization (q=2, n=%d, N=%d, array=%d)\n", n, N, arr)
	fprintf(w, "%-20s %14s %14s %14s %14s\n",
		"scheme", "prefix steps", "prefix rounds", "rank steps", "rank rounds")
	for _, m := range mappers {
		sys, err := protocol.NewGenericSystem(m, protocol.Config{})
		if err != nil {
			return err
		}
		p := pram.New(sys)
		addrs := make([]uint64, arr)
		vals := make([]uint64, arr)
		for i := range addrs {
			addrs[i] = uint64(i)
			vals[i] = 1
		}
		if err := p.Write(addrs, vals); err != nil {
			return err
		}
		p.Steps, p.Rounds = 0, 0
		if _, err := p.PrefixSum(0, arr); err != nil {
			return err
		}
		psSteps, psRounds := p.Steps, p.Rounds

		// Verify the prefix sums while we are here.
		got, err := p.Read(addrs)
		if err != nil {
			return err
		}
		for i, v := range got {
			if v != uint64(i+1) {
				fprintf(w, "  !! prefix sum wrong at %d (%d)\n", i, v)
			}
		}

		// List ranking over a scrambled list.
		rng := o.Rng()
		order := rng.Perm(arr)
		next := make([]uint64, arr)
		for k := 0; k < arr-1; k++ {
			next[order[k]] = uint64(order[k+1])
		}
		next[order[arr-1]] = uint64(order[arr-1])
		base := uint64(2 * arr)
		laddr := make([]uint64, arr)
		for i := range laddr {
			laddr[i] = base + uint64(i)
		}
		if err := p.Write(laddr, next); err != nil {
			return err
		}
		p.Steps, p.Rounds = 0, 0
		if _, err := p.ListRank(base, base+uint64(arr), arr); err != nil {
			return err
		}
		fprintf(w, "%-20s %14d %14d %14d %14d\n", m.Name(), psSteps, psRounds, p.Steps, p.Rounds)
	}
	fprintf(w, "  (same algorithm, same steps; the organization determines rounds per step —\n")
	fprintf(w, "   prefix-sum/list-rank batches are near-permutations, so single-copy looks\n")
	fprintf(w, "   good here; the E7 adversarial rows are where determinism pays)\n\n")
	return nil
}

// Sanity workload import (keeps the package honest about what E-experiments
// consume; used by benches).
var _ = workload.Stride
