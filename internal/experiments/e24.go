package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"os"
	"runtime"
	"sync"
	"time"

	"detshmem/internal/consistency"
	"detshmem/internal/frontend"
	"detshmem/internal/mpc"
	"detshmem/internal/netmpc"
	"detshmem/internal/protocol"
	"detshmem/internal/shard"
)

// e24DrillMarker is the stdout line E24's TCP drill prints when it is ready
// for an external harness (cmd/netcluster) to SIGKILL one memserver and
// restart it — wiped, fresh store generation — on the same address. The
// harness matches it verbatim; keep the two in sync.
const e24DrillMarker = "e24: repair drill armed -- kill one memserver now and restart it wiped on the same address"

// e24Cadence is the churn cadence: how long each module stays failed before
// it is re-admitted through the repair queue.
const e24Cadence = 100 * time.Microsecond

// E24 measures the self-healing repair subsystem (PR 10) under module
// churn. Four cells:
//
//	baseline    no faults — the rounds-per-op reference;
//	repair-on   continuous Fail → RecoverPending churn at a 100µs cadence.
//	            Every re-admitted module is rebuilt by the repair sweep
//	            (pumped by batches and the dispatcher's idle loop) before it
//	            counts toward read quorums again. Gates: zero stranded
//	            operations, the backlog fully drained after the churn stops,
//	            and normal-traffic round inflation over the baseline within
//	            1.10×;
//	repair-off  the counterfactual: the same workload while failed modules
//	            accumulate and nothing repairs them. The observed stranding
//	            is gated against the exact Γ-map bound (the fraction of
//	            workload variables whose live copies fell below their
//	            majority, plus 6σ sampling noise and slack), with the
//	            independent-fault binomial reference reported next to it;
//	tcp-drill   (transport tcp) the wipe-restart drill over a loopback
//	            memserver cluster: committed values are written, one server
//	            is killed and restarted with an empty store, the
//	            generation-token handshake routes its range through the
//	            repair queue instead of silently re-admitting zeroed cells,
//	            the sweep rebuilds every lost copy over the wire, and every
//	            committed value must read back exactly.
//
// Every cell's client trace is recorded and certified with the black-box
// consistency checker. JSON output goes to BENCH_PR10.json.
func E24(w io.Writer, o Options) error {
	n, clients, opsPer := 7, 8, 600
	if o.Quick {
		n, clients, opsPer = 5, 4, 250
	}
	const nServers = 4
	inst, err := newE7Instance(n)
	if err != nil {
		return err
	}
	resolver, err := protocol.CompileMapper(inst.pp, protocol.CompileOptions{})
	if err != nil {
		return err
	}
	nVars := 48
	if !o.Quick {
		nVars = 64
	}
	vars := make([]uint64, nVars)
	for i := range vars {
		vars[i] = uint64(i*7+3) % inst.s.NumVariables
	}
	rec := o.Consistency
	if rec == nil {
		rec = consistency.NewRecorder()
	}
	rep := e24Report{
		Experiment: "e24-self-healing-repair",
		Quick:      o.Quick,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Host:       Host(),
		Degree:     n,
		Servers:    nServers,
		Clients:    clients,
		CadenceUS:  float64(e24Cadence) / float64(time.Microsecond),
		External:   len(o.Servers) > 0,
	}

	fprintf(w, "E24 Self-healing repair: q=2 n=%d (%d modules), %d clients, churn cadence %v\n",
		n, inst.s.NumModules, clients, e24Cadence)
	fprintf(w, "%-12s %10s %9s %9s %10s %10s %s\n",
		"cell", "ops", "stranded", "blocked", "rounds/op", "strandrate", "verdict")

	runInproc := o.Transport == "" || o.Transport == "inproc"
	runTCP := o.Transport == "" || o.Transport == "tcp"

	if runInproc {
		base, err := e24BaselineCell(w, o, rec, inst, resolver, clients, opsPer, vars)
		if err != nil {
			return err
		}
		rep.Rows = append(rep.Rows, base)

		on, err := e24ChurnCell(w, o, rec, inst, resolver, clients, opsPer, vars, base.RoundsPerOp)
		if err != nil {
			return err
		}
		rep.Rows = append(rep.Rows, on)

		off, err := e24AccumulateCell(w, o, rec, inst, resolver, clients, opsPer, vars)
		if err != nil {
			return err
		}
		rep.Rows = append(rep.Rows, off)
	}

	if runTCP {
		row, err := e24DrillCell(w, o, rec, inst, resolver, nServers, vars)
		if err != nil {
			return err
		}
		rep.Rows = append(rep.Rows, row)
	}
	fprintf(w, "\n")

	if path := o.jsonPath("BENCH_PR10.json"); path != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			return fmt.Errorf("e24: writing %s: %w", path, err)
		}
		fprintf(w, "  (wrote %s)\n\n", path)
	}
	return nil
}

type e24Report struct {
	Experiment string   `json:"experiment"`
	Quick      bool     `json:"quick"`
	GoMaxProcs int      `json:"gomaxprocs"`
	Host       HostInfo `json:"host"`
	Degree     int      `json:"degree"`
	Servers    int      `json:"servers"`
	Clients    int      `json:"clients"`
	CadenceUS  float64  `json:"churn_cadence_us"`
	External   bool     `json:"external_servers"`
	Rows       []e24Row `json:"rows"`
}

type e24Row struct {
	Cell      string  `json:"cell"`
	Ops       int64   `json:"ops"`
	Stranded  int64   `json:"stranded"`
	Blocked   int64   `json:"blocked"`
	NsPerOp   float64 `json:"ns_per_op"`
	OpsPerSec float64 `json:"ops_per_sec"`
	// RoundsPerOp is normal batch traffic only (repair rounds are kept out
	// of the protocol's batch books); Inflation is this cell's RoundsPerOp
	// over the baseline cell's.
	RoundsPerOp float64 `json:"rounds_per_op,omitempty"`
	Inflation   float64 `json:"round_inflation,omitempty"`
	// Repair-side accounting, from the obs collectors.
	RepairRounds   int64 `json:"repair_rounds,omitempty"`
	RepairedMods   int64 `json:"repaired_modules,omitempty"`
	BacklogDrained bool  `json:"backlog_drained,omitempty"`
	// Stranding gate (repair-off cell): observed vs the exact Γ-map rate.
	StrandRate  float64              `json:"strand_rate"`
	ExactRate   float64              `json:"exact_rate,omitempty"`
	BinomRate   float64              `json:"binom_rate,omitempty"`
	Bound       float64              `json:"bound,omitempty"`
	WithinBound bool                 `json:"within_bound"`
	FailedMods  int                  `json:"failed_modules,omitempty"`
	Certified   bool                 `json:"certified"`
	ServerStats []netmpc.ServerStats `json:"server_stats,omitempty"`
}

// e24Service builds the one-shard pipelined service every in-process cell
// uses, with per-shard collectors on (repair accounting flows through them).
func e24Service(o Options, inst *e7Instance, resolver *protocol.CompiledResolver, fs *mpc.FaultSet) (*shard.Service, error) {
	pcfg := o.instrument(protocol.Config{Resolver: resolver})
	if fs != nil {
		pcfg.NewMachine = func(mcfg mpc.Config) (protocol.Machine, error) {
			return mpc.NewFailingShared(mcfg, fs)
		}
		pcfg.FaultAttempts = 64
		pcfg.MaxIterationsPerPhase = 2048
	}
	return shard.New(inst.pp, shard.Config{
		Shards:   1,
		Pipeline: true,
		Observe:  true,
		Protocol: pcfg,
	})
}

// e24Drive is e22's windowed async driver extended for the repair regime:
// ErrQuorumUnreachable means stranded (live copies below quorum — with
// repair on this must never happen), while a plain incomplete verdict means
// blocked (the quorum was only unreachable because re-admitted modules were
// still uncertified — the op failed cleanly and nothing was lost). Both are
// recorded as failed operations so the consistency checker drops them.
func e24Drive(svc *shard.Service, rr *consistency.RunRecorder, clients, opsPerClient int, vars []uint64, seed int64) (total, stranded, blocked int64, err error) {
	var wg sync.WaitGroup
	var mu sync.Mutex
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cr := rr.Client(c)
			rng := rand.New(rand.NewSource(seed + int64(c)*7919))
			type slot struct {
				fut   *frontend.Future
				write bool
				v     uint64
				val   uint64
			}
			pending := make([]slot, 0, e22Window)
			var done, lost, held int64
			drain := func() bool {
				for _, s := range pending {
					got, werr := s.fut.Wait()
					done++
					if werr != nil {
						if errors.Is(werr, protocol.ErrQuorumUnreachable) {
							lost++
						} else if errors.Is(werr, protocol.ErrIncomplete) {
							held++
						} else {
							errs <- werr
							return false
						}
						cr.Record(s.write, s.v, s.val, true)
						continue
					}
					if s.write {
						cr.Record(true, s.v, s.val, false)
					} else {
						cr.Record(false, s.v, got, false)
					}
				}
				pending = pending[:0]
				return true
			}
			flush := func() {
				mu.Lock()
				total += done
				stranded += lost
				blocked += held
				mu.Unlock()
			}
			for i := 0; i < opsPerClient; i++ {
				v := vars[rng.Intn(len(vars))]
				var s slot
				var serr error
				if rng.Intn(100) < 40 {
					s = slot{write: true, v: v, val: cr.WriteValue()}
					s.fut, serr = svc.WriteAsync(v, s.val)
				} else {
					s = slot{v: v}
					s.fut, serr = svc.ReadAsync(v)
				}
				if serr != nil {
					errs <- serr
					flush()
					return
				}
				pending = append(pending, s)
				if len(pending) == e22Window && !drain() {
					flush()
					return
				}
			}
			drain()
			flush()
		}(c)
	}
	wg.Wait()
	select {
	case err = <-errs:
	default:
	}
	return total, stranded, blocked, err
}

// e24DrainRepair drives light traffic until the fault set's repair backlog
// is empty: batches pump a repair step each, and Flush wakes any parked
// dispatcher so its idle loop keeps sweeping.
func e24DrainRepair(svc *shard.Service, fs *mpc.FaultSet, probe uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for fs.RepairCount() > 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("e24: repair backlog stuck at %d", fs.RepairCount())
		}
		if _, err := svc.Read(probe); err != nil && !errors.Is(err, protocol.ErrIncomplete) {
			return err
		}
		if err := svc.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// e24RepairCounters sums the per-shard collectors' repair accounting.
func e24RepairCounters(svc *shard.Service) (rounds, certified int64) {
	for i := 0; i < svc.Shards(); i++ {
		snap := svc.Collector(i).Snapshot()
		rounds += snap["repair_rounds_total"]
		certified += snap["repair_certified_total"]
	}
	return rounds, certified
}

// e24BaselineCell is the no-fault reference: its rounds-per-op anchors the
// repair-on cell's inflation gate.
func e24BaselineCell(w io.Writer, o Options, rec *consistency.Recorder, inst *e7Instance, resolver *protocol.CompiledResolver, clients, opsPer int, vars []uint64) (e24Row, error) {
	svc, err := e24Service(o, inst, resolver, nil)
	if err != nil {
		return e24Row{}, err
	}
	rr := rec.Run("e24/baseline", consistency.ContractTotalOrder, clients)
	start := time.Now()
	ops, stranded, blocked, err := e24Drive(svc, rr, clients, opsPer, vars, o.Seed+1001)
	if ferr := svc.Flush(); err == nil {
		err = ferr
	}
	if err != nil {
		svc.Close()
		return e24Row{}, err
	}
	st := svc.Stats()
	if cerr := svc.Close(); cerr != nil {
		return e24Row{}, cerr
	}
	elapsed := time.Since(start)
	if stranded+blocked > 0 {
		return e24Row{}, fmt.Errorf("e24: baseline cell failed %d ops", stranded+blocked)
	}
	row := e24Row{
		Cell:        "baseline",
		Ops:         ops,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(ops),
		OpsPerSec:   float64(ops) / elapsed.Seconds(),
		RoundsPerOp: float64(st.Total.TotalRounds) / float64(st.Total.OpsIn),
		Inflation:   1,
		WithinBound: true,
	}
	if row.Certified, err = e22Certify(rec, "e24/baseline"); err != nil {
		return row, err
	}
	fprintf(w, "%-12s %10d %9d %9d %10.2f %10.4f %s\n",
		row.Cell, row.Ops, int64(0), int64(0), row.RoundsPerOp, 0.0, "certified")
	return row, nil
}

// e24ChurnCell is the tentpole cell: continuous Fail → RecoverPending churn
// with the repair subsystem rebuilding every re-admitted module before it
// rejoins read quorums. Nothing may strand, the backlog must drain once the
// storm stops, and normal traffic must not pay more than 10% extra rounds.
func e24ChurnCell(w io.Writer, o Options, rec *consistency.Recorder, inst *e7Instance, resolver *protocol.CompiledResolver, clients, opsPer int, vars []uint64, baseRounds float64) (e24Row, error) {
	fs := mpc.NewFaultSet()
	svc, err := e24Service(o, inst, resolver, fs)
	if err != nil {
		return e24Row{}, err
	}
	closed := false
	defer func() {
		if !closed {
			svc.Close()
		}
	}()

	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		m := uint64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			fs.Fail(m)
			time.Sleep(e24Cadence)
			fs.RecoverPending(m)
			m = (m + 13) % inst.s.NumModules
		}
	}()

	rr := rec.Run("e24/repair-on", consistency.ContractTotalOrder, clients)
	start := time.Now()
	ops, stranded, blocked, err := e24Drive(svc, rr, clients, opsPer, vars, o.Seed+1002)
	close(stop)
	churn.Wait()
	if ferr := svc.Flush(); err == nil {
		err = ferr
	}
	if err != nil {
		return e24Row{}, err
	}
	// Storm over: re-admit anything still failed and drain the backlog.
	for _, m := range fs.Modules() {
		fs.RecoverPending(m)
	}
	if err := e24DrainRepair(svc, fs, vars[0], 60*time.Second); err != nil {
		return e24Row{}, err
	}
	st := svc.Stats()
	repairRounds, repairedMods := e24RepairCounters(svc)
	if cerr := svc.Close(); cerr != nil {
		return e24Row{}, cerr
	}
	closed = true
	elapsed := time.Since(start)

	row := e24Row{
		Cell:           "repair-on",
		Ops:            ops,
		Stranded:       stranded,
		Blocked:        blocked,
		NsPerOp:        float64(elapsed.Nanoseconds()) / float64(ops),
		OpsPerSec:      float64(ops) / elapsed.Seconds(),
		RoundsPerOp:    float64(st.Total.TotalRounds) / float64(st.Total.OpsIn),
		RepairRounds:   repairRounds,
		RepairedMods:   repairedMods,
		BacklogDrained: true,
		StrandRate:     float64(stranded) / float64(ops),
	}
	row.Inflation = row.RoundsPerOp / baseRounds
	row.WithinBound = stranded == 0 && row.Inflation <= 1.10
	if row.Certified, err = e22Certify(rec, "e24/repair-on"); err != nil {
		return row, err
	}
	verdict := fmt.Sprintf("certified, repaired %d modules in %d rounds, inflation %.3fx", repairedMods, repairRounds, row.Inflation)
	if stranded > 0 {
		verdict = fmt.Sprintf("STRANDED %d OPS WITH REPAIR ON", stranded)
	} else if row.Inflation > 1.10 {
		verdict = fmt.Sprintf("ROUND INFLATION %.3fx ABOVE 1.10x", row.Inflation)
	}
	fprintf(w, "%-12s %10d %9d %9d %10.2f %10.4f %s\n",
		row.Cell, row.Ops, stranded, blocked, row.RoundsPerOp, row.StrandRate, verdict)
	if !row.WithinBound {
		return row, fmt.Errorf("e24: repair-on cell out of bounds: %s", verdict)
	}
	return row, nil
}

// e24AccumulateCell is the counterfactual: failures accumulate mid-run and
// nothing repairs them, so stranding converges to the exact Γ-map rate —
// the regime PR 10 exists to eliminate.
func e24AccumulateCell(w io.Writer, o Options, rec *consistency.Recorder, inst *e7Instance, resolver *protocol.CompiledResolver, clients, opsPer int, vars []uint64) (e24Row, error) {
	fs := mpc.NewFaultSet()
	svc, err := e24Service(o, inst, resolver, fs)
	if err != nil {
		return e24Row{}, err
	}
	closed := false
	defer func() {
		if !closed {
			svc.Close()
		}
	}()

	rr := rec.Run("e24/repair-off", consistency.ContractTotalOrder, clients)
	start := time.Now()
	ops1, stranded1, blocked1, err := e24Drive(svc, rr, clients, opsPer/2, vars, o.Seed+1003)
	if err != nil {
		return e24Row{}, err
	}
	if err := svc.Flush(); err != nil {
		return e24Row{}, err
	}
	if stranded1+blocked1 > 0 {
		return e24Row{}, fmt.Errorf("e24: repair-off cell failed %d ops before the faults", stranded1+blocked1)
	}

	// Kill a majority of the first few workload variables' copies and leave
	// them dead: those variables are now provably stranded, and the exact
	// rate follows from the fault set through the Γ map.
	var buf []uint64
	nVictims := len(vars) / 8
	for _, v := range vars[:nVictims] {
		buf = inst.s.VarModules(buf[:0], inst.idx.Mat(v))
		dead := inst.s.Copies - inst.s.Majority + 1
		for _, m := range buf[:dead] {
			fs.Fail(m)
		}
	}
	failedMods := fs.Count()
	exact := e24ExactStrandRate(inst, fs, vars)
	binom := e22BinomRate(inst.s.Copies, inst.s.Majority, float64(failedMods)/float64(inst.s.NumModules))

	ops2, stranded2, blocked2, err := e24Drive(svc, rr, clients, opsPer-opsPer/2, vars, o.Seed+1004)
	if err != nil {
		return e24Row{}, err
	}
	if ferr := svc.Flush(); ferr != nil {
		return e24Row{}, ferr
	}
	st := svc.Stats()
	if cerr := svc.Close(); cerr != nil {
		return e24Row{}, cerr
	}
	closed = true
	elapsed := time.Since(start)

	rate := float64(stranded2) / float64(ops2)
	sigma := math.Sqrt(exact * (1 - exact) / float64(ops2))
	bound := exact + 6*sigma + 0.03
	row := e24Row{
		Cell:        "repair-off",
		Ops:         ops1 + ops2,
		Stranded:    stranded2,
		Blocked:     blocked1 + blocked2,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(ops1+ops2),
		OpsPerSec:   float64(ops1+ops2) / elapsed.Seconds(),
		RoundsPerOp: float64(st.Total.TotalRounds) / float64(st.Total.OpsIn),
		StrandRate:  rate,
		ExactRate:   exact,
		BinomRate:   binom,
		Bound:       bound,
		WithinBound: rate <= bound && exact > 0,
		FailedMods:  failedMods,
	}
	if row.Certified, err = e22Certify(rec, "e24/repair-off"); err != nil {
		return row, err
	}
	verdict := fmt.Sprintf("certified, %d/%d stranded, rate %.4f <= bound %.4f (exact %.4f, binom %.4f)",
		stranded2, ops2, rate, bound, exact, binom)
	if rate > bound {
		verdict = fmt.Sprintf("STRANDING ABOVE BOUND: %.4f > %.4f", rate, bound)
	}
	fprintf(w, "%-12s %10d %9d %9d %10.2f %10.4f %s\n",
		row.Cell, row.Ops, stranded2, row.Blocked, row.RoundsPerOp, rate, verdict)
	if rate > bound {
		return row, fmt.Errorf("e24: repair-off stranding %.4f exceeds bound %.4f", rate, bound)
	}
	if exact == 0 {
		return row, fmt.Errorf("e24: repair-off cell stranded no variables — the counterfactual shows nothing")
	}
	return row, nil
}

// e24ExactStrandRate is e22's exact Γ-map rate over a raw fault set: the
// fraction of workload variables whose live copies are below the majority.
func e24ExactStrandRate(inst *e7Instance, fs *mpc.FaultSet, vars []uint64) float64 {
	strandedVars := 0
	var buf []uint64
	for _, v := range vars {
		buf = inst.s.VarModules(buf[:0], inst.idx.Mat(v))
		live := 0
		for _, m := range buf {
			if !fs.Failed(m) {
				live++
			}
		}
		if live < inst.s.Majority {
			strandedVars++
		}
	}
	return float64(strandedVars) / float64(len(vars))
}

// e24DrillCell runs the wipe-restart drill over TCP: write committed values,
// kill one memserver, restart it with an empty store on the same address,
// and prove the generation-token handshake routes the range through repair —
// the backlog appears, drains over the wire, and every committed value reads
// back exactly. With external servers the kill and restart are the
// harness's job (cmd/netcluster), signalled by the marker line.
func e24DrillCell(w io.Writer, o Options, rec *consistency.Recorder, inst *e7Instance, resolver *protocol.CompiledResolver, nServers int, vars []uint64) (e24Row, error) {
	addrs := o.Servers
	var local []*netmpc.Server
	var err error
	if len(addrs) == 0 {
		local, addrs, err = e22Cluster(inst, nServers)
		if err != nil {
			return e24Row{}, err
		}
		defer func() {
			for _, sv := range local {
				sv.Close()
			}
		}()
	}
	k := len(addrs)
	const victim = 1

	tr, err := netmpc.Dial(netmpc.Config{
		Servers:      addrs,
		Q:            inst.s.Q,
		N:            uint32(inst.s.Deg),
		Modules:      int64(inst.s.NumModules),
		AddrSpace:    inst.s.NumModules * uint64(inst.s.ModuleSize),
		StoreID:      3,
		RoundTimeout: 3 * time.Second,
		ReconnectMin: 10 * time.Millisecond,
		ReconnectMax: 200 * time.Millisecond,
	})
	if err != nil {
		return e24Row{}, err
	}
	defer tr.Close()
	svc, err := shard.New(inst.pp, shard.Config{
		Shards:    1,
		Pipeline:  true,
		Observe:   true,
		Protocol:  o.instrument(protocol.Config{Resolver: resolver}),
		Transport: func(int) protocol.Transport { return tr },
	})
	if err != nil {
		return e24Row{}, err
	}
	closed := false
	defer func() {
		if !closed {
			svc.Close()
		}
	}()
	fs := tr.FaultSet()

	// Drill variables: exactly one copy on the victim server, so the wipe
	// costs each variable one copy — which the sweep must rebuild over the
	// wire — while an intact majority survives on the other servers. The Γ
	// map can cluster a variable's copies into one server's contiguous
	// range at some (q, n), so scan the whole variable space rather than
	// just the workload set.
	var drill []uint64
	copies := inst.pp.Copies()
	for v := uint64(0); v < inst.s.NumVariables && len(drill) < 32; v++ {
		onVictim := 0
		for c := 0; c < copies; c++ {
			mod, _ := inst.pp.CopyAddr(v, c)
			if netmpc.ServerFor(int64(mod), int64(inst.s.NumModules), k) == victim {
				onVictim++
			}
		}
		if onVictim == 1 {
			drill = append(drill, v)
		}
	}
	if len(drill) < 4 {
		return e24Row{}, fmt.Errorf("e24: only %d variables have exactly one copy on server %d of %d", len(drill), victim, k)
	}

	rr := rec.Run("e24/tcp-drill", consistency.ContractTotalOrder, 1)
	cr := rr.Client(0)
	model := make(map[uint64]uint64, len(drill))
	start := time.Now()
	for _, v := range drill {
		val := cr.WriteValue()
		if err := svc.Write(v, val); err != nil {
			return e24Row{}, fmt.Errorf("e24: model write %d: %w", v, err)
		}
		cr.Record(true, v, val, false)
		model[v] = val
	}
	if err := svc.Flush(); err != nil {
		return e24Row{}, err
	}

	// Kill and wiped-restart the victim. In-process clusters do it
	// themselves; external clusters print the marker for the harness.
	if len(local) > 0 {
		local[victim].Close()
	} else {
		fprintf(w, "%s\n", e24DrillMarker)
	}
	deadline := time.Now().Add(60 * time.Second)
	for fs.Count() == 0 {
		if time.Now().After(deadline) {
			return e24Row{}, fmt.Errorf("e24: no server death observed within 60s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(local) > 0 {
		ln, err := net.Listen("tcp", addrs[victim])
		if err != nil {
			return e24Row{}, fmt.Errorf("e24: rebinding %s: %w", addrs[victim], err)
		}
		lo, hi := netmpc.Range(victim, k, int64(inst.s.NumModules))
		sv := netmpc.NewServer(netmpc.ServerConfig{
			Q:         inst.s.Q,
			N:         uint32(inst.s.Deg),
			Modules:   inst.s.NumModules,
			AddrSpace: inst.s.NumModules * uint64(inst.s.ModuleSize),
			RangeLo:   uint64(lo),
			RangeHi:   uint64(hi),
		})
		go sv.Serve(ln)
		local[victim] = sv
	}
	for fs.Count() > 0 {
		if time.Now().After(deadline) {
			return e24Row{}, fmt.Errorf("e24: wiped server did not reconnect within 60s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The reborn store announced a new generation, so its whole range must
	// be queued for repair — this is the line the old silent re-admission
	// bug lived on.
	if fs.RepairCount() == 0 {
		return e24Row{}, fmt.Errorf("e24: wiped restart was re-admitted without entering repair")
	}
	backlog := fs.RepairCount()
	if err := e24DrainRepair(svc, fs, drill[0], 120*time.Second); err != nil {
		return e24Row{}, err
	}

	// Every committed value must read back exactly — no zero-timestamp
	// quorum may have won while the range was under repair.
	wrong := 0
	for _, v := range drill {
		got, err := svc.Read(v)
		if err != nil {
			return e24Row{}, fmt.Errorf("e24: post-repair read %d: %w", v, err)
		}
		cr.Record(false, v, got, false)
		if got != model[v] {
			wrong++
			fprintf(w, "e24: variable %d read %d after repair, want %d\n", v, got, model[v])
		}
	}
	repairRounds, repairedMods := e24RepairCounters(svc)
	if cerr := svc.Close(); cerr != nil {
		return e24Row{}, cerr
	}
	closed = true
	elapsed := time.Since(start)

	ops := int64(2 * len(drill))
	row := e24Row{
		Cell:           "tcp-drill",
		Ops:            ops,
		NsPerOp:        float64(elapsed.Nanoseconds()) / float64(ops),
		OpsPerSec:      float64(ops) / elapsed.Seconds(),
		RepairRounds:   repairRounds,
		RepairedMods:   repairedMods,
		BacklogDrained: true,
		WithinBound:    wrong == 0,
		FailedMods:     backlog,
		ServerStats:    tr.Stats(),
	}
	var err2 error
	if row.Certified, err2 = e22Certify(rec, "e24/tcp-drill"); err2 != nil {
		return row, err2
	}
	verdict := fmt.Sprintf("certified, %d modules rebuilt over the wire in %d rounds, %d values intact",
		repairedMods, repairRounds, len(drill))
	if wrong > 0 {
		verdict = fmt.Sprintf("%d OF %d VALUES LOST ACROSS THE WIPE", wrong, len(drill))
	}
	fprintf(w, "%-12s %10d %9d %9d %10s %10.4f %s\n",
		row.Cell, row.Ops, int64(0), int64(0), "-", 0.0, verdict)
	if wrong > 0 {
		return row, fmt.Errorf("e24: %d committed values lost across the wipe-restart", wrong)
	}
	return row, nil
}
