package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"detshmem/internal/core"
	"detshmem/internal/protocol"
	"detshmem/internal/workload"
)

// E23 measures the address-resolution frontier the ResolverStrategy knob
// exposes, across the large-(q, n) ladder the batched Section 4 kernels
// open: for each (q, n) cell every strategy resolves the same Zipf stream of
// variables into full copy rows, against the live per-op CopyAddr baseline.
//
//   - per-op: scalar CopyAddr per copy — the pre-batching hot path;
//   - computed: the vectorized bulk kernels (protocol.BulkMapper), zero
//     resident table;
//   - compiled: the eager table (skipped, with its hypothetical size
//     reported, when entries = M·(q+1) exceed the lazy threshold — exactly
//     the regime the computed strategy exists for);
//   - hybrid: computed resolution behind the bounded hot-coset cache.
//
// Cold (first-pass) and steady-state costs are reported separately: cold is
// where the hybrid cache fills and where a compiled table pays its build;
// steady state is what a long-running service sees. The committed
// BENCH_PR9.json records host metadata plus resident bytes per strategy, so
// the table-memory vs recompute-cost vs cache-hit-rate tradeoff is a
// measured table rather than a design argument.
func E23(w io.Writer, o Options) error {
	type cell struct {
		m, n int
		big  bool // skip the O(56M)-byte enumerated indexer: build compact directly
	}
	cells := []cell{{1, 7, false}, {1, 9, true}, {2, 4, false}, {2, 5, true}, {3, 3, false}}
	ops := 200_000
	if o.Quick {
		cells = []cell{{1, 5, false}, {2, 3, false}}
		ops = 20_000
	}
	strategies := []string{"compiled", "computed", "hybrid"}
	if o.Resolver != "" {
		ok := false
		for _, s := range strategies {
			if s == o.Resolver {
				ok = true
			}
		}
		if !ok {
			return fmt.Errorf("e23: unknown resolver strategy %q (want compiled, computed or hybrid)", o.Resolver)
		}
		strategies = []string{o.Resolver}
	}

	type row struct {
		Cell          string  `json:"cell"`
		Q             uint32  `json:"q"`
		N             int     `json:"n"`
		Vars          uint64  `json:"vars"`
		Entries       uint64  `json:"entries"`
		Strategy      string  `json:"strategy"`
		Skipped       bool    `json:"skipped,omitempty"`
		BuildMs       float64 `json:"build_ms,omitempty"`
		IndexerBytes  uint64  `json:"indexer_bytes"`
		ResidentBytes uint64  `json:"resident_bytes"`
		ColdNsPerVar  float64 `json:"cold_ns_per_var,omitempty"`
		NsPerVar      float64 `json:"ns_per_var,omitempty"`
		VarsPerSec    float64 `json:"vars_per_sec,omitempty"`
		Speedup       float64 `json:"speedup_vs_per_op,omitempty"`
		HitRate       float64 `json:"hit_rate,omitempty"`
	}
	report := struct {
		Experiment string   `json:"experiment"`
		Quick      bool     `json:"quick"`
		Host       HostInfo `json:"host"`
		Ops        int      `json:"ops_per_pass"`
		ZipfS      float64  `json:"zipf_s"`
		Rows       []row    `json:"rows"`
	}{Experiment: "e23-resolver-strategies", Quick: o.Quick, Host: Host(), Ops: ops, ZipfS: 1.1}

	fprintf(w, "E23 Address resolution at large (q, n): strategy frontier (%d-var Zipf stream per cell, s=1.1)\n", ops)
	fprintf(w, "%-10s %10s %11s %-9s %9s %12s %10s %10s %8s %7s\n",
		"cell", "M", "entries", "strategy", "build ms", "resident B", "cold ns", "ns/var", "speedup", "hit%")

	const block = 256
	var sink uint64
	for _, c := range cells {
		s, err := core.New(c.m, c.n)
		if err != nil {
			return err
		}
		var idx core.Indexer
		idxStart := time.Now()
		if c.big {
			idx = core.NewCompactIndexer(s)
		} else {
			if idx, err = s.NewIndexer(); err != nil {
				return err
			}
		}
		idxMs := float64(time.Since(idxStart).Nanoseconds()) / 1e6
		var idxBytes uint64
		if b, ok := idx.(interface{ Bytes() uint64 }); ok {
			idxBytes = b.Bytes()
		}
		mp := protocol.NewCoreMapper(s, idx)
		copies := mp.Copies()
		entries := s.NumVariables * uint64(copies)
		label := fmt.Sprintf("q%d-n%d", s.Q, c.n)
		fprintf(w, "%-10s %10d %11d %-9s %9.0f %12d  (indexer: built once per cell, shared by every strategy)\n",
			label, s.NumVariables, entries, "indexer", idxMs, idxBytes)

		stream := workload.Zipf(o.Rng(), s.NumVariables, ops, 1.1)
		bm := make([]uint64, 0, block*copies)
		ba := make([]uint64, 0, block*copies)

		// measure times one cold pass and reps steady-state passes over the
		// stream, returning (cold, median-steady) ns per variable. The
		// up-front collection keeps one strategy's garbage (and the previous
		// cell's dropped indexer) from billing GC assists to the next.
		measure := func(resolve func([]uint64)) (float64, float64) {
			runtime.GC()
			start := time.Now()
			resolve(stream)
			cold := float64(time.Since(start).Nanoseconds()) / float64(ops)
			reps := 5
			if o.Quick {
				reps = 2
			}
			els := make([]int64, 0, reps)
			for r := 0; r < reps; r++ {
				start = time.Now()
				resolve(stream)
				els = append(els, time.Since(start).Nanoseconds())
			}
			sort.Slice(els, func(i, j int) bool { return els[i] < els[j] })
			return cold, float64(els[len(els)/2]) / float64(ops)
		}
		bulkThrough := func(src protocol.Mapper) func([]uint64) {
			return func(vars []uint64) {
				for base := 0; base < len(vars); base += block {
					end := base + block
					if end > len(vars) {
						end = len(vars)
					}
					bm, ba = protocol.AppendCopyAddrs(src, bm[:0], ba[:0], vars[base:end], copies)
					sink += bm[0] + ba[len(ba)-1]
				}
			}
		}
		emit := func(r row) {
			r.Cell, r.Q, r.N, r.Vars, r.Entries, r.IndexerBytes = label, s.Q, c.n, s.NumVariables, entries, idxBytes
			if r.NsPerVar > 0 {
				r.VarsPerSec = 1e9 / r.NsPerVar
			}
			report.Rows = append(report.Rows, r)
			if r.Skipped {
				fprintf(w, "%-10s %10d %11d %-9s %9s %12d  (eager table would exceed the %d-entry lazy threshold)\n",
					label, s.NumVariables, entries, r.Strategy, "-", r.ResidentBytes, int64(protocol.DefaultLazyThreshold))
				return
			}
			fprintf(w, "%-10s %10d %11d %-9s %9.0f %12d %10.1f %10.1f %7.2fx %6.1f\n",
				label, s.NumVariables, entries, r.Strategy, r.BuildMs, r.ResidentBytes,
				r.ColdNsPerVar, r.NsPerVar, r.Speedup, 100*r.HitRate)
		}

		// The live per-op baseline every strategy's speedup is against.
		perOpCold, perOpNs := measure(func(vars []uint64) {
			for _, v := range vars {
				for cc := 0; cc < copies; cc++ {
					mod, addr := mp.CopyAddr(v, cc)
					sink += mod + addr
				}
			}
		})
		emit(row{Strategy: "per-op", ColdNsPerVar: perOpCold, NsPerVar: perOpNs, Speedup: 1})

		for _, strat := range strategies {
			switch strat {
			case "computed":
				cold, ns := measure(bulkThrough(mp))
				emit(row{Strategy: strat, ColdNsPerVar: cold, NsPerVar: ns, Speedup: perOpNs / ns})
			case "compiled":
				if entries > protocol.DefaultLazyThreshold {
					emit(row{Strategy: strat, Skipped: true, ResidentBytes: entries * 16})
					continue
				}
				buildStart := time.Now()
				r, err := protocol.CompileMapper(mp, protocol.CompileOptions{Eager: true})
				if err != nil {
					return err
				}
				buildMs := float64(time.Since(buildStart).Nanoseconds()) / 1e6
				cold, ns := measure(bulkThrough(r))
				emit(row{Strategy: strat, BuildMs: buildMs, ResidentBytes: r.ResidentBytes(),
					ColdNsPerVar: cold, NsPerVar: ns, Speedup: perOpNs / ns})
			case "hybrid":
				hc := protocol.NewHotCache(mp, 1<<15)
				cold, ns := measure(func(vars []uint64) {
					for base := 0; base < len(vars); base += block {
						end := base + block
						if end > len(vars) {
							end = len(vars)
						}
						bm, ba = hc.AppendCopyAddrs(mp, bm[:0], ba[:0], vars[base:end])
						sink += bm[0] + ba[len(ba)-1]
					}
				})
				hits, misses := hc.Stats()
				hitRate := 0.0
				if hits+misses > 0 {
					hitRate = float64(hits) / float64(hits+misses)
				}
				emit(row{Strategy: strat, ResidentBytes: hc.ResidentBytes(),
					ColdNsPerVar: cold, NsPerVar: ns, Speedup: perOpNs / ns, HitRate: hitRate})
			}
		}

		// Equivalence spot-check: every strategy must resolve like per-op.
		check := stream[:16]
		cm, ca := protocol.AppendCopyAddrs(mp, nil, nil, check, copies)
		for i, v := range check {
			for cc := 0; cc < copies; cc++ {
				wm, wa := mp.CopyAddr(v, cc)
				if cm[i*copies+cc] != wm || ca[i*copies+cc] != wa {
					return fmt.Errorf("e23 %s: bulk resolution of var %d copy %d diverges from per-op", label, v, cc)
				}
			}
		}
	}
	_ = sink
	fprintf(w, "  (speedup is steady-state per-op ns over the strategy's ns per variable; cold is the\n")
	fprintf(w, "   first pass — where the hybrid cache fills. Resident bytes exclude the per-cell\n")
	fprintf(w, "   indexer, shown once per cell; a skipped compiled row reports the table the eager\n")
	fprintf(w, "   strategy would have had to hold.)\n\n")

	if path := o.jsonPath("BENCH_PR9.json"); path != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			return fmt.Errorf("e23: writing %s: %w", path, err)
		}
		fprintf(w, "  (wrote %s)\n\n", path)
	}
	return nil
}
