package experiments

import (
	"io"
	"math"

	"detshmem/internal/analysis"
	"detshmem/internal/protocol"
	"detshmem/internal/workload"
)

// E5 reproduces Recurrence (2): it runs a full-N batch with live tracing and
// prints the measured live-variable counts per iteration of the worst phase
// next to the analytical envelope R_{k+1} = R_k(1 − c(q/R_k)^{1/3}),
// c ≈ 0.397, started from the same R_0.
func E5(w io.Writer, o Options) error {
	n := 7
	if o.Quick {
		n = 5
	}
	sys, err := newSystem(o, 1, n, protocol.Config{TraceLive: true})
	if err != nil {
		return err
	}
	s := sys.Scheme
	N := int(s.NumModules)
	fprintf(w, "E5  Recurrence (2): live variables per iteration (q=%d, n=%d, N=%d)\n", s.Q, n, N)

	batches := []struct {
		label string
		vars  []uint64
	}{
		{"random", workload.DistinctRandom(o.Rng(), sys.Index.M(), N)},
	}
	gamma, err := workload.GammaConcentrated(s, sys.Index, 0, N)
	if err != nil {
		return err
	}
	batches = append(batches, struct {
		label string
		vars  []uint64
	}{"Γ-concentrated", gamma})

	for _, batch := range batches {
		vals := make([]uint64, len(batch.vars))
		met, err := sys.WriteBatch(batch.vars, vals)
		if err != nil {
			return err
		}
		// Pick the phase with the most iterations.
		worst := 0
		for p, it := range met.PhaseIterations {
			if it > met.PhaseIterations[worst] {
				worst = p
			}
		}
		trace := met.LiveTrace[worst]
		r0 := float64(len(batch.vars)) / float64(s.Copies) // clusters per phase
		env := analysis.RecurrenceEnvelope(r0, s.Q, 10*len(trace)+10)
		fprintf(w, "\n  batch=%s (worst phase %d)\n", batch.label, worst)
		fprintf(w, "%6s %12s %14s\n", "iter", "measured R_k", "envelope bound")
		step := 1 + len(trace)/24
		for k := 0; k < len(trace); k += step {
			bound := 0.0
			if k+1 < len(env) {
				bound = env[k+1]
			}
			fprintf(w, "%6d %12d %14.1f\n", k+1, trace[k], bound)
		}
		fprintf(w, "%6s measured iterations: %d; envelope iterations: %d\n",
			"", len(trace), analysis.RecurrenceIterations(r0, s.Q, 1<<20))
	}
	fprintf(w, "  (measured decay must stay at or below the envelope's shape;\n")
	fprintf(w, "   the envelope is a worst-case ceiling, so measured << envelope is expected)\n\n")
	return nil
}

// E6 reproduces Theorem 6 / Theorem 1: Φ for full batches across n, with the
// normalizations Φ/N^{1/3} and Φ/(N^{1/3} log* N) that must stay bounded,
// plus an N' sweep at fixed n showing the O((N')^{1/3} log* N') regime.
func E6(w io.Writer, o Options) error {
	fprintf(w, "E6  Theorem 6: Φ scaling for full batches (q=2; the time-model column is\n")
	fprintf(w, "    the paper's §3 total q(Φ·log q + log N), constants ours)\n")
	fprintf(w, "%3s %10s %8s %8s %12s %16s %12s %10s\n",
		"n", "N", "Φ", "rounds", "Φ/N^{1/3}", "Φ/(N^{1/3}log*N)", "bound-shape", "time-model")
	for _, n := range o.Degrees() {
		sys, err := newSystem(o, 1, n, protocol.Config{})
		if err != nil {
			return err
		}
		N := int(sys.Scheme.NumModules)
		vars := workload.DistinctRandom(o.Rng(), sys.Index.M(), N)
		vals := make([]uint64, N)
		met, err := sys.WriteBatch(vars, vals)
		if err != nil {
			return err
		}
		cbrt := math.Cbrt(float64(N))
		ls := float64(analysis.LogStar(float64(N)))
		fprintf(w, "%3d %10d %8d %8d %12.3f %16.3f %12.1f %10.1f\n",
			n, N, met.MaxIterations, met.TotalRounds,
			float64(met.MaxIterations)/cbrt,
			float64(met.MaxIterations)/(cbrt*ls),
			analysis.Theorem6Bound(uint64(N)),
			analysis.MPCTimeModel(sys.Scheme.Q, met.MaxIterations, uint64(N)))
	}

	// The general-q path: q = 4 (five copies, majority 3) through the
	// enumerated indexer.
	if !o.Quick {
		fprintf(w, "\n    q=4 instances (general-q protocol path, enumerated indexing)\n")
		for _, n := range []int{3, 4} {
			sys, err := newSystem(o, 2, n, protocol.Config{})
			if err != nil {
				return err
			}
			N := int(sys.Scheme.NumModules)
			vars := workload.DistinctRandom(o.Rng(), sys.Index.M(), N)
			vals := make([]uint64, N)
			met, err := sys.WriteBatch(vars, vals)
			if err != nil {
				return err
			}
			fprintf(w, "%3d %10d %8d %8d %12.3f\n",
				n, N, met.MaxIterations, met.TotalRounds,
				float64(met.MaxIterations)/math.Cbrt(float64(N)))
		}
	}

	nFix := 7
	if o.Quick {
		nFix = 5
	}
	sys, err := newSystem(o, 1, nFix, protocol.Config{})
	if err != nil {
		return err
	}
	N := int(sys.Scheme.NumModules)
	fprintf(w, "\n    N' sweep at n=%d (N=%d): total time O((N')^{1/3}log*N' + log N)\n", nFix, N)
	fprintf(w, "%10s %8s %8s %14s\n", "N'", "Φ", "rounds", "Φ/(N')^{1/3}")
	rng := o.Rng()
	for np := 64; np <= N; np *= 4 {
		vars := workload.DistinctRandom(rng, sys.Index.M(), np)
		vals := make([]uint64, len(vars))
		met, err := sys.WriteBatch(vars, vals)
		if err != nil {
			return err
		}
		fprintf(w, "%10d %8d %8d %14.3f\n",
			np, met.MaxIterations, met.TotalRounds,
			float64(met.MaxIterations)/math.Cbrt(float64(np)))
	}
	fprintf(w, "\n")
	return nil
}
