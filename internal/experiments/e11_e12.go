package experiments

import (
	"errors"
	"io"
	"math"

	"detshmem/internal/core"
	"detshmem/internal/mpc"
	"detshmem/internal/network"
	"detshmem/internal/protocol"
	"detshmem/internal/workload"
)

// E11 measures the fault tolerance the majority rule inherits from Thomas'
// consensus scheme (an extension experiment; not a claim the paper states,
// but a direct corollary of its Theorems): with q = 2, any single failed
// module is fully masked, and — by Theorem 2 — any *pair* of failed modules
// denies a quorum to at most one variable.
func E11(w io.Writer, o Options) error {
	n := 5
	trials := 200
	if o.Quick {
		n, trials = 3, 40
	}
	s, err := core.New(1, n)
	if err != nil {
		return err
	}
	idx, err := s.NewIndexer()
	if err != nil {
		return err
	}
	inv := idx.(core.Inverter)
	rng := o.Rng()
	fprintf(w, "E11 Fault tolerance of the majority rule (q=2, n=%d, N=%d)\n", n, s.NumModules)
	fprintf(w, "%10s %10s %14s %16s\n", "failures", "trials", "max blocked", "Thm-2 ceiling")
	for _, failures := range []int{1, 2, 3} {
		maxBlocked := 0
		for trial := 0; trial < trials; trial++ {
			failed := make([]uint64, 0, failures)
			seen := make(map[uint64]bool)
			for len(failed) < failures {
				j := uint64(rng.Int63n(int64(s.NumModules)))
				if !seen[j] {
					seen[j] = true
					failed = append(failed, j)
				}
			}
			sys, err := protocol.NewSystem(s, idx, protocol.Config{
				MaxIterationsPerPhase: 4096,
				NewMachine: func(cfg mpc.Config) (protocol.Machine, error) {
					return mpc.NewFailing(cfg, failed)
				},
			})
			if err != nil {
				return err
			}
			// Batch = every variable touching a failed module (the only
			// candidates for quorum loss).
			var vars []uint64
			dedup := make(map[uint64]bool)
			for _, j := range failed {
				for k := uint32(0); k < s.ModuleSize; k++ {
					i, ok := inv.Index(s.ModuleVarMat(j, k))
					if !ok {
						return errors.New("experiments: uninvertible variable")
					}
					if !dedup[i] {
						dedup[i] = true
						vars = append(vars, i)
					}
				}
			}
			vals := make([]uint64, len(vars))
			met, err := sys.WriteBatch(vars, vals)
			blocked := 0
			if err != nil {
				if !errors.Is(err, protocol.ErrIncomplete) {
					return err
				}
				blocked = len(met.Unfinished)
			}
			if blocked > maxBlocked {
				maxBlocked = blocked
			}
		}
		// Theorem 2 ceiling: each failed-module pair denies at most one
		// variable its quorum (q=2 needs 2 of 3 copies).
		ceiling := failures * (failures - 1) / 2
		fprintf(w, "%10d %10d %14d %16d\n", failures, trials, maxBlocked, ceiling)
		if maxBlocked > ceiling {
			fprintf(w, "  !! Theorem 2 fault ceiling exceeded\n")
		}
	}
	fprintf(w, "  (blocked = variables that could not assemble a 2-of-3 quorum; single\n")
	fprintf(w, "   failures are always fully masked; pair ceilings follow from Theorem 2)\n\n")
	return nil
}

// E12 runs the protocol over the butterfly interconnect (the routing problem
// the paper factors out in §1) and compares the measured routed time against
// the stated O(q(Φ·log q + log N)) network-time shape.
func E12(w io.Writer, o Options) error {
	degrees := o.Degrees()
	if !o.Quick {
		degrees = []int{3, 5, 7} // n=9's quarter-million-row butterfly is needlessly slow
	}
	fprintf(w, "E12 Protocol over bounded-degree networks (routing included)\n")
	fprintf(w, "%3s %10s %-10s %5s %8s %12s %14s %16s\n",
		"n", "N", "topology", "d", "Φ", "MPC rounds", "routed cost", "cost/(rounds·d)")
	for _, n := range degrees {
		s, err := core.New(1, n)
		if err != nil {
			return err
		}
		idx, err := s.NewIndexer()
		if err != nil {
			return err
		}
		for _, topo := range []network.Topology{network.TopoButterfly, network.TopoHypercube} {
			var dim int
			sys, err := protocol.NewSystem(s, idx, protocol.Config{
				NewMachine: func(cfg mpc.Config) (protocol.Machine, error) {
					m, err := network.NewMachineTopology(cfg, topo)
					if err == nil {
						dim = m.Dimension()
					}
					return m, err
				},
			})
			if err != nil {
				return err
			}
			N := int(s.NumModules)
			vars := workload.DistinctRandom(o.Rng(), idx.M(), N)
			vals := make([]uint64, N)
			met, err := sys.WriteBatch(vars, vals)
			if err != nil {
				return err
			}
			norm := float64(met.InterconnectCost) / (float64(met.TotalRounds) * float64(dim))
			fprintf(w, "%3d %10d %-10s %5d %8d %12d %14d %16.2f\n",
				n, N, topo, dim, met.MaxIterations, met.TotalRounds, met.InterconnectCost, norm)
			if math.IsNaN(norm) {
				fprintf(w, "  !! degenerate measurement\n")
			}
		}
	}
	fprintf(w, "  (d ≈ log₂N is the network diameter scale; each protocol iteration pays a\n")
	fprintf(w, "   routed request sweep plus a reply sweep, so cost/(rounds·d) near a small\n")
	fprintf(w, "   constant reproduces the O(Φ·log N) bounded-degree time shape)\n\n")
	return nil
}
