package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestAllExperimentsQuick runs every experiment in quick mode and asserts
// that no table reports a theorem violation (the "!!" marker) and that each
// produces non-trivial output.
func TestAllExperimentsQuick(t *testing.T) {
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := r.Run(&buf, Options{Quick: true}); err != nil {
				t.Fatalf("%s: %v", r.ID, err)
			}
			out := buf.String()
			if len(out) < 80 {
				t.Fatalf("%s produced suspiciously little output:\n%s", r.ID, out)
			}
			if strings.Contains(out, "!!") {
				t.Fatalf("%s reported a violation:\n%s", r.ID, out)
			}
		})
	}
}

func TestAllIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range All() {
		if seen[r.ID] {
			t.Fatalf("duplicate experiment id %s", r.ID)
		}
		seen[r.ID] = true
		if r.Title == "" || r.Run == nil {
			t.Fatalf("experiment %s incomplete", r.ID)
		}
	}
}
