package experiments

import (
	"os"
	"runtime"
	"strings"
)

// HostInfo identifies the machine and runtime a benchmark JSON was
// produced on. BENCH_PR4 recorded only gomaxprocs, which left "is 0.86×
// a mutex ceiling or a one-core host?" ambiguous — NumCPU and the CPU
// model make committed curves interpretable without the original machine.
type HostInfo struct {
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	CPUModel   string `json:"cpu_model,omitempty"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
}

// Host snapshots the current process's host information.
func Host() HostInfo {
	return HostInfo{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		CPUModel:   cpuModel(),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
	}
}

// cpuModel best-effort reads the CPU model name. On Linux that is the
// first "model name" line of /proc/cpuinfo; elsewhere (or on failure) it
// is empty — the field is metadata, never load-bearing.
func cpuModel() string {
	if runtime.GOOS != "linux" {
		return ""
	}
	blob, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(blob), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}
