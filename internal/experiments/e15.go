package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"detshmem/internal/frontend"
	"detshmem/internal/protocol"
	"detshmem/internal/workload"
)

// E15 measures the combining frontend: concurrent clients submit
// asynchronous read/write streams, the dispatcher coalesces them into
// EREW-legal protocol batches, and the table reports how many protocol
// requests actually reached the memory versus raw client operations
// (combining rate), alongside throughput. On hot-spot traffic the frontend
// should issue far fewer requests than it admits — the same effect CRCW
// combining has inside one PRAM step, applied across asynchronous clients —
// while uniform traffic shows the protocol-bound baseline.
func E15(w io.Writer, o Options) error {
	n := 5
	totalOps := 24000
	clientCounts := []int{4, 32}
	if o.Quick {
		n = 3
		totalOps = 3000
		clientCounts = []int{2, 8}
	}
	inst, err := newE7Instance(n)
	if err != nil {
		return err
	}
	schemes := []protocol.Mapper{inst.pp, inst.mv, inst.si}
	workloads := []struct {
		name string
		p    float64 // probability of hitting the 16-variable hot set
	}{
		{"uniform", 0},
		{"hot-spot", 0.85},
	}

	fprintf(w, "E15 Combining frontend: concurrent clients over the batch protocol (q=2, n=%d, N=%d, M=%d, %d ops/run)\n",
		n, inst.s.NumModules, inst.s.NumVariables, totalOps)
	fprintf(w, "%-18s %-9s %8s %8s %9s %10s %7s %8s %12s\n",
		"scheme", "workload", "clients", "ops in", "reqs out", "combine%", "maxΦ", "rounds", "ops/sec")
	for _, m := range schemes {
		for _, wl := range workloads {
			for _, clients := range clientCounts {
				sys, err := protocol.NewGenericSystem(m, protocol.Config{})
				if err != nil {
					return err
				}
				fe, err := frontend.New(sys, frontend.Config{})
				if err != nil {
					return err
				}
				start := time.Now()
				if err := driveFrontend(fe, m.NumVars(), clients, totalOps/clients, wl.p, o.Seed); err != nil {
					return err
				}
				if err := fe.Close(); err != nil {
					return err
				}
				elapsed := time.Since(start)
				s := fe.Stats()
				fprintf(w, "%-18s %-9s %8d %8d %9d %10.1f %7d %8d %12.0f\n",
					m.Name(), wl.name, clients, s.OpsIn, s.RequestsOut,
					100*s.CombiningRate(), s.MaxPhi, s.TotalRounds,
					float64(s.OpsIn)/elapsed.Seconds())
			}
		}
	}
	fprintf(w, "  (combine%% = ops that never became protocol requests: shared reads,\n")
	fprintf(w, "   last-writer-wins coalescing, and read-after-write forwarding. Hot-spot\n")
	fprintf(w, "   traffic combines heavily — the issued-request count decouples from the\n")
	fprintf(w, "   op count — while uniform traffic stays protocol-bound. ops/sec is\n")
	fprintf(w, "   wall-clock and machine-dependent; all other columns are deterministic\n")
	fprintf(w, "   up to goroutine interleaving.)\n\n")
	return nil
}

// driveFrontend runs clients goroutines, each submitting opsPer operations
// (30% writes) in asynchronous windows so batches genuinely combine.
func driveFrontend(fe *frontend.Frontend, vars uint64, clients, opsPer int, hotP float64, seed int64) error {
	const window = 64
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + 1993 + int64(c)*104729))
			stream := workload.HotSpot(rng, vars, opsPer, 16, hotP)
			pending := make([]*frontend.Future, 0, window)
			drain := func() bool {
				for _, fut := range pending {
					if _, err := fut.Wait(); err != nil {
						errs <- err
						return false
					}
				}
				pending = pending[:0]
				return true
			}
			for i, v := range stream {
				var fut *frontend.Future
				var err error
				if rng.Intn(100) < 30 {
					fut, err = fe.WriteAsync(v, uint64(c)<<32|uint64(i))
				} else {
					fut, err = fe.ReadAsync(v)
				}
				if err != nil {
					errs <- err
					return
				}
				pending = append(pending, fut)
				if len(pending) == window && !drain() {
					return
				}
			}
			drain()
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return fmt.Errorf("frontend client: %w", err)
		}
	}
	return nil
}
