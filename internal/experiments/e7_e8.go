package experiments

import (
	"io"
	"math"

	"detshmem/internal/analysis"
	"detshmem/internal/baseline"
	"detshmem/internal/core"
	"detshmem/internal/protocol"
	"detshmem/internal/workload"
)

// e7Instance bundles the schemes under comparison, all sharing the same
// (N, M) geometry so that a batch of variable indices is meaningful under
// every scheme.
type e7Instance struct {
	s   *core.Scheme
	idx core.Indexer
	pp  protocol.Mapper
	mv  *baseline.MV
	si  *baseline.SingleCopy
	sh  *baseline.SingleCopy
	uw  *baseline.UW
	all []protocol.Mapper
}

func newE7Instance(n int) (*e7Instance, error) {
	s, err := core.New(1, n)
	if err != nil {
		return nil, err
	}
	idx, err := s.NewIndexer()
	if err != nil {
		return nil, err
	}
	N, M := s.NumModules, s.NumVariables
	mv, err := baseline.NewMV(N, M, 2)
	if err != nil {
		return nil, err
	}
	si, err := baseline.NewSingleCopy(N, M, baseline.PlaceInterleaved, 0)
	if err != nil {
		return nil, err
	}
	sh, err := baseline.NewSingleCopy(N, M, baseline.PlaceHashed, 12345)
	if err != nil {
		return nil, err
	}
	// UW majority size c ≈ (log₂ N)/2 gives the Θ(log N) redundancy of the
	// existential scheme.
	c := 1
	for (uint64(1) << uint(2*c)) < N {
		c++
	}
	uw, err := baseline.NewUW(N, M, c, 999)
	if err != nil {
		return nil, err
	}
	inst := &e7Instance{s: s, idx: idx, pp: protocol.NewCoreMapper(s, idx), mv: mv, si: si, sh: sh, uw: uw}
	inst.all = []protocol.Mapper{inst.pp, mv, si, sh, uw}
	return inst, nil
}

// E7 compares the constructive scheme against the baselines on random and
// adversarial batches, all under the same MPC accounting. Every row is one
// (workload, operation); every column one scheme; entries are total MPC
// rounds for the batch.
func E7(w io.Writer, o Options) error {
	n := 7
	size := 4096
	if o.Quick {
		n, size = 5, 512
	}
	inst, err := newE7Instance(n)
	if err != nil {
		return err
	}
	s := inst.s
	if uint64(size) > s.NumModules {
		size = int(s.NumModules)
	}
	rng := o.Rng()

	gamma, err := workload.GammaConcentrated(s, inst.idx, 0, size)
	if err != nil {
		return err
	}
	// Collision batches are clamped by how many variables truly collide
	// (≈ M/N for the single-copy layouts at this memory size), so every row
	// reports its own |batch|.
	collide := int(s.NumVariables / s.NumModules * 4)
	if collide > size {
		collide = size
	}
	rows := []struct {
		name  string
		op    protocol.Op
		batch []uint64
	}{
		{"random", protocol.Read, workload.DistinctRandom(rng, s.NumVariables, size)},
		{"random", protocol.Write, workload.DistinctRandom(rng, s.NumVariables, size)},
		{"stride-N (interleave/digit collide)", protocol.Write, workload.Stride(s.NumVariables, collide, s.NumModules)},
		{"hash-inverted", protocol.Read, inst.sh.WorstBatch(collide)},
		{"digit-grid (MV read adversary)", protocol.Read, inst.mv.WorstReadBatch(size)},
		{"Γ-concentrated (PP adversary)", protocol.Read, gamma},
	}

	fprintf(w, "E7  Scheme comparison: total MPC rounds per batch (q=2, n=%d, N=%d, M=%d, |batch|≤%d)\n",
		n, s.NumModules, s.NumVariables, size)
	fprintf(w, "%-38s %-6s %7s", "workload", "op", "|batch|")
	for _, m := range inst.all {
		fprintf(w, " %14s", m.Name())
	}
	fprintf(w, "\n")
	opName := map[protocol.Op]string{protocol.Read: "read", protocol.Write: "write"}
	for _, row := range rows {
		fprintf(w, "%-38s %-6s %7d", row.name, opName[row.op], len(row.batch))
		for _, m := range inst.all {
			sys, err := protocol.NewGenericSystem(m, protocol.Config{})
			if err != nil {
				return err
			}
			reqs := make([]protocol.Request, len(row.batch))
			for i, v := range row.batch {
				reqs[i] = protocol.Request{Var: v, Op: row.op, Value: uint64(i)}
			}
			res, err := sys.Access(reqs)
			if err != nil {
				return err
			}
			fprintf(w, " %14d", res.Metrics.TotalRounds)
		}
		fprintf(w, "\n")
	}
	fprintf(w, "  (copies: pp93=3, mv=2, single=1, uw=%d; uw pays its 2c-1 phases even on\n", inst.uw.Copies())
	fprintf(w, "   random batches; single-copy collapses on its collision batch; pp93 stays\n")
	fprintf(w, "   within its deterministic envelope on every row)\n\n")
	return nil
}

// E8 reproduces Theorem 7: the universal floor (M/N)^{1/r} for r-copy
// schemes, against the congestion a greedy adversary actually extracts from
// each implementation.
func E8(w io.Writer, o Options) error {
	n := 7
	size, pool := 2048, 60000
	if o.Quick {
		n, size, pool = 5, 256, 4000
	}
	inst, err := newE7Instance(n)
	if err != nil {
		return err
	}
	s := inst.s
	if uint64(size) > s.NumModules {
		size = int(s.NumModules)
	}
	fprintf(w, "E8  Theorem 7: floor (M/N)^{1/r} vs adversary rounds (q=2, n=%d, |batch|≤%d)\n", n, size)
	fprintf(w, "%-18s %6s %10s %14s %16s %14s\n",
		"scheme", "r", "floor", "greedy rounds", "structural rds", "best/floor")
	rng := o.Rng()
	run := func(m protocol.Mapper, batch []uint64, op protocol.Op) (int, error) {
		if len(batch) == 0 {
			return 0, nil
		}
		sys, err := protocol.NewGenericSystem(m, protocol.Config{})
		if err != nil {
			return 0, err
		}
		reqs := make([]protocol.Request, len(batch))
		for i, v := range batch {
			reqs[i] = protocol.Request{Var: v, Op: op, Value: uint64(i)}
		}
		res, err := sys.Access(reqs)
		if err != nil {
			return 0, err
		}
		return res.Metrics.TotalRounds, nil
	}
	for _, m := range inst.all {
		floor := analysis.Theorem7Lower(m.NumVars(), m.NumModules(), m.Copies())
		greedy, err := run(m, analysis.GreedyAdversary(m, size, pool, rng), protocol.Read)
		if err != nil {
			return err
		}
		// Structural adversaries where the scheme's weakness has a closed
		// form (single-copy collision sets; MV's write-all digit stripe).
		structural := 0
		switch sm := m.(type) {
		case *baseline.SingleCopy:
			structural, err = run(m, sm.WorstBatch(size), protocol.Read)
		case *baseline.MV:
			structural, err = run(m, sm.WorstWriteBatch(size), protocol.Write)
		}
		if err != nil {
			return err
		}
		best := greedy
		if structural > best {
			best = structural
		}
		fprintf(w, "%-18s %6d %10.2f %14d %16d %14.2f\n",
			m.Name(), m.Copies(), floor, greedy, structural,
			float64(best)/math.Max(floor, 1))
	}
	fprintf(w, "  (the floor holds for any organization with exactly r copies; both\n")
	fprintf(w, "   adversaries are lower estimates of each scheme's true worst case —\n")
	fprintf(w, "   single-copy and MV-writes are fully exposed by their structural sets,\n")
	fprintf(w, "   while pp93's rounds stay near its N^{1/3}log*N protocol envelope\n")
	fprintf(w, "   rather than growing with the batch size)\n\n")
	return nil
}
