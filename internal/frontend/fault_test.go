package frontend

import (
	"errors"
	"testing"

	"detshmem/internal/core"
	"detshmem/internal/mpc"
	"detshmem/internal/protocol"
)

// TestCompleteAttribution unit-tests the per-request verdicts in
// Pending.Complete deterministically: a partially-failed batch completes its
// healthy futures with their values, fails iteration-budget casualties with
// the batch's ErrIncomplete-class error, and fails quorum-less requests with
// ErrQuorumUnreachable — including writers and forwarded readers riding a
// failed write.
func TestCompleteAttribution(t *testing.T) {
	p := NewPending(8)
	readOK := NewFuture()
	readStuck := NewFuture()
	writeStranded := NewFuture()
	fwdStranded := NewFuture()
	p.Read(1, 10, readOK)            // request 0: completes
	p.Read(2, 11, readStuck)         // request 1: unfinished, budget verdict
	p.Write(3, 12, 7, writeStranded) // request 2: stranded, quorum verdict
	p.Read(4, 12, fwdStranded)       // forwarded off the stranded write

	res := &protocol.Result{Values: []uint64{42, 0, 0}}
	res.Metrics.Unfinished = []int{1, 2}
	res.Metrics.Stranded = []int{2}
	batchErr := protocol.ErrQuorumUnreachable
	p.Complete(res, batchErr)

	if v, err := readOK.Wait(); err != nil || v != 42 {
		t.Fatalf("healthy read in degraded batch: %d, %v", v, err)
	}
	if _, err := readStuck.Wait(); !errors.Is(err, protocol.ErrIncomplete) || errors.Is(err, protocol.ErrQuorumUnreachable) {
		t.Fatalf("budget casualty verdict: %v", err)
	}
	if _, err := writeStranded.Wait(); !errors.Is(err, protocol.ErrQuorumUnreachable) {
		t.Fatalf("stranded write verdict: %v", err)
	}
	if _, err := fwdStranded.Wait(); !errors.Is(err, protocol.ErrQuorumUnreachable) {
		t.Fatalf("forwarded read riding a stranded write: %v", err)
	}
}

// TestFrontendDegradedServing is the classic channel dispatcher end to end
// under a runtime quorum loss: after the victim variable's modules fail,
// only the victim's futures error (with the quorum verdict) while every
// other operation in the same stream commits normally, and the combining
// stats count the stranding.
func TestFrontendDegradedServing(t *testing.T) {
	s, err := core.New(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := s.NewIndexer()
	if err != nil {
		t.Fatal(err)
	}
	fs := mpc.NewFaultSet()
	sys, err := protocol.NewSystem(s, idx, protocol.Config{
		MaxIterationsPerPhase: 2048,
		NewMachine:            func(cfg mpc.Config) (protocol.Machine, error) { return mpc.NewFailingShared(cfg, fs) },
	})
	if err != nil {
		t.Fatal(err)
	}
	fe, err := New(sys, Config{MaxBatch: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()

	victim := uint64(10)
	vmods := s.VarModules(nil, idx.Mat(victim))
	failed := map[uint64]bool{}
	for _, m := range vmods {
		failed[m] = true
	}
	// Companions with at most one copy in the victim's module set keep a
	// live majority throughout.
	var healthy []uint64
	var scratch []uint64
	for v := uint64(0); len(healthy) < 6; v++ {
		if v == victim {
			continue
		}
		live := 0
		scratch = s.VarModules(scratch[:0], idx.Mat(v))
		for _, m := range scratch {
			if !failed[m] {
				live++
			}
		}
		if live >= s.Majority {
			healthy = append(healthy, v)
		}
	}

	for _, v := range append([]uint64{victim}, healthy...) {
		if err := fe.Write(v, v+500); err != nil {
			t.Fatalf("healthy write of %d: %v", v, err)
		}
	}
	for _, m := range vmods {
		fs.Fail(m)
	}

	vf, err := fe.ReadAsync(victim)
	if err != nil {
		t.Fatal(err)
	}
	hf := make([]*Future, len(healthy))
	for i, v := range healthy {
		if hf[i], err = fe.ReadAsync(v); err != nil {
			t.Fatal(err)
		}
	}
	wf, err := fe.WriteAsync(victim, 9999)
	if err != nil {
		t.Fatal(err)
	}
	if err := fe.Flush(); err != nil {
		t.Fatal(err)
	}

	if _, err := vf.Wait(); !errors.Is(err, protocol.ErrQuorumUnreachable) {
		t.Fatalf("victim read verdict: %v", err)
	}
	if _, err := wf.Wait(); !errors.Is(err, protocol.ErrQuorumUnreachable) {
		t.Fatalf("victim write verdict: %v", err)
	}
	for i, f := range hf {
		v, err := f.Wait()
		if err != nil {
			t.Fatalf("healthy read of %d in degraded stream: %v", healthy[i], err)
		}
		if v != healthy[i]+500 {
			t.Fatalf("healthy read of %d = %d, want %d", healthy[i], v, healthy[i]+500)
		}
	}
	if st := fe.Stats(); st.Stranded < 2 {
		t.Fatalf("stats stranded = %d, want >= 2", st.Stranded)
	}

	// Recovery: the same frontend serves the victim again.
	for _, m := range vmods {
		fs.Recover(m)
	}
	if v, err := fe.Read(victim); err != nil || v != victim+500 {
		t.Fatalf("victim after recovery: %d, %v", v, err)
	}
}
