package frontend

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"detshmem/internal/core"
	"detshmem/internal/protocol"
)

// fakeBackend applies batches to a plain map and records them. When gated,
// every Access call announces itself on entered and then blocks until the
// test calls step, letting tests hold the dispatcher inside a flush while
// they stage the submission queue — the only way to pin down which ops land
// in which batch.
type fakeBackend struct {
	mu      sync.Mutex
	batches [][]protocol.Request
	store   map[uint64]uint64
	entered chan struct{}
	gate    chan struct{}
	err     error // forced failure for every batch
}

func newFakeBackend(gated bool) *fakeBackend {
	b := &fakeBackend{store: make(map[uint64]uint64)}
	if gated {
		b.entered = make(chan struct{})
		b.gate = make(chan struct{})
	}
	return b
}

// step waits for the dispatcher to enter its next Access call and releases
// it.
func (b *fakeBackend) step() {
	<-b.entered
	b.gate <- struct{}{}
}

func (b *fakeBackend) Access(reqs []protocol.Request) (*protocol.Result, error) {
	if b.gate != nil {
		b.entered <- struct{}{}
		<-b.gate
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err != nil {
		return nil, b.err
	}
	b.batches = append(b.batches, append([]protocol.Request(nil), reqs...))
	res := &protocol.Result{Values: make([]uint64, len(reqs))}
	for i, r := range reqs {
		if r.Op == protocol.Write {
			b.store[r.Var] = r.Value
		} else {
			res.Values[i] = b.store[r.Var]
		}
	}
	return res, nil
}

func (b *fakeBackend) recorded() [][]protocol.Request {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.batches
}

// prime submits one throwaway write and waits for the dispatcher to enter
// its (idle-triggered) flush, so every op staged afterwards sits in the
// queue until the primer batch is released and is then admitted in one
// uninterrupted run.
func prime(t *testing.T, fe *Frontend, b *fakeBackend) *Future {
	t.Helper()
	fut, err := fe.WriteAsync(1<<40, 1)
	if err != nil {
		t.Fatal(err)
	}
	<-b.entered
	return fut
}

// TestCombiningSemantics drives the full coalescing matrix deterministically:
// forwarding, last-writer-wins, read combining, and the write-after-read
// conflict flush.
func TestCombiningSemantics(t *testing.T) {
	b := newFakeBackend(true)
	fe, err := New(b, Config{MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	primer := prime(t, fe, b)

	// Staged while the dispatcher is stuck in the primer's flush.
	w1, _ := fe.WriteAsync(1, 10)
	r1, _ := fe.ReadAsync(1) // forwarded: 10
	w2, _ := fe.WriteAsync(1, 20)
	r2, _ := fe.ReadAsync(1)     // forwarded: 20
	r3, _ := fe.ReadAsync(2)     // issued read
	r4, _ := fe.ReadAsync(2)     // combined with r3
	w3, _ := fe.WriteAsync(2, 5) // conflicts with the issued read: flush

	b.gate <- struct{}{} // release the primer batch (already entered)
	b.step()             // the conflict-flushed combined batch
	b.step()             // w3's own (idle-flushed) batch
	if err := fe.Flush(); err != nil {
		t.Fatal(err)
	}

	if _, err := primer.Wait(); err != nil {
		t.Fatal(err)
	}
	for i, tc := range []struct {
		fut  *Future
		want uint64
	}{{w1, 0}, {r1, 10}, {w2, 0}, {r2, 20}, {r3, 0}, {r4, 0}, {w3, 0}} {
		got, err := tc.fut.Wait()
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if got != tc.want {
			t.Fatalf("op %d: got %d, want %d", i, got, tc.want)
		}
	}

	batches := b.recorded()
	if len(batches) != 3 {
		t.Fatalf("got %d batches, want 3: %v", len(batches), batches)
	}
	combined := batches[1]
	want := []protocol.Request{
		{Var: 1, Op: protocol.Write, Value: 20},
		{Var: 2, Op: protocol.Read},
	}
	if len(combined) != len(want) {
		t.Fatalf("combined batch %v, want %v", combined, want)
	}
	for i := range want {
		if combined[i] != want[i] {
			t.Fatalf("combined[%d] = %v, want %v", i, combined[i], want[i])
		}
	}
	if got := batches[2]; len(got) != 1 || got[0] != (protocol.Request{Var: 2, Op: protocol.Write, Value: 5}) {
		t.Fatalf("post-conflict batch = %v", got)
	}

	s := fe.Stats()
	if s.ForwardedReads != 2 || s.CombinedReads != 1 || s.CoalescedWrites != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.ConflictFlushes != 1 {
		t.Fatalf("conflict flushes = %d", s.ConflictFlushes)
	}
	// 7 staged ops + primer in, 4 requests out (primer, write 1, read 2, write 2).
	if s.OpsIn != 8 || s.RequestsOut != 4 {
		t.Fatalf("ops in/out = %d/%d", s.OpsIn, s.RequestsOut)
	}
	if s.CombiningRate() != 0.5 {
		t.Fatalf("combining rate = %v", s.CombiningRate())
	}
	if err := fe.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSizeFlush checks the MaxBatch threshold splits a staged run of
// distinct variables into full batches.
func TestSizeFlush(t *testing.T) {
	b := newFakeBackend(true)
	fe, err := New(b, Config{MaxBatch: 4, QueueCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	prime(t, fe, b)
	futs := make([]*Future, 8)
	for i := range futs {
		futs[i], err = fe.WriteAsync(uint64(i), uint64(i)+100)
		if err != nil {
			t.Fatal(err)
		}
	}
	b.gate <- struct{}{} // release the primer batch (already entered)
	b.step()             // first full batch of 4
	b.step()             // second full batch of 4
	for _, fut := range futs {
		if _, err := fut.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	sizes := []int{}
	for _, batch := range b.recorded() {
		sizes = append(sizes, len(batch))
	}
	if fmt.Sprint(sizes) != "[1 4 4]" {
		t.Fatalf("batch sizes = %v, want [1 4 4]", sizes)
	}
	if s := fe.Stats(); s.SizeFlushes != 2 {
		t.Fatalf("size flushes = %d", s.SizeFlushes)
	}
	if err := fe.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBackendErrorFansOut: a failing backend fails every waiter in the
// batch with the backend's error.
func TestBackendErrorFansOut(t *testing.T) {
	b := newFakeBackend(false)
	boom := errors.New("boom")
	b.err = boom
	fe, err := New(b, Config{MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fe.Read(7); !errors.Is(err, boom) {
		t.Fatalf("read error = %v, want boom", err)
	}
	if err := fe.Write(7, 1); !errors.Is(err, boom) {
		t.Fatalf("write error = %v, want boom", err)
	}
	if s := fe.Stats(); s.FailedBatches != 2 {
		t.Fatalf("failed batches = %d", s.FailedBatches)
	}
	if err := fe.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTypedErrorsSurface: protocol admission errors keep their errors.Is
// identity through the frontend.
func TestTypedErrorsSurface(t *testing.T) {
	sys := newPP93System(t, 1, 3, protocol.Config{})
	fe, err := New(sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fe.Read(sys.Mapper.NumVars() + 5); !errors.Is(err, protocol.ErrVarOutOfRange) {
		t.Fatalf("error = %v, want ErrVarOutOfRange", err)
	}
	if err := fe.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCloseSemantics: Close flushes pending work, later submissions and a
// second Close return ErrClosed.
func TestCloseSemantics(t *testing.T) {
	b := newFakeBackend(false)
	fe, err := New(b, Config{MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	fut, err := fe.WriteAsync(3, 30)
	if err != nil {
		t.Fatal(err)
	}
	if err := fe.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := fut.Wait(); err != nil {
		t.Fatalf("pending write not flushed by Close: %v", err)
	}
	if _, err := fe.Read(3); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close = %v, want ErrClosed", err)
	}
	if err := fe.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second close = %v, want ErrClosed", err)
	}
}

// TestRealSystemRoundTrip: basic write-then-read through a real PP93 system,
// including cross-batch visibility.
func TestRealSystemRoundTrip(t *testing.T) {
	sys := newPP93System(t, 1, 3, protocol.Config{})
	fe, err := New(sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()
	for v := uint64(0); v < 20; v++ {
		if err := fe.Write(v, v*3+1); err != nil {
			t.Fatal(err)
		}
	}
	for v := uint64(0); v < 20; v++ {
		got, err := fe.Read(v)
		if err != nil {
			t.Fatal(err)
		}
		if got != v*3+1 {
			t.Fatalf("read %d = %d, want %d", v, got, v*3+1)
		}
	}
	if got, err := fe.Read(25); err != nil || got != 0 {
		t.Fatalf("unwritten read = %d, %v", got, err)
	}
	s := fe.Stats()
	if s.OpsIn != 41 || s.Batches == 0 || s.TotalRounds == 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestTinyQueueBackpressure: a QueueCap of 1 still completes a concurrent
// workload (submitters block instead of failing).
func TestTinyQueueBackpressure(t *testing.T) {
	sys := newPP93System(t, 1, 3, protocol.Config{})
	fe, err := New(sys, Config{MaxBatch: 8, QueueCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c uint64) {
			defer wg.Done()
			for i := uint64(0); i < 50; i++ {
				if err := fe.Write(c, c<<8|i); err != nil {
					errs <- err
					return
				}
				if _, err := fe.Read(c); err != nil {
					errs <- err
					return
				}
			}
		}(uint64(c))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if s := fe.Stats(); s.MaxQueueDepth > 1 {
		t.Fatalf("queue depth %d exceeded capacity", s.MaxQueueDepth)
	}
}

// newPP93System builds a fresh PP93 protocol system for q=2^m, degree n.
func newPP93System(t testing.TB, m, n int, cfg protocol.Config) *protocol.System {
	t.Helper()
	s, err := core.New(m, n)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := s.NewIndexer()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := protocol.NewSystem(s, idx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}
