package frontend

import (
	"sync"
	"sync/atomic"
	"testing"

	"detshmem/internal/obs"
)

// TestStatsReadYourOps pins the accounting order fixed in accountFlush:
// stats are updated under statsMu BEFORE the flush completes any futures,
// so once a synchronous Write returns, Stats() must already include that
// operation. Before the fix a waiter could be woken by its future and read
// a Stats snapshot that did not yet contain its own committed op.
func TestStatsReadYourOps(t *testing.T) {
	b := newFakeBackend(false)
	fe, err := New(b, Config{MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()

	for i := 1; i <= 50; i++ {
		if err := fe.Write(uint64(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
		if got := fe.Stats().OpsIn; got < int64(i) {
			t.Fatalf("after write %d returned, Stats().OpsIn = %d: flush completed the future before accounting", i, got)
		}
	}
}

// TestStatsConcurrentWithFlushes hammers Stats from several goroutines
// while writers drive a steady stream of flushes. Run under -race this
// pins the snapshot path to the same lock the dispatcher's accounting
// takes; the invariant checks catch torn or out-of-order snapshots even
// without the race detector.
func TestStatsConcurrentWithFlushes(t *testing.T) {
	col := obs.NewCollector()
	b := newFakeBackend(false)
	fe, err := New(b, Config{MaxBatch: 8, Collector: col})
	if err != nil {
		t.Fatal(err)
	}

	const writers, opsPerWriter, readers = 4, 300, 4
	var stop atomic.Bool
	var readersWG, writersWG sync.WaitGroup
	for r := 0; r < readers; r++ {
		readersWG.Add(1)
		go func() {
			defer readersWG.Done()
			var lastOps int64
			for !stop.Load() {
				s := fe.Stats()
				// Monotonicity: admitted ops never go backwards.
				if s.OpsIn < lastOps {
					t.Errorf("OpsIn went backwards: %d after %d", s.OpsIn, lastOps)
					return
				}
				lastOps = s.OpsIn
				// Combining can only remove requests, never add them, and
				// every admitted op is exactly one of issued / combined /
				// coalesced / forwarded — a torn snapshot breaks the sum.
				if s.RequestsOut > s.OpsIn {
					t.Errorf("torn snapshot: RequestsOut %d > OpsIn %d", s.RequestsOut, s.OpsIn)
					return
				}
				if s.RequestsOut+s.CombinedReads+s.CoalescedWrites+s.ForwardedReads != s.OpsIn {
					t.Errorf("torn snapshot: %d out + %d combined + %d coalesced + %d forwarded != %d in",
						s.RequestsOut, s.CombinedReads, s.CoalescedWrites, s.ForwardedReads, s.OpsIn)
					return
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < opsPerWriter; i++ {
				v := uint64(w*opsPerWriter + i)
				if err := fe.Write(v, v); err != nil {
					t.Errorf("write: %v", err)
					return
				}
				if i%16 == 0 {
					if _, err := fe.Read(v); err != nil {
						t.Errorf("read: %v", err)
						return
					}
				}
			}
		}(w)
	}
	writersWG.Wait()
	stop.Store(true)
	readersWG.Wait()

	if err := fe.Close(); err != nil {
		t.Fatal(err)
	}
	s := fe.Stats()
	if s.OpsIn < int64(writers*opsPerWriter) {
		t.Fatalf("final OpsIn %d < %d writes issued", s.OpsIn, writers*opsPerWriter)
	}
	if s.RequestsOut+s.CombinedReads+s.CoalescedWrites+s.ForwardedReads != s.OpsIn {
		t.Fatalf("final stats identity broken: %+v", s)
	}

	// The collector's dispatcher-side counters must agree with Stats.
	snap := col.Snapshot()
	flushes := snap["flushes_size_total"] + snap["flushes_idle_total"] +
		snap["flushes_explicit_total"] + snap["flushes_conflict_total"]
	if flushes != int64(s.Batches) {
		t.Fatalf("collector counted %d flushes, Stats.Batches = %d", flushes, s.Batches)
	}
	if snap["max_queue_depth"] != int64(s.MaxQueueDepth) {
		t.Fatalf("collector max queue depth %d, Stats %d", snap["max_queue_depth"], s.MaxQueueDepth)
	}
}
