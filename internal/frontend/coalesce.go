package frontend

import (
	"errors"

	"detshmem/internal/obs"
	"detshmem/internal/protocol"
)

// This file is the combining core, factored out of the dispatcher loop so
// alternative dispatchers — the channel loop below and the sharded
// direct-admission dispatcher in internal/shard — share one implementation
// of the coalescing rules, the result fan-out, and the stats accounting.
// The rules themselves are documented on the package.

// entry is a pending batch's state for one distinct variable.
type entry struct {
	write     bool   // a protocol Write will be issued for this variable
	val       uint64 // latest coalesced write value
	readFuts  []*Future
	writeFuts []*Future
	fwd       []*Future // read-after-write forwarded reads
	fwdVals   []uint64  // value each forwarded read observes
}

// Pending is one batch under construction: the coalesced view of every
// operation admitted since the last flush. It is not safe for concurrent
// use; callers serialize admission (the Frontend through its dispatcher
// goroutine, the shard dispatcher under its admission mutex) — that
// serialization is what makes admission order the commit order.
//
// A Pending recycles its per-variable entries across Reset cycles, so a
// dispatcher that reuses one (or a small pool) admits and flushes without
// allocating in steady state.
type Pending struct {
	entries map[uint64]*entry
	order   []uint64
	ops     int      // operations admitted (≥ len(order) once combining bites)
	free    []*entry // recycled entries
}

// NewPending returns an empty batch sized for about capacity distinct
// variables.
func NewPending(capacity int) *Pending {
	return &Pending{entries: make(map[uint64]*entry, capacity)}
}

// Distinct is the number of distinct variables in the batch — the size of
// the protocol batch a flush would issue.
func (p *Pending) Distinct() int { return len(p.order) }

// Ops is the number of client operations admitted into the batch.
func (p *Pending) Ops() int { return p.ops }

// WriteConflicts reports whether admitting a write to v would break the
// batch's EREW shape: v already carries an issued read, so the write would
// either reorder that read after itself or duplicate the variable. The
// caller must flush the batch before admitting such a write.
func (p *Pending) WriteConflicts(v uint64) bool {
	e := p.entries[v]
	return e != nil && !e.write
}

// newEntry installs a fresh (or recycled) entry for v.
func (p *Pending) newEntry(v uint64) *entry {
	var e *entry
	if n := len(p.free); n > 0 {
		e = p.free[n-1]
		p.free = p.free[:n-1]
	} else {
		e = &entry{}
	}
	p.entries[v] = e
	p.order = append(p.order, v)
	return e
}

// Read admits one read with commit sequence seq, combining it with an
// already-issued read or forwarding a pending write's value.
func (p *Pending) Read(seq, v uint64, fut *Future) {
	fut.seq = seq
	e := p.entries[v]
	switch {
	case e == nil:
		e = p.newEntry(v)
		e.readFuts = append(e.readFuts, fut)
	case e.write: // read after pending write: forward its value
		e.fwd = append(e.fwd, fut)
		e.fwdVals = append(e.fwdVals, e.val)
	default: // read joining an issued read
		e.readFuts = append(e.readFuts, fut)
	}
	p.ops++
}

// Write admits one write with commit sequence seq, coalescing with an
// earlier write (last writer wins). Admitting a write that WriteConflicts
// panics: the dispatcher must flush first, and the two dispatchers enforce
// that at distinct spots (channel loop vs admission mutex), so a miss here
// is a dispatcher bug, not a client error.
func (p *Pending) Write(seq, v, val uint64, fut *Future) {
	fut.seq = seq
	e := p.entries[v]
	if e == nil {
		e = p.newEntry(v)
		e.write = true
	} else if !e.write {
		panic("frontend: write admitted over an issued read; flush the batch first")
	}
	e.val = val
	e.writeFuts = append(e.writeFuts, fut)
	p.ops++
}

// Requests serializes the batch into protocol requests in admission order,
// reusing buf's backing array when it is large enough (the zero-alloc flush
// path hands the same buffer back every flush).
func (p *Pending) Requests(buf []protocol.Request) []protocol.Request {
	if cap(buf) < len(p.order) {
		buf = make([]protocol.Request, 0, len(p.order))
	}
	buf = buf[:0]
	for _, v := range p.order {
		e := p.entries[v]
		if e.write {
			buf = append(buf, protocol.Request{Var: v, Op: protocol.Write, Value: e.val})
		} else {
			buf = append(buf, protocol.Request{Var: v, Op: protocol.Read})
		}
	}
	return buf
}

// Complete fans the backend's result (or error) out to every combined
// waiter, attributing errors per request. res holds the values for the
// request order Requests produced; on a whole-batch error res may be nil.
// An ErrIncomplete err with a non-nil res fails only the requests that
// missed their quorum and completes the rest normally — degraded-mode
// serving: a batch with some unreachable variables still commits its
// healthy futures. Stranded requests (live copies below quorum) get
// protocol.ErrQuorumUnreachable; requests that merely exhausted the
// iteration budget get the batch's ErrIncomplete-class error.
func (p *Pending) Complete(res *protocol.Result, err error) {
	incomplete := err != nil && errors.Is(err, protocol.ErrIncomplete) && res != nil
	var unfinished map[int]error // nil on the happy path; lookups on nil are fine
	if incomplete {
		unfinished = make(map[int]error, len(res.Metrics.Unfinished))
		for _, r := range res.Metrics.Unfinished {
			unfinished[r] = protocol.ErrIncomplete
		}
		for _, r := range res.Metrics.Stranded {
			unfinished[r] = protocol.ErrQuorumUnreachable
		}
	}
	for i, v := range p.order {
		e := p.entries[v]
		reqErr := err
		if incomplete {
			reqErr = unfinished[i]
		}
		switch {
		case reqErr != nil:
			// Whole-batch failure, or this request missed its quorum: every
			// waiter on the variable (including forwarded reads riding a
			// failed write) learns the error.
			for _, fut := range e.readFuts {
				fut.complete(0, reqErr)
			}
			for _, fut := range e.writeFuts {
				fut.complete(0, reqErr)
			}
			for _, fut := range e.fwd {
				fut.complete(0, reqErr)
			}
		case e.write:
			for _, fut := range e.writeFuts {
				fut.complete(0, nil)
			}
			for j, fut := range e.fwd {
				fut.complete(e.fwdVals[j], nil)
			}
		default:
			for _, fut := range e.readFuts {
				fut.complete(res.Values[i], nil)
			}
		}
	}
}

// Auditor observes the committed operation stream in commit order — one
// call per batch entry, in batch order, batches in flush order. The
// dispatchers call it from their single flush goroutine between accounting
// and future fan-out, so implementations are fed by exactly one goroutine
// per dispatcher and the calls must not block or allocate (they sit on the
// flush hot path). internal/consistency's sampling Auditor is the
// production implementation.
type Auditor interface {
	// AuditRead: a committed read of v returned val.
	AuditRead(v, val uint64)
	// AuditWrite: a committed write left v holding val (after last-writer-
	// wins coalescing, val is what the store now holds).
	AuditWrite(v, val uint64)
	// AuditFailed: the operation's request failed (whole-batch error or a
	// per-request quorum verdict); val carries a failed write's value.
	AuditFailed(v, val uint64, write bool)
}

// Audit feeds the batch's per-variable outcome to an auditor, mirroring
// Complete's per-request error attribution: entries whose request failed
// report AuditFailed, committed writes report their final coalesced value,
// committed reads their returned value. Like Complete it must run before
// Reset; dispatchers call it just before Complete so the audit stream is
// exactly the commit-order entry stream. Allocation-free on the healthy
// path (err == nil).
func (p *Pending) Audit(a Auditor, res *protocol.Result, err error) {
	incomplete := err != nil && errors.Is(err, protocol.ErrIncomplete) && res != nil
	var unfinished map[int]error
	if incomplete {
		unfinished = make(map[int]error, len(res.Metrics.Unfinished))
		for _, r := range res.Metrics.Unfinished {
			unfinished[r] = protocol.ErrIncomplete
		}
		for _, r := range res.Metrics.Stranded {
			unfinished[r] = protocol.ErrQuorumUnreachable
		}
	}
	for i, v := range p.order {
		e := p.entries[v]
		reqErr := err
		if incomplete {
			reqErr = unfinished[i]
		}
		switch {
		case reqErr != nil:
			a.AuditFailed(v, e.val, e.write)
		case e.write:
			a.AuditWrite(v, e.val)
		default:
			a.AuditRead(v, res.Values[i])
		}
	}
}

// Reset clears the batch for reuse, recycling its entries. Future
// references are dropped so completed futures stay collectable.
func (p *Pending) Reset() {
	for _, v := range p.order {
		e := p.entries[v]
		clear(e.readFuts)
		clear(e.writeFuts)
		clear(e.fwd)
		e.readFuts = e.readFuts[:0]
		e.writeFuts = e.writeFuts[:0]
		e.fwd = e.fwd[:0]
		e.fwdVals = e.fwdVals[:0]
		e.write = false
		p.free = append(p.free, e)
		delete(p.entries, v)
	}
	p.order = p.order[:0]
	p.ops = 0
}

// NewFuture returns an unresolved future for an external dispatcher to
// admit into a Pending. The Frontend mints its own futures; only
// alternative dispatchers (internal/shard) need this.
func NewFuture() *Future { return &Future{} }

// Stats aggregates combining metrics over every flushed batch. They extend
// the per-batch protocol.Metrics with the combining view: how many client
// operations entered versus how many protocol requests left.
type Stats struct {
	Batches         int   // batches flushed
	OpsIn           int64 // client operations admitted into flushed batches
	RequestsOut     int64 // protocol requests issued
	CombinedReads   int64 // reads that shared an already-issued read
	CoalescedWrites int64 // writes absorbed by a later write to the same var
	ForwardedReads  int64 // reads served from a pending write, no request
	SizeFlushes     int64 // batches flushed at MaxBatch distinct variables
	IdleFlushes     int64 // batches flushed because the queue ran dry
	ExplicitFlushes int64 // batches flushed by Flush or Close
	ConflictFlushes int64 // batches flushed by a write-after-read conflict
	MaxQueueDepth   int   // deepest submission queue observed at admission
	TotalRounds     int64 // protocol MPC rounds consumed by flushed batches
	CopyAccesses    int64 // protocol copy accesses across flushed batches
	MaxPhi          int   // largest per-batch Φ (max phase iterations)
	Unfinished      int64 // requests that missed their quorum (failures)
	Stranded        int64 // requests whose live copies fell below quorum
	RetriedBids     int64 // bids re-selected onto surviving copies
	FailedBatches   int   // batches rejected by the backend outright
}

// Account folds one flushed batch into the stats. Dispatchers must call it
// under the same lock their Stats snapshot takes, and before the batch's
// futures complete: completing first opens a torn-read window where a
// client whose Wait returned cannot find its own committed operation in a
// snapshot (read-your-ops consistency).
func (s *Stats) Account(p *Pending, requestsOut int, res *protocol.Result, err error, cause obs.FlushCause) {
	s.Batches++
	s.OpsIn += int64(p.ops)
	s.RequestsOut += int64(requestsOut)
	for _, v := range p.order {
		e := p.entries[v]
		s.ForwardedReads += int64(len(e.fwd))
		if !e.write && len(e.readFuts) > 1 {
			s.CombinedReads += int64(len(e.readFuts) - 1)
		}
		if e.write && len(e.writeFuts) > 1 {
			s.CoalescedWrites += int64(len(e.writeFuts) - 1)
		}
	}
	switch cause {
	case obs.FlushIdle:
		s.IdleFlushes++
	case obs.FlushExplicit:
		s.ExplicitFlushes++
	case obs.FlushConflict:
		s.ConflictFlushes++
	default:
		s.SizeFlushes++
	}
	if res != nil {
		s.TotalRounds += int64(res.Metrics.TotalRounds)
		s.CopyAccesses += int64(res.Metrics.CopyAccesses)
		if res.Metrics.MaxIterations > s.MaxPhi {
			s.MaxPhi = res.Metrics.MaxIterations
		}
		s.Unfinished += int64(len(res.Metrics.Unfinished))
		s.Stranded += int64(len(res.Metrics.Stranded))
		s.RetriedBids += int64(res.Metrics.RetriedBids)
	}
	if err != nil && !(errors.Is(err, protocol.ErrIncomplete) && res != nil) {
		s.FailedBatches++
	}
}

// Merge folds o into s: counters add, high-water marks take the max. The
// shard layer uses it to aggregate per-shard dispatcher stats into a
// service-wide view.
func (s *Stats) Merge(o Stats) {
	s.Batches += o.Batches
	s.OpsIn += o.OpsIn
	s.RequestsOut += o.RequestsOut
	s.CombinedReads += o.CombinedReads
	s.CoalescedWrites += o.CoalescedWrites
	s.ForwardedReads += o.ForwardedReads
	s.SizeFlushes += o.SizeFlushes
	s.IdleFlushes += o.IdleFlushes
	s.ExplicitFlushes += o.ExplicitFlushes
	s.ConflictFlushes += o.ConflictFlushes
	if o.MaxQueueDepth > s.MaxQueueDepth {
		s.MaxQueueDepth = o.MaxQueueDepth
	}
	s.TotalRounds += o.TotalRounds
	s.CopyAccesses += o.CopyAccesses
	if o.MaxPhi > s.MaxPhi {
		s.MaxPhi = o.MaxPhi
	}
	s.Unfinished += o.Unfinished
	s.Stranded += o.Stranded
	s.RetriedBids += o.RetriedBids
	s.FailedBatches += o.FailedBatches
}

// CombiningRate is the fraction of operations that did not become protocol
// requests: 1 − RequestsOut/OpsIn. Zero when nothing combined (or nothing
// ran).
func (s Stats) CombiningRate() float64 {
	if s.OpsIn == 0 {
		return 0
	}
	return 1 - float64(s.RequestsOut)/float64(s.OpsIn)
}
