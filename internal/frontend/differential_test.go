package frontend

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"detshmem/internal/baseline"
	"detshmem/internal/core"
	"detshmem/internal/protocol"
)

// The differential stress test: many goroutine clients hammer the frontend
// with overlapping hot-spot traffic, every operation records the commit
// sequence number the dispatcher assigned it, and afterwards a plain
// map[uint64]uint64 replays all operations in sequence order — every read
// must have returned exactly the oracle's value at its point in the order.
// This is the linearizability check made executable: the frontend's
// combining (read sharing, last-writer-wins coalescing, read-after-write
// forwarding, conflict flushes) must be invisible to clients.
//
// The matrix covers every Mapper in the repository (PP93 q=2 and q=4, MV,
// single-copy, UW) under both MPC engines and 1..64 clients. A full run
// commits > 10^5 operations; -short (as in the -race CI lane) shrinks the
// client/op counts but keeps the whole matrix.

// record is one committed operation as a client observed it.
type record struct {
	seq   uint64
	write bool
	v     uint64
	val   uint64 // written value (writes) or returned value (reads)
}

// diffCase is one backend geometry under test.
type diffCase struct {
	name string
	vars uint64
	sys  func(t *testing.T, cfg protocol.Config) *protocol.System
}

// Schemes are built fresh per configuration so each run starts from a
// zeroed store; the PP93 instances share their (expensive) scheme+indexer.
var (
	diffOnce  sync.Once
	diffCores map[string]struct {
		s   *core.Scheme
		idx core.Indexer
	}
)

func diffSetup(t testing.TB) {
	diffOnce.Do(func() {
		diffCores = make(map[string]struct {
			s   *core.Scheme
			idx core.Indexer
		})
		for name, mn := range map[string][2]int{"pp93-q2": {1, 3}, "pp93-q4": {2, 3}} {
			s, err := core.New(mn[0], mn[1])
			if err != nil {
				t.Fatal(err)
			}
			idx, err := s.NewIndexer()
			if err != nil {
				t.Fatal(err)
			}
			diffCores[name] = struct {
				s   *core.Scheme
				idx core.Indexer
			}{s, idx}
		}
	})
}

func diffCases(t *testing.T) []diffCase {
	diffSetup(t)
	ppSys := func(name string) func(*testing.T, protocol.Config) *protocol.System {
		return func(t *testing.T, cfg protocol.Config) *protocol.System {
			c := diffCores[name]
			sys, err := protocol.NewSystem(c.s, c.idx, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return sys
		}
	}
	generic := func(build func() (protocol.Mapper, error)) func(*testing.T, protocol.Config) *protocol.System {
		return func(t *testing.T, cfg protocol.Config) *protocol.System {
			m, err := build()
			if err != nil {
				t.Fatal(err)
			}
			sys, err := protocol.NewGenericSystem(m, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return sys
		}
	}
	return []diffCase{
		{"pp93-q2", diffCores["pp93-q2"].idx.M(), ppSys("pp93-q2")},
		{"pp93-q4", diffCores["pp93-q4"].idx.M(), ppSys("pp93-q4")},
		{"mv-c2", 4096, generic(func() (protocol.Mapper, error) {
			return baseline.NewMV(64, 4096, 2)
		})},
		{"single", 4096, generic(func() (protocol.Mapper, error) {
			return baseline.NewSingleCopy(64, 4096, baseline.PlaceInterleaved, 0)
		})},
		{"uw-c2", 4096, generic(func() (protocol.Mapper, error) {
			return baseline.NewUW(64, 4096, 2, 7)
		})},
	}
}

// runClients drives the frontend with hot-spot traffic and returns every
// committed operation. Clients submit asynchronously in windows so that
// batches genuinely combine, and record each future after it resolves.
func runClients(t *testing.T, fe *Frontend, vars uint64, clients, opsPerClient int, seed int64) []record {
	t.Helper()
	const window = 32
	const hotVars = 8
	var (
		mu  sync.Mutex
		all []record
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(c)*7919))
			recs := make([]record, 0, opsPerClient)
			type slot struct {
				fut   *Future
				write bool
				v     uint64
				val   uint64
			}
			pending := make([]slot, 0, window)
			drain := func() {
				for _, s := range pending {
					got, err := s.fut.Wait()
					if err != nil {
						t.Errorf("client %d: %v", c, err)
						return
					}
					r := record{seq: s.fut.Seq(), write: s.write, v: s.v, val: got}
					if s.write {
						r.val = s.val
					}
					recs = append(recs, r)
				}
				pending = pending[:0]
			}
			for i := 0; i < opsPerClient; i++ {
				v := uint64(rng.Int63n(hotVars))
				if rng.Intn(100) >= 60 { // 60% of traffic on the hot set
					v = uint64(rng.Int63n(int64(vars)))
				}
				if rng.Intn(100) < 40 { // 40% writes
					val := uint64(c)<<32 | uint64(i) | 1
					fut, err := fe.WriteAsync(v, val)
					if err != nil {
						t.Errorf("client %d: %v", c, err)
						return
					}
					pending = append(pending, slot{fut, true, v, val})
				} else {
					fut, err := fe.ReadAsync(v)
					if err != nil {
						t.Errorf("client %d: %v", c, err)
						return
					}
					pending = append(pending, slot{fut, false, v, 0})
				}
				if len(pending) == window {
					drain()
				}
			}
			drain()
			mu.Lock()
			all = append(all, recs...)
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	return all
}

// checkOracle replays the records in commit order against a plain map.
func checkOracle(t *testing.T, recs []record, expectOps int) {
	t.Helper()
	if len(recs) != expectOps {
		t.Fatalf("recorded %d ops, expected %d", len(recs), expectOps)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].seq < recs[j].seq })
	oracle := make(map[uint64]uint64)
	for i, r := range recs {
		if i > 0 && recs[i-1].seq == r.seq {
			t.Fatalf("duplicate commit sequence %d", r.seq)
		}
		if r.write {
			oracle[r.v] = r.val
			continue
		}
		if want := oracle[r.v]; r.val != want {
			t.Fatalf("seq %d: read of var %d returned %d, oracle says %d", r.seq, r.v, r.val, want)
		}
	}
}

// TestDifferentialOracle is the full matrix. It totals ≥ 10^5 committed
// operations in a full run (5 schemes × 2 engines × three client counts).
func TestDifferentialOracle(t *testing.T) {
	clientSweeps := []struct {
		clients, ops int
	}{{1, 1200}, {8, 500}, {64, 100}}
	if testing.Short() {
		clientSweeps = []struct {
			clients, ops int
		}{{1, 120}, {8, 60}, {64, 10}}
	}
	total := 0
	for _, tc := range diffCases(t) {
		for _, parallel := range []bool{false, true} {
			cfg := protocol.Config{Parallel: parallel}
			if parallel {
				cfg.Workers = 4
			}
			for _, sweep := range clientSweeps {
				name := fmt.Sprintf("%s/parallel=%v/clients=%d", tc.name, parallel, sweep.clients)
				t.Run(name, func(t *testing.T) {
					sys := tc.sys(t, cfg)
					fe, err := New(sys, Config{})
					if err != nil {
						t.Fatal(err)
					}
					recs := runClients(t, fe, tc.vars, sweep.clients, sweep.ops, int64(len(name)))
					if err := fe.Close(); err != nil {
						t.Fatal(err)
					}
					if t.Failed() {
						t.FailNow()
					}
					checkOracle(t, recs, sweep.clients*sweep.ops)
					s := fe.Stats()
					if s.OpsIn != int64(len(recs)) {
						t.Fatalf("stats OpsIn = %d, committed %d", s.OpsIn, len(recs))
					}
					if sweep.clients >= 64 && s.CombiningRate() <= 0 {
						t.Fatalf("no combining under %d concurrent clients: %+v", sweep.clients, s)
					}
				})
				total += sweep.clients * sweep.ops
			}
		}
	}
	if !testing.Short() && total < 100000 {
		t.Fatalf("matrix committed only %d ops, want >= 1e5", total)
	}
}
