// Package frontend bridges the paper's synchronous batch protocol to
// asynchronous concurrent traffic: protocol.System.Access serves one batch
// of pairwise-distinct variables and is not safe for concurrent use, while
// real clients are many goroutines issuing reads and writes whenever they
// like, often to the same hot variables.
//
// The Frontend is a request-combining service in the tradition of combining
// networks (and of the CRCW read/write combining already in internal/pram):
// clients submit operations on futures; a single dispatcher goroutine admits
// them in arrival order — that admission order is the commit order — and
// coalesces them into EREW-legal batches:
//
//   - reads of the same variable share one protocol Read request and all
//     receive its value (read combining);
//   - writes to the same variable collapse into the latest one, earlier
//     writers completing as overwritten (last-writer-wins coalescing);
//   - a read admitted after a write to the same variable in the same batch
//     is served the pending write's value directly and consumes no protocol
//     request at all (read-after-write forwarding);
//   - a write admitted after an issued read of the same variable cannot
//     join the batch (the variable would appear twice), so the batch is
//     flushed first — reads admitted earlier keep seeing the old value.
//
// A batch is flushed when it reaches MaxBatch distinct variables, when the
// submission queue runs dry (so latency stays bounded without timers), or on
// an explicit Flush. The bounded submission queue applies backpressure:
// submitters block when the dispatcher falls behind.
//
// Because one goroutine assigns commit sequence numbers and batches are
// applied in order, the service is linearizable: the differential stress
// test replays every operation in sequence order against a plain map and
// demands identical read values.
package frontend

import (
	"errors"
	"fmt"
	"sync"

	"detshmem/internal/obs"
	"detshmem/internal/protocol"
)

// Backend is the synchronous batch engine the frontend serializes access
// to. *protocol.System is the canonical implementation; tests substitute
// fakes.
type Backend interface {
	Access(reqs []protocol.Request) (*protocol.Result, error)
}

// BatchBackend is the allocation-free flush path: backends that also
// implement it (as *protocol.System does) are driven through AccessInto
// with a request buffer and Result reused across flushes, so a steady
// stream of batches allocates nothing in the dispatcher's hot loop.
type BatchBackend interface {
	AccessInto(reqs []protocol.Request, res *protocol.Result) error
}

// ErrClosed is returned by operations submitted after Close.
var ErrClosed = errors.New("frontend: closed")

// Config tunes the frontend.
type Config struct {
	// MaxBatch is the flush threshold in distinct variables. 0 defaults to
	// the backend's module count N when the backend is a *protocol.System
	// (the largest batch the protocol accepts); otherwise it must be set.
	MaxBatch int
	// QueueCap bounds the submission queue; submitters block (backpressure)
	// when it is full. 0 defaults to 4×MaxBatch.
	QueueCap int
	// Collector, when non-nil, receives the dispatcher-side observability:
	// queue-depth samples at admission and flush-cause counts. Batch-level
	// protocol metrics flow through the backend's own instrumentation
	// (protocol.Config.Observer / Recorder), typically the same collector.
	Collector *obs.Collector
}

// Frontend is the combining service. All methods are safe for concurrent
// use by any number of goroutines.
type Frontend struct {
	backend Backend
	batch   BatchBackend // non-nil when backend supports the reuse path
	cfg     Config

	ops chan op

	// Dispatcher-only flush scratch, reused across batches.
	reqs []protocol.Request
	res  protocol.Result

	mu     sync.RWMutex // guards closed against in-flight submits
	closed bool

	doneOnce sync.Once
	done     chan struct{} // dispatcher exited

	statsMu sync.Mutex
	stats   Stats
}

// Future is the handle for one submitted operation. Wait blocks until the
// operation's batch has committed (or failed) and returns the read value
// (zero for writes) and any error.
type Future struct {
	done chan struct{}
	val  uint64
	err  error
	seq  uint64
}

// Wait blocks until the operation committed.
func (f *Future) Wait() (uint64, error) {
	<-f.done
	return f.val, f.err
}

// Seq is the operation's global commit sequence number, assigned at
// admission. It is valid only after Wait returns: operations with smaller
// Seq committed before operations with larger Seq.
func (f *Future) Seq() uint64 {
	<-f.done
	return f.seq
}

func (f *Future) complete(val uint64, err error) {
	f.val, f.err = val, err
	close(f.done)
}

type opKind uint8

const (
	opRead opKind = iota
	opWrite
	opFlush
	opClose
)

type op struct {
	kind opKind
	v    uint64
	val  uint64
	fut  *Future
	ack  chan struct{} // opFlush / opClose acknowledgement
}

// New builds a frontend over a backend and starts its dispatcher.
func New(b Backend, cfg Config) (*Frontend, error) {
	if b == nil {
		return nil, fmt.Errorf("frontend: nil backend")
	}
	if cfg.MaxBatch == 0 {
		if sys, ok := b.(*protocol.System); ok {
			cfg.MaxBatch = int(sys.Mapper.NumModules())
		} else {
			return nil, fmt.Errorf("frontend: MaxBatch required for backend %T", b)
		}
	}
	if cfg.MaxBatch < 1 {
		return nil, fmt.Errorf("frontend: MaxBatch %d must be positive", cfg.MaxBatch)
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = 4 * cfg.MaxBatch
	}
	if cfg.QueueCap < 1 {
		return nil, fmt.Errorf("frontend: QueueCap %d must be positive", cfg.QueueCap)
	}
	f := &Frontend{
		backend: b,
		cfg:     cfg,
		ops:     make(chan op, cfg.QueueCap),
		done:    make(chan struct{}),
	}
	if bb, ok := b.(BatchBackend); ok {
		f.batch = bb
	}
	go f.dispatch()
	return f, nil
}

// Read submits a read and blocks until its batch commits.
func (f *Frontend) Read(v uint64) (uint64, error) {
	fut, err := f.ReadAsync(v)
	if err != nil {
		return 0, err
	}
	return fut.Wait()
}

// Write submits a write and blocks until its batch commits.
func (f *Frontend) Write(v, val uint64) error {
	fut, err := f.WriteAsync(v, val)
	if err != nil {
		return err
	}
	_, err = fut.Wait()
	return err
}

// ReadAsync submits a read and returns immediately with its future.
func (f *Frontend) ReadAsync(v uint64) (*Future, error) {
	fut := &Future{done: make(chan struct{})}
	if err := f.submit(op{kind: opRead, v: v, fut: fut}); err != nil {
		return nil, err
	}
	return fut, nil
}

// WriteAsync submits a write and returns immediately with its future.
func (f *Frontend) WriteAsync(v, val uint64) (*Future, error) {
	fut := &Future{done: make(chan struct{})}
	if err := f.submit(op{kind: opWrite, v: v, val: val, fut: fut}); err != nil {
		return nil, err
	}
	return fut, nil
}

// Flush forces the pending batch out and blocks until it has committed.
func (f *Frontend) Flush() error {
	ack := make(chan struct{})
	if err := f.submit(op{kind: opFlush, ack: ack}); err != nil {
		return err
	}
	<-ack
	return nil
}

// Close flushes pending work, stops the dispatcher, and fails all later
// submissions with ErrClosed. It is safe to call once; subsequent calls
// return ErrClosed.
func (f *Frontend) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return ErrClosed
	}
	f.closed = true
	f.mu.Unlock()
	ack := make(chan struct{})
	f.ops <- op{kind: opClose, ack: ack}
	<-ack
	return nil
}

// submit enqueues one op, blocking while the queue is full. The read lock
// spans the send so Close cannot mark the frontend closed while a send is
// in flight (the dispatcher drains every op admitted before opClose).
func (f *Frontend) submit(o op) error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.closed {
		return ErrClosed
	}
	f.ops <- o
	return nil
}

// Stats returns a snapshot of the cumulative combining metrics.
func (f *Frontend) Stats() Stats {
	f.statsMu.Lock()
	defer f.statsMu.Unlock()
	return f.stats
}

// entry is the pending batch's state for one distinct variable.
type entry struct {
	write     bool   // a protocol Write will be issued for this variable
	val       uint64 // latest coalesced write value
	readFuts  []*Future
	writeFuts []*Future
	fwd       []*Future // read-after-write forwarded reads
	fwdVals   []uint64  // value each forwarded read observes
}

// pending is the batch under construction.
type pending struct {
	entries map[uint64]*entry
	order   []uint64
	ops     int // operations admitted (≥ len(order) once combining bites)
}

func newPending(capacity int) *pending {
	return &pending{entries: make(map[uint64]*entry, capacity)}
}

// dispatch is the single combining loop: admit in arrival order, flush on
// size, conflict, idleness, or explicit request.
func (f *Frontend) dispatch() {
	defer close(f.done)
	p := newPending(f.cfg.MaxBatch)
	var seq uint64
	for {
		var o op
		select {
		case o = <-f.ops:
		default:
			// Queue drained: commit what we have before blocking so no
			// client waits on an idle dispatcher.
			if len(p.order) > 0 {
				f.flush(p, flushIdle)
				p = newPending(f.cfg.MaxBatch)
			}
			o = <-f.ops
		}
		switch o.kind {
		case opRead, opWrite:
			seq++
			o.fut.seq = seq
			f.noteQueueDepth(len(f.ops))
			p = f.admit(p, o)
		case opFlush:
			if len(p.order) > 0 {
				f.flush(p, flushExplicit)
				p = newPending(f.cfg.MaxBatch)
			}
			close(o.ack)
		case opClose:
			if len(p.order) > 0 {
				f.flush(p, flushExplicit)
			}
			close(o.ack)
			return
		}
	}
}

// admit folds one operation into the pending batch, flushing first when the
// op conflicts (write after issued read of the same variable) and after
// when the batch reached MaxBatch distinct variables. It returns the batch
// to keep building.
func (f *Frontend) admit(p *pending, o op) *pending {
	e := p.entries[o.v]
	if o.kind == opWrite && e != nil && !e.write {
		// The variable already carries an issued read: adding a write would
		// either reorder the read after the write or duplicate the variable
		// in the batch. Commit the batch; the write opens the next one.
		f.flush(p, flushConflict)
		p = newPending(f.cfg.MaxBatch)
		e = nil
	}
	if e == nil {
		e = &entry{}
		p.entries[o.v] = e
		p.order = append(p.order, o.v)
		if o.kind == opWrite {
			e.write = true
			e.val = o.val
			e.writeFuts = append(e.writeFuts, o.fut)
		} else {
			e.readFuts = append(e.readFuts, o.fut)
		}
	} else {
		switch {
		case o.kind == opWrite: // e.write: last writer wins
			e.val = o.val
			e.writeFuts = append(e.writeFuts, o.fut)
		case e.write: // read after pending write: forward its value
			e.fwd = append(e.fwd, o.fut)
			e.fwdVals = append(e.fwdVals, e.val)
		default: // read joining an issued read
			e.readFuts = append(e.readFuts, o.fut)
		}
	}
	p.ops++
	if len(p.order) >= f.cfg.MaxBatch {
		f.flush(p, flushSize)
		p = newPending(f.cfg.MaxBatch)
	}
	return p
}

type flushCause int

const (
	flushSize flushCause = iota
	flushIdle
	flushExplicit
	flushConflict
)

// flush issues the batch's requests to the backend and fans results (or the
// error) back out to every combined waiter.
func (f *Frontend) flush(p *pending, cause flushCause) {
	if cap(f.reqs) < len(p.order) {
		f.reqs = make([]protocol.Request, len(p.order))
	}
	reqs := f.reqs[:len(p.order)]
	for i, v := range p.order {
		e := p.entries[v]
		if e.write {
			reqs[i] = protocol.Request{Var: v, Op: protocol.Write, Value: e.val}
		} else {
			reqs[i] = protocol.Request{Var: v, Op: protocol.Read}
		}
	}
	var res *protocol.Result
	var err error
	if f.batch != nil {
		err = f.batch.AccessInto(reqs, &f.res)
		if err == nil || errors.Is(err, protocol.ErrIncomplete) {
			res = &f.res
		}
	} else {
		res, err = f.backend.Access(reqs)
	}

	incomplete := err != nil && errors.Is(err, protocol.ErrIncomplete) && res != nil
	var unfinished map[int]bool // nil on the happy path; lookups on nil are fine
	if incomplete {
		unfinished = make(map[int]bool, len(res.Metrics.Unfinished))
		for _, r := range res.Metrics.Unfinished {
			unfinished[r] = true
		}
	}

	// Account the batch BEFORE any future completes. Completing first opened
	// a torn-read window: a client whose Wait had returned could call Stats
	// and not find its own committed operation in the snapshot (the
	// dispatcher was mid-flush, holding the update for after the fan-out).
	// Updating under statsMu first — the same lock Stats snapshots under —
	// makes the snapshot read-your-ops consistent for every waiter.
	f.accountFlush(p, reqs, res, err, incomplete, cause)

	for i, v := range p.order {
		e := p.entries[v]
		switch {
		case err != nil && (!incomplete || unfinished[i]):
			// Whole-batch failure, or this request missed its quorum: every
			// waiter on the variable (including forwarded reads riding a
			// failed write) learns the error.
			for _, fut := range e.readFuts {
				fut.complete(0, err)
			}
			for _, fut := range e.writeFuts {
				fut.complete(0, err)
			}
			for _, fut := range e.fwd {
				fut.complete(0, err)
			}
		case e.write:
			for _, fut := range e.writeFuts {
				fut.complete(0, nil)
			}
			for j, fut := range e.fwd {
				fut.complete(e.fwdVals[j], nil)
			}
		default:
			for _, fut := range e.readFuts {
				fut.complete(res.Values[i], nil)
			}
		}
	}
}

// accountFlush folds one flushed batch into Stats (under statsMu, the lock
// Stats snapshots under) and into the optional obs collector. It must run
// before the batch's futures complete; see the call site in flush.
func (f *Frontend) accountFlush(p *pending, reqs []protocol.Request, res *protocol.Result, err error, incomplete bool, cause flushCause) {
	f.statsMu.Lock()
	s := &f.stats
	s.Batches++
	s.OpsIn += int64(p.ops)
	s.RequestsOut += int64(len(reqs))
	for _, v := range p.order {
		e := p.entries[v]
		s.ForwardedReads += int64(len(e.fwd))
		if !e.write && len(e.readFuts) > 1 {
			s.CombinedReads += int64(len(e.readFuts) - 1)
		}
		if e.write && len(e.writeFuts) > 1 {
			s.CoalescedWrites += int64(len(e.writeFuts) - 1)
		}
	}
	switch cause {
	case flushSize:
		s.SizeFlushes++
	case flushIdle:
		s.IdleFlushes++
	case flushExplicit:
		s.ExplicitFlushes++
	case flushConflict:
		s.ConflictFlushes++
	}
	if res != nil {
		s.TotalRounds += int64(res.Metrics.TotalRounds)
		s.CopyAccesses += int64(res.Metrics.CopyAccesses)
		if res.Metrics.MaxIterations > s.MaxPhi {
			s.MaxPhi = res.Metrics.MaxIterations
		}
		s.Unfinished += int64(len(res.Metrics.Unfinished))
	}
	if err != nil && !incomplete {
		s.FailedBatches++
	}
	f.statsMu.Unlock()

	if c := f.cfg.Collector; c != nil {
		c.ObserveFlush(flushCauseObs(cause))
	}
}

// flushCauseObs maps the dispatcher's internal cause to the obs label.
func flushCauseObs(cause flushCause) obs.FlushCause {
	switch cause {
	case flushIdle:
		return obs.FlushIdle
	case flushExplicit:
		return obs.FlushExplicit
	case flushConflict:
		return obs.FlushConflict
	default:
		return obs.FlushSize
	}
}

func (f *Frontend) noteQueueDepth(depth int) {
	f.statsMu.Lock()
	if depth > f.stats.MaxQueueDepth {
		f.stats.MaxQueueDepth = depth
	}
	f.statsMu.Unlock()
	if c := f.cfg.Collector; c != nil {
		c.ObserveQueueDepth(depth)
	}
}

// Stats aggregates combining metrics over every flushed batch. They extend
// the per-batch protocol.Metrics with the combining view: how many client
// operations entered versus how many protocol requests left.
type Stats struct {
	Batches         int   // batches flushed
	OpsIn           int64 // client operations admitted into flushed batches
	RequestsOut     int64 // protocol requests issued
	CombinedReads   int64 // reads that shared an already-issued read
	CoalescedWrites int64 // writes absorbed by a later write to the same var
	ForwardedReads  int64 // reads served from a pending write, no request
	SizeFlushes     int64 // batches flushed at MaxBatch distinct variables
	IdleFlushes     int64 // batches flushed because the queue ran dry
	ExplicitFlushes int64 // batches flushed by Flush or Close
	ConflictFlushes int64 // batches flushed by a write-after-read conflict
	MaxQueueDepth   int   // deepest submission queue observed at admission
	TotalRounds     int64 // protocol MPC rounds consumed by flushed batches
	CopyAccesses    int64 // protocol copy accesses across flushed batches
	MaxPhi          int   // largest per-batch Φ (max phase iterations)
	Unfinished      int64 // requests that missed their quorum (failures)
	FailedBatches   int   // batches rejected by the backend outright
}

// CombiningRate is the fraction of operations that did not become protocol
// requests: 1 − RequestsOut/OpsIn. Zero when nothing combined (or nothing
// ran).
func (s Stats) CombiningRate() float64 {
	if s.OpsIn == 0 {
		return 0
	}
	return 1 - float64(s.RequestsOut)/float64(s.OpsIn)
}
