// Package frontend bridges the paper's synchronous batch protocol to
// asynchronous concurrent traffic: protocol.System.Access serves one batch
// of pairwise-distinct variables and is not safe for concurrent use, while
// real clients are many goroutines issuing reads and writes whenever they
// like, often to the same hot variables.
//
// The Frontend is a request-combining service in the tradition of combining
// networks (and of the CRCW read/write combining already in internal/pram):
// clients submit operations on futures; a single dispatcher goroutine admits
// them in arrival order — that admission order is the commit order — and
// coalesces them into EREW-legal batches:
//
//   - reads of the same variable share one protocol Read request and all
//     receive its value (read combining);
//   - writes to the same variable collapse into the latest one, earlier
//     writers completing as overwritten (last-writer-wins coalescing);
//   - a read admitted after a write to the same variable in the same batch
//     is served the pending write's value directly and consumes no protocol
//     request at all (read-after-write forwarding);
//   - a write admitted after an issued read of the same variable cannot
//     join the batch (the variable would appear twice), so the batch is
//     flushed first — reads admitted earlier keep seeing the old value.
//
// A batch is flushed when it reaches MaxBatch distinct variables, when the
// submission queue runs dry (so latency stays bounded without timers), or on
// an explicit Flush. The bounded submission queue applies backpressure:
// submitters block when the dispatcher falls behind.
//
// Because one goroutine assigns commit sequence numbers and batches are
// applied in order, the service is linearizable: the differential stress
// test replays every operation in sequence order against a plain map and
// demands identical read values.
package frontend

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"detshmem/internal/obs"
	"detshmem/internal/protocol"
)

// Backend is the synchronous batch engine the frontend serializes access
// to. *protocol.System is the canonical implementation; tests substitute
// fakes.
type Backend interface {
	Access(reqs []protocol.Request) (*protocol.Result, error)
}

// BatchBackend is the allocation-free flush path: backends that also
// implement it (as *protocol.System does) are driven through AccessInto
// with a request buffer and Result reused across flushes, so a steady
// stream of batches allocates nothing in the dispatcher's hot loop.
type BatchBackend interface {
	AccessInto(reqs []protocol.Request, res *protocol.Result) error
}

// RepairBackend is the optional self-healing hook: backends that expose a
// repair backlog (as *protocol.System does) get it pumped from the
// dispatcher's idle slack, so recovered modules rebuild even when no client
// traffic is flowing to piggyback repair rounds on.
type RepairBackend interface {
	RepairBacklog() int
	RepairStep() bool
}

// ErrClosed is returned by operations submitted after Close.
var ErrClosed = errors.New("frontend: closed")

// Config tunes the frontend.
type Config struct {
	// MaxBatch is the flush threshold in distinct variables. 0 defaults to
	// the backend's module count N when the backend is a *protocol.System
	// (the largest batch the protocol accepts); otherwise it must be set.
	MaxBatch int
	// QueueCap bounds the submission queue; submitters block (backpressure)
	// when it is full. 0 defaults to 4×MaxBatch.
	QueueCap int
	// Collector, when non-nil, receives the dispatcher-side observability:
	// queue-depth samples at admission and flush-cause counts. Batch-level
	// protocol metrics flow through the backend's own instrumentation
	// (protocol.Config.Observer / Recorder), typically the same collector.
	Collector *obs.Collector
	// Auditor, when non-nil, observes every committed operation in commit
	// order (the sampling consistency audit). Called only from the
	// dispatcher goroutine.
	Auditor Auditor
}

// Frontend is the combining service. All methods are safe for concurrent
// use by any number of goroutines.
type Frontend struct {
	backend Backend
	batch   BatchBackend  // non-nil when backend supports the reuse path
	repair  RepairBackend // non-nil when backend exposes a repair backlog
	cfg     Config

	ops chan op

	// Dispatcher-only flush scratch, reused across batches.
	reqs []protocol.Request
	res  protocol.Result

	mu     sync.RWMutex // guards closed against in-flight submits
	closed bool

	doneOnce sync.Once
	done     chan struct{} // dispatcher exited

	statsMu sync.Mutex
	stats   Stats
}

// Future is the handle for one submitted operation. Wait blocks until the
// operation's batch has committed (or failed) and returns the read value
// (zero for writes) and any error.
//
// The completion channel is created lazily, and only by a waiter that
// arrives while the operation is still in flight. Windowed clients wait on
// their futures after the whole window is submitted, so most futures
// complete before anyone waits and never allocate a channel — on the hot
// path that halves the allocations per operation.
type Future struct {
	state atomic.Uint32 // 0 = pending, 1 = complete
	mu    sync.Mutex    // guards lazy done creation against complete
	done  chan struct{}
	val   uint64
	err   error
	seq   uint64
}

// Wait blocks until the operation committed.
func (f *Future) Wait() (uint64, error) {
	f.wait()
	return f.val, f.err
}

// Seq is the operation's global commit sequence number, assigned at
// admission. It is valid only after Wait returns: operations with smaller
// Seq committed before operations with larger Seq.
func (f *Future) Seq() uint64 {
	f.wait()
	return f.seq
}

func (f *Future) wait() {
	if f.state.Load() == 1 {
		return
	}
	f.mu.Lock()
	if f.state.Load() == 1 {
		f.mu.Unlock()
		return
	}
	if f.done == nil {
		f.done = make(chan struct{})
	}
	ch := f.done
	f.mu.Unlock()
	<-ch
}

func (f *Future) complete(val uint64, err error) {
	f.val, f.err = val, err
	// The store is ordered after the payload writes; a waiter's fast-path
	// Load therefore observes them. The mutex pairs the store with any
	// concurrent lazy channel creation so no waiter parks unseen.
	f.mu.Lock()
	f.state.Store(1)
	if f.done != nil {
		close(f.done)
	}
	f.mu.Unlock()
}

type opKind uint8

const (
	opRead opKind = iota
	opWrite
	opFlush
	opClose
)

type op struct {
	kind opKind
	v    uint64
	val  uint64
	fut  *Future
	ack  chan struct{} // opFlush / opClose acknowledgement
}

// New builds a frontend over a backend and starts its dispatcher.
func New(b Backend, cfg Config) (*Frontend, error) {
	if b == nil {
		return nil, fmt.Errorf("frontend: nil backend")
	}
	if cfg.MaxBatch == 0 {
		if sys, ok := b.(*protocol.System); ok {
			cfg.MaxBatch = int(sys.Mapper.NumModules())
		} else {
			return nil, fmt.Errorf("frontend: MaxBatch required for backend %T", b)
		}
	}
	if cfg.MaxBatch < 1 {
		return nil, fmt.Errorf("frontend: MaxBatch %d must be positive", cfg.MaxBatch)
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = 4 * cfg.MaxBatch
	}
	if cfg.QueueCap < 1 {
		return nil, fmt.Errorf("frontend: QueueCap %d must be positive", cfg.QueueCap)
	}
	f := &Frontend{
		backend: b,
		cfg:     cfg,
		ops:     make(chan op, cfg.QueueCap),
		done:    make(chan struct{}),
	}
	if bb, ok := b.(BatchBackend); ok {
		f.batch = bb
	}
	if rb, ok := b.(RepairBackend); ok {
		f.repair = rb
	}
	go f.dispatch()
	return f, nil
}

// Read submits a read and blocks until its batch commits.
func (f *Frontend) Read(v uint64) (uint64, error) {
	fut, err := f.ReadAsync(v)
	if err != nil {
		return 0, err
	}
	return fut.Wait()
}

// Write submits a write and blocks until its batch commits.
func (f *Frontend) Write(v, val uint64) error {
	fut, err := f.WriteAsync(v, val)
	if err != nil {
		return err
	}
	_, err = fut.Wait()
	return err
}

// ReadAsync submits a read and returns immediately with its future.
func (f *Frontend) ReadAsync(v uint64) (*Future, error) {
	fut := &Future{}
	if err := f.submit(op{kind: opRead, v: v, fut: fut}); err != nil {
		return nil, err
	}
	return fut, nil
}

// WriteAsync submits a write and returns immediately with its future.
func (f *Frontend) WriteAsync(v, val uint64) (*Future, error) {
	fut := &Future{}
	if err := f.submit(op{kind: opWrite, v: v, val: val, fut: fut}); err != nil {
		return nil, err
	}
	return fut, nil
}

// Flush forces the pending batch out and blocks until it has committed.
func (f *Frontend) Flush() error {
	ack := make(chan struct{})
	if err := f.submit(op{kind: opFlush, ack: ack}); err != nil {
		return err
	}
	<-ack
	return nil
}

// Close flushes pending work, stops the dispatcher, and fails all later
// submissions with ErrClosed. It is safe to call once; subsequent calls
// return ErrClosed.
func (f *Frontend) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return ErrClosed
	}
	f.closed = true
	f.mu.Unlock()
	ack := make(chan struct{})
	f.ops <- op{kind: opClose, ack: ack}
	<-ack
	return nil
}

// submit enqueues one op, blocking while the queue is full. The read lock
// spans the send so Close cannot mark the frontend closed while a send is
// in flight (the dispatcher drains every op admitted before opClose).
func (f *Frontend) submit(o op) error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.closed {
		return ErrClosed
	}
	f.ops <- o
	return nil
}

// Stats returns a snapshot of the cumulative combining metrics.
func (f *Frontend) Stats() Stats {
	f.statsMu.Lock()
	defer f.statsMu.Unlock()
	return f.stats
}

// dispatch is the single combining loop: admit in arrival order, flush on
// size, conflict, idleness, or explicit request. The coalescing rules and
// fan-out live in Pending (coalesce.go), shared with the shard dispatcher;
// flushes here are synchronous, so one Pending is reset and reused.
func (f *Frontend) dispatch() {
	defer close(f.done)
	p := NewPending(f.cfg.MaxBatch)
	var seq uint64
	for {
		var o op
		select {
		case o = <-f.ops:
		default:
			// Queue drained: commit what we have before blocking so no
			// client waits on an idle dispatcher.
			if p.Distinct() > 0 {
				f.flush(p, obs.FlushIdle)
			}
			o = f.nextIdle()
		}
		switch o.kind {
		case opRead, opWrite:
			seq++
			f.noteQueueDepth(len(f.ops))
			if o.kind == opWrite {
				if p.WriteConflicts(o.v) {
					// The variable already carries an issued read: commit the
					// batch; the write opens the next one.
					f.flush(p, obs.FlushConflict)
				}
				p.Write(seq, o.v, o.val, o.fut)
			} else {
				p.Read(seq, o.v, o.fut)
			}
			if p.Distinct() >= f.cfg.MaxBatch {
				f.flush(p, obs.FlushSize)
			}
		case opFlush:
			if p.Distinct() > 0 {
				f.flush(p, obs.FlushExplicit)
			}
			close(o.ack)
		case opClose:
			if p.Distinct() > 0 {
				f.flush(p, obs.FlushExplicit)
			}
			close(o.ack)
			return
		}
	}
}

// nextIdle blocks for the next operation. While the backend has repair work
// queued, the idle slack goes into pumping it — one repair round per poll of
// the submission queue, so an admitted operation is picked up within a
// round. A paused backlog (RepairStep false: repair is waiting for a fault
// to clear) falls through to a plain blocking receive rather than spinning.
func (f *Frontend) nextIdle() op {
	if f.repair != nil {
		for f.repair.RepairBacklog() > 0 {
			select {
			case o := <-f.ops:
				return o
			default:
			}
			if !f.repair.RepairStep() {
				break
			}
		}
	}
	return <-f.ops
}

// flush issues the batch's requests to the backend, accounts the batch
// (before any future completes — see Stats.Account), fans results out, and
// resets the batch for reuse. An ErrIncomplete-class error keeps res: the
// committed requests complete with their values and only the unfinished
// ones fail, each with its per-request verdict (see Pending.Complete).
func (f *Frontend) flush(p *Pending, cause obs.FlushCause) {
	f.reqs = p.Requests(f.reqs)
	var res *protocol.Result
	var err error
	if f.batch != nil {
		err = f.batch.AccessInto(f.reqs, &f.res)
		if err == nil || errors.Is(err, protocol.ErrIncomplete) {
			res = &f.res
		}
	} else {
		res, err = f.backend.Access(f.reqs)
	}

	f.statsMu.Lock()
	f.stats.Account(p, len(f.reqs), res, err, cause)
	f.statsMu.Unlock()
	if c := f.cfg.Collector; c != nil {
		c.ObserveFlush(cause)
	}
	if a := f.cfg.Auditor; a != nil {
		p.Audit(a, res, err)
	}

	p.Complete(res, err)
	p.Reset()
}

func (f *Frontend) noteQueueDepth(depth int) {
	f.statsMu.Lock()
	if depth > f.stats.MaxQueueDepth {
		f.stats.MaxQueueDepth = depth
	}
	f.statsMu.Unlock()
	if c := f.cfg.Collector; c != nil {
		c.ObserveQueueDepth(depth)
	}
}
