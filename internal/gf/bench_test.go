package gf

import (
	"math/rand"
	"testing"
)

func benchExt(b *testing.B, m, n int) *Ext {
	b.Helper()
	e, err := NewExt(m, n)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

func BenchmarkExtMul(b *testing.B) {
	e := benchExt(b, 1, 9)
	rng := rand.New(rand.NewSource(1))
	xs := make([]uint32, 1024)
	for i := range xs {
		xs[i] = uint32(rng.Intn(int(e.Order)))
	}
	b.ResetTimer()
	var acc uint32 = 1
	for i := 0; i < b.N; i++ {
		acc = e.Mul(acc|1, xs[i&1023]|1)
	}
	_ = acc
}

func BenchmarkExtInv(b *testing.B) {
	e := benchExt(b, 1, 9)
	for i := 0; i < b.N; i++ {
		_ = e.Inv(uint32(i)%(e.Order-1) + 1)
	}
}

func BenchmarkExtLog(b *testing.B) {
	e := benchExt(b, 1, 9)
	for i := 0; i < b.N; i++ {
		_ = e.Log(uint32(i)%(e.Order-1) + 1)
	}
}

func BenchmarkNewExt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := NewExt(1, 9); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuadPairUnpair(b *testing.B) {
	q, err := NewQuad(9)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		x, y := q.Unpair(uint32(i)%(q.Ext2.Order-1) + 1)
		_ = q.Pair(x, y)
	}
}

// Batch-kernel micro-benchmarks: per-element cost of the vectorized forms vs
// the scalar loops they replace, so kernel regressions show up in benchstat
// directly rather than only through end-to-end resolution numbers.

func benchVecOperands(b *testing.B, e *Ext) ([]uint32, []uint32, []uint32) {
	b.Helper()
	rng := rand.New(rand.NewSource(3))
	xs := make([]uint32, 1024)
	ys := make([]uint32, 1024)
	for i := range xs {
		xs[i] = uint32(rng.Intn(int(e.Order)-1)) + 1
		ys[i] = uint32(rng.Intn(int(e.Order)-1)) + 1
	}
	return xs, ys, make([]uint32, 1024)
}

func BenchmarkMulScalarVec(b *testing.B) {
	e := benchExt(b, 1, 9)
	xs, _, dst := benchVecOperands(b, e)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.MulScalarVec(dst, xs, 7)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(xs)), "ns/elem")
}

func BenchmarkMulScalarLoop(b *testing.B) {
	e := benchExt(b, 1, 9)
	xs, _, dst := benchVecOperands(b, e)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, x := range xs {
			dst[j] = e.Mul(x, 7)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(xs)), "ns/elem")
}

func BenchmarkMulVec(b *testing.B) {
	e := benchExt(b, 1, 9)
	xs, ys, dst := benchVecOperands(b, e)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.MulVec(dst, xs, ys)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(xs)), "ns/elem")
}

func BenchmarkPowVec(b *testing.B) {
	e := benchExt(b, 1, 9)
	xs, _, dst := benchVecOperands(b, e)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.PowVec(dst, xs, 13)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(xs)), "ns/elem")
}

func BenchmarkFrobVec(b *testing.B) {
	e := benchExt(b, 1, 9)
	xs, _, dst := benchVecOperands(b, e)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.FrobVec(dst, xs)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(xs)), "ns/elem")
}

func BenchmarkBaseUnitLogVec(b *testing.B) {
	e := benchExt(b, 1, 9)
	xs, _, dst := benchVecOperands(b, e)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.BaseUnitLogVec(dst, xs)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(xs)), "ns/elem")
}
