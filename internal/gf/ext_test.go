package gf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// extCases are the (m, n) parameter pairs the memory scheme actually uses:
// q = 2 with n up to 12 and q ∈ {4, 8} with small n.
var extCases = []struct{ m, n int }{
	{1, 3}, {1, 5}, {1, 7}, {1, 9}, {1, 11}, {1, 4}, {1, 6},
	{2, 3}, {2, 4}, {2, 5},
	{3, 3}, {3, 4},
	{4, 3},
}

func TestNewExtParameters(t *testing.T) {
	for _, c := range extCases {
		e, err := NewExt(c.m, c.n)
		if err != nil {
			t.Fatalf("NewExt(%d,%d): %v", c.m, c.n, err)
		}
		wantOrder := uint32(1) << uint(c.m*c.n)
		if e.Order != wantOrder {
			t.Errorf("NewExt(%d,%d): order %d, want %d", c.m, c.n, e.Order, wantOrder)
		}
		if e.Q != 1<<uint(c.m) {
			t.Errorf("NewExt(%d,%d): base order %d", c.m, c.n, e.Q)
		}
		if len(e.Modulus) != c.n+1 || e.Modulus[c.n] != 1 {
			t.Errorf("NewExt(%d,%d): modulus not monic of degree n: %v", c.m, c.n, e.Modulus)
		}
	}
}

func TestNewExtRejectsOversize(t *testing.T) {
	if _, err := NewExt(4, 8); err == nil { // 32 bits > MaxBits
		t.Error("expected table-budget error")
	}
	if _, err := NewExt(2, 1); err == nil {
		t.Error("expected degree error")
	}
}

func TestExtAxiomsQuick(t *testing.T) {
	for _, c := range []struct{ m, n int }{{1, 5}, {2, 3}, {3, 3}} {
		e, err := NewExt(c.m, c.n)
		if err != nil {
			t.Fatal(err)
		}
		mask := e.Order - 1
		cfg := &quick.Config{MaxCount: 300}
		props := map[string]interface{}{
			"assoc": func(a, b, cc uint32) bool {
				a, b, cc = a&mask, b&mask, cc&mask
				return e.Mul(e.Mul(a, b), cc) == e.Mul(a, e.Mul(b, cc))
			},
			"distrib": func(a, b, cc uint32) bool {
				a, b, cc = a&mask, b&mask, cc&mask
				return e.Mul(a, e.Add(b, cc)) == e.Add(e.Mul(a, b), e.Mul(a, cc))
			},
			"inverse": func(a uint32) bool {
				a &= mask
				return a == 0 || e.Mul(a, e.Inv(a)) == 1
			},
		}
		for name, p := range props {
			if err := quick.Check(p, cfg); err != nil {
				t.Errorf("F_{%d^%d} %s: %v", e.Q, c.n, name, err)
			}
		}
	}
}

// TestExtFrobeniusSubfield checks that the packed "constant polynomial"
// subfield coincides with the Frobenius-fixed subfield {a : a^q = a},
// validating InBase.
func TestExtFrobeniusSubfield(t *testing.T) {
	for _, c := range []struct{ m, n int }{{1, 4}, {2, 3}, {3, 3}} {
		e, err := NewExt(c.m, c.n)
		if err != nil {
			t.Fatal(err)
		}
		for a := uint32(0); a < e.Order; a++ {
			fixed := e.Pow(a, int(e.Q)) == a
			if fixed != e.InBase(a) {
				t.Fatalf("F_{%d^%d}: element %#x: Frobenius-fixed=%v InBase=%v",
					e.Q, c.n, a, fixed, e.InBase(a))
			}
		}
	}
}

// TestExtBaseAgreement checks that multiplying two base-field elements inside
// the extension matches base-field multiplication on the packed values.
func TestExtBaseAgreement(t *testing.T) {
	e, err := NewExt(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	for a := uint32(0); a < e.Q; a++ {
		for b := uint32(0); b < e.Q; b++ {
			if e.Mul(a, b) != e.Base.Mul(a, b) {
				t.Fatalf("base/ext multiplication disagree at %d*%d", a, b)
			}
		}
	}
}

func TestExtPGammaOps(t *testing.T) {
	e, err := NewExt(2, 3) // q=4, n=3
	if err != nil {
		t.Fatal(err)
	}
	if e.PSize() != 16 {
		t.Fatalf("PSize = %d, want q^{n-1} = 16", e.PSize())
	}
	seen := make(map[uint32]bool)
	for k := uint32(0); k < e.PSize(); k++ {
		p := e.PElem(k)
		if !e.InP(p) {
			t.Fatalf("PElem(%d) = %#x not in P_γ", k, p)
		}
		if e.PIndex(p) != k {
			t.Fatalf("PIndex(PElem(%d)) = %d", k, e.PIndex(p))
		}
		if seen[p] {
			t.Fatalf("PElem not injective at %d", k)
		}
		seen[p] = true
	}
	// Every element splits uniquely as p + a with p ∈ P_γ, a ∈ F_q
	// (the fact underlying Lemma 3's {p+a} = F_{q^n}).
	for v := uint32(0); v < e.Order; v++ {
		p, a := e.ClearConst(v), e.ConstTerm(v)
		if !e.InP(p) || !e.InBase(a) || e.Add(p, a) != v {
			t.Fatalf("decomposition failed for %#x", v)
		}
	}
}

func TestExtUnitGroupIndex(t *testing.T) {
	e, err := NewExt(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if e.UnitGroupIndex() != 31 {
		t.Fatalf("UnitGroupIndex = %d, want 31", e.UnitGroupIndex())
	}
	e4, err := NewExt(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if e4.UnitGroupIndex() != (64-1)/3 {
		t.Fatalf("UnitGroupIndex = %d, want 21", e4.UnitGroupIndex())
	}
	// BaseUnitLog classifies cosets of F_q^*: a and b·a agree for b in the
	// base, disagree otherwise (checked exhaustively on the small field).
	for a := uint32(1); a < e4.Order; a++ {
		for b := uint32(1); b < e4.Order; b++ {
			same := e4.BaseUnitLog(a) == e4.BaseUnitLog(e4.Mul(a, b))
			if same != e4.InBase(b) {
				t.Fatalf("BaseUnitLog coset classification wrong at a=%#x b=%#x", a, b)
			}
		}
	}
}

func TestExtCoeffRoundtrip(t *testing.T) {
	e, err := NewExt(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		v := uint32(rng.Intn(int(e.Order)))
		cs := make([]uint32, e.N)
		for j := range cs {
			cs[j] = e.Coeff(v, j)
		}
		if e.FromCoeffs(cs) != v {
			t.Fatalf("coeff roundtrip failed for %#x", v)
		}
	}
}

func TestExtGammaIsGenerator(t *testing.T) {
	e, err := NewExt(1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if e.Exp(1) != e.Gamma() {
		t.Fatalf("Exp(1) = %#x, Gamma = %#x", e.Exp(1), e.Gamma())
	}
	if e.Log(e.Gamma()) != 1 {
		t.Fatalf("Log(γ) = %d", e.Log(e.Gamma()))
	}
}

func TestExtZeroPanics(t *testing.T) {
	e, err := NewExt(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	assertPanics(t, "ext Inv(0)", func() { e.Inv(0) })
	assertPanics(t, "ext Div(1,0)", func() { e.Div(1, 0) })
}
