package gf

import (
	"math/rand"
	"testing"
)

// vecExts covers q = 2, 4, 8 extensions.
func vecExts(t *testing.T) []*Ext {
	t.Helper()
	var out []*Ext
	for _, p := range []struct{ m, n int }{{1, 5}, {2, 3}, {3, 3}} {
		e, err := NewExt(p.m, p.n)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, e)
	}
	return out
}

func randElems(e *Ext, rng *rand.Rand, n int, nonzero bool) []uint32 {
	xs := make([]uint32, n)
	for i := range xs {
		xs[i] = uint32(rng.Intn(int(e.Order)))
		if nonzero && xs[i] == 0 {
			xs[i] = 1
		}
	}
	// Keep a few exact zeros in the mixed case to exercise the zero branch.
	if !nonzero && n > 4 {
		xs[0], xs[n/2] = 0, 0
	}
	return xs
}

// TestVecKernelsMatchScalar pins every vector kernel to its scalar
// counterpart over random operands in all three base fields.
func TestVecKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, e := range vecExts(t) {
		xs := randElems(e, rng, 257, false)
		ys := randElems(e, rng, 257, false)
		nz := randElems(e, rng, 257, true)
		dst := make([]uint32, len(xs))

		y := nz[0]
		e.MulScalarVec(dst, xs, y)
		for i, x := range xs {
			if want := e.Mul(x, y); dst[i] != want {
				t.Fatalf("q=%d MulScalarVec[%d]: got %#x want %#x", e.Q, i, dst[i], want)
			}
		}
		e.MulScalarVec(dst, xs, 0)
		for i := range xs {
			if dst[i] != 0 {
				t.Fatalf("q=%d MulScalarVec by zero left %#x", e.Q, dst[i])
			}
		}
		e.MulVec(dst, xs, ys)
		for i := range xs {
			if want := e.Mul(xs[i], ys[i]); dst[i] != want {
				t.Fatalf("q=%d MulVec[%d]: got %#x want %#x", e.Q, i, dst[i], want)
			}
		}
		e.AddVec(dst, xs, ys)
		for i := range xs {
			if want := e.Add(xs[i], ys[i]); dst[i] != want {
				t.Fatalf("q=%d AddVec[%d]: got %#x want %#x", e.Q, i, dst[i], want)
			}
		}
		e.InvVec(dst, nz)
		for i, x := range nz {
			if want := e.Inv(x); dst[i] != want {
				t.Fatalf("q=%d InvVec[%d]: got %#x want %#x", e.Q, i, dst[i], want)
			}
		}
		for _, k := range []int{0, 1, 2, int(e.Q), int(e.Order), 3*int(e.Order) + 7} {
			e.PowVec(dst, xs, k)
			for i, x := range xs {
				if want := e.Pow(x, k); dst[i] != want {
					t.Fatalf("q=%d PowVec[%d]^%d: got %#x want %#x", e.Q, i, k, dst[i], want)
				}
			}
		}
		e.FrobVec(dst, xs)
		for i, x := range xs {
			if want := e.Pow(x, int(e.Q)); dst[i] != want {
				t.Fatalf("q=%d FrobVec[%d]: got %#x want %#x", e.Q, i, dst[i], want)
			}
		}
		e.BaseUnitLogVec(dst, nz)
		for i, x := range nz {
			if want := e.BaseUnitLog(x); dst[i] != want {
				t.Fatalf("q=%d BaseUnitLogVec[%d]: got %d want %d", e.Q, i, dst[i], want)
			}
		}
	}
}

// TestVecKernelsAlias checks dst-aliases-input, the form the in-place PGL
// gather kernels use.
func TestVecKernelsAlias(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	e, err := NewExt(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	xs := randElems(e, rng, 64, false)
	ys := randElems(e, rng, 64, false)
	want := make([]uint32, len(xs))
	e.MulVec(want, xs, ys)
	got := append([]uint32(nil), xs...)
	e.MulVec(got, got, ys)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("aliased MulVec[%d]: got %#x want %#x", i, got[i], want[i])
		}
	}
}

// TestVecKernelsZeroAlloc: the kernels must not allocate — they are the inner
// loop of the computed resolver strategy.
func TestVecKernelsZeroAlloc(t *testing.T) {
	e, err := NewExt(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	xs := randElems(e, rng, 512, true)
	dst := make([]uint32, len(xs))
	if n := testing.AllocsPerRun(20, func() {
		e.MulScalarVec(dst, xs, 7)
		e.MulVec(dst, dst, xs)
		e.AddVec(dst, dst, xs)
		e.PowVec(dst, xs, 5)
		e.FrobVec(dst, xs)
		e.InvVec(dst, xs)
		e.BaseUnitLogVec(dst, xs)
	}); n != 0 {
		t.Errorf("vector kernels allocate %v times per pass, want 0", n)
	}
}
