package gf

import "fmt"

// Quad is the quadratic extension F_{2^{2n}} of F_{2^n} used by the paper's
// Section 4 to index the variable cosets (bijection 1, case q = 2, n odd).
// Each row (x y) of a 2×2 matrix over F_{2^n} is identified with the single
// element x·w + y of F_{2^{2n}}, where
//
//	ρ = (2^{2n}−1)/3,  σ = 2^n+1,  τ = (2^n+1)/3,  w = λ^ρ,
//
// λ a generator of F_{2^{2n}}^*. Because n is odd, F_4 ⊄ F_{2^n}, so
// w ∈ F_4 \ F_2 together with 1 forms a basis of F_{2^{2n}} over F_{2^n}.
//
// The F_{2^n} arithmetic inside Quad is the base field of the degree-2
// extension; it reduces by the same primitive polynomial as the
// NewExt(1, n) field used for matrix entries, so packed values are
// interchangeable between the two (verified by tests).
type Quad struct {
	Ext2 *Ext // F_{2^{2n}} as a degree-2 extension of GF(2^n)
	N    int  // n

	Rho   uint32 // (2^{2n}−1)/3
	Sigma uint32 // 2^n+1
	Tau   uint32 // (2^n+1)/3

	W      uint32 // w = λ^ρ, packed in the (1, λ) basis
	w0, w1 uint32 // w = w0 + w1·λ with w0, w1 ∈ F_{2^n}
}

// NewQuad builds the Section 4 indexing field for odd n with 3 <= n <= 12
// (2n must fit the table budget).
func NewQuad(n int) (*Quad, error) {
	if n%2 == 0 {
		return nil, fmt.Errorf("gf: Section 4 indexing requires odd n, got %d", n)
	}
	if n < 3 || 2*n > MaxBits {
		return nil, fmt.Errorf("gf: quad extension degree n=%d out of range", n)
	}
	ext2, err := NewExt(n, 2)
	if err != nil {
		return nil, err
	}
	q := &Quad{
		Ext2:  ext2,
		N:     n,
		Rho:   (ext2.Order - 1) / 3,
		Sigma: (1 << uint(n)) + 1,
		Tau:   ((1 << uint(n)) + 1) / 3,
	}
	q.W = ext2.Exp(int(q.Rho))
	q.w0 = ext2.Coeff(q.W, 0)
	q.w1 = ext2.Coeff(q.W, 1)
	if q.w1 == 0 {
		// w ∈ F_{2^n} would contradict n odd; the construction guarantees
		// this never happens, so treat it as an internal invariant violation.
		return nil, fmt.Errorf("gf: internal: w = λ^ρ landed in the base field")
	}
	return q, nil
}

// Base returns the F_{2^n} base-field arithmetic of the quadratic extension.
func (q *Quad) Base() *Field { return q.Ext2.Base }

// Pair maps a matrix row (x y) over F_{2^n} to the element x·w + y of
// F_{2^{2n}} (the paper's ⟨·⟩ row encoding).
func (q *Quad) Pair(x, y uint32) uint32 {
	// x·w + y with w = w0 + w1·λ: coefficients (x·w0 + y, x·w1).
	b := q.Ext2.Base
	return q.Ext2.FromCoeffs([]uint32{b.Add(b.Mul(x, q.w0), y), b.Mul(x, q.w1)})
}

// Unpair inverts Pair: given α ∈ F_{2^{2n}}, return the unique (x, y) with
// α = x·w + y.
func (q *Quad) Unpair(alpha uint32) (x, y uint32) {
	b := q.Ext2.Base
	c0 := q.Ext2.Coeff(alpha, 0)
	c1 := q.Ext2.Coeff(alpha, 1)
	x = b.Div(c1, q.w1)
	y = b.Add(c0, b.Mul(x, q.w0))
	return x, y
}

// Lambda returns λ^i.
func (q *Quad) Lambda(i int) uint32 { return q.Ext2.Exp(i) }

// InSubfield reports whether α lies in F_{2^n}. In the (1, λ) packing the
// λ-coefficient of x·w + y is x·w1 with w1 ≠ 0, so α is in the subfield
// exactly when that coefficient vanishes.
func (q *Quad) InSubfield(alpha uint32) bool {
	return q.Ext2.Coeff(alpha, 1) == 0
}
