package gf

import (
	"math/rand"
	"testing"
)

func TestNewQuadParameters(t *testing.T) {
	for _, n := range []int{3, 5, 7, 9, 11} {
		q, err := NewQuad(n)
		if err != nil {
			t.Fatalf("NewQuad(%d): %v", n, err)
		}
		if q.Ext2.Order != 1<<uint(2*n) {
			t.Errorf("n=%d: order %d", n, q.Ext2.Order)
		}
		if q.Rho*3 != q.Ext2.Order-1 {
			t.Errorf("n=%d: ρ = %d", n, q.Rho)
		}
		if q.Tau*3 != q.Sigma {
			t.Errorf("n=%d: τ = %d, σ = %d", n, q.Tau, q.Sigma)
		}
	}
}

func TestNewQuadRejectsEvenN(t *testing.T) {
	for _, n := range []int{2, 4, 8, 13} {
		if _, err := NewQuad(n); err == nil {
			t.Errorf("NewQuad(%d): expected error", n)
		}
	}
}

// TestQuadWGeneratesF4 verifies w = λ^ρ has multiplicative order 3 and lies
// outside F_{2^n}: the paper's basis requirement.
func TestQuadWGeneratesF4(t *testing.T) {
	for _, n := range []int{3, 5, 7} {
		q, err := NewQuad(n)
		if err != nil {
			t.Fatal(err)
		}
		if q.InSubfield(q.W) {
			t.Fatalf("n=%d: w lies in F_{2^n}", n)
		}
		w2 := q.Ext2.Mul(q.W, q.W)
		w3 := q.Ext2.Mul(w2, q.W)
		if w3 != 1 || q.W == 1 || w2 == 1 {
			t.Fatalf("n=%d: w does not have order 3 (w=%#x w^2=%#x w^3=%#x)", n, q.W, w2, w3)
		}
		// w^2 = w + 1 (the F_4 relation) must hold.
		if w2 != q.Ext2.Add(q.W, 1) {
			t.Fatalf("n=%d: w^2 != w+1", n)
		}
	}
}

// TestQuadSubfieldViaSigma checks F_{2^n}^* = {λ^{iσ}} as claimed in §4.
func TestQuadSubfieldViaSigma(t *testing.T) {
	q, err := NewQuad(5)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint32]bool)
	for i := uint32(0); i < (1<<5)-1; i++ {
		v := q.Lambda(int(i * q.Sigma))
		if !q.InSubfield(v) {
			t.Fatalf("λ^{%dσ} = %#x not in subfield", i, v)
		}
		if seen[v] {
			t.Fatalf("λ^{iσ} repeats at i=%d", i)
		}
		seen[v] = true
	}
	if len(seen) != (1<<5)-1 {
		t.Fatalf("covered %d of 31 subfield units", len(seen))
	}
}

func TestQuadPairUnpair(t *testing.T) {
	for _, n := range []int{3, 7} {
		q, err := NewQuad(n)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(n)))
		base := uint32(1) << uint(n)
		for i := 0; i < 1000; i++ {
			x := uint32(rng.Intn(int(base)))
			y := uint32(rng.Intn(int(base)))
			alpha := q.Pair(x, y)
			gx, gy := q.Unpair(alpha)
			if gx != x || gy != y {
				t.Fatalf("n=%d: unpair(pair(%d,%d)) = (%d,%d)", n, x, y, gx, gy)
			}
		}
		// Pair is a bijection rows → field (spot-check injectivity on zero axis).
		if q.Pair(0, 0) != 0 {
			t.Fatalf("Pair(0,0) = %#x", q.Pair(0, 0))
		}
		for v := uint32(0); v < q.Ext2.Order; v++ {
			x, y := q.Unpair(v)
			if q.Pair(x, y) != v {
				t.Fatalf("n=%d: pair(unpair(%#x)) mismatch", n, v)
			}
		}
	}
}

// TestQuadBaseMatchesExt1 verifies the critical representation-compatibility
// invariant: the base field of Quad (GF(2^n) built as Field) computes the
// same packed products as NewExt(1, n) (GF(2^n) built as an extension of
// GF(2)). The memory scheme moves packed values between the two freely.
func TestQuadBaseMatchesExt1(t *testing.T) {
	for _, n := range []int{3, 5, 7} {
		q, err := NewQuad(n)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewExt(1, n)
		if err != nil {
			t.Fatal(err)
		}
		b := q.Base()
		for a := uint32(0); a < e.Order; a++ {
			for c := uint32(0); c < e.Order; c += 3 { // stride keeps the test fast
				if b.Mul(a, c) != e.Mul(a, c) {
					t.Fatalf("n=%d: representations disagree at %#x * %#x", n, a, c)
				}
			}
		}
	}
}
