package gf

import "fmt"

// Ext is the extension field F_{q^n} over a base field F_q = GF(2^m),
// represented as polynomials in a primitive element γ:
//
//	F_{q^n} = { a_0 + a_1·γ + … + a_{n-1}·γ^{n-1} : a_i ∈ F_q }
//
// exactly as in Section 2.1 of the paper. A packed element stores coefficient
// a_i in bits [i·m, (i+1)·m). γ itself is the class of the indeterminate, so
// the coordinates of an element in the basis (1, γ, …, γ^{n-1}) are read off
// the packed representation directly; this is what makes the paper's set
//
//	P_γ = { Σ_{i≥1} a_i γ^i }   (polynomials with zero constant term)
//
// trivially recognizable and indexable.
//
// Multiplication uses full exp/log tables over the whole extension field
// (the modulus polynomial is primitive, so γ generates F_{q^n}^*).
type Ext struct {
	Base *Field // the base field F_q
	N    int    // extension degree over the base
	Q    uint32 // base order q = Base.Order

	Order   uint32   // q^n
	Modulus []uint32 // monic primitive polynomial over F_q, len n+1, Modulus[n] = 1

	bits uint // m: bits per coefficient
	mask uint32

	exp []uint32
	log []int32
}

// NewExt constructs F_{q^n} with q = 2^m. It searches for a primitive monic
// degree-n polynomial over F_q (seeded by the GF(2) table when m == 1) and
// builds discrete-log tables for the full extension field. m·n must not
// exceed MaxBits.
func NewExt(m, n int) (*Ext, error) {
	if n < 2 {
		return nil, fmt.Errorf("gf: extension degree n=%d must be >= 2", n)
	}
	if m*n > MaxBits {
		return nil, fmt.Errorf("gf: field GF(2^%d) exceeds the %d-bit table budget", m*n, MaxBits)
	}
	base, err := NewField(m)
	if err != nil {
		return nil, err
	}
	e := &Ext{
		Base:  base,
		N:     n,
		Q:     base.Order,
		Order: 1 << uint(m*n),
		bits:  uint(m),
		mask:  base.Order - 1,
	}
	if m == 1 {
		// F_2 case: the binary primitive-polynomial table gives the modulus
		// directly (coefficients are single bits).
		p := primitivePoly2[n]
		e.Modulus = make([]uint32, n+1)
		for i := 0; i <= n; i++ {
			e.Modulus[i] = (p >> uint(i)) & 1
		}
		if err := e.buildTables(); err != nil {
			return nil, err
		}
		return e, nil
	}
	if err := e.searchModulus(); err != nil {
		return nil, err
	}
	return e, nil
}

// searchModulus scans monic degree-n polynomials over F_q until one is
// primitive. Primitivity is established as a byproduct of table building:
// the polynomial is primitive iff repeated multiplication by γ enumerates
// all q^n − 1 nonzero elements before returning to 1.
func (e *Ext) searchModulus() error {
	n := e.N
	// Iterate lower coefficients (a_0 … a_{n-1}) as a packed integer. The
	// constant term must be nonzero for irreducibility, and primitive
	// polynomials are dense, so this terminates quickly in practice.
	total := uint64(1) << uint(int(e.bits)*n)
	for c := uint64(1); c < total; c++ {
		if uint32(c)&e.mask == 0 {
			continue // zero constant term: divisible by γ
		}
		mod := make([]uint32, n+1)
		for i := 0; i < n; i++ {
			mod[i] = uint32(c>>(uint(i)*e.bits)) & e.mask
		}
		mod[n] = 1
		e.Modulus = mod
		if err := e.buildTables(); err == nil {
			return nil
		}
	}
	return fmt.Errorf("gf: no primitive degree-%d polynomial found over GF(%d)", n, e.Q)
}

// mulGamma multiplies a packed element by γ (shift coefficients up one slot,
// then reduce by the modulus using base-field arithmetic).
func (e *Ext) mulGamma(a uint32) uint32 {
	carry := a >> (uint(e.N-1) * e.bits) & e.mask // coefficient of γ^{n-1}
	shifted := (a << e.bits) & (e.Order - 1)
	if carry == 0 {
		return shifted
	}
	// Subtract carry · (modulus − γ^n); in characteristic 2 subtraction is XOR.
	for i := 0; i < e.N; i++ {
		if e.Modulus[i] != 0 {
			shifted ^= e.Base.Mul(carry, e.Modulus[i]) << (uint(i) * e.bits)
		}
	}
	return shifted
}

func (e *Ext) buildTables() error {
	n := int(e.Order) - 1
	if e.exp == nil {
		e.exp = make([]uint32, 2*n)
		e.log = make([]int32, e.Order)
	}
	for i := range e.log {
		e.log[i] = -1
	}
	a := uint32(1)
	for i := 0; i < n; i++ {
		if e.log[a] != -1 {
			return fmt.Errorf("gf: modulus not primitive (γ has order %d < %d)", i, n)
		}
		e.exp[i] = a
		e.exp[i+n] = a
		e.log[a] = int32(i)
		a = e.mulGamma(a)
	}
	if a != 1 {
		return fmt.Errorf("gf: modulus not primitive (γ^%d = %#x)", n, a)
	}
	return nil
}

// Add returns a+b.
func (e *Ext) Add(a, b uint32) uint32 { return a ^ b }

// Mul returns a·b.
func (e *Ext) Mul(a, b uint32) uint32 {
	if a == 0 || b == 0 {
		return 0
	}
	return e.exp[e.log[a]+e.log[b]]
}

// Inv returns a^{-1}, panicking on zero (always a caller bug here).
func (e *Ext) Inv(a uint32) uint32 {
	if a == 0 {
		panic("gf: inverse of zero in extension field")
	}
	n := int32(e.Order) - 1
	return e.exp[(n-e.log[a])%n]
}

// Div returns a/b.
func (e *Ext) Div(a, b uint32) uint32 {
	if b == 0 {
		panic("gf: division by zero in extension field")
	}
	if a == 0 {
		return 0
	}
	n := int32(e.Order) - 1
	return e.exp[(e.log[a]-e.log[b]+n)%n]
}

// Pow returns a^k for k >= 0 (with 0^0 = 1).
func (e *Ext) Pow(a uint32, k int) uint32 {
	if k == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	n := int64(e.Order) - 1
	return e.exp[int64(e.log[a])*int64(k)%n]
}

// Exp returns γ^i for any i >= 0.
func (e *Ext) Exp(i int) uint32 { return e.exp[i%(int(e.Order)-1)] }

// Log returns the discrete logarithm of a to base γ, or -1 for a == 0.
// This is the primitive the Section 4 address computation relies on
// ("let x = γ^r …"); with full tables it is O(1).
func (e *Ext) Log(a uint32) int { return int(e.log[a]) }

// LogT returns the raw log-table entry of a: log_γ(a) in [0, Order−1) for
// nonzero a, −1 for zero. Exported for fused log-domain kernels that hoist
// logs across several uses and handle zeros themselves; everyone else should
// use Log.
func (e *Ext) LogT(a uint32) int32 { return e.log[a] }

// ExpT returns γ^i for i in [0, 2(Order−1)): a raw read of the doubled
// exponent table Mul uses internally, exported so fused log-domain kernels
// can add two reduced exponents without a modular reduction. The argument
// must already be range-reduced; use Exp when it is not.
func (e *Ext) ExpT(i int32) uint32 { return e.exp[i] }

// Gamma returns the primitive element γ (the class of the indeterminate).
func (e *Ext) Gamma() uint32 { return 1 << e.bits }

// Coeff returns the coefficient of γ^i in a, as a base-field element.
func (e *Ext) Coeff(a uint32, i int) uint32 {
	return (a >> (uint(i) * e.bits)) & e.mask
}

// FromCoeffs packs base-field coefficients (low degree first) into an element.
func (e *Ext) FromCoeffs(cs []uint32) uint32 {
	var a uint32
	for i, c := range cs {
		a |= (c & e.mask) << (uint(i) * e.bits)
	}
	return a
}

// InBase reports whether a lies in the base field F_q embedded as the
// constant polynomials. Because coordinates are explicit in the packing,
// this is a single comparison.
func (e *Ext) InBase(a uint32) bool { return a < e.Q }

// ConstTerm returns the constant coefficient a_0 of a.
func (e *Ext) ConstTerm(a uint32) uint32 { return a & e.mask }

// InP reports whether a belongs to P_γ (zero constant term).
func (e *Ext) InP(a uint32) bool { return a&e.mask == 0 }

// ClearConst strips the constant coefficient, projecting a onto P_γ.
func (e *Ext) ClearConst(a uint32) uint32 { return a &^ e.mask }

// PElem returns p_k, the k-th element of P_γ in the canonical enumeration
// (coefficients of γ…γ^{n-1} read as an integer base q). 0 <= k < q^{n-1}.
func (e *Ext) PElem(k uint32) uint32 { return k << e.bits }

// PIndex is the inverse of PElem. The argument must be in P_γ.
func (e *Ext) PIndex(p uint32) uint32 { return p >> e.bits }

// PSize returns |P_γ| = q^{n-1}.
func (e *Ext) PSize() uint32 { return e.Order >> e.bits }

// UnitGroupIndex returns (q^n−1)/(q−1), the index of F_q^* in F_{q^n}^*.
// The module cosets of the scheme are parameterized by residues mod this
// quantity.
func (e *Ext) UnitGroupIndex() uint32 {
	return (e.Order - 1) / (e.Q - 1)
}

// BaseUnitLog reports, for nonzero a, the residue log_γ(a) mod
// (q^n−1)/(q−1). Two nonzero elements generate the same coset of F_q^*
// exactly when these residues agree (F_q^* is the subgroup of index
// UnitGroupIndex in the cyclic group F_{q^n}^*).
func (e *Ext) BaseUnitLog(a uint32) uint32 {
	return uint32(e.Log(a)) % e.UnitGroupIndex()
}

// Elements returns the number of packed values, q^n (elements are exactly
// the values in [0, Elements())).
func (e *Ext) Elements() uint32 { return e.Order }
