package gf

import (
	"testing"
	"testing/quick"
)

// TestFrobeniusAutomorphism: x ↦ x^q is a field automorphism of F_{q^n}
// fixing exactly the base field (the structure the subfield tests and the
// quadratic-extension decomposition rely on).
func TestFrobeniusAutomorphism(t *testing.T) {
	for _, c := range []struct{ m, n int }{{1, 6}, {2, 4}} {
		e, err := NewExt(c.m, c.n)
		if err != nil {
			t.Fatal(err)
		}
		mask := e.Order - 1
		frob := func(a uint32) uint32 { return e.Pow(a, int(e.Q)) }
		additive := func(a, b uint32) bool {
			a, b = a&mask, b&mask
			return frob(e.Add(a, b)) == e.Add(frob(a), frob(b))
		}
		multiplicative := func(a, b uint32) bool {
			a, b = a&mask, b&mask
			return frob(e.Mul(a, b)) == e.Mul(frob(a), frob(b))
		}
		cfg := &quick.Config{MaxCount: 400}
		if err := quick.Check(additive, cfg); err != nil {
			t.Errorf("F_{%d^%d} Frobenius not additive: %v", e.Q, c.n, err)
		}
		if err := quick.Check(multiplicative, cfg); err != nil {
			t.Errorf("F_{%d^%d} Frobenius not multiplicative: %v", e.Q, c.n, err)
		}
		// Frobenius orbit size divides n; applying it n times is identity.
		for a := uint32(0); a < e.Order; a += 7 {
			x := a
			for i := 0; i < c.n; i++ {
				x = frob(x)
			}
			if x != a {
				t.Fatalf("Frobenius^n != id at %#x", a)
			}
		}
	}
}

// TestModulusRootConjugates: γ and its Frobenius conjugates are exactly the
// n roots of the modulus polynomial in F_{q^n}.
func TestModulusRootConjugates(t *testing.T) {
	e, err := NewExt(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	evalMod := func(x uint32) uint32 {
		acc := uint32(0)
		for i := len(e.Modulus) - 1; i >= 0; i-- {
			acc = e.Add(e.Mul(acc, x), e.Modulus[i])
		}
		return acc
	}
	roots := make(map[uint32]bool)
	x := e.Gamma()
	for i := 0; i < e.N; i++ {
		if evalMod(x) != 0 {
			t.Fatalf("conjugate %d of γ is not a root of the modulus", i)
		}
		roots[x] = true
		x = e.Pow(x, int(e.Q))
	}
	if len(roots) != e.N {
		t.Fatalf("γ has %d distinct conjugates, want n=%d", len(roots), e.N)
	}
}

// TestQuadPairLinearity: the row encoding (x, y) ↦ x·w + y is F_{2^n}-linear
// in both coordinates — the property that makes projective scaling act
// diagonally on ⟨α, β⟩ pairs (used by the explicit inverse indexer).
func TestQuadPairLinearity(t *testing.T) {
	q, err := NewQuad(5)
	if err != nil {
		t.Fatal(err)
	}
	b := q.Base()
	mask := b.Order - 1
	prop := func(x1, y1, x2, y2, s uint32) bool {
		x1, y1, x2, y2, s = x1&mask, y1&mask, x2&mask, y2&mask, s&mask
		sum := q.Ext2.Add(q.Pair(x1, y1), q.Pair(x2, y2))
		if sum != q.Pair(b.Add(x1, x2), b.Add(y1, y2)) {
			return false
		}
		// Scaling by a subfield element multiplies the packed pair.
		return q.Ext2.Mul(uint32(s), q.Pair(x1, y1)) == q.Pair(b.Mul(s, x1), b.Mul(s, y1))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestExtExhaustiveInverseSmall: a^{-1} is correct for every nonzero element
// of a small field (complements the sampled inverse property test).
func TestExtExhaustiveInverseSmall(t *testing.T) {
	e, err := NewExt(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	for a := uint32(1); a < e.Order; a++ {
		if e.Mul(a, e.Inv(a)) != 1 {
			t.Fatalf("inverse wrong at %#x", a)
		}
	}
}
