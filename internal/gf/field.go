// Package gf implements the finite-field arithmetic underlying the
// Pietracaprina–Preparata memory-organization scheme: the base field
// F_q = GF(2^m), the extension field F_{q^n} represented as polynomials in a
// primitive element γ with coefficients in F_q, and the quadratic extension
// F_{q^{2n}} used by the paper's Section 4 variable-indexing bijection.
//
// Elements are packed into machine words: an element of GF(2^m) occupies m
// bits, and an element of F_{q^n} packs its n base-field coefficients
// (coefficient of γ^i in bits [i·m, (i+1)·m)). Addition in characteristic 2
// is XOR on the packed representation; multiplication goes through full
// exponential/logarithm tables, which the construction can afford because the
// fields involved are small (q^n ≤ 2^24 covers every machine size the MPC
// simulator can hold).
package gf

import "fmt"

// MaxBits bounds the packed size (in bits) of any field handled by this
// package. exp/log tables are O(2^MaxBits) words.
const MaxBits = 24

// Field is the base field GF(2^m). Elements are uint32 values in [0, 2^m).
// Addition is XOR; multiplication, inversion and exponentiation use
// discrete-log tables built at construction time.
type Field struct {
	M     int    // extension degree over GF(2)
	Order uint32 // 2^M
	Poly  uint32 // primitive polynomial of degree M (bit M set)

	exp []uint32 // exp[i] = x^i for 0 <= i < 2*(Order-1) (doubled to skip a mod)
	log []int32  // log[a] = i with x^i = a; log[0] = -1
}

// NewField constructs GF(2^m) for 1 <= m <= 16 using a table of primitive
// polynomials. The primitivity of x is re-verified while the exp table is
// built, so a corrupt table entry cannot yield a silently wrong field.
func NewField(m int) (*Field, error) {
	if m < 1 || m > 16 {
		return nil, fmt.Errorf("gf: base field degree m=%d out of range [1,16]", m)
	}
	poly := primitivePoly2[m]
	f := &Field{
		M:     m,
		Order: 1 << uint(m),
		Poly:  poly,
	}
	if err := f.buildTables(); err != nil {
		return nil, err
	}
	return f, nil
}

func (f *Field) buildTables() error {
	n := int(f.Order) - 1 // multiplicative group order
	f.exp = make([]uint32, 2*n)
	f.log = make([]int32, f.Order)
	for i := range f.log {
		f.log[i] = -1
	}
	a := uint32(1)
	for i := 0; i < n; i++ {
		if f.log[a] != -1 {
			return fmt.Errorf("gf: polynomial %#x of degree %d is not primitive (x has order %d < %d)",
				f.Poly, f.M, i, n)
		}
		f.exp[i] = a
		f.exp[i+n] = a
		f.log[a] = int32(i)
		// Multiply by x: shift and reduce by the modulus polynomial.
		a <<= 1
		if a&f.Order != 0 {
			a ^= f.Poly
		}
	}
	if a != 1 {
		return fmt.Errorf("gf: polynomial %#x of degree %d is not primitive (x^%d = %#x != 1)",
			f.Poly, f.M, n, a)
	}
	return nil
}

// Add returns a+b (characteristic 2: XOR).
func (f *Field) Add(a, b uint32) uint32 { return a ^ b }

// Mul returns a·b.
func (f *Field) Mul(a, b uint32) uint32 {
	if a == 0 || b == 0 {
		return 0
	}
	return f.exp[f.log[a]+f.log[b]]
}

// Inv returns a^{-1}. It panics on a == 0, which is always a caller bug in
// this codebase (the group-theoretic constructions never invert zero).
func (f *Field) Inv(a uint32) uint32 {
	if a == 0 {
		panic("gf: inverse of zero in base field")
	}
	n := int32(f.Order) - 1
	return f.exp[(n-f.log[a])%n]
}

// Div returns a/b.
func (f *Field) Div(a, b uint32) uint32 {
	if b == 0 {
		panic("gf: division by zero in base field")
	}
	if a == 0 {
		return 0
	}
	n := int32(f.Order) - 1
	return f.exp[(f.log[a]-f.log[b]+n)%n]
}

// Pow returns a^k for k >= 0 (with 0^0 = 1).
func (f *Field) Pow(a uint32, k int) uint32 {
	if k == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	n := int64(f.Order) - 1
	e := int64(f.log[a]) * int64(k) % n
	return f.exp[e]
}

// Exp returns x^i where x is the primitive generator used by the tables.
// i may be any non-negative integer.
func (f *Field) Exp(i int) uint32 {
	n := int(f.Order) - 1
	return f.exp[i%n]
}

// Log returns the discrete log of a to base x, or -1 for a == 0.
func (f *Field) Log(a uint32) int {
	return int(f.log[a])
}

// Contains reports whether v is a valid packed element of the field.
func (f *Field) Contains(v uint32) bool { return v < f.Order }

// primitivePoly2 lists one primitive polynomial over GF(2) for each degree
// 1..16, in packed form (bit i = coefficient of x^i). These are classical
// LFSR/Reed–Solomon generators; NewField verifies primitivity at runtime.
var primitivePoly2 = [...]uint32{
	0,       // degree 0: unused
	0x3,     // x + 1
	0x7,     // x^2 + x + 1
	0xB,     // x^3 + x + 1
	0x13,    // x^4 + x + 1
	0x25,    // x^5 + x^2 + 1
	0x43,    // x^6 + x + 1
	0x89,    // x^7 + x^3 + 1
	0x11D,   // x^8 + x^4 + x^3 + x^2 + 1
	0x211,   // x^9 + x^4 + 1
	0x409,   // x^10 + x^3 + 1
	0x805,   // x^11 + x^2 + 1
	0x1053,  // x^12 + x^6 + x^4 + x + 1
	0x201B,  // x^13 + x^4 + x^3 + x + 1
	0x4443,  // x^14 + x^10 + x^6 + x + 1
	0x8003,  // x^15 + x + 1
	0x1100B, // x^16 + x^12 + x^3 + x + 1
}
