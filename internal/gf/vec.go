package gf

// Batch kernels over packed element slices. The address-resolution hot path
// evaluates the same field expression over a whole vector of operands, so
// these kernels hoist everything that is invariant across the vector — the
// discrete log of a fixed multiplier, the reduced exponent of a fixed power,
// the subgroup index of a fixed quotient — out of the element loop, leaving
// one or two table lookups per element. All kernels write into caller-owned
// destination slices (reusable across calls, so steady-state resolution
// allocates nothing); dst may alias an input.
//
// Lengths: every kernel processes exactly len(dst) elements and requires its
// operand slices to be at least that long (shorter operands panic via the
// bounds check).

// MulScalarVec computes dst[i] = xs[i]·y. The log of y is looked up once; a
// zero y zeroes dst without touching the tables.
func (e *Ext) MulScalarVec(dst, xs []uint32, y uint32) {
	if len(dst) == 0 {
		return
	}
	xs = xs[:len(dst)]
	if y == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	ly := e.log[y]
	exp, lg := e.exp, e.log
	for i, x := range xs {
		if x == 0 {
			dst[i] = 0
			continue
		}
		dst[i] = exp[lg[x]+ly] // exp table is doubled: no modular reduction
	}
}

// MulVec computes dst[i] = xs[i]·ys[i].
func (e *Ext) MulVec(dst, xs, ys []uint32) {
	if len(dst) == 0 {
		return
	}
	xs, ys = xs[:len(dst)], ys[:len(dst)]
	exp, lg := e.exp, e.log
	for i, x := range xs {
		y := ys[i]
		if x == 0 || y == 0 {
			dst[i] = 0
			continue
		}
		dst[i] = exp[lg[x]+lg[y]]
	}
}

// AddVec computes dst[i] = xs[i] + ys[i] (XOR in characteristic 2).
func (e *Ext) AddVec(dst, xs, ys []uint32) {
	if len(dst) == 0 {
		return
	}
	xs, ys = xs[:len(dst)], ys[:len(dst)]
	for i, x := range xs {
		dst[i] = x ^ ys[i]
	}
}

// InvVec computes dst[i] = xs[i]^{-1}, panicking on a zero entry (always a
// caller bug, as with Inv).
func (e *Ext) InvVec(dst, xs []uint32) {
	if len(dst) == 0 {
		return
	}
	xs = xs[:len(dst)]
	n := int32(e.Order) - 1
	exp, lg := e.exp, e.log
	for i, x := range xs {
		if x == 0 {
			panic("gf: inverse of zero in extension field")
		}
		dst[i] = exp[n-lg[x]] // lg ∈ [0, n): n−lg ∈ (0, n], and exp[n] = exp[0]
	}
}

// PowVec computes dst[i] = xs[i]^k for k >= 0 (with 0^0 = 1), the batched
// exponentiation kernel: k is reduced modulo the group order once, so each
// element costs one log lookup, one multiply, one modular reduction and one
// exp lookup.
func (e *Ext) PowVec(dst, xs []uint32, k int) {
	if len(dst) == 0 {
		return
	}
	xs = xs[:len(dst)]
	if k == 0 {
		for i := range dst {
			dst[i] = 1
		}
		return
	}
	n := int64(e.Order) - 1
	kr := int64(k) % n // log < 2^24 and kr < 2^24: the product fits int64
	exp, lg := e.exp, e.log
	for i, x := range xs {
		if x == 0 {
			dst[i] = 0
			continue
		}
		dst[i] = exp[int64(lg[x])*kr%n]
	}
}

// FrobVec applies the q-power Frobenius dst[i] = xs[i]^q (the F_q-linear
// field automorphism fixing exactly the base field).
func (e *Ext) FrobVec(dst, xs []uint32) {
	e.PowVec(dst, xs, int(e.Q))
}

// BaseUnitLogVec computes dst[i] = BaseUnitLog(xs[i]) for nonzero entries,
// hoisting the subgroup index (q^n−1)/(q−1). Like BaseUnitLog, the result is
// undefined for zero entries.
func (e *Ext) BaseUnitLogVec(dst, xs []uint32) {
	if len(dst) == 0 {
		return
	}
	xs = xs[:len(dst)]
	ugi := e.UnitGroupIndex()
	lg := e.log
	for i, x := range xs {
		dst[i] = uint32(lg[x]) % ugi
	}
}
