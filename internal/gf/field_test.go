package gf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewFieldDegrees(t *testing.T) {
	for m := 1; m <= 16; m++ {
		f, err := NewField(m)
		if err != nil {
			t.Fatalf("NewField(%d): %v", m, err)
		}
		if f.Order != 1<<uint(m) {
			t.Errorf("NewField(%d): order %d", m, f.Order)
		}
	}
}

func TestNewFieldRejectsBadDegree(t *testing.T) {
	for _, m := range []int{0, -1, 17, 100} {
		if _, err := NewField(m); err == nil {
			t.Errorf("NewField(%d): expected error", m)
		}
	}
}

// TestPrimitivePolynomialTable re-derives primitivity of every table entry by
// checking that the exp table enumerated the full multiplicative group. This
// is implicit in NewField, but the explicit loop documents the invariant.
func TestPrimitivePolynomialTable(t *testing.T) {
	for m := 1; m <= 16; m++ {
		f, err := NewField(m)
		if err != nil {
			t.Fatalf("degree %d: %v", m, err)
		}
		seen := make(map[uint32]bool)
		for i := uint32(0); i < f.Order-1; i++ {
			v := f.Exp(int(i))
			if seen[v] {
				t.Fatalf("degree %d: exp repeats value %#x before covering the group", m, v)
			}
			seen[v] = true
		}
		if len(seen) != int(f.Order)-1 {
			t.Fatalf("degree %d: exp covered %d of %d nonzero elements", m, len(seen), f.Order-1)
		}
	}
}

func TestFieldKnownGF4(t *testing.T) {
	f, err := NewField(2)
	if err != nil {
		t.Fatal(err)
	}
	// GF(4) with x^2 = x+1: elements 0,1,x=2,x+1=3.
	cases := []struct{ a, b, want uint32 }{
		{2, 2, 3}, // x·x = x+1
		{2, 3, 1}, // x·(x+1) = x^2+x = 1
		{3, 3, 2}, // (x+1)^2 = x^2+1 = x
		{1, 3, 3},
		{0, 3, 0},
	}
	for _, c := range cases {
		if got := f.Mul(c.a, c.b); got != c.want {
			t.Errorf("GF(4): %d*%d = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if f.Inv(2) != 3 || f.Inv(3) != 2 || f.Inv(1) != 1 {
		t.Errorf("GF(4) inverses wrong: inv(2)=%d inv(3)=%d", f.Inv(2), f.Inv(3))
	}
}

func TestFieldAxiomsQuick(t *testing.T) {
	for _, m := range []int{1, 3, 8, 11} {
		f, err := NewField(m)
		if err != nil {
			t.Fatal(err)
		}
		mask := f.Order - 1
		assoc := func(a, b, c uint32) bool {
			a, b, c = a&mask, b&mask, c&mask
			return f.Mul(f.Mul(a, b), c) == f.Mul(a, f.Mul(b, c))
		}
		distrib := func(a, b, c uint32) bool {
			a, b, c = a&mask, b&mask, c&mask
			return f.Mul(a, f.Add(b, c)) == f.Add(f.Mul(a, b), f.Mul(a, c))
		}
		comm := func(a, b uint32) bool {
			a, b = a&mask, b&mask
			return f.Mul(a, b) == f.Mul(b, a)
		}
		inverse := func(a uint32) bool {
			a &= mask
			if a == 0 {
				return true
			}
			return f.Mul(a, f.Inv(a)) == 1
		}
		for name, prop := range map[string]interface{}{
			"associativity":  assoc,
			"distributivity": distrib,
			"commutativity":  comm,
			"inverse":        inverse,
		} {
			if err := quick.Check(prop, nil); err != nil {
				t.Errorf("GF(2^%d) %s: %v", m, name, err)
			}
		}
	}
}

func TestFieldPowDivLog(t *testing.T) {
	f, err := NewField(8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a := uint32(rng.Intn(int(f.Order)))
		b := uint32(1 + rng.Intn(int(f.Order)-1))
		if f.Mul(f.Div(a, b), b) != a {
			t.Fatalf("div/mul roundtrip failed for %d/%d", a, b)
		}
		if a != 0 {
			if f.Exp(f.Log(a)) != a {
				t.Fatalf("exp(log(%d)) != %d", a, a)
			}
		}
		k := rng.Intn(1000)
		want := uint32(1)
		for j := 0; j < k; j++ {
			want = f.Mul(want, a)
		}
		if got := f.Pow(a, k); got != want {
			t.Fatalf("Pow(%d,%d) = %d, want %d", a, k, got, want)
		}
	}
}

func TestFieldFermat(t *testing.T) {
	// a^(2^m) = a for every element (Frobenius fixed field).
	for _, m := range []int{2, 5, 10} {
		f, err := NewField(m)
		if err != nil {
			t.Fatal(err)
		}
		for a := uint32(0); a < f.Order; a++ {
			if f.Pow(a, int(f.Order)) != a {
				t.Fatalf("GF(2^%d): a^q != a for a=%d", m, a)
			}
		}
	}
}

func TestFieldZeroPanics(t *testing.T) {
	f, err := NewField(4)
	if err != nil {
		t.Fatal(err)
	}
	assertPanics(t, "Inv(0)", func() { f.Inv(0) })
	assertPanics(t, "Div(1,0)", func() { f.Div(1, 0) })
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}
