// Package audit certifies structural properties of a memory organization
// (any protocol.Mapper). The paper's first criticism of the
// Upfal–Wigderson school is exactly that a sampled random graph cannot be
// efficiently certified to expand ("no efficient way is known of testing a
// random graph for such expansion properties", §1). This auditor makes the
// testable part explicit: it verifies copy-placement well-formedness and
// degree regularity exhaustively (or on a sampled prefix for huge M), and
// measures pairwise intersections, load balance and sampled expansion — the
// quantities the PP93 construction pins down by algebra and a random graph
// only promises on average.
package audit

import (
	"fmt"
	"math"
	"math/rand"

	"detshmem/internal/protocol"
)

// Report summarizes an audit run.
type Report struct {
	Scheme string
	Vars   uint64 // variables examined (≤ M)
	Copies int

	// Well-formedness. Range violations and cell-address collisions are
	// hard errors; a variable carrying two copies in one module is only a
	// warning (quorum correctness survives, but the copies stop being
	// independent failure domains — MV's digit placement does this whenever
	// a variable has repeated digits).
	PlacementErrors     int // module out of range / address collision
	DuplicateModuleVars int // variables with ≥2 copies in one module

	// Structure.
	MaxPairIntersection int     // max |Γ(v1)∩Γ(v2)| over sampled pairs
	MaxModuleLoad       int     // max copies per module over examined vars
	MinModuleLoad       int     // min copies per module among loaded modules
	LoadImbalance       float64 // max/mean load over loaded modules

	// Sampled expansion: min over sampled sets of |Γ(S)|/(|S|^{2/3}·r-ish
	// normalization is scheme-specific, so the raw minimum ratio
	// |Γ(S)|/|S| is reported instead, together with the set size).
	MinExpansionRatio float64
	ExpansionSetSize  int
}

// Options bounds audit cost.
type Options struct {
	MaxVars     uint64 // cap on examined variables (0 = min(M, 200k))
	PairSamples int    // sampled variable pairs (0 = 50k)
	SetSamples  int    // sampled expansion sets (0 = 64)
	SetSize     int    // expansion set size (0 = 256)
	Seed        int64
}

// Run audits the mapper and returns a report. It never modifies the mapper.
func Run(m protocol.Mapper, o Options) (*Report, error) {
	if o.MaxVars == 0 {
		o.MaxVars = 200000
	}
	if o.MaxVars > m.NumVars() {
		o.MaxVars = m.NumVars()
	}
	if o.PairSamples == 0 {
		o.PairSamples = 50000
	}
	if o.SetSamples == 0 {
		o.SetSamples = 64
	}
	if o.SetSize == 0 {
		o.SetSize = 256
	}
	if uint64(o.SetSize) > o.MaxVars {
		o.SetSize = int(o.MaxVars)
	}
	rng := rand.New(rand.NewSource(o.Seed))
	r := &Report{Scheme: m.Name(), Vars: o.MaxVars, Copies: m.Copies()}

	// Pass 1: well-formedness and load. Address collisions are detected via
	// a map (addresses must be globally unique cells).
	load := make(map[uint64]int)
	addrs := make(map[uint64]bool, o.MaxVars*uint64(m.Copies()))
	modsOf := func(v uint64) []uint64 {
		out := make([]uint64, m.Copies())
		for c := 0; c < m.Copies(); c++ {
			out[c], _ = m.CopyAddr(v, c)
		}
		return out
	}
	for v := uint64(0); v < o.MaxVars; v++ {
		seen := make(map[uint64]bool, m.Copies())
		dup := false
		for c := 0; c < m.Copies(); c++ {
			mod, addr := m.CopyAddr(v, c)
			if mod >= m.NumModules() || addr >= m.AddrSpace() {
				r.PlacementErrors++
				continue
			}
			if seen[mod] {
				dup = true
			}
			seen[mod] = true
			if addrs[addr] {
				r.PlacementErrors++ // two cells collide
			}
			addrs[addr] = true
			load[mod]++
		}
		if dup {
			r.DuplicateModuleVars++
		}
	}
	r.MinModuleLoad = math.MaxInt
	total := 0
	for _, l := range load {
		total += l
		if l > r.MaxModuleLoad {
			r.MaxModuleLoad = l
		}
		if l < r.MinModuleLoad {
			r.MinModuleLoad = l
		}
	}
	if len(load) > 0 {
		r.LoadImbalance = float64(r.MaxModuleLoad) / (float64(total) / float64(len(load)))
	}

	// Pass 2: pairwise intersections.
	for i := 0; i < o.PairSamples; i++ {
		a := uint64(rng.Int63n(int64(o.MaxVars)))
		b := uint64(rng.Int63n(int64(o.MaxVars)))
		if a == b {
			continue
		}
		// |Γ(a) ∩ Γ(b)| as a set intersection (a malformed scheme may place
		// several copies in one module; those still count once).
		sa := make(map[uint64]bool, m.Copies())
		for _, x := range modsOf(a) {
			sa[x] = true
		}
		sb := make(map[uint64]bool, m.Copies())
		inter := 0
		for _, y := range modsOf(b) {
			if sa[y] && !sb[y] {
				inter++
			}
			sb[y] = true
		}
		if inter > r.MaxPairIntersection {
			r.MaxPairIntersection = inter
		}
	}

	// Pass 3: sampled expansion.
	r.MinExpansionRatio = math.Inf(1)
	r.ExpansionSetSize = o.SetSize
	for s := 0; s < o.SetSamples; s++ {
		set := make(map[uint64]bool, o.SetSize)
		for len(set) < o.SetSize {
			set[uint64(rng.Int63n(int64(o.MaxVars)))] = true
		}
		mods := make(map[uint64]bool)
		for v := range set {
			for _, mod := range modsOf(v) {
				mods[mod] = true
			}
		}
		ratio := float64(len(mods)) / float64(len(set))
		if ratio < r.MinExpansionRatio {
			r.MinExpansionRatio = ratio
		}
	}
	return r, nil
}

// String renders the report as a compact block.
func (r *Report) String() string {
	return fmt.Sprintf(
		"scheme=%s vars=%d copies=%d placementErrors=%d dupModuleVars=%d "+
			"maxPairIntersection=%d moduleLoad=[%d,%d] imbalance=%.2f minExpansion(|S|=%d)=%.2f",
		r.Scheme, r.Vars, r.Copies, r.PlacementErrors, r.DuplicateModuleVars,
		r.MaxPairIntersection, r.MinModuleLoad, r.MaxModuleLoad, r.LoadImbalance,
		r.ExpansionSetSize, r.MinExpansionRatio)
}
