package audit

import (
	"strings"
	"testing"

	"detshmem/internal/baseline"
	"detshmem/internal/core"
	"detshmem/internal/protocol"
)

func TestAuditPPScheme(t *testing.T) {
	s, err := core.New(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := s.NewIndexer()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(protocol.NewCoreMapper(s, idx), Options{PairSamples: 20000, SetSamples: 16})
	if err != nil {
		t.Fatal(err)
	}
	if r.PlacementErrors != 0 {
		t.Fatalf("PP scheme has %d placement errors", r.PlacementErrors)
	}
	if r.MaxPairIntersection > 1 {
		t.Fatalf("Theorem 2 violated under audit: max intersection %d", r.MaxPairIntersection)
	}
	// All M variables examined; every module loaded with exactly q^{n-1}.
	if r.Vars != s.NumVariables {
		t.Fatalf("examined %d of %d variables", r.Vars, s.NumVariables)
	}
	if r.MaxModuleLoad != int(s.ModuleSize) || r.MinModuleLoad != int(s.ModuleSize) {
		t.Fatalf("module load [%d,%d], want uniform %d", r.MinModuleLoad, r.MaxModuleLoad, s.ModuleSize)
	}
	if r.LoadImbalance < 0.99 || r.LoadImbalance > 1.01 {
		t.Fatalf("imbalance %.3f, want 1.0", r.LoadImbalance)
	}
	if !strings.Contains(r.String(), "pp93") {
		t.Fatalf("report string missing scheme name: %s", r)
	}
}

func TestAuditDetectsBrokenScheme(t *testing.T) {
	// A deliberately broken mapper: all copies of every variable in module 0
	// at colliding addresses.
	b := brokenMapper{}
	r, err := Run(b, Options{MaxVars: 100, PairSamples: 100, SetSamples: 2, SetSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	if r.PlacementErrors == 0 {
		t.Fatal("auditor missed placement errors")
	}
	if r.DuplicateModuleVars != 100 {
		t.Fatalf("duplicate-module variables %d, want all 100", r.DuplicateModuleVars)
	}
	if r.MaxPairIntersection != 1 {
		t.Fatalf("max intersection %d, want 1 (the single shared module, counted as a set)", r.MaxPairIntersection)
	}
	if r.MinExpansionRatio > 0.2 {
		t.Fatalf("broken scheme should show near-zero expansion, got %.2f", r.MinExpansionRatio)
	}
}

type brokenMapper struct{}

func (brokenMapper) Name() string                              { return "broken" }
func (brokenMapper) NumVars() uint64                           { return 1000 }
func (brokenMapper) NumModules() uint64                        { return 64 }
func (brokenMapper) Copies() int                               { return 3 }
func (brokenMapper) ReadQuorum() int                           { return 2 }
func (brokenMapper) WriteQuorum() int                          { return 2 }
func (brokenMapper) CopyAddr(v uint64, c int) (uint64, uint64) { return 0, 0 }
func (brokenMapper) AddrSpace() uint64                         { return 3000 }

func TestAuditUWRandomGraph(t *testing.T) {
	uw, err := baseline.NewUW(1023, 50000, 4, 77)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(uw, Options{MaxVars: 20000, PairSamples: 20000, SetSamples: 8})
	if err != nil {
		t.Fatal(err)
	}
	if r.PlacementErrors != 0 {
		t.Fatalf("UW placement errors: %d", r.PlacementErrors)
	}
	// A random graph's pairwise intersections are small but NOT certified
	// ≤ 1 — the contrast with the PP scheme the paper draws.
	if r.MaxPairIntersection < 1 {
		t.Fatal("suspiciously perfect random graph")
	}
	// Load is balanced only on average.
	if r.LoadImbalance <= 1.0 {
		t.Fatalf("random placement reported perfectly balanced (%.3f)", r.LoadImbalance)
	}
}
