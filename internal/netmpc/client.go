package netmpc

import (
	"time"

	"detshmem/internal/mpc"
	"detshmem/internal/obs"
	"detshmem/internal/protocol"
)

// Client is one machine-geometry view over a Transport: it implements
// protocol.Machine (synchronous bid rounds), protocol.FaultView (delegating
// to the transport's fault set, so quorum selection routes around dead
// servers), and protocol.RemoteStore (bids carry staged access payloads out
// and granted reads carry cell data back).
//
// Round semantics match the in-process engines exactly: every bidding
// processor's claim is computed locally with mpc.Claim, each remote module
// grants the minimum claim it received, and one round costs one unit. The
// network adds only failure modes, and those degrade into the fault set
// rather than surfacing as errors — Round never fails, it just grants less.
//
// A Client is not safe for concurrent Round calls, matching mpc.Machine;
// distinct Clients over one Transport are serialized by the transport.
type Client struct {
	t     *Transport
	procs int
	arb   mpc.Arbiter
	seed  uint64
	rec   obs.Recorder
	round uint64

	staged  []stagedOp   // per-proc payload for the next round, from StageBid
	granted []grantData  // per-proc data from the last round's grants
	frames  []RoundFrame // per-server bid assembly, reused
	sent    []int8       // per-server send state this round (0 none, 1 sent, 2 down)
	sendAt  []time.Time  // per-server send timestamp, for RTT
	timer   *time.Timer  // reused gather timer
	loads   map[int64]int
}

type stagedOp struct {
	addr      uint64
	op        protocol.Op
	value, ts uint64
}

type grantData struct {
	value, ts uint64
}

func newClient(t *Transport, cfg mpc.Config) *Client {
	c := &Client{
		t:       t,
		procs:   cfg.Procs,
		arb:     cfg.Arb,
		seed:    cfg.Seed,
		rec:     cfg.Recorder,
		staged:  make([]stagedOp, cfg.Procs),
		granted: make([]grantData, cfg.Procs),
		frames:  make([]RoundFrame, len(t.servers)),
		sent:    make([]int8, len(t.servers)),
		sendAt:  make([]time.Time, len(t.servers)),
		loads:   make(map[int64]int),
	}
	if c.rec == nil {
		c.rec = obs.Nop
	}
	c.timer = time.NewTimer(time.Hour)
	if !c.timer.Stop() {
		<-c.timer.C
	}
	return c
}

// StageBid implements protocol.RemoteStore.
func (c *Client) StageBid(proc int32, addr uint64, op protocol.Op, value, ts uint64) {
	c.staged[proc] = stagedOp{addr: addr, op: op, value: value, ts: ts}
}

// GrantData implements protocol.RemoteStore.
func (c *Client) GrantData(proc int32) (value, ts uint64) {
	g := c.granted[proc]
	return g.value, g.ts
}

// ModuleFailed implements protocol.FaultView.
func (c *Client) ModuleFailed(m int64) bool { return c.t.fs.Failed(uint64(m)) }

// FaultEpoch implements protocol.FaultView.
func (c *Client) FaultEpoch() uint64 { return c.t.fs.Epoch() }

// FaultCount implements protocol.FaultView.
func (c *Client) FaultCount() int { return c.t.fs.Count() }

// ModuleRepairing implements protocol.RepairView: a module range re-admitted
// after a generation-mismatch reconnect (wiped store) stays barred from read
// quorums until the repair sweep certifies it.
func (c *Client) ModuleRepairing(m int64) bool { return c.t.fs.Repairing(uint64(m)) }

// RepairGeneration implements protocol.RepairView.
func (c *Client) RepairGeneration(m uint64) uint64 { return c.t.fs.RepairGen(m) }

// RepairCount implements protocol.RepairView.
func (c *Client) RepairCount() int { return c.t.fs.RepairCount() }

// AppendRepairing implements protocol.RepairView.
func (c *Client) AppendRepairing(buf []uint64) []uint64 { return c.t.fs.AppendRepairing(buf) }

// CertifyRepair implements protocol.RepairView.
func (c *Client) CertifyRepair(m, gen uint64) bool { return c.t.fs.Certify(m, gen) }

// Cost implements protocol.Machine: rounds executed so far.
func (c *Client) Cost() uint64 { return c.round }

// Close implements the optional machine Close hook. It releases nothing:
// the connections belong to the Transport, which outlives every machine
// built over it.
func (c *Client) Close() {}

// Round executes one synchronous MPC round over the network: assemble one
// frame per touched server, fan all frames out (pipelining — every send
// completes before the first reply is awaited), gather replies until
// RoundTimeout, and mark unresponsive servers down. Bids directed at down
// servers are dropped exactly like bids at failed modules (mpc.Failing),
// and the books balance: surviving requests + dropped == issued.
func (c *Client) Round(reqs []int64, grant []bool) int {
	t := c.t
	t.roundMu.Lock()
	defer t.roundMu.Unlock()

	for i := range grant {
		grant[i] = false
	}
	for i := range c.frames {
		c.frames[i].Bids = c.frames[i].Bids[:0]
		c.sent[i] = 0
	}

	nServers := len(t.servers)
	issued := 0
	for p, m := range reqs {
		if m == mpc.Idle || m < 0 {
			continue
		}
		issued++
		si := ServerFor(m, t.cfg.Modules, nServers)
		st := &c.staged[p]
		c.frames[si].Bids = append(c.frames[si].Bids, Bid{
			Proc:   uint32(p),
			Module: uint64(m),
			Claim:  mpc.Claim(c.arb, c.procs, c.seed, c.round, p),
			Addr:   st.addr,
			Op:     uint8(st.op),
			Value:  st.value,
			TS:     st.ts,
		})
	}

	// Fan-out: every frame goes on the wire before any reply is read.
	for i, s := range t.servers {
		f := &c.frames[i]
		if len(f.Bids) == 0 {
			continue
		}
		if !s.up.Load() {
			c.sent[i] = 2
			continue
		}
		s.seq++
		f.Seq = s.seq
		f.Round = c.round
		c.sendAt[i] = time.Now()
		if s.send(f) {
			c.sent[i] = 1
		} else {
			c.sent[i] = 2
		}
	}

	// Gather, one shared deadline across servers.
	deadline := time.Now().Add(t.cfg.RoundTimeout)
	served := 0
	for i, s := range t.servers {
		if c.sent[i] != 1 {
			continue
		}
		reply, ok := c.await(s, s.seq, deadline)
		if !ok {
			s.timeouts.Inc()
			s.writeMu.Lock()
			conn := s.conn
			s.writeMu.Unlock()
			if conn != nil {
				s.markDown(conn, ErrRoundTimeout)
			}
			c.sent[i] = 2
			continue
		}
		s.inFlight.Add(-1)
		s.rtt.Observe(time.Since(c.sendAt[i]).Nanoseconds())
		for _, g := range reply.Grants {
			if int(g.Proc) < len(grant) {
				grant[g.Proc] = true
				c.granted[g.Proc] = grantData{value: g.Value, ts: g.TS}
				served++
			}
		}
	}

	if c.rec.Enabled() {
		c.record(issued, served)
	}
	c.round++
	return served
}

// await pulls replies off the server's channel until the expected sequence
// number arrives (stale replies from abandoned rounds are discarded) or the
// deadline passes. The timer is the client's reused one; it is re-armed —
// stopped, drained, reset — on every wait.
func (c *Client) await(s *srv, want uint64, deadline time.Time) (*RoundReply, bool) {
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, false
		}
		if !c.timer.Stop() {
			select {
			case <-c.timer.C:
			default:
			}
		}
		c.timer.Reset(remaining)
		select {
		case r := <-s.replies:
			if r.Seq == want {
				return r, true
			}
			if r.Seq > want {
				return nil, false // stream is ahead of us; our reply is lost
			}
			// Stale reply from an abandoned round: discard and keep waiting.
		case <-c.timer.C:
			return nil, false
		}
	}
}

// record assembles the round's obs event: per-module contention over the
// bids that reached live servers, dropped count for the rest. Requests +
// Dropped equals the issued bid count, so smembench's trace balance check
// holds over the network exactly as it does for mpc.Failing.
func (c *Client) record(issued, served int) {
	clear(c.loads)
	surviving := 0
	maxLoad := 0
	var hist obs.LoadHist
	for i := range c.frames {
		if c.sent[i] != 1 {
			continue
		}
		for j := range c.frames[i].Bids {
			m := int64(c.frames[i].Bids[j].Module)
			c.loads[m]++
			surviving++
			if c.loads[m] > maxLoad {
				maxLoad = c.loads[m]
			}
		}
	}
	for _, n := range c.loads {
		hist.Observe(n)
	}
	c.rec.RecordRound(obs.RoundEvent{
		Round:      c.round,
		Requests:   surviving,
		Granted:    served,
		MaxLoad:    maxLoad,
		Contention: hist,
		Dropped:    issued - surviving,
	})
}
