package netmpc

import (
	"errors"
	"net"
	"testing"
	"time"

	"detshmem/internal/core"
	"detshmem/internal/protocol"
)

// spreadVars returns variables whose three copies land on three distinct
// servers of a k-way cluster — the placement where losing one server can
// never destroy a committed write (writes touch two copies; at most one is
// on any single server).
func spreadVars(sys *protocol.System, s *core.Scheme, k int) []uint64 {
	var out []uint64
	modules := int64(s.NumModules)
	for v := uint64(0); v < s.NumVariables; v++ {
		seen := map[int]bool{}
		distinct := true
		for c := 0; c < sys.Mapper.Copies(); c++ {
			mod, _ := sys.Mapper.CopyAddr(v, c)
			si := ServerFor(int64(mod), modules, k)
			if seen[si] {
				distinct = false
				break
			}
			seen[si] = true
		}
		if distinct {
			out = append(out, v)
		}
	}
	return out
}

// copyServer returns the server index owning copy c of v.
func copyServer(sys *protocol.System, s *core.Scheme, k int, v uint64, c int) int {
	mod, _ := sys.Mapper.CopyAddr(v, c)
	return ServerFor(int64(mod), int64(s.NumModules), k)
}

// wipeRestart closes servers[i], waits until the client observes the death,
// then rebinds a brand-new server (fresh in-memory store, fresh generation)
// on the same address and waits for the reconnect to land.
func wipeRestart(t *testing.T, s *core.Scheme, servers []*Server, addrs []string, i, k int, tr *Transport, sys *protocol.System, probe []uint64) {
	t.Helper()
	oldGen := servers[i].Gen()
	servers[i].Close()
	waitFor(t, 5*time.Second, func() bool {
		_, _, err := sys.ReadBatch(probe)
		if err != nil && !errors.Is(err, protocol.ErrIncomplete) {
			t.Fatalf("degraded read: %v", err)
		}
		return tr.FaultSet().Count() > 0
	})
	ln, err := net.Listen("tcp", addrs[i])
	if err != nil {
		t.Fatalf("rebind %s: %v", addrs[i], err)
	}
	servers[i] = NewServer(serverConfigFor(s, i, k))
	if servers[i].Gen() == oldGen {
		t.Fatalf("restarted server minted the same generation %d", oldGen)
	}
	go servers[i].Serve(ln)
	t.Cleanup(servers[i].Close)
	waitFor(t, 5*time.Second, func() bool { return tr.FaultSet().Count() == 0 })
}

// TestWipeRestartRepairsOverWire is the happy self-healing path over a real
// cluster: one server is killed and restarted with an empty store. The
// generation token in the handshake tells the client the store is reborn, so
// the range is re-admitted through RecoverPending, the repair sweep rebuilds
// every lost copy over the wire from surviving read majorities (repair
// writes use put-if-newer, wire op 2), and after certification every read
// returns the committed value.
func TestWipeRestartRepairsOverWire(t *testing.T) {
	s := testScheme(t)
	const k = 3
	servers, addrs := startCluster(t, s, k)
	tr, err := Dial(testDialConfig(s, addrs))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	sys := newTCPSystem(t, s, tr)

	vars := spreadVars(sys, s, k)
	if len(vars) < 4 {
		t.Fatalf("only %d fully spread variables; scheme/cluster shape unusable", len(vars))
	}
	vals := make([]uint64, len(vars))
	model := make(map[uint64]uint64, len(vars))
	for i, v := range vars {
		vals[i] = 1000 + uint64(i)
		model[v] = vals[i]
	}
	if _, err := sys.WriteBatch(vars, vals); err != nil {
		t.Fatal(err)
	}

	wipeRestart(t, s, servers, addrs, 1, k, tr, sys, vars[:2])
	if sys.RepairBacklog() == 0 {
		t.Fatalf("wiped restart was re-admitted without entering repair")
	}

	// Drain the repair backlog explicitly (shard dispatchers do this from
	// their idle loop; batch traffic pumps it too).
	deadline := time.Now().Add(10 * time.Second)
	for sys.RepairBacklog() > 0 {
		if !sys.RepairStep() && time.Now().After(deadline) {
			t.Fatalf("repair backlog stuck at %d", sys.RepairBacklog())
		}
	}

	got, _, err := sys.ReadBatch(vars)
	if err != nil {
		t.Fatalf("read after repair: %v", err)
	}
	for i, v := range vars {
		if got[i] != model[v] {
			t.Fatalf("var %d = %d after repair, want %d", v, got[i], model[v])
		}
	}
}

// TestWipeRestartNeverServesZeroQuorum is the satellite regression pinned by
// PR 10: wipe-restart every server except the one holding copy 0, then crash
// that last server. Each victim's only fresh copy is now locked in the
// crashed store while two reborn zero-timestamp copies are live. Pre-fix,
// the wiped ranges were re-admitted as fully live, so a read quorum of two
// zero-timestamp cells silently outvoted the committed write — reads
// returned 0 with no error. Post-fix the wiped ranges are barred from read
// quorums until repair certifies them, and repair refuses to certify while
// the fresh copy sits in a crashed store, so every read either errors
// ErrIncomplete or returns the true value. A zero-timestamp quorum never
// wins.
func TestWipeRestartNeverServesZeroQuorum(t *testing.T) {
	s := testScheme(t)
	const k = 3
	servers, addrs := startCluster(t, s, k)
	tr, err := Dial(testDialConfig(s, addrs))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	sys := newTCPSystem(t, s, tr)

	// Victims: fully spread variables whose copy 0 lives on server 0; their
	// other two copies land on servers 1 and 2, the ones we will wipe.
	var victims []uint64
	for _, v := range spreadVars(sys, s, k) {
		if copyServer(sys, s, k, v, 0) == 0 {
			victims = append(victims, v)
		}
	}
	if len(victims) == 0 {
		t.Fatalf("no victim variables with copy 0 on server 0")
	}
	vals := make([]uint64, len(victims))
	model := make(map[uint64]uint64, len(victims))
	for i, v := range victims {
		vals[i] = 7000 + uint64(i)
		model[v] = vals[i]
	}
	if _, err := sys.WriteBatch(victims, vals); err != nil {
		t.Fatal(err)
	}

	// Servers 1 and 2 die and restart wiped, one at a time: every victim's
	// non-zero copies are now reborn zero-timestamp cells (or, post-fix,
	// possibly already rebuilt — copy 0 is still up at this point).
	wipeRestart(t, s, servers, addrs, 1, k, tr, sys, victims[:1])
	wipeRestart(t, s, servers, addrs, 2, k, tr, sys, victims[:1])

	// Server 0 crashes and stays down: any victim copy that repair has not
	// yet rebuilt is unrecoverable until it returns. The only reachable
	// "quorum" is the two reborn copies — pre-fix both zero-timestamp, and
	// that quorum completed and served 0.
	servers[0].Close()
	waitFor(t, 5*time.Second, func() bool { return tr.FaultSet().Count() > 0 })

	for try := 0; try < 20; try++ {
		got, m, err := sys.ReadBatch(victims)
		if err != nil {
			if !errors.Is(err, protocol.ErrIncomplete) {
				t.Fatalf("try %d: %v", try, err)
			}
			unfinished := map[int]bool{}
			for _, r := range m.Unfinished {
				unfinished[r] = true
			}
			for i, v := range victims {
				if !unfinished[i] && got[i] != model[v] {
					t.Fatalf("try %d: var %d completed with %d, want %d or unfinished", try, v, got[i], model[v])
				}
			}
			continue
		}
		for i, v := range victims {
			if got[i] != model[v] {
				t.Fatalf("try %d: read returned %d for var %d, want %d — a zero-timestamp quorum won", try, got[i], v, model[v])
			}
		}
	}

	// The repair sweep must not have certified the wiped range while the
	// fresh copies were locked in the crashed store: the backlog is intact.
	for i := 0; i < 8; i++ {
		sys.RepairStep()
	}
	if sys.RepairBacklog() == 0 {
		t.Fatalf("repair certified the wiped range while its source majority was down")
	}
}
