package netmpc

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"detshmem/internal/core"
	"detshmem/internal/mpc"
	"detshmem/internal/protocol"
)

// testScheme builds the smallest PP93 scheme (q=2, n=3: 63 modules, 3
// copies, majority 2).
func testScheme(t testing.TB) *core.Scheme {
	t.Helper()
	s, err := core.New(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func serverConfigFor(s *core.Scheme, i, k int) ServerConfig {
	lo, hi := Range(i, k, int64(s.NumModules))
	return ServerConfig{
		Q:         s.Q,
		N:         uint32(s.Deg),
		Modules:   s.NumModules,
		AddrSpace: s.NumModules * uint64(s.ModuleSize),
		RangeLo:   uint64(lo),
		RangeHi:   uint64(hi),
	}
}

// startCluster launches k in-process servers covering the scheme's modules
// and returns them with their addresses. Servers are torn down at test end.
func startCluster(t testing.TB, s *core.Scheme, k int) ([]*Server, []string) {
	t.Helper()
	servers := make([]*Server, k)
	addrs := make([]string, k)
	for i := 0; i < k; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		sv := NewServer(serverConfigFor(s, i, k))
		go sv.Serve(ln)
		servers[i] = sv
		addrs[i] = ln.Addr().String()
		t.Cleanup(sv.Close)
	}
	return servers, addrs
}

func testDialConfig(s *core.Scheme, addrs []string) Config {
	return Config{
		Servers:      addrs,
		Q:            s.Q,
		N:            uint32(s.Deg),
		Modules:      int64(s.NumModules),
		AddrSpace:    s.NumModules * uint64(s.ModuleSize),
		StoreID:      1,
		DialTimeout:  2 * time.Second,
		RoundTimeout: time.Second,
		ReconnectMin: 5 * time.Millisecond,
		ReconnectMax: 50 * time.Millisecond,
	}
}

func newTCPSystem(t testing.TB, s *core.Scheme, tr *Transport) *protocol.System {
	t.Helper()
	idx, err := s.NewIndexer()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := protocol.NewSystem(s, idx, protocol.Config{Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	return sys
}

func TestRangePartition(t *testing.T) {
	for _, k := range []int{1, 2, 3, 4, 7} {
		modules := int64(1023)
		covered := int64(0)
		for i := 0; i < k; i++ {
			lo, hi := Range(i, k, modules)
			if lo != covered {
				t.Fatalf("k=%d server %d starts at %d, want %d", k, i, lo, covered)
			}
			covered = hi
		}
		if covered != modules {
			t.Fatalf("k=%d covers %d of %d modules", k, covered, modules)
		}
		for m := int64(0); m < modules; m++ {
			i := ServerFor(m, modules, k)
			lo, hi := Range(i, k, modules)
			if m < lo || m >= hi {
				t.Fatalf("k=%d: ServerFor(%d)=%d owns [%d,%d)", k, m, i, lo, hi)
			}
		}
	}
}

// TestEquivalenceWithInproc drives the same batch stream through an
// in-process system and a TCP system over a 2-server loopback cluster; the
// observable values must be identical.
func TestEquivalenceWithInproc(t *testing.T) {
	s := testScheme(t)
	idx, err := s.NewIndexer()
	if err != nil {
		t.Fatal(err)
	}
	local, err := protocol.NewSystem(s, idx, protocol.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()

	_, addrs := startCluster(t, s, 2)
	tr, err := Dial(testDialConfig(s, addrs))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	remote := newTCPSystem(t, s, tr)

	rng := rand.New(rand.NewSource(7))
	nv := int(s.NumVariables)
	for batch := 0; batch < 20; batch++ {
		sz := 1 + rng.Intn(16)
		vars := make([]uint64, 0, sz)
		seen := map[uint64]bool{}
		for len(vars) < sz {
			v := uint64(rng.Intn(nv))
			if !seen[v] {
				seen[v] = true
				vars = append(vars, v)
			}
		}
		if batch%3 != 2 {
			vals := make([]uint64, len(vars))
			for i := range vals {
				vals[i] = rng.Uint64()
			}
			if _, err := local.WriteBatch(vars, vals); err != nil {
				t.Fatalf("local write: %v", err)
			}
			if _, err := remote.WriteBatch(vars, vals); err != nil {
				t.Fatalf("remote write: %v", err)
			}
			continue
		}
		lv, _, err := local.ReadBatch(vars)
		if err != nil {
			t.Fatalf("local read: %v", err)
		}
		rv, _, err := remote.ReadBatch(vars)
		if err != nil {
			t.Fatalf("remote read: %v", err)
		}
		for i := range vars {
			if lv[i] != rv[i] {
				t.Fatalf("batch %d var %d: local %d, remote %d", batch, vars[i], lv[i], rv[i])
			}
		}
	}
	for _, st := range tr.Stats() {
		if !st.Up || st.Frames == 0 || st.RTTCount == 0 {
			t.Fatalf("server stats not populated: %+v", st)
		}
	}
}

// TestThinClientComputedStrategy is the thin-client demonstration: a TCP
// client under Strategy ResolverComputed carries no compiled table at all —
// every batch resolves through the vectorized Section 4 kernels — while the
// memory cells live on the remote servers. Values must match a plain
// in-process system, so a client footprint of O(indexer) + O(cache lines)
// replaces the O(M) table without observable difference.
func TestThinClientComputedStrategy(t *testing.T) {
	s := testScheme(t)
	idx, err := s.NewIndexer()
	if err != nil {
		t.Fatal(err)
	}
	local, err := protocol.NewSystem(s, idx, protocol.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()

	_, addrs := startCluster(t, s, 2)
	tr, err := Dial(testDialConfig(s, addrs))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	thin, err := protocol.NewSystem(s, idx, protocol.Config{Transport: tr, Strategy: protocol.ResolverComputed})
	if err != nil {
		t.Fatal(err)
	}
	defer thin.Close()

	rng := rand.New(rand.NewSource(11))
	nv := int(s.NumVariables)
	for batch := 0; batch < 12; batch++ {
		sz := 1 + rng.Intn(16)
		vars := make([]uint64, 0, sz)
		seen := map[uint64]bool{}
		for len(vars) < sz {
			v := uint64(rng.Intn(nv))
			if !seen[v] {
				seen[v] = true
				vars = append(vars, v)
			}
		}
		if batch%3 != 2 {
			vals := make([]uint64, len(vars))
			for i := range vals {
				vals[i] = rng.Uint64()
			}
			if _, err := local.WriteBatch(vars, vals); err != nil {
				t.Fatalf("local write: %v", err)
			}
			if _, err := thin.WriteBatch(vars, vals); err != nil {
				t.Fatalf("thin write: %v", err)
			}
			continue
		}
		lv, _, err := local.ReadBatch(vars)
		if err != nil {
			t.Fatalf("local read: %v", err)
		}
		tv, _, err := thin.ReadBatch(vars)
		if err != nil {
			t.Fatalf("thin read: %v", err)
		}
		for i := range vars {
			if lv[i] != tv[i] {
				t.Fatalf("batch %d var %d: local %d, thin %d", batch, vars[i], lv[i], tv[i])
			}
		}
	}
}

// TestServerDeathDegradesLikeModuleFaults kills one of four servers and
// checks that (a) the whole range joins the fault set, (b) batches keep
// completing for variables that retain a live majority, with correct
// values, and (c) stranded requests surface through the PR 5 error path
// (ErrIncomplete class), never as hangs.
func TestServerDeathDegradesLikeModuleFaults(t *testing.T) {
	s := testScheme(t)
	servers, addrs := startCluster(t, s, 4)
	tr, err := Dial(testDialConfig(s, addrs))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	sys := newTCPSystem(t, s, tr)

	nv := int(s.NumVariables)
	model := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(11))
	vars := make([]uint64, 0, 8)
	for v := 0; v < nv; v += 7 {
		vars = append(vars, uint64(v))
	}
	vals := make([]uint64, len(vars))
	for i := range vals {
		vals[i] = rng.Uint64()
		model[vars[i]] = vals[i]
	}
	if _, err := sys.WriteBatch(vars, vals); err != nil {
		t.Fatalf("healthy write: %v", err)
	}

	victim := 1
	servers[victim].Close()
	lo, hi := Range(victim, 4, int64(s.NumModules))

	deadline := time.Now().Add(5 * time.Second)
	for {
		reqs := make([]protocol.Request, len(vars))
		for i, v := range vars {
			reqs[i] = protocol.Request{Var: v, Op: protocol.Read}
		}
		res, err := sys.Access(reqs)
		if err != nil && !errors.Is(err, protocol.ErrIncomplete) {
			t.Fatalf("degraded read: %v", err)
		}
		if tr.FaultSet().Count() == int(hi-lo) {
			unfinished := map[int]bool{}
			for _, r := range res.Metrics.Unfinished {
				unfinished[r] = true
			}
			for i, v := range vars {
				if unfinished[i] {
					continue
				}
				if res.Values[i] != model[v] {
					t.Fatalf("var %d: read %d, want %d", v, res.Values[i], model[v])
				}
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("fault set never reached range size: %d of %d", tr.FaultSet().Count(), hi-lo)
		}
	}
}

// TestReconnectRecoversRange restarts a killed server (same address) and
// checks the reconnect loop re-handshakes, recovers the module range in
// the fault set, and subsequent batches complete. Several kill/restart
// cycles exercise the reconnect path under churn.
func TestReconnectRecoversRange(t *testing.T) {
	s := testScheme(t)
	servers, addrs := startCluster(t, s, 2)
	tr, err := Dial(testDialConfig(s, addrs))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	sys := newTCPSystem(t, s, tr)

	vars := []uint64{1, 5, 9, 13}
	vals := []uint64{10, 50, 90, 130}
	if _, err := sys.WriteBatch(vars, vals); err != nil {
		t.Fatal(err)
	}

	for cycle := 0; cycle < 3; cycle++ {
		servers[1].Close()
		// Drive batches until the death is observed, tolerating stranding.
		waitFor(t, 5*time.Second, func() bool {
			_, _, err := sys.ReadBatch(vars)
			if err != nil && !errors.Is(err, protocol.ErrIncomplete) {
				t.Fatalf("cycle %d degraded read: %v", cycle, err)
			}
			return tr.FaultSet().Count() > 0
		})

		// Restart on the same address; the reconnect loop should find it.
		ln, err := net.Listen("tcp", addrs[1])
		if err != nil {
			t.Fatalf("cycle %d rebind: %v", cycle, err)
		}
		servers[1] = NewServer(serverConfigFor(s, 1, 2))
		go servers[1].Serve(ln)
		waitFor(t, 5*time.Second, func() bool { return tr.FaultSet().Count() == 0 })

		if _, err := sys.WriteBatch(vars, vals); err != nil {
			t.Fatalf("cycle %d write after recovery: %v", cycle, err)
		}
	}
	servers[1].Close()
	if got := tr.Stats()[1].Reconnects; got < 3 {
		t.Fatalf("reconnects = %d, want >= 3", got)
	}
}

func waitFor(t testing.TB, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestHandshakeMismatchesAreTyped covers the fail-fast paths: wrong scheme
// geometry, wrong module range split, and wrong wire version must each
// surface as their typed error, at Dial time, without hanging.
func TestHandshakeMismatchesAreTyped(t *testing.T) {
	s := testScheme(t)
	_, addrs := startCluster(t, s, 4)

	// Scheme mismatch: client believes a different module count.
	cfg := testDialConfig(s, addrs)
	cfg.Modules++
	cfg.AddrSpace += uint64(s.ModuleSize)
	if _, err := Dial(cfg); !errors.Is(err, ErrSchemeMismatch) {
		t.Fatalf("scheme mismatch: got %v", err)
	}

	// Range mismatch: client splits 63 modules over 2 servers, servers were
	// configured for a 4-way split.
	cfg = testDialConfig(s, addrs[:2])
	if _, err := Dial(cfg); !errors.Is(err, ErrRangeMismatch) {
		t.Fatalf("range mismatch: got %v", err)
	}

	// Version mismatch: raw handshake with a bumped version.
	conn, err := net.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	lo, hi := Range(0, 4, int64(s.NumModules))
	hello := Handshake{
		Version: Version + 1, Q: s.Q, N: uint32(s.Deg),
		Modules: s.NumModules, AddrSpace: s.NumModules * uint64(s.ModuleSize),
		RangeLo: uint64(lo), RangeHi: uint64(hi),
	}
	if _, err := hello.WriteTo(conn); err != nil {
		t.Fatal(err)
	}
	var ack HandshakeAck
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := ack.ReadFrom(conn); err != nil {
		t.Fatal(err)
	}
	if ack.Status != AckVersionMismatch {
		t.Fatalf("ack status = %d, want AckVersionMismatch", ack.Status)
	}
	if err := ackError(&ack); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("ackError = %v, want ErrVersionMismatch", err)
	}
}

// fakeServer accepts one connection, answers the handshake correctly, then
// hands the connection to the provided misbehaviour.
func fakeServer(t *testing.T, cfg ServerConfig, misbehave func(net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				var hello Handshake
				if _, err := hello.ReadFrom(conn); err != nil {
					conn.Close()
					return
				}
				ack := HandshakeAck{
					Version: Version, Status: AckOK, Q: cfg.Q, N: cfg.N,
					Modules: cfg.Modules, AddrSpace: cfg.AddrSpace,
					RangeLo: cfg.RangeLo, RangeHi: cfg.RangeHi,
				}
				if _, err := ack.WriteTo(conn); err != nil {
					conn.Close()
					return
				}
				misbehave(conn)
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestTornReplyNeverHangs covers the server-dies-mid-frame edge: the fake
// server reads a round frame, writes a frame header promising a body it
// never sends, and closes. The client must come back within the round
// timeout with the server marked down and ErrCorruptFrame recorded — not
// hang, not panic.
func TestTornReplyNeverHangs(t *testing.T) {
	s := testScheme(t)
	k := 2
	cfg0 := serverConfigFor(s, 0, k)
	torn := fakeServer(t, cfg0, func(conn net.Conn) {
		var frame RoundFrame
		if _, err := frame.ReadFrom(conn); err != nil {
			conn.Close()
			return
		}
		conn.Write([]byte{0, 0, 1, 0, frameRoundReply, 1, 2, 3}) // 256-byte body, 3 sent
		conn.Close()
	})
	// A real server holds the other range so the batch can mostly proceed.
	real := NewServer(serverConfigFor(s, 1, k))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go real.Serve(ln)
	t.Cleanup(real.Close)

	cfg := testDialConfig(s, []string{torn, ln.Addr().String()})
	cfg.RoundTimeout = 300 * time.Millisecond
	tr, err := Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	sys := newTCPSystem(t, s, tr)

	done := make(chan error, 1)
	go func() {
		_, err := sys.WriteBatch([]uint64{0, 1, 2, 3}, []uint64{9, 9, 9, 9})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, protocol.ErrIncomplete) {
			t.Fatalf("torn reply: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("batch hung on torn reply")
	}
	waitFor(t, 2*time.Second, func() bool { return !tr.Stats()[0].Up })
	le := tr.servers[0].lastError()
	if le == nil || !(errors.Is(le, ErrCorruptFrame) || errors.Is(le, ErrRoundTimeout)) {
		t.Fatalf("last error = %v, want ErrCorruptFrame or ErrRoundTimeout", le)
	}
}

// TestServerSurvivesTornRequest is the mirror image: a client dies mid
// frame; the server must drop the connection and keep serving others.
func TestServerSurvivesTornRequest(t *testing.T) {
	s := testScheme(t)
	servers, addrs := startCluster(t, s, 1)

	conn, err := net.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	hello := Handshake{
		Version: Version, Q: s.Q, N: uint32(s.Deg),
		Modules: s.NumModules, AddrSpace: s.NumModules * uint64(s.ModuleSize),
		RangeLo: 0, RangeHi: s.NumModules,
	}
	if _, err := hello.WriteTo(conn); err != nil {
		t.Fatal(err)
	}
	var ack HandshakeAck
	if _, err := ack.ReadFrom(conn); err != nil || ack.Status != AckOK {
		t.Fatalf("handshake: %v status %d", err, ack.Status)
	}
	frame := (&RoundFrame{Seq: 1, Bids: []Bid{{Proc: 0, Module: 1, Claim: 1, Addr: 4}}}).append(nil)
	conn.Write(frame[:len(frame)-3]) // torn mid-bid
	conn.Close()

	// The server must still accept and serve a healthy client.
	tr, err := Dial(testDialConfig(s, addrs))
	if err != nil {
		t.Fatalf("dial after torn request: %v", err)
	}
	defer tr.Close()
	sys := newTCPSystem(t, s, tr)
	if _, err := sys.WriteBatch([]uint64{3}, []uint64{33}); err != nil {
		t.Fatal(err)
	}
	if got, _, err := sys.ReadBatch([]uint64{3}); err != nil || got[0] != 33 {
		t.Fatalf("read after torn request: %v %v", got, err)
	}
	_ = servers
}

// TestGracefulShutdownDrains starts a shutdown while a round is in flight:
// the in-flight frame is answered, new connections are refused, and
// Shutdown returns with all handlers joined.
func TestGracefulShutdownDrains(t *testing.T) {
	s := testScheme(t)
	servers, addrs := startCluster(t, s, 1)
	tr, err := Dial(testDialConfig(s, addrs))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	sys := newTCPSystem(t, s, tr)
	if _, err := sys.WriteBatch([]uint64{0, 1}, []uint64{5, 6}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		servers[0].Shutdown(2 * time.Second)
	}()
	wg.Wait()

	if _, err := Dial(testDialConfig(s, addrs)); err == nil {
		t.Fatal("dial succeeded against a shut-down server")
	}
	if served := servers[0].FramesServed(); served == 0 {
		t.Fatal("server reports zero frames served")
	}
}

// TestNewMachineValidatesGeometry pins the fail-fast on geometry drift
// between the protocol layer and the deployment.
func TestNewMachineValidatesGeometry(t *testing.T) {
	s := testScheme(t)
	_, addrs := startCluster(t, s, 2)
	tr, err := Dial(testDialConfig(s, addrs))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := tr.NewMachine(mpc.Config{Procs: 8, Modules: int(s.NumModules) + 1}); !errors.Is(err, ErrSchemeMismatch) {
		t.Fatalf("got %v, want ErrSchemeMismatch", err)
	}
	if _, err := tr.NewMachine(mpc.Config{Procs: 8, Modules: int(s.NumModules)}); err != nil {
		t.Fatalf("valid geometry refused: %v", err)
	}
}
