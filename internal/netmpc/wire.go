// Package netmpc promotes the Module Parallel Computer interconnect from a
// function call to a real network: contiguous module ranges live on remote
// memserver processes (cmd/memserver), and clients hold a thin library that
// evaluates the compiled constructive map locally — the paper's whole point
// is that O(1)-register address resolution needs no directory service — and
// fans each synchronous round's bids out over persistent per-server TCP
// connections with request pipelining.
//
// The wire protocol is length-prefixed binary frames. Every wire type
// carries the lattigo-style serialization triple — BinarySize, WriteTo,
// ReadFrom — and a versioned handshake carries the scheme parameters (q, n,
// module count, address space), so a client compiled against a different
// scheme or protocol version fails fast with a typed error instead of
// corrupting memory.
//
// Fault model: a dead, unreachable, or slow server degrades exactly like a
// failed memory module. The client maps connection errors, handshake
// failures mid-run, and round timeouts onto an mpc.FaultSet covering the
// server's module range, so the protocol layer's quorum re-selection,
// bounded retry waves, and per-request ErrQuorumUnreachable verdicts (PR 5)
// apply unchanged — the static-fault regime of Chlebus–Gasieniec–Pelc,
// entered dynamically.
package netmpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Version is the wire-protocol version carried by the handshake. Bump it on
// any frame-layout change; mismatched peers fail the handshake with
// ErrVersionMismatch. Version 2 added HandshakeAck.Gen, the store-generation
// token that gates re-admission after a reconnect.
const Version uint16 = 2

// Frame type tags.
const (
	frameHandshake    byte = 1
	frameHandshakeAck byte = 2
	frameRound        byte = 3
	frameRoundReply   byte = 4
)

// maxFrameSize bounds a frame body (type byte + payload): large enough for
// a full round of bids at the largest supported machine geometry, small
// enough that a corrupt length prefix cannot make a reader allocate
// gigabytes.
const maxFrameSize = 1 << 24

// headerSize is the frame envelope: a uint32 body length plus the type tag.
const headerSize = 5

// Wire-level typed errors. Every decode or handshake failure surfaces as
// (or wraps) one of these, so callers branch with errors.Is.
var (
	// ErrCorruptFrame marks a frame that could not be decoded: truncated
	// body, trailing garbage, an inconsistent element count, or an
	// unexpected frame type.
	ErrCorruptFrame = errors.New("netmpc: corrupt frame")
	// ErrFrameTooLarge marks a length prefix beyond maxFrameSize — either
	// corruption or a hostile peer; the connection is unusable.
	ErrFrameTooLarge = errors.New("netmpc: frame exceeds size bound")
	// ErrVersionMismatch is returned when client and server disagree on the
	// wire-protocol version.
	ErrVersionMismatch = errors.New("netmpc: wire version mismatch")
	// ErrSchemeMismatch is returned when the handshake's scheme parameters
	// (q, n, modules, address space) disagree — the client would compute
	// copy addresses the server does not serve.
	ErrSchemeMismatch = errors.New("netmpc: scheme parameters mismatch")
	// ErrRangeMismatch is returned when the client's view of the server's
	// module range disagrees with the server's own.
	ErrRangeMismatch = errors.New("netmpc: module range mismatch")
)

// Handshake opens every connection, client to server. It pins the wire
// version and the scheme geometry: the base-field order q and extension
// degree n when the deployment runs the PP93 scheme (zero for generic
// mappers), the module count, the flat copy-address space, and the module
// range the client believes this server owns. StoreID namespaces the
// server's store so independent systems (one per shard) can share one
// server process without colliding in the address space.
type Handshake struct {
	Version   uint16
	Q, N      uint32
	Modules   uint64
	AddrSpace uint64
	StoreID   uint32
	RangeLo   uint64 // inclusive
	RangeHi   uint64 // exclusive
}

// Handshake ack status codes.
const (
	AckOK uint8 = iota
	AckVersionMismatch
	AckSchemeMismatch
	AckRangeMismatch
	AckDraining
)

// HandshakeAck is the server's reply: its own version and geometry, and a
// status code. On any non-OK status the server closes the connection after
// the ack, and the client maps the code to the matching typed error.
//
// Gen is the server's store generation: a token minted once per store
// lifetime (process start, or explicit wipe). A client that reconnects and
// sees the generation it remembers knows the store survived — a transient
// network partition — and may re-admit the module range as-is. A different
// generation means the server restarted with a fresh (empty) store: the
// range must go through copy repair before it serves read quorums, or a
// quorum of reborn zero-timestamp cells could outvote the last committed
// write.
type HandshakeAck struct {
	Version   uint16
	Status    uint8
	Q, N      uint32
	Modules   uint64
	AddrSpace uint64
	RangeLo   uint64
	RangeHi   uint64
	Gen       uint64
}

// Bid is one processor's request in one round: the target module, the
// packed arbitration claim (precomputed client-side with mpc.Claim, so the
// server arbitrates by plain minimum without knowing the policy), and the
// staged access payload the winning module applies.
type Bid struct {
	Proc   uint32
	Module uint64
	Claim  uint64
	Addr   uint64
	Op     uint8 // 0 read, 1 write, 2 repair-write (protocol.Op)
	Value  uint64
	TS     uint64
}

// bidSize is the fixed encoding size of one Bid.
const bidSize = 4 + 8 + 8 + 8 + 1 + 8 + 8

// RoundFrame carries every bid a client directs at one server in one
// synchronous round. Seq matches the reply to the request under pipelining;
// Round is the client machine's round counter (it salts ArbRandom claims
// client-side and aids debugging server-side).
type RoundFrame struct {
	Seq   uint64
	Round uint64
	Bids  []Bid
}

// Grant is one granted bid in a round reply: the winning processor and, for
// reads, the cell's current value and timestamp.
type Grant struct {
	Proc  uint32
	Value uint64
	TS    uint64
}

// grantSize is the fixed encoding size of one Grant.
const grantSize = 4 + 8 + 8

// RoundReply answers a RoundFrame: one Grant per module that served a bid
// (each module grants at most one request per round, so there are at most
// min(len(Bids), range size) grants).
type RoundReply struct {
	Seq    uint64
	Grants []Grant
}

// BinarySize returns the number of bytes WriteTo emits: the frame envelope
// plus the fixed-size body.
func (h *Handshake) BinarySize() int { return headerSize + 2 + 4 + 4 + 8 + 8 + 4 + 8 + 8 }

// BinarySize returns the number of bytes WriteTo emits.
func (a *HandshakeAck) BinarySize() int { return headerSize + 2 + 1 + 4 + 4 + 8 + 8 + 8 + 8 + 8 }

// BinarySize returns the number of bytes WriteTo emits.
func (f *RoundFrame) BinarySize() int { return headerSize + 8 + 8 + 4 + len(f.Bids)*bidSize }

// BinarySize returns the number of bytes WriteTo emits.
func (r *RoundReply) BinarySize() int { return headerSize + 8 + 4 + len(r.Grants)*grantSize }

// appendHeader writes the frame envelope for a body of n bytes (type tag
// included in n's accounting here: n is the payload length).
func appendHeader(b []byte, typ byte, payload int) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(payload+1))
	return append(b, typ)
}

func (h *Handshake) append(b []byte) []byte {
	b = appendHeader(b, frameHandshake, h.BinarySize()-headerSize)
	b = binary.BigEndian.AppendUint16(b, h.Version)
	b = binary.BigEndian.AppendUint32(b, h.Q)
	b = binary.BigEndian.AppendUint32(b, h.N)
	b = binary.BigEndian.AppendUint64(b, h.Modules)
	b = binary.BigEndian.AppendUint64(b, h.AddrSpace)
	b = binary.BigEndian.AppendUint32(b, h.StoreID)
	b = binary.BigEndian.AppendUint64(b, h.RangeLo)
	return binary.BigEndian.AppendUint64(b, h.RangeHi)
}

func (h *Handshake) decode(p []byte) error {
	if len(p) != h.BinarySize()-headerSize {
		return fmt.Errorf("%w: handshake body %d bytes, want %d", ErrCorruptFrame, len(p), h.BinarySize()-headerSize)
	}
	h.Version = binary.BigEndian.Uint16(p[0:])
	h.Q = binary.BigEndian.Uint32(p[2:])
	h.N = binary.BigEndian.Uint32(p[6:])
	h.Modules = binary.BigEndian.Uint64(p[10:])
	h.AddrSpace = binary.BigEndian.Uint64(p[18:])
	h.StoreID = binary.BigEndian.Uint32(p[26:])
	h.RangeLo = binary.BigEndian.Uint64(p[30:])
	h.RangeHi = binary.BigEndian.Uint64(p[38:])
	return nil
}

func (a *HandshakeAck) append(b []byte) []byte {
	b = appendHeader(b, frameHandshakeAck, a.BinarySize()-headerSize)
	b = binary.BigEndian.AppendUint16(b, a.Version)
	b = append(b, a.Status)
	b = binary.BigEndian.AppendUint32(b, a.Q)
	b = binary.BigEndian.AppendUint32(b, a.N)
	b = binary.BigEndian.AppendUint64(b, a.Modules)
	b = binary.BigEndian.AppendUint64(b, a.AddrSpace)
	b = binary.BigEndian.AppendUint64(b, a.RangeLo)
	b = binary.BigEndian.AppendUint64(b, a.RangeHi)
	return binary.BigEndian.AppendUint64(b, a.Gen)
}

func (a *HandshakeAck) decode(p []byte) error {
	if len(p) != a.BinarySize()-headerSize {
		return fmt.Errorf("%w: handshake ack body %d bytes, want %d", ErrCorruptFrame, len(p), a.BinarySize()-headerSize)
	}
	a.Version = binary.BigEndian.Uint16(p[0:])
	a.Status = p[2]
	a.Q = binary.BigEndian.Uint32(p[3:])
	a.N = binary.BigEndian.Uint32(p[7:])
	a.Modules = binary.BigEndian.Uint64(p[11:])
	a.AddrSpace = binary.BigEndian.Uint64(p[19:])
	a.RangeLo = binary.BigEndian.Uint64(p[27:])
	a.RangeHi = binary.BigEndian.Uint64(p[35:])
	a.Gen = binary.BigEndian.Uint64(p[43:])
	return nil
}

func (f *RoundFrame) append(b []byte) []byte {
	b = appendHeader(b, frameRound, f.BinarySize()-headerSize)
	b = binary.BigEndian.AppendUint64(b, f.Seq)
	b = binary.BigEndian.AppendUint64(b, f.Round)
	b = binary.BigEndian.AppendUint32(b, uint32(len(f.Bids)))
	for i := range f.Bids {
		bd := &f.Bids[i]
		b = binary.BigEndian.AppendUint32(b, bd.Proc)
		b = binary.BigEndian.AppendUint64(b, bd.Module)
		b = binary.BigEndian.AppendUint64(b, bd.Claim)
		b = binary.BigEndian.AppendUint64(b, bd.Addr)
		b = append(b, bd.Op)
		b = binary.BigEndian.AppendUint64(b, bd.Value)
		b = binary.BigEndian.AppendUint64(b, bd.TS)
	}
	return b
}

func (f *RoundFrame) decode(p []byte) error {
	if len(p) < 20 {
		return fmt.Errorf("%w: round frame body %d bytes, want >= 20", ErrCorruptFrame, len(p))
	}
	f.Seq = binary.BigEndian.Uint64(p[0:])
	f.Round = binary.BigEndian.Uint64(p[8:])
	n := int(binary.BigEndian.Uint32(p[16:]))
	if len(p) != 20+n*bidSize {
		return fmt.Errorf("%w: round frame declares %d bids in %d bytes", ErrCorruptFrame, n, len(p))
	}
	if cap(f.Bids) < n {
		f.Bids = make([]Bid, n)
	}
	f.Bids = f.Bids[:n]
	off := 20
	for i := 0; i < n; i++ {
		bd := &f.Bids[i]
		bd.Proc = binary.BigEndian.Uint32(p[off:])
		bd.Module = binary.BigEndian.Uint64(p[off+4:])
		bd.Claim = binary.BigEndian.Uint64(p[off+12:])
		bd.Addr = binary.BigEndian.Uint64(p[off+20:])
		bd.Op = p[off+28]
		bd.Value = binary.BigEndian.Uint64(p[off+29:])
		bd.TS = binary.BigEndian.Uint64(p[off+37:])
		off += bidSize
	}
	return nil
}

func (r *RoundReply) append(b []byte) []byte {
	b = appendHeader(b, frameRoundReply, r.BinarySize()-headerSize)
	b = binary.BigEndian.AppendUint64(b, r.Seq)
	b = binary.BigEndian.AppendUint32(b, uint32(len(r.Grants)))
	for i := range r.Grants {
		g := &r.Grants[i]
		b = binary.BigEndian.AppendUint32(b, g.Proc)
		b = binary.BigEndian.AppendUint64(b, g.Value)
		b = binary.BigEndian.AppendUint64(b, g.TS)
	}
	return b
}

func (r *RoundReply) decode(p []byte) error {
	if len(p) < 12 {
		return fmt.Errorf("%w: round reply body %d bytes, want >= 12", ErrCorruptFrame, len(p))
	}
	r.Seq = binary.BigEndian.Uint64(p[0:])
	n := int(binary.BigEndian.Uint32(p[8:]))
	if len(p) != 12+n*grantSize {
		return fmt.Errorf("%w: round reply declares %d grants in %d bytes", ErrCorruptFrame, n, len(p))
	}
	if cap(r.Grants) < n {
		r.Grants = make([]Grant, n)
	}
	r.Grants = r.Grants[:n]
	off := 12
	for i := 0; i < n; i++ {
		g := &r.Grants[i]
		g.Proc = binary.BigEndian.Uint32(p[off:])
		g.Value = binary.BigEndian.Uint64(p[off+4:])
		g.TS = binary.BigEndian.Uint64(p[off+12:])
		off += grantSize
	}
	return nil
}

// message is the common surface of all four wire types, used by the shared
// framing helpers.
type message interface {
	BinarySize() int
	append(b []byte) []byte
	decode(p []byte) error
	frameType() byte
	WriteTo(w io.Writer) (int64, error)
	ReadFrom(r io.Reader) (int64, error)
}

func (h *Handshake) frameType() byte    { return frameHandshake }
func (a *HandshakeAck) frameType() byte { return frameHandshakeAck }
func (f *RoundFrame) frameType() byte   { return frameRound }
func (r *RoundReply) frameType() byte   { return frameRoundReply }

// writeMsg frames and writes one message using (and growing) the caller's
// scratch buffer, so steady-state rounds reuse one allocation.
func writeMsg(w io.Writer, scratch []byte, m message) ([]byte, error) {
	b := m.append(scratch[:0])
	_, err := w.Write(b)
	return b, err
}

// readFrame reads one frame envelope plus body into (and growing) the
// caller's scratch buffer, returning the type tag and the payload slice
// (valid until the next readFrame on the same buffer).
func readFrame(r io.Reader, scratch []byte) (byte, []byte, []byte, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		return 0, nil, scratch, err
	}
	size := int(binary.BigEndian.Uint32(hdr[:4]))
	if size < 1 {
		return 0, nil, scratch, fmt.Errorf("%w: zero-length frame", ErrCorruptFrame)
	}
	if size > maxFrameSize {
		return 0, nil, scratch, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, size)
	}
	if cap(scratch) < size {
		scratch = make([]byte, size)
	}
	body := scratch[:size]
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, scratch, fmt.Errorf("%w: truncated frame: %v", ErrCorruptFrame, err)
	}
	return body[0], body[1:], scratch, nil
}

// readMsg reads one frame and decodes it as m, rejecting any other frame
// type.
func readMsg(r io.Reader, scratch []byte, m message) ([]byte, error) {
	typ, payload, scratch, err := readFrame(r, scratch)
	if err != nil {
		return scratch, err
	}
	if typ != m.frameType() {
		return scratch, fmt.Errorf("%w: frame type %d, want %d", ErrCorruptFrame, typ, m.frameType())
	}
	return scratch, m.decode(payload)
}

// WriteTo writes the framed handshake. Part of the lattigo-style
// serialization triple (BinarySize, WriteTo, ReadFrom).
func (h *Handshake) WriteTo(w io.Writer) (int64, error) { return writeTo(w, h) }

// ReadFrom reads one framed handshake.
func (h *Handshake) ReadFrom(r io.Reader) (int64, error) { return readFrom(r, h) }

// WriteTo writes the framed ack.
func (a *HandshakeAck) WriteTo(w io.Writer) (int64, error) { return writeTo(w, a) }

// ReadFrom reads one framed ack.
func (a *HandshakeAck) ReadFrom(r io.Reader) (int64, error) { return readFrom(r, a) }

// WriteTo writes the framed round request.
func (f *RoundFrame) WriteTo(w io.Writer) (int64, error) { return writeTo(w, f) }

// ReadFrom reads one framed round request.
func (f *RoundFrame) ReadFrom(r io.Reader) (int64, error) { return readFrom(r, f) }

// WriteTo writes the framed round reply.
func (r *RoundReply) WriteTo(w io.Writer) (int64, error) { return writeTo(w, r) }

// ReadFrom reads one framed round reply.
func (r *RoundReply) ReadFrom(rd io.Reader) (int64, error) { return readFrom(rd, r) }

func writeTo(w io.Writer, m message) (int64, error) {
	b := m.append(make([]byte, 0, m.BinarySize()))
	n, err := w.Write(b)
	return int64(n), err
}

func readFrom(r io.Reader, m message) (int64, error) {
	scratch, err := readMsg(r, nil, m)
	if err != nil {
		return 0, err
	}
	_ = scratch
	return int64(m.BinarySize()), nil
}
