package netmpc

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func testMessages() []message {
	return []message{
		&Handshake{Version: Version, Q: 2, N: 7, Modules: 1023, AddrSpace: 16368, StoreID: 7, RangeLo: 0, RangeHi: 255},
		&HandshakeAck{Version: Version, Status: AckOK, Q: 2, N: 7, Modules: 1023, AddrSpace: 16368, RangeLo: 0, RangeHi: 255},
		&RoundFrame{Seq: 42, Round: 9, Bids: []Bid{
			{Proc: 0, Module: 3, Claim: 1<<24 | 1, Addr: 55, Op: 1, Value: 0xdeadbeef, TS: 12},
			{Proc: 5, Module: 3, Claim: 2<<24 | 6, Addr: 56, Op: 0, Value: 0, TS: 12},
			{Proc: 9, Module: 200, Claim: 10, Addr: 3201, Op: 1, Value: ^uint64(0), TS: 13},
		}},
		&RoundFrame{Seq: 1, Round: 0, Bids: nil},
		&RoundReply{Seq: 42, Grants: []Grant{{Proc: 0, Value: 77, TS: 12}, {Proc: 9, Value: 0, TS: 0}}},
		&RoundReply{Seq: 7, Grants: nil},
	}
}

// fresh returns an empty value of the same wire type as m.
func fresh(m message) message {
	switch m.(type) {
	case *Handshake:
		return &Handshake{}
	case *HandshakeAck:
		return &HandshakeAck{}
	case *RoundFrame:
		return &RoundFrame{}
	default:
		return &RoundReply{}
	}
}

func TestWireRoundTrip(t *testing.T) {
	for _, m := range testMessages() {
		var buf bytes.Buffer
		n, err := m.WriteTo(&buf)
		if err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		if int(n) != m.BinarySize() || buf.Len() != m.BinarySize() {
			t.Fatalf("wrote %d bytes, BinarySize %d, buffered %d", n, m.BinarySize(), buf.Len())
		}
		got := fresh(m)
		if _, err := got.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("ReadFrom: %v", err)
		}
		// Re-encoding the decoded message must reproduce the bytes.
		var buf2 bytes.Buffer
		if _, err := got.WriteTo(&buf2); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("round trip not byte-identical:\n  %x\n  %x", buf.Bytes(), buf2.Bytes())
		}
	}
}

func TestWireRejectsTruncation(t *testing.T) {
	for _, m := range testMessages() {
		var buf bytes.Buffer
		if _, err := m.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		full := buf.Bytes()
		// Every strict prefix must fail — with ErrCorruptFrame once the
		// header arrived, with a plain read error before that.
		for cut := 4; cut < len(full); cut++ {
			got := fresh(m)
			_, err := got.ReadFrom(bytes.NewReader(full[:cut]))
			if err == nil {
				t.Fatalf("%T: accepted %d of %d bytes", m, cut, len(full))
			}
			if !errors.Is(err, ErrCorruptFrame) {
				t.Fatalf("%T truncated at %d: got %v, want ErrCorruptFrame", m, cut, err)
			}
		}
	}
}

func TestWireRejectsWrongType(t *testing.T) {
	var buf bytes.Buffer
	h := &Handshake{Version: Version}
	if _, err := h.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var reply RoundReply
	if _, err := reply.ReadFrom(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("got %v, want ErrCorruptFrame", err)
	}
}

func TestWireRejectsOversizedFrame(t *testing.T) {
	hdr := binary.BigEndian.AppendUint32(nil, maxFrameSize+1)
	hdr = append(hdr, frameRound)
	var f RoundFrame
	if _, err := f.ReadFrom(bytes.NewReader(hdr)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
}

func TestWireRejectsBadCounts(t *testing.T) {
	// A round frame whose bid count disagrees with the payload length.
	var f RoundFrame
	f.Seq, f.Round = 1, 2
	f.Bids = []Bid{{Proc: 1, Module: 2, Claim: 3}}
	raw := f.append(nil)
	// Inflate the declared count without adding bytes.
	binary.BigEndian.PutUint32(raw[headerSize+16:], 7)
	var got RoundFrame
	if _, err := got.ReadFrom(bytes.NewReader(raw)); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("got %v, want ErrCorruptFrame", err)
	}
	hdrOnly := binary.BigEndian.AppendUint32(nil, 1)
	hdrOnly = append(hdrOnly, frameRound)
	if _, err := got.ReadFrom(bytes.NewReader(hdrOnly)); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("empty body: got %v, want ErrCorruptFrame", err)
	}
}

// FuzzWireFrame feeds arbitrary bytes to every wire type's ReadFrom: the
// decoder must never panic, never allocate beyond the frame bound, and any
// input it accepts must re-encode to a byte-identical frame (decode/encode
// idempotence — the property the netcluster lane's trace fidelity rests on).
func FuzzWireFrame(f *testing.F) {
	for _, m := range testMessages() {
		f.Add(m.append(nil))
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, frameRound})
	f.Add(binary.BigEndian.AppendUint32(nil, maxFrameSize+1))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, m := range []message{&Handshake{}, &HandshakeAck{}, &RoundFrame{}, &RoundReply{}} {
			if _, err := m.ReadFrom(bytes.NewReader(data)); err != nil {
				continue
			}
			out := m.append(nil)
			if len(out) > len(data) || !bytes.Equal(out, data[:len(out)]) {
				t.Fatalf("%T: accepted frame does not re-encode identically", m)
			}
		}
	})
}

// TestReadFromEOF pins the error taxonomy the server relies on: a clean
// close between frames is io.EOF (orderly), a close inside a frame is
// ErrCorruptFrame (torn write, logged).
func TestReadFromEOF(t *testing.T) {
	var f RoundFrame
	if _, err := f.ReadFrom(bytes.NewReader(nil)); !errors.Is(err, io.EOF) {
		t.Fatalf("empty stream: got %v, want io.EOF", err)
	}
	valid := (&RoundFrame{Seq: 3}).append(nil)
	if _, err := f.ReadFrom(bytes.NewReader(valid[:len(valid)-2])); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("torn frame: got %v, want ErrCorruptFrame", err)
	}
}
