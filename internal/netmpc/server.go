package netmpc

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// handshakeTimeout bounds how long a freshly accepted connection may take to
// present its handshake before the server drops it.
const handshakeTimeout = 5 * time.Second

// ServerConfig fixes one memserver's identity: the scheme geometry it serves
// (checked against every client handshake) and the contiguous module range
// it owns.
type ServerConfig struct {
	// Q and N are the PP93 scheme parameters (base-field order, extension
	// degree); zero for deployments using a generic mapper. They are opaque
	// to the server — it only refuses clients that disagree.
	Q, N uint32
	// Modules is the machine's total module count, AddrSpace the flat
	// copy-address space (Modules * ModuleSize).
	Modules   uint64
	AddrSpace uint64
	// RangeLo (inclusive) and RangeHi (exclusive) delimit the module range
	// this server owns. Bids outside the range are a protocol violation.
	RangeLo, RangeHi uint64
	// Logf, when set, receives connection-level diagnostics (handshake
	// rejections, corrupt frames). Nil silences them.
	Logf func(format string, args ...any)
}

// cell is one remote memory cell: the stored value and the batch timestamp
// of the write that produced it, mirroring the protocol layer's local store.
type cell struct {
	val, ts uint64
}

// store is one StoreID's namespace: a sparse cell map guarded by a mutex.
// A client holds one connection per server, so contention is reconnects and
// deliberately shared StoreIDs only.
type store struct {
	mu    sync.Mutex
	cells map[uint64]cell
}

// Server serves a contiguous module range to netmpc clients: it validates
// handshakes against its geometry, arbitrates each round frame by minimum
// packed claim per module (identical to the in-process engines), applies the
// winning bid's operation to the per-StoreID store, and replies with the
// grant set.
type Server struct {
	cfg ServerConfig

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	stores map[uint32]*store

	wg       sync.WaitGroup
	draining atomic.Bool

	// gen is the store generation: minted once per server lifetime, carried
	// in every handshake ack. The stores are in-memory, so a restart IS a
	// wipe — a client comparing generations across a reconnect learns whether
	// the cells it wrote still exist.
	gen uint64

	// frames and grants count served round frames and granted bids, for
	// tests and operational logging.
	frames atomic.Uint64
	grants atomic.Uint64
}

// genSeq disambiguates servers minted in the same clock tick (tests start
// whole clusters in a few microseconds).
var genSeq atomic.Uint64

// NewServer builds a server for the given geometry and module range, minting
// a fresh store generation.
func NewServer(cfg ServerConfig) *Server {
	return &Server{
		cfg:    cfg,
		gen:    uint64(time.Now().UnixNano())<<8 | (genSeq.Add(1)&0xff | 1),
		conns:  make(map[net.Conn]struct{}),
		stores: make(map[uint32]*store),
	}
}

// Gen returns the server's store generation.
func (s *Server) Gen() uint64 { return s.gen }

// Serve accepts connections on ln until the listener closes, blocking the
// caller. It returns nil after a Shutdown/Close-initiated stop and the
// accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.draining.Load() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if s.draining.Load() {
			conn.Close()
			continue
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// Listen is Serve over a fresh TCP listener on addr; it stores the listener
// so Addr works, and blocks like Serve.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the serving listener's address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// FramesServed returns the number of round frames processed.
func (s *Server) FramesServed() uint64 { return s.frames.Load() }

// Shutdown stops the server gracefully: new connections and new frames are
// refused, handlers get up to grace to finish (and reply to) a frame already
// in flight, and all handler goroutines are joined before it returns. After
// Shutdown the server is done — Serve has returned or will return nil.
func (s *Server) Shutdown(grace time.Duration) {
	if !s.draining.CompareAndSwap(false, true) {
		s.wg.Wait()
		return
	}
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	deadline := time.Now().Add(grace)
	for conn := range s.conns {
		// A read blocked waiting for the next frame fails at the deadline; a
		// frame already buffered or mid-flight is read and served within the
		// grace window. Handlers also check the draining flag between frames.
		conn.SetReadDeadline(deadline)
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Close stops the server immediately: the listener and every connection are
// torn down without waiting for in-flight frames.
func (s *Server) Close() {
	s.draining.Store(true)
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// storeFor returns (creating on first use) the namespace for one StoreID.
func (s *Server) storeFor(id uint32) *store {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stores[id]
	if st == nil {
		st = &store{cells: make(map[uint64]cell)}
		s.stores[id] = st
	}
	return st
}

func (s *Server) dropConn(conn net.Conn) {
	conn.Close()
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// handshake validates the client's hello against the server geometry and
// returns the ack status.
func (s *Server) ackStatus(h *Handshake) uint8 {
	switch {
	case s.draining.Load():
		return AckDraining
	case h.Version != Version:
		return AckVersionMismatch
	case h.Q != s.cfg.Q || h.N != s.cfg.N || h.Modules != s.cfg.Modules || h.AddrSpace != s.cfg.AddrSpace:
		return AckSchemeMismatch
	case h.RangeLo != s.cfg.RangeLo || h.RangeHi != s.cfg.RangeHi:
		return AckRangeMismatch
	default:
		return AckOK
	}
}

// handle runs one connection: handshake, then the round-serving loop until
// the peer disconnects, a frame is corrupt, or the server drains.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer s.dropConn(conn)

	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	var hello Handshake
	scratch, err := readMsg(conn, nil, &hello)
	if err != nil {
		s.logf("netmpc: %s: handshake read: %v", conn.RemoteAddr(), err)
		return
	}
	ack := HandshakeAck{
		Version:   Version,
		Status:    s.ackStatus(&hello),
		Q:         s.cfg.Q,
		N:         s.cfg.N,
		Modules:   s.cfg.Modules,
		AddrSpace: s.cfg.AddrSpace,
		RangeLo:   s.cfg.RangeLo,
		RangeHi:   s.cfg.RangeHi,
		Gen:       s.gen,
	}
	if scratch, err = writeMsg(conn, scratch, &ack); err != nil {
		return
	}
	if ack.Status != AckOK {
		s.logf("netmpc: %s: handshake rejected, status %d", conn.RemoteAddr(), ack.Status)
		return
	}
	conn.SetReadDeadline(time.Time{})

	st := s.storeFor(hello.StoreID)
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}

	var (
		frame   RoundFrame
		reply   RoundReply
		winners = make(map[uint64]int) // module -> index of min-claim bid
	)
	for !s.draining.Load() {
		if scratch, err = readMsg(conn, scratch, &frame); err != nil {
			if !isClosedOrEOF(err) && !s.draining.Load() {
				s.logf("netmpc: %s: round frame: %v", conn.RemoteAddr(), err)
			}
			return
		}
		reply.Seq = frame.Seq
		reply.Grants = reply.Grants[:0]
		if err := s.serveRound(st, &frame, &reply, winners); err != nil {
			s.logf("netmpc: %s: %v", conn.RemoteAddr(), err)
			return
		}
		s.frames.Add(1)
		s.grants.Add(uint64(len(reply.Grants)))
		if scratch, err = writeMsg(conn, scratch, &reply); err != nil {
			return
		}
	}
}

// serveRound arbitrates one frame (minimum packed claim per module, exactly
// the in-process engines' rule) and applies each winner's staged operation
// to the store, collecting the grant set into reply.
func (s *Server) serveRound(st *store, frame *RoundFrame, reply *RoundReply, winners map[uint64]int) error {
	clear(winners)
	for i := range frame.Bids {
		b := &frame.Bids[i]
		if b.Module < s.cfg.RangeLo || b.Module >= s.cfg.RangeHi {
			return fmt.Errorf("%w: bid at module %d outside range [%d,%d)", ErrCorruptFrame, b.Module, s.cfg.RangeLo, s.cfg.RangeHi)
		}
		if b.Addr >= s.cfg.AddrSpace {
			return fmt.Errorf("%w: bid address %d outside space %d", ErrCorruptFrame, b.Addr, s.cfg.AddrSpace)
		}
		if b.Claim == 0 {
			return fmt.Errorf("%w: zero claim", ErrCorruptFrame)
		}
		if w, ok := winners[b.Module]; !ok || b.Claim < frame.Bids[w].Claim {
			winners[b.Module] = i
		}
	}
	st.mu.Lock()
	for _, i := range winners {
		b := &frame.Bids[i]
		g := Grant{Proc: b.Proc}
		switch b.Op {
		case 0: // protocol.Read
			c := st.cells[b.Addr]
			g.Value, g.TS = c.val, c.ts
		case 2: // repair-write: install only if strictly newer, so a rebuild
			// never clobbers a concurrent normal write that already landed.
			if c := st.cells[b.Addr]; b.TS > c.ts {
				st.cells[b.Addr] = cell{val: b.Value, ts: b.TS}
			}
		default: // protocol.Write
			st.cells[b.Addr] = cell{val: b.Value, ts: b.TS}
		}
		reply.Grants = append(reply.Grants, g)
	}
	st.mu.Unlock()
	return nil
}

// isClosedOrEOF reports whether err is an orderly disconnect (clean close
// between frames, our own deadline, a reset) rather than a protocol problem
// worth logging. A torn frame — the peer dying mid-write — is deliberately
// not orderly: it wraps ErrCorruptFrame and gets logged.
func isClosedOrEOF(err error) bool {
	if errors.Is(err, net.ErrClosed) || errors.Is(err, io.EOF) || errors.Is(err, syscall.ECONNRESET) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
