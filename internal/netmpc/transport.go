package netmpc

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"detshmem/internal/mpc"
	"detshmem/internal/obs"
	"detshmem/internal/protocol"
)

// Defaults for Config's zero durations.
const (
	defaultDialTimeout  = 3 * time.Second
	defaultRoundTimeout = 2 * time.Second
	defaultReconnectMin = 50 * time.Millisecond
	defaultReconnectMax = 2 * time.Second
)

// ErrNoServers is returned by Dial when Config.Servers is empty.
var ErrNoServers = errors.New("netmpc: no servers configured")

// ErrClosed is returned for operations on a closed transport.
var ErrClosed = errors.New("netmpc: transport closed")

// ErrRoundTimeout marks a server that failed to answer a round frame within
// Config.RoundTimeout; it appears in Stats().LastErr when a slow server was
// declared down.
var ErrRoundTimeout = errors.New("netmpc: round timeout")

// Config describes a networked MPC deployment from the client side.
type Config struct {
	// Servers lists the memserver addresses in range order: server i owns
	// the contiguous module range Range(i, len(Servers), Modules).
	Servers []string
	// Q and N are the scheme parameters pinned by the handshake (zero for
	// generic mappers); Modules and AddrSpace fix the machine geometry.
	Q, N      uint32
	Modules   int64
	AddrSpace uint64
	// StoreID namespaces this client's cells on the servers. Two transports
	// with distinct StoreIDs sharing one server cluster see disjoint
	// memories — one protocol.System per StoreID, exactly like two Systems
	// each owning a local store.
	StoreID uint32
	// DialTimeout bounds each connect+handshake; RoundTimeout bounds one
	// round's fan-out/gather before the slow servers are declared failed.
	DialTimeout  time.Duration
	RoundTimeout time.Duration
	// ReconnectMin/Max bound the exponential backoff of the per-server
	// reconnect loop that runs after a server is marked down.
	ReconnectMin, ReconnectMax time.Duration
	// Logf, when set, receives connection lifecycle diagnostics.
	Logf func(format string, args ...any)
}

// Range returns the contiguous module range [lo, hi) owned by server i of
// nServers over modules total modules — the one formula shared by clients,
// memserver invocations, and the cluster harness, so everybody agrees on
// who owns what.
func Range(i, nServers int, modules int64) (lo, hi int64) {
	return int64(i) * modules / int64(nServers), int64(i+1) * modules / int64(nServers)
}

// ServerFor returns the index of the server owning module m under Range.
func ServerFor(m, modules int64, nServers int) int {
	// Inverse of Range's lo = i*modules/n: candidate i = m*n/modules, with
	// a bounded correction for integer-division edges.
	i := int(m * int64(nServers) / modules)
	for {
		lo, hi := Range(i, nServers, modules)
		switch {
		case m < lo:
			i--
		case m >= hi:
			i++
		default:
			return i
		}
	}
}

// srv is the per-server connection state.
type srv struct {
	idx    int
	addr   string
	lo, hi int64 // owned module range, [lo, hi)
	t      *Transport
	// gen is the store generation the server reported at the last accepted
	// handshake. A reconnect whose ack carries a different generation means
	// the store died with the old process: the module range is re-admitted
	// through RecoverPending (repair before read quorums) instead of
	// Recover. Written under writeMu.
	gen      uint64
	up       atomic.Bool
	reconn   atomic.Bool // a reconnect loop is running
	writeMu  sync.Mutex  // guards conn swap + writes
	conn     net.Conn
	wbuf     []byte
	seq      uint64           // last sequence number sent (rounds are serialized)
	replies  chan *RoundReply // filled by the reader goroutine
	lastErr  atomic.Value     // errBox; last failure, for Stats
	frames   obs.Counter      // round frames sent
	bids     obs.Counter      // bids sent
	recon    obs.Counter      // successful reconnects
	timeouts obs.Counter      // rounds abandoned at RoundTimeout
	rtt      obs.Histogram    // per-frame round-trip, nanoseconds
	inFlight atomic.Int64     // frames sent, reply not yet consumed
	maxInFl  obs.MaxGauge     // high-water in-flight frames
}

// Transport is the TCP implementation of protocol.Transport: persistent
// per-server connections, pipelined round fan-out, and degradation onto an
// mpc.FaultSet so the protocol's quorum re-selection and retry machinery
// (PR 5) treats a dead server exactly like a span of failed modules.
//
// A Transport backs one protocol.System (one StoreID namespace). The caller
// owns its lifetime: the System never closes it, machines built over it are
// lightweight views, and Close tears down connections and reconnect loops.
type Transport struct {
	cfg     Config
	fs      *mpc.FaultSet
	servers []*srv
	closed  atomic.Bool
	roundMu sync.Mutex // serializes Round exchanges across machine instances
	wg      sync.WaitGroup
}

// Dial connects and handshakes with every configured server, failing fast —
// with ErrVersionMismatch, ErrSchemeMismatch, or ErrRangeMismatch when the
// cluster disagrees with this client's scheme — rather than letting a
// misconfigured client run. After Dial succeeds, server loss is handled by
// degradation, not errors.
func Dial(cfg Config) (*Transport, error) {
	if len(cfg.Servers) == 0 {
		return nil, ErrNoServers
	}
	if cfg.Modules <= 0 || cfg.AddrSpace == 0 {
		return nil, fmt.Errorf("netmpc: need positive Modules and AddrSpace, got %d/%d", cfg.Modules, cfg.AddrSpace)
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = defaultDialTimeout
	}
	if cfg.RoundTimeout <= 0 {
		cfg.RoundTimeout = defaultRoundTimeout
	}
	if cfg.ReconnectMin <= 0 {
		cfg.ReconnectMin = defaultReconnectMin
	}
	if cfg.ReconnectMax < cfg.ReconnectMin {
		cfg.ReconnectMax = defaultReconnectMax
	}
	t := &Transport{cfg: cfg, fs: mpc.NewFaultSet()}
	for i, addr := range cfg.Servers {
		lo, hi := Range(i, len(cfg.Servers), cfg.Modules)
		s := &srv{idx: i, addr: addr, lo: lo, hi: hi, t: t, replies: make(chan *RoundReply, 8)}
		conn, gen, err := t.dialServer(s)
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("netmpc: server %d (%s): %w", i, addr, err)
		}
		s.conn = conn
		s.gen = gen
		s.up.Store(true)
		t.servers = append(t.servers, s)
		t.wg.Add(1)
		go s.readLoop(conn)
	}
	return t, nil
}

// Name implements protocol.Transport.
func (t *Transport) Name() string { return "tcp" }

// FaultSet exposes the transport's fault set: server loss appears here as
// the server's whole module range failing, and experiments can observe or
// seed it.
func (t *Transport) FaultSet() *mpc.FaultSet { return t.fs }

// NewMachine implements protocol.Transport: a lightweight Client view over
// the shared connections. The geometry's module count must match the
// deployment; the processor count is free (claims are computed client-side).
func (t *Transport) NewMachine(cfg mpc.Config) (protocol.Machine, error) {
	if t.closed.Load() {
		return nil, ErrClosed
	}
	if int64(cfg.Modules) != t.cfg.Modules {
		return nil, fmt.Errorf("%w: machine wants %d modules, deployment has %d", ErrSchemeMismatch, cfg.Modules, t.cfg.Modules)
	}
	if cfg.Procs <= 0 || cfg.Procs >= 1<<24-1 {
		return nil, fmt.Errorf("netmpc: bad processor count %d", cfg.Procs)
	}
	return newClient(t, cfg), nil
}

// Close tears down every connection and joins the reader and reconnect
// goroutines. Machines built over the transport stop granting; the owning
// System should be closed first.
func (t *Transport) Close() {
	if !t.closed.CompareAndSwap(false, true) {
		t.wg.Wait()
		return
	}
	for _, s := range t.servers {
		s.writeMu.Lock()
		if s.conn != nil {
			s.conn.Close()
		}
		s.writeMu.Unlock()
	}
	t.wg.Wait()
}

func (t *Transport) logf(format string, args ...any) {
	if t.cfg.Logf != nil {
		t.cfg.Logf(format, args...)
	}
}

// dialServer opens and handshakes one connection, returning the server's
// store generation and typed errors on parameter disagreement.
func (t *Transport) dialServer(s *srv) (net.Conn, uint64, error) {
	conn, err := net.DialTimeout("tcp", s.addr, t.cfg.DialTimeout)
	if err != nil {
		return nil, 0, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	conn.SetDeadline(time.Now().Add(t.cfg.DialTimeout))
	hello := Handshake{
		Version:   Version,
		Q:         t.cfg.Q,
		N:         t.cfg.N,
		Modules:   uint64(t.cfg.Modules),
		AddrSpace: t.cfg.AddrSpace,
		StoreID:   t.cfg.StoreID,
		RangeLo:   uint64(s.lo),
		RangeHi:   uint64(s.hi),
	}
	if _, err := hello.WriteTo(conn); err != nil {
		conn.Close()
		return nil, 0, err
	}
	var ack HandshakeAck
	if _, err := ack.ReadFrom(conn); err != nil {
		conn.Close()
		return nil, 0, err
	}
	if err := ackError(&ack); err != nil {
		conn.Close()
		return nil, 0, err
	}
	conn.SetDeadline(time.Time{})
	return conn, ack.Gen, nil
}

// ackError maps a handshake ack onto the typed error taxonomy.
func ackError(ack *HandshakeAck) error {
	switch ack.Status {
	case AckOK:
		return nil
	case AckVersionMismatch:
		return fmt.Errorf("%w: client %d, server %d", ErrVersionMismatch, Version, ack.Version)
	case AckSchemeMismatch:
		return fmt.Errorf("%w: server has q=%d n=%d modules=%d addrspace=%d", ErrSchemeMismatch, ack.Q, ack.N, ack.Modules, ack.AddrSpace)
	case AckRangeMismatch:
		return fmt.Errorf("%w: server owns [%d,%d)", ErrRangeMismatch, ack.RangeLo, ack.RangeHi)
	case AckDraining:
		return fmt.Errorf("netmpc: server draining")
	default:
		return fmt.Errorf("%w: unknown ack status %d", ErrCorruptFrame, ack.Status)
	}
}

// readLoop drains one connection's replies into the server's channel until
// the connection dies, then triggers degradation.
func (s *srv) readLoop(conn net.Conn) {
	defer s.t.wg.Done()
	var scratch []byte
	for {
		reply := new(RoundReply)
		var err error
		if scratch, err = readMsg(conn, scratch, reply); err != nil {
			s.markDown(conn, err)
			return
		}
		select {
		case s.replies <- reply:
		default:
			// The consumer abandoned this stream (timeout path drained and
			// gave up); drop the oldest to keep the newest visible.
			select {
			case <-s.replies:
			default:
			}
			s.replies <- reply
		}
	}
}

// markDown transitions the server to failed if conn is still its current
// connection: the connection closes, every module in the server's range
// joins the fault set (the protocol layer re-selects quorums over the
// survivors exactly as for module failures), and a reconnect loop starts.
func (s *srv) markDown(conn net.Conn, cause error) {
	s.writeMu.Lock()
	if s.conn != conn {
		s.writeMu.Unlock()
		return // a newer connection superseded this one
	}
	s.conn = nil
	s.writeMu.Unlock()
	conn.Close()
	if cause != nil {
		s.lastErr.Store(errBox{cause})
	}
	if s.up.CompareAndSwap(true, false) {
		s.t.logf("netmpc: server %d (%s) down: %v", s.idx, s.addr, cause)
		for m := s.lo; m < s.hi; m++ {
			s.t.fs.Fail(uint64(m))
		}
	}
	if !s.t.closed.Load() && s.reconn.CompareAndSwap(false, true) {
		s.t.wg.Add(1)
		go s.reconnectLoop()
	}
}

// reconnectLoop redials with exponential backoff until the server answers a
// valid handshake again, then re-admits its module range into the fault
// set. Re-admission is gated on the store generation the ack carries: the
// generation the client remembers means the store survived (a network
// partition) and the range goes straight to Recover; a new generation means
// the server restarted with an empty store — Recover here is exactly the
// pre-PR-10 bug where a quorum of reborn zero-timestamp cells could outvote
// the last committed write — so the range enters RecoverPending and serves
// read quorums only after the repair sweep certifies it.
// Parameter-mismatch rejections keep retrying at max backoff: an operator
// may be mid-redeploy, and the range stays failed until geometry agrees.
func (s *srv) reconnectLoop() {
	defer s.t.wg.Done()
	defer s.reconn.Store(false)
	backoff := s.t.cfg.ReconnectMin
	for !s.t.closed.Load() {
		time.Sleep(backoff)
		if s.t.closed.Load() {
			return
		}
		conn, gen, err := s.t.dialServer(s)
		if err != nil {
			s.lastErr.Store(errBox{err})
			backoff *= 2
			if backoff > s.t.cfg.ReconnectMax {
				backoff = s.t.cfg.ReconnectMax
			}
			continue
		}
		s.writeMu.Lock()
		if s.t.closed.Load() {
			s.writeMu.Unlock()
			conn.Close()
			return
		}
		// Drain replies stranded by the dead connection so the next round
		// doesn't mistake a stale sequence number for its own.
		for {
			select {
			case <-s.replies:
				continue
			default:
			}
			break
		}
		s.conn = conn
		sameStore := gen == s.gen
		s.gen = gen
		s.writeMu.Unlock()
		s.up.Store(true)
		s.recon.Inc()
		s.t.wg.Add(1)
		go s.readLoop(conn)
		if sameStore {
			for m := s.lo; m < s.hi; m++ {
				s.t.fs.Recover(uint64(m))
			}
			s.t.logf("netmpc: server %d (%s) reconnected, store intact", s.idx, s.addr)
		} else {
			for m := s.lo; m < s.hi; m++ {
				s.t.fs.RecoverPending(uint64(m))
			}
			s.t.logf("netmpc: server %d (%s) reconnected with a fresh store generation; range [%d,%d) queued for repair", s.idx, s.addr, s.lo, s.hi)
		}
		return
	}
}

// send writes one framed round to the server, returning false (and marking
// the server down) on any failure.
func (s *srv) send(frame *RoundFrame) bool {
	s.writeMu.Lock()
	conn := s.conn
	if conn == nil {
		s.writeMu.Unlock()
		return false
	}
	buf, err := writeMsg(conn, s.wbuf, frame)
	s.wbuf = buf
	s.writeMu.Unlock()
	if err != nil {
		s.markDown(conn, err)
		return false
	}
	s.frames.Inc()
	s.bids.Add(int64(len(frame.Bids)))
	infl := s.inFlight.Add(1)
	s.maxInFl.Observe(infl)
	return true
}

// ServerStats is one server's transport-health snapshot.
type ServerStats struct {
	Addr        string `json:"addr"`
	Up          bool   `json:"up"`
	Frames      int64  `json:"frames"`
	Bids        int64  `json:"bids"`
	Reconnects  int64  `json:"reconnects"`
	Timeouts    int64  `json:"timeouts"`
	RTTCount    int64  `json:"rtt_count"`
	RTTSumNs    int64  `json:"rtt_sum_ns"`
	RTTP99Ns    int64  `json:"rtt_p99_ns"`
	MaxInFlight int64  `json:"max_in_flight"`
	LastErr     string `json:"last_err,omitempty"`
}

// Stats snapshots per-server transport health: liveness, frame and bid
// counts, reconnects, timeouts, the RTT histogram's count/sum/p99, and the
// in-flight high-water mark.
func (t *Transport) Stats() []ServerStats {
	out := make([]ServerStats, len(t.servers))
	for i, s := range t.servers {
		st := ServerStats{
			Addr:        s.addr,
			Up:          s.up.Load(),
			Frames:      s.frames.Load(),
			Bids:        s.bids.Load(),
			Reconnects:  s.recon.Load(),
			Timeouts:    s.timeouts.Load(),
			RTTCount:    s.rtt.Count(),
			RTTSumNs:    s.rtt.Sum(),
			RTTP99Ns:    histP99(&s.rtt),
			MaxInFlight: s.maxInFl.Load(),
		}
		if e := s.lastError(); e != nil {
			st.LastErr = e.Error()
		}
		out[i] = st
	}
	return out
}

// errBox gives atomic.Value the single concrete type it requires while the
// boxed error's own type varies.
type errBox struct{ err error }

// lastError returns the server's most recent failure, or nil.
func (s *srv) lastError() error {
	if b, ok := s.lastErr.Load().(errBox); ok {
		return b.err
	}
	return nil
}

// histP99 estimates a histogram's p99 as the upper bound of the bucket
// containing the 99th percentile observation.
func histP99(h *obs.Histogram) int64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	target := (total*99 + 99) / 100
	acc := int64(0)
	for b, n := range h.Buckets() {
		acc += n
		if acc >= target {
			return obs.BucketUpper(b)
		}
	}
	return obs.BucketUpper(obs.HistBuckets - 1)
}
