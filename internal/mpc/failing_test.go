package mpc

import (
	"sync"
	"testing"

	"detshmem/internal/obs"
)

// TestFailingDynamic drives fail → drop → recover → serve through one
// machine: a bid to a failed module is dropped (never granted), the drop is
// counted, and the module serves again after Recover.
func TestFailingDynamic(t *testing.T) {
	f, err := NewFailing(Config{Procs: 4, Modules: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	reqs := []int64{0, 1, 2, Idle}
	grant := make([]bool, 4)

	if served := f.Round(reqs, grant); served != 3 {
		t.Fatalf("healthy round served %d, want 3", served)
	}
	if f.DroppedBids() != 0 {
		t.Fatalf("healthy round dropped %d bids", f.DroppedBids())
	}

	if err := f.Fail(1); err != nil {
		t.Fatal(err)
	}
	if !f.ModuleFailed(1) || f.ModuleFailed(0) {
		t.Fatalf("fault set wrong after Fail(1)")
	}
	if served := f.Round(reqs, grant); served != 2 {
		t.Fatalf("faulty round served %d, want 2", served)
	}
	if grant[1] {
		t.Fatalf("bid to failed module granted")
	}
	if f.DroppedBids() != 1 {
		t.Fatalf("dropped = %d, want 1", f.DroppedBids())
	}

	if err := f.Recover(1); err != nil {
		t.Fatal(err)
	}
	if served := f.Round(reqs, grant); served != 3 {
		t.Fatalf("recovered round served %d, want 3", served)
	}
	if f.DroppedBids() != 1 {
		t.Fatalf("dropped grew after recovery: %d", f.DroppedBids())
	}

	if err := f.Fail(99); err == nil {
		t.Fatalf("Fail(99) out of range accepted")
	}
	if err := f.Recover(99); err == nil {
		t.Fatalf("Recover(99) out of range accepted")
	}
}

// TestFailingBackwardCompatible pins the construction-time seeding path:
// modules listed at NewFailing are failed from round one, and out-of-range
// ids are rejected exactly as before.
func TestFailingBackwardCompatible(t *testing.T) {
	if _, err := NewFailing(Config{Procs: 2, Modules: 2}, []uint64{5}); err == nil {
		t.Fatalf("out-of-range failed module accepted")
	}
	f, err := NewFailing(Config{Procs: 2, Modules: 2}, []uint64{0})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	grant := make([]bool, 2)
	if served := f.Round([]int64{0, 1}, grant); served != 1 || grant[0] {
		t.Fatalf("seeded failure not honoured: served=%d grant=%v", served, grant)
	}
}

// TestFaultSetEpoch pins the epoch contract: it moves exactly on effective
// mutations, and no-op mutations report false.
func TestFaultSetEpoch(t *testing.T) {
	fs := NewFaultSet()
	e0 := fs.Epoch()
	if !fs.Fail(3) || fs.Epoch() == e0 {
		t.Fatalf("Fail(3) did not advance the epoch")
	}
	e1 := fs.Epoch()
	if fs.Fail(3) || fs.Epoch() != e1 {
		t.Fatalf("repeated Fail(3) advanced the epoch")
	}
	if !fs.Recover(3) || fs.Epoch() == e1 {
		t.Fatalf("Recover(3) did not advance the epoch")
	}
	if fs.Recover(3) {
		t.Fatalf("repeated Recover(3) reported a change")
	}
	if fs.Count() != 0 {
		t.Fatalf("count = %d after symmetric fail/recover", fs.Count())
	}
}

// TestFaultSetShared verifies two machines sharing a set see the same
// failure pattern.
func TestFaultSetShared(t *testing.T) {
	fs := NewFaultSet(2)
	a, err := NewFailingShared(Config{Procs: 4, Modules: 4}, fs)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewFailingShared(Config{Procs: 4, Modules: 4}, fs)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	grant := make([]bool, 4)
	for _, m := range []*Failing{a, b} {
		if served := m.Round([]int64{2, 2, Idle, Idle}, grant); served != 0 {
			t.Fatalf("shared failure not seen: served %d", served)
		}
	}
	fs.Recover(2)
	for _, m := range []*Failing{a, b} {
		if served := m.Round([]int64{2, Idle, Idle, Idle}, grant); served != 1 {
			t.Fatalf("shared recovery not seen: served %d", served)
		}
	}
}

// captureRecorder records every round event (test helper).
type captureRecorder struct{ evs []obs.RoundEvent }

func (c *captureRecorder) Enabled() bool                 { return true }
func (c *captureRecorder) RecordRound(ev obs.RoundEvent) { c.evs = append(c.evs, ev) }

// TestFailingDropAnnotation checks the recorder sees per-round dropped-bid
// counts, so trace totals balance issued = requests + dropped exactly.
func TestFailingDropAnnotation(t *testing.T) {
	rec := &captureRecorder{}
	f, err := NewFailing(Config{Procs: 4, Modules: 4, Recorder: rec}, []uint64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	grant := make([]bool, 4)
	f.Round([]int64{0, 1, 2, 3}, grant)
	f.Round([]int64{2, 3, Idle, Idle}, grant)
	if len(rec.evs) != 2 {
		t.Fatalf("recorded %d rounds, want 2", len(rec.evs))
	}
	if rec.evs[0].Dropped != 2 || rec.evs[0].Requests != 2 {
		t.Fatalf("round 0: dropped=%d requests=%d, want 2/2", rec.evs[0].Dropped, rec.evs[0].Requests)
	}
	if rec.evs[1].Dropped != 0 || rec.evs[1].Requests != 2 {
		t.Fatalf("round 1: dropped=%d requests=%d, want 0/2", rec.evs[1].Dropped, rec.evs[1].Requests)
	}
	if f.DroppedBids() != 2 {
		t.Fatalf("cumulative dropped = %d, want 2", f.DroppedBids())
	}
}

// TestFaultSetConcurrent hammers Fail/Recover from several goroutines while
// a machine runs rounds; run under -race this pins the snapshot publication
// protocol. Invariant checked: a round's grants never include a module that
// was failed for the whole round (here: module 0 is failed permanently
// before the rounds start, so it must never serve).
func TestFaultSetConcurrent(t *testing.T) {
	f, err := NewFailing(Config{Procs: 8, Modules: 8}, []uint64{0})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			m := uint64(1 + g) // churn modules 1..4; module 0 stays failed
			for {
				select {
				case <-stop:
					return
				default:
				}
				f.Faults().Fail(m)
				f.Faults().Recover(m)
			}
		}(g)
	}
	reqs := []int64{0, 1, 2, 3, 4, 5, 6, 7}
	grant := make([]bool, 8)
	for i := 0; i < 2000; i++ {
		f.Round(reqs, grant)
		if grant[0] {
			t.Errorf("permanently failed module 0 served a request")
			break
		}
	}
	close(stop)
	wg.Wait()
}

// FuzzFaultSet differentially checks the copy-on-write bitmask fault set
// against a plain map model: membership, count, epoch movement, and the
// round-level drop behaviour all have to agree for any fail/recover
// sequence.
func FuzzFaultSet(f *testing.F) {
	f.Add([]byte{0x01, 0x82, 0x01, 0x03})
	f.Add([]byte{0xff, 0x7f, 0x00, 0x80})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const modules = 64
		fs := NewFaultSet()
		model := map[uint64]bool{}
		epoch := fs.Epoch()
		for _, op := range ops {
			m := uint64(op & 0x3f)
			fail := op&0x80 == 0
			changed := false
			if fail {
				changed = fs.Fail(m)
			} else {
				changed = fs.Recover(m)
			}
			if changed != (model[m] != fail) {
				t.Fatalf("op %#x: changed=%v disagrees with model", op, changed)
			}
			if fail {
				model[m] = true
			} else {
				delete(model, m)
			}
			if changed {
				if fs.Epoch() <= epoch {
					t.Fatalf("epoch did not advance on an effective mutation")
				}
				epoch = fs.Epoch()
			} else if fs.Epoch() != epoch {
				t.Fatalf("epoch moved on a no-op mutation")
			}
		}
		if fs.Count() != len(model) {
			t.Fatalf("count = %d, model has %d", fs.Count(), len(model))
		}
		for _, m := range fs.Modules() {
			if !model[m] {
				t.Fatalf("Modules() lists %d, not in model", m)
			}
		}
		// One machine round: every bid to a failed module must be dropped,
		// every other bid must be eligible (some are granted).
		mach, err := NewFailingShared(Config{Procs: modules, Modules: modules}, fs)
		if err != nil {
			t.Fatal(err)
		}
		defer mach.Close()
		reqs := make([]int64, modules)
		liveBids := 0
		for p := range reqs {
			reqs[p] = int64(p % modules)
			if !model[uint64(p%modules)] {
				liveBids++
			}
		}
		grant := make([]bool, modules)
		served := mach.Round(reqs, grant)
		if served != liveBids { // distinct modules: every live bid served
			t.Fatalf("served %d, want %d live bids", served, liveBids)
		}
		if got := int(mach.DroppedBids()); got != modules-liveBids {
			t.Fatalf("dropped %d, want %d", got, modules-liveBids)
		}
		for p, g := range grant {
			if g && model[uint64(p%modules)] {
				t.Fatalf("bid at failed module %d granted", p%modules)
			}
		}
	})
}
