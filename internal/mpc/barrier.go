package mpc

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// barrier is a reusable sense-reversing barrier for a fixed set of n
// participants. The "sense" is a monotonically increasing generation
// counter: a participant records the generation on arrival and is released
// when it changes. The last arriver resets the arrival count *before*
// flipping the generation, so a released participant can immediately re-use
// the same barrier for the next phase without miscounting.
//
// Waiters spin briefly (phases arrive back-to-back in the protocol hot
// path, so the next release is usually nanoseconds away) and then park on a
// condition variable, so idle worker pools consume no CPU between batches.
// await performs no allocation in either path, which the engine's
// zero-allocation guarantee depends on.
type barrier struct {
	n     int32
	count atomic.Int32
	gen   atomic.Uint64
	mu    sync.Mutex
	cond  sync.Cond
}

// barrierSpin bounds the pre-park spin. Gosched in the loop keeps the spin
// safe under GOMAXPROCS=1 (testing.AllocsPerRun runs measurements there).
const barrierSpin = 64

func (b *barrier) init(n int) {
	b.n = int32(n)
	b.cond.L = &b.mu
}

// await blocks until all n participants have arrived, then releases every
// waiter and rearms the barrier for the next generation.
func (b *barrier) await() {
	g := b.gen.Load()
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		b.mu.Lock()
		b.gen.Add(1)
		b.mu.Unlock()
		b.cond.Broadcast()
		return
	}
	for spin := 0; spin < barrierSpin; spin++ {
		if b.gen.Load() != g {
			return
		}
		runtime.Gosched()
	}
	b.mu.Lock()
	for b.gen.Load() == g {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
