package mpc

import (
	"sync"
	"testing"
)

// TestRepairLifecycle walks one module through the full
// fail -> repairing -> certified lifecycle and checks every observable.
func TestRepairLifecycle(t *testing.T) {
	fs := NewFaultSet()
	const m = 7

	if fs.Repairing(m) || fs.RepairCount() != 0 || fs.RepairGen(m) != 0 {
		t.Fatalf("fresh set has repair state")
	}

	if !fs.Fail(m) {
		t.Fatalf("Fail(%d) = false on fresh set", m)
	}
	if !fs.RecoverPending(m) {
		t.Fatalf("RecoverPending(%d) = false on failed module", m)
	}
	if fs.Failed(m) {
		t.Errorf("module %d still failed after RecoverPending", m)
	}
	if !fs.Repairing(m) {
		t.Errorf("module %d not repairing after RecoverPending", m)
	}
	if fs.RepairCount() != 1 {
		t.Errorf("RepairCount = %d, want 1", fs.RepairCount())
	}
	gen := fs.RepairGen(m)
	if gen == 0 {
		t.Fatalf("RepairGen(%d) = 0 while repairing", m)
	}
	if got := fs.AppendRepairing(nil); len(got) != 1 || got[0] != m {
		t.Errorf("AppendRepairing = %v, want [%d]", got, m)
	}

	if fs.Certify(m, gen+1) {
		t.Errorf("Certify with wrong generation succeeded")
	}
	if fs.Certify(m, 0) {
		t.Errorf("Certify with zero generation succeeded")
	}
	if !fs.Certify(m, gen) {
		t.Fatalf("Certify(%d, %d) = false", m, gen)
	}
	if fs.Repairing(m) || fs.Failed(m) || fs.RepairCount() != 0 {
		t.Errorf("module %d not fully live after certification", m)
	}
	if fs.Certify(m, gen) {
		t.Errorf("second Certify with stale generation succeeded")
	}
}

// TestRepairReArmFencesCertification pins the double-wipe fence: a module
// re-armed (second RecoverPending) while a sweep is in flight must not be
// certifiable with the sweep's captured generation.
func TestRepairReArmFencesCertification(t *testing.T) {
	fs := NewFaultSet()
	const m = 3
	fs.Fail(m)
	fs.RecoverPending(m)
	first := fs.RepairGen(m)

	// Second restart mid-repair: re-arm. Reports false (not newly
	// repairing) but must mint a fresh generation.
	if fs.RecoverPending(m) {
		t.Errorf("re-arm RecoverPending reported newly-repairing")
	}
	second := fs.RepairGen(m)
	if second == first {
		t.Fatalf("re-arm did not advance generation (%d)", first)
	}
	if fs.Certify(m, first) {
		t.Fatalf("stale-generation certification succeeded after re-arm")
	}
	if !fs.Repairing(m) {
		t.Fatalf("module left repairing state on stale certification")
	}
	if !fs.Certify(m, second) {
		t.Fatalf("current-generation certification failed")
	}
}

// TestRepairFailClearsRepairing: a module that crashes again mid-repair is
// failed, not repairing, and the old sweep can no longer certify it.
func TestRepairFailClearsRepairing(t *testing.T) {
	fs := NewFaultSet()
	const m = 11
	fs.Fail(m)
	fs.RecoverPending(m)
	gen := fs.RepairGen(m)

	if !fs.Fail(m) {
		t.Fatalf("Fail on repairing module = false")
	}
	if fs.Repairing(m) {
		t.Errorf("failed module still repairing")
	}
	if !fs.Failed(m) {
		t.Errorf("module not failed")
	}
	if fs.Certify(m, gen) {
		t.Errorf("certified a module that failed mid-repair")
	}
	if fs.Failed(m) == false {
		t.Errorf("certification attempt resurrected a failed module")
	}

	// Plain Recover from repairing state also clears it (legacy path).
	fs.RecoverPending(m)
	if !fs.Recover(m) {
		t.Fatalf("Recover on repairing module = false")
	}
	if fs.Repairing(m) || fs.Failed(m) {
		t.Errorf("Recover left repair/fail state: repairing=%v failed=%v",
			fs.Repairing(m), fs.Failed(m))
	}
}

// TestRepairEpochAdvances: every repair transition must bump the epoch so
// protocol-layer re-filters notice.
func TestRepairEpochAdvances(t *testing.T) {
	fs := NewFaultSet()
	const m = 5
	e0 := fs.Epoch()
	fs.Fail(m)
	e1 := fs.Epoch()
	fs.RecoverPending(m)
	e2 := fs.Epoch()
	fs.RecoverPending(m) // re-arm
	e3 := fs.Epoch()
	fs.Certify(m, fs.RepairGen(m))
	e4 := fs.Epoch()
	if !(e0 < e1 && e1 < e2 && e2 < e3 && e3 < e4) {
		t.Fatalf("epochs not strictly increasing: %d %d %d %d %d", e0, e1, e2, e3, e4)
	}
}

// TestRepairingServesRounds: a repairing module is not failed, so its bids
// are served (write quorums can count it immediately).
func TestRepairingServesRounds(t *testing.T) {
	f, err := NewFailing(Config{Procs: 4, Modules: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	f.Faults().Fail(2)
	grant := make([]bool, 4)
	f.Round([]int64{2, 2, 3, Idle}, grant)
	if grant[0] || grant[1] {
		t.Fatalf("failed module served a bid")
	}

	f.Faults().RecoverPending(2)
	if !f.ModuleRepairing(2) {
		t.Fatalf("ModuleRepairing(2) = false after RecoverPending")
	}
	if f.ModuleFailed(2) {
		t.Fatalf("ModuleFailed(2) = true while repairing")
	}
	f.Round([]int64{2, Idle, Idle, Idle}, grant)
	if !grant[0] {
		t.Fatalf("repairing module did not serve a bid")
	}

	gen := f.RepairGeneration(2)
	if !f.CertifyRepair(2, gen) {
		t.Fatalf("CertifyRepair failed")
	}
	if f.ModuleRepairing(2) {
		t.Fatalf("still repairing after CertifyRepair")
	}
}

// TestRepairConcurrentChurn hammers the repair transitions from several
// goroutines; run under -race this pins the snapshot discipline.
func TestRepairConcurrentChurn(t *testing.T) {
	fs := NewFaultSet()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			m := uint64(g * 16)
			for i := 0; i < 2000; i++ {
				fs.Fail(m + uint64(i%16))
				fs.RecoverPending(m + uint64(i%16))
				if gen := fs.RepairGen(m + uint64(i%16)); gen != 0 {
					fs.Certify(m+uint64(i%16), gen)
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]uint64, 0, 64)
		for i := 0; i < 2000; i++ {
			buf = fs.AppendRepairing(buf[:0])
			_ = fs.RepairCount()
			_ = fs.Epoch()
		}
	}()
	wg.Wait()
	// Drain: certify everything left.
	for _, m := range fs.AppendRepairing(nil) {
		fs.Certify(m, fs.RepairGen(m))
	}
	if n := fs.RepairCount(); n != 0 {
		t.Fatalf("repair set not drained: %d left", n)
	}
}
