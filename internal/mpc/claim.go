package mpc

// Claim computes the packed arbitration claim processor p submits for the
// given round: the priority of the (arb, procs, seed) arbitration policy in
// the high bits and p+1 in the low 24 (zero stays reserved as the "no claim"
// sentinel). Lower claims win, and the processor id tiebreak makes claims
// unique, so the winner of a module is simply the minimum claim it received.
//
// The function is exported for networked transports (internal/netmpc):
// a remote module server that receives precomputed claims arbitrates
// identically to the in-process engines without knowing the arbitration
// policy, the processor count, or the seed — those stay client-side, which
// is what lets one server geometry serve machines of different shapes.
func Claim(arb Arbiter, procs int, seed, round uint64, p int) uint64 {
	return pack(priority(arb, procs, seed, round, p), p)
}

// ClaimProc recovers the processor id packed into a claim by Claim.
func ClaimProc(claim uint64) int { return unpackProc(claim) }
