package mpc

import (
	"testing"

	"detshmem/internal/obs"
)

// allocRoundConfig builds a machine plus round slices sized for the guard
// tests: enough processors and modules that claims genuinely contend. The
// default no-op recorder is installed explicitly: the zero-allocation
// guarantee must hold with the instrumentation layer wired in.
func allocRoundMachine(t *testing.T, parallel bool) (*Machine, []int64, []bool) {
	t.Helper()
	const procs, modules = 96, 32
	m, err := New(Config{Procs: procs, Modules: modules, Arb: ArbRandom, Seed: 7, Parallel: parallel, Workers: 4, Recorder: obs.Nop})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	reqs := make([]int64, procs)
	grant := make([]bool, procs)
	for p := range reqs {
		if p%5 == 4 {
			reqs[p] = Idle
		} else {
			reqs[p] = int64(p % modules)
		}
	}
	return m, reqs, grant
}

// TestRoundStateStateAllocsSequential pins the sequential engine's steady
// state at zero allocations per round.
func TestRoundSteadyStateAllocsSequential(t *testing.T) {
	m, reqs, grant := allocRoundMachine(t, false)
	m.Round(reqs, grant) // warm-up: grows the touched scratch
	if avg := testing.AllocsPerRun(100, func() {
		m.Round(reqs, grant)
	}); avg != 0 {
		t.Fatalf("sequential Round allocates %.2f per call in steady state, want 0", avg)
	}
}

// TestRoundSteadyStateAllocsParallel pins the worker-pool engine at zero
// allocations per round: the pool and barrier are built once in New, and a
// round is only barrier signalling plus atomic sweeps.
func TestRoundSteadyStateAllocsParallel(t *testing.T) {
	m, reqs, grant := allocRoundMachine(t, true)
	m.Round(reqs, grant) // warm-up: first round parks/wakes the fresh workers
	if avg := testing.AllocsPerRun(100, func() {
		m.Round(reqs, grant)
	}); avg != 0 {
		t.Fatalf("parallel Round allocates %.2f per call in steady state, want 0", avg)
	}
}
