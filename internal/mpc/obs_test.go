package mpc

import (
	"testing"

	"detshmem/internal/obs"
)

// TestRecorderEventsBothEngines drives identical request patterns through
// both engines with a tracer attached and checks every recorded event
// against independently computed ground truth: request counts, grants (==
// touched modules), max load, and the contention histogram.
func TestRecorderEventsBothEngines(t *testing.T) {
	const procs, modules, rounds = 48, 16, 20
	for _, parallel := range []bool{false, true} {
		name := "sequential"
		if parallel {
			name = "parallel"
		}
		t.Run(name, func(t *testing.T) {
			tracer := obs.NewTracer(rounds)
			m, err := New(Config{
				Procs: procs, Modules: modules, Arb: ArbRandom, Seed: 11,
				Parallel: parallel, Workers: 4, Recorder: tracer,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()

			reqs := make([]int64, procs)
			grant := make([]bool, procs)
			for r := 0; r < rounds; r++ {
				loads := make(map[int64]int)
				nreq := 0
				for p := range reqs {
					if (p+r)%7 == 0 {
						reqs[p] = Idle
						continue
					}
					mod := int64((p*(r+3) + r) % modules)
					reqs[p] = mod
					loads[mod]++
					nreq++
				}
				served := m.Round(reqs, grant)

				evs := tracer.Events()
				if len(evs) != r+1 {
					t.Fatalf("round %d: %d events recorded, want %d", r, len(evs), r+1)
				}
				ev := evs[r]
				if ev.Round != uint64(r) {
					t.Fatalf("round %d: event carries round %d", r, ev.Round)
				}
				if ev.Requests != nreq {
					t.Fatalf("round %d: event reports %d requests, want %d", r, ev.Requests, nreq)
				}
				if ev.Granted != served || ev.Granted != len(loads) {
					t.Fatalf("round %d: granted=%d served=%d touched=%d must all agree",
						r, ev.Granted, served, len(loads))
				}
				var wantHist obs.LoadHist
				maxLoad := 0
				for _, l := range loads {
					wantHist.Observe(l)
					if l > maxLoad {
						maxLoad = l
					}
				}
				if ev.MaxLoad != maxLoad {
					t.Fatalf("round %d: max load %d, want %d", r, ev.MaxLoad, maxLoad)
				}
				if ev.Contention != wantHist {
					t.Fatalf("round %d: contention %v, want %v", r, ev.Contention, wantHist)
				}
				if parallel {
					if ev.BarrierNs <= 0 {
						t.Fatalf("round %d: parallel engine must report barrier time, got %d", r, ev.BarrierNs)
					}
				} else if ev.BarrierNs != 0 {
					t.Fatalf("round %d: sequential engine reports barrier time %d", r, ev.BarrierNs)
				}
			}
			tot := tracer.Totals()
			if tot.Rounds != rounds {
				t.Fatalf("totals: %d rounds, want %d", tot.Rounds, rounds)
			}
		})
	}
}

// TestRecorderDisabledSkipsAssembly checks that a disabled recorder (the
// default Nop and a nil config) records nothing and that enabling via a
// collector aggregates grants exactly.
func TestRecorderDisabledSkipsAssembly(t *testing.T) {
	col := obs.NewCollector()
	for _, cfg := range []Config{
		{Procs: 8, Modules: 4},                    // nil recorder
		{Procs: 8, Modules: 4, Recorder: obs.Nop}, // explicit no-op
		{Procs: 8, Modules: 4, Recorder: col},     // enabled collector
	} {
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		reqs := []int64{0, 0, 1, 1, 2, 3, Idle, Idle}
		grant := make([]bool, 8)
		m.Round(reqs, grant)
		m.Close()
	}
	if col.MPCRounds.Load() != 1 || col.MPCGranted.Load() != 4 || col.MPCRequests.Load() != 6 {
		t.Fatalf("collector saw rounds=%d granted=%d requests=%d, want 1/4/6",
			col.MPCRounds.Load(), col.MPCGranted.Load(), col.MPCRequests.Load())
	}
	if col.MaxModuleLoad.Load() != 2 {
		t.Fatalf("max module load %d, want 2", col.MaxModuleLoad.Load())
	}
}

// TestRecorderSteadyStateAllocs pins the ENABLED tracing path at zero
// steady-state allocations per round on both engines: ring writes and the
// load-count scratch are reused, so tracing production traffic does not
// create garbage.
func TestRecorderSteadyStateAllocs(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		tracer := obs.NewTracer(64)
		m, err := New(Config{
			Procs: 96, Modules: 32, Arb: ArbRandom, Seed: 7,
			Parallel: parallel, Workers: 4, Recorder: tracer,
		})
		if err != nil {
			t.Fatal(err)
		}
		reqs := make([]int64, 96)
		grant := make([]bool, 96)
		for p := range reqs {
			reqs[p] = int64(p % 32)
		}
		m.Round(reqs, grant) // warm-up: sizes the recorder scratch
		if avg := testing.AllocsPerRun(100, func() {
			m.Round(reqs, grant)
		}); avg != 0 {
			t.Errorf("parallel=%v: traced Round allocates %.2f per call in steady state, want 0", parallel, avg)
		}
		m.Close()
	}
}
