package mpc

import "fmt"

// Cost returns the machine's cumulative interconnect cost: one unit per
// round (the MPC's unit-time module service).
func (m *Machine) Cost() uint64 { return m.round }

// Failing wraps a machine so that a set of failed modules never serves any
// request: bids addressed to them are silently dropped before arbitration.
// It models crash-faulty memory banks; the majority-quorum protocol running
// above tolerates any failure pattern that leaves every accessed variable a
// full quorum of live copies (for the PP scheme, Theorem 2 implies any two
// failed modules can disable at most one variable).
type Failing struct {
	inner   *Machine
	failed  map[int64]bool
	scratch []int64
}

// NewFailing builds a failing wrapper over a fresh machine.
func NewFailing(cfg Config, failed []uint64) (*Failing, error) {
	inner, err := New(cfg)
	if err != nil {
		return nil, err
	}
	fm := make(map[int64]bool, len(failed))
	for _, j := range failed {
		if j >= uint64(cfg.Modules) {
			return nil, fmt.Errorf("mpc: failed module %d out of range [0,%d)", j, cfg.Modules)
		}
		fm[int64(j)] = true
	}
	return &Failing{
		inner:   inner,
		failed:  fm,
		scratch: make([]int64, cfg.Procs),
	}, nil
}

// Round filters out requests to failed modules and runs the inner round.
func (f *Failing) Round(reqs []int64, grant []bool) int {
	for p, mod := range reqs {
		if f.failed[mod] {
			f.scratch[p] = Idle
		} else {
			f.scratch[p] = mod
		}
	}
	return f.inner.Round(f.scratch, grant)
}

// Cost delegates to the inner machine.
func (f *Failing) Cost() uint64 { return f.inner.Cost() }

// Close stops the inner machine's worker pool.
func (f *Failing) Close() { f.inner.Close() }
