package mpc

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"detshmem/internal/obs"
)

// Cost returns the machine's cumulative interconnect cost: one unit per
// round (the MPC's unit-time module service).
func (m *Machine) Cost() uint64 { return m.round }

// faultState is one immutable snapshot of the failed-module set. Mutators
// build a fresh snapshot and publish it atomically, so Round can load one
// pointer and see a consistent set for the whole round.
//
// Besides the failed set it carries the repairing set: modules that have
// come back (RecoverPending) but whose copies have not yet been rebuilt
// from surviving majorities. Repairing modules serve bids normally — they
// count toward write quorums immediately — but the protocol layer bars them
// from read quorums until their repair epoch is certified, because their
// store may be stale (in-process recovery) or reborn empty (a wiped
// memserver restart).
type faultState struct {
	epoch uint64   // bumped on every effective Fail/Recover/RecoverPending/Certify
	bits  []uint64 // bitmask of failed module ids
	count int      // number of failed modules
	// Repair state: a bitmask mirror for the hot read-gating lookup plus a
	// generation per repairing module. Certification is fenced on the
	// generation, so a module wiped again mid-repair (a second restart)
	// cannot be certified by the sweep that started before the re-wipe.
	rbits []uint64          // bitmask of repairing module ids
	rgen  map[uint64]uint64 // repairing module -> repair generation (>0)
}

var healthyState = &faultState{}

func (s *faultState) failed(mod int64) bool {
	w := int(mod >> 6)
	return w >= 0 && w < len(s.bits) && s.bits[w]>>(uint64(mod)&63)&1 == 1
}

func (s *faultState) repairing(mod int64) bool {
	w := int(mod >> 6)
	return w >= 0 && w < len(s.rbits) && s.rbits[w]>>(uint64(mod)&63)&1 == 1
}

// FaultSet is a dynamic crash-fault model for memory modules: a set of
// failed module ids that can be mutated at any time, including concurrently
// with Failing.Round. Mutations are serialized by a mutex and published as
// immutable epoch-stamped snapshots through an atomic pointer; a round loads
// exactly one snapshot, so it observes a single consistent fault set (a
// Fail landing mid-round takes effect at the next round, exactly like a bank
// crashing between synchronous MPC steps).
//
// One FaultSet may be shared by many Failing machines — that is how a
// sharded deployment models one physical bank failure hitting every shard's
// view at once.
type FaultSet struct {
	mu    sync.Mutex
	state atomic.Pointer[faultState]
	// genSeq mints repair generations (guarded by mu). It never resets, so
	// every RecoverPending — including a re-arm of a module already under
	// repair — gets a generation no earlier sweep could have captured.
	genSeq uint64
}

// NewFaultSet builds a fault set with the given modules already failed.
func NewFaultSet(failed ...uint64) *FaultSet {
	fs := &FaultSet{}
	fs.state.Store(healthyState)
	for _, m := range failed {
		fs.Fail(m)
	}
	return fs
}

// moduleState is a module's position in the fail/repair lifecycle.
type moduleState uint8

const (
	stLive moduleState = iota
	stFailed
	stRepairing
)

// clone copies cur into a fresh snapshot with room for bit w in both masks
// and the epoch bumped.
func (fs *FaultSet) clone(cur *faultState, w int) *faultState {
	n, rn := len(cur.bits), len(cur.rbits)
	if w >= n {
		n = w + 1
	}
	if w >= rn {
		rn = w + 1
	}
	next := &faultState{
		epoch: cur.epoch + 1,
		bits:  make([]uint64, n),
		rbits: make([]uint64, rn),
		count: cur.count,
		rgen:  make(map[uint64]uint64, len(cur.rgen)),
	}
	copy(next.bits, cur.bits)
	copy(next.rbits, cur.rbits)
	for k, v := range cur.rgen {
		next.rgen[k] = v
	}
	return next
}

// mutate installs a new snapshot moving module m to the target state,
// returning whether the visible set changed. A transition to stRepairing
// always takes effect (it re-arms the repair generation even when m is
// already repairing).
func (fs *FaultSet) mutate(m uint64, target moduleState) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	cur := fs.state.Load()
	if cur == nil {
		cur = healthyState
	}
	w, b := int(m>>6), uint64(1)<<(m&63)
	failed := w < len(cur.bits) && cur.bits[w]&b != 0
	repairing := w < len(cur.rbits) && cur.rbits[w]&b != 0
	switch target {
	case stFailed:
		if failed {
			return false
		}
	case stLive:
		if !failed && !repairing {
			return false
		}
	}
	next := fs.clone(cur, w)
	if failed != (target == stFailed) {
		if target == stFailed {
			next.bits[w] |= b
			next.count++
		} else {
			next.bits[w] &^= b
			next.count--
		}
	}
	if target == stRepairing {
		next.rbits[w] |= b
		fs.genSeq++
		next.rgen[m] = fs.genSeq
	} else {
		next.rbits[w] &^= b
		delete(next.rgen, m)
	}
	fs.state.Store(next)
	return !repairing || target != stRepairing
}

// Fail marks module m as crashed; bids addressed to it are dropped from the
// next round on. A repairing module that fails leaves the repairing set (its
// in-flight repair sweep can no longer certify it). It reports whether the
// set changed (false if m was already failed). Safe to call concurrently
// with Round.
func (fs *FaultSet) Fail(m uint64) bool { return fs.mutate(m, stFailed) }

// Recover marks module m as live again — immediately, with no repair gate.
// This is the legacy transition for in-process recovery, where the module's
// store survived the outage: stale copies are value-safe under the quorum
// intersection rule, they just contribute no freshness. Deployments that
// want the copies rebuilt use RecoverPending instead. It reports whether
// the set changed. Safe to call concurrently with Round.
func (fs *FaultSet) Recover(m uint64) bool { return fs.mutate(m, stLive) }

// RecoverPending moves module m into the repairing state: it serves bids
// again from the next round on (write quorums count it immediately), but
// stays barred from read quorums until the repair scheduler rebuilds its
// copies from surviving majorities and certifies it (Certify). Calling it
// on a module already under repair re-arms the repair generation — the
// transition a wiped server restarting twice mid-repair needs. It reports
// whether m was newly moved into the repairing state (false on a re-arm).
// Safe to call concurrently with Round.
func (fs *FaultSet) RecoverPending(m uint64) bool { return fs.mutate(m, stRepairing) }

// Certify completes module m's repair: if m is still repairing with the
// given generation, it becomes fully live (readable) again. A stale
// generation — the module failed or was re-armed after the caller's sweep
// began — leaves the state untouched, so a certification can never leak a
// store the sweep did not actually rebuild. It reports whether m was
// certified. Safe to call concurrently with Round.
func (fs *FaultSet) Certify(m, gen uint64) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	cur := fs.state.Load()
	if cur == nil {
		cur = healthyState
	}
	if cur.rgen[m] != gen || gen == 0 {
		return false
	}
	w, b := int(m>>6), uint64(1)<<(m&63)
	next := fs.clone(cur, w)
	next.rbits[w] &^= b
	delete(next.rgen, m)
	fs.state.Store(next)
	return true
}

// Repairing reports whether module m is currently under repair.
func (fs *FaultSet) Repairing(m uint64) bool { return fs.snapshot().repairing(int64(m)) }

// RepairGen returns module m's current repair generation, or 0 when m is
// not repairing.
func (fs *FaultSet) RepairGen(m uint64) uint64 { return fs.snapshot().rgen[m] }

// RepairCount returns the number of modules currently under repair.
func (fs *FaultSet) RepairCount() int { return len(fs.snapshot().rgen) }

// AppendRepairing appends the currently repairing module ids to buf in
// increasing order and returns the extended slice.
func (fs *FaultSet) AppendRepairing(buf []uint64) []uint64 {
	s := fs.snapshot()
	for w, word := range s.rbits {
		for word != 0 {
			buf = append(buf, uint64(w)<<6|uint64(bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	return buf
}

// snapshot returns the current immutable state (never nil).
func (fs *FaultSet) snapshot() *faultState {
	if s := fs.state.Load(); s != nil {
		return s
	}
	return healthyState
}

// Failed reports whether module m is currently failed.
func (fs *FaultSet) Failed(m uint64) bool { return fs.snapshot().failed(int64(m)) }

// Epoch returns the mutation epoch: it increases on every effective Fail or
// Recover, so a caller can cheaply detect "the fault set changed since I
// last looked" without comparing sets.
func (fs *FaultSet) Epoch() uint64 { return fs.snapshot().epoch }

// Count returns the number of currently failed modules.
func (fs *FaultSet) Count() int { return fs.snapshot().count }

// Modules returns the currently failed module ids in increasing order.
func (fs *FaultSet) Modules() []uint64 {
	s := fs.snapshot()
	out := make([]uint64, 0, s.count)
	for w, word := range s.bits {
		for word != 0 {
			out = append(out, uint64(w)<<6|uint64(bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	return out
}

// Failing wraps a machine so that failed modules never serve any request:
// bids addressed to them are dropped (converted to Idle) before arbitration,
// and counted so instrumentation can balance issued bids against served-or-
// dropped exactly. It models crash-faulty memory banks; the majority-quorum
// protocol running above tolerates any failure pattern that leaves every
// accessed variable a full quorum of live copies (for the PP scheme,
// Theorem 2 implies any two failed modules can disable at most one
// variable).
//
// Unlike the construction-time wrapper it replaced, the fault set is
// dynamic: Fail and Recover may be called at any time, from any goroutine,
// concurrently with Round. Round snapshots the set once per round, so each
// round sees one consistent failure pattern.
//
// Failing implements protocol.FaultView, which is what unlocks the access
// protocol's quorum re-selection and retry behaviour.
type Failing struct {
	inner   *Machine
	faults  *FaultSet
	scratch []int64
	modules int

	dropped atomic.Uint64 // cumulative bids dropped at failed modules
	// roundDropped is the drop count of the round currently executing; the
	// drop annotator copies it into the round's obs event. Written by Round
	// and read by the recorder callback on the same goroutine (recorders run
	// synchronously inside inner.Round).
	roundDropped int
}

// dropAnnotator wraps the user's recorder so every RoundEvent that passes
// through a Failing machine carries the round's dropped-bid count; without
// it, bids silently swallowed by failed modules would make the trace totals
// (Σ event requests vs. Σ protocol issued bids) diverge under faults.
type dropAnnotator struct {
	inner obs.Recorder
	f     *Failing
}

func (d *dropAnnotator) Enabled() bool { return d.inner.Enabled() }

func (d *dropAnnotator) RecordRound(ev obs.RoundEvent) {
	ev.Dropped = d.f.roundDropped
	d.inner.RecordRound(ev)
}

// NewFailing builds a failing wrapper over a fresh machine with its own
// fault set, seeded with the given failed modules. The set remains mutable
// through Fail/Recover/Faults.
func NewFailing(cfg Config, failed []uint64) (*Failing, error) {
	for _, j := range failed {
		if j >= uint64(cfg.Modules) {
			return nil, fmt.Errorf("mpc: failed module %d out of range [0,%d)", j, cfg.Modules)
		}
	}
	return NewFailingShared(cfg, NewFaultSet(failed...))
}

// NewFailingShared builds a failing wrapper over a fresh machine that
// consults the caller's fault set — share one set across machines to model
// one failure pattern seen by several shards.
func NewFailingShared(cfg Config, fs *FaultSet) (*Failing, error) {
	if fs == nil {
		fs = NewFaultSet()
	}
	f := &Failing{faults: fs, modules: cfg.Modules}
	if cfg.Recorder != nil && cfg.Recorder != obs.Nop {
		cfg.Recorder = &dropAnnotator{inner: cfg.Recorder, f: f}
	}
	inner, err := New(cfg)
	if err != nil {
		return nil, err
	}
	f.inner = inner
	f.scratch = make([]int64, cfg.Procs)
	return f, nil
}

// Fail marks module m as crashed, effective from the next round. It returns
// an error if m is out of range for this machine.
func (f *Failing) Fail(m uint64) error {
	if m >= uint64(f.modules) {
		return fmt.Errorf("mpc: failed module %d out of range [0,%d)", m, f.modules)
	}
	f.faults.Fail(m)
	return nil
}

// Recover marks module m as live again, effective from the next round.
func (f *Failing) Recover(m uint64) error {
	if m >= uint64(f.modules) {
		return fmt.Errorf("mpc: recovered module %d out of range [0,%d)", m, f.modules)
	}
	f.faults.Recover(m)
	return nil
}

// Faults returns the machine's fault set, for callers that want to drive a
// failure schedule directly (or share the set with other machines).
func (f *Failing) Faults() *FaultSet { return f.faults }

// DroppedBids returns the cumulative number of bids dropped because they
// addressed a failed module.
func (f *Failing) DroppedBids() uint64 { return f.dropped.Load() }

// ModuleFailed reports whether module m is failed as of the latest
// snapshot. Part of protocol.FaultView.
func (f *Failing) ModuleFailed(m int64) bool {
	return m >= 0 && f.faults.snapshot().failed(m)
}

// FaultEpoch returns the fault set's mutation epoch. Part of
// protocol.FaultView.
func (f *Failing) FaultEpoch() uint64 { return f.faults.Epoch() }

// FaultCount returns the number of currently failed modules. Part of
// protocol.FaultView.
func (f *Failing) FaultCount() int { return f.faults.Count() }

// RecoverPending marks module m as repairing (serving, write-countable,
// read-barred) from the next round on, effective until the repair scheduler
// certifies it. It returns an error if m is out of range.
func (f *Failing) RecoverPending(m uint64) error {
	if m >= uint64(f.modules) {
		return fmt.Errorf("mpc: recovered module %d out of range [0,%d)", m, f.modules)
	}
	f.faults.RecoverPending(m)
	return nil
}

// ModuleRepairing reports whether module m is under repair as of the latest
// snapshot. Part of protocol.RepairView.
func (f *Failing) ModuleRepairing(m int64) bool {
	return m >= 0 && f.faults.snapshot().repairing(m)
}

// RepairGeneration returns module m's repair generation (0 when not
// repairing). Part of protocol.RepairView.
func (f *Failing) RepairGeneration(m uint64) uint64 { return f.faults.RepairGen(m) }

// RepairCount returns the number of modules under repair. Part of
// protocol.RepairView.
func (f *Failing) RepairCount() int { return f.faults.RepairCount() }

// AppendRepairing appends the repairing module ids to buf. Part of
// protocol.RepairView.
func (f *Failing) AppendRepairing(buf []uint64) []uint64 { return f.faults.AppendRepairing(buf) }

// CertifyRepair completes module m's repair if gen is still current. Part of
// protocol.RepairView.
func (f *Failing) CertifyRepair(m, gen uint64) bool { return f.faults.Certify(m, gen) }

// Round filters out requests to failed modules and runs the inner round.
// The fault set is sampled once, so the whole round sees one consistent
// failure pattern even while Fail/Recover run concurrently.
func (f *Failing) Round(reqs []int64, grant []bool) int {
	st := f.faults.snapshot()
	dropped := 0
	for p, mod := range reqs {
		if mod != Idle && st.failed(mod) {
			f.scratch[p] = Idle
			dropped++
		} else {
			f.scratch[p] = mod
		}
	}
	f.roundDropped = dropped
	if dropped != 0 {
		f.dropped.Add(uint64(dropped))
	}
	return f.inner.Round(f.scratch, grant)
}

// Cost delegates to the inner machine.
func (f *Failing) Cost() uint64 { return f.inner.Cost() }

// Close stops the inner machine's worker pool.
func (f *Failing) Close() { f.inner.Close() }
