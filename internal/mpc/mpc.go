// Package mpc simulates the Module Parallel Computer of Mehlhorn–Vishkin:
// N processors and N memory modules connected by a complete bipartite graph,
// proceeding in synchronous rounds. In one round every processor may direct
// one access request at one module, and every module serves exactly one of
// the requests it receives. Access time for a batch is therefore the number
// of rounds, which is governed by the maximum per-module congestion — the
// quantity the Pietracaprina–Preparata memory organization minimizes.
//
// Two engines implement identical round semantics: a sequential one and a
// parallel one backed by a persistent worker pool (workers are spawned once
// in New and reused for every round; the claim, grant and reset sweeps are
// phases signalled through a reusable sense-reversing barrier, with workers
// racing atomic min-priority claims per module). Both engines are
// allocation-free in steady state. Tests assert they produce identical
// grant vectors for every arbiter.
package mpc

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"detshmem/internal/obs"
)

// Idle marks a processor that makes no request this round.
const Idle int64 = -1

// Arbiter selects which of a module's competing requests is served.
type Arbiter int

const (
	// ArbLowest serves the requesting processor with the lowest id.
	ArbLowest Arbiter = iota
	// ArbRoundRobin rotates priority among processors by round number.
	ArbRoundRobin
	// ArbRandom uses a seeded per-round pseudorandom priority.
	ArbRandom
)

func (a Arbiter) String() string {
	switch a {
	case ArbLowest:
		return "lowest"
	case ArbRoundRobin:
		return "round-robin"
	case ArbRandom:
		return "random"
	}
	return fmt.Sprintf("arbiter(%d)", int(a))
}

// Config selects machine parameters.
type Config struct {
	Procs    int     // number of processors (P)
	Modules  int     // number of memory modules (N)
	Arb      Arbiter // arbitration policy
	Seed     uint64  // seed for ArbRandom
	Parallel bool    // use the persistent-worker-pool engine
	Workers  int     // pool size (defaults to GOMAXPROCS)
	// Recorder receives one obs.RoundEvent per executed round on either
	// engine. Nil means no instrumentation (the default): Round then costs
	// one disabled-recorder check and stays allocation-free. A recorder
	// whose Enabled() reports true buys one extra O(P) contention sweep per
	// round, still allocation-free in steady state.
	Recorder obs.Recorder
}

// Machine is a synchronous MPC. Methods are not safe for concurrent use by
// multiple callers; the parallel engine's worker pool is internal.
//
// A parallel machine owns a pool of goroutines for its whole lifetime; call
// Close when done with it. Leaked machines are closed by a GC finalizer, so
// Close is an optimization, not a correctness requirement.
type Machine struct {
	cfg     Config
	round   uint64 // rounds executed so far
	winner  []uint64
	touched []int64 // sequential engine scratch, reused across rounds
	pool    *pool   // persistent parallel engine; nil when !cfg.Parallel

	rec obs.Recorder // never nil; obs.Nop when no recorder configured
	// Recorder scratch, sized on first enabled round and reused: per-module
	// load counts and the touched-module list for clearing them.
	loads      []int32
	recTouched []int64
}

// New builds a machine. Procs and Modules must be positive. When
// cfg.Parallel is set the worker pool is spawned here, once, and serves
// every subsequent Round.
func New(cfg Config) (*Machine, error) {
	if cfg.Procs <= 0 || cfg.Modules <= 0 {
		return nil, fmt.Errorf("mpc: need positive Procs and Modules, got %d/%d", cfg.Procs, cfg.Modules)
	}
	if cfg.Procs >= 1<<24-1 {
		return nil, fmt.Errorf("mpc: 2^24-1 or more processors unsupported by claim packing")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	m := &Machine{
		cfg:     cfg,
		winner:  make([]uint64, cfg.Modules),
		touched: make([]int64, 0, 64),
		rec:     cfg.Recorder,
	}
	if m.rec == nil {
		m.rec = obs.Nop
	}
	if cfg.Parallel {
		m.pool = newPool(cfg, m.winner)
		// The pool's workers reference only the pool, never the Machine, so
		// an unreachable Machine is collectable and the finalizer can stop
		// the pool for callers that never call Close.
		runtime.SetFinalizer(m, (*Machine).Close)
	}
	return m, nil
}

// Close stops the worker pool of a parallel machine. It is idempotent, must
// not be called concurrently with Round, and after it returns Round panics.
// Sequential machines have no resources; Close is a no-op for them.
func (m *Machine) Close() {
	if m.pool == nil {
		return
	}
	m.pool.stop = true
	m.pool.bar.await() // release the workers into the stop check
	m.pool = nil
	runtime.SetFinalizer(m, nil)
}

// Procs returns the processor count.
func (m *Machine) Procs() int { return m.cfg.Procs }

// Modules returns the module count.
func (m *Machine) Modules() int { return m.cfg.Modules }

// Rounds returns the number of rounds executed so far.
func (m *Machine) Rounds() uint64 { return m.round }

// ResetRounds zeroes the round counter (metrics convenience).
func (m *Machine) ResetRounds() { m.round = 0 }

// priority computes the arbitration rank of processor p in the given round;
// lower wins. It is a pure function of its arguments so the sequential
// engine and every pool worker arbitrate identically. Ranks are bounded to
// 40 bits so a packed claim fits one word.
func priority(arb Arbiter, procs int, seed, round uint64, p int) uint64 {
	switch arb {
	case ArbRoundRobin:
		return uint64((p + int(round)*7919) % procs)
	case ArbRandom:
		return splitmix(seed^round*0x9e3779b97f4a7c15^uint64(p)) & (1<<40 - 1)
	default:
		return uint64(p)
	}
}

// pack encodes (priority, proc+1) into one nonzero claim word so atomic-min
// arbitration resolves priority first and processor id as tiebreak; zero is
// reserved as the "no claim yet" sentinel.
func pack(pri uint64, p int) uint64 { return pri<<24 | uint64(p+1) }

func unpackProc(w uint64) int { return int(w&(1<<24-1)) - 1 }

// Round executes one synchronous round. reqs[p] is the module processor p
// addresses this round, or Idle. grant[p] is set to true iff p's request was
// the one its module served. It returns the number of requests served.
// len(reqs) and len(grant) must equal Procs(). Steady-state rounds perform
// no allocation on either engine.
func (m *Machine) Round(reqs []int64, grant []bool) int {
	if len(reqs) != m.cfg.Procs || len(grant) != m.cfg.Procs {
		panic(fmt.Sprintf("mpc: round slices sized %d/%d, want %d", len(reqs), len(grant), m.cfg.Procs))
	}
	var served int
	var barrierNs int64
	traced := m.rec.Enabled()
	if m.cfg.Parallel {
		if m.pool == nil {
			panic("mpc: Round on closed machine")
		}
		if traced {
			t0 := time.Now()
			served = m.pool.exec(reqs, grant, m.round)
			barrierNs = time.Since(t0).Nanoseconds()
		} else {
			served = m.pool.exec(reqs, grant, m.round)
		}
	} else {
		served = m.roundSequential(reqs, grant)
	}
	if traced {
		m.record(reqs, served, barrierNs)
	}
	m.round++
	return served
}

// record assembles the round's obs.RoundEvent: one sweep tallies per-module
// loads into the reused scratch, a second sweep over the touched modules
// builds the contention histogram and zeroes the tallies again.
func (m *Machine) record(reqs []int64, served int, barrierNs int64) {
	if m.loads == nil {
		m.loads = make([]int32, m.cfg.Modules)
	}
	ev := obs.RoundEvent{Round: m.round, Granted: served, BarrierNs: barrierNs}
	touched := m.recTouched[:0]
	for _, mod := range reqs {
		if mod == Idle {
			continue
		}
		ev.Requests++
		if m.loads[mod] == 0 {
			touched = append(touched, mod)
		}
		m.loads[mod]++
	}
	for _, mod := range touched {
		load := int(m.loads[mod])
		ev.Contention.Observe(load)
		if load > ev.MaxLoad {
			ev.MaxLoad = load
		}
		m.loads[mod] = 0
	}
	m.recTouched = touched
	m.rec.RecordRound(ev)
}

func (m *Machine) roundSequential(reqs []int64, grant []bool) int {
	touched := m.touched[:0]
	for p, mod := range reqs {
		grant[p] = false
		if mod == Idle {
			continue
		}
		if mod < 0 || mod >= int64(m.cfg.Modules) {
			panic(fmt.Sprintf("mpc: processor %d addresses invalid module %d", p, mod))
		}
		claim := pack(priority(m.cfg.Arb, m.cfg.Procs, m.cfg.Seed, m.round, p), p)
		switch cur := m.winner[mod]; {
		case cur == 0:
			touched = append(touched, mod)
			m.winner[mod] = claim
		case claim < cur:
			m.winner[mod] = claim
		}
	}
	served := 0
	for p, mod := range reqs {
		if mod == Idle {
			continue
		}
		if unpackProc(m.winner[mod]) == p {
			grant[p] = true
			served++
		}
	}
	for _, mod := range touched {
		m.winner[mod] = 0
	}
	m.touched = touched
	return served
}

// grantCount is one worker's served tally, padded to its own cache line so
// workers on adjacent ids do not false-share while tallying.
type grantCount struct {
	n int64
	_ [56]byte
}

// pool is the persistent parallel engine. Workers are spawned once and live
// until stop; each round the coordinator publishes (reqs, grant, round) and
// drives the claim → grant → reset sweeps through four barrier generations:
//
//	barrier 1  releases the workers into the claim sweep
//	barrier 2  claims final; workers start the grant sweep
//	barrier 3  grants final; workers start the reset sweep
//	barrier 4  reset done; the coordinator may return and the caller may
//	           reuse reqs/grant
//
// The pool deliberately does not reference its Machine so that machines can
// be finalized (see New).
type pool struct {
	arb     Arbiter
	seed    uint64
	procs   int
	workers int
	chunk   int
	winner  []uint64
	counts  []grantCount
	bar     barrier

	// Per-round state, published by the coordinator before barrier 1 (the
	// barrier's release establishes the happens-before edge to the workers).
	reqs  []int64
	grant []bool
	gen   uint64
	stop  bool
}

func newPool(cfg Config, winner []uint64) *pool {
	pl := &pool{
		arb:     cfg.Arb,
		seed:    cfg.Seed,
		procs:   cfg.Procs,
		workers: cfg.Workers,
		chunk:   (cfg.Procs + cfg.Workers - 1) / cfg.Workers,
		winner:  winner,
		counts:  make([]grantCount, cfg.Workers),
	}
	pl.bar.init(cfg.Workers + 1) // workers + the coordinator
	for g := 0; g < cfg.Workers; g++ {
		go pl.run(g)
	}
	return pl
}

// exec is the coordinator side of one parallel round.
func (pl *pool) exec(reqs []int64, grant []bool, round uint64) int {
	pl.reqs, pl.grant, pl.gen = reqs, grant, round
	pl.bar.await() // 1: release claim sweep
	pl.bar.await() // 2: claims final
	pl.bar.await() // 3: grants final
	pl.bar.await() // 4: reset done
	served := 0
	for i := range pl.counts {
		served += int(pl.counts[i].n)
	}
	return served
}

// run is one pool worker, owning the processor range [id·chunk, (id+1)·chunk).
func (pl *pool) run(id int) {
	lo := id * pl.chunk
	hi := lo + pl.chunk
	if lo > pl.procs {
		lo = pl.procs
	}
	if hi > pl.procs {
		hi = pl.procs
	}
	for {
		pl.bar.await() // round start (or shutdown)
		if pl.stop {
			return
		}
		reqs, grant := pl.reqs, pl.grant
		// Claim sweep: race atomic-min on per-module claim words.
		for p := lo; p < hi; p++ {
			grant[p] = false
			mod := reqs[p]
			if mod == Idle {
				continue
			}
			claim := pack(priority(pl.arb, pl.procs, pl.seed, pl.gen, p), p)
			addr := &pl.winner[mod]
			for {
				cur := atomic.LoadUint64(addr)
				if cur != 0 && cur <= claim {
					break
				}
				if atomic.CompareAndSwapUint64(addr, cur, claim) {
					break
				}
			}
		}
		pl.bar.await() // claims final
		var local int64
		for p := lo; p < hi; p++ {
			mod := reqs[p]
			if mod == Idle {
				continue
			}
			if unpackProc(atomic.LoadUint64(&pl.winner[mod])) == p {
				grant[p] = true
				local++
			}
		}
		pl.counts[id].n = local
		pl.bar.await() // grants final
		for p := lo; p < hi; p++ {
			if mod := reqs[p]; mod != Idle {
				atomic.StoreUint64(&pl.winner[mod], 0)
			}
		}
		pl.bar.await() // reset done
	}
}

// splitmix is SplitMix64, a fast deterministic 64-bit mixer.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	return x ^ x>>31
}
