// Package mpc simulates the Module Parallel Computer of Mehlhorn–Vishkin:
// N processors and N memory modules connected by a complete bipartite graph,
// proceeding in synchronous rounds. In one round every processor may direct
// one access request at one module, and every module serves exactly one of
// the requests it receives. Access time for a batch is therefore the number
// of rounds, which is governed by the maximum per-module congestion — the
// quantity the Pietracaprina–Preparata memory organization minimizes.
//
// Two engines implement identical round semantics: a sequential one and a
// goroutine-parallel one (workers racing atomic min-priority claims per
// module, with barrier synchronization between the claim and grant sweeps).
// Tests assert they produce identical grant vectors for every arbiter.
package mpc

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Idle marks a processor that makes no request this round.
const Idle int64 = -1

// Arbiter selects which of a module's competing requests is served.
type Arbiter int

const (
	// ArbLowest serves the requesting processor with the lowest id.
	ArbLowest Arbiter = iota
	// ArbRoundRobin rotates priority among processors by round number.
	ArbRoundRobin
	// ArbRandom uses a seeded per-round pseudorandom priority.
	ArbRandom
)

func (a Arbiter) String() string {
	switch a {
	case ArbLowest:
		return "lowest"
	case ArbRoundRobin:
		return "round-robin"
	case ArbRandom:
		return "random"
	}
	return fmt.Sprintf("arbiter(%d)", int(a))
}

// Config selects machine parameters.
type Config struct {
	Procs    int     // number of processors (P)
	Modules  int     // number of memory modules (N)
	Arb      Arbiter // arbitration policy
	Seed     uint64  // seed for ArbRandom
	Parallel bool    // use the goroutine engine
	Workers  int     // goroutine count (defaults to GOMAXPROCS)
}

// Machine is a synchronous MPC. Methods are not safe for concurrent use by
// multiple callers; the parallel engine is internal.
type Machine struct {
	cfg    Config
	round  uint64 // rounds executed so far
	winner []uint64

	wg sync.WaitGroup
}

// New builds a machine. Procs and Modules must be positive.
func New(cfg Config) (*Machine, error) {
	if cfg.Procs <= 0 || cfg.Modules <= 0 {
		return nil, fmt.Errorf("mpc: need positive Procs and Modules, got %d/%d", cfg.Procs, cfg.Modules)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	return &Machine{
		cfg:    cfg,
		winner: make([]uint64, cfg.Modules),
	}, nil
}

// Procs returns the processor count.
func (m *Machine) Procs() int { return m.cfg.Procs }

// Modules returns the module count.
func (m *Machine) Modules() int { return m.cfg.Modules }

// Rounds returns the number of rounds executed so far.
func (m *Machine) Rounds() uint64 { return m.round }

// ResetRounds zeroes the round counter (metrics convenience).
func (m *Machine) ResetRounds() { m.round = 0 }

// priority computes the arbitration rank of processor p this round; lower
// wins. It is engine-independent so both engines arbitrate identically.
// Ranks are bounded to 40 bits so a packed claim fits one word.
func (m *Machine) priority(p int) uint64 {
	switch m.cfg.Arb {
	case ArbRoundRobin:
		return uint64((p + int(m.round)*7919) % m.cfg.Procs)
	case ArbRandom:
		return splitmix(m.cfg.Seed^m.round*0x9e3779b97f4a7c15^uint64(p)) & (1<<40 - 1)
	default:
		return uint64(p)
	}
}

// pack encodes (priority, proc+1) into one nonzero claim word so atomic-min
// arbitration resolves priority first and processor id as tiebreak; zero is
// reserved as the "no claim yet" sentinel.
func pack(pri uint64, p int) uint64 { return pri<<24 | uint64(p+1) }

func unpackProc(w uint64) int { return int(w&(1<<24-1)) - 1 }

// Round executes one synchronous round. reqs[p] is the module processor p
// addresses this round, or Idle. grant[p] is set to true iff p's request was
// the one its module served. It returns the number of requests served.
// len(reqs) and len(grant) must equal Procs().
func (m *Machine) Round(reqs []int64, grant []bool) int {
	if len(reqs) != m.cfg.Procs || len(grant) != m.cfg.Procs {
		panic(fmt.Sprintf("mpc: round slices sized %d/%d, want %d", len(reqs), len(grant), m.cfg.Procs))
	}
	if m.cfg.Procs >= 1<<24-1 {
		panic("mpc: 2^24-1 or more processors unsupported by claim packing")
	}
	var served int
	if m.cfg.Parallel {
		served = m.roundParallel(reqs, grant)
	} else {
		served = m.roundSequential(reqs, grant)
	}
	m.round++
	return served
}

func (m *Machine) roundSequential(reqs []int64, grant []bool) int {
	touched := make([]int64, 0, 64)
	for p, mod := range reqs {
		grant[p] = false
		if mod == Idle {
			continue
		}
		if mod < 0 || mod >= int64(m.cfg.Modules) {
			panic(fmt.Sprintf("mpc: processor %d addresses invalid module %d", p, mod))
		}
		claim := pack(m.priority(p), p)
		switch cur := m.winner[mod]; {
		case cur == 0:
			touched = append(touched, mod)
			m.winner[mod] = claim
		case claim < cur:
			m.winner[mod] = claim
		}
	}
	served := 0
	for p, mod := range reqs {
		if mod == Idle {
			continue
		}
		if unpackProc(m.winner[mod]) == p {
			grant[p] = true
			served++
		}
	}
	for _, mod := range touched {
		m.winner[mod] = 0
	}
	return served
}

func (m *Machine) roundParallel(reqs []int64, grant []bool) int {
	w := m.cfg.Workers
	chunk := (m.cfg.Procs + w - 1) / w
	// Claim sweep: workers race atomic-min on per-module claim words.
	m.wg.Add(w)
	for g := 0; g < w; g++ {
		go func(lo int) {
			defer m.wg.Done()
			hi := lo + chunk
			if hi > m.cfg.Procs {
				hi = m.cfg.Procs
			}
			for p := lo; p < hi; p++ {
				grant[p] = false
				mod := reqs[p]
				if mod == Idle {
					continue
				}
				claim := pack(m.priority(p), p)
				addr := &m.winner[mod]
				for {
					cur := atomic.LoadUint64(addr)
					if cur != 0 && cur <= claim {
						break
					}
					if atomic.CompareAndSwapUint64(addr, cur, claim) {
						break
					}
				}
			}
		}(g * chunk)
	}
	m.wg.Wait()
	// Grant sweep (barrier above guarantees claims are final).
	counts := make([]int64, w)
	m.wg.Add(w)
	for g := 0; g < w; g++ {
		go func(id, lo int) {
			defer m.wg.Done()
			hi := lo + chunk
			if hi > m.cfg.Procs {
				hi = m.cfg.Procs
			}
			var local int64
			for p := lo; p < hi; p++ {
				mod := reqs[p]
				if mod == Idle {
					continue
				}
				if unpackProc(atomic.LoadUint64(&m.winner[mod])) == p {
					grant[p] = true
					local++
				}
			}
			counts[id] = local
		}(g, g*chunk)
	}
	m.wg.Wait()
	// Reset sweep.
	m.wg.Add(w)
	for g := 0; g < w; g++ {
		go func(lo int) {
			defer m.wg.Done()
			hi := lo + chunk
			if hi > m.cfg.Procs {
				hi = m.cfg.Procs
			}
			for p := lo; p < hi; p++ {
				if mod := reqs[p]; mod != Idle {
					atomic.StoreUint64(&m.winner[mod], 0)
				}
			}
		}(g * chunk)
	}
	m.wg.Wait()
	var served int
	for _, c := range counts {
		served += int(c)
	}
	return served
}

// splitmix is SplitMix64, a fast deterministic 64-bit mixer.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	return x ^ x>>31
}
