package mpc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func newMachine(t testing.TB, cfg Config) *Machine {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Procs: 0, Modules: 4}); err == nil {
		t.Error("zero procs accepted")
	}
	if _, err := New(Config{Procs: 4, Modules: -1}); err == nil {
		t.Error("negative modules accepted")
	}
}

// TestOneGrantPerModule: the defining MPC constraint — at most one request
// per module is served, and it is served to an actual requester.
func TestOneGrantPerModule(t *testing.T) {
	for _, par := range []bool{false, true} {
		m := newMachine(t, Config{Procs: 100, Modules: 10, Parallel: par})
		rng := rand.New(rand.NewSource(1))
		reqs := make([]int64, 100)
		grant := make([]bool, 100)
		for round := 0; round < 50; round++ {
			for p := range reqs {
				if rng.Intn(4) == 0 {
					reqs[p] = Idle
				} else {
					reqs[p] = int64(rng.Intn(10))
				}
			}
			served := m.Round(reqs, grant)
			perModule := make(map[int64]int)
			total := 0
			for p, g := range grant {
				if g {
					if reqs[p] == Idle {
						t.Fatalf("granted an idle processor %d", p)
					}
					perModule[reqs[p]]++
					total++
				}
			}
			if total != served {
				t.Fatalf("served=%d but %d grants", served, total)
			}
			for mod, c := range perModule {
				if c != 1 {
					t.Fatalf("module %d served %d requests in one round", mod, c)
				}
			}
			// Every requested module serves someone (work conservation).
			requested := make(map[int64]bool)
			for _, r := range reqs {
				if r != Idle {
					requested[r] = true
				}
			}
			if len(requested) != total {
				t.Fatalf("%d modules requested but %d grants", len(requested), total)
			}
		}
	}
}

// TestLowestArbiterDeterminism: with ArbLowest the winner is the smallest
// requesting processor id.
func TestLowestArbiterDeterminism(t *testing.T) {
	for _, par := range []bool{false, true} {
		m := newMachine(t, Config{Procs: 8, Modules: 2, Parallel: par})
		reqs := []int64{1, 1, 0, 1, Idle, 0, 1, Idle}
		grant := make([]bool, 8)
		if served := m.Round(reqs, grant); served != 2 {
			t.Fatalf("served = %d, want 2", served)
		}
		want := []bool{true, false, true, false, false, false, false, false}
		for p := range want {
			if grant[p] != want[p] {
				t.Fatalf("parallel=%v grant[%d] = %v, want %v", par, p, grant[p], want[p])
			}
		}
	}
}

// TestEnginesAgree: sequential and parallel engines must produce identical
// grant vectors for every arbiter, including the randomized one (it is
// seeded and round-indexed, hence deterministic).
func TestEnginesAgree(t *testing.T) {
	for _, arb := range []Arbiter{ArbLowest, ArbRoundRobin, ArbRandom} {
		seq := newMachine(t, Config{Procs: 500, Modules: 37, Arb: arb, Seed: 99})
		par := newMachine(t, Config{Procs: 500, Modules: 37, Arb: arb, Seed: 99, Parallel: true, Workers: 7})
		rng := rand.New(rand.NewSource(2))
		reqs := make([]int64, 500)
		g1 := make([]bool, 500)
		g2 := make([]bool, 500)
		for round := 0; round < 60; round++ {
			for p := range reqs {
				if rng.Intn(5) == 0 {
					reqs[p] = Idle
				} else {
					reqs[p] = int64(rng.Intn(37))
				}
			}
			s1 := seq.Round(reqs, g1)
			s2 := par.Round(reqs, g2)
			if s1 != s2 {
				t.Fatalf("arb=%v round=%d served %d vs %d", arb, round, s1, s2)
			}
			for p := range g1 {
				if g1[p] != g2[p] {
					t.Fatalf("arb=%v round=%d grant[%d] differs", arb, round, p)
				}
			}
		}
	}
}

// TestRoundRobinRotates: under ArbRoundRobin a fixed conflicting request set
// eventually grants different processors across rounds.
func TestRoundRobinRotates(t *testing.T) {
	m := newMachine(t, Config{Procs: 4, Modules: 1, Arb: ArbRoundRobin})
	reqs := []int64{0, 0, 0, 0}
	grant := make([]bool, 4)
	winners := make(map[int]bool)
	for round := 0; round < 16; round++ {
		m.Round(reqs, grant)
		for p, g := range grant {
			if g {
				winners[p] = true
			}
		}
	}
	if len(winners) < 2 {
		t.Fatalf("round-robin never rotated winners: %v", winners)
	}
}

// TestRandomArbiterSeedStability: same seed → same grants; different seed →
// (almost surely) different grant sequence.
func TestRandomArbiterSeedStability(t *testing.T) {
	run := func(seed uint64) []bool {
		m := newMachine(t, Config{Procs: 64, Modules: 4, Arb: ArbRandom, Seed: seed})
		reqs := make([]int64, 64)
		for p := range reqs {
			reqs[p] = int64(p % 4)
		}
		grant := make([]bool, 64)
		var hist []bool
		for round := 0; round < 20; round++ {
			m.Round(reqs, grant)
			hist = append(hist, append([]bool(nil), grant...)...)
		}
		return hist
	}
	a, b, c := run(7), run(7), run(8)
	same := func(x, y []bool) bool {
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if !same(a, b) {
		t.Error("same seed produced different histories")
	}
	if same(a, c) {
		t.Error("different seeds produced identical histories (suspicious)")
	}
}

// TestServedCountProperty: in any round, served == number of distinct
// requested modules (each requested module serves exactly one).
func TestServedCountProperty(t *testing.T) {
	m := newMachine(t, Config{Procs: 32, Modules: 8})
	grant := make([]bool, 32)
	prop := func(raw [32]uint8) bool {
		reqs := make([]int64, 32)
		distinct := make(map[int64]bool)
		for p, r := range raw {
			if r%5 == 0 {
				reqs[p] = Idle
			} else {
				reqs[p] = int64(r) % 8
				distinct[reqs[p]] = true
			}
		}
		return m.Round(reqs, grant) == len(distinct)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRoundsCounter(t *testing.T) {
	m := newMachine(t, Config{Procs: 2, Modules: 2})
	reqs := []int64{0, 1}
	grant := make([]bool, 2)
	for i := 0; i < 5; i++ {
		m.Round(reqs, grant)
	}
	if m.Rounds() != 5 {
		t.Fatalf("Rounds() = %d", m.Rounds())
	}
	m.ResetRounds()
	if m.Rounds() != 0 {
		t.Fatal("ResetRounds failed")
	}
}

func TestRoundPanicsOnBadSizes(t *testing.T) {
	m := newMachine(t, Config{Procs: 4, Modules: 2})
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong slice length")
		}
	}()
	m.Round(make([]int64, 3), make([]bool, 4))
}
