package mpc

import (
	"math/rand"
	"testing"
)

func benchRound(b *testing.B, parallel bool, procs, modules int) {
	b.Helper()
	m, err := New(Config{Procs: procs, Modules: modules, Parallel: parallel})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	reqs := make([]int64, procs)
	grant := make([]bool, procs)
	for p := range reqs {
		if rng.Intn(4) == 0 {
			reqs[p] = Idle
		} else {
			reqs[p] = int64(rng.Intn(modules))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Round(reqs, grant)
	}
}

func BenchmarkRoundSequential(b *testing.B) { benchRound(b, false, 16383, 16383) }
func BenchmarkRoundParallel(b *testing.B)   { benchRound(b, true, 16383, 16383) }
func BenchmarkRoundSmall(b *testing.B)      { benchRound(b, false, 1023, 1023) }
func BenchmarkFailingWrapper(b *testing.B) {
	f, err := NewFailing(Config{Procs: 1023, Modules: 1023}, []uint64{0, 1, 2})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	reqs := make([]int64, 1023)
	grant := make([]bool, 1023)
	for p := range reqs {
		reqs[p] = int64(rng.Intn(1023))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Round(reqs, grant)
	}
}
