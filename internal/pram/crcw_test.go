package pram

import (
	"math/rand"
	"sort"
	"testing"
)

func TestWriteCombineModes(t *testing.T) {
	cases := []struct {
		mode CombineMode
		want uint64
	}{
		{CombinePriority, 10}, // lowest processor index wins
		{CombineArbitrary, 10},
		{CombineSum, 60},
		{CombineMax, 30},
	}
	for _, c := range cases {
		p := New(newMem(t))
		addrs := []uint64{9, 9, 9}
		vals := []uint64{10, 20, 30}
		if err := p.WriteCombine(addrs, vals, c.mode); err != nil {
			t.Fatalf("mode %d: %v", c.mode, err)
		}
		got, err := p.Read([]uint64{9})
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != c.want {
			t.Fatalf("mode %d: got %d, want %d", c.mode, got[0], c.want)
		}
	}
}

func TestWriteCombineMixedAddresses(t *testing.T) {
	p := New(newMem(t))
	if err := p.WriteCombine(
		[]uint64{1, 2, 1, 3, 2},
		[]uint64{5, 6, 7, 8, 9},
		CombineSum,
	); err != nil {
		t.Fatal(err)
	}
	got, err := p.Read([]uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{12, 15, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("addr %d: got %d want %d", i+1, got[i], want[i])
		}
	}
	if err := p.WriteCombine([]uint64{1}, []uint64{1, 2}, CombineSum); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestMaxReduce(t *testing.T) {
	p := New(newMem(t))
	vals := []uint64{3, 99, 12, 45, 7, 99, 1, 50}
	addrs := make([]uint64, len(vals))
	for i := range addrs {
		addrs[i] = uint64(i)
	}
	if err := p.Write(addrs, vals); err != nil {
		t.Fatal(err)
	}
	got, err := p.MaxReduce(0, len(vals), 100)
	if err != nil {
		t.Fatal(err)
	}
	if got != 99 {
		t.Fatalf("MaxReduce = %d, want 99", got)
	}
}

func TestBitonicSort(t *testing.T) {
	p := New(newMem(t))
	const n = 256
	rng := rand.New(rand.NewSource(21))
	vals := make([]uint64, n)
	addrs := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(rng.Intn(10000))
		addrs[i] = uint64(i)
	}
	if err := p.Write(addrs, vals); err != nil {
		t.Fatal(err)
	}
	if err := p.BitonicSort(0, n); err != nil {
		t.Fatal(err)
	}
	got, err := p.Read(addrs)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]uint64{}, vals...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sorted[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestBitonicSortRejectsNonPowerOfTwo(t *testing.T) {
	p := New(newMem(t))
	if err := p.BitonicSort(0, 100); err == nil {
		t.Fatal("non-power-of-two size accepted")
	}
	if err := p.BitonicSort(0, 0); err == nil {
		t.Fatal("zero size accepted")
	}
}

func TestBitonicSortAlreadySortedAndReverse(t *testing.T) {
	for _, reverse := range []bool{false, true} {
		p := New(newMem(t))
		const n = 64
		vals := make([]uint64, n)
		addrs := make([]uint64, n)
		for i := range vals {
			addrs[i] = uint64(i)
			if reverse {
				vals[i] = uint64(n - i)
			} else {
				vals[i] = uint64(i)
			}
		}
		if err := p.Write(addrs, vals); err != nil {
			t.Fatal(err)
		}
		if err := p.BitonicSort(0, n); err != nil {
			t.Fatal(err)
		}
		got, err := p.Read(addrs)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < n; i++ {
			if got[i] < got[i-1] {
				t.Fatalf("reverse=%v: not sorted at %d", reverse, i)
			}
		}
	}
}
