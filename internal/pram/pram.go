// Package pram layers a PRAM-style shared-memory abstraction over the access
// protocol — the application the granularity problem exists for: PRAM steps
// become batches of distinct-variable reads/writes on the MPC, with the
// memory organization deciding how fast each batch completes.
//
// The layer performs client-side read combining (deduplicating concurrent
// reads of the same variable before they reach the module level), so CREW
// programs such as pointer jumping run on the EREW-style batch protocol.
// Writes must target distinct variables (exact duplicate writes — same
// address, same value — are merged; conflicting ones are an error).
package pram

import (
	"fmt"

	"detshmem/internal/protocol"
)

// Memory is the shared-memory interface the PRAM runs on (satisfied by
// *protocol.System for any Mapper).
type Memory interface {
	Access([]protocol.Request) (*protocol.Result, error)
}

// PRAM executes synchronous parallel steps against a Memory.
type PRAM struct {
	mem Memory

	// Steps and Rounds accumulate executed PRAM steps (batches) and the MPC
	// rounds they consumed.
	Steps  int
	Rounds int
}

// New builds a PRAM over mem.
func New(mem Memory) *PRAM { return &PRAM{mem: mem} }

// Read fetches the values of addrs (duplicates allowed; combined
// client-side). One PRAM step.
func (p *PRAM) Read(addrs []uint64) ([]uint64, error) {
	uniq := make([]uint64, 0, len(addrs))
	pos := make(map[uint64]int, len(addrs))
	for _, a := range addrs {
		if _, ok := pos[a]; !ok {
			pos[a] = len(uniq)
			uniq = append(uniq, a)
		}
	}
	reqs := make([]protocol.Request, len(uniq))
	for i, a := range uniq {
		reqs[i] = protocol.Request{Var: a, Op: protocol.Read}
	}
	res, err := p.mem.Access(reqs)
	if err != nil {
		return nil, err
	}
	p.Steps++
	p.Rounds += res.Metrics.TotalRounds
	out := make([]uint64, len(addrs))
	for i, a := range addrs {
		out[i] = res.Values[pos[a]]
	}
	return out, nil
}

// Write stores vals[i] at addrs[i] (exact duplicates merged; conflicting
// writes to one address rejected). One PRAM step.
func (p *PRAM) Write(addrs, vals []uint64) error {
	if len(addrs) != len(vals) {
		return fmt.Errorf("pram: %d addresses but %d values", len(addrs), len(vals))
	}
	seen := make(map[uint64]uint64, len(addrs))
	reqs := make([]protocol.Request, 0, len(addrs))
	for i, a := range addrs {
		if v, dup := seen[a]; dup {
			if v != vals[i] {
				return fmt.Errorf("pram: conflicting concurrent writes to address %d", a)
			}
			continue
		}
		seen[a] = vals[i]
		reqs = append(reqs, protocol.Request{Var: a, Op: protocol.Write, Value: vals[i]})
	}
	res, err := p.mem.Access(reqs)
	if err != nil {
		return err
	}
	p.Steps++
	p.Rounds += res.Metrics.TotalRounds
	return nil
}

// PrefixSum computes, in place in shared memory, the inclusive prefix sums
// of the n values stored at addresses base … base+n−1, using the standard
// O(log n)-step doubling algorithm. Returns the number of PRAM steps used.
func (p *PRAM) PrefixSum(base uint64, n int) (int, error) {
	steps0 := p.Steps
	idx := make([]uint64, 0, n)
	for d := 1; d < n; d *= 2 {
		// x[i] += x[i-d] for i >= d, computed as one read step (distinct
		// addresses) followed by one write step.
		idx = idx[:0]
		for i := d; i < n; i++ {
			idx = append(idx, base+uint64(i-d))
		}
		lower, err := p.Read(idx)
		if err != nil {
			return 0, err
		}
		idx = idx[:0]
		for i := d; i < n; i++ {
			idx = append(idx, base+uint64(i))
		}
		cur, err := p.Read(idx)
		if err != nil {
			return 0, err
		}
		vals := make([]uint64, len(idx))
		for i := range idx {
			vals[i] = cur[i] + lower[i]
		}
		if err := p.Write(idx, vals); err != nil {
			return 0, err
		}
	}
	return p.Steps - steps0, nil
}

// PointerJump finds, for every node i of a forest stored as parent pointers
// at addresses base … base+n−1 (roots point to themselves), the root of i's
// tree, using O(log n) CREW jumping steps. It returns the roots (the shared
// array is modified in place).
func (p *PRAM) PointerJump(base uint64, n int) ([]uint64, error) {
	addrs := make([]uint64, n)
	for i := range addrs {
		addrs[i] = base + uint64(i)
	}
	parent, err := p.Read(addrs)
	if err != nil {
		return nil, err
	}
	for {
		// Concurrent read of parent[parent[i]] — combining handles the
		// fan-in at roots.
		paddr := make([]uint64, n)
		for i := range paddr {
			paddr[i] = base + parent[i]
		}
		grand, err := p.Read(paddr)
		if err != nil {
			return nil, err
		}
		changed := false
		for i := range parent {
			if grand[i] != parent[i] {
				changed = true
			}
		}
		if err := p.Write(addrs, grand); err != nil {
			return nil, err
		}
		parent = grand
		if !changed {
			return parent, nil
		}
	}
}

// ListRank computes, for each element of a linked list stored as successor
// pointers at base … base+n−1 (the tail points to itself), its distance to
// the tail, via pointer jumping with distance accumulation. Distances are
// kept in a scratch shared array at dbase … dbase+n−1.
func (p *PRAM) ListRank(base, dbase uint64, n int) ([]uint64, error) {
	addrs := make([]uint64, n)
	daddrs := make([]uint64, n)
	for i := range addrs {
		addrs[i] = base + uint64(i)
		daddrs[i] = dbase + uint64(i)
	}
	next, err := p.Read(addrs)
	if err != nil {
		return nil, err
	}
	dist := make([]uint64, n)
	for i := range dist {
		if next[i] != uint64(i) {
			dist[i] = 1
		}
	}
	if err := p.Write(daddrs, dist); err != nil {
		return nil, err
	}
	for step := 0; ; step++ {
		naddr := make([]uint64, n)
		for i := range naddr {
			naddr[i] = base + next[i]
		}
		nnext, err := p.Read(naddr)
		if err != nil {
			return nil, err
		}
		dn := make([]uint64, n)
		for i := range dn {
			dn[i] = dbase + next[i]
		}
		ndist, err := p.Read(dn)
		if err != nil {
			return nil, err
		}
		changed := false
		for i := range next {
			if next[i] != nnext[i] {
				dist[i] += ndist[i]
				next[i] = nnext[i]
				changed = true
			}
		}
		if err := p.Write(addrs, next); err != nil {
			return nil, err
		}
		if err := p.Write(daddrs, dist); err != nil {
			return nil, err
		}
		if !changed {
			return dist, nil
		}
	}
}
