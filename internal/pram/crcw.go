package pram

import (
	"fmt"
	"sort"
)

// CombineMode selects how concurrent writes to one address are resolved —
// the CRCW write-conflict rules, applied client-side before the batch
// reaches the (concurrent-access-free) module level.
type CombineMode int

const (
	// CombinePriority keeps the write of the lowest-indexed processor.
	CombinePriority CombineMode = iota
	// CombineArbitrary keeps an arbitrary (here: first-seen) write.
	CombineArbitrary
	// CombineSum stores the sum of all written values (the Fetch&Add-style
	// combining used by combining networks).
	CombineSum
	// CombineMax stores the maximum written value.
	CombineMax
)

// WriteCombine performs one CRCW write step: addrs[i]/vals[i] is processor
// i's write, concurrent writes to the same address are merged per mode.
func (p *PRAM) WriteCombine(addrs, vals []uint64, mode CombineMode) error {
	if len(addrs) != len(vals) {
		return fmt.Errorf("pram: %d addresses but %d values", len(addrs), len(vals))
	}
	merged := make(map[uint64]uint64, len(addrs))
	owner := make(map[uint64]int, len(addrs))
	for i, a := range addrs {
		cur, seen := merged[a]
		if !seen {
			merged[a] = vals[i]
			owner[a] = i
			continue
		}
		switch mode {
		case CombinePriority:
			if i < owner[a] {
				merged[a] = vals[i]
				owner[a] = i
			}
		case CombineArbitrary:
			// keep first-seen
		case CombineSum:
			merged[a] = cur + vals[i]
		case CombineMax:
			if vals[i] > cur {
				merged[a] = vals[i]
			}
		default:
			return fmt.Errorf("pram: unknown combine mode %d", mode)
		}
	}
	// Deterministic order for reproducible module traffic.
	uniq := make([]uint64, 0, len(merged))
	for a := range merged {
		uniq = append(uniq, a)
	}
	sort.Slice(uniq, func(i, j int) bool { return uniq[i] < uniq[j] })
	wv := make([]uint64, len(uniq))
	for i, a := range uniq {
		wv[i] = merged[a]
	}
	return p.Write(uniq, wv)
}

// MaxReduce computes the maximum of the n values at base … base+n−1 using
// CRCW-style combining: one read step plus one combining write into the
// scratch cell out. It returns the maximum. (On a true CRCW PRAM this is
// O(1) time with n² processors; here it is the combining-network analogue.)
func (p *PRAM) MaxReduce(base uint64, n int, out uint64) (uint64, error) {
	addrs := make([]uint64, n)
	for i := range addrs {
		addrs[i] = base + uint64(i)
	}
	vals, err := p.Read(addrs)
	if err != nil {
		return 0, err
	}
	outs := make([]uint64, n)
	for i := range outs {
		outs[i] = out
	}
	if err := p.WriteCombine(outs, vals, CombineMax); err != nil {
		return 0, err
	}
	res, err := p.Read([]uint64{out})
	if err != nil {
		return 0, err
	}
	return res[0], nil
}

// BitonicSort sorts the n values stored at base … base+n−1 in place using
// Batcher's bitonic network: O(log² n) EREW steps of disjoint
// compare-exchange pairs. n must be a power of two.
func (p *PRAM) BitonicSort(base uint64, n int) error {
	if n&(n-1) != 0 || n == 0 {
		return fmt.Errorf("pram: bitonic sort needs a power-of-two size, got %d", n)
	}
	for k := 2; k <= n; k *= 2 {
		for j := k / 2; j >= 1; j /= 2 {
			// One network stage: pairs (i, i^j) with i < i^j, direction by
			// the k-block bit. All pair endpoints are disjoint, so one read
			// batch + one write batch realizes the stage.
			var lo, hi []uint64
			var up []bool
			for i := 0; i < n; i++ {
				l := i ^ j
				if l > i {
					lo = append(lo, base+uint64(i))
					hi = append(hi, base+uint64(l))
					up = append(up, i&k == 0)
				}
			}
			a, err := p.Read(lo)
			if err != nil {
				return err
			}
			b, err := p.Read(hi)
			if err != nil {
				return err
			}
			wa := make([]uint64, len(a))
			wb := make([]uint64, len(b))
			for i := range a {
				x, y := a[i], b[i]
				if (x > y) == up[i] {
					x, y = y, x
				}
				wa[i], wb[i] = x, y
			}
			if err := p.Write(append(append([]uint64{}, lo...), hi...), append(wa, wb...)); err != nil {
				return err
			}
		}
	}
	return nil
}
