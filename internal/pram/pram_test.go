package pram

import (
	"math/rand"
	"testing"

	"detshmem/internal/core"
	"detshmem/internal/protocol"
)

func newMem(t testing.TB) *protocol.System {
	t.Helper()
	s, err := core.New(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := s.NewIndexer()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := protocol.NewSystem(s, idx, protocol.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestReadCombining(t *testing.T) {
	p := New(newMem(t))
	if err := p.Write([]uint64{10, 11}, []uint64{100, 200}); err != nil {
		t.Fatal(err)
	}
	// Concurrent reads of address 10 by many "processors".
	got, err := p.Read([]uint64{10, 10, 11, 10, 11})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{100, 100, 200, 100, 200}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("read[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestWriteConflictDetection(t *testing.T) {
	p := New(newMem(t))
	if err := p.Write([]uint64{5, 5}, []uint64{1, 1}); err != nil {
		t.Fatalf("identical duplicate writes should merge: %v", err)
	}
	if err := p.Write([]uint64{5, 5}, []uint64{1, 2}); err == nil {
		t.Fatal("conflicting writes accepted")
	}
	if err := p.Write([]uint64{5}, []uint64{1, 2}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

func TestPrefixSum(t *testing.T) {
	p := New(newMem(t))
	const n = 200
	rng := rand.New(rand.NewSource(6))
	vals := make([]uint64, n)
	addrs := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(rng.Intn(1000))
		addrs[i] = uint64(i)
	}
	if err := p.Write(addrs, vals); err != nil {
		t.Fatal(err)
	}
	steps, err := p.PrefixSum(0, n)
	if err != nil {
		t.Fatal(err)
	}
	// Doubling uses 3 steps (2 reads + 1 write) per of the ceil(log2 n)=8 rounds.
	if steps != 24 {
		t.Fatalf("prefix sum used %d PRAM steps, want 24", steps)
	}
	got, err := p.Read(addrs)
	if err != nil {
		t.Fatal(err)
	}
	sum := uint64(0)
	for i := range vals {
		sum += vals[i]
		if got[i] != sum {
			t.Fatalf("prefix[%d] = %d, want %d", i, got[i], sum)
		}
	}
	if p.Rounds <= 0 || p.Steps <= 0 {
		t.Fatal("metrics not accumulated")
	}
}

func TestPointerJump(t *testing.T) {
	p := New(newMem(t))
	const n = 128
	// Forest: two trees rooted at 0 and 64; node i's parent is i-1 within
	// each half (long chains, the worst case for jumping depth).
	parent := make([]uint64, n)
	addrs := make([]uint64, n)
	for i := range parent {
		addrs[i] = uint64(i)
		switch {
		case i == 0 || i == 64:
			parent[i] = uint64(i)
		default:
			parent[i] = uint64(i - 1)
		}
	}
	if err := p.Write(addrs, parent); err != nil {
		t.Fatal(err)
	}
	roots, err := p.PointerJump(0, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range roots {
		want := uint64(0)
		if i >= 64 {
			want = 64
		}
		if roots[i] != want {
			t.Fatalf("root[%d] = %d, want %d", i, roots[i], want)
		}
	}
}

func TestListRank(t *testing.T) {
	p := New(newMem(t))
	const n = 100
	// A linked list in scrambled memory order: perm[i] is the node stored
	// at address i; successor of the node at position k in list order is
	// the node at position k+1.
	rng := rand.New(rand.NewSource(8))
	order := rng.Perm(n)
	next := make([]uint64, n)
	for k := 0; k < n-1; k++ {
		next[order[k]] = uint64(order[k+1])
	}
	next[order[n-1]] = uint64(order[n-1]) // tail self-loop
	addrs := make([]uint64, n)
	for i := range addrs {
		addrs[i] = uint64(i)
	}
	if err := p.Write(addrs, next); err != nil {
		t.Fatal(err)
	}
	dist, err := p.ListRank(0, 1000, n)
	if err != nil {
		t.Fatal(err)
	}
	for k, node := range order {
		want := uint64(n - 1 - k)
		if dist[node] != want {
			t.Fatalf("rank of node %d (list position %d) = %d, want %d", node, k, dist[node], want)
		}
	}
}
