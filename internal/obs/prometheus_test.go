package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenCollector builds a deterministic collector state covering every
// metric family the writer emits.
func goldenCollector() *Collector {
	c := NewCollector()
	ev := RoundEvent{Round: 0, Requests: 9, Granted: 4, MaxLoad: 4, BarrierNs: 1500}
	ev.Contention.Observe(4)
	ev.Contention.Observe(2)
	ev.Contention.Observe(2)
	ev.Contention.Observe(1)
	c.RecordRound(ev)
	c.RecordRound(RoundEvent{Round: 1, Requests: 3, Granted: 3, MaxLoad: 1})
	c.ObserveBatch(BatchEvent{Requests: 12, Phases: 3, Rounds: 2, MaxPhi: 2, CopyAccesses: 7, GrantedBids: 7, Unfinished: 0})
	c.ObserveQueueDepth(5)
	c.ObserveQueueDepth(2)
	c.ObserveFlush(FlushSize)
	c.ObserveFlush(FlushIdle)
	c.ObserveFlush(FlushExplicit)
	c.ObserveFlush(FlushConflict)
	c.ObserveFlush(FlushIdle)
	c.ObserveAudit(false)
	c.ObserveAudit(false)
	c.ObserveAudit(true)
	c.ObserveAuditEviction()
	c.ObserveResolverResidency(3, 49152)
	c.ObserveRepair(RepairEvent{Copies: 6, Salvaged: 1, Rounds: 4, Issued: 9, Granted: 8, Certified: 2, Backlog: 1})
	return c
}

// TestWritePrometheusGolden pins the text exposition format byte-for-byte
// against testdata/metrics.golden.
func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenCollector().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -run Golden -update` to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("Prometheus output diverged from golden file.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestWritePrometheusWellFormed sanity-checks the exposition format
// invariants independent of the golden bytes: every sample line belongs to
// a declared metric, histogram buckets are cumulative, and counts match.
func TestWritePrometheusWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenCollector().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	declared := map[string]bool{}
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			declared[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(name, suffix); ok && declared[b] {
				base = b
				break
			}
		}
		if !declared[base] {
			t.Fatalf("sample %q has no # TYPE declaration", line)
		}
		if !strings.HasPrefix(name, promNamespace+"_") {
			t.Fatalf("sample %q is missing the %s namespace", line, promNamespace)
		}
	}
	// Histogram invariant: the +Inf bucket equals the count.
	out := buf.String()
	if !strings.Contains(out, `detshmem_queue_depth_bucket{le="+Inf"} 2`) ||
		!strings.Contains(out, "detshmem_queue_depth_count 2") {
		t.Fatalf("queue_depth histogram +Inf/count mismatch:\n%s", out)
	}
}
