package obs

import (
	"expvar"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a last-observed-value atomic gauge (Set overwrites; compare
// MaxGauge, which only rises).
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// MaxGauge tracks the maximum value ever observed (a high-water mark).
type MaxGauge struct{ v atomic.Int64 }

// Observe raises the gauge to n if n exceeds the current maximum.
func (g *MaxGauge) Observe(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Load returns the current maximum.
func (g *MaxGauge) Load() int64 { return g.v.Load() }

// Histogram is a power-of-two-bucketed histogram with atomic buckets (see
// HistBuckets for the bucket layout). Observe is lock- and allocation-free.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [HistBuckets]atomic.Int64
}

// Observe counts one positive value; zero and negative values are ignored.
func (h *Histogram) Observe(v int64) {
	if v <= 0 {
		return
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// AddBucket merges n observations directly into bucket b, accounting their
// sum at the bucket's 2^b lower bound (used when merging pre-bucketed
// LoadHists, where exact values are gone; the sum is then a lower bound).
func (h *Histogram) AddBucket(b int, n int64) {
	if n <= 0 || b < 0 {
		return
	}
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	h.buckets[b].Add(n)
	h.count.Add(n)
	h.sum.Add(n * (int64(1) << b))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values (a lower bound when AddBucket was
// used).
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Buckets returns a snapshot of the bucket counts.
func (h *Histogram) Buckets() [HistBuckets]int64 {
	var out [HistBuckets]int64
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Collector aggregates cumulative observability from all three levels of
// the stack. It implements Recorder (round level, fed by the MPC engines),
// BatchObserver (batch level, fed by protocol.System), and exposes explicit
// hooks for the frontend dispatcher (queue depth, flush causes). All
// methods are safe for concurrent use and allocation-free, so a single
// process-wide Collector can watch any number of systems and frontends.
type Collector struct {
	// Batch level (ObserveBatch, from protocol.Metrics).
	Batches        Counter   // protocol batches completed
	Requests       Counter   // requests across batches
	Rounds         Counter   // Σ Metrics.TotalRounds
	CopyAccesses   Counter   // Σ Metrics.CopyAccesses
	GrantedBids    Counter   // Σ Metrics.GrantedBids (incl. cancelled bids)
	IssuedBids     Counter   // Σ Metrics.IssuedBids (bids handed to the MPC)
	Unfinished     Counter   // requests that missed their quorum
	MaxPhi         MaxGauge  // largest per-batch Φ
	RoundsPerBatch Histogram // distribution of Metrics.TotalRounds

	// Fault layer (batch + round level).
	RetriedBids      Counter   // bids re-selected onto surviving copies
	StrandedRequests Counter   // requests whose live copies fell below quorum
	DroppedBids      Counter   // Σ per-round bids dropped at failed modules
	FaultBatches     Counter   // batches that finished with ≥1 failed module
	FailedModules    MaxGauge  // most failed modules seen at a batch end
	FaultRounds      Histogram // rounds per batch, counted only under faults
	//                            (compare with RoundsPerBatch for the
	//                            per-fault-count round inflation)

	// Repair layer (ObserveRepair, from the background repair scheduler).
	RepairedCopies  Counter // target copies rebuilt by repair writes
	RepairSalvaged  Counter // variables rebuilt without a sound source majority
	RepairRounds    Counter // MPC rounds spent on repair waves
	RepairCertified Counter // modules certified fully live
	RepairBacklog   Gauge   // modules under repair after the latest step

	// Round level (RecordRound, from the MPC engines).
	MPCRounds     Counter   // rounds recorded
	MPCRequests   Counter   // Σ per-round live requests
	MPCGranted    Counter   // Σ per-round grants
	BarrierNs     Counter   // Σ coordinator barrier wait (parallel engine)
	MaxModuleLoad MaxGauge  // worst per-module congestion ever seen
	ModuleLoad    Histogram // per-module per-round load distribution
	Imbalance     Histogram // per-round max-load distribution

	// Frontend level (ObserveQueueDepth / ObserveFlush).
	QueueDepth    Histogram // submission-queue depth sampled at admission
	MaxQueueDepth MaxGauge  // deepest queue observed
	Flushes       [numFlushCauses]Counter

	// Admission-ring level (ObserveRingDepth / ObserveFlusherPark /
	// ObserveFlusherWake, from the lock-free pipelined shard dispatcher).
	RingDepth    Histogram // ring occupancy, sampled every 64th admission
	MaxRingDepth MaxGauge  // deepest ring occupancy observed (exact)
	FlusherParks Counter   // flusher parked on a genuinely idle ring
	FlusherWakes Counter   // producer kicks that un-parked the flusher

	// Resolver residency (ObserveResolverResidency, from a compiled
	// resolver whose System's Observer is this collector).
	ResolverShards Gauge // compiled blocks resident (1 = eager table)
	ResolverBytes  Gauge // resident compiled-table bytes

	// Consistency-audit level (ObserveAudit / ObserveAuditEviction, from
	// the sampling auditor in internal/consistency).
	AuditedOps      Counter // operations on sampled variables audited
	AuditViolations Counter // audited reads contradicting the last known value
	AuditEvictions  Counter // audit slots reclaimed for a different variable
}

// NewCollector returns a zeroed collector.
func NewCollector() *Collector { return &Collector{} }

// Enabled reports true: a collector always aggregates.
func (c *Collector) Enabled() bool { return true }

// RecordRound folds one MPC round into the cumulative round-level metrics.
func (c *Collector) RecordRound(ev RoundEvent) {
	c.MPCRounds.Inc()
	c.MPCRequests.Add(int64(ev.Requests))
	c.MPCGranted.Add(int64(ev.Granted))
	c.BarrierNs.Add(ev.BarrierNs)
	c.DroppedBids.Add(int64(ev.Dropped))
	c.MaxModuleLoad.Observe(int64(ev.MaxLoad))
	c.Imbalance.Observe(int64(ev.MaxLoad))
	for b, n := range ev.Contention {
		if n != 0 {
			c.ModuleLoad.AddBucket(b, int64(n))
		}
	}
}

// ObserveBatch folds one protocol batch into the batch-level metrics.
func (c *Collector) ObserveBatch(ev BatchEvent) {
	c.Batches.Inc()
	c.Requests.Add(int64(ev.Requests))
	c.Rounds.Add(int64(ev.Rounds))
	c.CopyAccesses.Add(int64(ev.CopyAccesses))
	c.GrantedBids.Add(int64(ev.GrantedBids))
	c.IssuedBids.Add(int64(ev.IssuedBids))
	c.Unfinished.Add(int64(ev.Unfinished))
	c.RetriedBids.Add(int64(ev.RetriedBids))
	c.StrandedRequests.Add(int64(ev.Stranded))
	c.MaxPhi.Observe(int64(ev.MaxPhi))
	c.RoundsPerBatch.Observe(int64(ev.Rounds))
	if ev.FailedModules > 0 {
		c.FaultBatches.Inc()
		c.FailedModules.Observe(int64(ev.FailedModules))
		c.FaultRounds.Observe(int64(ev.Rounds))
	}
}

// ObserveRepair folds one background-repair step into the cumulative
// metrics. The step's MPC traffic (rounds, issued, granted bids) is added
// to the batch-level Rounds/IssuedBids/GrantedBids counters: the protocol
// deliberately keeps repair out of its per-batch Metrics books, so without
// this fold a round-level trace would show more rounds than the batch
// metrics account for and the exact crosscheck would fail.
func (c *Collector) ObserveRepair(ev RepairEvent) {
	c.RepairedCopies.Add(int64(ev.Copies))
	c.RepairSalvaged.Add(int64(ev.Salvaged))
	c.RepairRounds.Add(int64(ev.Rounds))
	c.RepairCertified.Add(int64(ev.Certified))
	c.RepairBacklog.Set(int64(ev.Backlog))
	c.Rounds.Add(int64(ev.Rounds))
	c.IssuedBids.Add(int64(ev.Issued))
	c.GrantedBids.Add(int64(ev.Granted))
}

// ObserveQueueDepth samples the frontend submission-queue depth at
// admission.
func (c *Collector) ObserveQueueDepth(depth int) {
	c.QueueDepth.Observe(int64(depth))
	c.MaxQueueDepth.Observe(int64(depth))
}

// ObserveFlush counts one frontend batch flush by cause.
func (c *Collector) ObserveFlush(cause FlushCause) {
	if cause >= 0 && cause < numFlushCauses {
		c.Flushes[cause].Inc()
	}
}

// ObserveRingDepth samples the pipelined shard's admission-ring occupancy.
// The caller samples (every 64th admission) rather than observing every op,
// keeping the shared histogram cache lines off the lock-free hot path.
func (c *Collector) ObserveRingDepth(depth int64) {
	c.RingDepth.Observe(depth)
	c.MaxRingDepth.Observe(depth)
}

// ObserveFlusherPark counts the shard flusher blocking on an empty ring.
func (c *Collector) ObserveFlusherPark() { c.FlusherParks.Inc() }

// ObserveFlusherWake counts a producer kick that un-parked the flusher.
// Parks without a matching wake were resolved by the flusher's own
// re-check (the Dekker handshake's benign race).
func (c *Collector) ObserveFlusherWake() { c.FlusherWakes.Inc() }

// ObserveAudit counts one operation audited by the sampling consistency
// audit; violation marks an audited read that contradicted the last value
// the audit knew for its variable.
func (c *Collector) ObserveAudit(violation bool) {
	c.AuditedOps.Inc()
	if violation {
		c.AuditViolations.Inc()
	}
}

// ObserveAuditEviction counts one audit slot reclaimed for a different
// variable (audit coverage loss, not a consistency problem).
func (c *Collector) ObserveAuditEviction() { c.AuditEvictions.Inc() }

// ObserveResolverResidency records a compiled resolver's current residency:
// resident compiled blocks and table bytes. Published once at attachment and
// again after every lazy shard materialization.
func (c *Collector) ObserveResolverResidency(shards int, bytes uint64) {
	c.ResolverShards.Set(int64(shards))
	c.ResolverBytes.Set(int64(bytes))
}

// Snapshot returns every scalar metric by name (histograms contribute their
// count and sum). The map is freshly allocated; keys are stable and sorted
// iteration gives a deterministic listing.
func (c *Collector) Snapshot() map[string]int64 {
	m := make(map[string]int64, 22+int(numFlushCauses))
	c.SnapshotInto("", m)
	return m
}

// SnapshotInto writes the Snapshot metrics into dst with every key prefixed
// by label. The shard layer uses it to merge per-shard collectors into one
// labeled map ("shard3_batches_total", …) without allocating a map per
// shard.
func (c *Collector) SnapshotInto(label string, dst map[string]int64) {
	m := map[string]int64{
		"batches_total":             c.Batches.Load(),
		"batch_requests_total":      c.Requests.Load(),
		"batch_rounds_total":        c.Rounds.Load(),
		"copy_accesses_total":       c.CopyAccesses.Load(),
		"granted_bids_total":        c.GrantedBids.Load(),
		"issued_bids_total":         c.IssuedBids.Load(),
		"unfinished_requests_total": c.Unfinished.Load(),
		"retried_bids_total":        c.RetriedBids.Load(),
		"stranded_requests_total":   c.StrandedRequests.Load(),
		"dropped_bids_total":        c.DroppedBids.Load(),
		"fault_batches_total":       c.FaultBatches.Load(),
		"max_failed_modules":        c.FailedModules.Load(),
		"fault_rounds_count":        c.FaultRounds.Count(),
		"fault_rounds_sum":          c.FaultRounds.Sum(),
		"max_phi":                   c.MaxPhi.Load(),
		"rounds_per_batch_count":    c.RoundsPerBatch.Count(),
		"rounds_per_batch_sum":      c.RoundsPerBatch.Sum(),
		"mpc_rounds_total":          c.MPCRounds.Load(),
		"mpc_requests_total":        c.MPCRequests.Load(),
		"mpc_granted_total":         c.MPCGranted.Load(),
		"barrier_wait_ns_total":     c.BarrierNs.Load(),
		"max_module_load":           c.MaxModuleLoad.Load(),
		"module_load_count":         c.ModuleLoad.Count(),
		"module_load_sum":           c.ModuleLoad.Sum(),
		"round_max_load_count":      c.Imbalance.Count(),
		"round_max_load_sum":        c.Imbalance.Sum(),
		"queue_depth_count":         c.QueueDepth.Count(),
		"queue_depth_sum":           c.QueueDepth.Sum(),
		"max_queue_depth":           c.MaxQueueDepth.Load(),
		"ring_depth_count":          c.RingDepth.Count(),
		"ring_depth_sum":            c.RingDepth.Sum(),
		"max_ring_depth":            c.MaxRingDepth.Load(),
		"flusher_parks_total":       c.FlusherParks.Load(),
		"flusher_wakes_total":       c.FlusherWakes.Load(),
		"resolver_compiled_shards":  c.ResolverShards.Load(),
		"resolver_resident_bytes":   c.ResolverBytes.Load(),
		"audit_sampled_total":       c.AuditedOps.Load(),
		"audit_violations_total":    c.AuditViolations.Load(),
		"audit_evictions_total":     c.AuditEvictions.Load(),
		"repaired_copies_total":     c.RepairedCopies.Load(),
		"repair_salvaged_total":     c.RepairSalvaged.Load(),
		"repair_rounds_total":       c.RepairRounds.Load(),
		"repair_certified_total":    c.RepairCertified.Load(),
		"repair_backlog":            c.RepairBacklog.Load(),
	}
	for cause := FlushCause(0); cause < numFlushCauses; cause++ {
		m["flushes_"+cause.String()+"_total"] = c.Flushes[cause].Load()
	}
	for k, v := range m {
		dst[label+k] = v
	}
}

// PublishExpvar registers the collector under the given expvar name (e.g.
// "detshmem"), visible at /debug/vars on any server using the default mux.
// expvar panics on duplicate names, so call it once per process per name.
func (c *Collector) PublishExpvar(name string) {
	expvar.Publish(name, expvar.Func(func() any { return c.Snapshot() }))
}

// promNamespace prefixes every metric WritePrometheus emits.
const promNamespace = "detshmem"

// WritePrometheus writes the collector in the Prometheus text exposition
// format (version 0.0.4): counters, gauges, and cumulative-bucket
// histograms. The output is deterministic for a given state, which the
// golden-file test relies on.
func (c *Collector) WritePrometheus(w io.Writer) error {
	type scalar struct {
		name, help, typ string
		value           int64
	}
	scalars := []scalar{
		{"batches_total", "Protocol batches completed.", "counter", c.Batches.Load()},
		{"batch_requests_total", "Requests across completed batches.", "counter", c.Requests.Load()},
		{"batch_rounds_total", "MPC rounds consumed by completed batches.", "counter", c.Rounds.Load()},
		{"copy_accesses_total", "Copies consumed by quorums.", "counter", c.CopyAccesses.Load()},
		{"granted_bids_total", "Module grants, including cancelled bids.", "counter", c.GrantedBids.Load()},
		{"issued_bids_total", "Bids handed to the MPC across all rounds.", "counter", c.IssuedBids.Load()},
		{"unfinished_requests_total", "Requests that missed their quorum.", "counter", c.Unfinished.Load()},
		{"retried_bids_total", "Bids re-selected onto surviving copies after faults.", "counter", c.RetriedBids.Load()},
		{"stranded_requests_total", "Requests whose live copies fell below quorum.", "counter", c.StrandedRequests.Load()},
		{"dropped_bids_total", "Bids dropped at failed modules before arbitration.", "counter", c.DroppedBids.Load()},
		{"fault_batches_total", "Batches that finished with at least one failed module.", "counter", c.FaultBatches.Load()},
		{"max_failed_modules", "Most failed modules observed at a batch end.", "gauge", c.FailedModules.Load()},
		{"max_phi", "Largest per-batch phi (max phase iterations).", "gauge", c.MaxPhi.Load()},
		{"mpc_rounds_total", "MPC rounds recorded.", "counter", c.MPCRounds.Load()},
		{"mpc_requests_total", "Live requests across recorded rounds.", "counter", c.MPCRequests.Load()},
		{"mpc_granted_total", "Grants across recorded rounds.", "counter", c.MPCGranted.Load()},
		{"barrier_wait_ns_total", "Coordinator barrier wait, nanoseconds (parallel engine).", "counter", c.BarrierNs.Load()},
		{"max_module_load", "Worst per-module congestion observed in any round.", "gauge", c.MaxModuleLoad.Load()},
		{"max_queue_depth", "Deepest frontend submission queue observed.", "gauge", c.MaxQueueDepth.Load()},
		{"max_ring_depth", "Deepest shard admission-ring occupancy observed.", "gauge", c.MaxRingDepth.Load()},
		{"flusher_parks_total", "Shard flusher parks on an idle admission ring.", "counter", c.FlusherParks.Load()},
		{"flusher_wakes_total", "Producer kicks that un-parked a shard flusher.", "counter", c.FlusherWakes.Load()},
		{"resolver_compiled_shards", "Compiled resolver blocks resident (1 = eager table).", "gauge", c.ResolverShards.Load()},
		{"resolver_resident_bytes", "Compiled resolver table bytes resident.", "gauge", c.ResolverBytes.Load()},
		{"audit_sampled_total", "Operations audited by the sampling consistency audit.", "counter", c.AuditedOps.Load()},
		{"audit_violations_total", "Audited reads contradicting the last known value.", "counter", c.AuditViolations.Load()},
		{"audit_evictions_total", "Audit slots reclaimed for a different variable.", "counter", c.AuditEvictions.Load()},
		{"repaired_copies_total", "Copies rebuilt onto repairing modules by repair writes.", "counter", c.RepairedCopies.Load()},
		{"repair_salvaged_total", "Variables rebuilt without a sound source majority.", "counter", c.RepairSalvaged.Load()},
		{"repair_rounds_total", "MPC rounds spent on background repair waves.", "counter", c.RepairRounds.Load()},
		{"repair_certified_total", "Modules certified fully live after rebuild.", "counter", c.RepairCertified.Load()},
		{"repair_backlog", "Modules still under repair after the latest step.", "gauge", c.RepairBacklog.Load()},
	}
	for _, s := range scalars {
		if err := writeScalar(w, s.name, s.help, s.typ, s.value); err != nil {
			return err
		}
	}
	type labeled struct {
		label string
		value int64
	}
	flushes := make([]labeled, 0, int(numFlushCauses))
	for cause := FlushCause(0); cause < numFlushCauses; cause++ {
		flushes = append(flushes, labeled{cause.String(), c.Flushes[cause].Load()})
	}
	sort.Slice(flushes, func(i, j int) bool { return flushes[i].label < flushes[j].label })
	name := promNamespace + "_frontend_flushes_total"
	if _, err := fmt.Fprintf(w, "# HELP %s Frontend batch flushes by cause.\n# TYPE %s counter\n", name, name); err != nil {
		return err
	}
	for _, fl := range flushes {
		if _, err := fmt.Fprintf(w, "%s{cause=%q} %d\n", name, fl.label, fl.value); err != nil {
			return err
		}
	}
	hists := []struct {
		name, help string
		h          *Histogram
	}{
		{"rounds_per_batch", "MPC rounds per protocol batch.", &c.RoundsPerBatch},
		{"fault_rounds", "MPC rounds per batch while modules were failed (round inflation).", &c.FaultRounds},
		{"module_load", "Per-module per-round request load (merged lower-bound sum).", &c.ModuleLoad},
		{"round_max_load", "Per-round maximum module load (imbalance).", &c.Imbalance},
		{"queue_depth", "Frontend submission-queue depth at admission.", &c.QueueDepth},
		{"ring_depth", "Shard admission-ring occupancy (sampled every 64th admission).", &c.RingDepth},
	}
	for _, hs := range hists {
		if err := writeHistogram(w, hs.name, hs.help, hs.h); err != nil {
			return err
		}
	}
	return nil
}

func writeScalar(w io.Writer, name, help, typ string, v int64) error {
	full := promNamespace + "_" + name
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", full, help, full, typ, full, v)
	return err
}

func writeHistogram(w io.Writer, name, help string, h *Histogram) error {
	full := promNamespace + "_" + name
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", full, help, full); err != nil {
		return err
	}
	buckets := h.Buckets()
	cum := int64(0)
	for b, n := range buckets {
		cum += n
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", full, BucketUpper(b), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", full, cum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", full, h.Sum(), full, h.Count())
	return err
}
