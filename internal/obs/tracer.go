package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// DefaultTraceCap is the ring capacity NewTracer uses for capacity ≤ 0.
const DefaultTraceCap = 1 << 16

// TraceTotals are a tracer's running sums over every recorded event,
// maintained outside the ring so they stay exact after wrap-around. They are
// the quantities the trace-replay tests cross-check against
// protocol.Metrics: Rounds must equal the summed TotalRounds and Granted the
// summed GrantedBids of the batches the traced machines executed.
type TraceTotals struct {
	Rounds    uint64 `json:"rounds"`     // events recorded (MPC rounds)
	Requests  uint64 `json:"requests"`   // Σ per-round live requests
	Granted   uint64 `json:"granted"`    // Σ per-round grants
	BarrierNs int64  `json:"barrier_ns"` // Σ coordinator barrier time
	MaxLoad   int    `json:"max_load"`   // max per-module load ever seen
	// DroppedBids is Σ per-round bids dropped at failed modules, so
	// Requests+DroppedBids balances against the protocol's issued bids
	// exactly even under faults. (Distinct from Tracer.Dropped, which
	// counts ring-overwritten events.)
	DroppedBids uint64 `json:"dropped_bids"`
}

// Tracer is a fixed-capacity ring buffer of RoundEvents. Recording is
// allocation-free in steady state; when the ring is full the oldest event
// is overwritten and counted in Dropped, while Totals stay exact. It is
// safe for one writer (the machine coordinator) and any number of
// concurrent readers.
type Tracer struct {
	mu      sync.Mutex
	ring    []RoundEvent
	next    int // next write slot
	n       int // events currently held (≤ len(ring))
	dropped uint64
	totals  TraceTotals
}

// NewTracer builds a tracer holding the last capacity events
// (DefaultTraceCap when capacity ≤ 0). The ring is allocated up front so
// RecordRound never allocates.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{ring: make([]RoundEvent, capacity)}
}

// Enabled reports true: a tracer always captures.
func (t *Tracer) Enabled() bool { return true }

// RecordRound appends the event, overwriting the oldest when full.
func (t *Tracer) RecordRound(ev RoundEvent) {
	t.mu.Lock()
	t.ring[t.next] = ev
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
	}
	if t.n < len(t.ring) {
		t.n++
	} else {
		t.dropped++
	}
	t.totals.Rounds++
	t.totals.Requests += uint64(ev.Requests)
	t.totals.Granted += uint64(ev.Granted)
	t.totals.BarrierNs += ev.BarrierNs
	t.totals.DroppedBids += uint64(ev.Dropped)
	if ev.MaxLoad > t.totals.MaxLoad {
		t.totals.MaxLoad = ev.MaxLoad
	}
	t.mu.Unlock()
}

// Events returns the buffered events oldest-first (a copy).
func (t *Tracer) Events() []RoundEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]RoundEvent, t.n)
	start := t.next - t.n
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < t.n; i++ {
		out[i] = t.ring[(start+i)%len(t.ring)]
	}
	return out
}

// Totals returns the running sums over all recorded events, including any
// that have been overwritten.
func (t *Tracer) Totals() TraceTotals {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.totals
}

// Dropped returns how many events were overwritten after the ring filled.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset clears the ring, totals, and drop counter.
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.next, t.n, t.dropped = 0, 0, 0
	t.totals = TraceTotals{}
	t.mu.Unlock()
}

// TraceDump is the JSON shape WriteJSON emits: exact running totals, the
// buffered tail of per-round events, and how many earlier events the ring
// dropped (0 means Events is the complete trajectory).
type TraceDump struct {
	Totals  TraceTotals  `json:"totals"`
	Dropped uint64       `json:"dropped"`
	Events  []RoundEvent `json:"events"`
}

// WriteJSON writes the tracer's state as an indented JSON document.
func (t *Tracer) WriteJSON(w io.Writer) error {
	dump := TraceDump{Totals: t.Totals(), Dropped: t.Dropped(), Events: t.Events()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(dump)
}
