// Package obs is the observability layer: round-level tracing and
// cumulative metrics for the MPC engines, the access protocol, and the
// combining frontend.
//
// The design constraint is that instrumentation must cost nothing when it is
// off: the hot paths (mpc.Machine.Round on both engines, the whole
// protocol.System.AccessInto batch loop) guard every event computation
// behind Recorder.Enabled(), and the default no-op recorder reports false,
// so the steady-state zero-allocation guarantees of PR 2 are preserved with
// instrumentation compiled in. When a real recorder is attached the per-
// round event assembly is one O(P) sweep plus ring-buffer or atomic writes —
// no allocation in steady state either.
//
// Three pieces compose:
//
//   - Recorder / RoundEvent: the per-round hook the MPC engines call after
//     every claim/grant/reset sweep, carrying the round index, live request
//     count, granted copies, the per-module contention histogram, and the
//     coordinator's barrier wait time (parallel engine).
//   - Tracer: a fixed-capacity ring buffer of RoundEvents with running
//     totals that survive ring wrap-around, dumpable as a JSON trajectory
//     (the Theorem 6 round-trajectory plot is made from this).
//   - Collector: cumulative atomic counters and power-of-two histograms fed
//     from three levels (round events, per-batch protocol metrics, frontend
//     dispatcher), exported via expvar and a Prometheus text-format writer.
package obs

import "math/bits"

// HistBuckets is the bucket count of every power-of-two histogram in this
// package: bucket b counts values v with 2^b ≤ v < 2^{b+1} (so bucket 0 is
// exactly 1); values ≥ 2^{HistBuckets-1} clamp into the last bucket, and
// zero or negative values are not observed.
const HistBuckets = 16

// bucketOf maps a positive value to its histogram bucket.
func bucketOf(v int64) int {
	b := bits.Len64(uint64(v)) - 1
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// BucketUpper returns the inclusive upper bound of bucket b (2^{b+1} − 1),
// the "le" label the Prometheus writer emits.
func BucketUpper(b int) int64 { return int64(1)<<(b+1) - 1 }

// LoadHist is one round's module-contention histogram: bucket b counts the
// modules whose request load this round fell in [2^b, 2^{b+1}). Idle
// modules are not counted.
type LoadHist [HistBuckets]uint32

// Observe counts one module with the given positive load.
func (h *LoadHist) Observe(load int) {
	if load > 0 {
		h[bucketOf(int64(load))]++
	}
}

// Modules returns the number of modules the histogram counted — the round's
// touched-module count, which by the MPC's one-grant-per-module rule equals
// the number of requests served.
func (h *LoadHist) Modules() int {
	n := 0
	for _, c := range h {
		n += int(c)
	}
	return n
}

// RoundEvent is one MPC round as seen by a Recorder.
type RoundEvent struct {
	// Round is the machine-relative round index (Machine.Rounds() at the
	// time the round executed, i.e. 0 for a fresh machine's first round).
	Round uint64 `json:"round"`
	// Requests is the number of processors bidding (non-Idle) this round.
	Requests int `json:"requests"`
	// Granted is the number of requests served — equal to the number of
	// distinct modules addressed, by the one-grant-per-module rule.
	Granted int `json:"granted"`
	// MaxLoad is the largest per-module request count (the congestion the
	// Pietracaprina–Preparata organization exists to minimize).
	MaxLoad int `json:"max_load"`
	// Contention is the full per-module load histogram.
	Contention LoadHist `json:"contention"`
	// BarrierNs is the coordinator's wall-clock time for the round's
	// barrier-synchronized claim/grant/reset sweeps on the parallel engine;
	// 0 on the sequential engine.
	BarrierNs int64 `json:"barrier_ns"`
	// Dropped is the number of bids dropped before arbitration because they
	// addressed a failed module (mpc.Failing annotates this); 0 on a
	// healthy machine. Requests counts only the surviving bids, so
	// Requests+Dropped is what the protocol layer actually issued.
	Dropped int `json:"dropped,omitempty"`
}

// Recorder receives one event per executed MPC round. Implementations must
// be safe for use from a single machine coordinator goroutine; Tracer and
// Collector are additionally safe for concurrent readers.
type Recorder interface {
	// Enabled reports whether the caller should assemble events at all.
	// Hot paths skip the contention sweep entirely when it returns false.
	Enabled() bool
	// RecordRound consumes one round's event.
	RecordRound(ev RoundEvent)
}

// Nop is the default recorder: disabled, records nothing, costs one
// predictable interface call per round.
var Nop Recorder = nopRecorder{}

type nopRecorder struct{}

func (nopRecorder) Enabled() bool          { return false }
func (nopRecorder) RecordRound(RoundEvent) {}

// Multi fans events out to several recorders. Nil and permanently disabled
// recorders are dropped at construction; if nothing remains, Nop is
// returned so the hot-path guard stays cheap.
func Multi(rs ...Recorder) Recorder {
	live := make([]Recorder, 0, len(rs))
	for _, r := range rs {
		if r != nil && r != Nop {
			live = append(live, r)
		}
	}
	switch len(live) {
	case 0:
		return Nop
	case 1:
		return live[0]
	}
	return multiRecorder(live)
}

type multiRecorder []Recorder

func (m multiRecorder) Enabled() bool {
	for _, r := range m {
		if r.Enabled() {
			return true
		}
	}
	return false
}

func (m multiRecorder) RecordRound(ev RoundEvent) {
	for _, r := range m {
		if r.Enabled() {
			r.RecordRound(ev)
		}
	}
}

// BatchEvent is one protocol batch's cumulative metrics, as reported by
// protocol.System at the end of every Access/AccessInto. It mirrors the
// fields of protocol.Metrics that are meaningful cumulatively.
type BatchEvent struct {
	Requests     int // requests in the batch
	Phases       int // phases executed (cluster size)
	Rounds       int // total MPC rounds (Σ phase iterations)
	MaxPhi       int // Φ: max iterations over phases
	CopyAccesses int // copies consumed by quorums
	GrantedBids  int // module grants, including cancelled bids
	IssuedBids   int // bids handed to the MPC across all rounds
	Unfinished   int // requests that missed their quorum
	// Fault-layer fields: zero on a healthy run.
	RetriedBids   int // bids re-selected onto surviving copies after faults
	Stranded      int // unfinished requests whose live copies fell below quorum
	FailedModules int // failed-module count when the batch finished
}

// BatchObserver receives one event per completed protocol batch. Collector
// implements it.
type BatchObserver interface {
	ObserveBatch(ev BatchEvent)
}

// RepairEvent is one background-repair step's work, as reported by
// protocol.System after every budget-bounded repair chunk (the per-batch
// pump and the shard dispatcher's idle-loop pump alike). Rounds, Issued and
// Granted are the step's MPC traffic: the protocol keeps repair out of its
// batch books (Metrics.TotalRounds/IssuedBids), so a collector that also
// records round traces must fold these in to keep the trace-vs-metrics
// crosscheck exact — Collector.ObserveRepair does.
type RepairEvent struct {
	Copies    int // target copies rebuilt (repair writes granted)
	Salvaged  int // variables rebuilt without a sound source majority
	Rounds    int // MPC rounds the step drove
	Issued    int // repair bids handed to the interconnect
	Granted   int // repair bids granted
	Certified int // modules certified fully live by this step
	Backlog   int // modules still under repair after the step
}

// RepairObserver receives one event per background-repair step. Collector
// implements it.
type RepairObserver interface {
	ObserveRepair(ev RepairEvent)
}

// ResolverObserver receives compiled-resolver residency updates: how many
// compiled blocks are resident (1 for an eager table, the materialized shard
// count in lazy mode) and the resident table bytes. A protocol System whose
// Observer implements this interface wires it into its resolver, so lazy
// table growth shows up live on /debug/vars and the Prometheus endpoint.
// Collector implements it.
type ResolverObserver interface {
	ObserveResolverResidency(shards int, bytes uint64)
}

// MultiBatch fans batch events out to several observers, dropping nils. It
// returns nil when nothing remains, so callers can assign the result
// directly to an optional observer field.
func MultiBatch(os ...BatchObserver) BatchObserver {
	live := make([]BatchObserver, 0, len(os))
	for _, o := range os {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multiBatch(live)
}

type multiBatch []BatchObserver

func (m multiBatch) ObserveBatch(ev BatchEvent) {
	for _, o := range m {
		o.ObserveBatch(ev)
	}
}

// ObserveRepair forwards repair-step events to every member that observes
// them. Without this, chaining a per-shard collector after a configured
// observer (shard.Config.Observe plus protocol.Config.Observer) would
// silently sever the repair accounting for both: protocol.System discovers
// its RepairObserver by type-asserting the one configured Observer, and a
// bare []BatchObserver fan-out would fail that assertion even though every
// member implements it.
func (m multiBatch) ObserveRepair(ev RepairEvent) {
	for _, o := range m {
		if ro, ok := o.(RepairObserver); ok {
			ro.ObserveRepair(ev)
		}
	}
}

// ObserveResolverResidency forwards resolver-residency updates the same
// way, for the same reason.
func (m multiBatch) ObserveResolverResidency(shards int, bytes uint64) {
	for _, o := range m {
		if ro, ok := o.(ResolverObserver); ok {
			ro.ObserveResolverResidency(shards, bytes)
		}
	}
}

// FlushCause labels why the frontend dispatcher flushed a batch.
type FlushCause int

const (
	// FlushSize: the batch reached MaxBatch distinct variables.
	FlushSize FlushCause = iota
	// FlushIdle: the submission queue ran dry.
	FlushIdle
	// FlushExplicit: an explicit Flush or Close.
	FlushExplicit
	// FlushConflict: a write-after-issued-read conflict.
	FlushConflict
	numFlushCauses
)

func (c FlushCause) String() string {
	switch c {
	case FlushSize:
		return "size"
	case FlushIdle:
		return "idle"
	case FlushExplicit:
		return "explicit"
	case FlushConflict:
		return "conflict"
	}
	return "unknown"
}
