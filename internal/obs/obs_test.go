package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// TestLoadHistEmptyBatch pins the empty-round edge: nothing observed, all
// buckets zero, zero modules.
func TestLoadHistEmptyBatch(t *testing.T) {
	var h LoadHist
	if h.Modules() != 0 {
		t.Fatalf("empty hist reports %d modules, want 0", h.Modules())
	}
	h.Observe(0)
	h.Observe(-3)
	if h.Modules() != 0 {
		t.Fatalf("non-positive loads were counted: %v", h)
	}
}

// TestLoadHistSingleModule pins the single-module edge: one module at load
// k lands in exactly the bucket [2^b, 2^{b+1}) containing k.
func TestLoadHistSingleModule(t *testing.T) {
	for _, tc := range []struct {
		load   int
		bucket int
	}{
		{1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3},
		{1 << 14, 14}, {1 << 15, 15}, {1 << 20, 15}, // clamp into the last bucket
	} {
		var h LoadHist
		h.Observe(tc.load)
		if h.Modules() != 1 {
			t.Fatalf("load %d: %d modules, want 1", tc.load, h.Modules())
		}
		for b, n := range h {
			want := uint32(0)
			if b == tc.bucket {
				want = 1
			}
			if n != want {
				t.Fatalf("load %d: bucket %d = %d, want %d (hist %v)", tc.load, b, n, want, h)
			}
		}
	}
}

// TestLoadHistUniform pins the N-module uniform edge: N modules at load 1
// all land in bucket 0 and Modules() returns N.
func TestLoadHistUniform(t *testing.T) {
	const n = 1023
	var h LoadHist
	for i := 0; i < n; i++ {
		h.Observe(1)
	}
	if h[0] != n || h.Modules() != n {
		t.Fatalf("uniform hist: bucket0=%d modules=%d, want %d", h[0], h.Modules(), n)
	}
}

func TestHistogramObserveAndBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0)  // ignored
	h.Observe(-1) // ignored
	vals := []int64{1, 1, 2, 3, 5, 8, 1 << 30}
	var sum int64
	for _, v := range vals {
		h.Observe(v)
		sum += v
	}
	if h.Count() != int64(len(vals)) || h.Sum() != sum {
		t.Fatalf("count=%d sum=%d, want %d/%d", h.Count(), h.Sum(), len(vals), sum)
	}
	b := h.Buckets()
	if b[0] != 2 || b[1] != 2 || b[2] != 1 || b[3] != 1 || b[HistBuckets-1] != 1 {
		t.Fatalf("bucket layout wrong: %v", b)
	}
}

func TestHistogramAddBucket(t *testing.T) {
	var h Histogram
	h.AddBucket(2, 5)             // 5 values at lower bound 4
	h.AddBucket(HistBuckets+3, 1) // clamps to last bucket
	h.AddBucket(0, -2)            // ignored
	h.AddBucket(-1, 3)            // ignored
	if h.Count() != 6 || h.Sum() != 5*4+1<<(HistBuckets-1) {
		t.Fatalf("count=%d sum=%d after merges", h.Count(), h.Sum())
	}
}

func TestMaxGaugeConcurrent(t *testing.T) {
	var g MaxGauge
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Observe(int64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if g.Load() != 7999 {
		t.Fatalf("max gauge %d, want 7999", g.Load())
	}
}

func TestTracerRingAndTotals(t *testing.T) {
	tr := NewTracer(4)
	if !tr.Enabled() {
		t.Fatal("tracer must be enabled")
	}
	for i := 0; i < 10; i++ {
		tr.RecordRound(RoundEvent{Round: uint64(i), Requests: 2, Granted: 1, MaxLoad: i + 1})
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.Round != uint64(6+i) {
			t.Fatalf("event %d is round %d, want %d (oldest-first tail)", i, ev.Round, 6+i)
		}
	}
	tot := tr.Totals()
	if tot.Rounds != 10 || tot.Requests != 20 || tot.Granted != 10 || tot.MaxLoad != 10 {
		t.Fatalf("totals survive wrap-around: %+v", tot)
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	tr.Reset()
	if len(tr.Events()) != 0 || tr.Totals() != (TraceTotals{}) || tr.Dropped() != 0 {
		t.Fatal("reset did not clear the tracer")
	}
}

func TestTracerWriteJSONRoundTrips(t *testing.T) {
	tr := NewTracer(8)
	ev := RoundEvent{Round: 3, Requests: 5, Granted: 2, MaxLoad: 3, BarrierNs: 42}
	ev.Contention.Observe(3)
	ev.Contention.Observe(1)
	tr.RecordRound(ev)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var dump TraceDump
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("trace JSON does not round-trip: %v\n%s", err, buf.String())
	}
	if dump.Totals.Rounds != 1 || len(dump.Events) != 1 || dump.Events[0] != ev {
		t.Fatalf("dump mismatch: %+v", dump)
	}
}

func TestMultiRecorder(t *testing.T) {
	if Multi() != Nop || Multi(nil, Nop) != Nop {
		t.Fatal("empty Multi must collapse to Nop")
	}
	a, b := NewTracer(4), NewTracer(4)
	if Multi(a, nil) != Recorder(a) {
		t.Fatal("single live recorder must be returned unwrapped")
	}
	m := Multi(a, b)
	if !m.Enabled() {
		t.Fatal("multi of enabled recorders must be enabled")
	}
	m.RecordRound(RoundEvent{Requests: 1, Granted: 1})
	if a.Totals().Rounds != 1 || b.Totals().Rounds != 1 {
		t.Fatal("multi did not fan out")
	}
	if Nop.Enabled() {
		t.Fatal("Nop must be disabled")
	}
}

func TestMultiBatch(t *testing.T) {
	if MultiBatch() != nil || MultiBatch(nil, nil) != nil {
		t.Fatal("empty MultiBatch must be nil")
	}
	a, b := NewCollector(), NewCollector()
	if MultiBatch(a, nil) != BatchObserver(a) {
		t.Fatal("single live observer must be returned unwrapped")
	}
	MultiBatch(a, b).ObserveBatch(BatchEvent{Requests: 3, Rounds: 2})
	if a.Batches.Load() != 1 || b.Batches.Load() != 1 || a.Rounds.Load() != 2 {
		t.Fatal("batch fan-out failed")
	}
}

func TestCollectorAggregation(t *testing.T) {
	c := NewCollector()
	if !c.Enabled() {
		t.Fatal("collector must be enabled")
	}
	ev := RoundEvent{Requests: 10, Granted: 4, MaxLoad: 5, BarrierNs: 100}
	ev.Contention.Observe(5)
	ev.Contention.Observe(2)
	ev.Contention.Observe(1)
	ev.Contention.Observe(1)
	c.RecordRound(ev)
	c.RecordRound(RoundEvent{Requests: 1, Granted: 1, MaxLoad: 1})
	if c.MPCRounds.Load() != 2 || c.MPCRequests.Load() != 11 || c.MPCGranted.Load() != 5 {
		t.Fatalf("round counters wrong: rounds=%d req=%d granted=%d",
			c.MPCRounds.Load(), c.MPCRequests.Load(), c.MPCGranted.Load())
	}
	if c.MaxModuleLoad.Load() != 5 || c.BarrierNs.Load() != 100 {
		t.Fatalf("max load %d barrier %d", c.MaxModuleLoad.Load(), c.BarrierNs.Load())
	}
	if c.ModuleLoad.Count() != 4 {
		t.Fatalf("module-load hist merged %d modules, want 4", c.ModuleLoad.Count())
	}

	c.ObserveBatch(BatchEvent{Requests: 100, Phases: 3, Rounds: 12, MaxPhi: 5, CopyAccesses: 200, GrantedBids: 250, Unfinished: 1})
	if c.Batches.Load() != 1 || c.Rounds.Load() != 12 || c.MaxPhi.Load() != 5 ||
		c.CopyAccesses.Load() != 200 || c.GrantedBids.Load() != 250 || c.Unfinished.Load() != 1 {
		t.Fatalf("batch counters wrong: %+v", c.Snapshot())
	}

	c.ObserveQueueDepth(7)
	c.ObserveQueueDepth(3)
	c.ObserveFlush(FlushSize)
	c.ObserveFlush(FlushIdle)
	c.ObserveFlush(FlushIdle)
	snap := c.Snapshot()
	if snap["max_queue_depth"] != 7 || snap["queue_depth_count"] != 2 {
		t.Fatalf("queue metrics wrong: %+v", snap)
	}
	if snap["flushes_size_total"] != 1 || snap["flushes_idle_total"] != 2 || snap["flushes_explicit_total"] != 0 {
		t.Fatalf("flush counters wrong: %+v", snap)
	}
}

func TestFlushCauseStrings(t *testing.T) {
	want := map[FlushCause]string{
		FlushSize: "size", FlushIdle: "idle", FlushExplicit: "explicit",
		FlushConflict: "conflict", numFlushCauses: "unknown",
	}
	for c, s := range want {
		if c.String() != s {
			t.Fatalf("FlushCause(%d).String() = %q, want %q", c, c.String(), s)
		}
	}
}

// TestRecordRoundNoAlloc pins the enabled tracing path itself at zero
// steady-state allocations: the ring and the collector's atomics never
// allocate per event (the engines' own no-op guarantee is pinned in
// internal/mpc and internal/protocol).
func TestRecordRoundNoAlloc(t *testing.T) {
	tr := NewTracer(64)
	c := NewCollector()
	m := Multi(tr, c)
	ev := RoundEvent{Requests: 8, Granted: 4, MaxLoad: 2}
	ev.Contention.Observe(2)
	if avg := testing.AllocsPerRun(200, func() {
		m.RecordRound(ev)
		c.ObserveBatch(BatchEvent{Requests: 8, Rounds: 1, GrantedBids: 4})
	}); avg != 0 {
		t.Fatalf("RecordRound/ObserveBatch allocate %.2f per event, want 0", avg)
	}
}
