// Package pramvm is a small PRAM virtual machine: P processors execute the
// same straight-line instruction sequence in lockstep (SIMD style, with
// per-processor registers and predication), and every shared-memory
// instruction becomes one batch on the underlying memory organization — the
// exact "simulate an idealized parallel machine on banked memory" scenario
// the granularity problem comes from.
//
// Shared reads are combined (CREW); shared writes use priority combining
// (CRCW-Priority: the lowest-numbered active processor wins). Loops are
// host-controlled: Run executes the program once, RunUntil re-executes it
// until a designated shared flag cell stays zero (programs signal progress
// by writing the flag), which expresses fixpoint algorithms such as pointer
// jumping without per-processor control flow.
package pramvm

import (
	"fmt"

	"detshmem/internal/pram"
)

// Op is an instruction opcode.
type Op uint8

// Instruction set. Register operands name per-processor registers; A/B are
// sources, Dst the destination. Every processor executes every instruction,
// gated by its predicate register (set via SetPred/PredGE/...).
const (
	// OpConst: r[Dst] = Imm.
	OpConst Op = iota
	// OpPID: r[Dst] = processor id.
	OpPID
	// OpMov: r[Dst] = r[A].
	OpMov
	// OpAdd: r[Dst] = r[A] + r[B].
	OpAdd
	// OpSub: r[Dst] = r[A] − r[B] (wrapping).
	OpSub
	// OpMul: r[Dst] = r[A] · r[B] (wrapping).
	OpMul
	// OpMin: r[Dst] = min(r[A], r[B]).
	OpMin
	// OpMax: r[Dst] = max(r[A], r[B]).
	OpMax
	// OpShr: r[Dst] = r[A] >> Imm.
	OpShr
	// OpEq: r[Dst] = 1 if r[A] == r[B] else 0.
	OpEq
	// OpLT: r[Dst] = 1 if r[A] < r[B] else 0.
	OpLT
	// OpSelect: r[Dst] = r[A] if r[Pred-slot B] != 0 … rendered as
	// r[Dst] = (r[C]!=0) ? r[A] : r[B]; C is carried in Imm.
	OpSelect
	// OpPred: predicate register = (r[A] != 0); subsequent instructions
	// only execute on processors whose predicate holds, until OpPredAll.
	OpPred
	// OpPredAll: re-enable all processors.
	OpPredAll
	// OpRead: r[Dst] = shared[r[A]] (one combined read batch per OpRead).
	OpRead
	// OpWrite: shared[r[A]] = r[B] (one priority-combined write batch).
	OpWrite
	// OpWriteMax: shared[r[A]] = max over writers of r[B] (CRCW-Max).
	OpWriteMax
	// OpWriteSum: shared[r[A]] = Σ over writers of r[B] (Fetch&Add-style).
	OpWriteSum
)

// Instr is one lockstep instruction.
type Instr struct {
	Op   Op
	Dst  int
	A, B int
	Imm  uint64
}

// Program is a straight-line instruction sequence.
type Program []Instr

// VM executes programs over a PRAM (which supplies combining and the
// underlying memory organization).
type VM struct {
	mem   *pram.PRAM
	procs int
	nreg  int

	regs [][]uint64 // [proc][reg]
	pred []bool

	// scratch
	addrs, vals []uint64
	who         []int
}

// New builds a VM with procs processors and nreg registers each.
func New(mem *pram.PRAM, procs, nreg int) (*VM, error) {
	if procs <= 0 || nreg <= 0 {
		return nil, fmt.Errorf("pramvm: need positive processor and register counts")
	}
	regs := make([][]uint64, procs)
	for p := range regs {
		regs[p] = make([]uint64, nreg)
	}
	return &VM{
		mem:   mem,
		procs: procs,
		nreg:  nreg,
		regs:  regs,
		pred:  make([]bool, procs),
	}, nil
}

// Reg returns processor p's register r (for result extraction in tests and
// callers).
func (vm *VM) Reg(p, r int) uint64 { return vm.regs[p][r] }

// Run executes the program once, lockstep. It returns the number of shared
// batches issued.
func (vm *VM) Run(prog Program) (batches int, err error) {
	for p := range vm.pred {
		vm.pred[p] = true
	}
	for pc, ins := range prog {
		if err := vm.checkRegs(ins); err != nil {
			return batches, fmt.Errorf("pramvm: pc %d: %w", pc, err)
		}
		switch ins.Op {
		case OpConst:
			vm.each(func(r []uint64) { r[ins.Dst] = ins.Imm })
		case OpPID:
			for p := 0; p < vm.procs; p++ {
				if vm.pred[p] {
					vm.regs[p][ins.Dst] = uint64(p)
				}
			}
		case OpMov:
			vm.each(func(r []uint64) { r[ins.Dst] = r[ins.A] })
		case OpAdd:
			vm.each(func(r []uint64) { r[ins.Dst] = r[ins.A] + r[ins.B] })
		case OpSub:
			vm.each(func(r []uint64) { r[ins.Dst] = r[ins.A] - r[ins.B] })
		case OpMul:
			vm.each(func(r []uint64) { r[ins.Dst] = r[ins.A] * r[ins.B] })
		case OpMin:
			vm.each(func(r []uint64) {
				if r[ins.B] < r[ins.A] {
					r[ins.Dst] = r[ins.B]
				} else {
					r[ins.Dst] = r[ins.A]
				}
			})
		case OpMax:
			vm.each(func(r []uint64) {
				if r[ins.B] > r[ins.A] {
					r[ins.Dst] = r[ins.B]
				} else {
					r[ins.Dst] = r[ins.A]
				}
			})
		case OpShr:
			vm.each(func(r []uint64) { r[ins.Dst] = r[ins.A] >> (ins.Imm & 63) })
		case OpEq:
			vm.each(func(r []uint64) { r[ins.Dst] = b2u(r[ins.A] == r[ins.B]) })
		case OpLT:
			vm.each(func(r []uint64) { r[ins.Dst] = b2u(r[ins.A] < r[ins.B]) })
		case OpSelect:
			c := int(ins.Imm)
			if c < 0 || c >= vm.nreg {
				return batches, fmt.Errorf("pramvm: pc %d: select condition register %d out of range", pc, c)
			}
			vm.each(func(r []uint64) {
				if r[c] != 0 {
					r[ins.Dst] = r[ins.A]
				} else {
					r[ins.Dst] = r[ins.B]
				}
			})
		case OpPred:
			for p := 0; p < vm.procs; p++ {
				vm.pred[p] = vm.regs[p][ins.A] != 0
			}
		case OpPredAll:
			for p := range vm.pred {
				vm.pred[p] = true
			}
		case OpRead:
			if err := vm.sharedRead(ins); err != nil {
				return batches, err
			}
			batches++
		case OpWrite:
			if err := vm.sharedWrite(ins, pram.CombinePriority); err != nil {
				return batches, err
			}
			batches++
		case OpWriteMax:
			if err := vm.sharedWrite(ins, pram.CombineMax); err != nil {
				return batches, err
			}
			batches++
		case OpWriteSum:
			if err := vm.sharedWrite(ins, pram.CombineSum); err != nil {
				return batches, err
			}
			batches++
		default:
			return batches, fmt.Errorf("pramvm: pc %d: unknown opcode %d", pc, ins.Op)
		}
	}
	return batches, nil
}

// RunUntil repeatedly executes the program while the shared flag cell is
// nonzero after a pass, clearing it before each pass; maxIters bounds the
// loop. It returns the number of passes.
func (vm *VM) RunUntil(prog Program, flag uint64, maxIters int) (int, error) {
	for iter := 1; iter <= maxIters; iter++ {
		if err := vm.mem.Write([]uint64{flag}, []uint64{0}); err != nil {
			return iter, err
		}
		if _, err := vm.Run(prog); err != nil {
			return iter, err
		}
		v, err := vm.mem.Read([]uint64{flag})
		if err != nil {
			return iter, err
		}
		if v[0] == 0 {
			return iter, nil
		}
	}
	return maxIters, fmt.Errorf("pramvm: no fixpoint within %d passes", maxIters)
}

func (vm *VM) each(f func(r []uint64)) {
	for p := 0; p < vm.procs; p++ {
		if vm.pred[p] {
			f(vm.regs[p])
		}
	}
}

func (vm *VM) sharedRead(ins Instr) error {
	vm.addrs = vm.addrs[:0]
	vm.who = vm.who[:0]
	for p := 0; p < vm.procs; p++ {
		if vm.pred[p] {
			vm.addrs = append(vm.addrs, vm.regs[p][ins.A])
			vm.who = append(vm.who, p)
		}
	}
	if len(vm.addrs) == 0 {
		return nil
	}
	got, err := vm.mem.Read(vm.addrs)
	if err != nil {
		return err
	}
	for i, p := range vm.who {
		vm.regs[p][ins.Dst] = got[i]
	}
	return nil
}

func (vm *VM) sharedWrite(ins Instr, mode pram.CombineMode) error {
	vm.addrs = vm.addrs[:0]
	vm.vals = vm.vals[:0]
	for p := 0; p < vm.procs; p++ {
		if vm.pred[p] {
			vm.addrs = append(vm.addrs, vm.regs[p][ins.A])
			vm.vals = append(vm.vals, vm.regs[p][ins.B])
		}
	}
	if len(vm.addrs) == 0 {
		return nil
	}
	// Processors are appended in id order, so CombinePriority keeps the
	// lowest-numbered writer (CRCW-Priority semantics).
	return vm.mem.WriteCombine(vm.addrs, vm.vals, mode)
}

func (vm *VM) checkRegs(ins Instr) error {
	for _, r := range []int{ins.Dst, ins.A, ins.B} {
		if r < 0 || r >= vm.nreg {
			return fmt.Errorf("register %d out of range [0,%d)", r, vm.nreg)
		}
	}
	return nil
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
