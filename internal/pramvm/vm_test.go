package pramvm

import (
	"math/rand"
	"testing"

	"detshmem/internal/core"
	"detshmem/internal/pram"
	"detshmem/internal/protocol"
)

func newVM(t testing.TB, procs, nreg int) (*VM, *pram.PRAM) {
	t.Helper()
	s, err := core.New(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := s.NewIndexer()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := protocol.NewSystem(s, idx, protocol.Config{})
	if err != nil {
		t.Fatal(err)
	}
	mem := pram.New(sys)
	vm, err := New(mem, procs, nreg)
	if err != nil {
		t.Fatal(err)
	}
	return vm, mem
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 0, 4); err == nil {
		t.Error("zero processors accepted")
	}
	if _, err := New(nil, 4, 0); err == nil {
		t.Error("zero registers accepted")
	}
}

func TestALUOps(t *testing.T) {
	vm, _ := newVM(t, 4, 8)
	prog := Program{
		{Op: OpPID, Dst: 0},
		{Op: OpConst, Dst: 1, Imm: 10},
		{Op: OpAdd, Dst: 2, A: 0, B: 1},   // pid+10
		{Op: OpMul, Dst: 3, A: 0, B: 0},   // pid²
		{Op: OpSub, Dst: 4, A: 1, B: 0},   // 10−pid
		{Op: OpMin, Dst: 5, A: 0, B: 1},   // min(pid,10)
		{Op: OpMax, Dst: 6, A: 3, B: 1},   // max(pid²,10)
		{Op: OpShr, Dst: 7, A: 1, Imm: 1}, // 5
	}
	if _, err := vm.Run(prog); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 4; p++ {
		pid := uint64(p)
		checks := map[int]uint64{
			2: pid + 10, 3: pid * pid, 4: 10 - pid, 5: pid, 7: 5,
		}
		for r, want := range checks {
			if got := vm.Reg(p, r); got != want {
				t.Fatalf("proc %d reg %d = %d, want %d", p, r, got, want)
			}
		}
		wantMax := uint64(10)
		if pid*pid > 10 {
			wantMax = pid * pid
		}
		if vm.Reg(p, 6) != wantMax {
			t.Fatalf("proc %d max = %d", p, vm.Reg(p, 6))
		}
	}
}

func TestPredication(t *testing.T) {
	vm, _ := newVM(t, 8, 6)
	prog := Program{
		{Op: OpPID, Dst: 0},
		{Op: OpConst, Dst: 1, Imm: 4},
		{Op: OpLT, Dst: 2, A: 0, B: 1}, // pid < 4
		{Op: OpConst, Dst: 3, Imm: 111},
		{Op: OpPred, A: 2},
		{Op: OpConst, Dst: 3, Imm: 222}, // only pid < 4
		{Op: OpPredAll},
	}
	if _, err := vm.Run(prog); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 8; p++ {
		want := uint64(111)
		if p < 4 {
			want = 222
		}
		if got := vm.Reg(p, 3); got != want {
			t.Fatalf("proc %d reg3 = %d, want %d", p, got, want)
		}
	}
}

func TestSharedReadWritePriority(t *testing.T) {
	vm, mem := newVM(t, 6, 6)
	// All processors write pid to cell 50 (priority: proc 0 wins), then all
	// read it back.
	prog := Program{
		{Op: OpPID, Dst: 0},
		{Op: OpConst, Dst: 1, Imm: 50},
		{Op: OpWrite, A: 1, B: 0},
		{Op: OpRead, Dst: 2, A: 1},
	}
	batches, err := vm.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if batches != 2 {
		t.Fatalf("batches = %d, want 2", batches)
	}
	for p := 0; p < 6; p++ {
		if vm.Reg(p, 2) != 0 {
			t.Fatalf("priority write lost: proc %d read %d", p, vm.Reg(p, 2))
		}
	}
	got, err := mem.Read([]uint64{50})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Fatalf("cell 50 = %d, want 0 (lowest pid)", got[0])
	}
}

func TestRegisterValidation(t *testing.T) {
	vm, _ := newVM(t, 2, 3)
	if _, err := vm.Run(Program{{Op: OpMov, Dst: 5, A: 0}}); err == nil {
		t.Error("out-of-range register accepted")
	}
	if _, err := vm.Run(Program{{Op: OpSelect, Dst: 0, A: 1, B: 2, Imm: 99}}); err == nil {
		t.Error("out-of-range select condition accepted")
	}
	if _, err := vm.Run(Program{{Op: Op(200), Dst: 0}}); err == nil {
		t.Error("unknown opcode accepted")
	}
}

func TestPointerJumpProgram(t *testing.T) {
	const n = 64
	vm, mem := newVM(t, n, 16)
	base, flag := uint64(0), uint64(1000)
	parent := make([]uint64, n)
	addrs := make([]uint64, n)
	for i := range parent {
		addrs[i] = uint64(i)
		if i == 0 || i == 32 {
			parent[i] = uint64(i) // two roots
		} else {
			parent[i] = uint64(i - 1) // chains
		}
	}
	if err := mem.Write(addrs, parent); err != nil {
		t.Fatal(err)
	}
	prog, nreg := PointerJumpProgram(base, flag)
	if nreg > 16 {
		t.Fatalf("program needs %d registers", nreg)
	}
	passes, err := vm.RunUntil(prog, flag, 12)
	if err != nil {
		t.Fatal(err)
	}
	if passes > 8 { // ⌈log₂ 32⌉ + slack
		t.Fatalf("pointer jumping took %d passes", passes)
	}
	got, err := mem.Read(addrs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		want := uint64(0)
		if i >= 32 {
			want = 32
		}
		if got[i] != want {
			t.Fatalf("root[%d] = %d, want %d", i, got[i], want)
		}
	}
}

func TestPrefixSumProgram(t *testing.T) {
	const n = 100
	vm, mem := newVM(t, n, 24)
	base, dcell, flag := uint64(0), uint64(500), uint64(501)
	rng := rand.New(rand.NewSource(5))
	vals := make([]uint64, n)
	addrs := make([]uint64, n)
	for i := range vals {
		addrs[i] = uint64(i)
		vals[i] = uint64(rng.Intn(100))
	}
	if err := mem.Write(addrs, vals); err != nil {
		t.Fatal(err)
	}
	if err := mem.Write([]uint64{dcell}, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	prog, nreg := PrefixSumProgram(base, dcell, flag, n)
	if nreg > 24 {
		t.Fatalf("program needs %d registers", nreg)
	}
	if _, err := vm.RunUntil(prog, flag, 10); err != nil {
		t.Fatal(err)
	}
	got, err := mem.Read(addrs)
	if err != nil {
		t.Fatal(err)
	}
	sum := uint64(0)
	for i := range vals {
		sum += vals[i]
		if got[i] != sum {
			t.Fatalf("prefix[%d] = %d, want %d", i, got[i], sum)
		}
	}
}

func TestMaxProgram(t *testing.T) {
	const n = 40
	vm, mem := newVM(t, n, 8)
	vals := make([]uint64, n)
	addrs := make([]uint64, n)
	for i := range vals {
		addrs[i] = uint64(i)
		vals[i] = uint64((i * 37) % 97)
	}
	if err := mem.Write(addrs, vals); err != nil {
		t.Fatal(err)
	}
	prog, nreg := MaxProgram(0, 900)
	if nreg > 8 {
		t.Fatalf("program needs %d registers", nreg)
	}
	if _, err := vm.Run(prog); err != nil {
		t.Fatal(err)
	}
	got, err := mem.Read([]uint64{900})
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(0)
	for _, v := range vals {
		if v > want {
			want = v
		}
	}
	if got[0] != want {
		t.Fatalf("max = %d, want %d", got[0], want)
	}
}

func TestHistogramProgram(t *testing.T) {
	const n = 64
	vm, mem := newVM(t, n, 8)
	vals := make([]uint64, n)
	addrs := make([]uint64, n)
	for i := range vals {
		addrs[i] = uint64(i)
		vals[i] = uint64(i % 4) // buckets 0..3, 16 each
	}
	if err := mem.Write(addrs, vals); err != nil {
		t.Fatal(err)
	}
	prog, nreg := HistogramProgram(0, 800)
	if nreg > 8 {
		t.Fatalf("program needs %d registers", nreg)
	}
	if _, err := vm.Run(prog); err != nil {
		t.Fatal(err)
	}
	got, err := mem.Read([]uint64{800, 801, 802, 803})
	if err != nil {
		t.Fatal(err)
	}
	for b, c := range got {
		if c != 16 {
			t.Fatalf("bucket %d = %d, want 16", b, c)
		}
	}
}

func TestRunUntilBudget(t *testing.T) {
	vm, _ := newVM(t, 2, 8)
	// A program that always raises the flag never reaches a fixpoint.
	prog := Program{
		{Op: OpConst, Dst: 0, Imm: 700},
		{Op: OpConst, Dst: 1, Imm: 1},
		{Op: OpWrite, A: 0, B: 1},
	}
	if _, err := vm.RunUntil(prog, 700, 5); err == nil {
		t.Fatal("expected fixpoint-budget error")
	}
}
