package pramvm

// Canned PRAM programs. Each constructor returns a Program plus the register
// count the VM needs to run it. Shared-memory layout is the caller's: `base`
// addresses the working array, `flag` (for fixpoint programs) and `dcell`
// (for the doubling counter) are caller-chosen scratch cells outside the
// array.

// PointerJumpProgram builds one pass of pointer jumping over the parent
// array at base … base+n−1 (roots self-looped): parent[i] ← parent[parent[i]],
// writing 1 to flag whenever any processor changed its parent. Run it with
// RunUntil(prog, flag, ⌈log₂ n⌉+2); processor i handles node i.
func PointerJumpProgram(base, flag uint64) (Program, int) {
	const (
		rPID = iota
		rBase
		rOwnAddr
		rParent
		rParentAddr
		rGrand
		rUnchanged
		rOne
		rChanged
		rFlagAddr
		nRegs
	)
	return Program{
		{Op: OpPID, Dst: rPID},
		{Op: OpConst, Dst: rBase, Imm: base},
		{Op: OpAdd, Dst: rOwnAddr, A: rPID, B: rBase},
		{Op: OpRead, Dst: rParent, A: rOwnAddr},
		{Op: OpAdd, Dst: rParentAddr, A: rParent, B: rBase},
		{Op: OpRead, Dst: rGrand, A: rParentAddr},
		{Op: OpWrite, A: rOwnAddr, B: rGrand},
		{Op: OpEq, Dst: rUnchanged, A: rParent, B: rGrand},
		{Op: OpConst, Dst: rOne, Imm: 1},
		{Op: OpSub, Dst: rChanged, A: rOne, B: rUnchanged},
		{Op: OpPred, A: rChanged},
		{Op: OpConst, Dst: rFlagAddr, Imm: flag},
		{Op: OpWrite, A: rFlagAddr, B: rOne},
		{Op: OpPredAll},
	}, nRegs
}

// PrefixSumProgram builds one doubling pass of inclusive prefix sums over
// base … base+n−1. The current stride d lives in shared cell dcell (the
// caller initializes it to 1); processor 0 doubles it each pass and raises
// flag while d < n. Run with RunUntil(prog, flag, ⌈log₂ n⌉+2).
func PrefixSumProgram(base, dcell, flag uint64, n int) (Program, int) {
	const (
		rPID = iota
		rBase
		rD
		rDAddr
		rActive
		rInactive
		rSrcIdx
		rSrcAddr
		rOwnAddr
		rLower
		rOwn
		rSum
		rZero
		rIsZeroPID
		rD2
		rN
		rMore
		rGate
		rFlagAddr
		rOne
		nRegs
	)
	return Program{
		{Op: OpPID, Dst: rPID},
		{Op: OpConst, Dst: rBase, Imm: base},
		{Op: OpConst, Dst: rDAddr, Imm: dcell},
		{Op: OpRead, Dst: rD, A: rDAddr},
		// active ⇔ pid >= d
		{Op: OpLT, Dst: rInactive, A: rPID, B: rD},
		{Op: OpConst, Dst: rOne, Imm: 1},
		{Op: OpSub, Dst: rActive, A: rOne, B: rInactive},
		{Op: OpPred, A: rActive},
		{Op: OpSub, Dst: rSrcIdx, A: rPID, B: rD},
		{Op: OpAdd, Dst: rSrcAddr, A: rSrcIdx, B: rBase},
		{Op: OpRead, Dst: rLower, A: rSrcAddr},
		{Op: OpAdd, Dst: rOwnAddr, A: rPID, B: rBase},
		{Op: OpRead, Dst: rOwn, A: rOwnAddr},
		{Op: OpAdd, Dst: rSum, A: rLower, B: rOwn},
		{Op: OpWrite, A: rOwnAddr, B: rSum},
		{Op: OpPredAll},
		// Processor 0 doubles d and raises the flag while d·2 < n.
		{Op: OpConst, Dst: rZero, Imm: 0},
		{Op: OpEq, Dst: rIsZeroPID, A: rPID, B: rZero},
		{Op: OpPred, A: rIsZeroPID},
		{Op: OpAdd, Dst: rD2, A: rD, B: rD},
		{Op: OpWrite, A: rDAddr, B: rD2},
		{Op: OpConst, Dst: rN, Imm: uint64(n)},
		{Op: OpLT, Dst: rMore, A: rD2, B: rN},
		{Op: OpMul, Dst: rGate, A: rIsZeroPID, B: rMore},
		{Op: OpPred, A: rGate},
		{Op: OpConst, Dst: rFlagAddr, Imm: flag},
		{Op: OpWrite, A: rFlagAddr, B: rOne},
		{Op: OpPredAll},
	}, nRegs
}

// MaxProgram computes the maximum of base … base+n−1 into shared cell out
// with a single CRCW-Max step. Run once with Run (no fixpoint needed);
// processor i handles element i.
func MaxProgram(base, out uint64) (Program, int) {
	const (
		rPID = iota
		rBase
		rOwnAddr
		rVal
		rOut
		nRegs
	)
	return Program{
		{Op: OpPID, Dst: rPID},
		{Op: OpConst, Dst: rBase, Imm: base},
		{Op: OpAdd, Dst: rOwnAddr, A: rPID, B: rBase},
		{Op: OpRead, Dst: rVal, A: rOwnAddr},
		{Op: OpConst, Dst: rOut, Imm: out},
		{Op: OpWriteMax, A: rOut, B: rVal},
	}, nRegs
}

// HistogramProgram counts, with one Fetch&Add-style step, how many elements
// of base … base+n−1 fall in each bucket value (elements are assumed to be
// bucket ids < nbuckets), accumulating into buckets at bbase … — a classic
// combining-network workload.
func HistogramProgram(base, bbase uint64) (Program, int) {
	const (
		rPID = iota
		rBase
		rOwnAddr
		rVal
		rBBase
		rBucketAddr
		rOne
		nRegs
	)
	return Program{
		{Op: OpPID, Dst: rPID},
		{Op: OpConst, Dst: rBase, Imm: base},
		{Op: OpAdd, Dst: rOwnAddr, A: rPID, B: rBase},
		{Op: OpRead, Dst: rVal, A: rOwnAddr},
		{Op: OpConst, Dst: rBBase, Imm: bbase},
		{Op: OpAdd, Dst: rBucketAddr, A: rVal, B: rBBase},
		{Op: OpConst, Dst: rOne, Imm: 1},
		{Op: OpWriteSum, A: rBucketAddr, B: rOne},
	}, nRegs
}
