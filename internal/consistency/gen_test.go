package consistency

import "math/rand"

// genSCTrace simulates a linearizable shared memory: clients' next
// operations are interleaved in a random global order against one store
// map, so the resulting trace is sequentially consistent by construction —
// it must certify under both ModePRAM and ModePerVariable. Write values
// are minted uniquely per client ((c+1)<<40 | counter), matching the
// Recorder's data-uniqueness discipline.
func genSCTrace(rng *rand.Rand, clients, opsPerClient, vars int) Trace {
	tr := make(Trace, clients)
	store := make(map[uint64]uint64, vars)
	remaining := make([]int, clients)
	seq := make([]uint64, clients)
	live := 0
	for c := range remaining {
		remaining[c] = opsPerClient
		if opsPerClient > 0 {
			live++
		}
	}
	for live > 0 {
		c := rng.Intn(clients)
		if remaining[c] == 0 {
			continue
		}
		v := uint64(rng.Intn(vars))
		if rng.Intn(100) < 40 { // write
			seq[c]++
			val := uint64(c+1)<<40 | seq[c]
			store[v] = val
			tr[c] = append(tr[c], Op{Write: true, Var: v, Val: val})
		} else { // read
			tr[c] = append(tr[c], Op{Var: v, Val: store[v]})
		}
		if remaining[c]--; remaining[c] == 0 {
			live--
		}
	}
	return tr
}

// genPRAMTrace builds a PRAM-consistent (but deliberately not sequentially
// consistent) trace: each reading client applies all clients' writes in
// its own client-specific interleaving — legal under PRAM, where clients
// may disagree on the relative order of independent writes. Per-variable
// consistency is NOT guaranteed by this generator (two observers may see
// one variable's writes in different orders), so only ModePRAM certifies
// its output in general.
func genPRAMTrace(rng *rand.Rand, writers, readers, opsPerClient, vars int) Trace {
	tr := make(Trace, writers+readers)
	for c := 0; c < writers; c++ {
		for i := 0; i < opsPerClient; i++ {
			v := uint64(rng.Intn(vars))
			val := uint64(c+1)<<40 | uint64(i+1)
			tr[c] = append(tr[c], Op{Write: true, Var: v, Val: val})
		}
	}
	for p := 0; p < readers; p++ {
		// This observer's serialization: a random interleaving of the
		// writer streams (program order within each preserved).
		idx := make([]int, writers)
		store := make(map[uint64]uint64, vars)
		c := writers + p
		for i := 0; i < opsPerClient; i++ {
			// Advance a random writer a random number of steps, then read.
			w := rng.Intn(writers)
			for s := rng.Intn(3); s >= 0 && idx[w] < len(tr[w]); s-- {
				op := tr[w][idx[w]]
				store[op.Var] = op.Val
				idx[w]++
			}
			v := uint64(rng.Intn(vars))
			tr[c] = append(tr[c], Op{Var: v, Val: store[v]})
		}
	}
	return tr
}
