package consistency

import (
	"fmt"
	"math"
	"sync/atomic"

	"detshmem/internal/obs"
)

// AuditConfig tunes the always-on sampling audit.
type AuditConfig struct {
	// Rate is the fraction of the variable space audited, in (0, 1].
	// Sampling is by variable, not by operation: either every operation on
	// a variable is audited or none is, so the audited sub-history is
	// complete per variable and mismatches are real. 0 disables auditing.
	Rate float64
	// Slots sizes the last-known-value table (rounded up to a power of
	// two). Each slot tracks one sampled variable; when two sampled
	// variables collide the older one is evicted (counted, never a false
	// alarm). 0 defaults to 1024.
	Slots int
	// Ring sizes the recent-operation ring CheckNow replays through the
	// full trace checker. 0 defaults to 4096; negative disables the ring.
	Ring int
	// Collector, when set, additionally surfaces the audit counters
	// through the obs layer (audit_sampled_total, audit_violations_total,
	// audit_evictions_total).
	Collector *obs.Collector
}

// AuditStats is a snapshot of the audit counters.
type AuditStats struct {
	Sampled    int64 // operations audited (on sampled variables)
	Violations int64 // audited reads contradicting the last known value
	Evictions  int64 // slots reclaimed for a different sampled variable
}

// AuditViolationSample captures one detected violation for diagnosis.
type AuditViolationSample struct {
	Var  uint64 `json:"var"`
	Want uint64 `json:"want"` // last value the audit knew for Var
	Got  uint64 `json:"got"`  // what the read returned
}

// auditSlot states.
const (
	slotEmpty   = uint32(iota)
	slotKnown   // val is the variable's current committed value
	slotUnknown // a failed write left the value uncertain
)

type auditSlot struct {
	v     uint64
	val   uint64
	state uint32
}

// maxViolationSamples bounds the captured violation details.
const maxViolationSamples = 8

// Auditor is the always-on sampling consistency audit. A dispatcher feeds
// it every completed operation in commit order (frontend.Config.Auditor /
// shard.Config.Audit); it shadows the store for a deterministic ~Rate
// sample of the variable space and checks each audited read against the
// last value it saw committed there — the per-variable-linearizability
// contract at full fidelity for the sampled variables.
//
// Hot-path discipline matches the obs layer: AuditRead, AuditWrite and
// AuditFailed never allocate, never lock, and touch one table slot each.
// The dispatcher's flusher goroutine is the only writer; Stats, Snapshot
// and the violation counters may be read concurrently (the counters are
// atomics; slot memory is single-writer).
type Auditor struct {
	thresh uint64 // sample iff mix64(v) <= thresh
	mask   uint64
	slots  []auditSlot

	sampled    atomic.Int64
	violations atomic.Int64
	evictions  atomic.Int64

	nSamples atomic.Int32
	samples  [maxViolationSamples]AuditViolationSample

	col *obs.Collector // nil when not wired into obs

	// Recent-op ring for CheckNow; single-writer, len(ring) is the
	// capacity, head the next write position, filled the count stored.
	ring   []Op
	head   int
	filled int
}

// NewAuditor builds an auditor; returns nil when cfg.Rate <= 0 (auditing
// disabled — a nil *Auditor is a valid "off" value for the dispatchers).
func NewAuditor(cfg AuditConfig) *Auditor {
	if cfg.Rate <= 0 {
		return nil
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 1024
	}
	slots := 1
	for slots < cfg.Slots {
		slots <<= 1
	}
	a := &Auditor{
		mask:  uint64(slots - 1),
		slots: make([]auditSlot, slots),
		col:   cfg.Collector,
	}
	if cfg.Rate >= 1 {
		a.thresh = math.MaxUint64
	} else {
		a.thresh = uint64(cfg.Rate * float64(math.MaxUint64))
	}
	if cfg.Ring == 0 {
		cfg.Ring = 4096
	}
	if cfg.Ring > 0 {
		a.ring = make([]Op, cfg.Ring)
	}
	return a
}

// mix64 is the murmur3 fmix64 finalizer — deliberately a different mixer
// than shard.Route's splitmix64, so the audited sample cuts across shards
// instead of aliasing the routing partition (with Route's mixer, a 1/S
// sample and S shards would audit exactly shard 0).
func mix64(v uint64) uint64 {
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	v *= 0xc4ceb9fe1a85ec53
	v ^= v >> 33
	return v
}

// Sampled reports whether operations on v are audited.
func (a *Auditor) Sampled(v uint64) bool { return mix64(v) <= a.thresh }

// AuditWrite observes one committed write in commit order.
func (a *Auditor) AuditWrite(v, val uint64) {
	h := mix64(v)
	if h > a.thresh {
		return
	}
	a.sampled.Add(1)
	if a.col != nil {
		a.col.ObserveAudit(false)
	}
	s := &a.slots[h&a.mask]
	if s.state != slotEmpty && s.v != v {
		a.evictions.Add(1)
		if a.col != nil {
			a.col.ObserveAuditEviction()
		}
	}
	s.v, s.val, s.state = v, val, slotKnown
	a.record(Op{Write: true, Var: v, Val: val})
}

// AuditRead observes one committed read in commit order and checks it
// against the last known value of its variable.
func (a *Auditor) AuditRead(v, val uint64) {
	h := mix64(v)
	if h > a.thresh {
		return
	}
	a.sampled.Add(1)
	s := &a.slots[h&a.mask]
	violated := s.state == slotKnown && s.v == v && s.val != val
	if violated {
		a.violations.Add(1)
		if n := a.nSamples.Load(); n < maxViolationSamples {
			a.samples[n] = AuditViolationSample{Var: v, Want: s.val, Got: val}
			a.nSamples.Store(n + 1)
		}
	}
	if a.col != nil {
		a.col.ObserveAudit(violated)
	}
	// Adopt the read as the new truth — on a miss or eviction it restores
	// coverage; after a violation it stops one corruption from cascading
	// into a violation per subsequent read.
	if s.state != slotEmpty && s.v != v {
		a.evictions.Add(1)
		if a.col != nil {
			a.col.ObserveAuditEviction()
		}
	}
	s.v, s.val, s.state = v, val, slotKnown
	a.record(Op{Var: v, Val: val})
}

// AuditFailed observes one operation whose request failed (e.g. stranded
// under faults); val is the value a failed write carried (ignored for
// reads). A failed write leaves the variable's value uncertain — it may or
// may not have landed — so the slot degrades to unknown until the next
// successful operation re-establishes it. A failed read reveals nothing
// and changes nothing.
func (a *Auditor) AuditFailed(v, val uint64, write bool) {
	h := mix64(v)
	if h > a.thresh {
		return
	}
	a.sampled.Add(1)
	if a.col != nil {
		a.col.ObserveAudit(false)
	}
	if !write {
		return
	}
	s := &a.slots[h&a.mask]
	if s.state != slotEmpty && s.v == v {
		s.state = slotUnknown
	}
	a.record(Op{Write: true, Var: v, Val: val, Failed: true})
}

// record appends one audited op to the ring (single-writer, no alloc).
func (a *Auditor) record(op Op) {
	if a.ring == nil {
		return
	}
	a.ring[a.head] = op
	a.head++
	if a.head == len(a.ring) {
		a.head = 0
	}
	if a.filled < len(a.ring) {
		a.filled++
	}
}

// Stats snapshots the audit counters; safe to call concurrently with the
// hot path.
func (a *Auditor) Stats() AuditStats {
	if a == nil {
		return AuditStats{}
	}
	return AuditStats{
		Sampled:    a.sampled.Load(),
		Violations: a.violations.Load(),
		Evictions:  a.evictions.Load(),
	}
}

// ViolationSamples returns the captured details of the first detected
// violations (at most 8); safe to call concurrently with the hot path.
func (a *Auditor) ViolationSamples() []AuditViolationSample {
	if a == nil {
		return nil
	}
	n := int(a.nSamples.Load())
	out := make([]AuditViolationSample, n)
	copy(out, a.samples[:n])
	return out
}

// CheckNow replays the recent-operation ring through the full trace
// checker in per-variable mode and returns its report — the audited
// sub-history with real counterexamples, not just a mismatch count. The
// dispatcher must be quiesced (Flush'd and idle) when calling: the ring is
// single-writer and CheckNow reads it without synchronization.
//
// The ring holds a suffix of the audited history, so context that rotated
// out is compensated for: reads whose nonzero value no ring write stored
// are dropped (their dictating write predates the ring and they would read
// as phantoms). Reads of the initial 0 are kept — in commit order they are
// only legal before any write to the variable, which the checker verifies.
func (a *Auditor) CheckNow() *Report {
	if a == nil || a.ring == nil {
		return &Report{Mode: ModePerVariable.String(), OK: true}
	}
	n := a.filled
	ops := make([]Op, 0, n)
	start := a.head - n
	if start < 0 {
		start += len(a.ring)
	}
	inRing := make(map[[2]uint64]bool, n)
	for i := 0; i < n; i++ {
		op := a.ring[(start+i)%len(a.ring)]
		if op.Write {
			inRing[[2]uint64{op.Var, op.Val}] = true
		}
	}
	for i := 0; i < n; i++ {
		op := a.ring[(start+i)%len(a.ring)]
		if !op.Write && op.Val != 0 && !inRing[[2]uint64{op.Var, op.Val}] {
			continue // dictating write rotated out of the ring
		}
		ops = append(ops, op)
	}
	return Check(Trace{ops}, ModePerVariable)
}

// String summarizes the audit state for logs.
func (a *Auditor) String() string {
	if a == nil {
		return "audit(off)"
	}
	st := a.Stats()
	return fmt.Sprintf("audit(sampled=%d violations=%d evictions=%d)", st.Sampled, st.Violations, st.Evictions)
}
