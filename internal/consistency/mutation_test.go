package consistency

import (
	"math/rand"
	"testing"
)

// This file is the adversarial half of the checker's test suite: take
// known-good generated histories, seed each of the five violation classes
// by mutation, and demand the checker rejects every one. To prove the
// assertions have teeth, every case is also run against the deliberately
// broken checker stub (closure rules and precondition verdicts disabled):
// the stub must CERTIFY each mutated trace — i.e. this suite runs red
// against a lobotomized checker, so a future regression that quietly
// weakens the closure cannot pass it.

// brokenCheck is the lobotomized checker stub.
func brokenCheck(tr Trace, mode Mode) *Report {
	return check(tr, mode, checkOpts{noInference: true, noPreconditions: true})
}

// mutation is one violation-class seeding operator. Apply returns the
// mutated trace and whether the source trace offered a seeding site.
type mutation struct {
	name string
	// modes that must reject the mutated trace (program-order inversion is
	// invisible to the per-variable checker by design).
	rejectModes []Mode
	// modes that must still certify it (documents the PRAM/per-variable gap).
	certifyModes []Mode
	apply        func(tr Trace) (Trace, bool)
}

func cloneTrace(tr Trace) Trace {
	out := make(Trace, len(tr))
	for c := range tr {
		out[c] = append([]Op(nil), tr[c]...)
	}
	return out
}

var mutations = []mutation{
	{
		// Stale read: an observer sees a writer's two values to one
		// variable in inverted order. Seeded by appending a fresh observer
		// client — it writes nothing, so it contributes no outgoing
		// read-from edges and the base po+read-from graph provably stays
		// acyclic: only the closure rules can (and must) catch it.
		name:        "stale-read",
		rejectModes: []Mode{ModePRAM, ModePerVariable},
		apply: func(tr Trace) (Trace, bool) {
			for c := range tr {
				for i, w1 := range tr[c] {
					if !w1.Write || w1.Failed {
						continue
					}
					for j := i + 1; j < len(tr[c]); j++ {
						w2 := tr[c][j]
						if !w2.Write || w2.Failed || w2.Var != w1.Var {
							continue
						}
						out := cloneTrace(tr)
						out = append(out, []Op{
							{Var: w2.Var, Val: w2.Val},
							{Var: w1.Var, Val: w1.Val},
						})
						return out, true
					}
				}
			}
			return nil, false
		},
	},
	{
		// Lost write: a client's own committed write vanishes — its next
		// observation of the variable is the initial 0 (read-your-writes).
		name:        "lost-write",
		rejectModes: []Mode{ModePRAM, ModePerVariable},
		apply: func(tr Trace) (Trace, bool) {
			for c := range tr {
				for i, op := range tr[c] {
					if !op.Write || op.Failed {
						continue
					}
					out := cloneTrace(tr)
					out[c] = append(out[c][:i+1], append([]Op{{Var: op.Var}}, out[c][i+1:]...)...)
					return out, true
				}
			}
			return nil, false
		},
	},
	{
		// Program-order inversion: an observer sees a client's later write
		// to one variable but not its earlier write to another — FIFO
		// broken, per-variable histories individually fine.
		name:         "program-order-inversion",
		rejectModes:  []Mode{ModePRAM},
		certifyModes: []Mode{ModePerVariable},
		apply: func(tr Trace) (Trace, bool) {
			for c := range tr {
				for i, w1 := range tr[c] {
					if !w1.Write || w1.Failed {
						continue
					}
					for j := i + 1; j < len(tr[c]); j++ {
						w2 := tr[c][j]
						if !w2.Write || w2.Failed || w2.Var == w1.Var {
							continue
						}
						out := cloneTrace(tr)
						out = append(out, []Op{{Var: w2.Var, Val: w2.Val}, {Var: w1.Var}})
						return out, true
					}
				}
			}
			return nil, false
		},
	},
	{
		// Read-uncommitted value: a read returns a value no write ever
		// stored (in a real system: a torn or aborted write made visible).
		name:        "read-uncommitted",
		rejectModes: []Mode{ModePRAM, ModePerVariable},
		apply: func(tr Trace) (Trace, bool) {
			for c := range tr {
				for i, op := range tr[c] {
					if op.Write {
						continue
					}
					out := cloneTrace(tr)
					out[c][i].Val = 0xF<<60 | 0xBAD // outside the minted (client+1)<<40|seq space
					return out, true
				}
			}
			return nil, false
		},
	},
	{
		// Fork-join anomaly: after two concurrent writers race on one
		// variable, a joining observer sees the value flip back — no
		// write order explains 1, 2, 1.
		name:        "fork-join",
		rejectModes: []Mode{ModePRAM, ModePerVariable},
		apply: func(tr Trace) (Trace, bool) {
			writerOf := indexWriters(tr)
			for key, wa := range writerOf {
				for key2, wb := range writerOf {
					if key[0] != key2[0] || wa.client == wb.client {
						continue
					}
					out := cloneTrace(tr)
					out = append(out, []Op{
						{Var: key[0], Val: key[1]},
						{Var: key2[0], Val: key2[1]},
						{Var: key[0], Val: key[1]},
					})
					return out, true
				}
			}
			return nil, false
		},
	},
}

func indexWriters(tr Trace) map[[2]uint64]opRef {
	out := make(map[[2]uint64]opRef)
	for c := range tr {
		for i, op := range tr[c] {
			if op.Write && !op.Failed {
				out[[2]uint64{op.Var, op.Val}] = opRef{c, i}
			}
		}
	}
	return out
}

func TestMutationsRejectedAndRedAgainstBrokenStub(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			seeded := 0
			for attempt := 0; attempt < 50 && seeded < 5; attempt++ {
				base := genSCTrace(rng, 2+rng.Intn(3), 30+rng.Intn(60), 2+rng.Intn(5))
				mut, ok := m.apply(base)
				if !ok {
					continue
				}
				seeded++
				for _, mode := range m.rejectModes {
					rep := Check(mut, mode)
					if rep.OK {
						t.Fatalf("checker certified a %s-seeded trace under %s", m.name, mode)
					}
					if v := rep.First(); len(v.Ops) == 0 && v.Kind == KindCycle {
						t.Fatalf("%s under %s: violation carries no counterexample: %+v", m.name, mode, v)
					}
					// The red check: the broken stub must NOT catch it —
					// proving this suite fails against a checker whose
					// closure or precondition logic is gutted.
					if broken := brokenCheck(mut, mode); !broken.OK {
						t.Fatalf("broken stub rejected %s under %s — the red check is not discriminating: %+v",
							m.name, mode, broken.First())
					}
				}
				for _, mode := range m.certifyModes {
					if rep := Check(mut, mode); !rep.OK {
						t.Fatalf("%s must stay invisible to %s, got %+v", m.name, mode, rep.First())
					}
				}
				// The base trace stays valid: the operator, not the
				// generator, introduced the anomaly.
				if rep := Check(base, ModePRAM); !rep.OK {
					t.Fatalf("generator produced an invalid base trace: %+v", rep.First())
				}
			}
			if seeded == 0 {
				t.Fatalf("no generated trace offered a %s seeding site", m.name)
			}
		})
	}
}

// TestHandBuiltViolationsRedAgainstBrokenStub completes the red check for
// the hand-built counterparts in checker_test.go: each minimal instance of
// the five classes must slip past the broken stub.
func TestHandBuiltViolationsRedAgainstBrokenStub(t *testing.T) {
	cases := []struct {
		name string
		tr   Trace
		mode Mode
	}{
		{"stale-read", Trace{{w(1, 10), w(1, 20)}, {r(1, 20), r(1, 10)}}, ModePRAM},
		{"lost-write", Trace{{w(1, 10), r(1, 0)}}, ModePRAM},
		{"program-order-inversion", Trace{{w(1, 10), w(2, 20)}, {r(2, 20), r(1, 0)}}, ModePRAM},
		{"read-uncommitted", Trace{{w(1, 10)}, {r(1, 7)}}, ModePerVariable},
		{"fork-join", Trace{{w(1, 10)}, {w(1, 20)}, {r(1, 10), r(1, 20), r(1, 10)}}, ModePerVariable},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if rep := Check(tc.tr, tc.mode); rep.OK {
				t.Fatalf("real checker certified the %s trace", tc.name)
			}
			if rep := brokenCheck(tc.tr, tc.mode); !rep.OK {
				t.Fatalf("broken stub rejected the %s trace — red check not discriminating: %+v", tc.name, rep.First())
			}
		})
	}
}
