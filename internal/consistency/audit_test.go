package consistency

import (
	"testing"

	"detshmem/internal/obs"
)

func TestAuditorDisabled(t *testing.T) {
	if a := NewAuditor(AuditConfig{Rate: 0}); a != nil {
		t.Fatal("Rate 0 must return a nil auditor")
	}
	var a *Auditor
	if st := a.Stats(); st != (AuditStats{}) {
		t.Fatalf("nil auditor stats: %+v", st)
	}
	if s := a.ViolationSamples(); s != nil {
		t.Fatalf("nil auditor samples: %v", s)
	}
	if rep := a.CheckNow(); !rep.OK {
		t.Fatalf("nil auditor CheckNow: %+v", rep)
	}
}

func TestAuditorDetectsMismatch(t *testing.T) {
	a := NewAuditor(AuditConfig{Rate: 1})
	a.AuditWrite(5, 100)
	a.AuditRead(5, 100)
	if st := a.Stats(); st.Violations != 0 || st.Sampled != 2 {
		t.Fatalf("after consistent ops: %+v", st)
	}
	a.AuditRead(5, 7)
	st := a.Stats()
	if st.Violations != 1 {
		t.Fatalf("mismatched read not flagged: %+v", st)
	}
	s := a.ViolationSamples()
	if len(s) != 1 || s[0].Var != 5 || s[0].Want != 100 || s[0].Got != 7 {
		t.Fatalf("violation sample: %+v", s)
	}
	// The read resynced the slot: repeating the "wrong" value is now the
	// known state, not a cascade of violations.
	a.AuditRead(5, 7)
	if st := a.Stats(); st.Violations != 1 {
		t.Fatalf("resync failed, violations cascaded: %+v", st)
	}
}

func TestAuditorFailedWriteDegradesToUnknown(t *testing.T) {
	a := NewAuditor(AuditConfig{Rate: 1})
	a.AuditWrite(9, 100)
	a.AuditFailed(9, 111, true)
	// The stranded write may or may not have landed: neither outcome is a
	// violation.
	a.AuditRead(9, 111)
	if st := a.Stats(); st.Violations != 0 {
		t.Fatalf("read after failed write flagged: %+v", st)
	}
	// The read re-established knowledge; a contradiction is caught again.
	a.AuditRead(9, 100)
	if st := a.Stats(); st.Violations != 1 {
		t.Fatalf("post-recovery mismatch missed: %+v", st)
	}
	// A failed read changes nothing.
	b := NewAuditor(AuditConfig{Rate: 1})
	b.AuditWrite(9, 100)
	b.AuditFailed(9, 0, false)
	b.AuditRead(9, 100)
	if st := b.Stats(); st.Violations != 0 || st.Sampled != 3 {
		t.Fatalf("failed read perturbed state: %+v", st)
	}
}

func TestAuditorSamplingIsByVariableAndDeterministic(t *testing.T) {
	a := NewAuditor(AuditConfig{Rate: 0.01, Slots: 4096})
	const vars = 100000
	for v := uint64(0); v < vars; v++ {
		a.AuditWrite(v, v+1)
	}
	st := a.Stats()
	if st.Sampled < vars/400 || st.Sampled > vars/25 {
		t.Fatalf("1%% sampling over %d vars audited %d ops", vars, st.Sampled)
	}
	// Same variables again: exactly the same sample (deterministic by
	// variable, so audited histories are complete per variable).
	for v := uint64(0); v < vars; v++ {
		a.AuditWrite(v, vars+v+1)
	}
	if got := a.Stats().Sampled; got != 2*st.Sampled {
		t.Fatalf("sampling not deterministic: %d then %d", st.Sampled, got-st.Sampled)
	}
}

func TestAuditorSamplingCutsAcrossRouting(t *testing.T) {
	// The audit mixer must not alias shard.Route's splitmix64: for a
	// power-of-two shard count S and Rate 1/S, the sampled variables must
	// spread over all shards rather than collapsing onto shard 0.
	const shards = 8
	route := func(v uint64) int { // shard.Route's mixer
		v ^= v >> 30
		v *= 0xbf58476d1ce4e5b9
		v ^= v >> 27
		v *= 0x94d049bb133111eb
		v ^= v >> 31
		return int(v % shards)
	}
	a := NewAuditor(AuditConfig{Rate: 1.0 / shards})
	hit := make(map[int]int)
	for v := uint64(0); v < 100000; v++ {
		if a.Sampled(v) {
			hit[route(v)]++
		}
	}
	if len(hit) != shards {
		t.Fatalf("sampled variables landed on only %d/%d shards: %v", len(hit), shards, hit)
	}
}

func TestAuditorEvictionIsNotAViolation(t *testing.T) {
	a := NewAuditor(AuditConfig{Rate: 1, Slots: 1})
	a.AuditWrite(1, 10)
	a.AuditWrite(2, 20) // evicts var 1 from the single slot
	st := a.Stats()
	if st.Evictions == 0 {
		t.Fatalf("eviction not counted: %+v", st)
	}
	// Var 1's value is forgotten: a read of anything adopts, no alarm.
	a.AuditRead(1, 999)
	if st := a.Stats(); st.Violations != 0 {
		t.Fatalf("post-eviction read flagged: %+v", st)
	}
}

func TestAuditorCollectorSurfacing(t *testing.T) {
	col := obs.NewCollector()
	a := NewAuditor(AuditConfig{Rate: 1, Collector: col})
	a.AuditWrite(1, 10)
	a.AuditRead(1, 10)
	a.AuditRead(1, 11)
	snap := col.Snapshot()
	if snap["audit_sampled_total"] != 3 {
		t.Fatalf("audit_sampled_total = %d, want 3", snap["audit_sampled_total"])
	}
	if snap["audit_violations_total"] != 1 {
		t.Fatalf("audit_violations_total = %d, want 1", snap["audit_violations_total"])
	}
}

func TestAuditorCheckNowReplaysRing(t *testing.T) {
	a := NewAuditor(AuditConfig{Rate: 1, Ring: 64})
	a.AuditWrite(1, 10)
	a.AuditRead(1, 10)
	a.AuditWrite(1, 20)
	a.AuditRead(1, 20)
	if rep := a.CheckNow(); !rep.OK {
		t.Fatalf("consistent ring rejected: %+v", rep.First())
	}
	// A read returning an already-overwritten value in commit order is a
	// real violation with a real counterexample.
	a.AuditWrite(1, 30)
	a.AuditRead(1, 20)
	rep := a.CheckNow()
	if rep.OK {
		t.Fatal("stale read in commit order certified")
	}
	if v := rep.First(); v.Kind != KindCycle {
		t.Fatalf("kind = %s, want cycle: %+v", v.Kind, v)
	}
}

func TestAuditorCheckNowToleratesRingRotation(t *testing.T) {
	a := NewAuditor(AuditConfig{Rate: 1, Ring: 4})
	a.AuditWrite(1, 10)
	// Rotate the write out of the 4-slot ring.
	for i := uint64(0); i < 6; i++ {
		a.AuditWrite(2, 100+i)
	}
	// This read's dictating write predates the ring: it must be skipped,
	// not reported as a phantom.
	a.AuditRead(1, 10)
	if rep := a.CheckNow(); !rep.OK {
		t.Fatalf("rotated-out context produced a false alarm: %+v", rep.First())
	}
}

func TestAuditorHotPathAllocs(t *testing.T) {
	a := NewAuditor(AuditConfig{Rate: 1, Collector: obs.NewCollector()})
	v := uint64(0)
	if n := testing.AllocsPerRun(1000, func() {
		v++
		a.AuditWrite(v%128, v+1)
		a.AuditRead(v%128, v+1)
		a.AuditFailed(v%128, v+1, true)
	}); n != 0 {
		t.Fatalf("audit hot path allocates %.1f allocs/op, want 0", n)
	}
}
