package consistency

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzConsistencyTrace drives the checker with generated histories: a
// sequentially consistent history (mutate == 0) must certify under both
// modes, and arbitrarily corrupted variants must never panic, never
// certify-and-refute inconsistently, and must survive a JSON round trip
// unchanged in verdict. Wired into the CI fuzz-smoke lane.
func FuzzConsistencyTrace(f *testing.F) {
	f.Add(int64(1), uint8(3), uint16(60), uint8(4), uint8(0))
	f.Add(int64(2), uint8(2), uint16(30), uint8(1), uint8(0))
	f.Add(int64(3), uint8(4), uint16(100), uint8(8), uint8(1))
	f.Add(int64(4), uint8(1), uint16(10), uint8(2), uint8(7))
	f.Add(int64(5), uint8(5), uint16(200), uint8(3), uint8(255))
	f.Fuzz(func(t *testing.T, seed int64, clients uint8, ops uint16, vars uint8, mutate uint8) {
		nc := 1 + int(clients)%6
		no := int(ops) % 300
		nv := 1 + int(vars)%10
		rng := rand.New(rand.NewSource(seed))
		tr := genSCTrace(rng, nc, no, nv)

		if mutate == 0 {
			for _, mode := range []Mode{ModePRAM, ModePerVariable} {
				rep := Check(tr, mode)
				if !rep.OK {
					t.Fatalf("sequentially consistent history rejected under %s: %+v", mode, rep.Violations[0])
				}
			}
			return
		}

		// Corrupt the history mutate-driven: flip values, kinds, failure
		// flags, duplicate ops. The checker must stay total: any verdict,
		// no panic, and every violation must carry a coherent shape.
		mrng := rand.New(rand.NewSource(seed ^ int64(mutate)<<17))
		flips := 1 + int(mutate)%8
		for i := 0; i < flips; i++ {
			c := mrng.Intn(len(tr))
			if len(tr[c]) == 0 {
				continue
			}
			j := mrng.Intn(len(tr[c]))
			switch mrng.Intn(5) {
			case 0:
				tr[c][j].Val = mrng.Uint64()
			case 1:
				tr[c][j].Write = !tr[c][j].Write
			case 2:
				tr[c][j].Failed = !tr[c][j].Failed
			case 3:
				tr[c][j].Var = uint64(mrng.Intn(nv + 2))
			case 4:
				tr[c] = append(tr[c], tr[c][j])
			}
		}
		for _, mode := range []Mode{ModePRAM, ModePerVariable} {
			rep := Check(tr, mode)
			if rep.OK != (len(rep.Violations) == 0) {
				t.Fatalf("%s: OK=%v disagrees with %d violations", mode, rep.OK, len(rep.Violations))
			}
			for _, v := range rep.Violations {
				if v.Kind == "" || v.Message == "" {
					t.Fatalf("%s: violation missing kind or message: %+v", mode, v)
				}
				if v.Kind == KindCycle && len(v.Why) != len(v.Ops) {
					t.Fatalf("%s: cycle with %d ops but %d justifications", mode, len(v.Ops), len(v.Why))
				}
			}
		}

		// JSON round trip must preserve the verdict.
		ts := &TraceSet{Runs: []Run{{Label: "fuzz", Contract: ContractTotalOrder, Clients: tr}}}
		var buf bytes.Buffer
		if err := ts.WriteJSON(&buf); err != nil {
			t.Fatalf("encode: %v", err)
		}
		back, err := ReadTraceSet(&buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(back.Runs) != 1 {
			t.Fatalf("round trip lost runs: %d", len(back.Runs))
		}
		before, after := Check(tr, ModePerVariable), Check(back.Runs[0].Clients, ModePerVariable)
		if before.OK != after.OK {
			t.Fatalf("verdict changed across JSON round trip: %v vs %v", before.OK, after.OK)
		}
	})
}
